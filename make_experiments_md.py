#!/usr/bin/env python3
"""Assembles the per-experiment section of EXPERIMENTS.md from
bench_output.txt (one full recorded run of `for b in build/bench/*; do
$b; done`). Keeps the hand-written preamble of EXPERIMENTS.md up to the
'MEASURED RESULTS INSERTED BELOW' marker and appends the quoted bench
sections with commentary."""

import re
import sys

COMMENTARY = {
    "Design-choice ablations": """
**Verdict — supports DESIGN.md's documented deviations.** (a) The
paper-literal GC-FM ReLU costs 4-35 points and makes the stochastic
variant unstable (huge std), justifying the identity default. (b)
Flexible hidden widths train as well as uniform ones — the freedom the
paper claims over ResGCN is real and free. (c) All four node-aware
aggregators beat the uniform mean aggregator. (d) The Lasagne-over-GCN
margin rises monotonically with per-node heterogeneity, from negative
on a perfectly homogeneous graph to strongly positive — the paper's
Fig. 1 node-locality argument, made quantitative.
""",
    "Figure 2": """
**Verdict — shape reproduced.** As in the paper's Fig. 2: vanilla GCN's
per-layer MI decays toward the estimator's noise floor with depth;
ResGCN and DenseGCN retain clearly more information per layer. JK-Net
sits between (its lift concentrates in the classifier-facing concat
rather than the per-layer outputs probed here).
""",
    "Figure 5": """
**Verdict — the headline shape reproduces.** Plain GCN peaks shallow
(depth 2-6 depending on the stand-in) and collapses at depth 8-10 —
down to near chance on several datasets. ResGCN/DenseGCN/JK-Net decay
slowly. All three Lasagne aggregators stay flat or improve through
depth 10 and dominate the Fig. 5 comparison set at depth >= 6, matching
the paper ("even with very high depth, the performance of Lasagne does
not decrease"; "best result with more than 5 layers"). One deviation:
our GCN sometimes peaks at 4-6 rather than 2, because ~40% of stand-in
nodes carry featureless noise and need >= 2 hops of aggregation.

The §5.2.2 depth analysis (printed after the sweeps) mirrors the
paper's interpretation: the learned stochastic gates differ by node
locality; the Spearman statistic quantifies the central-nodes-prefer-
early-layers trend across all nodes rather than the paper's two
anecdotal nodes.
""",
    "Figure 6": """
**Verdict — shape reproduced.** Tracking MI(X; last layer) during
training of 10-layer models: the plain GCN row sits at the bottom
(over-smoothed final layer), and Lasagne holds the highest last-layer
MI through training, which is the paper's Fig. 6 claim ("our method
achieves the highest MI than other baselines").
""",
    "Figure 7": """
**Verdict — relative costs reproduce.** Lasagne (Weighted) stays within
a small constant factor of GCN per epoch at every depth (both are
linear in N and |E|), while GAT costs several times more and grows
faster with depth — the paper reports the same ordering (up to 100x on
large graphs / GPU memory exhaustion; our CPU ratios are smaller
because the graphs are smaller and single-core BLAS-free costs are
dominated by the same SpMM kernels). The hardware-independent FLOP
estimates show the same ordering as measured wall-clock.
""",
    "Table 2": """
**Verdict — by construction, verified.** The stand-ins match the
paper's datasets in class counts and relative scale; the second table
verifies the structural knobs that drive over-smoothing: homophily in
the 0.6-0.9 band (citation-like), hub-skewed degree distributions
(max degree 10-40x the average), and the bipartite Tencent shape.
""",
    "Table 3": """
**Verdict — mostly reproduced; documented artifact on three rows.**
The Lasagne rows beat GCN/JK-Net/ResGCN/DenseGCN and most of the field,
with the GCN-relative margin larger than the paper's (+4-9 points vs
+2.4) because the stand-ins have more node heterogeneity for the
aggregators to exploit. GIN ranks near the bottom, as in the paper.
The documented substrate artifact: APPNP / MixHop / DGCN over-perform
their paper rank (uniform multi-scale smoothing is near-optimal on
planted partitions; see 'Known substrate artifacts' above) and can top
some columns. Conversely, the unsupervised pipelines (DGI, and NGCN's
label-free power instances) under-perform their paper rank: with ~40%
of stand-in nodes carrying featureless noise, objectives that never see
labels waste capacity reconstructing noise. Both directions of
deviation stem from the same substrate property and are flagged here
rather than tuned away.
""",
    "Table 4": """
**Verdict — reproduced.** Only Max-Pooling Lasagne runs inductively
(node-indexed Weighted/Stochastic parameters do not transfer to unseen
nodes — enforced by the library, matching the paper's protocol), and it
matches or beats the four sampling baselines on both inductive
stand-ins. Absolute numbers exceed the paper's Flickr (~50%) because
synthetic Flickr is cleaner than the real one; compare ordering.
""",
    "Table 5": """
**Verdict — partially reproduced; instructive failure for the
node-indexed aggregators on Tencent.** The Amazon/Coauthor stand-ins
saturated above 92% despite hardening (their high average degree makes
propagation very effective), compressing the rankings into noise —
Lasagne leads or ties most columns but the margins are not meaningful
at that ceiling. On the bipartite
Tencent stand-in (many classes, 1-2% label rate, extreme hub skew plus
co-click item-item edges) the absolute band matches the paper
(~40-52%); Lasagne (Max pooling) beats GCN/GAT/JK-Net/ResGCN (DenseGCN
edges it out), but the Weighted/Stochastic variants UNDER-perform: their
node-indexed gates C/P for test nodes receive only indirect gradients
(through their influence on training-node predictions), and on a small
40-class bipartite graph that transductive weakness dominates (train
accuracy ~90%, test far lower). The paper's 1M-node production graph
evidently sits in a friendlier regime; we report the failure instead of
tuning it away — it is the transductive cousin of the inductive
limitation the paper itself concedes in §5.2.1.
""",
    "Table 6": """
**Verdict — NOT reproduced, with a clear mechanistic reason.** On our
stand-ins the +GC-FM columns sit 1-5 points below (occasionally at)
their bases. The substitution explains it: the generators draw class
features from Gaussian centroids, so the class signal is *linear* in
the features by construction — quadratic cross-layer interactions have
no structure to capture and only add estimation variance at 36-56
training labels. The paper's +0.1..+0.6 gains come from real
bag-of-words/co-purchase features where feature interactions exist.
This is the one table whose shape depends on a dataset property our
substitution deliberately simplifies; we report the negative rather
than inject artificial feature interactions post hoc. (The GC-FM layer
itself is verified correct against the naive Eq. 7 double loop and by
gradient checks in the test suite.)
""",
    "Table 7": """
**Verdict — mostly reproduced.** Wrapping a base model in Lasagne
(Stochastic) improves 6 of the 9 cells — all three bases gain on the
Pubmed stand-in (+4.6 to +5.8) and two of three on Citeseer — while the
Cora cells land within a standard deviation of their bases. The
framework claim (§5.2.5: the node-aware architecture applies across
base convolutions) holds directionally; the per-cell margins are
noisier than the paper's because each cell is 3 runs on a 600-node
stand-in rather than 10 runs on Cora.
""",
    "Table 8": """
**Verdict — mixed, with a protocol lesson.** The first recorded sweep
used label RATES, which on a 440-node stand-in clamp to one label per
class (two columns even collapse to identical numbers) — an artifact of
scaling the graph but not the protocol; the addendum re-runs the bench
with the paper's actual protocol (labels PER CLASS). With that fix, the
NELL stand-in reproduces the paper's shape: Lasagne beats GCN at every
label budget, with the largest margin at the smallest budget (59.7 vs
54.1 at 1 label/class), as the paper reports. On the small Cora
stand-in the parameter-light GCN stays 2-4 points ahead at every
budget: with under ~450 nodes, Lasagne's extra aggregator parameters do
not amortize (the same effect quantified in the Table 5 Tencent
analysis). At full stand-in size with 6 labels/class (Table 3, Fig. 5)
Lasagne does lead on Cora.
""",
    "Micro": """
Micro-benchmarks of the kernels (SpMM, GC forward/backward, the three
aggregators, GC-FM, edge softmax, the MI estimator) — no paper
counterpart; included for performance regression tracking.
""",
}


def main():
    bench = open("bench_output.txt").read()
    # split on banner lines
    parts = re.split(r"={50,}\n", bench)
    # find section bodies: banner text lines pair with following content
    sections = []  # (title_line, text)
    i = 0
    while i < len(parts):
        part = parts[i]
        first = part.strip().splitlines()[0] if part.strip() else ""
        if first.startswith(("Table", "Figure", "Design-choice")):
            # banner body; content is the next part
            content = parts[i + 1] if i + 1 < len(parts) else ""
            sections.append((part.strip(), content.rstrip()))
            i += 2
        else:
            i += 1

    head = open("EXPERIMENTS.md").read()
    marker = "<!-- MEASURED RESULTS INSERTED BELOW -->"
    head = head.split(marker)[0] + marker + "\n"

    out = [head]
    for banner, content in sections:
        title = banner.splitlines()[0]
        out.append(f"\n### {title}\n")
        key = next((k for k in COMMENTARY if title.startswith(k)), None)
        out.append("```\n" + banner + "\n\n" + content + "\n```\n")
        if key:
            out.append(COMMENTARY[key])
    # google-benchmark output (no banner)
    if "BM_SpMM" in bench:
        out.append("\n### Micro-kernel benchmarks\n")
        micro = bench[bench.find("----------------------------------------"
                                 ):]
        out.append("```\n" + micro.strip()[:4000] + "\n```\n")
        out.append(COMMENTARY["Micro"])
    open("EXPERIMENTS.md", "w").write("".join(out))
    print("EXPERIMENTS.md assembled:",
          sum(len(s) for s in out), "chars,", len(sections), "sections")


if __name__ == "__main__":
    sys.exit(main())
