// Command-line driver: train any model in the zoo on any registered
// dataset (or a dataset loaded from TSV files) and report accuracy,
// macro-F1 and timing. Also supports crash-safe checkpointing with
// mid-run resume, divergence recovery, and dataset export.
//
// Examples:
//   lasagne_run --model lasagne-stochastic --dataset cora --depth 5
//   lasagne_run --model gcn --dataset pubmed --repeats 5
//   lasagne_run --model lasagne-maxpool --dataset flickr
//               --checkpoint /tmp/run.ckpt --checkpoint-interval 10
//   lasagne_run --model lasagne-maxpool --dataset flickr
//               --checkpoint /tmp/run.ckpt --resume
//   lasagne_run --list-models
//   lasagne_run --export-dataset /tmp/cora --dataset cora

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>
#include <sstream>

#include "common/thread_pool.h"
#include "data/io.h"
#include "data/registry.h"
#include "metrics/classification.h"
#include "models/model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "train/experiment.h"
#include "train/serialization.h"
#include "train/trainer.h"

namespace {

struct Flags {
  std::string model = "lasagne-stochastic";
  std::string dataset = "cora";
  std::string load_prefix;      // --from-files: TSV prefix
  std::string export_prefix;    // --export-dataset
  std::string save_checkpoint;  // --save: final parameters
  std::string load_checkpoint;  // --load: skip training, evaluate
  std::string checkpoint;       // --checkpoint: periodic trainer state
  size_t checkpoint_interval = 1;
  bool resume = false;
  size_t max_recoveries = 3;
  double grad_clip = 0.0;
  size_t depth = 4;
  size_t hidden = 32;
  double dropout = 0.5;
  double learning_rate = 0.02;
  double weight_decay = 5e-4;
  size_t epochs = 200;
  size_t patience = 20;
  size_t repeats = 1;
  size_t threads = 0;  // 0 = default (LASAGNE_NUM_THREADS or hardware)
  double scale = 1.0;
  uint64_t seed = 1;
  bool verbose = false;
  bool list_models = false;
  bool list_datasets = false;
  std::string trace_out;      // --trace-out: Chrome trace JSON
  std::string metrics_out;    // --metrics-out: registry scrape
  std::string telemetry_out;  // --telemetry-out: per-epoch JSONL
  std::string validate_trace;  // --validate-trace: check file, exit
};

void PrintUsage() {
  std::printf(
      "usage: lasagne_run [--model NAME] [--dataset NAME|--from-files "
      "PREFIX]\n"
      "                   [--depth N] [--hidden N] [--dropout F]\n"
      "                   [--lr F] [--weight-decay F] [--epochs N]\n"
      "                   [--patience N] [--repeats N] [--scale F]\n"
      "                   [--seed N] [--threads N] [--save PATH] [--load "
      "PATH]\n"
      "                   [--checkpoint PATH] [--checkpoint-interval N]\n"
      "                   [--resume] [--max-recoveries N] [--grad-clip F]\n"
      "                   [--export-dataset PREFIX] [--verbose]\n"
      "                   [--trace-out PATH] [--metrics-out PATH]\n"
      "                   [--telemetry-out PATH] [--validate-trace PATH]\n"
      "                   [--list-models] [--list-datasets]\n");
}

bool ParseFlags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
#define STRING_FLAG(flag_name, field)                        \
  if (arg == flag_name) {                                    \
    const char* v = next(flag_name);                         \
    if (v == nullptr) return false;                          \
    flags.field = v;                                         \
    continue;                                                \
  }
    STRING_FLAG("--model", model)
    STRING_FLAG("--dataset", dataset)
    STRING_FLAG("--from-files", load_prefix)
    STRING_FLAG("--export-dataset", export_prefix)
    STRING_FLAG("--save", save_checkpoint)
    STRING_FLAG("--load", load_checkpoint)
    STRING_FLAG("--checkpoint", checkpoint)
    STRING_FLAG("--trace-out", trace_out)
    STRING_FLAG("--metrics-out", metrics_out)
    STRING_FLAG("--telemetry-out", telemetry_out)
    STRING_FLAG("--validate-trace", validate_trace)
#undef STRING_FLAG
    if (arg == "--depth" || arg == "--hidden" || arg == "--epochs" ||
        arg == "--patience" || arg == "--repeats" || arg == "--seed" ||
        arg == "--threads" || arg == "--checkpoint-interval" ||
        arg == "--max-recoveries") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      const size_t value = static_cast<size_t>(std::atoll(v));
      if (arg == "--depth") flags.depth = value;
      if (arg == "--hidden") flags.hidden = value;
      if (arg == "--epochs") flags.epochs = value;
      if (arg == "--patience") flags.patience = value;
      if (arg == "--repeats") flags.repeats = value;
      if (arg == "--seed") flags.seed = value;
      if (arg == "--threads") flags.threads = value;
      if (arg == "--checkpoint-interval") flags.checkpoint_interval = value;
      if (arg == "--max-recoveries") flags.max_recoveries = value;
      continue;
    }
    if (arg == "--dropout" || arg == "--lr" || arg == "--weight-decay" ||
        arg == "--scale" || arg == "--grad-clip") {
      const char* v = next(arg.c_str());
      if (v == nullptr) return false;
      const double value = std::atof(v);
      if (arg == "--dropout") flags.dropout = value;
      if (arg == "--lr") flags.learning_rate = value;
      if (arg == "--weight-decay") flags.weight_decay = value;
      if (arg == "--scale") flags.scale = value;
      if (arg == "--grad-clip") flags.grad_clip = value;
      continue;
    }
    if (arg == "--verbose") {
      flags.verbose = true;
      continue;
    }
    if (arg == "--resume") {
      flags.resume = true;
      continue;
    }
    if (arg == "--list-models") {
      flags.list_models = true;
      continue;
    }
    if (arg == "--list-datasets") {
      flags.list_datasets = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return false;
  }
  if (flags.resume && flags.checkpoint.empty()) {
    std::fprintf(stderr, "--resume requires --checkpoint PATH\n");
    return false;
  }
  return true;
}

void ReportFaultEvents(const lasagne::TrainResult& result) {
  if (!result.resume_status.ok()) {
    std::fprintf(stderr, "warning: resume failed, trained from scratch: %s\n",
                 result.resume_status.ToString().c_str());
  }
  if (result.resumed_from_epoch > 0) {
    std::printf("resumed from epoch %zu\n", result.resumed_from_epoch);
  }
  for (const lasagne::RecoveryEvent& event : result.recoveries) {
    std::printf("recovered at epoch %zu (%s), lr backed off to %g\n",
                event.epoch, event.reason.c_str(),
                event.new_learning_rate);
  }
  if (result.checkpoint_write_failures > 0) {
    std::fprintf(stderr, "warning: %zu checkpoint write(s) failed\n",
                 result.checkpoint_write_failures);
  }
}

// --validate-trace: parse PATH as Chrome trace JSON and sanity-check
// the event records. Exit code 0 = valid.
int ValidateTraceFile(const std::string& path) {
  using lasagne::obs::JsonValue;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open trace file %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  lasagne::StatusOr<JsonValue> parsed = JsonValue::Parse(buffer.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "trace file %s is not valid JSON: %s\n",
                 path.c_str(), parsed.status().ToString().c_str());
    return 1;
  }
  const JsonValue& root = parsed.value();
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "trace file %s has no traceEvents array\n",
                 path.c_str());
    return 1;
  }
  for (const JsonValue& event : events->AsArray()) {
    if (!event.is_object() || event.Find("name") == nullptr ||
        event.Find("ph") == nullptr || event.Find("ts") == nullptr) {
      std::fprintf(stderr,
                   "trace file %s has a malformed event record\n",
                   path.c_str());
      return 1;
    }
  }
  std::printf("trace %s: valid, %zu events\n", path.c_str(),
              events->AsArray().size());
  return 0;
}

// Writes the metrics-registry scrape to `path` — JSON when the path
// ends in .json, the plain-text format otherwise.
void ExportMetrics(const std::string& path) {
  auto& registry = lasagne::obs::MetricsRegistry::Global();
  const bool as_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string body =
      as_json ? registry.ScrapeJson() : registry.ScrapeText();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
    return;
  }
  out << body;
  std::printf("wrote metrics scrape to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lasagne;
  Flags flags;
  if (!ParseFlags(argc, argv, flags)) {
    PrintUsage();
    return 1;
  }
  if (!flags.validate_trace.empty()) {
    return ValidateTraceFile(flags.validate_trace);
  }
  if (flags.threads > 0) SetNumThreads(flags.threads);
  if (!flags.trace_out.empty()) obs::EnableTracing();
  if (!flags.metrics_out.empty()) obs::EnableMetrics();
  obs::TelemetryWriter telemetry;
  if (!flags.telemetry_out.empty()) {
    Status opened = telemetry.Open(flags.telemetry_out);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.ToString().c_str());
      return 1;
    }
  }
  if (flags.list_models) {
    for (const std::string& name : KnownModelNames()) {
      std::printf("%s\n", name.c_str());
    }
    std::printf("dgi\ngmi\n");
    return 0;
  }
  if (flags.list_datasets) {
    for (const DatasetSpec& spec : AllDatasetSpecs()) {
      std::printf("%-18s %s%s\n", spec.name.c_str(),
                  spec.description.c_str(),
                  spec.inductive ? " (inductive)" : "");
    }
    return 0;
  }

  Dataset data;
  if (flags.load_prefix.empty()) {
    data = LoadDataset(flags.dataset, flags.scale, flags.seed);
    if (data.num_nodes() == 0) {
      std::fprintf(stderr, "failed to load dataset %s\n",
                   flags.dataset.c_str());
      return 1;
    }
  } else {
    StatusOr<Dataset> loaded = TryLoadDatasetFromFiles(flags.load_prefix);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load dataset: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    data = std::move(loaded).value();
  }
  std::printf("dataset %s: %zu nodes, %zu edges, %zu classes, "
              "%zu/%zu/%zu split\n",
              data.name.c_str(), data.num_nodes(), data.graph.num_edges(),
              data.num_classes, data.TrainNodes().size(),
              data.ValNodes().size(), data.TestNodes().size());

  if (!flags.export_prefix.empty()) {
    Status exported = ExportDatasetToFiles(data, flags.export_prefix);
    if (!exported.ok()) {
      std::fprintf(stderr, "export failed: %s\n",
                   exported.ToString().c_str());
      return 1;
    }
    std::printf("exported dataset to %s.{graph,features,labels,splits}\n",
                flags.export_prefix.c_str());
    return 0;
  }

  ModelConfig config;
  config.depth = flags.depth;
  config.hidden_dim = flags.hidden;
  config.dropout = static_cast<float>(flags.dropout);
  config.seed = flags.seed;
  TrainOptions options;
  options.max_epochs = flags.epochs;
  options.patience = flags.patience;
  options.learning_rate = static_cast<float>(flags.learning_rate);
  options.weight_decay = static_cast<float>(flags.weight_decay);
  options.seed = flags.seed + 1;
  options.verbose = flags.verbose;
  options.grad_clip_norm = static_cast<float>(flags.grad_clip);
  options.max_recoveries = flags.max_recoveries;
  options.checkpoint_path = flags.checkpoint;
  options.checkpoint_interval = flags.checkpoint_interval;
  options.resume = flags.resume;
  if (!flags.telemetry_out.empty()) options.telemetry = &telemetry;

  // Flushes trace/metrics/telemetry sinks on every exit path below.
  auto export_observability = [&] {
    if (!flags.trace_out.empty()) {
      Status written = obs::WriteTraceJson(flags.trace_out);
      if (written.ok()) {
        std::printf("wrote trace (%zu events) to %s\n",
                    obs::CollectTrace().size(), flags.trace_out.c_str());
      } else {
        std::fprintf(stderr, "trace export failed: %s\n",
                     written.ToString().c_str());
      }
    }
    if (!flags.metrics_out.empty()) ExportMetrics(flags.metrics_out);
    if (!flags.telemetry_out.empty()) {
      std::printf("%s", telemetry.SummaryTable().c_str());
      std::printf("wrote telemetry to %s\n", flags.telemetry_out.c_str());
    }
  };

  if (flags.repeats > 1) {
    ExperimentResult result = RunRepeatedExperiment(
        flags.model, data, config, options, flags.repeats);
    std::printf("%s x%zu: test %.1f+-%.1f%%  val %.1f+-%.1f%%  "
                "epoch %.1f ms\n",
                flags.model.c_str(), flags.repeats,
                result.test_accuracy.mean, result.test_accuracy.std_dev,
                result.val_accuracy.mean, result.val_accuracy.std_dev,
                result.epoch_time_ms.mean);
    if (result.retried_trials > 0 || result.failed_trials > 0) {
      std::printf("trial isolation: %zu retried, %zu failed of %zu\n",
                  result.retried_trials, result.failed_trials,
                  flags.repeats);
      for (const std::string& note : result.trial_errors) {
        std::fprintf(stderr, "  %s\n", note.c_str());
      }
    }
    export_observability();
    return 0;
  }

  StatusOr<std::unique_ptr<Model>> made =
      TryMakeModel(flags.model, data, config);
  if (!made.ok()) {
    std::fprintf(stderr, "cannot build model: %s\n",
                 made.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Model> model = std::move(made).value();

  if (!flags.load_checkpoint.empty()) {
    Status loaded = LoadModelCheckpoint(*model, flags.load_checkpoint);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load checkpoint: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    std::printf("loaded checkpoint %s\n", flags.load_checkpoint.c_str());
  } else {
    TrainResult result = TrainModel(*model, options);
    ReportFaultEvents(result);
    if (result.diverged) {
      std::fprintf(stderr,
                   "training diverged after %zu recoveries; results below "
                   "reflect the last healthy parameters\n",
                   result.recoveries.size());
    }
    std::printf("trained %zu epochs, best val %.1f%%\n",
                result.epochs_run, 100.0 * result.best_val_accuracy);
  }

  Rng eval_rng(flags.seed + 2);
  nn::ForwardContext ctx{false, &eval_rng};
  ag::Variable logits = model->Forward(ctx);
  ConfusionMatrix confusion(logits->value(), data.labels, data.test_mask,
                            data.num_classes);
  std::printf("%s on %s: test acc %.1f%%, macro-F1 %.3f\n",
              model->name().c_str(), data.name.c_str(),
              100.0 * confusion.Accuracy(), confusion.MacroF1());
  if (flags.verbose) {
    std::printf("%s", confusion.DebugString().c_str());
  }

  if (!flags.save_checkpoint.empty()) {
    Status saved = SaveModelCheckpoint(*model, flags.save_checkpoint);
    if (!saved.ok()) {
      std::fprintf(stderr, "failed to save checkpoint: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::printf("saved checkpoint %s\n", flags.save_checkpoint.c_str());
  }
  export_observability();
  return 0;
}
