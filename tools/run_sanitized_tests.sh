#!/usr/bin/env bash
# Builds the tree with ASan+UBSan (-DLASAGNE_SANITIZE=ON) and runs the
# full ctest suite under the sanitizers. Intended for CI and for
# shaking out the fault-tolerance / recovery paths locally:
#
#   tools/run_sanitized_tests.sh [extra ctest args...]
#
# Uses a separate build directory (build-sanitize by default; override
# with BUILD_DIR=...) so the regular build stays untouched.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-sanitize}"

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DLASAGNE_SANITIZE=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error keeps CI signal crisp; detect_leaks stays on by default.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"
