#!/usr/bin/env bash
# Builds the tree with sanitizers and runs the ctest suite under them:
#
#   pass 1: ASan+UBSan  (-DLASAGNE_SANITIZE=address) — full suite, shakes
#           out the fault-tolerance / recovery paths
#   pass 2: TSan        (-DLASAGNE_SANITIZE=thread)  — the thread-pool /
#           parallel-kernel / determinism tests, plus the observability
#           layer (striped counters, per-thread trace rings), the
#           gradient checks (autograd graph under the pool) and the
#           buffer pool (concurrent acquire/release under ParallelFor)
#
#   tools/run_sanitized_tests.sh [extra ctest args...]
#
# Uses separate build directories (build-sanitize and build-tsan by
# default; override with BUILD_DIR= / TSAN_BUILD_DIR=) so the regular
# build stays untouched. Set LASAGNE_SKIP_TSAN=1 to run only pass 1
# (e.g. on toolchains without TSan support).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO_ROOT/build-sanitize}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-$REPO_ROOT/build-tsan}"

# -- pass 1: ASan+UBSan, full suite ----------------------------------------
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DLASAGNE_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error keeps CI signal crisp; detect_leaks stays on by default.
ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)" "$@"

# -- pass 2: TSan, parallel-kernel tests -----------------------------------
if [[ "${LASAGNE_SKIP_TSAN:-0}" == "1" ]]; then
  echo "LASAGNE_SKIP_TSAN=1: skipping TSan pass"
  exit 0
fi

cmake -B "$TSAN_BUILD_DIR" -S "$REPO_ROOT" \
  -DLASAGNE_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"

# Exercise the pool with more threads than cores so TSan sees real
# interleavings even on small CI machines.
LASAGNE_NUM_THREADS="${LASAGNE_NUM_THREADS:-4}" \
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure \
  -R 'ThreadPool|Parallel|Determinism|Obs|GradCheck|BufferPool|BlockedKernel|FusedOp|Inference|Serving|Plan|PlanFusion|EdgeAttention|SpGemm' "$@"
