#!/usr/bin/env python3
"""Guard against single-thread kernel perf regressions.

Runs ``bench_micro_kernels --benchmark_filter=Large`` fresh and compares
each kernel's single-thread ``items_per_second`` against the committed
baseline in BENCH_kernels.json.  Fails (exit 1) if any kernel regresses
by more than --tolerance (default 15%).

Only the 1-thread rows are compared: multi-thread wall-clock is noisy on
shared CI hosts (the committed baseline was itself taken on a 1-core
container), while single-thread throughput of these compute-bound
kernels is stable enough to gate on.

Usage:
  tools/check_bench_regression.py --bench-binary build/bench/bench_micro_kernels
  tools/check_bench_regression.py --bench-json fresh.json   # pre-recorded run

Kernels present in the fresh run but absent from the baseline (newly
added benchmarks) are reported and skipped; kernels present in the
baseline but missing from the fresh run are an error, since silently
dropping a benchmark would disable its gate.
"""

import argparse
import json
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_kernels.json")

# Matches plain runs ("BM_Foo/threads:1") and aggregate rows from
# --benchmark_repetitions ("BM_Foo/threads:1_median").
_NAME_RE = re.compile(r"^(BM_\w+?)(?:/threads:(\d+))?(?:_(\w+))?$")


def parse_benchmark_json(doc):
    """Returns {kernel: items_per_second} for 1-thread rows.

    Prefers median aggregates when repetitions were requested; falls
    back to the plain (single-run) rows otherwise.
    """
    plain, medians = {}, {}
    for entry in doc.get("benchmarks", []):
        m = _NAME_RE.match(entry.get("name", ""))
        if not m or "items_per_second" not in entry:
            continue
        kernel, threads, aggregate = m.group(1), int(m.group(2) or 1), m.group(3)
        if threads != 1:
            continue
        if aggregate == "median":
            medians[kernel] = entry["items_per_second"]
        elif aggregate is None:
            plain[kernel] = entry["items_per_second"]
    merged = dict(plain)
    merged.update(medians)
    return merged


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        r["kernel"]: r["items_per_second"]
        for r in doc["results"]
        if r.get("threads", 1) == 1
    }


def run_fresh(bench_binary):
    cmd = [
        bench_binary,
        "--benchmark_filter=Large",
        "--benchmark_format=json",
        "--benchmark_repetitions=3",
        "--benchmark_report_aggregates_only=true",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    return json.loads(proc.stdout)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-binary",
                    help="path to the bench_micro_kernels executable")
    ap.add_argument("--bench-json",
                    help="pre-recorded google-benchmark JSON (skips running)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="committed baseline (default: BENCH_kernels.json)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max allowed fractional slowdown (default 0.15)")
    args = ap.parse_args()

    if bool(args.bench_binary) == bool(args.bench_json):
        ap.error("exactly one of --bench-binary / --bench-json is required")

    if args.bench_json:
        with open(args.bench_json) as f:
            doc = json.load(f)
    else:
        doc = run_fresh(args.bench_binary)

    fresh = parse_benchmark_json(doc)
    baseline = load_baseline(args.baseline)
    if not fresh:
        raise SystemExit("no 1-thread benchmark rows found in fresh run")

    failures = []
    for kernel in sorted(set(fresh) | set(baseline)):
        if kernel not in baseline:
            print(f"  NEW   {kernel}: {fresh[kernel]:.3e} items/s "
                  "(no baseline; add it to BENCH_kernels.json)")
            continue
        if kernel not in fresh:
            failures.append(f"{kernel}: present in baseline but missing "
                            "from the fresh run")
            continue
        ratio = fresh[kernel] / baseline[kernel]
        status = "OK" if ratio >= 1.0 - args.tolerance else "SLOW"
        print(f"  {status:<5} {kernel}: {fresh[kernel]:.3e} vs baseline "
              f"{baseline[kernel]:.3e} items/s ({ratio:.2f}x)")
        if status == "SLOW":
            failures.append(
                f"{kernel}: {ratio:.2f}x of baseline "
                f"(allowed >= {1.0 - args.tolerance:.2f}x)")

    if failures:
        print("\nFAIL: single-thread perf regression", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nPASS: no kernel below "
          f"{(1.0 - args.tolerance) * 100:.0f}% of baseline throughput")
    return 0


if __name__ == "__main__":
    sys.exit(main())
