#!/usr/bin/env python3
"""Guard against bench perf regressions (kernels and inference serving).

Kernel mode (``--bench-binary`` / ``--bench-json``): runs
``bench_micro_kernels --benchmark_filter=Large`` fresh and compares each
kernel's single-thread ``items_per_second`` against the committed
baseline in BENCH_kernels.json.  Fails (exit 1) if any kernel regresses
by more than --tolerance (default 15%).

Only the 1-thread rows are compared: multi-thread wall-clock is noisy on
shared CI hosts (the committed baseline was itself taken on a 1-core
container), while single-thread throughput of these compute-bound
kernels is stable enough to gate on.

Inference mode (``--inference-binary`` / ``--inference-json``): runs
``bench_inference_qps`` fresh and, against the committed
BENCH_inference.json baseline, enforces per model:
  * the structural invariant that warm-request BufferPool misses stay
    >= 10x below the cold phase's (same request count, pool trimmed
    before each cold request; hardware independent, strict), and
  * steady-state QPS within --inference-tolerance (default 50%; QPS is
    wall-clock and very noisy on shared hosts) of the baseline.

Only eager-mode rows (``mode`` == "eager", or no ``mode`` field in
older baselines) participate in the inference comparison; plan-mode
rows have their own gate below.

Plan mode (``--plan-binary`` / ``--plan-json``): runs
``bench_inference_qps`` fresh and gates the static execution plan on
that run alone (both sides of each comparison come from the same binary
on the same host, so the gates are strict):
  * every plan-mode row compiled a plan (no silent eager fallback) and
    served its warm requests with exactly zero BufferPool misses — the
    pre-reserved-workspace invariant, and
  * on gcn, plan QPS >= eager QPS.

Fusion mode (``--fusion-binary`` / ``--fusion-json``): runs
``bench_inference_qps`` fresh and gates the plan op-chain fusion pass
on that run alone:
  * every plan-mode row fused at least one op chain (``fused_steps``
    > 0 — the coverage invariant: each zoo model in the bench has a
    known-fusible chain), with the step arithmetic self-consistent
    against the plan-nofuse row of the same model
    (``plan_steps == nofuse_steps - ops_fused_away``), and zero warm
    pool misses in both plan modes, strictly, and
  * on gcn, gat, and lasagne-weighted, fused-plan QPS >= the unfused
        plan's
    QPS less --fusion-slack (default 10%; both rows come from the same
    run, but the absolute difference — one fused step — is near the
    wall-clock noise floor on shared hosts).

Serving mode (``--serving-binary`` / ``--serving-json``): runs
``bench_serving_load`` fresh and, against the committed
BENCH_serving.json baseline, enforces per worker-sweep row:
  * the robustness invariants, strictly and hardware independent:
    ``accounting_ok`` (every submitted request got exactly one terminal
    outcome — zero silent drops), ``drained`` (shutdown left an empty
    queue — no deadlocked workers), and zero INTERNAL failures on rows
    without fault injection, and
  * sustained QPS within --serving-tolerance (default 50%) of baseline
    and p99 latency within --serving-p99-factor (default 5x) of
    baseline — generous, because both are wall-clock dependent on
    shared hosts.

Pool mode (``--pool-binary`` / ``--pool-json``): runs
``bench_serving_load`` fresh and gates the sharded buffer pool
(magazine layer, docs/SERVING.md "Pool sharding") on that run alone.
Per unfaulted worker-sweep row, strictly and hardware independent:
  * the pool columns are present (a bench without them predates the
    sharded pool and cannot certify it),
  * the steady phase was actually served from magazines
    (``magazine_hits`` > 0),
  * steady-phase depot exchanges stay amortized below
    --pool-exchange-cap per served request (default 0.5; the design
    point is ~2 exchanges per 8-request batch on the cross-thread
    path, and exactly zero for same-thread reuse), and
  * steady-phase pool misses stay marginal (<= max(16, 12.5% of
    steady requests)) — the warm-reuse invariant. The budget is not
    zero because the closed-loop burst workload legitimately deepens
    its chunk inventory mid-run: buffers released on producer threads
    park in their magazines, and a scheduling-dependent peak in
    in-flight requests can exceed the cached population, growing it
    by a miss. A genuinely broken pool misses on every acquire
    (several times 100% of requests), far above the budget.
The worker-scaling check (4-worker QPS >= 1-worker QPS) only applies
when the recorded ``hw_cores`` >= 4: on fewer cores extra workers
measure scheduling overhead, not parallelism, and the check is
reported as skipped.

Usage:
  tools/check_bench_regression.py --bench-binary build/bench/bench_micro_kernels
  tools/check_bench_regression.py --bench-json fresh.json   # pre-recorded run
  tools/check_bench_regression.py --inference-binary build/bench/bench_inference_qps
  tools/check_bench_regression.py --serving-binary build/bench/bench_serving_load

Kernels present in the fresh run but absent from the baseline (newly
added benchmarks) are reported and skipped; kernels present in the
baseline but missing from the fresh run are an error, since silently
dropping a benchmark would disable its gate.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_kernels.json")
DEFAULT_INFERENCE_BASELINE = os.path.join(REPO_ROOT, "BENCH_inference.json")
DEFAULT_SERVING_BASELINE = os.path.join(REPO_ROOT, "BENCH_serving.json")

# Matches plain runs ("BM_Foo/threads:1") and aggregate rows from
# --benchmark_repetitions ("BM_Foo/threads:1_median").
_NAME_RE = re.compile(r"^(BM_\w+?)(?:/threads:(\d+))?(?:_(\w+))?$")


def parse_benchmark_json(doc):
    """Returns {kernel: items_per_second} for 1-thread rows.

    Prefers median aggregates when repetitions were requested; falls
    back to the plain (single-run) rows otherwise.
    """
    plain, medians = {}, {}
    for entry in doc.get("benchmarks", []):
        m = _NAME_RE.match(entry.get("name", ""))
        if not m or "items_per_second" not in entry:
            continue
        kernel, threads, aggregate = m.group(1), int(m.group(2) or 1), m.group(3)
        if threads != 1:
            continue
        if aggregate == "median":
            medians[kernel] = entry["items_per_second"]
        elif aggregate is None:
            plain[kernel] = entry["items_per_second"]
    merged = dict(plain)
    merged.update(medians)
    return merged


def load_baseline(path):
    with open(path) as f:
        doc = json.load(f)
    return {
        r["kernel"]: r["items_per_second"]
        for r in doc["results"]
        if r.get("threads", 1) == 1
    }


def run_fresh(bench_binary):
    cmd = [
        bench_binary,
        "--benchmark_filter=Large",
        "--benchmark_format=json",
        "--benchmark_repetitions=3",
        "--benchmark_report_aggregates_only=true",
    ]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
    return json.loads(proc.stdout)


def run_fresh_inference(bench_binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "fresh_inference.json")
        proc = subprocess.run([bench_binary, "--json-out", out],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(
                f"inference bench run failed (exit {proc.returncode})")
        with open(out) as f:
            return json.load(f)


def inference_rows(doc, mode="eager"):
    """Rows of one mode keyed by model. Rows without a ``mode`` field
    predate the execution-plan split and are eager by definition."""
    return {
        r["model"]: r
        for r in doc.get("results", [])
        if r.get("mode", "eager") == mode
    }


def check_inference(fresh_doc, baseline_path, tolerance):
    """Returns a list of failure strings (empty on success)."""
    with open(baseline_path) as f:
        baseline = inference_rows(json.load(f))
    fresh = inference_rows(fresh_doc)
    failures = []
    for model in sorted(set(fresh) | set(baseline)):
        if model not in baseline:
            print(f"  NEW   {model}: {fresh[model]['qps']:.1f} QPS "
                  "(no baseline; add it to BENCH_inference.json)")
            continue
        if model not in fresh:
            failures.append(f"{model}: present in baseline but missing "
                            "from the fresh run")
            continue
        row = fresh[model]
        # Structural invariant: warm requests reuse pooled buffers.
        cold = row["cold_pool_misses"]
        warm = max(row["warm_pool_misses"], 1)
        if cold < 10 * warm:
            failures.append(
                f"{model}: warm pool misses did not collapse "
                f"(cold={cold:.0f}, warm={warm:.0f}, need >= 10x)")
            pool_status = "POOL!"
        else:
            pool_status = "OK"
        ratio = row["qps"] / baseline[model]["qps"]
        qps_status = "OK" if ratio >= 1.0 - tolerance else "SLOW"
        print(f"  {qps_status:<5} {model}: {row['qps']:.1f} vs baseline "
              f"{baseline[model]['qps']:.1f} QPS ({ratio:.2f}x), "
              f"pool {pool_status} (cold={cold:.0f} warm={warm:.0f})")
        if qps_status == "SLOW":
            failures.append(
                f"{model}: {ratio:.2f}x of baseline QPS "
                f"(allowed >= {1.0 - tolerance:.2f}x)")
    return failures


def check_plan(fresh_doc):
    """Returns a list of failure strings (empty on success).

    Plan mode gates on the FRESH run alone — both invariants compare
    rows produced seconds apart by the same binary on the same host, so
    no cross-machine tolerance is needed:
      * every plan-mode row must be served entirely from the plan's
        pre-reserved workspace: warm_pool_misses == 0, strictly, and the
        plan must actually have compiled (no silent eager fallback), and
      * on gcn, plan QPS must be >= eager QPS from the same run.
    """
    eager = inference_rows(fresh_doc, "eager")
    plan = inference_rows(fresh_doc, "plan")
    failures = []
    if not plan:
        return ["no plan-mode rows in the fresh run"]
    for model in sorted(plan):
        row = plan[model]
        problems = []
        if not row.get("plan_compiled"):
            problems.append("plan did not compile (silent eager fallback)")
        if row["warm_pool_misses"] != 0:
            problems.append(
                f"{row['warm_pool_misses']:.0f} warm pool misses (must be 0)")
        status = "OK" if not problems else "PLAN!"
        print(f"  {status:<5} {model} [plan]: {row['qps']:.1f} QPS, "
              f"warm misses {row['warm_pool_misses']:.0f}, workspace "
              f"{row.get('workspace_bytes', 0) / 1024.0:.0f} KiB")
        for problem in problems:
            failures.append(f"{model}: {problem}")
    if "gcn" not in plan or "gcn" not in eager:
        failures.append("gcn missing from plan/eager rows; cannot gate "
                        "plan-vs-eager QPS")
    else:
        ratio = plan["gcn"]["qps"] / eager["gcn"]["qps"]
        status = "OK" if ratio >= 1.0 else "SLOW"
        print(f"  {status:<5} gcn: plan {plan['gcn']['qps']:.1f} vs eager "
              f"{eager['gcn']['qps']:.1f} QPS ({ratio:.2f}x)")
        if ratio < 1.0:
            failures.append(
                f"gcn: plan QPS {ratio:.2f}x of eager (same-run; must be "
                ">= 1.0x)")
    return failures


def check_fusion(fresh_doc, slack):
    """Returns a list of failure strings (empty on success).

    Fusion mode gates on the FRESH run alone, comparing the "plan"
    (fused) and "plan-nofuse" rows the same binary produced seconds
    apart:
      * structure, strictly: every fused row compiled, fused at least
        one chain, kept zero warm pool misses, never grew the
        workspace, and its step count equals the unfused row's minus
        the ops fused away; every plan-nofuse row fused nothing, and
      * wall clock, with --fusion-slack: on gcn, gat, and lasagne-weighted
        the fused plan's QPS must not fall below (1 - slack)x the
        unfused plan's.
    """
    fused = inference_rows(fresh_doc, "plan")
    unfused = inference_rows(fresh_doc, "plan-nofuse")
    failures = []
    if not fused:
        return ["no plan-mode rows in the fresh run"]
    if not unfused:
        return ["no plan-nofuse rows in the fresh run (bench too old?)"]
    for model in sorted(fused):
        row = fused[model]
        problems = []
        if not row.get("plan_compiled"):
            problems.append("fused plan did not compile")
        if row.get("fused_steps", 0) <= 0:
            problems.append("no op chain fused (fused_steps == 0)")
        if row["warm_pool_misses"] != 0:
            problems.append(
                f"{row['warm_pool_misses']:.0f} warm pool misses (must be 0)")
        base = unfused.get(model)
        if base is None:
            problems.append("no plan-nofuse row for this model")
        else:
            if base.get("fused_steps", 0) != 0:
                problems.append("plan-nofuse row reports fused steps")
            if base["warm_pool_misses"] != 0:
                problems.append(
                    f"plan-nofuse: {base['warm_pool_misses']:.0f} warm pool "
                    "misses (must be 0)")
            want = base.get("plan_steps", 0) - row.get("ops_fused_away", 0)
            if row.get("plan_steps", 0) != want:
                problems.append(
                    f"step arithmetic broken: {row.get('plan_steps', 0):.0f} "
                    f"fused steps vs {base.get('plan_steps', 0):.0f} unfused "
                    f"- {row.get('ops_fused_away', 0):.0f} fused away")
            if row.get("workspace_bytes", 0) > base.get("workspace_bytes", 0):
                problems.append(
                    "fused workspace grew: "
                    f"{row.get('workspace_bytes', 0):.0f} vs "
                    f"{base.get('workspace_bytes', 0):.0f} bytes")
        status = "OK" if not problems else "FUSE!"
        print(f"  {status:<5} {model}: {row.get('plan_steps', 0):.0f} steps "
              f"({row.get('fused_steps', 0):.0f} fused, "
              f"{row.get('ops_fused_away', 0):.0f} ops away), "
              f"{row['qps']:.1f} QPS")
        for problem in problems:
            failures.append(f"{model}: {problem}")
    for model in ("gcn", "gat", "lasagne-weighted"):
        if model not in fused or model not in unfused:
            failures.append(f"{model} missing from plan/plan-nofuse rows; "
                            "cannot gate fused-vs-unfused QPS")
            continue
        ratio = fused[model]["qps"] / unfused[model]["qps"]
        status = "OK" if ratio >= 1.0 - slack else "SLOW"
        print(f"  {status:<5} {model}: fused {fused[model]['qps']:.1f} vs "
              f"unfused {unfused[model]['qps']:.1f} QPS ({ratio:.2f}x)")
        if status == "SLOW":
            failures.append(
                f"{model}: fused plan {ratio:.2f}x of unfused QPS "
                f"(allowed >= {1.0 - slack:.2f}x, same run)")
    return failures


def run_fresh_serving(bench_binary):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "fresh_serving.json")
        proc = subprocess.run([bench_binary, "--json-out", out],
                              capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stderr)
            raise SystemExit(
                f"serving bench run failed (exit {proc.returncode})")
        with open(out) as f:
            return json.load(f)


def serving_rows(doc):
    return {r["config"]: r for r in doc.get("results", [])}


def check_serving(fresh_doc, baseline_path, tolerance, p99_factor):
    """Returns a list of failure strings (empty on success).

    The correctness invariants (accounting, drain, no unfaulted
    failures) gate strictly on the FRESH run alone; the baseline is only
    consulted for the wall-clock comparisons.
    """
    with open(baseline_path) as f:
        baseline = serving_rows(json.load(f))
    fresh = serving_rows(fresh_doc)
    failures = []
    for config in sorted(set(fresh) | set(baseline)):
        if config not in fresh:
            failures.append(f"{config}: present in baseline but missing "
                            "from the fresh run")
            continue
        row = fresh[config]
        # Strict, hardware-independent robustness invariants.
        invariants = []
        if not row.get("accounting_ok"):
            invariants.append("requests dropped (accounting_ok false)")
        if not row.get("drained"):
            invariants.append("shutdown did not drain (drained false)")
        if not row.get("faulted") and row.get("failed", 0) > 0:
            invariants.append(
                f"{row['failed']:.0f} INTERNAL failures without fault "
                "injection")
        if row.get("served_ok", 0) <= 0:
            invariants.append("no request served successfully")
        for problem in invariants:
            failures.append(f"{config}: {problem}")
        inv_status = "OK" if not invariants else "INV!"
        if config not in baseline:
            print(f"  NEW   {config}: {row['qps']:.1f} QPS, "
                  f"p99 {row['p99_ms']:.2f} ms, invariants {inv_status} "
                  "(no baseline; add it to BENCH_serving.json)")
            continue
        # Generous wall-clock comparisons.
        base = baseline[config]
        qps_ratio = row["qps"] / base["qps"] if base["qps"] > 0 else 1.0
        qps_ok = qps_ratio >= 1.0 - tolerance
        p99_ratio = (row["p99_ms"] / base["p99_ms"]
                     if base["p99_ms"] > 0 else 1.0)
        p99_ok = p99_ratio <= p99_factor
        status = "OK" if qps_ok and p99_ok and not invariants else "SLOW" \
            if not invariants else "INV!"
        print(f"  {status:<5} {config}: {row['qps']:.1f} vs baseline "
              f"{base['qps']:.1f} QPS ({qps_ratio:.2f}x), p99 "
              f"{row['p99_ms']:.2f} vs {base['p99_ms']:.2f} ms "
              f"({p99_ratio:.2f}x), invariants {inv_status}")
        if not qps_ok:
            failures.append(
                f"{config}: {qps_ratio:.2f}x of baseline QPS "
                f"(allowed >= {1.0 - tolerance:.2f}x)")
        if not p99_ok:
            failures.append(
                f"{config}: p99 {p99_ratio:.2f}x of baseline "
                f"(allowed <= {p99_factor:.1f}x)")
    return failures


def check_pool(fresh_doc, exchange_cap):
    """Returns a list of failure strings (empty on success).

    Pool mode gates on the FRESH run alone: every invariant below is a
    property of the sharded pool's steady-state behavior, measured by
    counters the bench snapshots around its steady phase, so no
    cross-machine tolerance is needed.
    """
    fresh = serving_rows(fresh_doc)
    failures = []
    pool_fields = ("steady_requests", "magazine_hits", "depot_refills",
                   "depot_flushes", "steady_pool_misses",
                   "depot_exchanges_per_request")
    unfaulted = {c: r for c, r in fresh.items() if not r.get("faulted")}
    if not unfaulted:
        return ["no unfaulted rows in the fresh run"]
    for config in sorted(unfaulted):
        row = unfaulted[config]
        missing = [f for f in pool_fields if f not in row]
        if missing:
            failures.append(f"{config}: missing pool fields "
                            f"{', '.join(missing)} (bench too old?)")
            continue
        problems = []
        steady = row["steady_requests"]
        if steady <= 0:
            problems.append("no steady-phase requests served")
        if row["magazine_hits"] <= 0:
            problems.append("zero magazine hits (sharding inactive?)")
        exchanges = row["depot_exchanges_per_request"]
        if exchanges > exchange_cap:
            problems.append(
                f"depot exchanges {exchanges:.3f}/request "
                f"(allowed <= {exchange_cap:.2f}; depot mutex is back on "
                "the steady-state path)")
        # Nonzero budget: the bursty closed loop legitimately deepens
        # its chunk inventory mid-run (see the module docstring); a
        # broken pool misses on every acquire, far above this.
        miss_budget = max(16.0, 0.125 * steady)
        if row["steady_pool_misses"] > miss_budget:
            problems.append(
                f"{row['steady_pool_misses']:.0f} steady pool misses "
                f"(allowed <= {miss_budget:.0f}; warm reuse broken)")
        status = "OK" if not problems else "POOL!"
        print(f"  {status:<5} {config}: {row['magazine_hits']:.0f} magazine "
              f"hits, {row['depot_refills']:.0f}+{row['depot_flushes']:.0f} "
              f"depot exchanges over {steady:.0f} requests "
              f"({exchanges:.3f}/rq), {row['steady_pool_misses']:.0f} misses")
        for problem in problems:
            failures.append(f"{config}: {problem}")
    # Worker scaling only means parallelism on a multi-core host.
    hw_cores = int(fresh_doc.get("hw_cores", 0))
    if hw_cores >= 4:
        if "4w" not in unfaulted or "1w" not in unfaulted:
            failures.append("1w/4w rows missing; cannot gate worker scaling")
        else:
            ratio = (unfaulted["4w"]["qps"] / unfaulted["1w"]["qps"]
                     if unfaulted["1w"]["qps"] > 0 else 0.0)
            status = "OK" if ratio >= 1.0 else "SLOW"
            print(f"  {status:<5} scaling: 4w {unfaulted['4w']['qps']:.1f} vs "
                  f"1w {unfaulted['1w']['qps']:.1f} QPS ({ratio:.2f}x, "
                  f"{hw_cores} cores)")
            if ratio < 1.0:
                failures.append(
                    f"4-worker QPS {ratio:.2f}x of 1-worker on a "
                    f"{hw_cores}-core host (sharding should make workers "
                    "scale; must be >= 1.0x)")
    else:
        print(f"  SKIP  scaling: hw_cores={hw_cores} < 4 — extra workers "
              "measure scheduling overhead here, not parallel speedup")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-binary",
                    help="path to the bench_micro_kernels executable")
    ap.add_argument("--bench-json",
                    help="pre-recorded google-benchmark JSON (skips running)")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE,
                    help="committed baseline (default: BENCH_kernels.json)")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="max allowed fractional slowdown (default 0.15)")
    ap.add_argument("--inference-binary",
                    help="path to the bench_inference_qps executable")
    ap.add_argument("--inference-json",
                    help="pre-recorded bench_inference_qps JSON")
    ap.add_argument("--inference-baseline",
                    default=DEFAULT_INFERENCE_BASELINE,
                    help="committed baseline (default: BENCH_inference.json)")
    ap.add_argument("--inference-tolerance", type=float, default=0.5,
                    help="max allowed fractional QPS slowdown (default 0.5)")
    ap.add_argument("--plan-binary",
                    help="path to the bench_inference_qps executable "
                         "(gates plan mode: zero warm misses, "
                         "plan >= eager QPS on gcn, same run)")
    ap.add_argument("--plan-json",
                    help="pre-recorded bench_inference_qps JSON for the "
                         "plan gate")
    ap.add_argument("--fusion-binary",
                    help="path to the bench_inference_qps executable "
                         "(gates the fusion pass: every chain fused, "
                         "fused >= unfused-plan QPS, same run)")
    ap.add_argument("--fusion-json",
                    help="pre-recorded bench_inference_qps JSON for the "
                         "fusion gate")
    ap.add_argument("--fusion-slack", type=float, default=0.10,
                    help="allowed fused-vs-unfused QPS shortfall "
                         "(default 0.10)")
    ap.add_argument("--serving-binary",
                    help="path to the bench_serving_load executable")
    ap.add_argument("--serving-json",
                    help="pre-recorded bench_serving_load JSON")
    ap.add_argument("--serving-baseline", default=DEFAULT_SERVING_BASELINE,
                    help="committed baseline (default: BENCH_serving.json)")
    ap.add_argument("--serving-tolerance", type=float, default=0.5,
                    help="max allowed fractional QPS slowdown (default 0.5)")
    ap.add_argument("--serving-p99-factor", type=float, default=5.0,
                    help="max allowed p99 growth vs baseline (default 5x)")
    ap.add_argument("--pool-binary",
                    help="path to the bench_serving_load executable "
                         "(gates the sharded pool: magazine hits, "
                         "amortized depot exchanges, warm reuse)")
    ap.add_argument("--pool-json",
                    help="pre-recorded bench_serving_load JSON for the "
                         "pool gate")
    ap.add_argument("--pool-exchange-cap", type=float, default=0.5,
                    help="max amortized depot exchanges per steady "
                         "request (default 0.5)")
    args = ap.parse_args()

    pool_mode = bool(args.pool_binary) or bool(args.pool_json)
    if pool_mode:
        if bool(args.pool_binary) == bool(args.pool_json):
            ap.error("exactly one of --pool-binary / --pool-json "
                     "is required")
        if args.pool_json:
            with open(args.pool_json) as f:
                fresh_doc = json.load(f)
        else:
            fresh_doc = run_fresh_serving(args.pool_binary)
        failures = check_pool(fresh_doc, args.pool_exchange_cap)
        if failures:
            print("\nFAIL: pool-sharding regression", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("\nPASS: steady-state serving runs from magazines — depot "
              f"exchanges <= {args.pool_exchange_cap:.2f}/request and "
              "warm misses marginal on every unfaulted row")
        return 0

    serving_mode = bool(args.serving_binary) or bool(args.serving_json)
    if serving_mode:
        if bool(args.serving_binary) == bool(args.serving_json):
            ap.error("exactly one of --serving-binary / --serving-json "
                     "is required")
        if args.serving_json:
            with open(args.serving_json) as f:
                fresh_doc = json.load(f)
        else:
            fresh_doc = run_fresh_serving(args.serving_binary)
        failures = check_serving(fresh_doc, args.serving_baseline,
                                 args.serving_tolerance,
                                 args.serving_p99_factor)
        if failures:
            print("\nFAIL: serving regression", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("\nPASS: zero drops, deterministic drain, and every config "
              f"within {(1.0 - args.serving_tolerance) * 100:.0f}% QPS / "
              f"{args.serving_p99_factor:.0f}x p99 of baseline")
        return 0

    fusion_mode = bool(args.fusion_binary) or bool(args.fusion_json)
    if fusion_mode:
        if bool(args.fusion_binary) == bool(args.fusion_json):
            ap.error("exactly one of --fusion-binary / --fusion-json "
                     "is required")
        if args.fusion_json:
            with open(args.fusion_json) as f:
                fresh_doc = json.load(f)
        else:
            fresh_doc = run_fresh_inference(args.fusion_binary)
        failures = check_fusion(fresh_doc, args.fusion_slack)
        if failures:
            print("\nFAIL: plan-fusion regression", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("\nPASS: every expected chain fused, zero warm pool misses, "
              "and fused >= unfused-plan QPS on gcn, gat, and lasagne-weighted")
        return 0

    plan_mode = bool(args.plan_binary) or bool(args.plan_json)
    if plan_mode:
        if bool(args.plan_binary) == bool(args.plan_json):
            ap.error("exactly one of --plan-binary / --plan-json "
                     "is required")
        if args.plan_json:
            with open(args.plan_json) as f:
                fresh_doc = json.load(f)
        else:
            fresh_doc = run_fresh_inference(args.plan_binary)
        failures = check_plan(fresh_doc)
        if failures:
            print("\nFAIL: execution-plan regression", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("\nPASS: every plan compiled, zero warm pool misses, and "
              "plan >= eager QPS on gcn")
        return 0

    inference_mode = bool(args.inference_binary) or bool(args.inference_json)
    if inference_mode:
        if bool(args.inference_binary) == bool(args.inference_json):
            ap.error("exactly one of --inference-binary / --inference-json "
                     "is required")
        if args.inference_json:
            with open(args.inference_json) as f:
                fresh_doc = json.load(f)
        else:
            fresh_doc = run_fresh_inference(args.inference_binary)
        failures = check_inference(fresh_doc, args.inference_baseline,
                                   args.inference_tolerance)
        if failures:
            print("\nFAIL: inference serving regression", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
            return 1
        print("\nPASS: pool-miss collapse holds and no model below "
              f"{(1.0 - args.inference_tolerance) * 100:.0f}% of baseline "
              "QPS")
        return 0

    if bool(args.bench_binary) == bool(args.bench_json):
        ap.error("exactly one of --bench-binary / --bench-json is required")

    if args.bench_json:
        with open(args.bench_json) as f:
            doc = json.load(f)
    else:
        doc = run_fresh(args.bench_binary)

    fresh = parse_benchmark_json(doc)
    baseline = load_baseline(args.baseline)
    if not fresh:
        raise SystemExit("no 1-thread benchmark rows found in fresh run")

    failures = []
    for kernel in sorted(set(fresh) | set(baseline)):
        if kernel not in baseline:
            print(f"  NEW   {kernel}: {fresh[kernel]:.3e} items/s "
                  "(no baseline; add it to BENCH_kernels.json)")
            continue
        if kernel not in fresh:
            failures.append(f"{kernel}: present in baseline but missing "
                            "from the fresh run")
            continue
        ratio = fresh[kernel] / baseline[kernel]
        status = "OK" if ratio >= 1.0 - args.tolerance else "SLOW"
        print(f"  {status:<5} {kernel}: {fresh[kernel]:.3e} vs baseline "
              f"{baseline[kernel]:.3e} items/s ({ratio:.2f}x)")
        if status == "SLOW":
            failures.append(
                f"{kernel}: {ratio:.2f}x of baseline "
                f"(allowed >= {1.0 - args.tolerance:.2f}x)")

    if failures:
        print("\nFAIL: single-thread perf regression", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nPASS: no kernel below "
          f"{(1.0 - args.tolerance) * 100:.0f}% of baseline throughput")
    return 0


if __name__ == "__main__":
    sys.exit(main())
