#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace lasagne {
namespace {

TEST(TensorTest, ConstructionAndShape) {
  Tensor t(3, 4);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 4u);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_FLOAT_EQ(t(2, 3), 0.0f);
}

TEST(TensorTest, FactoriesProduceExpectedValues) {
  EXPECT_FLOAT_EQ(Tensor::Ones(2, 2)(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(Tensor::Full(2, 2, 3.5f)(0, 1), 3.5f);
  Tensor id = Tensor::Identity(3);
  EXPECT_FLOAT_EQ(id(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(id(0, 1), 0.0f);
}

TEST(TensorTest, RowAndColumnVector) {
  Tensor r = Tensor::RowVector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_EQ(r.cols(), 3u);
  Tensor c = Tensor::ColumnVector({1.0f, 2.0f});
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 1u);
}

TEST(TensorTest, ElementwiseArithmetic) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor b(2, 2, {5, 6, 7, 8});
  Tensor sum = a + b;
  EXPECT_FLOAT_EQ(sum(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(sum(1, 1), 12.0f);
  Tensor diff = b - a;
  EXPECT_FLOAT_EQ(diff(1, 0), 4.0f);
  Tensor had = a * b;
  EXPECT_FLOAT_EQ(had(0, 1), 12.0f);
  Tensor scaled = a * 2.0f;
  EXPECT_FLOAT_EQ(scaled(1, 1), 8.0f);
  EXPECT_FLOAT_EQ((2.0f * a)(1, 1), 8.0f);
}

TEST(TensorTest, AxpyAccumulates) {
  Tensor a(1, 3, {1, 1, 1});
  Tensor b(1, 3, {1, 2, 3});
  a.Axpy(2.0f, b);
  EXPECT_FLOAT_EQ(a(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(a(0, 2), 7.0f);
}

TEST(TensorTest, MatMulMatchesHandComputation) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = a.MatMul(b);
  EXPECT_FLOAT_EQ(c(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 154.0f);
}

TEST(TensorTest, TransposedMatMulVariantsAgree) {
  Rng rng(1);
  Tensor a = Tensor::Normal(4, 3, 0.0f, 1.0f, rng);
  Tensor b = Tensor::Normal(4, 5, 0.0f, 1.0f, rng);
  Tensor direct = a.Transpose().MatMul(b);
  Tensor fused = a.TransposedMatMul(b);
  EXPECT_LT(direct.MaxAbsDiff(fused), 1e-5f);

  Tensor c = Tensor::Normal(5, 3, 0.0f, 1.0f, rng);
  Tensor direct2 = a.MatMul(c.Transpose());
  Tensor fused2 = a.MatMulTransposed(c);
  EXPECT_LT(direct2.MaxAbsDiff(fused2), 1e-5f);
}

TEST(TensorTest, Reductions) {
  Tensor a(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(a.Sum(), 21.0f);
  EXPECT_FLOAT_EQ(a.Mean(), 3.5f);
  EXPECT_FLOAT_EQ(a.Min(), 1.0f);
  EXPECT_FLOAT_EQ(a.Max(), 6.0f);
  EXPECT_FLOAT_EQ(a.SquaredNorm(), 91.0f);
  EXPECT_NEAR(a.Norm(), std::sqrt(91.0f), 1e-5f);
  Tensor rs = a.RowSum();
  EXPECT_FLOAT_EQ(rs(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rs(1, 0), 15.0f);
  Tensor cs = a.ColSum();
  EXPECT_FLOAT_EQ(cs(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(cs(0, 2), 9.0f);
  Tensor rm = a.RowMean();
  EXPECT_FLOAT_EQ(rm(1, 0), 5.0f);
}

TEST(TensorTest, ArgMaxPerRow) {
  Tensor a(2, 3, {1, 9, 3, 7, 5, 6});
  std::vector<size_t> am = a.ArgMaxPerRow();
  EXPECT_EQ(am[0], 1u);
  EXPECT_EQ(am[1], 0u);
}

TEST(TensorTest, GatherRowsCopiesSelection) {
  Tensor a(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = a.GatherRows({2, 0});
  EXPECT_FLOAT_EQ(g(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g(1, 1), 2.0f);
}

TEST(TensorTest, MapAppliesFunction) {
  Tensor a(1, 3, {-1, 0, 2});
  Tensor relu = a.Map([](float v) { return v > 0 ? v : 0.0f; });
  EXPECT_FLOAT_EQ(relu(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(relu(0, 2), 2.0f);
}

TEST(TensorTest, AllFiniteDetectsNan) {
  Tensor a(1, 2, {1.0f, 2.0f});
  EXPECT_TRUE(a.AllFinite());
  a(0, 1) = std::nanf("");
  EXPECT_FALSE(a.AllFinite());
}

TEST(TensorTest, GlorotBoundsRespected) {
  Rng rng(7);
  Tensor w = Tensor::GlorotUniform(64, 32, rng);
  const float bound = std::sqrt(6.0f / (64 + 32));
  EXPECT_LE(w.Max(), bound);
  EXPECT_GE(w.Min(), -bound);
  // Mean should be near zero.
  EXPECT_NEAR(w.Mean(), 0.0f, 0.02f);
}

TEST(RngTest, DeterministicStreams) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) counts[rng.UniformInt(7)]++;
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(13);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(17);
  std::vector<size_t> s = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(s.size(), 20u);
  std::sort(s.begin(), s.end());
  EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
  for (size_t v : s) EXPECT_LT(v, 50u);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace lasagne
