// Execution-plan op-chain fusion (docs/INFERENCE.md): a differential
// fuzz harness over random layer stacks proving fused plans are
// bitwise-identical to the eager forward (1/2/8 threads, obs on/off,
// zero warm workspace misses), a coverage matrix pinning exactly which
// chains fuse in each zoo model, and negative cases — multi-consumer
// intermediates must not fuse, untraced ops break chains cleanly, and
// every opt-out flag still bypasses the pass.
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/edge_ops.h"
#include "autograd/forward_trace.h"
#include "autograd/inference.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "infer/plan.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"

// The pool intentionally bypasses its cache under AddressSanitizer so
// use-after-free stays visible; the workspace (and therefore the
// zero-miss steady state) is compiled out with it.
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_CACHED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_CACHED 0
#endif
#endif
#ifndef LASAGNE_POOL_CACHED
#define LASAGNE_POOL_CACHED 1
#endif

namespace lasagne {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": fused-plan values differ from the eager forward";
}

ModelConfig SmallConfig(uint64_t seed = 3) {
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.4f;
  config.seed = seed;
  return config;
}

Tensor EagerLogits(Model& model) {
  Rng rng(9);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  return model.Forward(ctx)->value();
}

Tensor PlanLogits(Model& model) {
  Rng rng(9);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  return model.Predict(ctx);
}

// -- Differential fuzz ------------------------------------------------------

enum class Act { kNone, kRelu, kLeakyRelu, kTanh };

struct LayerSpec {
  size_t width = 0;
  bool bias = false;
  bool aggregate = false;  // SpMM with a_hat after the linear part
  Act act = Act::kNone;
};

/// Random linear/aggregate/activation stack drawn from a seed:
///   h = act(SpMM?(h @ W (+ bias)))  per layer.
/// Covers every fusion rule the pass implements for dense chains
/// (MatMul+Bias, MatMul+Bias+act, SpMM+act), plus deliberate
/// non-fusible material (Tanh, bias-less MatMul, SpMM without act).
class RandomStackModel : public Model {
 public:
  RandomStackModel(const Dataset& data, uint64_t seed)
      : Model("fuzz-stack-" + std::to_string(seed), data) {
    Rng rng(seed * 977 + 11);
    a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
    features_ = ag::MakeConstant(data.features);
    const size_t depth = 1 + rng.UniformInt(4);
    size_t in_dim = data.feature_dim();
    for (size_t l = 0; l < depth; ++l) {
      LayerSpec spec;
      spec.width = 3 + rng.UniformInt(38);
      spec.bias = rng.UniformInt(2) == 0;
      spec.aggregate = rng.UniformInt(2) == 0;
      spec.act = static_cast<Act>(rng.UniformInt(4));
      weights_.push_back(ag::MakeParameter(
          Tensor::GlorotUniform(in_dim, spec.width, rng)));
      biases_.push_back(spec.bias
                            ? ag::MakeParameter(Tensor::Normal(
                                  1, spec.width, 0.0f, 0.1f, rng))
                            : ag::Variable());
      specs_.push_back(spec);
      in_dim = spec.width;
    }
  }

  ag::Variable Forward(const nn::ForwardContext&) override {
    ag::Variable h = features_;
    for (size_t l = 0; l < specs_.size(); ++l) {
      h = ag::MatMul(h, weights_[l]);
      if (specs_[l].bias) h = ag::AddRowVector(h, biases_[l]);
      if (specs_[l].aggregate) h = ag::SpMM(a_hat_, h);
      switch (specs_[l].act) {
        case Act::kNone:
          break;
        case Act::kRelu:
          h = ag::Relu(h);
          break;
        case Act::kLeakyRelu:
          h = ag::LeakyRelu(h, 0.2f);
          break;
        case Act::kTanh:
          h = ag::Tanh(h);
          break;
      }
    }
    return h;
  }

  std::vector<ag::Variable> Parameters() const override {
    std::vector<ag::Variable> params = weights_;
    for (const ag::Variable& b : biases_) {
      if (b != nullptr) params.push_back(b);
    }
    return params;
  }

  /// What the fusion pass must do to this stack, derived independently
  /// from the layer specs: {fused steps, traced ops fused away}.
  std::pair<size_t, size_t> ExpectedFusion() const {
    size_t fused_steps = 0;
    size_t fused_away = 0;
    for (const LayerSpec& s : specs_) {
      const bool fusible_act = s.act == Act::kRelu || s.act == Act::kLeakyRelu;
      if (s.bias) {
        // MatMul→AddRowVector always pairs; the activation joins the
        // triple only when no aggregate sits between them.
        ++fused_steps;
        fused_away += (!s.aggregate && fusible_act) ? 2 : 1;
      }
      if (s.aggregate && fusible_act) {
        ++fused_steps;
        ++fused_away;
      }
    }
    return {fused_steps, fused_away};
  }

 private:
  std::shared_ptr<const CsrMatrix> a_hat_;
  ag::Variable features_;
  std::vector<ag::Variable> weights_;
  std::vector<ag::Variable> biases_;
  std::vector<LayerSpec> specs_;
};

TEST(PlanFusionFuzzTest, RandomStacksMatchEagerBitwise) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.15, 53);
  constexpr uint64_t kStacks = 50;
  size_t stacks_with_fusion = 0;
  for (uint64_t seed = 1; seed <= kStacks; ++seed) {
    RandomStackModel model(data, seed);
    const std::string tag = "stack seed " + std::to_string(seed);

    obs::DisableMetrics();
    for (size_t threads : {1u, 2u, 8u}) {
      SetNumThreads(threads);
      const Tensor reference = EagerLogits(model);
      ExpectBitwiseEqual(reference, PlanLogits(model),
                         tag + " @ " + std::to_string(threads) + " threads");
      // Observability must not perturb the fused kernels.
      obs::EnableMetrics();
      ExpectBitwiseEqual(reference, PlanLogits(model),
                         tag + " @ " + std::to_string(threads) +
                             " threads, obs on");
      obs::DisableMetrics();
    }

    // The pass must fire exactly where the layer specs predict — no
    // missed chains, no over-eager rewrites.
    ASSERT_NE(model.execution_plan(), nullptr)
        << tag << ": " << model.plan_status().ToString();
    const infer::PlanInfo info = model.execution_plan()->info();
    const auto [want_fused, want_away] = model.ExpectedFusion();
    EXPECT_EQ(info.fused_steps, want_fused)
        << tag << ": " << model.execution_plan()->OpSummary().ToString();
    EXPECT_EQ(info.ops_fused_away, want_away)
        << tag << ": " << model.execution_plan()->OpSummary().ToString();
    EXPECT_EQ(info.steps, info.traced_ops - info.ops_fused_away) << tag;
    if (info.fused_steps > 0) ++stacks_with_fusion;

#if LASAGNE_POOL_CACHED
    // Steady state: the fused plan serves every intermediate from its
    // pre-reserved workspace — zero global-pool misses on warm runs.
    (void)PlanLogits(model);
    const BufferPool::ThreadStats before = BufferPool::GetThreadStats();
    (void)PlanLogits(model);
    const BufferPool::ThreadStats after = BufferPool::GetThreadStats();
    EXPECT_EQ(after.misses - before.misses, 0u) << tag;
    EXPECT_EQ(model.execution_plan()->overflow_acquires(), 0u) << tag;
#endif
  }
  // The draw must actually exercise the pass (deterministic seeds, so
  // this is a property of the harness, not luck).
  EXPECT_GT(stacks_with_fusion, kStacks / 2);
}

// -- Coverage matrix --------------------------------------------------------

struct ExpectedCoverage {
  std::string model;
  std::vector<std::pair<std::string, size_t>> fused_counts;
  size_t fused_steps;
  size_t ops_fused_away;
};

TEST(PlanFusionCoverageTest, ZooModelsFuseExpectedChains) {
  // Exact per-model fusion census. A change that silently de-fuses a
  // chain (or fuses a new one) must fail here, not just get slower.
  // gcn: depth-2 conv, relu on the hidden layer only -> 1 SpMM+Relu.
  // gat: 4 heads + 1 output head, each head super-fusing its whole
  //      4-op attention chain (Gather→LeakyRelu→Softmax→Aggregate)
  //      into one EdgeAttention step — NOT the older pairwise
  //      two-step split, which was slower than the raw chain.
  // adsf: same 5 heads, each chain carrying the structural-fingerprint
  //      AddEdgeBias too, so every EdgeAttention step covers 5 ops.
  // graphsage: its Linears carry no bias, so the only fusible chain is
  //      the hidden layer's self+neighbor Add into its Relu.
  // lasagne-weighted: the hidden conv's SpMM+Relu; the GC-FM tail
  //      (SliceCols, FmInteraction, RowScale) stays opaque and the
  //      output conv has no activation.
  const std::vector<ExpectedCoverage> expectations = {
      {"gcn", {{"SpMM+Relu", 1}}, 1, 1},
      {"gat", {{"EdgeAttention", 5}}, 5, 15},
      {"adsf", {{"EdgeAttention", 5}}, 5, 20},
      {"graphsage", {{"Add+Relu", 1}}, 1, 1},
      {"lasagne-weighted", {{"SpMM+Relu", 1}}, 1, 1},
  };
  Dataset data = LoadDataset("cora", 0.3, 17);
  for (const ExpectedCoverage& want : expectations) {
    std::unique_ptr<Model> model = MakeModel(want.model, data, SmallConfig());
    (void)PlanLogits(*model);
    ASSERT_NE(model->execution_plan(), nullptr)
        << want.model << ": " << model->plan_status().ToString();
    const infer::PlanOpSummary summary = model->execution_plan()->OpSummary();
    for (const auto& [op_name, count] : want.fused_counts) {
      EXPECT_EQ(summary.Count(op_name), count)
          << want.model << " '" << op_name << "': " << summary.ToString();
    }
    EXPECT_EQ(summary.fused_steps, want.fused_steps)
        << want.model << ": " << summary.ToString();
    EXPECT_EQ(summary.ops_fused_away, want.ops_fused_away)
        << want.model << ": " << summary.ToString();
    // Every zoo model must see a nonzero fusion win.
    EXPECT_GT(summary.fused_steps, 0u) << want.model;
    // Census bookkeeping is self-consistent.
    EXPECT_EQ(summary.steps, summary.traced_ops - summary.ops_fused_away)
        << want.model;
    size_t total = 0;
    for (const auto& [op_name, count] : summary.op_counts) total += count;
    EXPECT_EQ(total, summary.steps) << want.model;
  }
}

TEST(PlanFusionCoverageTest, FusionShrinksStepCountAndWorkspace) {
  // The same model compiled with and without the pass: fusion must
  // remove steps, and the fused-away intermediates must leave the
  // workspace sizing run (never grow it).
  Dataset data = LoadDataset("cora", 0.3, 17);
  for (const char* name :
       {"gcn", "gat", "adsf", "graphsage", "lasagne-weighted"}) {
    std::unique_ptr<Model> fused = MakeModel(name, data, SmallConfig());
    std::unique_ptr<Model> unfused = MakeModel(name, data, SmallConfig());
    unfused->set_use_plan_fusion(false);
    (void)PlanLogits(*fused);
    (void)PlanLogits(*unfused);
    ASSERT_NE(fused->execution_plan(), nullptr) << name;
    ASSERT_NE(unfused->execution_plan(), nullptr) << name;
    const infer::PlanInfo with = fused->execution_plan()->info();
    const infer::PlanInfo without = unfused->execution_plan()->info();
    EXPECT_LT(with.steps, without.steps) << name;
    EXPECT_EQ(with.traced_ops, without.traced_ops) << name;
    EXPECT_EQ(without.fused_steps, 0u) << name;
    EXPECT_EQ(without.ops_fused_away, 0u) << name;
    EXPECT_LE(with.workspace_bytes, without.workspace_bytes) << name;
    EXPECT_EQ(with.slots + with.ops_fused_away, without.slots) << name;
  }
}

// -- Negative cases ---------------------------------------------------------

/// z = x @ W is consumed by BOTH the bias add and the final Add: the
/// intermediate has two consumers, so the MatMul+Bias rule must not
/// fire (fusing it would skip materializing a value the Add reads).
class TwoConsumerModel : public Model {
 public:
  explicit TwoConsumerModel(const Dataset& data)
      : Model("two-consumer", data) {
    Rng rng(5);
    features_ = ag::MakeConstant(data.features);
    weight_ = ag::MakeParameter(
        Tensor::GlorotUniform(data.feature_dim(), 8, rng));
    bias_ = ag::MakeParameter(Tensor::Normal(1, 8, 0.0f, 0.1f, rng));
  }

  ag::Variable Forward(const nn::ForwardContext&) override {
    ag::Variable z = ag::MatMul(features_, weight_);
    ag::Variable y = ag::AddRowVector(z, bias_);
    return ag::Add(y, z);
  }

  std::vector<ag::Variable> Parameters() const override {
    return {weight_, bias_};
  }

 private:
  ag::Variable features_;
  ag::Variable weight_;
  ag::Variable bias_;
};

/// h = SpMM(a_hat, x) feeds Relu AND the final Add — SpMM+Relu must
/// not fire either.
class TwoConsumerSpmmModel : public Model {
 public:
  explicit TwoConsumerSpmmModel(const Dataset& data)
      : Model("two-consumer-spmm", data) {
    Rng rng(7);
    a_hat_ = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
    features_ = ag::MakeConstant(data.features);
    weight_ = ag::MakeParameter(
        Tensor::GlorotUniform(data.feature_dim(), 6, rng));
  }

  ag::Variable Forward(const nn::ForwardContext&) override {
    ag::Variable h = ag::SpMM(a_hat_, ag::MatMul(features_, weight_));
    return ag::Add(ag::Relu(h), h);
  }

  std::vector<ag::Variable> Parameters() const override { return {weight_}; }

 private:
  std::shared_ptr<const CsrMatrix> a_hat_;
  ag::Variable features_;
  ag::Variable weight_;
};

TEST(PlanFusionNegativeTest, TwoConsumerIntermediateDoesNotFuse) {
  Dataset data = LoadDataset("cora", 0.2, 41);
  {
    TwoConsumerModel model(data);
    const Tensor reference = EagerLogits(model);
    ExpectBitwiseEqual(reference, PlanLogits(model), "two-consumer matmul");
    ASSERT_NE(model.execution_plan(), nullptr)
        << model.plan_status().ToString();
    const infer::PlanOpSummary summary = model.execution_plan()->OpSummary();
    EXPECT_EQ(summary.fused_steps, 0u) << summary.ToString();
    EXPECT_EQ(summary.Count("MatMul"), 1u) << summary.ToString();
    EXPECT_EQ(summary.Count("AddRowVector"), 1u) << summary.ToString();
    EXPECT_EQ(summary.Count("MatMul+Bias"), 0u) << summary.ToString();
  }
  {
    TwoConsumerSpmmModel model(data);
    const Tensor reference = EagerLogits(model);
    ExpectBitwiseEqual(reference, PlanLogits(model), "two-consumer spmm");
    ASSERT_NE(model.execution_plan(), nullptr)
        << model.plan_status().ToString();
    const infer::PlanOpSummary summary = model.execution_plan()->OpSummary();
    EXPECT_EQ(summary.fused_steps, 0u) << summary.ToString();
    EXPECT_EQ(summary.Count("SpMM"), 1u) << summary.ToString();
    EXPECT_EQ(summary.Count("Relu"), 1u) << summary.ToString();
    EXPECT_EQ(summary.Count("SpMM+Relu"), 0u) << summary.ToString();
  }
}

/// The attention softmax feeds TWO aggregates: the super-fusion rule
/// must not swallow the chain (alpha is externally visible), and the
/// pairwise EdgeSoftmax+Aggregate rule must not fire either — but the
/// single-consumer Gather→LeakyRelu prefix still fuses via the
/// demoted pairwise rule, which exists exactly for partial chains.
class SharedAlphaModel : public Model {
 public:
  explicit SharedAlphaModel(const Dataset& data)
      : Model("shared-alpha", data) {
    Rng rng(13);
    edges_ = ag::EdgeStructure::FromGraph(data.graph, /*add_self_loops=*/true);
    features_ = ag::MakeConstant(data.features);
    weight_ = ag::MakeParameter(
        Tensor::GlorotUniform(data.feature_dim(), 8, rng));
    attn_dst_ = ag::MakeParameter(Tensor::GlorotUniform(8, 1, rng));
    attn_src_ = ag::MakeParameter(Tensor::GlorotUniform(8, 1, rng));
  }

  ag::Variable Forward(const nn::ForwardContext&) override {
    ag::Variable wh = ag::MatMul(features_, weight_);
    ag::Variable e = ag::GatherEdgeScores(ag::MatMul(wh, attn_dst_),
                                          ag::MatMul(wh, attn_src_), edges_);
    e = ag::LeakyRelu(e, 0.2f);
    ag::Variable alpha = ag::EdgeSoftmax(e, edges_);
    return ag::Add(ag::EdgeWeightedAggregate(alpha, wh, edges_),
                   ag::EdgeWeightedAggregate(alpha, wh, edges_));
  }

  std::vector<ag::Variable> Parameters() const override {
    return {weight_, attn_dst_, attn_src_};
  }

 private:
  std::shared_ptr<const ag::EdgeStructure> edges_;
  ag::Variable features_;
  ag::Variable weight_;
  ag::Variable attn_dst_;
  ag::Variable attn_src_;
};

TEST(PlanFusionNegativeTest, PartialAttentionChainFallsBackToPairwise) {
  Dataset data = LoadDataset("cora", 0.2, 41);
  SharedAlphaModel model(data);
  const Tensor reference = EagerLogits(model);
  ExpectBitwiseEqual(reference, PlanLogits(model), "shared-alpha");
  ASSERT_NE(model.execution_plan(), nullptr)
      << model.plan_status().ToString();
  const infer::PlanOpSummary summary = model.execution_plan()->OpSummary();
  EXPECT_EQ(summary.Count("EdgeAttention"), 0u) << summary.ToString();
  EXPECT_EQ(summary.Count("GatherEdgeScores+LeakyRelu"), 1u)
      << summary.ToString();
  EXPECT_EQ(summary.Count("EdgeSoftmax+Aggregate"), 0u) << summary.ToString();
  EXPECT_EQ(summary.Count("EdgeSoftmax"), 1u) << summary.ToString();
  EXPECT_EQ(summary.Count("EdgeWeightedAggregate"), 2u) << summary.ToString();
  EXPECT_EQ(summary.fused_steps, 1u) << summary.ToString();
  EXPECT_EQ(summary.ops_fused_away, 1u) << summary.ToString();
}

/// A fusible MatMul→AddRowVector prefix followed by an untraced op
/// (the loss): the whole compile must fall back to the eager path —
/// fusion never produces a partial plan across an untraced boundary.
class UntracedTailModel : public Model {
 public:
  explicit UntracedTailModel(const Dataset& data)
      : Model("untraced-tail", data) {
    Rng rng(11);
    features_ = ag::MakeConstant(data.features);
    weight_ = ag::MakeParameter(Tensor::GlorotUniform(
        data.feature_dim(), data.num_classes, rng));
    bias_ = ag::MakeParameter(Tensor::Normal(
        1, data.num_classes, 0.0f, 0.1f, rng));
  }

  ag::Variable Forward(const nn::ForwardContext&) override {
    ag::Variable logits =
        ag::AddRowVector(ag::MatMul(features_, weight_), bias_);
    return ag::SoftmaxCrossEntropy(logits, data_.labels, data_.train_mask);
  }

  std::vector<ag::Variable> Parameters() const override {
    return {weight_, bias_};
  }

 private:
  ag::Variable features_;
  ag::Variable weight_;
  ag::Variable bias_;
};

TEST(PlanFusionNegativeTest, UntracedBoundaryFallsBackCleanly) {
  Dataset data = LoadDataset("cora", 0.2, 43);
  UntracedTailModel model(data);
  const Tensor reference = EagerLogits(model);
  ExpectBitwiseEqual(reference, PlanLogits(model), "untraced-tail fallback");
  EXPECT_EQ(model.execution_plan(), nullptr);
  EXPECT_EQ(model.plan_status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(model.plan_status().ToString().find("SoftmaxCrossEntropy"),
            std::string::npos)
      << model.plan_status().ToString();
}

// -- Opt-outs ---------------------------------------------------------------

TEST(PlanFusionOptOutTest, InstanceAndDefaultFlagsDisableFusionOnly) {
  Dataset data = LoadDataset("cora", 0.2, 47);

  // Instance flag: plan still compiles, nothing fuses, parity holds.
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  model->set_use_plan_fusion(false);
  const Tensor reference = EagerLogits(*model);
  ExpectBitwiseEqual(reference, PlanLogits(*model), "fusion opt-out");
  ASSERT_NE(model->execution_plan(), nullptr)
      << model->plan_status().ToString();
  EXPECT_EQ(model->execution_plan()->info().fused_steps, 0u);
  EXPECT_EQ(model->execution_plan()->info().ops_fused_away, 0u);

  // Process default: models built while disabled start opted out.
  const bool saved = Model::PlanFusionDefault();
  Model::SetPlanFusionDefault(false);
  std::unique_ptr<Model> nofuse = MakeModel("gcn", data, SmallConfig());
  Model::SetPlanFusionDefault(saved);
  EXPECT_FALSE(nofuse->use_plan_fusion());
  ExpectBitwiseEqual(EagerLogits(*nofuse), PlanLogits(*nofuse),
                     "fusion process-default opt-out");
  ASSERT_NE(nofuse->execution_plan(), nullptr);
  EXPECT_EQ(nofuse->execution_plan()->info().fused_steps, 0u);
}

TEST(PlanFusionOptOutTest, PlanOptOutsStillBypassEverything) {
  Dataset data = LoadDataset("cora", 0.2, 47);

  // set_use_execution_plan(false) bypasses plan AND fusion.
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  model->set_use_execution_plan(false);
  ExpectBitwiseEqual(EagerLogits(*model), PlanLogits(*model),
                     "plan instance opt-out");
  EXPECT_EQ(model->execution_plan(), nullptr);
  EXPECT_TRUE(model->plan_status().ok());

  // LASAGNE_DISABLE_PLAN (re-read via ReloadEnvDefaults) does too.
  const bool saved_plan = Model::ExecutionPlanDefault();
  const bool saved_fusion = Model::PlanFusionDefault();
  ASSERT_EQ(setenv("LASAGNE_DISABLE_PLAN", "1", /*overwrite=*/1), 0);
  Model::ReloadEnvDefaults();
  EXPECT_FALSE(Model::ExecutionPlanDefault());
  std::unique_ptr<Model> disabled = MakeModel("gcn", data, SmallConfig());
  EXPECT_FALSE(disabled->use_execution_plan());
  ExpectBitwiseEqual(EagerLogits(*disabled), PlanLogits(*disabled),
                     "LASAGNE_DISABLE_PLAN");
  EXPECT_EQ(disabled->execution_plan(), nullptr);
  ASSERT_EQ(unsetenv("LASAGNE_DISABLE_PLAN"), 0);

  // LASAGNE_DISABLE_FUSION disables only the pass.
  ASSERT_EQ(setenv("LASAGNE_DISABLE_FUSION", "1", /*overwrite=*/1), 0);
  Model::ReloadEnvDefaults();
  EXPECT_TRUE(Model::ExecutionPlanDefault());
  EXPECT_FALSE(Model::PlanFusionDefault());
  std::unique_ptr<Model> nofuse = MakeModel("gcn", data, SmallConfig());
  ExpectBitwiseEqual(EagerLogits(*nofuse), PlanLogits(*nofuse),
                     "LASAGNE_DISABLE_FUSION");
  ASSERT_NE(nofuse->execution_plan(), nullptr);
  EXPECT_EQ(nofuse->execution_plan()->info().fused_steps, 0u);
  ASSERT_EQ(unsetenv("LASAGNE_DISABLE_FUSION"), 0);

  Model::ReloadEnvDefaults();
  Model::SetExecutionPlanDefault(saved_plan);
  Model::SetPlanFusionDefault(saved_fusion);
}

}  // namespace
}  // namespace lasagne
