#include "train/trainer.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/registry.h"
#include "train/experiment.h"
#include "train/optimizer.h"

namespace lasagne {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // loss = || x - target ||^2 -> x converges to target.
  ag::Variable x = ag::MakeParameter(Tensor::Full(2, 3, 5.0f));
  Tensor target = Tensor(2, 3, {1, -2, 3, 0, 4, -1});
  AdamOptimizer opt({x}, 0.1f);
  for (int step = 0; step < 300; ++step) {
    opt.ZeroGrad();
    ag::Variable diff = ag::Sub(x, ag::MakeConstant(target));
    ag::Backward(ag::SquaredSum(diff));
    opt.Step();
  }
  EXPECT_LT(x->value().MaxAbsDiff(target), 0.05f);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  ag::Variable x = ag::MakeParameter(Tensor::Full(1, 4, 10.0f));
  AdamOptimizer opt({x}, 0.1f, /*weight_decay=*/1.0f);
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    // Zero data gradient: only weight decay acts.
    ag::Backward(ag::ScalarMul(ag::Sum(x), 0.0f));
    opt.Step();
  }
  EXPECT_LT(std::fabs(x->value()(0, 0)), 1.0f);
}

TEST(SgdTest, MinimizesQuadratic) {
  ag::Variable x = ag::MakeParameter(Tensor::Full(1, 2, 4.0f));
  SgdOptimizer opt({x}, 0.05f, 0.9f);
  for (int step = 0; step < 200; ++step) {
    opt.ZeroGrad();
    ag::Backward(ag::SquaredSum(x));
    opt.Step();
  }
  EXPECT_LT(x->value().Norm(), 0.05f);
}

TEST(SummaryTest, MeanStdComputation) {
  Summary s = MeanStd({2.0, 4.0, 6.0});
  EXPECT_NEAR(s.mean, 4.0, 1e-9);
  EXPECT_NEAR(s.std_dev, std::sqrt(8.0 / 3.0), 1e-9);
  EXPECT_EQ(s.count, 3u);
}

TEST(AccuracyTest, MaskedAccuracyCountsOnlyMask) {
  Tensor logits(3, 2, {0.9f, 0.1f, 0.2f, 0.8f, 0.7f, 0.3f});
  std::vector<int32_t> labels = {0, 1, 1};
  EXPECT_NEAR(MaskedAccuracy(logits, labels, {1, 1, 1}), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(MaskedAccuracy(logits, labels, {1, 1, 0}), 1.0, 1e-9);
  EXPECT_NEAR(MaskedAccuracy(logits, labels, {0, 0, 1}), 0.0, 1e-9);
}

TEST(TrainerTest, GcnLearnsPlantedPartition) {
  Dataset data = LoadDataset("cora", 0.3, 21);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.4f;
  config.seed = 1;
  std::unique_ptr<Model> model = MakeModel("gcn", data, config);
  TrainOptions options;
  options.max_epochs = 150;
  options.seed = 2;
  TrainResult result = TrainModel(*model, options);
  // Chance is 1/7 ~ 14%; the generator is strongly learnable.
  EXPECT_GT(result.test_accuracy, 0.5);
  EXPECT_GT(result.best_val_accuracy, 0.5);
  EXPECT_GT(result.epochs_run, 10u);
}

TEST(TrainerTest, EarlyStoppingTriggers) {
  Dataset data = LoadDataset("cora", 0.25, 22);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 1;
  std::unique_ptr<Model> model = MakeModel("sgc", data, config);
  TrainOptions options;
  options.max_epochs = 400;
  options.patience = 10;
  options.seed = 3;
  TrainResult result = TrainModel(*model, options);
  // SGC converges fast; the patience rule must fire well before 400.
  EXPECT_LT(result.epochs_run, 400u);
}

TEST(TrainerTest, LossHistoryRecordedAndDecreasing) {
  Dataset data = LoadDataset("cora", 0.25, 23);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.0f;
  config.seed = 4;
  std::unique_ptr<Model> model = MakeModel("gcn", data, config);
  TrainOptions options;
  options.max_epochs = 60;
  options.patience = 60;
  options.seed = 5;
  TrainResult result = TrainModel(*model, options);
  ASSERT_GE(result.loss_history.size(), 50u);
  EXPECT_LT(result.loss_history.back(), result.loss_history.front());
}

TEST(TrainerTest, EpochCallbackInvoked) {
  Dataset data = LoadDataset("cora", 0.2, 24);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 6;
  std::unique_ptr<Model> model = MakeModel("gcn", data, config);
  TrainOptions options;
  options.max_epochs = 5;
  options.patience = 100;
  options.seed = 7;
  size_t calls = 0;
  options.epoch_callback = [&calls](size_t, Model&) { ++calls; };
  TrainModel(*model, options);
  EXPECT_EQ(calls, 5u);
}

TEST(ExperimentTest, RepeatedRunsSummarize) {
  Dataset data = LoadDataset("cora", 0.2, 25);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 8;
  TrainOptions options;
  options.max_epochs = 40;
  options.seed = 9;
  ExperimentResult result =
      RunRepeatedExperiment("gcn", data, config, options, 3);
  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_GT(result.test_accuracy.mean, 30.0);  // percent
  EXPECT_GE(result.test_accuracy.std_dev, 0.0);
  EXPECT_GT(result.epoch_time_ms.mean, 0.0);
}

// The paper's headline phenomenon, asserted as an integration test:
// a deep plain GCN collapses relative to the 2-layer GCN, while deep
// Lasagne does not (Fig. 5).
TEST(IntegrationTest, DeepGcnDegradesDeepLasagneDoesNot) {
  Dataset data = LoadDataset("cora", 0.4, 26);
  TrainOptions options;
  options.max_epochs = 150;
  options.seed = 10;

  auto run = [&](const std::string& name, size_t depth) {
    ModelConfig config;
    config.depth = depth;
    config.hidden_dim = 16;
    config.dropout = 0.4f;
    config.seed = 11;
    std::unique_ptr<Model> model = MakeModel(name, data, config);
    return TrainModel(*model, options).test_accuracy;
  };

  const double gcn_shallow = run("gcn", 2);
  const double gcn_deep = run("gcn", 8);
  const double lasagne_deep = run("lasagne-stochastic", 8);

  // Over-smoothing: deep plain GCN loses a lot of accuracy.
  EXPECT_LT(gcn_deep, gcn_shallow - 0.05);
  // Lasagne at the same depth stays close to (or above) the shallow GCN
  // instead of collapsing with it.
  EXPECT_GT(lasagne_deep, gcn_deep + 0.05);
  EXPECT_GT(lasagne_deep, gcn_shallow - 0.12);
}

}  // namespace
}  // namespace lasagne
