#include "train/serialization.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/io.h"
#include "data/registry.h"

namespace lasagne {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(in)) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(out)) << path;
  out << contents;
}

std::vector<ag::Variable> MakeParams(float base) {
  std::vector<ag::Variable> params;
  params.push_back(ag::MakeParameter(
      Tensor(2, 3, {base, base + 0.25f, -base, 1.0f / 3.0f, 1e-7f, -42.5f})));
  params.push_back(ag::MakeParameter(
      Tensor(1, 4, {base * 2, 0.0f, -1e9f, 3.14159265f})));
  return params;
}

TrainerState MakeState(const std::vector<ag::Variable>& params) {
  TrainerState state;
  state.next_epoch = 17;
  state.epochs_since_best = 3;
  state.best_val_accuracy = 0.8137259612;
  state.learning_rate = 0.005f;
  state.has_optimizer = true;
  state.adam.step_count = 17;
  for (const ag::Variable& p : params) {
    Tensor m(p->rows(), p->cols());
    Tensor v(p->rows(), p->cols());
    for (size_t i = 0; i < m.size(); ++i) {
      m.data()[i] = 0.01f * static_cast<float>(i) - 0.05f;
      v.data()[i] = 1e-4f * static_cast<float>(i + 1);
    }
    state.adam.m.push_back(std::move(m));
    state.adam.v.push_back(std::move(v));
  }
  state.has_rng = true;
  state.rng.state = 0xdeadbeefcafef00dULL;
  state.rng.has_cached_normal = true;
  state.rng.cached_normal = -0.7071067811865476;
  return state;
}

TEST(CheckpointV2Test, FullStateRoundTripsBitwise) {
  const std::string path = TestPath("v2_roundtrip.ckpt");
  std::vector<ag::Variable> params = MakeParams(0.7f);
  TrainerState state = MakeState(params);
  ASSERT_TRUE(SaveCheckpoint(params, &state, path).ok());

  std::vector<ag::Variable> restored = MakeParams(123.0f);
  TrainerState loaded;
  Status status = LoadCheckpoint(restored, &loaded, path);
  ASSERT_TRUE(status.ok()) << status.ToString();

  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(restored[i]->value().MaxAbsDiff(params[i]->value()), 0.0f);
  }
  EXPECT_EQ(loaded.next_epoch, state.next_epoch);
  EXPECT_EQ(loaded.epochs_since_best, state.epochs_since_best);
  EXPECT_EQ(loaded.best_val_accuracy, state.best_val_accuracy);
  EXPECT_EQ(loaded.learning_rate, state.learning_rate);
  ASSERT_TRUE(loaded.has_optimizer);
  EXPECT_EQ(loaded.adam.step_count, state.adam.step_count);
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(loaded.adam.m[i].MaxAbsDiff(state.adam.m[i]), 0.0f);
    EXPECT_EQ(loaded.adam.v[i].MaxAbsDiff(state.adam.v[i]), 0.0f);
  }
  ASSERT_TRUE(loaded.has_rng);
  EXPECT_EQ(loaded.rng.state, state.rng.state);
  EXPECT_EQ(loaded.rng.has_cached_normal, state.rng.has_cached_normal);
  EXPECT_EQ(loaded.rng.cached_normal, state.rng.cached_normal);
}

TEST(CheckpointV2Test, ParamsOnlyCheckpointLoadsWithDefaultState) {
  const std::string path = TestPath("v2_params_only.ckpt");
  std::vector<ag::Variable> params = MakeParams(1.5f);
  ASSERT_TRUE(SaveCheckpoint(params, nullptr, path).ok());
  std::vector<ag::Variable> restored = MakeParams(0.0f);
  TrainerState state;
  state.next_epoch = 99;  // must be reset by the load
  ASSERT_TRUE(LoadCheckpoint(restored, &state, path).ok());
  EXPECT_EQ(state.next_epoch, 0u);
  EXPECT_FALSE(state.has_optimizer);
  EXPECT_FALSE(state.has_rng);
  EXPECT_EQ(restored[0]->value().MaxAbsDiff(params[0]->value()), 0.0f);
}

TEST(CheckpointCorruptionTest, MissingFileIsNotFound) {
  std::vector<ag::Variable> params = MakeParams(1.0f);
  Status status =
      LoadCheckpoint(params, nullptr, TestPath("does_not_exist.ckpt"));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(CheckpointCorruptionTest, TruncatedFileIsDataLoss) {
  const std::string path = TestPath("v2_truncated.ckpt");
  std::vector<ag::Variable> params = MakeParams(0.3f);
  TrainerState state = MakeState(params);
  ASSERT_TRUE(SaveCheckpoint(params, &state, path).ok());
  const std::string contents = ReadFile(path);
  WriteFile(path, contents.substr(0, contents.size() / 2));

  std::vector<ag::Variable> restored = MakeParams(0.0f);
  Status status = LoadCheckpoint(restored, nullptr, path);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
}

TEST(CheckpointCorruptionTest, FlippedByteFailsChecksum) {
  const std::string path = TestPath("v2_flipped.ckpt");
  std::vector<ag::Variable> params = MakeParams(0.9f);
  ASSERT_TRUE(SaveCheckpoint(params, nullptr, path).ok());
  std::string contents = ReadFile(path);
  // Flip one hex digit inside the payload (after the header line).
  const size_t payload_start = contents.find('\n') + 1;
  size_t pos = payload_start;
  while (pos < contents.size() && !std::isxdigit(contents[pos])) ++pos;
  ASSERT_LT(pos, contents.size());
  contents[pos] = contents[pos] == '0' ? '1' : '0';
  WriteFile(path, contents);

  std::vector<ag::Variable> restored = MakeParams(0.0f);
  Status status = LoadCheckpoint(restored, nullptr, path);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss) << status.ToString();
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST(CheckpointCorruptionTest, ShapeMismatchIsInvalidArgument) {
  const std::string path = TestPath("v2_shape.ckpt");
  std::vector<ag::Variable> params = MakeParams(0.4f);
  ASSERT_TRUE(SaveCheckpoint(params, nullptr, path).ok());

  std::vector<ag::Variable> transposed;
  transposed.push_back(ag::MakeParameter(Tensor(3, 2)));
  transposed.push_back(ag::MakeParameter(Tensor(4, 1)));
  Status status = LoadCheckpoint(transposed, nullptr, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();

  std::vector<ag::Variable> fewer;
  fewer.push_back(ag::MakeParameter(Tensor(2, 3)));
  status = LoadCheckpoint(fewer, nullptr, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

TEST(CheckpointCorruptionTest, GarbageFileIsDataLoss) {
  const std::string path = TestPath("garbage.ckpt");
  WriteFile(path, "this is not a checkpoint at all\n");
  std::vector<ag::Variable> params = MakeParams(1.0f);
  EXPECT_EQ(LoadCheckpoint(params, nullptr, path).code(),
            StatusCode::kDataLoss);
}

// Hand-writes the legacy v1 decimal format and loads it through the
// unified loader: v1 files must keep working after the v2 migration.
TEST(CheckpointCompatTest, V1FileStillLoads) {
  const std::string path = TestPath("legacy_v1.ckpt");
  std::vector<ag::Variable> params = MakeParams(0.6f);
  std::ostringstream v1;
  v1 << "lasagne-checkpoint v1\n" << params.size() << "\n";
  v1.precision(9);
  for (const ag::Variable& p : params) {
    const Tensor& t = p->value();
    v1 << t.rows() << " " << t.cols() << "\n";
    for (size_t i = 0; i < t.size(); ++i) {
      v1 << t.data()[i] << (i + 1 == t.size() ? '\n' : ' ');
    }
  }
  WriteFile(path, v1.str());

  std::vector<ag::Variable> restored = MakeParams(0.0f);
  TrainerState state;
  Status status = LoadCheckpoint(restored, &state, path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(state.has_optimizer);
  // v1 stores 9 significant decimal digits, not bit patterns.
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_LT(restored[i]->value().MaxAbsDiff(params[i]->value()), 1e-3f);
  }
  // The bool wrapper accepts v1 too.
  EXPECT_TRUE(LoadParameters(MakeParams(0.0f), path));
}

TEST(CheckpointCompatTest, V1TruncationAndMismatchAreCleanErrors) {
  const std::string path = TestPath("legacy_v1_bad.ckpt");
  WriteFile(path, "lasagne-checkpoint v1\n2\n2 3\n0.5 0.5");
  std::vector<ag::Variable> params = MakeParams(0.0f);
  EXPECT_EQ(LoadCheckpoint(params, nullptr, path).code(),
            StatusCode::kDataLoss);
  WriteFile(path, "lasagne-checkpoint v1\n5\n");
  EXPECT_EQ(LoadCheckpoint(params, nullptr, path).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckpointAtomicityTest, InjectedWriteFailureLeavesOldFileValid) {
  FaultInjector::Global().Reset();
  const std::string path = TestPath("atomic.ckpt");
  std::vector<ag::Variable> original = MakeParams(2.0f);
  ASSERT_TRUE(SaveCheckpoint(original, nullptr, path).ok());

  // A crash 64 bytes into the rewrite must not touch the destination.
  std::vector<ag::Variable> updated = MakeParams(5.0f);
  FaultInjector::Global().ArmWriteFailure(/*byte_offset=*/64);
  Status failed = SaveCheckpoint(updated, nullptr, path);
  EXPECT_EQ(failed.code(), StatusCode::kIOError) << failed.ToString();
  EXPECT_EQ(FaultInjector::Global().write_failures_injected(), 1u);

  std::vector<ag::Variable> restored = MakeParams(0.0f);
  ASSERT_TRUE(LoadCheckpoint(restored, nullptr, path).ok());
  EXPECT_EQ(restored[0]->value().MaxAbsDiff(original[0]->value()), 0.0f);
  // The torn temp file is left behind (as a real crash would)...
  EXPECT_FALSE(ReadFile(path + ".tmp").empty());
  // ...and a later healthy save replaces the checkpoint atomically.
  ASSERT_TRUE(SaveCheckpoint(updated, nullptr, path).ok());
  ASSERT_TRUE(LoadCheckpoint(restored, nullptr, path).ok());
  EXPECT_EQ(restored[0]->value().MaxAbsDiff(updated[0]->value()), 0.0f);
  std::remove((path + ".tmp").c_str());
  FaultInjector::Global().Reset();
}

TEST(CheckpointAtomicityTest, FailureAtByteZeroWritesNothingToDestination) {
  FaultInjector::Global().Reset();
  const std::string path = TestPath("atomic_zero.ckpt");
  std::vector<ag::Variable> params = MakeParams(1.0f);
  FaultInjector::Global().ArmWriteFailure(/*byte_offset=*/0);
  EXPECT_FALSE(SaveCheckpoint(params, nullptr, path).ok());
  EXPECT_EQ(LoadCheckpoint(params, nullptr, path).code(),
            StatusCode::kNotFound);
  FaultInjector::Global().Reset();
}

// Model-level wrappers still work end to end on the v2 format.
TEST(CheckpointModelTest, ModelRoundTripThroughStatusApi) {
  Dataset data = LoadDataset("cora", 0.2, 31);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 5;
  std::unique_ptr<Model> model = MakeModel("gcn", data, config);
  const std::string path = TestPath("model_v2.ckpt");
  ASSERT_TRUE(SaveModelCheckpoint(*model, path).ok());

  ModelConfig other_config = config;
  other_config.seed = 777;
  std::unique_ptr<Model> other = MakeModel("gcn", data, other_config);
  ASSERT_TRUE(LoadModelCheckpoint(*other, path).ok());
  std::vector<ag::Variable> a = model->Parameters();
  std::vector<ag::Variable> b = other->Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->value().MaxAbsDiff(b[i]->value()), 0.0f);
  }
}

// -- Dataset TSV loader robustness (same recoverable-error migration) ------

TEST(DatasetIoRobustnessTest, MissingPrefixIsNotFound) {
  StatusOr<Dataset> loaded = TryLoadDatasetFromFiles("/nonexistent/prefix");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoRobustnessTest, CorruptFilesAreCleanErrors) {
  Dataset data = LoadDataset("cora", 0.2, 33);
  const std::string prefix = TestPath("corrupt_ds");
  ASSERT_TRUE(ExportDatasetToFiles(data, prefix).ok());

  // Truncate the features file: DataLoss naming the file.
  const std::string features = ReadFile(prefix + ".features");
  WriteFile(prefix + ".features", features.substr(0, features.size() / 3));
  StatusOr<Dataset> loaded = TryLoadDatasetFromFiles(prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find(".features"), std::string::npos);
  WriteFile(prefix + ".features", features);

  // Bad split tag: InvalidArgument.
  std::string splits = ReadFile(prefix + ".splits");
  splits.replace(0, splits.find('\n'), "banana");
  WriteFile(prefix + ".splits", splits);
  loaded = TryLoadDatasetFromFiles(prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoRobustnessTest, OutOfRangeEdgeRejected) {
  Dataset data = LoadDataset("cora", 0.2, 34);
  const std::string prefix = TestPath("bad_edge_ds");
  ASSERT_TRUE(ExportDatasetToFiles(data, prefix).ok());
  std::ostringstream graph;
  graph << data.num_nodes() << "\t1\n" << data.num_nodes() + 5 << "\t0\n";
  WriteFile(prefix + ".graph", graph.str());
  StatusOr<Dataset> loaded = TryLoadDatasetFromFiles(prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetValidateTest, ReportsFirstViolation) {
  Dataset data = LoadDataset("cora", 0.2, 35);
  EXPECT_TRUE(data.Validate().ok());
  Dataset broken = data;
  broken.labels[3] = static_cast<int32_t>(broken.num_classes) + 2;
  Status status = broken.Validate();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("label"), std::string::npos);

  Dataset overlapping = data;
  // Force one node into two splits.
  overlapping.train_mask[0] = 1.0f;
  overlapping.val_mask[0] = 1.0f;
  EXPECT_FALSE(overlapping.Validate().ok());
}

}  // namespace
}  // namespace lasagne
