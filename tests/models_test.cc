#include "models/model.h"

#include <gtest/gtest.h>

#include "data/registry.h"
#include "train/optimizer.h"

namespace lasagne {
namespace {

const Dataset& SmallData() {
  static const Dataset& data = *new Dataset(LoadDataset("cora", 0.25, 3));
  return data;
}

const Dataset& SmallInductive() {
  static const Dataset& data = *new Dataset(LoadDataset("flickr", 0.15, 3));
  return data;
}

ModelConfig SmallConfig() {
  ModelConfig config;
  config.depth = 3;
  config.hidden_dim = 16;
  config.dropout = 0.3f;
  config.heads = 2;
  config.num_partitions = 4;
  config.fastgcn_sample = 64;
  config.saint_root_count = 24;
  config.seed = 5;
  return config;
}

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, ForwardShapeAndFinite) {
  const Dataset& data = SmallData();
  std::unique_ptr<Model> model =
      MakeModel(GetParam(), data, SmallConfig());
  Rng rng(1);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  ag::Variable logits = model->Forward(ctx);
  EXPECT_EQ(logits->rows(), data.num_nodes());
  EXPECT_EQ(logits->cols(), data.num_classes);
  EXPECT_TRUE(logits->value().AllFinite());
  EXPECT_FALSE(model->Parameters().empty());
}

TEST_P(ModelZooTest, TrainingLossBackwardProducesGradients) {
  const Dataset& data = SmallData();
  std::unique_ptr<Model> model =
      MakeModel(GetParam(), data, SmallConfig());
  Rng rng(2);
  nn::ForwardContext ctx{/*training=*/true, &rng};
  ag::Variable loss = model->TrainingLoss(ctx);
  EXPECT_TRUE(loss->value().AllFinite());
  ag::Backward(loss);
  size_t with_grad = 0;
  for (const ag::Variable& p : model->Parameters()) {
    if (!p->grad().empty() && p->grad().Norm() > 0.0f) ++with_grad;
  }
  EXPECT_GT(with_grad, 0u) << GetParam();
}

TEST_P(ModelZooTest, AdamStepsReduceLoss) {
  const Dataset& data = SmallData();
  ModelConfig config = SmallConfig();
  config.dropout = 0.0f;  // deterministic objective for this check
  std::unique_ptr<Model> model = MakeModel(GetParam(), data, config);
  Rng rng(3);
  AdamOptimizer opt(model->Parameters(), 0.02f);
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < 30; ++step) {
    nn::ForwardContext ctx{/*training=*/true, &rng};
    opt.ZeroGrad();
    ag::Variable loss = model->TrainingLoss(ctx);
    if (step == 0) first_loss = loss->value()(0, 0);
    last_loss = loss->value()(0, 0);
    ag::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values("gcn", "resgcn", "densegcn", "jknet", "sgc", "gat",
                      "appnp", "mixhop", "gin", "dropedge", "pairnorm",
                      "madreg", "stgcn", "ngcn", "dgcn", "gpnn", "lgcn",
                      "adsf", "graphsage", "fastgcn", "clustergcn",
                      "graphsaint", "lasagne-weighted",
                      "lasagne-stochastic", "lasagne-maxpool",
                      "lasagne-mean", "lasagne-stochastic-sgc",
                      "lasagne-stochastic-gat"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

class InductiveModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(InductiveModelTest, TrainsOnTrainSubgraphEvaluatesFullGraph) {
  const Dataset& data = SmallInductive();
  ASSERT_TRUE(data.inductive);
  std::unique_ptr<Model> model =
      MakeModel(GetParam(), data, SmallConfig());
  Rng rng(4);
  nn::ForwardContext train_ctx{/*training=*/true, &rng};
  ag::Variable loss = model->TrainingLoss(train_ctx);
  EXPECT_TRUE(loss->value().AllFinite());
  ag::Backward(loss);
  nn::ForwardContext eval_ctx{/*training=*/false, &rng};
  ag::Variable logits = model->Forward(eval_ctx);
  EXPECT_EQ(logits->rows(), data.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    InductiveModels, InductiveModelTest,
    ::testing::Values("graphsage", "fastgcn", "clustergcn", "graphsaint",
                      "lasagne-maxpool"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ModelFactoryTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeModel("not-a-model", SmallData(), SmallConfig()),
               "unknown model");
}

TEST(ModelFactoryTest, KnownNamesAllConstruct) {
  for (const std::string& name : KnownModelNames()) {
    std::unique_ptr<Model> model =
        MakeModel(name, SmallData(), SmallConfig());
    EXPECT_FALSE(model->name().empty());
  }
}

TEST(ModelZooDepthTest, GcnSupportsTenLayers) {
  ModelConfig config = SmallConfig();
  config.depth = 10;
  std::unique_ptr<Model> model = MakeModel("gcn", SmallData(), config);
  Rng rng(6);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  ag::Variable logits = model->Forward(ctx);
  EXPECT_TRUE(logits->value().AllFinite());
  EXPECT_EQ(model->hidden_states().size(), 10u);
}

TEST(ModelZooDepthTest, HiddenStatesRecordedPerLayer) {
  ModelConfig config = SmallConfig();
  config.depth = 4;
  std::unique_ptr<Model> model = MakeModel("jknet", SmallData(), config);
  Rng rng(7);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  model->Forward(ctx);
  EXPECT_EQ(model->hidden_states().size(), 4u);
  for (const Tensor& h : model->hidden_states()) {
    EXPECT_EQ(h.rows(), SmallData().num_nodes());
  }
}

}  // namespace
}  // namespace lasagne
