#include "graph/graph.h"

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/algorithms.h"

namespace lasagne {
namespace {

Graph PathGraph(size_t n) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Graph::FromEdges(n, edges);
}

Graph StarGraph(size_t leaves) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 1; i <= leaves; ++i) edges.emplace_back(0, i);
  return Graph::FromEdges(leaves + 1, edges);
}

Graph CompleteGraph(size_t n) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
  }
  return Graph::FromEdges(n, edges);
}

TEST(GraphTest, FromEdgesDeduplicates) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(GraphTest, DegreesAndStats) {
  Graph g = StarGraph(5);
  EXPECT_EQ(g.Degree(0), 5u);
  EXPECT_EQ(g.Degree(3), 1u);
  EXPECT_EQ(g.MaxDegree(), 5u);
  EXPECT_NEAR(g.AverageDegree(), 10.0 / 6.0, 1e-9);
}

TEST(GraphTest, EdgesEnumeration) {
  Graph g = PathGraph(4);
  auto edges = g.Edges();
  EXPECT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) EXPECT_LE(u, v);
}

TEST(GraphTest, NormalizedAdjacencyIsSymmetricWithUnitSpectralRadius) {
  Graph g = PathGraph(10);
  CsrMatrix a_hat = g.NormalizedAdjacency();
  EXPECT_TRUE(a_hat.IsSymmetric(1e-6f));
  Rng rng(1);
  double radius = PowerIterationSpectralRadius(a_hat, 200, rng);
  EXPECT_NEAR(radius, 1.0, 1e-3);
}

TEST(GraphTest, NormalizedAdjacencyKnownValues) {
  // Two nodes, one edge: degrees with self-loop are 2 and 2.
  Graph g = Graph::FromEdges(2, {{0, 1}});
  CsrMatrix a_hat = g.NormalizedAdjacency();
  EXPECT_NEAR(a_hat.At(0, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(a_hat.At(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(a_hat.At(1, 1), 0.5f, 1e-6f);
}

TEST(GraphTest, RandomWalkAdjacencyRowsSumToOne) {
  Graph g = StarGraph(4);
  CsrMatrix walk = g.RandomWalkAdjacency();
  Tensor sums = walk.Multiply(Tensor::Ones(5, 1));
  for (size_t r = 0; r < 5; ++r) EXPECT_NEAR(sums(r, 0), 1.0f, 1e-6f);
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = PathGraph(5);  // 0-1-2-3-4
  Graph sub = g.InducedSubgraph({1, 2, 4});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 1u);  // only 1-2 survives
  EXPECT_TRUE(sub.HasEdge(0, 1));
  EXPECT_FALSE(sub.HasEdge(1, 2));
}

TEST(GraphTest, DropEdgesRates) {
  Graph g = CompleteGraph(20);
  Rng rng(3);
  Graph none = g.DropEdges(0.0, rng);
  EXPECT_EQ(none.num_edges(), g.num_edges());
  Graph all = g.DropEdges(1.0, rng);
  EXPECT_EQ(all.num_edges(), 0u);
  Graph half = g.DropEdges(0.5, rng);
  EXPECT_GT(half.num_edges(), g.num_edges() / 4);
  EXPECT_LT(half.num_edges(), 3 * g.num_edges() / 4);
}

TEST(AlgorithmsTest, BfsDistancesOnPath) {
  Graph g = PathGraph(5);
  auto dist = BfsDistances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(dist[i], i);
}

TEST(AlgorithmsTest, BfsUnreachableIsMinusOne) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {2, 3}});
  auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
}

TEST(AlgorithmsTest, AveragePathLengthClosedForms) {
  // Complete graph: APL = 1.
  EXPECT_NEAR(AveragePathLength(CompleteGraph(6)), 1.0, 1e-9);
  // Star graph with L leaves: pairs = C(L+1, 2); leaf-leaf distance 2.
  // APL = (L * 1 + C(L,2) * 2) / C(L+1,2). For L=4: (4 + 12) / 10 = 1.6.
  EXPECT_NEAR(AveragePathLength(StarGraph(4)), 1.6, 1e-9);
  // Path graph 0-1-2: (1+1+2)/3 = 4/3.
  EXPECT_NEAR(AveragePathLength(PathGraph(3)), 4.0 / 3.0, 1e-9);
}

TEST(AlgorithmsTest, SampledAplApproximatesExact) {
  Graph g = PathGraph(30);
  Rng rng(7);
  double exact = AveragePathLength(g);
  double sampled = AveragePathLengthSampled(g, 30, rng);  // all sources
  EXPECT_NEAR(sampled, exact, 1e-9);
}

TEST(AlgorithmsTest, PageRankSumsToOneAndRanksHub) {
  Graph g = StarGraph(6);
  Tensor pr = PageRank(g);
  EXPECT_NEAR(pr.Sum(), 1.0f, 1e-4f);
  // Hub outranks every leaf.
  for (size_t i = 1; i < 7; ++i) EXPECT_GT(pr(0, 0), pr(i, 0));
}

TEST(AlgorithmsTest, PageRankUniformOnRegularGraph) {
  Graph g = CompleteGraph(8);
  Tensor pr = PageRank(g);
  for (size_t i = 0; i < 8; ++i) EXPECT_NEAR(pr(i, 0), 1.0f / 8.0f, 1e-4f);
}

TEST(AlgorithmsTest, ConnectedComponentsCounts) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}});
  size_t num = 0;
  auto comp = ConnectedComponents(g, &num);
  EXPECT_EQ(num, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[3], comp[5]);
}

TEST(AlgorithmsTest, PartitionCoversAllNodesOnce) {
  Graph g = PathGraph(50);
  Rng rng(5);
  auto parts = PartitionGraph(g, 5, rng);
  std::vector<int> seen(50, 0);
  for (const auto& part : parts) {
    for (uint32_t u : part) seen[u]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(AlgorithmsTest, PartitionRoughlyBalanced) {
  Graph g = PathGraph(100);
  Rng rng(9);
  auto parts = PartitionGraph(g, 4, rng);
  for (const auto& part : parts) {
    EXPECT_GE(part.size(), 10u);
    EXPECT_LE(part.size(), 60u);
  }
}

TEST(AlgorithmsTest, RandomWalkStaysOnGraph) {
  Graph g = PathGraph(10);
  Rng rng(11);
  auto walk = RandomWalk(g, 5, 20, rng);
  EXPECT_EQ(walk[0], 5u);
  for (size_t i = 1; i < walk.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(walk[i - 1], walk[i]));
  }
}

TEST(AlgorithmsTest, RandomWalkStopsAtIsolatedNode) {
  Graph g = Graph::FromEdges(3, {{0, 1}});
  Rng rng(13);
  auto walk = RandomWalk(g, 2, 5, rng);
  EXPECT_EQ(walk.size(), 1u);
}

TEST(AlgorithmsTest, PpmiMatrixNonNegativeAndLocal) {
  Graph g = PathGraph(8);
  Rng rng(15);
  CsrMatrix ppmi = PpmiMatrix(g, 10, 6, 2, rng);
  EXPECT_EQ(ppmi.rows(), 8u);
  for (float v : ppmi.values()) EXPECT_GE(v, 0.0f);
  // A window-2 walk on a path cannot connect nodes 0 and 7.
  EXPECT_FLOAT_EQ(ppmi.At(0, 7), 0.0f);
}

TEST(AlgorithmsTest, ClusteringCoefficientClosedForms) {
  // Complete graph: every triple closed -> coefficient 1.
  EXPECT_NEAR(AverageClusteringCoefficient(CompleteGraph(5)), 1.0, 1e-9);
  // Star graph: no triangles -> 0.
  EXPECT_NEAR(AverageClusteringCoefficient(StarGraph(5)), 0.0, 1e-9);
  // Triangle plus a pendant: nodes {0,1,2} form a triangle, 3 hangs off
  // node 0. Node 0 has deg 3 with 1 of 3 pairs closed; nodes 1,2 have
  // coefficient 1; node 3 degree 1 contributes 0.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  EXPECT_NEAR(AverageClusteringCoefficient(g),
              (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0, 1e-9);
}

TEST(AlgorithmsTest, ClusteringCoefficientIgnoresSelfLoops) {
  // Triangle plus a self-loop on node 0: the self-loop adds a neighbor
  // entry but no closable pairs, so node 0's coefficient stays 1 (its
  // only real pair {1, 2} is closed). The pre-fix denominator used the
  // raw degree 3 and reported 1/3 for node 0.
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}, {0, 0}});
  EXPECT_NEAR(AverageClusteringCoefficient(g), 1.0, 1e-9);
  // A node whose only neighbors are itself and one other has fewer
  // than two real neighbors and contributes 0.
  Graph h = Graph::FromEdges(3, {{0, 1}, {0, 0}});
  EXPECT_NEAR(AverageClusteringCoefficient(h), 0.0, 1e-9);
}

TEST(AlgorithmsTest, EdgeHomophilyCounts) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<int32_t> labels = {0, 0, 1, 1};
  // Edges: (0,1) same, (1,2) diff, (2,3) same -> 2/3.
  EXPECT_NEAR(EdgeHomophily(g, labels), 2.0 / 3.0, 1e-9);
}

TEST(AlgorithmsTest, DegreeHistogramBuckets) {
  // Star with 5 leaves: hub degree 5 (bucket [4,8) = index 3), leaves
  // degree 1 (bucket [1,2) = index 1).
  Graph g = StarGraph(5);
  auto hist = DegreeHistogram(g);
  ASSERT_GE(hist.size(), 4u);
  EXPECT_EQ(hist[1], 5u);
  EXPECT_EQ(hist[3], 1u);
  // Isolated node lands in bucket 0.
  Graph iso = Graph::FromEdges(3, {{0, 1}});
  auto hist2 = DegreeHistogram(iso);
  EXPECT_EQ(hist2[0], 1u);
}

TEST(AlgorithmsTest, StructuralFingerprintsRowStochastic) {
  Graph g = StarGraph(5);
  CsrMatrix fp = StructuralFingerprints(g, 2, 0.5, 8);
  Tensor sums = fp.Multiply(Tensor::Ones(6, 1));
  for (size_t r = 0; r < 6; ++r) EXPECT_NEAR(sums(r, 0), 1.0f, 1e-5f);
}

}  // namespace
}  // namespace lasagne
