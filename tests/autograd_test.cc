#include "autograd/ops.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "autograd/edge_ops.h"
#include "autograd/fm_op.h"
#include "autograd/variable.h"
#include "graph/graph.h"
#include "test_util.h"

namespace lasagne {
namespace {

using ag::Variable;
using testing::GradCheck;

constexpr float kTol = 2e-2f;

Variable Param(size_t r, size_t c, uint64_t seed) {
  Rng rng(seed);
  return ag::MakeParameter(Tensor::Normal(r, c, 0.0f, 1.0f, rng));
}

TEST(AutogradTest, ForwardValuesBasicOps) {
  Variable a = ag::MakeParameter(Tensor(1, 2, {1.0f, -2.0f}));
  Variable b = ag::MakeParameter(Tensor(1, 2, {3.0f, 4.0f}));
  EXPECT_FLOAT_EQ(ag::Add(a, b)->value()(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(ag::Sub(a, b)->value()(0, 1), -6.0f);
  EXPECT_FLOAT_EQ(ag::Mul(a, b)->value()(0, 1), -8.0f);
  EXPECT_FLOAT_EQ(ag::Relu(a)->value()(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(ag::LeakyRelu(a, 0.1f)->value()(0, 1), -0.2f);
  EXPECT_NEAR(ag::Sigmoid(a)->value()(0, 0), 1.0f / (1.0f + std::exp(-1.0f)),
              1e-6f);
}

TEST(AutogradTest, BackwardThroughAdd) {
  Variable a = Param(2, 3, 1);
  Variable b = Param(2, 3, 2);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::Add(a, b)); }, {a, b}), kTol);
}

TEST(AutogradTest, BackwardThroughSubMul) {
  Variable a = Param(2, 3, 3);
  Variable b = Param(2, 3, 4);
  EXPECT_LT(GradCheck(
                [&] { return ag::Sum(ag::Mul(ag::Sub(a, b), a)); }, {a, b}),
            kTol);
}

TEST(AutogradTest, BackwardThroughAddMany) {
  Variable a = Param(2, 2, 5);
  Variable b = Param(2, 2, 6);
  Variable c = Param(2, 2, 7);
  EXPECT_LT(
      GradCheck([&] { return ag::Sum(ag::AddMany({a, b, c})); }, {a, b, c}),
      kTol);
}

TEST(AutogradTest, BackwardThroughMatMul) {
  Variable a = Param(3, 4, 8);
  Variable b = Param(4, 2, 9);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::MatMul(a, b)); }, {a, b}),
            kTol);
}

TEST(AutogradTest, BackwardThroughChainedMatMulRelu) {
  Variable x = Param(3, 4, 10);
  Variable w1 = Param(4, 5, 11);
  Variable w2 = Param(5, 2, 12);
  auto loss = [&] {
    return ag::Sum(ag::MatMul(ag::Relu(ag::MatMul(x, w1)), w2));
  };
  EXPECT_LT(GradCheck(loss, {x, w1, w2}), kTol);
}

TEST(AutogradTest, BackwardThroughTranspose) {
  Variable a = Param(2, 4, 13);
  Variable b = Param(2, 3, 14);
  EXPECT_LT(GradCheck(
                [&] { return ag::Sum(ag::MatMul(ag::Transpose(a), b)); },
                {a, b}),
            kTol);
}

TEST(AutogradTest, BackwardThroughUnaryOps) {
  Variable a = Param(2, 3, 15);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::Tanh(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::Sigmoid(a)); }, {a}), kTol);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::Exp(a)); }, {a}), kTol);
  Variable pos = ag::MakeParameter(Tensor(1, 3, {0.5f, 1.5f, 2.5f}));
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::Log(pos)); }, {pos}), kTol);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::LeakyRelu(a, 0.3f)); }, {a}),
            kTol);
}

TEST(AutogradTest, BackwardThroughSpMM) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  auto a_hat = std::make_shared<CsrMatrix>(g.NormalizedAdjacency());
  Variable x = Param(4, 3, 16);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::SpMM(a_hat, x)); }, {x}),
            kTol);
}

TEST(AutogradTest, BackwardThroughRowScale) {
  Variable x = Param(3, 4, 17);
  Variable c = Param(3, 1, 18);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::RowScale(x, c)); }, {x, c}),
            kTol);
}

TEST(AutogradTest, BackwardThroughRowDivide) {
  Variable x = Param(3, 4, 19);
  Variable d = ag::MakeParameter(Tensor(3, 1, {1.5f, 2.0f, 0.7f}));
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::RowDivide(x, d)); }, {x, d}),
            kTol);
}

TEST(AutogradTest, BackwardThroughRowMax) {
  Variable x = Param(3, 5, 20);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::RowMax(x)); }, {x}), kTol);
}

TEST(AutogradTest, BackwardThroughConcatSlice) {
  Variable a = Param(3, 2, 21);
  Variable b = Param(3, 3, 22);
  auto loss = [&] {
    Variable cat = ag::ConcatCols({a, b});
    return ag::Sum(ag::Mul(ag::SliceCols(cat, 1, 3),
                           ag::SliceCols(cat, 1, 3)));
  };
  EXPECT_LT(GradCheck(loss, {a, b}), kTol);
}

TEST(AutogradTest, BackwardThroughGatherRows) {
  Variable x = Param(4, 3, 23);
  auto loss = [&] {
    return ag::Sum(ag::GatherRows(x, {0, 2, 2, 3}));
  };
  EXPECT_LT(GradCheck(loss, {x}), kTol);
}

TEST(AutogradTest, BackwardThroughMaxOverSet) {
  Variable a = Param(3, 4, 24);
  Variable b = Param(3, 4, 25);
  Variable c = Param(3, 4, 26);
  EXPECT_LT(
      GradCheck([&] { return ag::Sum(ag::MaxOverSet({a, b, c})); },
                {a, b, c}),
      kTol);
}

TEST(AutogradTest, MaxOverSetForwardIsElementwiseMax) {
  Variable a = ag::MakeParameter(Tensor(1, 3, {1.0f, 5.0f, -1.0f}));
  Variable b = ag::MakeParameter(Tensor(1, 3, {2.0f, 0.0f, -3.0f}));
  Tensor m = ag::MaxOverSet({a, b})->value();
  EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(m(0, 2), -1.0f);
}

TEST(AutogradTest, BackwardThroughMeanRows) {
  Variable x = Param(4, 3, 27);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::MeanRows(x)); }, {x}), kTol);
}

TEST(AutogradTest, BackwardThroughReductions) {
  Variable x = Param(3, 3, 28);
  EXPECT_LT(GradCheck([&] { return ag::Mean(x); }, {x}), kTol);
  EXPECT_LT(GradCheck([&] { return ag::SquaredSum(x); }, {x}), kTol);
}

TEST(AutogradTest, BackwardThroughPairNorm) {
  Variable x = Param(5, 4, 29);
  EXPECT_LT(GradCheck([&] { return ag::Sum(ag::Mul(ag::PairNorm(x, 1.3f),
                                                   ag::PairNorm(x, 1.3f))); },
                      {x}),
            5e-2f);
}

TEST(AutogradTest, PairNormCentersAndScales) {
  Variable x = Param(6, 3, 30);
  Tensor y = ag::PairNorm(x, 2.0f)->value();
  for (size_t r = 0; r < y.rows(); ++r) {
    double sq = 0.0;
    for (size_t c = 0; c < y.cols(); ++c) sq += y(r, c) * y(r, c);
    EXPECT_NEAR(std::sqrt(sq), 2.0, 1e-3);
  }
}

TEST(AutogradTest, BackwardThroughSoftmaxCrossEntropy) {
  Variable logits = Param(4, 3, 31);
  std::vector<int32_t> labels = {0, 2, 1, 0};
  std::vector<float> mask = {1.0f, 1.0f, 0.0f, 1.0f};
  EXPECT_LT(GradCheck(
                [&] { return ag::SoftmaxCrossEntropy(logits, labels, mask); },
                {logits}),
            kTol);
}

TEST(AutogradTest, SoftmaxCrossEntropyIgnoresMaskedRows) {
  Variable logits = Param(2, 3, 32);
  std::vector<int32_t> labels = {0, 1};
  Variable loss_both =
      ag::SoftmaxCrossEntropy(logits, labels, {1.0f, 0.0f});
  // Perturbing the masked row must not change the loss.
  logits->mutable_value()(1, 0) += 10.0f;
  Variable loss_again =
      ag::SoftmaxCrossEntropy(logits, labels, {1.0f, 0.0f});
  EXPECT_NEAR(loss_both->value()(0, 0), loss_again->value()(0, 0), 1e-6f);
}

TEST(AutogradTest, BackwardThroughWeightedCrossEntropy) {
  Variable logits = Param(4, 3, 33);
  std::vector<int32_t> labels = {0, 2, 1, 0};
  std::vector<float> weights = {0.5f, 2.0f, 1.0f, 0.0f};
  EXPECT_LT(GradCheck(
                [&] {
                  return ag::WeightedSoftmaxCrossEntropy(logits, labels,
                                                         weights);
                },
                {logits}),
            kTol);
}

TEST(AutogradTest, BackwardThroughBinaryCrossEntropy) {
  Variable logits = Param(3, 2, 34);
  Tensor targets(3, 2, {1, 0, 0, 1, 1, 1});
  EXPECT_LT(GradCheck(
                [&] {
                  return ag::BinaryCrossEntropyWithLogits(logits, targets);
                },
                {logits}),
            kTol);
}

TEST(AutogradTest, BackwardThroughMeanCosineDistance) {
  Variable x = Param(5, 4, 35);
  std::vector<std::pair<uint32_t, uint32_t>> pairs = {{0, 1}, {2, 4}, {1, 3}};
  EXPECT_LT(GradCheck(
                [&] { return ag::MeanCosineDistance(x, pairs); }, {x}),
            kTol);
}

TEST(AutogradTest, MeanCosineDistanceOfIdenticalRowsIsZero) {
  Tensor v(2, 3, {1, 2, 3, 1, 2, 3});
  Variable x = ag::MakeParameter(v);
  Variable d = ag::MeanCosineDistance(x, {{0, 1}});
  EXPECT_NEAR(d->value()(0, 0), 0.0f, 1e-5f);
}

TEST(AutogradTest, DropoutEvalIsIdentity) {
  Rng rng(1);
  Variable x = Param(4, 4, 36);
  Variable y = ag::Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.get(), x.get());
}

TEST(AutogradTest, DropoutPreservesExpectation) {
  Rng rng(2);
  Variable x = ag::MakeParameter(Tensor::Ones(100, 100));
  Variable y = ag::Dropout(x, 0.3f, rng, /*training=*/true);
  EXPECT_NEAR(y->value().Mean(), 1.0f, 0.05f);
}

TEST(AutogradTest, BernoulliStraightThroughEvalPassesProbs) {
  Rng rng(3);
  Variable p = ag::MakeParameter(Tensor(2, 2, {0.2f, 0.8f, 0.5f, 1.0f}));
  Variable y = ag::BernoulliStraightThrough(p, rng, /*training=*/false);
  EXPECT_LT(y->value().MaxAbsDiff(p->value()), 1e-7f);
}

TEST(AutogradTest, BernoulliStraightThroughTrainingSamplesBinary) {
  Rng rng(4);
  Variable p = ag::MakeParameter(Tensor::Full(10, 10, 0.5f));
  Variable y = ag::BernoulliStraightThrough(p, rng, /*training=*/true);
  for (size_t i = 0; i < y->value().size(); ++i) {
    float v = y->value().data()[i];
    EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
  // Gradient passes straight through.
  ag::Variable loss = ag::Sum(y);
  ag::Backward(loss);
  EXPECT_LT(p->grad().MaxAbsDiff(Tensor::Ones(10, 10)), 1e-6f);
}

TEST(AutogradTest, GradientAccumulatesAcrossUses) {
  Variable x = ag::MakeParameter(Tensor(1, 1, {2.0f}));
  // loss = x * x  => dloss/dx = 2x = 4
  Variable loss = ag::Sum(ag::Mul(x, x));
  ag::Backward(loss);
  EXPECT_NEAR(x->grad()(0, 0), 4.0f, 1e-5f);
}

TEST(AutogradTest, ZeroGradResets) {
  Variable x = ag::MakeParameter(Tensor(1, 1, {2.0f}));
  ag::Backward(ag::Sum(ag::Mul(x, x)));
  x->ZeroGrad();
  EXPECT_FLOAT_EQ(x->grad()(0, 0), 0.0f);
}

TEST(AutogradTest, ConstantReceivesNoGradient) {
  Variable c = ag::MakeConstant(Tensor::Ones(2, 2));
  Variable x = Param(2, 2, 37);
  ag::Backward(ag::Sum(ag::Mul(c, x)));
  EXPECT_TRUE(c->grad().empty());
  EXPECT_FALSE(x->grad().empty());
}

TEST(AutogradTest, DiamondGraphGradientsCorrect) {
  // loss = sum((x + x) * x) = sum(2 x^2) => d/dx = 4x.
  Variable x = ag::MakeParameter(Tensor(1, 2, {1.0f, -3.0f}));
  Variable loss = ag::Sum(ag::Mul(ag::Add(x, x), x));
  ag::Backward(loss);
  EXPECT_NEAR(x->grad()(0, 0), 4.0f, 1e-5f);
  EXPECT_NEAR(x->grad()(0, 1), -12.0f, 1e-4f);
}

// -- Edge ops ---------------------------------------------------------------

std::shared_ptr<const ag::EdgeStructure> TestEdges() {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  return ag::EdgeStructure::FromGraph(g, /*add_self_loops=*/true);
}

TEST(EdgeOpsTest, EdgeStructureHasSelfLoops) {
  auto edges = TestEdges();
  // Node 0: self + neighbors {1, 2} = 3 incident edges.
  EXPECT_EQ(edges->row_ptr[1] - edges->row_ptr[0], 3u);
  // Total directed edges: 2*4 + 4 self loops = 12.
  EXPECT_EQ(edges->num_edges(), 12u);
}

TEST(EdgeOpsTest, GatherEdgeScoresBackward) {
  auto edges = TestEdges();
  Variable dst = Param(4, 1, 38);
  Variable src = Param(4, 1, 39);
  auto loss = [&] {
    Variable s = ag::GatherEdgeScores(dst, src, edges);
    return ag::Sum(ag::Mul(s, s));
  };
  EXPECT_LT(GradCheck(loss, {dst, src}), kTol);
}

TEST(EdgeOpsTest, EdgeSoftmaxNormalizesPerDestination) {
  auto edges = TestEdges();
  Variable scores = Param(static_cast<size_t>(edges->num_edges()), 1, 40);
  Tensor probs = ag::EdgeSoftmax(scores, edges)->value();
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    double total = 0.0;
    for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
      total += probs(k, 0);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(EdgeOpsTest, EdgeSoftmaxBackward) {
  auto edges = TestEdges();
  Variable scores = Param(static_cast<size_t>(edges->num_edges()), 1, 41);
  Variable weights = Param(static_cast<size_t>(edges->num_edges()), 1, 42);
  auto loss = [&] {
    Variable p = ag::EdgeSoftmax(scores, edges);
    return ag::Sum(ag::Mul(p, weights));
  };
  EXPECT_LT(GradCheck(loss, {scores}), kTol);
}

TEST(EdgeOpsTest, EdgeWeightedAggregateBackward) {
  auto edges = TestEdges();
  Variable w = Param(static_cast<size_t>(edges->num_edges()), 1, 43);
  Variable h = Param(4, 3, 44);
  auto loss = [&] {
    Variable out = ag::EdgeWeightedAggregate(w, h, edges);
    return ag::Sum(ag::Mul(out, out));
  };
  EXPECT_LT(GradCheck(loss, {w, h}), kTol);
}

TEST(EdgeOpsTest, UniformAttentionMatchesRowStochasticSpmm) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  auto edges = ag::EdgeStructure::FromGraph(g, /*add_self_loops=*/true);
  // Zero scores -> uniform attention == row-stochastic mean aggregation.
  Variable scores = ag::MakeParameter(
      Tensor::Zeros(static_cast<size_t>(edges->num_edges()), 1));
  Variable h = Param(4, 3, 45);
  Variable att = ag::EdgeWeightedAggregate(
      ag::EdgeSoftmax(scores, edges), h, edges);
  auto walk = std::make_shared<CsrMatrix>(g.RandomWalkAdjacency());
  Variable mean_agg = ag::SpMM(walk, h);
  EXPECT_LT(att->value().MaxAbsDiff(mean_agg->value()), 1e-5f);
}

TEST(EdgeOpsTest, AddEdgeBiasBackward) {
  auto edges = TestEdges();
  auto bias = std::make_shared<std::vector<float>>(edges->num_edges(), 0.5f);
  Variable scores = Param(static_cast<size_t>(edges->num_edges()), 1, 46);
  auto loss = [&] {
    Variable s = ag::AddEdgeBias(scores, bias);
    return ag::Sum(ag::Mul(s, s));
  };
  EXPECT_LT(GradCheck(loss, {scores}), kTol);
}

// -- FM op --------------------------------------------------------------------

TEST(FmOpTest, MatchesNaiveDoubleLoop) {
  Rng rng(47);
  const size_t n = 3, f = 2, k = 3;
  std::vector<size_t> offsets = {0, 2, 5, 7};  // three fields: 2, 3, 2 dims
  const size_t m = offsets.back();
  Tensor xv = Tensor::Normal(n, m, 0.0f, 1.0f, rng);
  Tensor wv = Tensor::Normal(m, f, 0.0f, 1.0f, rng);
  Tensor vv = Tensor::Normal(m, f * k, 0.0f, 1.0f, rng);
  Variable x = ag::MakeParameter(xv);
  Variable w = ag::MakeParameter(wv);
  Variable v = ag::MakeParameter(vv);
  Tensor got = ag::FmInteraction(x, w, v, offsets, k)->value();

  // Naive reference.
  std::vector<size_t> field_of(m);
  for (size_t p = 0; p + 1 < offsets.size(); ++p) {
    for (size_t mm = offsets[p]; mm < offsets[p + 1]; ++mm) field_of[mm] = p;
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < f; ++j) {
      double expect = 0.0;
      for (size_t mm = 0; mm < m; ++mm) expect += wv(mm, j) * xv(i, mm);
      for (size_t a = 0; a < m; ++a) {
        for (size_t b = a + 1; b < m; ++b) {
          if (field_of[a] == field_of[b]) continue;
          double dot = 0.0;
          for (size_t t = 0; t < k; ++t) {
            dot += vv(a, j * k + t) * vv(b, j * k + t);
          }
          expect += dot * xv(i, a) * xv(i, b);
        }
      }
      EXPECT_NEAR(got(i, j), expect, 1e-3) << "at (" << i << "," << j << ")";
    }
  }
}

TEST(FmOpTest, GradientsCheck) {
  Rng rng(48);
  const size_t n = 3, f = 2, k = 2;
  std::vector<size_t> offsets = {0, 2, 4};
  const size_t m = offsets.back();
  Variable x = ag::MakeParameter(Tensor::Normal(n, m, 0.0f, 0.5f, rng));
  Variable w = ag::MakeParameter(Tensor::Normal(m, f, 0.0f, 0.5f, rng));
  Variable v = ag::MakeParameter(Tensor::Normal(m, f * k, 0.0f, 0.5f, rng));
  auto loss = [&] {
    Variable o = ag::FmInteraction(x, w, v, offsets, k);
    return ag::Sum(ag::Mul(o, o));
  };
  EXPECT_LT(GradCheck(loss, {x, w, v}), 5e-2f);
}

TEST(FmOpTest, SingleFieldHasNoCrossTerm) {
  Rng rng(49);
  const size_t n = 2, f = 2, k = 3, m = 4;
  std::vector<size_t> offsets = {0, m};
  Variable x = ag::MakeParameter(Tensor::Normal(n, m, 0.0f, 1.0f, rng));
  Variable w = ag::MakeParameter(Tensor::Normal(m, f, 0.0f, 1.0f, rng));
  Variable v = ag::MakeParameter(Tensor::Normal(m, f * k, 0.0f, 1.0f, rng));
  Tensor got = ag::FmInteraction(x, w, v, offsets, k)->value();
  Tensor linear = x->value().MatMul(w->value());
  EXPECT_LT(got.MaxAbsDiff(linear), 1e-4f);
}

}  // namespace
}  // namespace lasagne
