#include "sparse/csr_matrix.h"

#include <gtest/gtest.h>

#include "tensor/rng.h"

namespace lasagne {
namespace {

CsrMatrix SmallMatrix() {
  // [[1, 0, 2],
  //  [0, 3, 0],
  //  [4, 0, 5]]
  return CsrMatrix::FromTriplets(
      3, 3, {{0, 0, 1.0f}, {0, 2, 2.0f}, {1, 1, 3.0f}, {2, 0, 4.0f},
             {2, 2, 5.0f}});
}

TEST(CsrMatrixTest, FromTripletsCoalescesDuplicates) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {0, 0, 2.0f}, {1, 1, 5.0f}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_FLOAT_EQ(m.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(m.At(1, 1), 5.0f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 0.0f);
}

TEST(CsrMatrixTest, DenseRoundTrip) {
  Rng rng(1);
  Tensor dense = Tensor::Normal(5, 4, 0.0f, 1.0f, rng);
  // Sparsify a bit.
  for (size_t i = 0; i < dense.size(); ++i) {
    if (i % 3 == 0) dense.data()[i] = 0.0f;
  }
  CsrMatrix m = CsrMatrix::FromDense(dense);
  EXPECT_LT(m.ToDense().MaxAbsDiff(dense), 1e-6f);
}

TEST(CsrMatrixTest, MultiplyMatchesDense) {
  Rng rng(2);
  CsrMatrix m = SmallMatrix();
  Tensor x = Tensor::Normal(3, 4, 0.0f, 1.0f, rng);
  Tensor sparse_result = m.Multiply(x);
  Tensor dense_result = m.ToDense().MatMul(x);
  EXPECT_LT(sparse_result.MaxAbsDiff(dense_result), 1e-5f);
}

TEST(CsrMatrixTest, TransposedMultiplyMatchesDense) {
  Rng rng(3);
  CsrMatrix m = SmallMatrix();
  Tensor x = Tensor::Normal(3, 2, 0.0f, 1.0f, rng);
  Tensor fused = m.TransposedMultiply(x);
  Tensor direct = m.ToDense().Transpose().MatMul(x);
  EXPECT_LT(fused.MaxAbsDiff(direct), 1e-5f);
}

TEST(CsrMatrixTest, TransposeMatchesDense) {
  CsrMatrix m = SmallMatrix();
  Tensor t = m.Transpose().ToDense();
  EXPECT_LT(t.MaxAbsDiff(m.ToDense().Transpose()), 1e-6f);
}

TEST(CsrMatrixTest, SparseSparseMultiply) {
  Rng rng(4);
  CsrMatrix a = SmallMatrix();
  CsrMatrix b = SmallMatrix();
  Tensor expect = a.ToDense().MatMul(b.ToDense());
  EXPECT_LT(a.Multiply(b).ToDense().MaxAbsDiff(expect), 1e-5f);
}

TEST(CsrMatrixTest, SparseSparseMultiplyRowCapKeepsLargest) {
  CsrMatrix a = SmallMatrix();
  CsrMatrix prod = a.Multiply(a, /*prune_tolerance=*/0.0f, /*row_cap=*/1);
  for (size_t r = 0; r < prod.rows(); ++r) {
    EXPECT_LE(prod.RowNnz(r), 1u);
  }
  // Row 2 of a*a is [4+20, 0, 8+25] = [24, 0, 33]; the kept entry is 33.
  EXPECT_FLOAT_EQ(prod.At(2, 2), 33.0f);
  EXPECT_FLOAT_EQ(prod.At(2, 0), 0.0f);
}

TEST(CsrMatrixTest, AddMatchesDense) {
  CsrMatrix a = SmallMatrix();
  CsrMatrix b = CsrMatrix::Identity(3);
  Tensor expect = a.ToDense() + b.ToDense();
  EXPECT_LT(a.Add(b).ToDense().MaxAbsDiff(expect), 1e-6f);
}

TEST(CsrMatrixTest, ScaleRowsCols) {
  CsrMatrix m = SmallMatrix();
  Tensor rf = Tensor::ColumnVector({1.0f, 2.0f, 3.0f});
  Tensor cf = Tensor::ColumnVector({4.0f, 5.0f, 6.0f});
  CsrMatrix scaled = m.ScaleRowsCols(rf, cf);
  EXPECT_FLOAT_EQ(scaled.At(0, 0), 1.0f * 1.0f * 4.0f);
  EXPECT_FLOAT_EQ(scaled.At(2, 2), 5.0f * 3.0f * 6.0f);
}

TEST(CsrMatrixTest, RowStochasticRowsSumToOne) {
  CsrMatrix m = SmallMatrix().RowStochastic();
  Tensor row_sums = m.Multiply(Tensor::Ones(3, 1));
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(row_sums(r, 0), 1.0f, 1e-6f);
  }
}

TEST(CsrMatrixTest, SubMatrixExtractsBlock) {
  CsrMatrix m = SmallMatrix();
  CsrMatrix sub = m.SubMatrix({0, 2}, {0, 2});
  // [[1, 2], [4, 5]]
  EXPECT_FLOAT_EQ(sub.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(sub.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(sub.At(1, 0), 4.0f);
  EXPECT_FLOAT_EQ(sub.At(1, 1), 5.0f);
}

TEST(CsrMatrixTest, IsSymmetricDetects) {
  CsrMatrix sym = CsrMatrix::FromTriplets(
      2, 2, {{0, 1, 2.0f}, {1, 0, 2.0f}, {0, 0, 1.0f}});
  EXPECT_TRUE(sym.IsSymmetric());
  EXPECT_FALSE(SmallMatrix().IsSymmetric());
}

TEST(CsrMatrixTest, IdentityBehavesAsIdentity) {
  Rng rng(5);
  Tensor x = Tensor::Normal(4, 3, 0.0f, 1.0f, rng);
  EXPECT_LT(CsrMatrix::Identity(4).Multiply(x).MaxAbsDiff(x), 1e-7f);
}

}  // namespace
}  // namespace lasagne
