// Golden-run regression harness: trains a small fixed-seed model and
// compares the loss trajectory and final accuracies against a golden
// JSON file checked into the repository. Catches silent numerical
// drift anywhere in the stack (tensor kernels, sparse ops, autograd,
// optimizer, RNG streams) that shape-level unit tests cannot see.
//
// Regenerate the golden file after an *intentional* numerical change:
//   ./lasagne_golden_run_test --update-golden
//
// This binary has its own main (instead of gtest_main) so it can take
// the --update-golden flag; the CMake target compiles only this file.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "data/registry.h"
#include "gtest/gtest.h"
#include "models/model.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

bool g_update_golden = false;

std::string GoldenPath() {
  return std::string(LASAGNE_SOURCE_DIR) + "/tests/golden/golden_run.json";
}

/// The reference workload: small, fast (< 1 s) and touching the full
/// stack — sparse propagation, dense kernels, autograd, Adam, early
/// stopping. Everything is seeded; the run is deterministic at any
/// thread count by the library's parallel-determinism contract.
TrainResult RunReference(obs::TelemetryWriter* telemetry = nullptr) {
  Dataset data = LoadDataset("cora", /*scale=*/0.25, /*seed=*/9);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.5f;
  config.seed = 7;
  TrainOptions options;
  options.max_epochs = 20;
  options.patience = 20;
  options.seed = 11;
  options.telemetry = telemetry;
  StatusOr<std::unique_ptr<Model>> model =
      TryMakeModel("gcn", data, config);
  LASAGNE_CHECK_MSG(model.ok(), model.status().ToString());
  return TrainModel(**model, options);
}

obs::JsonValue ResultToJson(const TrainResult& result) {
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("model", obs::JsonValue::String("gcn"));
  root.Set("dataset", obs::JsonValue::String("cora@0.25"));
  root.Set("epochs_run",
           obs::JsonValue::Number(static_cast<double>(result.epochs_run)));
  obs::JsonValue losses = obs::JsonValue::Array();
  for (double loss : result.loss_history) {
    losses.Append(obs::JsonValue::Number(loss));
  }
  root.Set("loss_history", std::move(losses));
  root.Set("final_loss", obs::JsonValue::Number(result.final_loss));
  root.Set("best_val_accuracy",
           obs::JsonValue::Number(result.best_val_accuracy));
  root.Set("test_accuracy",
           obs::JsonValue::Number(result.test_accuracy));
  return root;
}

TEST(GoldenRunTest, MatchesGoldenFile) {
  TrainResult result = RunReference();
  ASSERT_GT(result.epochs_run, 0u);
  ASSERT_FALSE(result.diverged);

  if (g_update_golden) {
    std::ofstream out(GoldenPath(), std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << ResultToJson(result).Dump() << "\n";
    std::printf("updated %s\n", GoldenPath().c_str());
    return;
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath()
      << " — regenerate with ./lasagne_golden_run_test --update-golden";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<obs::JsonValue> parsed = obs::JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& golden = parsed.value();

  EXPECT_EQ(static_cast<size_t>(golden.Find("epochs_run")->AsDouble()),
            result.epochs_run);
  const auto& golden_losses = golden.Find("loss_history")->AsArray();
  ASSERT_EQ(golden_losses.size(), result.loss_history.size());
  for (size_t i = 0; i < golden_losses.size(); ++i) {
    const double expected = golden_losses[i].AsDouble();
    const double actual = result.loss_history[i];
    EXPECT_NEAR(actual, expected,
                1e-4 * std::max(1.0, std::fabs(expected)))
        << "loss diverged from golden at epoch " << i;
  }
  EXPECT_NEAR(result.final_loss, golden.Find("final_loss")->AsDouble(),
              1e-4);
  EXPECT_NEAR(result.best_val_accuracy,
              golden.Find("best_val_accuracy")->AsDouble(), 1e-6);
  EXPECT_NEAR(result.test_accuracy,
              golden.Find("test_accuracy")->AsDouble(), 1e-6);
}

TEST(GoldenRunTest, ObservabilityDoesNotPerturbTraining) {
  // The observability layer must be a pure observer: the same run with
  // tracing, metrics and telemetry all enabled has to produce bitwise
  // identical losses and accuracies.
  TrainResult plain = RunReference();

  obs::EnableTracing();
  obs::EnableMetrics();
  obs::TelemetryWriter telemetry;  // in-memory sink
  TrainResult instrumented = RunReference(&telemetry);
  obs::DisableTracing();
  obs::DisableMetrics();
  obs::ClearTrace();

  ASSERT_EQ(plain.epochs_run, instrumented.epochs_run);
  ASSERT_EQ(plain.loss_history.size(), instrumented.loss_history.size());
  for (size_t i = 0; i < plain.loss_history.size(); ++i) {
    EXPECT_EQ(plain.loss_history[i], instrumented.loss_history[i])
        << "epoch " << i << " loss changed with observability enabled";
  }
  EXPECT_EQ(plain.best_val_accuracy, instrumented.best_val_accuracy);
  EXPECT_EQ(plain.test_accuracy, instrumented.test_accuracy);
  // And the sinks actually observed the run.
  EXPECT_EQ(telemetry.epochs().size(), instrumented.epochs_run);
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      lasagne::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
