// Tests for the observability layer: metrics registry (counters,
// gauges, log2-bucket histograms, concurrent updates, scrape formats),
// scoped tracing (nesting, ring buffers, Chrome-trace JSON round-trip),
// the minimal JSON document used by the exporters, and the training
// telemetry writer.

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace lasagne::obs {
namespace {

/// RAII: enables metrics for one test, restores the disabled default.
struct MetricsOn {
  MetricsOn() {
    EnableMetrics();
    MetricsRegistry::Global().Reset();
  }
  ~MetricsOn() {
    MetricsRegistry::Global().Reset();
    DisableMetrics();
  }
};

/// RAII: enables tracing for one test, restores the disabled default.
struct TracingOn {
  explicit TracingOn(size_t capacity = 1 << 16) {
    EnableTracing(capacity);
    ClearTrace();
  }
  ~TracingOn() {
    DisableTracing();
    ClearTrace();
  }
};

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

// -- JSON -------------------------------------------------------------------

TEST(ObsJsonTest, ParseRoundTrip) {
  const std::string text =
      R"({"a":1.5,"b":[true,null,"x\n\"y"],"c":{"d":-2}})";
  StatusOr<JsonValue> parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  EXPECT_DOUBLE_EQ(root.Find("a")->AsDouble(), 1.5);
  const JsonValue* b = root.Find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->AsArray().size(), 3u);
  EXPECT_TRUE(b->AsArray()[0].AsBool());
  EXPECT_TRUE(b->AsArray()[1].is_null());
  EXPECT_EQ(b->AsArray()[2].AsString(), "x\n\"y");
  EXPECT_DOUBLE_EQ(root.Find("c")->Find("d")->AsDouble(), -2.0);
  // Dump -> Parse is an identity on the document.
  StatusOr<JsonValue> reparsed = JsonValue::Parse(root.Dump());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().Dump(), root.Dump());
}

TEST(ObsJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

TEST(ObsJsonTest, NumberFormatting) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(-0.5), "-0.5");
  // NaN/Inf are not valid JSON; the writer degrades to null.
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonQuote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

// -- Metrics ----------------------------------------------------------------

TEST(ObsMetricsTest, CounterAccumulatesAcrossStripes) {
  MetricsOn on;
  Counter& c = MetricsRegistry::Global().GetCounter("test.counter");
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(ObsMetricsTest, GaugeLastWriteWins) {
  MetricsOn on;
  Gauge& g = MetricsRegistry::Global().GetGauge("test.gauge");
  g.Set(2.5);
  g.Set(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);
}

TEST(ObsMetricsTest, RegistryReturnsSameInstance) {
  MetricsOn on;
  Counter& a = MetricsRegistry::Global().GetCounter("test.same");
  Counter& b = MetricsRegistry::Global().GetCounter("test.same");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  // Bucket 0: v < 1. Bucket i: [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketFor(0.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(0.999), 0u);
  EXPECT_EQ(Histogram::BucketFor(1.0), 1u);
  EXPECT_EQ(Histogram::BucketFor(1.999), 1u);
  EXPECT_EQ(Histogram::BucketFor(2.0), 2u);
  EXPECT_EQ(Histogram::BucketFor(3.999), 2u);
  EXPECT_EQ(Histogram::BucketFor(4.0), 3u);
  EXPECT_EQ(Histogram::BucketFor(1024.0), 11u);
  // Negative and absurdly large values clamp to the end buckets.
  EXPECT_EQ(Histogram::BucketFor(-5.0), 0u);
  EXPECT_EQ(Histogram::BucketFor(1e300), Histogram::kBuckets - 1);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerEdge(1), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::BucketLowerEdge(11), 1024.0);
}

TEST(ObsMetricsTest, HistogramStatsAndPercentiles) {
  MetricsOn on;
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.hist");
  for (int i = 0; i < 90; ++i) h.Record(1.5);   // bucket 1, upper edge 2
  for (int i = 0; i < 10; ++i) h.Record(100.0);  // bucket 7, upper edge 128
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_NEAR(h.Sum(), 90 * 1.5 + 10 * 100.0, 1e-9);
  EXPECT_NEAR(h.Mean(), (90 * 1.5 + 10 * 100.0) / 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 128.0);
  std::array<uint64_t, Histogram::kBuckets> buckets = h.BucketCounts();
  EXPECT_EQ(buckets[1], 90u);
  EXPECT_EQ(buckets[7], 10u);
}

TEST(ObsMetricsTest, ConcurrentIncrementsFromParallelFor) {
  MetricsOn on;
  Counter& c = MetricsRegistry::Global().GetCounter("test.parallel");
  Histogram& h = MetricsRegistry::Global().GetHistogram("test.parallel_h");
  constexpr size_t kItems = 100000;
  ParallelFor(0, kItems, /*grain=*/1024, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      c.Increment();
      h.Record(static_cast<double>(i % 7));
    }
  });
  EXPECT_EQ(c.Value(), kItems);
  EXPECT_EQ(h.Count(), kItems);
}

TEST(ObsMetricsTest, ConcurrentIncrementsFromRawThreads) {
  MetricsOn on;
  Counter& c = MetricsRegistry::Global().GetCounter("test.threads");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(ObsMetricsTest, ScrapeTextFormat) {
  MetricsOn on;
  MetricsRegistry::Global().GetCounter("test.a").Increment(3);
  MetricsRegistry::Global().GetGauge("test.b").Set(1.5);
  MetricsRegistry::Global().GetHistogram("test.c").Record(10.0);
  const std::string text = MetricsRegistry::Global().ScrapeText();
  EXPECT_NE(text.find("counter test.a 3"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge test.b 1.5"), std::string::npos) << text;
  EXPECT_NE(text.find("histogram test.c count=1"), std::string::npos)
      << text;
}

TEST(ObsMetricsTest, ScrapeJsonParses) {
  MetricsOn on;
  MetricsRegistry::Global().GetCounter("test.j").Increment(5);
  MetricsRegistry::Global().GetHistogram("test.jh").Record(3.0);
  StatusOr<JsonValue> parsed =
      JsonValue::Parse(MetricsRegistry::Global().ScrapeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->Find("test.j")->AsDouble(), 5.0);
  const JsonValue* hist = root.Find("histograms")->Find("test.jh");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->AsDouble(), 1.0);
}

TEST(ObsMetricsTest, DisabledGuardSkipsWork) {
  DisableMetrics();
  EXPECT_FALSE(MetricsEnabled());
  // The guard is the documented call-site contract: with metrics off,
  // instrumentation never reaches the registry.
  bool touched = false;
  if (MetricsEnabled()) touched = true;
  EXPECT_FALSE(touched);
}

// -- Tracing ----------------------------------------------------------------

TEST(ObsTraceTest, RecordsNestedSpansWithDepth) {
  TracingOn on;
  {
    LASAGNE_TRACE_SCOPE("outer");
    {
      LASAGNE_TRACE_SCOPE("inner");
    }
  }
  std::vector<TraceEvent> events = CollectTrace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer starts first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_GE(events[0].duration_ns, events[1].duration_ns);
}

TEST(ObsTraceTest, DisabledTracingRecordsNothing) {
  ClearTrace();
  DisableTracing();
  {
    LASAGNE_TRACE_SCOPE("ignored");
  }
  EXPECT_TRUE(CollectTrace().empty());
}

TEST(ObsTraceTest, SpansFromWorkerThreadsGetDistinctTids) {
  TracingOn on;
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([] {
      LASAGNE_TRACE_SCOPE("worker");
    });
  }
  for (std::thread& w : workers) w.join();
  std::vector<TraceEvent> events = CollectTrace();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_FALSE(events[0].tid == events[1].tid &&
               events[1].tid == events[2].tid);
}

TEST(ObsTraceTest, RingBufferKeepsNewestEvents) {
  TracingOn on(/*capacity=*/8);
  const uint64_t dropped_before = TraceDroppedEvents();
  // Ring capacity applies to buffers created after EnableTracing, so
  // record from a fresh thread: its buffer is born with 8 slots.
  std::thread recorder([] {
    for (int i = 0; i < 100; ++i) {
      LASAGNE_TRACE_SCOPE("span");
    }
  });
  recorder.join();
  std::vector<TraceEvent> events = CollectTrace();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_GE(TraceDroppedEvents() - dropped_before, 92u);
}

TEST(ObsTraceTest, JsonExportRoundTrips) {
  TracingOn on;
  {
    LASAGNE_TRACE_SCOPE("alpha");
    LASAGNE_TRACE_SCOPE("beta");
  }
  StatusOr<JsonValue> parsed = JsonValue::Parse(TraceToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->AsArray().size(), 2u);
  for (const JsonValue& event : events->AsArray()) {
    EXPECT_EQ(event.Find("ph")->AsString(), "X");
    EXPECT_EQ(event.Find("cat")->AsString(), "lasagne");
    EXPECT_GE(event.Find("dur")->AsDouble(), 0.0);
    const std::string& name = event.Find("name")->AsString();
    EXPECT_TRUE(name == "alpha" || name == "beta") << name;
  }
}

TEST(ObsTraceTest, WriteTraceJsonProducesReadableFile) {
  TracingOn on;
  {
    LASAGNE_TRACE_SCOPE("file_span");
  }
  const std::string path = TempPath("obs_trace.json");
  ASSERT_TRUE(WriteTraceJson(path).ok());
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  StatusOr<JsonValue> parsed = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(
      parsed.value().Find("traceEvents")->AsArray().size(), 1u);
  std::remove(path.c_str());
}

TEST(ObsTraceTest, DisabledOverheadStaysSmall) {
  // With tracing off a scope is one relaxed load; assert it cannot be
  // catastrophically slow (generous bound — this is a smoke test, the
  // real measurement lives in bench_micro_kernels).
  DisableTracing();
  constexpr int kIters = 1000000;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    LASAGNE_TRACE_SCOPE("noop");
  }
  const auto end = std::chrono::steady_clock::now();
  const double ns_per =
      std::chrono::duration<double, std::nano>(end - start).count() /
      kIters;
  EXPECT_LT(ns_per, 100.0);
}

// -- Telemetry --------------------------------------------------------------

TEST(ObsTelemetryTest, StreamsJsonlAndKeepsRecords) {
  const std::string path = TempPath("obs_telemetry.jsonl");
  TelemetryWriter writer;
  ASSERT_TRUE(writer.Open(path).ok());
  writer.RecordEpoch({0, 1.5, 0.3, 0.9, 0.02, 12.5});
  writer.RecordRecovery({1, "non-finite gradient", 0.01});
  writer.RecordEpoch({1, 1.2, 0.4, 0.7, 0.01, 11.0});
  writer.Close();
  EXPECT_EQ(writer.epochs().size(), 2u);
  EXPECT_EQ(writer.recoveries().size(), 1u);

  // Every line must be a standalone JSON object (the JSONL contract).
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> types;
  while (std::getline(in, line)) {
    StatusOr<JsonValue> parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << line;
    types.push_back(parsed.value().Find("type")->AsString());
  }
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], "epoch");
  EXPECT_EQ(types[1], "recovery");
  EXPECT_EQ(types[2], "epoch");
  std::remove(path.c_str());
}

TEST(ObsTelemetryTest, SummaryTableReflectsRecords) {
  TelemetryWriter writer;  // in-memory only
  writer.RecordEpoch({0, 2.0, 0.2, 1.0, 0.02, 10.0});
  writer.RecordEpoch({1, 1.0, 0.6, 0.5, 0.02, 20.0});
  const std::string table = writer.SummaryTable();
  EXPECT_NE(table.find("epochs"), std::string::npos);
  EXPECT_NE(table.find("2 -> 1"), std::string::npos) << table;
  EXPECT_NE(table.find("0.6000"), std::string::npos) << table;
  EXPECT_NE(table.find("recoveries         0"), std::string::npos)
      << table;
}

TEST(ObsTelemetryTest, OpenFailureIsReported) {
  TelemetryWriter writer;
  EXPECT_FALSE(writer.Open("/nonexistent-dir/obs.jsonl").ok());
}

}  // namespace
}  // namespace lasagne::obs
