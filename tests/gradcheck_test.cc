// Systematic finite-difference gradient verification of every
// differentiable op, layer and aggregator in the library.
//
// Unlike the quick float checker in test_util.h, this harness does all
// finite-difference arithmetic in double and aims for a tight relative
// error (< 1e-3) so a subtly wrong backward (off by a factor, missing a
// term, transposed) cannot hide inside a loose tolerance. The final
// test deliberately installs a broken backward and asserts the harness
// flags it.

#include <cmath>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "autograd/edge_ops.h"
#include "autograd/fm_op.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/aggregators.h"
#include "core/gcfm.h"
#include "graph/graph.h"
#include "gtest/gtest.h"
#include "nn/layers.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace lasagne {
namespace {

// Relative-error tolerance: forward passes are float32, so central
// differences carry ~eps_f32 * |loss| / (2h) of rounding noise; with
// |loss| kept O(1) and h = 2e-3 that noise sits well below 1e-3.
constexpr double kTol = 1e-3;
constexpr double kStep = 2e-3;

/// Central-difference gradient check with double arithmetic.
///
/// `build_loss` must rebuild the graph from scratch and return a scalar
/// (1x1) loss; any RNG it consumes must be re-seeded inside the closure
/// so repeated evaluations see identical random draws. Returns the max
/// relative error |analytic - numeric| / max(1, |analytic|, |numeric|)
/// over every entry of every parameter.
double GradCheckDouble(const std::function<ag::Variable()>& build_loss,
                       const std::vector<ag::Variable>& params,
                       double step = kStep) {
  for (const ag::Variable& p : params) p->ZeroGrad();
  ag::Variable loss = build_loss();
  EXPECT_EQ(loss->rows(), 1u);
  EXPECT_EQ(loss->cols(), 1u);
  ag::Backward(loss);
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const ag::Variable& p : params) {
    analytic.push_back(p->grad().empty()
                           ? Tensor::Zeros(p->rows(), p->cols())
                           : p->grad());
  }
  double max_err = 0.0;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    const ag::Variable& p = params[pi];
    for (size_t r = 0; r < p->rows(); ++r) {
      for (size_t c = 0; c < p->cols(); ++c) {
        const double original = p->value()(r, c);
        p->mutable_value()(r, c) = static_cast<float>(original + step);
        const double plus = build_loss()->value()(0, 0);
        p->mutable_value()(r, c) = static_cast<float>(original - step);
        const double minus = build_loss()->value()(0, 0);
        p->mutable_value()(r, c) = static_cast<float>(original);
        const double numeric = (plus - minus) / (2.0 * step);
        const double a = analytic[pi](r, c);
        const double denom =
            std::max({1.0, std::fabs(a), std::fabs(numeric)});
        max_err = std::max(max_err, std::fabs(a - numeric) / denom);
      }
    }
  }
  return max_err;
}

/// Scalarizes an op output with fixed pseudo-random weights so the
/// check exercises non-uniform output gradients (a plain Sum would let
/// row/column mix-ups cancel out).
ag::Variable Scalarize(const ag::Variable& v) {
  Rng rng(0xC0FFEE);
  Tensor w = Tensor::Uniform(v->rows(), v->cols(), 0.5f, 1.5f, rng);
  return ag::Sum(ag::Mul(v, ag::MakeConstant(std::move(w))));
}

ag::Variable Param(size_t rows, size_t cols, uint64_t seed,
                   float stddev = 0.6f) {
  Rng rng(seed);
  return ag::MakeParameter(Tensor::Normal(rows, cols, 0.0f, stddev, rng));
}

std::shared_ptr<const CsrMatrix> TinyAHat() {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  return std::make_shared<CsrMatrix>(g.NormalizedAdjacency());
}

std::shared_ptr<const ag::EdgeStructure> TinyEdges() {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  return ag::EdgeStructure::FromGraph(g, /*add_self_loops=*/true);
}

// -- Elementwise and arithmetic ops -----------------------------------------

TEST(GradCheckTest, ElementwiseArithmetic) {
  ag::Variable a = Param(3, 4, 1);
  ag::Variable b = Param(3, 4, 2);
  ag::Variable c = Param(3, 4, 3);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::Add(a, b)); }, {a, b}),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::AddMany({a, b, c})); },
                {a, b, c}),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::Sub(a, b)); }, {a, b}),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::Mul(a, b)); }, {a, b}),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::ScalarMul(a, -1.7f)); }, {a}),
            kTol);
}

TEST(GradCheckTest, SmoothActivations) {
  ag::Variable a = Param(3, 4, 4);
  EXPECT_LT(
      GradCheckDouble([&] { return Scalarize(ag::Sigmoid(a)); }, {a}),
      kTol);
  EXPECT_LT(GradCheckDouble([&] { return Scalarize(ag::Tanh(a)); }, {a}),
            kTol);
  EXPECT_LT(GradCheckDouble([&] { return Scalarize(ag::Exp(a)); }, {a}),
            kTol);
  // Log needs positive inputs well away from the eps clamp.
  Rng rng(5);
  ag::Variable pos =
      ag::MakeParameter(Tensor::Uniform(3, 4, 0.5f, 2.0f, rng));
  EXPECT_LT(
      GradCheckDouble([&] { return Scalarize(ag::Log(pos)); }, {pos}),
      kTol);
}

TEST(GradCheckTest, PiecewiseActivationsAwayFromKinks) {
  // ReLU/LeakyReLU are non-differentiable at 0; keep every entry at
  // least 10x the FD step away from the kink.
  Rng rng(6);
  Tensor vals = Tensor::Uniform(3, 4, 0.1f, 1.0f, rng);
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i % 2 == 0) vals.data()[i] = -vals.data()[i];
  }
  ag::Variable x = ag::MakeParameter(vals);
  EXPECT_LT(GradCheckDouble([&] { return Scalarize(ag::Relu(x)); }, {x}),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::LeakyRelu(x, 0.3f)); }, {x}),
            kTol);
}

// -- Linear algebra ---------------------------------------------------------

TEST(GradCheckTest, MatMulAndTranspose) {
  ag::Variable a = Param(3, 4, 7);
  ag::Variable b = Param(4, 2, 8);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::MatMul(a, b)); }, {a, b}),
            kTol);
  EXPECT_LT(
      GradCheckDouble([&] { return Scalarize(ag::Transpose(a)); }, {a}),
      kTol);
}

TEST(GradCheckTest, MatMulOddShapesExerciseBlockedTiles) {
  // Shapes straddling the 16-wide column tile and the vector width, so
  // the packed main loop, the register tail and the scalar tail of the
  // blocked GEMM all carry gradient (docs/KERNELS.md).
  const size_t shapes[][3] = {{1, 1, 1}, {3, 5, 2}, {2, 3, 17},
                              {5, 16, 16}, {4, 7, 33}};
  uint64_t seed = 100;
  for (const auto& s : shapes) {
    ag::Variable a = Param(s[0], s[1], seed++);
    ag::Variable b = Param(s[1], s[2], seed++);
    EXPECT_LT(GradCheckDouble(
                  [&] { return Scalarize(ag::MatMul(a, b)); }, {a, b}),
              kTol)
        << s[0] << "x" << s[1] << " @ " << s[1] << "x" << s[2];
  }
}

TEST(GradCheckTest, AddRowVector) {
  ag::Variable x = Param(4, 3, 120);
  ag::Variable bias = Param(1, 3, 121);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::AddRowVector(x, bias)); },
                {x, bias}),
            kTol);
  // Width past one vector register, odd remainder.
  ag::Variable x2 = Param(3, 17, 122);
  ag::Variable bias2 = Param(1, 17, 123);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::AddRowVector(x2, bias2)); },
                {x2, bias2}),
            kTol);
}

TEST(GradCheckTest, SpMM) {
  auto a_hat = TinyAHat();
  ag::Variable x = Param(5, 3, 9);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::SpMM(a_hat, x)); }, {x}),
            kTol);
}

// -- Broadcasting / shaping -------------------------------------------------

TEST(GradCheckTest, RowOps) {
  ag::Variable x = Param(4, 3, 10);
  ag::Variable c = Param(4, 1, 11);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::RowScale(x, c)); }, {x, c}),
            kTol);
  Rng rng(12);
  ag::Variable d =
      ag::MakeParameter(Tensor::Uniform(4, 1, 0.5f, 2.0f, rng));
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::RowDivide(x, d)); }, {x, d}),
            kTol);
  // RowMax routes the gradient to the per-row argmax; Normal draws make
  // ties (the non-differentiable case) measure-zero.
  EXPECT_LT(GradCheckDouble([&] { return Scalarize(ag::RowMax(x)); }, {x}),
            kTol);
  EXPECT_LT(
      GradCheckDouble([&] { return Scalarize(ag::MeanRows(x)); }, {x}),
      kTol);
}

TEST(GradCheckTest, ConcatSliceGather) {
  ag::Variable a = Param(4, 2, 13);
  ag::Variable b = Param(4, 3, 14);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::ConcatCols({a, b})); }, {a, b}),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::SliceCols(b, 1, 2)); }, {b}),
            kTol);
  // Repeated index exercises the scatter-add in backward.
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return Scalarize(ag::GatherRows(b, {0, 2, 2, 3}));
                },
                {b}),
            kTol);
}

TEST(GradCheckTest, MaxOverSet) {
  ag::Variable a = Param(3, 4, 15);
  ag::Variable b = Param(3, 4, 16);
  ag::Variable c = Param(3, 4, 17);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::MaxOverSet({a, b, c})); },
                {a, b, c}),
            kTol);
}

// -- Reductions -------------------------------------------------------------

TEST(GradCheckTest, Reductions) {
  ag::Variable x = Param(3, 4, 18);
  EXPECT_LT(GradCheckDouble([&] { return ag::Sum(x); }, {x}), kTol);
  EXPECT_LT(GradCheckDouble([&] { return ag::Mean(x); }, {x}), kTol);
  EXPECT_LT(GradCheckDouble([&] { return ag::SquaredSum(x); }, {x}), kTol);
}

// -- Normalization ----------------------------------------------------------

TEST(GradCheckTest, PairNorm) {
  ag::Variable x = Param(5, 3, 19);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::PairNorm(x, 1.3f)); }, {x}),
            kTol);
}

TEST(GradCheckTest, BatchNormColumns) {
  ag::Variable x = Param(6, 3, 20, /*stddev=*/1.0f);
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::BatchNormColumns(x)); }, {x}),
            kTol);
}

// -- Stochastic ops ---------------------------------------------------------

TEST(GradCheckTest, DropoutWithFixedStream) {
  // The closure re-seeds its Rng on every call, so both the analytic
  // pass and every FD evaluation see the identical dropout mask.
  ag::Variable x = Param(4, 5, 21);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  Rng rng(99);
                  return Scalarize(
                      ag::Dropout(x, 0.4f, rng, /*training=*/true));
                },
                {x}),
            kTol);
}

TEST(GradCheckTest, BernoulliStraightThroughEval) {
  // In eval mode the op passes probabilities through, so the identity
  // (straight-through) backward is exactly right and checkable; the
  // training-mode sampling step is discontinuous by design.
  Rng rng(22);
  ag::Variable probs =
      ag::MakeParameter(Tensor::Uniform(4, 3, 0.2f, 0.8f, rng));
  EXPECT_LT(GradCheckDouble(
                [&] {
                  Rng r(7);
                  return Scalarize(ag::BernoulliStraightThrough(
                      probs, r, /*training=*/false));
                },
                {probs}),
            kTol);
}

// -- Losses -----------------------------------------------------------------

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  ag::Variable logits = Param(5, 3, 23);
  const std::vector<int32_t> labels = {0, 2, 1, 1, 0};
  const std::vector<float> mask = {1, 1, 0, 1, 1};
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return ag::SoftmaxCrossEntropy(logits, labels, mask);
                },
                {logits}),
            kTol);
}

TEST(GradCheckTest, WeightedSoftmaxCrossEntropy) {
  ag::Variable logits = Param(5, 3, 24);
  const std::vector<int32_t> labels = {2, 0, 1, 2, 1};
  const std::vector<float> weights = {0.5f, 1.5f, 0.0f, 2.0f, 1.0f};
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return ag::WeightedSoftmaxCrossEntropy(logits, labels,
                                                         weights);
                },
                {logits}),
            kTol);
}

TEST(GradCheckTest, BinaryCrossEntropyWithLogits) {
  ag::Variable logits = Param(4, 3, 25);
  Tensor targets(4, 3);
  Rng rng(26);
  for (size_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return ag::BinaryCrossEntropyWithLogits(logits, targets);
                },
                {logits}),
            kTol);
}

TEST(GradCheckTest, MeanCosineDistance) {
  ag::Variable x = Param(5, 4, 27, /*stddev=*/1.0f);
  const std::vector<std::pair<uint32_t, uint32_t>> pairs = {
      {0, 1}, {1, 2}, {3, 4}, {0, 4}};
  EXPECT_LT(GradCheckDouble(
                [&] { return ag::MeanCosineDistance(x, pairs); }, {x}),
            kTol);
}

// -- Edge (attention) ops ---------------------------------------------------

TEST(GradCheckTest, GatherEdgeScoresAndSoftmax) {
  auto edges = TinyEdges();
  const size_t n = edges->num_nodes;
  ag::Variable dst = Param(n, 1, 28);
  ag::Variable src = Param(n, 1, 29);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return Scalarize(ag::GatherEdgeScores(dst, src, edges));
                },
                {dst, src}),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  ag::Variable scores =
                      ag::GatherEdgeScores(dst, src, edges);
                  return Scalarize(ag::EdgeSoftmax(scores, edges));
                },
                {dst, src}),
            kTol);
}

TEST(GradCheckTest, AddEdgeBias) {
  auto edges = TinyEdges();
  ag::Variable scores = Param(edges->num_edges(), 1, 30);
  auto bias = std::make_shared<std::vector<float>>();
  Rng rng(31);
  for (size_t e = 0; e < edges->num_edges(); ++e) {
    bias->push_back(static_cast<float>(rng.Normal(0.0, 0.5)));
  }
  EXPECT_LT(GradCheckDouble(
                [&] { return Scalarize(ag::AddEdgeBias(scores, bias)); },
                {scores}),
            kTol);
}

TEST(GradCheckTest, EdgeWeightedAggregate) {
  auto edges = TinyEdges();
  ag::Variable weights = Param(edges->num_edges(), 1, 32);
  ag::Variable features = Param(edges->num_nodes, 3, 33);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return Scalarize(ag::EdgeWeightedAggregate(
                      weights, features, edges));
                },
                {weights, features}),
            kTol);
}

// -- Single-pass fused edge attention ---------------------------------------

TEST(GradCheckTest, EdgeAttentionFused) {
  auto edges = TinyEdges();
  const size_t n = edges->num_nodes;
  ag::Variable dst = Param(n, 1, 50);
  ag::Variable src = Param(n, 1, 51);
  // d = 6 straddles the SIMD width on every ISA tier (one partial
  // vector on AVX2, vector+tail on SSE2).
  ag::Variable features = Param(n, 6, 52);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return Scalarize(ag::EdgeAttention(dst, src, features,
                                                     edges, 0.2f, nullptr));
                },
                {dst, src, features}),
            kTol);
}

TEST(GradCheckTest, EdgeAttentionFusedWithEdgeBias) {
  auto edges = TinyEdges();
  const size_t n = edges->num_nodes;
  ag::Variable dst = Param(n, 1, 53);
  ag::Variable src = Param(n, 1, 54);
  ag::Variable features = Param(n, 3, 55);
  auto bias = std::make_shared<std::vector<float>>();
  Rng rng(56);
  for (size_t e = 0; e < edges->num_edges(); ++e) {
    bias->push_back(static_cast<float>(rng.Normal(0.0, 0.5)));
  }
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return Scalarize(
                      ag::EdgeAttention(dst, src, features, edges, 0.2f, bias));
                },
                {dst, src, features}),
            kTol);
}

TEST(GradCheckTest, EdgeAttentionFusedIsolatedAndSingleEdgeRows) {
  // Hand-built structure: node 1 receives nothing (isolated — zero
  // output row, zero gradient contribution), node 2 receives exactly
  // one edge (softmax collapses to 1.0, a degenerate gradient path).
  auto built = std::make_shared<ag::EdgeStructure>();
  built->num_nodes = 4;
  built->row_ptr = {0, 2, 2, 3, 5};
  built->src = {1, 3, 0, 2, 3};
  std::shared_ptr<const ag::EdgeStructure> edges = built;
  ag::Variable dst = Param(4, 1, 57);
  ag::Variable src = Param(4, 1, 58);
  ag::Variable features = Param(4, 5, 59);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return Scalarize(ag::EdgeAttention(dst, src, features,
                                                     edges, 0.2f, nullptr));
                },
                {dst, src, features}),
            kTol);
}

TEST(GradCheckTest, EdgeAttentionGradientsMatchUnfusedChainBitwise) {
  // Stronger than finite differences: the fused backward must produce
  // the raw chain's gradients bit for bit (same float sequences, same
  // accumulation orders).
  auto edges = TinyEdges();
  const size_t n = edges->num_nodes;
  auto bias = std::make_shared<std::vector<float>>();
  Rng rng(60);
  for (size_t e = 0; e < edges->num_edges(); ++e) {
    bias->push_back(static_cast<float>(rng.Normal(0.0, 0.5)));
  }
  for (const bool with_bias : {false, true}) {
    ag::Variable dst = Param(n, 1, 61);
    ag::Variable src = Param(n, 1, 62);
    ag::Variable features = Param(n, 7, 63);
    const auto chain_bias = with_bias ? bias : nullptr;

    ag::Variable fused = Scalarize(
        ag::EdgeAttention(dst, src, features, edges, 0.2f, chain_bias));
    ag::Backward(fused);
    const Tensor d_dst = dst->grad();
    const Tensor d_src = src->grad();
    const Tensor d_feat = features->grad();

    for (const ag::Variable& p : {dst, src, features}) p->ZeroGrad();
    ag::Variable e = ag::GatherEdgeScores(dst, src, edges);
    if (chain_bias != nullptr) e = ag::AddEdgeBias(e, chain_bias);
    e = ag::LeakyRelu(e, 0.2f);
    ag::Variable unfused = Scalarize(ag::EdgeWeightedAggregate(
        ag::EdgeSoftmax(e, edges), features, edges));
    ag::Backward(unfused);

    EXPECT_EQ(fused->value()(0, 0), unfused->value()(0, 0));
    EXPECT_EQ(0, std::memcmp(d_dst.data(), dst->grad().data(),
                             d_dst.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(d_src.data(), src->grad().data(),
                             d_src.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(d_feat.data(), features->grad().data(),
                             d_feat.size() * sizeof(float)));
  }
}

// -- Factorization-machine op -----------------------------------------------

TEST(GradCheckTest, FmInteraction) {
  const std::vector<size_t> offsets = {0, 3, 5};  // two fields, M = 5
  ag::Variable x = Param(4, 5, 34, /*stddev=*/0.5f);
  ag::Variable w = Param(5, 2, 35, /*stddev=*/0.4f);
  ag::Variable v = Param(5, 2 * 2, 36, /*stddev=*/0.4f);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  return Scalarize(
                      ag::FmInteraction(x, w, v, offsets, /*k=*/2));
                },
                {x, w, v}),
            kTol);
}

// -- nn layers --------------------------------------------------------------

TEST(GradCheckTest, LinearLayer) {
  Rng rng(37);
  nn::Linear layer(4, 3, rng, /*bias=*/true);
  ag::Variable x = Param(5, 4, 38);
  std::vector<ag::Variable> params = layer.Parameters();
  params.push_back(x);
  EXPECT_LT(
      GradCheckDouble([&] { return Scalarize(layer.Forward(x)); }, params),
      kTol);
}

TEST(GradCheckTest, GraphConvolutionLayer) {
  Rng rng(39);
  nn::GraphConvolution layer(3, 4, rng);
  auto a_hat = TinyAHat();
  ag::Variable x = Param(5, 3, 40);
  std::vector<ag::Variable> params = layer.Parameters();
  params.push_back(x);
  // Identity activation first (no kinks anywhere), then ReLU (the seed
  // keeps every pre-activation comfortably away from zero).
  EXPECT_LT(GradCheckDouble(
                [&] {
                  Rng fwd(1);
                  nn::ForwardContext ctx{/*training=*/true, &fwd};
                  return Scalarize(layer.Forward(a_hat, x, ctx,
                                                 /*dropout=*/0.3f,
                                                 /*relu=*/false));
                },
                params),
            kTol);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  Rng fwd(2);
                  nn::ForwardContext ctx{/*training=*/false, &fwd};
                  return Scalarize(layer.Forward(a_hat, x, ctx,
                                                 /*dropout=*/0.0f,
                                                 /*relu=*/true));
                },
                params),
            kTol);
}

TEST(GradCheckTest, GatHeadLayer) {
  Rng rng(41);
  nn::GatHead head(3, 4, rng);
  auto edges = TinyEdges();
  ag::Variable x = Param(5, 3, 42);
  std::vector<ag::Variable> params = head.Parameters();
  params.push_back(x);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  Rng fwd(3);
                  nn::ForwardContext ctx{/*training=*/false, &fwd};
                  return Scalarize(head.Forward(edges, x, ctx));
                },
                params),
            kTol);
}

TEST(GradCheckTest, GatMultiHeadLayer) {
  Rng rng(43);
  nn::GatMultiHead layer(3, 2, /*num_heads=*/2, /*concat=*/true, rng);
  auto edges = TinyEdges();
  ag::Variable x = Param(5, 3, 44);
  std::vector<ag::Variable> params = layer.Parameters();
  params.push_back(x);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  Rng fwd(4);
                  nn::ForwardContext ctx{/*training=*/false, &fwd};
                  return Scalarize(layer.Forward(edges, x, ctx));
                },
                params),
            kTol);
}

// -- Node-aware aggregators and GC-FM ---------------------------------------

class GradCheckAggregatorTest
    : public ::testing::TestWithParam<AggregatorKind> {};

TEST_P(GradCheckAggregatorTest, HistoryAggregation) {
  const size_t n = 5;
  const std::vector<size_t> dims = {3, 3};
  Rng rng(45);
  ag::Variable shared_p = ag::MakeParameter(
      Tensor::Normal(n, dims.size(), 0.0f, 0.1f, rng));
  auto agg = MakeAggregator(GetParam(), n, dims.size(), dims, shared_p,
                            rng);
  auto a_hat = TinyAHat();
  std::vector<ag::Variable> history = {Param(n, 3, 46), Param(n, 3, 47)};
  std::vector<ag::Variable> params = agg->Parameters();
  for (const ag::Variable& h : history) params.push_back(h);
  // Eval mode: the stochastic aggregator then uses the differentiable
  // expectation instead of discrete Bernoulli draws.
  EXPECT_LT(GradCheckDouble(
                [&] {
                  Rng fwd(5);
                  nn::ForwardContext ctx{/*training=*/false, &fwd};
                  return Scalarize(agg->Aggregate(a_hat, history, ctx));
                },
                params),
            kTol)
      << "aggregator " << agg->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GradCheckAggregatorTest,
    ::testing::Values(AggregatorKind::kWeighted, AggregatorKind::kMaxPooling,
                      AggregatorKind::kStochastic, AggregatorKind::kMean,
                      AggregatorKind::kLstm),
    [](const ::testing::TestParamInfo<AggregatorKind>& info) {
      return AggregatorKindName(info.param);
    });

TEST(GradCheckTest, GcFmEndToEnd) {
  // Full last-layer stack on a synthetic graph: hidden layers -> GC-FM
  // (linear + cross-layer FM + spectral filter) -> masked loss.
  Rng rng(48);
  GcFmLayer layer({3, 2}, /*num_classes=*/2, /*fm_rank=*/2, rng,
                  /*final_relu=*/false);
  auto a_hat = TinyAHat();
  std::vector<ag::Variable> hidden = {Param(5, 3, 49, 0.5f),
                                      Param(5, 2, 50, 0.5f)};
  const std::vector<int32_t> labels = {0, 1, 0, 1, 1};
  const std::vector<float> mask = {1, 1, 1, 0, 1};
  std::vector<ag::Variable> params = layer.Parameters();
  for (const ag::Variable& h : hidden) params.push_back(h);
  EXPECT_LT(GradCheckDouble(
                [&] {
                  ag::Variable logits = layer.Forward(a_hat, hidden);
                  return ag::SoftmaxCrossEntropy(logits, labels, mask);
                },
                params),
            kTol);
}

// -- The canary: a wrong backward must be caught ----------------------------

TEST(GradCheckTest, BrokenBackwardIsCaught) {
  // Forward doubles the input but backward claims the factor is 3. The
  // checker must report a large relative error, proving it has the
  // power to reject, not just accept.
  ag::Variable x = Param(3, 3, 51);
  auto broken_double = [](const ag::Variable& in) {
    ag::Variable out =
        ag::MakeOpNode(in->value() * 2.0f, {in}, "BrokenDouble");
    ag::Node* raw = in.get();
    out->set_backward_fn([raw](const Tensor& g) {
      if (raw->requires_grad()) raw->AccumulateGrad(g * 3.0f);
    });
    return out;
  };
  const double err = GradCheckDouble(
      [&] { return Scalarize(broken_double(x)); }, {x});
  EXPECT_GT(err, 0.2);
}

}  // namespace
}  // namespace lasagne
