// Determinism suite for the parallel compute layer (docs/THREADING.md)
// plus regression tests for the two numerical bugfixes that rode along
// with it (saturated-logit BCE, SpGEMM row_cap with cancelling
// entries). The contract under test: every parallel kernel produces
// results bitwise-identical to its serial loop at 1, 2 and 8 threads.

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/csr_matrix.h"
#include "tensor/tensor.h"
#include "train/experiment.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

// Restores the default thread count when a test exits, so tests stay
// order-independent.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": results differ across thread counts";
}

// Runs `fn` under each thread count and asserts every result is
// bitwise-identical to the 1-thread result.
template <typename Fn>
void ExpectSameAcrossThreadCounts(Fn fn, const char* what) {
  ThreadCountGuard guard;
  SetNumThreads(1);
  const Tensor reference = fn();
  for (size_t threads : {2u, 8u}) {
    SetNumThreads(threads);
    ExpectBitwiseEqual(reference, fn(), what);
  }
}

// -- Thread pool primitives ------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  ParallelFor(0, kN, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int> outer_chunks{0};
  std::atomic<int> inner_chunks{0};
  ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    outer_chunks.fetch_add(1);
    EXPECT_TRUE(InParallelRegion());
    // The nested call must not re-enter the pool: one chunk, inline.
    ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
      inner_chunks.fetch_add(1);
      EXPECT_EQ(b, 0u);
      EXPECT_EQ(e, 100u);
    });
    (void)begin;
    (void)end;
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_GT(outer_chunks.load(), 1);
  EXPECT_EQ(inner_chunks.load(), outer_chunks.load());
}

TEST(ThreadPoolTest, SetNumThreadsRoundTrips) {
  ThreadCountGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3u);
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1u);
}

TEST(ThreadPoolTest, ParallelReduceIsThreadCountInvariant) {
  ThreadCountGuard guard;
  Rng rng(7);
  // Big enough for several grain-sized chunks.
  std::vector<double> values(100000);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  auto reduce = [&] {
    return ParallelReduce(0, values.size(), 1024,
                          [&](size_t begin, size_t end) {
                            double acc = 0.0;
                            for (size_t i = begin; i < end; ++i) {
                              acc += values[i];
                            }
                            return acc;
                          });
  };
  SetNumThreads(1);
  const double reference = reduce();
  for (size_t threads : {2u, 8u}) {
    SetNumThreads(threads);
    EXPECT_EQ(reduce(), reference) << threads << " threads";
  }
}

// -- Kernel determinism across thread counts -------------------------------

TEST(ParallelDeterminismTest, DenseMatMulVariants) {
  Rng rng(11);
  const Tensor a = Tensor::Normal(311, 70, 0.0f, 1.0f, rng);
  const Tensor b = Tensor::Normal(70, 53, 0.0f, 1.0f, rng);
  const Tensor c = Tensor::Normal(311, 53, 0.0f, 1.0f, rng);
  const Tensor d = Tensor::Normal(41, 70, 0.0f, 1.0f, rng);
  ExpectSameAcrossThreadCounts([&] { return a.MatMul(b); }, "MatMul");
  ExpectSameAcrossThreadCounts([&] { return a.TransposedMatMul(c); },
                               "TransposedMatMul");
  ExpectSameAcrossThreadCounts([&] { return a.MatMulTransposed(d); },
                               "MatMulTransposed");
}

TEST(ParallelDeterminismTest, ElementwiseAndReductions) {
  Rng rng(13);
  const Tensor a = Tensor::Normal(217, 401, 0.0f, 1.0f, rng);
  const Tensor b = Tensor::Normal(217, 401, 0.0f, 1.0f, rng);
  ExpectSameAcrossThreadCounts([&] { return a + b; }, "Add");
  ExpectSameAcrossThreadCounts([&] { return a * b; }, "Hadamard");
  ExpectSameAcrossThreadCounts(
      [&] { return a.Map([](float v) { return std::tanh(v); }); }, "Map");
  ExpectSameAcrossThreadCounts([&] { return a.Transpose(); }, "Transpose");
  ExpectSameAcrossThreadCounts([&] { return a.RowSum(); }, "RowSum");
  ThreadCountGuard guard;
  SetNumThreads(1);
  const float sum = a.Sum();
  const float sq = a.SquaredNorm();
  for (size_t threads : {2u, 8u}) {
    SetNumThreads(threads);
    EXPECT_EQ(a.Sum(), sum) << threads << " threads";
    EXPECT_EQ(a.SquaredNorm(), sq) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, SparseMultiplyKernels) {
  Rng rng(17);
  Tensor dense_matrix = Tensor::Normal(509, 367, 0.0f, 1.0f, rng);
  // Sparsify to ~8% so rows have uneven nnz.
  for (size_t i = 0; i < dense_matrix.size(); ++i) {
    if (rng.Uniform() > 0.08) dense_matrix.data()[i] = 0.0f;
  }
  const CsrMatrix m = CsrMatrix::FromDense(dense_matrix);
  ASSERT_GT(m.nnz(), 0u);
  const Tensor x = Tensor::Normal(367, 61, 0.0f, 1.0f, rng);
  const Tensor y = Tensor::Normal(509, 61, 0.0f, 1.0f, rng);
  ExpectSameAcrossThreadCounts([&] { return m.Multiply(x); }, "SpMM");
  ExpectSameAcrossThreadCounts([&] { return m.TransposedMultiply(y); },
                               "TransposedSpMM");
}

TEST(ParallelDeterminismTest, SpmmMatchesDenseReference) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  Rng rng(19);
  Tensor dense_matrix = Tensor::Normal(101, 83, 0.0f, 1.0f, rng);
  for (size_t i = 0; i < dense_matrix.size(); ++i) {
    if (i % 5 != 0) dense_matrix.data()[i] = 0.0f;
  }
  const CsrMatrix m = CsrMatrix::FromDense(dense_matrix);
  const Tensor x = Tensor::Normal(83, 37, 0.0f, 1.0f, rng);
  EXPECT_LT(m.Multiply(x).MaxAbsDiff(dense_matrix.MatMul(x)), 1e-4f);
  const Tensor y = Tensor::Normal(101, 37, 0.0f, 1.0f, rng);
  EXPECT_LT(m.TransposedMultiply(y).MaxAbsDiff(
                dense_matrix.Transpose().MatMul(y)),
            1e-4f);
}

TEST(ParallelDeterminismTest, FullTrainedRunBitwiseIdentical) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.3, 21);
  auto train_params = [&](size_t threads) {
    SetNumThreads(threads);
    ModelConfig config;
    config.depth = 3;
    config.hidden_dim = 16;
    config.dropout = 0.4f;
    config.seed = 5;
    std::unique_ptr<Model> model = MakeModel("gcn", data, config);
    TrainOptions options;
    options.max_epochs = 25;
    options.patience = 25;
    options.seed = 6;
    TrainResult result = TrainModel(*model, options);
    std::vector<Tensor> params;
    for (const ag::Variable& p : model->Parameters()) {
      params.push_back(p->value());
    }
    params.push_back(Tensor(1, 1, {static_cast<float>(
                                      result.test_accuracy)}));
    return params;
  };
  const std::vector<Tensor> reference = train_params(1);
  for (size_t threads : {2u, 8u}) {
    const std::vector<Tensor> got = train_params(threads);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectBitwiseEqual(reference[i], got[i], "trained parameter");
    }
  }
}

TEST(ParallelDeterminismTest, KernelsUnchangedWithObservabilityEnabled) {
  // Instrumentation sits on the hot paths (SpMM, GEMM, pool tasks); it
  // must never change numerics. Same kernels, obs off vs obs on, at
  // several thread counts, bitwise.
  ThreadCountGuard guard;
  Rng rng(29);
  Tensor dense_matrix = Tensor::Normal(409, 277, 0.0f, 1.0f, rng);
  for (size_t i = 0; i < dense_matrix.size(); ++i) {
    if (rng.Uniform() > 0.1) dense_matrix.data()[i] = 0.0f;
  }
  const CsrMatrix m = CsrMatrix::FromDense(dense_matrix);
  const Tensor x = Tensor::Normal(277, 33, 0.0f, 1.0f, rng);
  const Tensor w = Tensor::Normal(33, 33, 0.0f, 1.0f, rng);

  SetNumThreads(4);
  const Tensor spmm_ref = m.Multiply(x);
  const Tensor gemm_ref = spmm_ref.MatMul(w);

  obs::EnableTracing(1 << 12);
  obs::EnableMetrics();
  for (size_t threads : {1u, 2u, 8u}) {
    SetNumThreads(threads);
    ExpectBitwiseEqual(spmm_ref, m.Multiply(x), "SpMM with obs on");
    ExpectBitwiseEqual(gemm_ref, spmm_ref.MatMul(w), "GEMM with obs on");
  }
  obs::DisableTracing();
  obs::DisableMetrics();
  obs::ClearTrace();
}

TEST(ParallelTrialsTest, RepeatedExperimentMatchesSerial) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.25, 31);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 3;
  TrainOptions options;
  options.max_epochs = 12;
  options.patience = 12;
  options.seed = 4;
  SetNumThreads(1);
  ExperimentResult serial =
      RunRepeatedExperiment("gcn", data, config, options, 3);
  SetNumThreads(4);
  ExperimentResult parallel =
      RunRepeatedExperiment("gcn", data, config, options, 3);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i], parallel.runs[i]) << "trial " << i;
  }
  EXPECT_EQ(serial.test_accuracy.mean, parallel.test_accuracy.mean);
  EXPECT_EQ(serial.val_accuracy.mean, parallel.val_accuracy.mean);
  EXPECT_EQ(serial.failed_trials, parallel.failed_trials);
}

// -- Bugfix regressions ----------------------------------------------------

TEST(BceStableLossTest, SaturatedLogitsStayFinite) {
  // Pre-fix, |logit| >~ 17 pushed sigmoid to exactly 0/1 and log(p)
  // to NaN/-inf, spuriously tripping divergence recovery.
  const Tensor logits_val(2, 2, {50.0f, -50.0f, 1000.0f, -1000.0f});
  const Tensor targets(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
  ag::Variable logits = ag::MakeParameter(logits_val);
  ag::Variable loss = ag::BinaryCrossEntropyWithLogits(logits, targets);
  ASSERT_TRUE(loss->value().AllFinite());
  // Per-element stable losses: ~0, ~0, 1000, 1000 -> mean 500.
  EXPECT_NEAR(loss->value()(0, 0), 500.0f, 0.5f);
  ag::Backward(loss);
  const Tensor& grad = logits->grad();
  ASSERT_TRUE(grad.AllFinite());
  // d/dx = (sigmoid(x) - t) / n: saturated-correct entries ~0,
  // saturated-wrong entries +-1/4.
  EXPECT_NEAR(grad(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(grad(0, 1), 0.0f, 1e-6f);
  EXPECT_NEAR(grad(1, 0), 0.25f, 1e-6f);
  EXPECT_NEAR(grad(1, 1), -0.25f, 1e-6f);
}

TEST(BceStableLossTest, MatchesNaiveFormOnModerateLogits) {
  Rng rng(23);
  const Tensor logits_val = Tensor::Uniform(4, 5, -5.0f, 5.0f, rng);
  Tensor targets(4, 5);
  for (size_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  ag::Variable logits = ag::MakeParameter(logits_val);
  ag::Variable loss = ag::BinaryCrossEntropyWithLogits(logits, targets);
  double naive = 0.0;
  for (size_t i = 0; i < logits_val.size(); ++i) {
    const double p = 1.0 / (1.0 + std::exp(-logits_val.data()[i]));
    const double t = targets.data()[i];
    naive -= t * std::log(p) + (1.0 - t) * std::log(1.0 - p);
  }
  naive /= static_cast<double>(logits_val.size());
  EXPECT_NEAR(loss->value()(0, 0), static_cast<float>(naive), 1e-5f);
}

TEST(SpGemmRowCapTest, CancellingEntriesDoNotEvictTrueTopK) {
  // Row 0 of A hits column 0 of the product three times: +1, -1
  // (cancelling to exactly 0.0f mid-row), then +1. The old sentinel-zero
  // accumulator re-pushed column 0 into `touched`, inflating the count
  // toward row_cap and zeroing the real entry during eviction.
  const CsrMatrix a = CsrMatrix::FromTriplets(
      1, 3, {{0, 0, 1.0f}, {0, 1, -1.0f}, {0, 2, 1.0f}});
  const CsrMatrix b = CsrMatrix::FromTriplets(
      3, 6, {{0, 0, 1.0f}, {0, 5, 10.0f}, {1, 0, 1.0f}, {2, 0, 1.0f}});
  // Only two distinct columns are touched, so row_cap=2 must keep both.
  const CsrMatrix capped = a.Multiply(b, /*prune_tolerance=*/0.0f,
                                      /*row_cap=*/2);
  EXPECT_EQ(capped.nnz(), 2u);
  EXPECT_FLOAT_EQ(capped.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(capped.At(0, 5), 10.0f);
  // Uncapped: no duplicate triplets for the re-touched column.
  const CsrMatrix full = a.Multiply(b);
  EXPECT_EQ(full.nnz(), 2u);
  EXPECT_FLOAT_EQ(full.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(full.At(0, 5), 10.0f);
}

TEST(SpGemmRowCapTest, RowCapStillPrunesSmallestMagnitude) {
  // Sanity: the fix must not change legitimate row_cap pruning.
  const CsrMatrix a = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.0f}});
  const CsrMatrix b = CsrMatrix::FromTriplets(
      1, 4, {{0, 0, 5.0f}, {0, 1, -7.0f}, {0, 2, 1.0f}, {0, 3, 3.0f}});
  const CsrMatrix capped = a.Multiply(b, 0.0f, /*row_cap=*/2);
  EXPECT_EQ(capped.nnz(), 2u);
  EXPECT_FLOAT_EQ(capped.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(capped.At(0, 1), -7.0f);
}

}  // namespace
}  // namespace lasagne
