// Determinism suite for the parallel compute layer (docs/THREADING.md)
// plus regression tests for the two numerical bugfixes that rode along
// with it (saturated-logit BCE, SpGEMM row_cap with cancelling
// entries). The contract under test: every parallel kernel produces
// results bitwise-identical to its serial loop at 1, 2 and 8 threads.

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"
#include "data/registry.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/csr_matrix.h"
#include "tensor/tensor.h"
#include "train/experiment.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

// Restores the default thread count when a test exits, so tests stay
// order-independent.
class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": results differ across thread counts";
}

// Runs `fn` under each thread count and asserts every result is
// bitwise-identical to the 1-thread result.
template <typename Fn>
void ExpectSameAcrossThreadCounts(Fn fn, const char* what) {
  ThreadCountGuard guard;
  SetNumThreads(1);
  const Tensor reference = fn();
  for (size_t threads : {2u, 8u}) {
    SetNumThreads(threads);
    ExpectBitwiseEqual(reference, fn(), what);
  }
}

// -- Thread pool primitives ------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  ParallelFor(0, kN, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) counts[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadCountGuard guard;
  SetNumThreads(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int> outer_chunks{0};
  std::atomic<int> inner_chunks{0};
  ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    outer_chunks.fetch_add(1);
    EXPECT_TRUE(InParallelRegion());
    // The nested call must not re-enter the pool: one chunk, inline.
    ParallelFor(0, 100, 1, [&](size_t b, size_t e) {
      inner_chunks.fetch_add(1);
      EXPECT_EQ(b, 0u);
      EXPECT_EQ(e, 100u);
    });
    (void)begin;
    (void)end;
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_GT(outer_chunks.load(), 1);
  EXPECT_EQ(inner_chunks.load(), outer_chunks.load());
}

TEST(ThreadPoolTest, SetNumThreadsRoundTrips) {
  ThreadCountGuard guard;
  SetNumThreads(3);
  EXPECT_EQ(GetNumThreads(), 3u);
  SetNumThreads(0);
  EXPECT_GE(GetNumThreads(), 1u);
}

TEST(ThreadPoolTest, ParallelReduceIsThreadCountInvariant) {
  ThreadCountGuard guard;
  Rng rng(7);
  // Big enough for several grain-sized chunks.
  std::vector<double> values(100000);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  auto reduce = [&] {
    return ParallelReduce(0, values.size(), 1024,
                          [&](size_t begin, size_t end) {
                            double acc = 0.0;
                            for (size_t i = begin; i < end; ++i) {
                              acc += values[i];
                            }
                            return acc;
                          });
  };
  SetNumThreads(1);
  const double reference = reduce();
  for (size_t threads : {2u, 8u}) {
    SetNumThreads(threads);
    EXPECT_EQ(reduce(), reference) << threads << " threads";
  }
}

// -- Kernel determinism across thread counts -------------------------------

TEST(ParallelDeterminismTest, DenseMatMulVariants) {
  Rng rng(11);
  const Tensor a = Tensor::Normal(311, 70, 0.0f, 1.0f, rng);
  const Tensor b = Tensor::Normal(70, 53, 0.0f, 1.0f, rng);
  const Tensor c = Tensor::Normal(311, 53, 0.0f, 1.0f, rng);
  const Tensor d = Tensor::Normal(41, 70, 0.0f, 1.0f, rng);
  ExpectSameAcrossThreadCounts([&] { return a.MatMul(b); }, "MatMul");
  ExpectSameAcrossThreadCounts([&] { return a.TransposedMatMul(c); },
                               "TransposedMatMul");
  ExpectSameAcrossThreadCounts([&] { return a.MatMulTransposed(d); },
                               "MatMulTransposed");
}

TEST(ParallelDeterminismTest, ElementwiseAndReductions) {
  Rng rng(13);
  const Tensor a = Tensor::Normal(217, 401, 0.0f, 1.0f, rng);
  const Tensor b = Tensor::Normal(217, 401, 0.0f, 1.0f, rng);
  ExpectSameAcrossThreadCounts([&] { return a + b; }, "Add");
  ExpectSameAcrossThreadCounts([&] { return a * b; }, "Hadamard");
  ExpectSameAcrossThreadCounts(
      [&] { return a.Map([](float v) { return std::tanh(v); }); }, "Map");
  ExpectSameAcrossThreadCounts([&] { return a.Transpose(); }, "Transpose");
  ExpectSameAcrossThreadCounts([&] { return a.RowSum(); }, "RowSum");
  ThreadCountGuard guard;
  SetNumThreads(1);
  const float sum = a.Sum();
  const float sq = a.SquaredNorm();
  for (size_t threads : {2u, 8u}) {
    SetNumThreads(threads);
    EXPECT_EQ(a.Sum(), sum) << threads << " threads";
    EXPECT_EQ(a.SquaredNorm(), sq) << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, SparseMultiplyKernels) {
  Rng rng(17);
  Tensor dense_matrix = Tensor::Normal(509, 367, 0.0f, 1.0f, rng);
  // Sparsify to ~8% so rows have uneven nnz.
  for (size_t i = 0; i < dense_matrix.size(); ++i) {
    if (rng.Uniform() > 0.08) dense_matrix.data()[i] = 0.0f;
  }
  const CsrMatrix m = CsrMatrix::FromDense(dense_matrix);
  ASSERT_GT(m.nnz(), 0u);
  const Tensor x = Tensor::Normal(367, 61, 0.0f, 1.0f, rng);
  const Tensor y = Tensor::Normal(509, 61, 0.0f, 1.0f, rng);
  ExpectSameAcrossThreadCounts([&] { return m.Multiply(x); }, "SpMM");
  ExpectSameAcrossThreadCounts([&] { return m.TransposedMultiply(y); },
                               "TransposedSpMM");
}

TEST(ParallelDeterminismTest, SpmmMatchesDenseReference) {
  ThreadCountGuard guard;
  SetNumThreads(8);
  Rng rng(19);
  Tensor dense_matrix = Tensor::Normal(101, 83, 0.0f, 1.0f, rng);
  for (size_t i = 0; i < dense_matrix.size(); ++i) {
    if (i % 5 != 0) dense_matrix.data()[i] = 0.0f;
  }
  const CsrMatrix m = CsrMatrix::FromDense(dense_matrix);
  const Tensor x = Tensor::Normal(83, 37, 0.0f, 1.0f, rng);
  EXPECT_LT(m.Multiply(x).MaxAbsDiff(dense_matrix.MatMul(x)), 1e-4f);
  const Tensor y = Tensor::Normal(101, 37, 0.0f, 1.0f, rng);
  EXPECT_LT(m.TransposedMultiply(y).MaxAbsDiff(
                dense_matrix.Transpose().MatMul(y)),
            1e-4f);
}

TEST(ParallelDeterminismTest, FullTrainedRunBitwiseIdentical) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.3, 21);
  auto train_params = [&](size_t threads) {
    SetNumThreads(threads);
    ModelConfig config;
    config.depth = 3;
    config.hidden_dim = 16;
    config.dropout = 0.4f;
    config.seed = 5;
    std::unique_ptr<Model> model = MakeModel("gcn", data, config);
    TrainOptions options;
    options.max_epochs = 25;
    options.patience = 25;
    options.seed = 6;
    TrainResult result = TrainModel(*model, options);
    std::vector<Tensor> params;
    for (const ag::Variable& p : model->Parameters()) {
      params.push_back(p->value());
    }
    params.push_back(Tensor(1, 1, {static_cast<float>(
                                      result.test_accuracy)}));
    return params;
  };
  const std::vector<Tensor> reference = train_params(1);
  for (size_t threads : {2u, 8u}) {
    const std::vector<Tensor> got = train_params(threads);
    ASSERT_EQ(got.size(), reference.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ExpectBitwiseEqual(reference[i], got[i], "trained parameter");
    }
  }
}

TEST(ParallelDeterminismTest, KernelsUnchangedWithObservabilityEnabled) {
  // Instrumentation sits on the hot paths (SpMM, GEMM, pool tasks); it
  // must never change numerics. Same kernels, obs off vs obs on, at
  // several thread counts, bitwise.
  ThreadCountGuard guard;
  Rng rng(29);
  Tensor dense_matrix = Tensor::Normal(409, 277, 0.0f, 1.0f, rng);
  for (size_t i = 0; i < dense_matrix.size(); ++i) {
    if (rng.Uniform() > 0.1) dense_matrix.data()[i] = 0.0f;
  }
  const CsrMatrix m = CsrMatrix::FromDense(dense_matrix);
  const Tensor x = Tensor::Normal(277, 33, 0.0f, 1.0f, rng);
  const Tensor w = Tensor::Normal(33, 33, 0.0f, 1.0f, rng);

  SetNumThreads(4);
  const Tensor spmm_ref = m.Multiply(x);
  const Tensor gemm_ref = spmm_ref.MatMul(w);

  obs::EnableTracing(1 << 12);
  obs::EnableMetrics();
  for (size_t threads : {1u, 2u, 8u}) {
    SetNumThreads(threads);
    ExpectBitwiseEqual(spmm_ref, m.Multiply(x), "SpMM with obs on");
    ExpectBitwiseEqual(gemm_ref, spmm_ref.MatMul(w), "GEMM with obs on");
  }
  obs::DisableTracing();
  obs::DisableMetrics();
  obs::ClearTrace();
}

TEST(ParallelTrialsTest, RepeatedExperimentMatchesSerial) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.25, 31);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 3;
  TrainOptions options;
  options.max_epochs = 12;
  options.patience = 12;
  options.seed = 4;
  SetNumThreads(1);
  ExperimentResult serial =
      RunRepeatedExperiment("gcn", data, config, options, 3);
  SetNumThreads(4);
  ExperimentResult parallel =
      RunRepeatedExperiment("gcn", data, config, options, 3);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i], parallel.runs[i]) << "trial " << i;
  }
  EXPECT_EQ(serial.test_accuracy.mean, parallel.test_accuracy.mean);
  EXPECT_EQ(serial.val_accuracy.mean, parallel.val_accuracy.mean);
  EXPECT_EQ(serial.failed_trials, parallel.failed_trials);
}

// -- Blocked kernels vs naive references -----------------------------------
// The blocked SIMD engine (docs/KERNELS.md) must be bitwise-identical
// to the pre-blocking loops, reproduced verbatim below, on every
// shape — including shapes that don't divide the 16-wide column tile
// or the vector width — at every thread count.

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      const float a_ik = a(i, k);
      if (a_ik == 0.0f) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += a_ik * b(k, j);
      }
    }
  }
  return out;
}

Tensor NaiveTransposedMatMul(const Tensor& a, const Tensor& b) {
  Tensor out(a.cols(), b.cols());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t i = 0; i < a.cols(); ++i) {
      const float a_ri = a(r, i);
      if (a_ri == 0.0f) continue;
      for (size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += a_ri * b(r, j);
      }
    }
  }
  return out;
}

Tensor NaiveMatMulTransposed(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < b.rows(); ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(j, k);
      out(i, j) = acc;
    }
  }
  return out;
}

Tensor NaiveSpmm(const CsrMatrix& m, const Tensor& dense) {
  Tensor out(m.rows(), dense.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k) {
      const float v = m.values()[k];
      for (size_t j = 0; j < dense.cols(); ++j) {
        out(r, j) += v * dense(m.col_idx()[k], j);
      }
    }
  }
  return out;
}

Tensor NaiveTransposedSpmm(const CsrMatrix& m, const Tensor& dense) {
  Tensor out(m.cols(), dense.cols());
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k) {
      const float v = m.values()[k];
      for (size_t j = 0; j < dense.cols(); ++j) {
        out(m.col_idx()[k], j) += v * dense(r, j);
      }
    }
  }
  return out;
}

// Sprinkles exact zeros so the GEMM zero-skip path is exercised.
Tensor DenseWithZeros(size_t rows, size_t cols, Rng& rng) {
  Tensor t = Tensor::Normal(rows, cols, 0.0f, 1.0f, rng);
  for (size_t i = 0; i < t.size(); ++i) {
    if (rng.Uniform() < 0.2) t.data()[i] = 0.0f;
  }
  return t;
}

TEST(BlockedKernelTest, GemmVariantsMatchNaiveOnAwkwardShapes) {
  ThreadCountGuard guard;
  Rng rng(37);
  // (m, k, n), chosen to hit: degenerate 1x1, tiny odd, off-by-one
  // around the 16-wide tile and 8-wide vector, the aligned fast path,
  // tall-skinny and wide-short extremes.
  const size_t shapes[][3] = {{1, 1, 1},    {3, 2, 5},     {63, 17, 65},
                              {64, 64, 64}, {500, 3, 7},   {5, 129, 300},
                              {31, 33, 15}, {129, 65, 17}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    const Tensor a = DenseWithZeros(m, k, rng);
    const Tensor b = DenseWithZeros(k, n, rng);
    const Tensor c = DenseWithZeros(m, n, rng);
    const Tensor d = DenseWithZeros(n, k, rng);
    const Tensor nn_ref = NaiveMatMul(a, b);
    const Tensor tn_ref = NaiveTransposedMatMul(a, c);
    const Tensor nt_ref = NaiveMatMulTransposed(a, d);
    for (size_t threads : {1u, 2u, 8u}) {
      SetNumThreads(threads);
      ExpectBitwiseEqual(nn_ref, a.MatMul(b), "blocked MatMul vs naive");
      ExpectBitwiseEqual(tn_ref, a.TransposedMatMul(c),
                         "blocked TransposedMatMul vs naive");
      ExpectBitwiseEqual(nt_ref, a.MatMulTransposed(d),
                         "blocked MatMulTransposed vs naive");
    }
  }
}

TEST(BlockedKernelTest, SpmmVariantsMatchNaiveOnAwkwardWidths) {
  ThreadCountGuard guard;
  Rng rng(41);
  Tensor dense_matrix = Tensor::Normal(97, 71, 0.0f, 1.0f, rng);
  for (size_t i = 0; i < dense_matrix.size(); ++i) {
    if (rng.Uniform() > 0.1) dense_matrix.data()[i] = 0.0f;
  }
  const CsrMatrix m = CsrMatrix::FromDense(dense_matrix);
  ASSERT_GT(m.nnz(), 0u);
  // Widths around the 16-wide tile and the 8-wide vector, plus 1.
  for (size_t d : {1u, 5u, 8u, 15u, 16u, 17u, 33u, 64u}) {
    const Tensor x = Tensor::Normal(71, d, 0.0f, 1.0f, rng);
    const Tensor y = Tensor::Normal(97, d, 0.0f, 1.0f, rng);
    const Tensor spmm_ref = NaiveSpmm(m, x);
    const Tensor spmm_t_ref = NaiveTransposedSpmm(m, y);
    for (size_t threads : {1u, 2u, 8u}) {
      SetNumThreads(threads);
      ExpectBitwiseEqual(spmm_ref, m.Multiply(x), "blocked SpMM vs naive");
      ExpectBitwiseEqual(spmm_t_ref, m.TransposedMultiply(y),
                         "blocked TransposedSpMM vs naive");
    }
  }
}

TEST(BlockedKernelTest, BlockedKernelsUnchangedWithObservabilityEnabled) {
  ThreadCountGuard guard;
  Rng rng(43);
  const Tensor a = DenseWithZeros(63, 65, rng);
  const Tensor b = DenseWithZeros(65, 17, rng);
  SetNumThreads(4);
  const Tensor ref = a.MatMul(b);
  obs::EnableTracing(1 << 12);
  obs::EnableMetrics();
  for (size_t threads : {1u, 2u, 8u}) {
    SetNumThreads(threads);
    ExpectBitwiseEqual(ref, a.MatMul(b), "blocked GEMM with obs on");
  }
  obs::DisableTracing();
  obs::DisableMetrics();
  obs::ClearTrace();
}

// -- Fused ops vs unfused formulations -------------------------------------

TEST(FusedOpTest, ReluMatchesUnfusedFormulation) {
  ThreadCountGuard guard;
  Rng rng(47);
  // Mix of negatives, exact zeros and positives across an odd shape.
  Tensor x_val = Tensor::Normal(63, 65, 0.0f, 1.0f, rng);
  for (size_t i = 0; i < x_val.size(); i += 7) x_val.data()[i] = 0.0f;
  const Tensor y_ref =
      x_val.Map([](float v) { return v > 0.0f ? v : 0.0f; });
  const Tensor g = Tensor::Normal(63, 65, 0.0f, 1.0f, rng);
  Tensor dx_ref = g;
  for (size_t i = 0; i < dx_ref.size(); ++i) {
    if (x_val.data()[i] <= 0.0f) dx_ref.data()[i] = 0.0f;
  }
  for (size_t threads : {1u, 2u, 8u}) {
    SetNumThreads(threads);
    ag::Variable x = ag::MakeParameter(x_val);
    ag::Variable y = ag::Relu(x);
    ExpectBitwiseEqual(y_ref, y->value(), "fused Relu forward");
    ag::BackwardWithGrad(y, g);
    ExpectBitwiseEqual(dx_ref, x->grad(), "fused Relu backward");
  }
}

TEST(FusedOpTest, LeakyReluMatchesUnfusedFormulation) {
  ThreadCountGuard guard;
  Rng rng(53);
  const float alpha = 0.2f;
  const Tensor x_val = Tensor::Normal(31, 33, 0.0f, 1.0f, rng);
  const Tensor y_ref =
      x_val.Map([alpha](float v) { return v >= 0.0f ? v : alpha * v; });
  const Tensor g = Tensor::Normal(31, 33, 0.0f, 1.0f, rng);
  Tensor dx_ref = g;
  for (size_t i = 0; i < dx_ref.size(); ++i) {
    if (x_val.data()[i] < 0.0f) dx_ref.data()[i] *= alpha;
  }
  for (size_t threads : {1u, 2u, 8u}) {
    SetNumThreads(threads);
    ag::Variable x = ag::MakeParameter(x_val);
    ag::Variable y = ag::LeakyRelu(x, alpha);
    ExpectBitwiseEqual(y_ref, y->value(), "fused LeakyRelu forward");
    ag::BackwardWithGrad(y, g);
    ExpectBitwiseEqual(dx_ref, x->grad(), "fused LeakyRelu backward");
  }
}

TEST(FusedOpTest, AddRowVectorMatchesOnesMatMulFormulation) {
  ThreadCountGuard guard;
  Rng rng(59);
  const Tensor x_val = Tensor::Normal(63, 33, 0.0f, 1.0f, rng);
  const Tensor bias_val = Tensor::Normal(1, 33, 0.0f, 1.0f, rng);
  const Tensor g = Tensor::Normal(63, 33, 0.0f, 1.0f, rng);
  // The unfused path Linear used to build: x + ones(N,1) @ bias(1,D).
  ag::Variable x_ref = ag::MakeParameter(x_val);
  ag::Variable bias_ref = ag::MakeParameter(bias_val);
  ag::Variable ones = ag::MakeConstant(Tensor::Ones(x_val.rows(), 1));
  ag::Variable y_ref = ag::Add(x_ref, ag::MatMul(ones, bias_ref));
  ag::BackwardWithGrad(y_ref, g);
  for (size_t threads : {1u, 2u, 8u}) {
    SetNumThreads(threads);
    ag::Variable x = ag::MakeParameter(x_val);
    ag::Variable bias = ag::MakeParameter(bias_val);
    ag::Variable y = ag::AddRowVector(x, bias);
    ExpectBitwiseEqual(y_ref->value(), y->value(), "AddRowVector forward");
    ag::BackwardWithGrad(y, g);
    ExpectBitwiseEqual(x_ref->grad(), x->grad(), "AddRowVector dx");
    ExpectBitwiseEqual(bias_ref->grad(), bias->grad(), "AddRowVector dbias");
  }
}

TEST(FusedOpTest, AdamUpdateKernelMatchesScalarLoop) {
  Rng rng(61);
  const size_t n = 63 * 65;  // not a multiple of any vector width
  Tensor value = Tensor::Normal(63, 65, 0.0f, 1.0f, rng);
  const Tensor grad = Tensor::Normal(63, 65, 0.0f, 1.0f, rng);
  Tensor m = Tensor::Normal(63, 65, 0.0f, 0.1f, rng);
  Tensor v = m.Map([](float x) { return x * x; });
  const float lr = 0.01f, wd = 5e-4f, beta1 = 0.9f, beta2 = 0.999f;
  const float bias1 = 1.0f - beta1, bias2 = 1.0f - beta2;
  const float eps = 1e-8f;
  // Scalar reference: the exact pre-fusion expression sequence.
  Tensor value_ref = value, m_ref = m, v_ref = v;
  for (size_t j = 0; j < n; ++j) {
    float g = grad.data()[j] + wd * value_ref.data()[j];
    m_ref.data()[j] = beta1 * m_ref.data()[j] + (1.0f - beta1) * g;
    v_ref.data()[j] = beta2 * v_ref.data()[j] + (1.0f - beta2) * g * g;
    const float m_hat = m_ref.data()[j] / bias1;
    const float v_hat = v_ref.data()[j] / bias2;
    value_ref.data()[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
  kernels::AdamUpdate(value.data(), grad.data(), m.data(), v.data(), n, lr,
                      wd, beta1, beta2, bias1, bias2, eps);
  ExpectBitwiseEqual(value_ref, value, "fused Adam value");
  ExpectBitwiseEqual(m_ref, m, "fused Adam m");
  ExpectBitwiseEqual(v_ref, v, "fused Adam v");
}

// -- Bugfix regressions ----------------------------------------------------

TEST(BceStableLossTest, SaturatedLogitsStayFinite) {
  // Pre-fix, |logit| >~ 17 pushed sigmoid to exactly 0/1 and log(p)
  // to NaN/-inf, spuriously tripping divergence recovery.
  const Tensor logits_val(2, 2, {50.0f, -50.0f, 1000.0f, -1000.0f});
  const Tensor targets(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
  ag::Variable logits = ag::MakeParameter(logits_val);
  ag::Variable loss = ag::BinaryCrossEntropyWithLogits(logits, targets);
  ASSERT_TRUE(loss->value().AllFinite());
  // Per-element stable losses: ~0, ~0, 1000, 1000 -> mean 500.
  EXPECT_NEAR(loss->value()(0, 0), 500.0f, 0.5f);
  ag::Backward(loss);
  const Tensor& grad = logits->grad();
  ASSERT_TRUE(grad.AllFinite());
  // d/dx = (sigmoid(x) - t) / n: saturated-correct entries ~0,
  // saturated-wrong entries +-1/4.
  EXPECT_NEAR(grad(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(grad(0, 1), 0.0f, 1e-6f);
  EXPECT_NEAR(grad(1, 0), 0.25f, 1e-6f);
  EXPECT_NEAR(grad(1, 1), -0.25f, 1e-6f);
}

TEST(BceStableLossTest, MatchesNaiveFormOnModerateLogits) {
  Rng rng(23);
  const Tensor logits_val = Tensor::Uniform(4, 5, -5.0f, 5.0f, rng);
  Tensor targets(4, 5);
  for (size_t i = 0; i < targets.size(); ++i) {
    targets.data()[i] = rng.Bernoulli(0.5) ? 1.0f : 0.0f;
  }
  ag::Variable logits = ag::MakeParameter(logits_val);
  ag::Variable loss = ag::BinaryCrossEntropyWithLogits(logits, targets);
  double naive = 0.0;
  for (size_t i = 0; i < logits_val.size(); ++i) {
    const double p = 1.0 / (1.0 + std::exp(-logits_val.data()[i]));
    const double t = targets.data()[i];
    naive -= t * std::log(p) + (1.0 - t) * std::log(1.0 - p);
  }
  naive /= static_cast<double>(logits_val.size());
  EXPECT_NEAR(loss->value()(0, 0), static_cast<float>(naive), 1e-5f);
}

TEST(SpGemmRowCapTest, CancellingEntriesDoNotEvictTrueTopK) {
  // Row 0 of A hits column 0 of the product three times: +1, -1
  // (cancelling to exactly 0.0f mid-row), then +1. The old sentinel-zero
  // accumulator re-pushed column 0 into `touched`, inflating the count
  // toward row_cap and zeroing the real entry during eviction.
  const CsrMatrix a = CsrMatrix::FromTriplets(
      1, 3, {{0, 0, 1.0f}, {0, 1, -1.0f}, {0, 2, 1.0f}});
  const CsrMatrix b = CsrMatrix::FromTriplets(
      3, 6, {{0, 0, 1.0f}, {0, 5, 10.0f}, {1, 0, 1.0f}, {2, 0, 1.0f}});
  // Only two distinct columns are touched, so row_cap=2 must keep both.
  const CsrMatrix capped = a.Multiply(b, /*prune_tolerance=*/0.0f,
                                      /*row_cap=*/2);
  EXPECT_EQ(capped.nnz(), 2u);
  EXPECT_FLOAT_EQ(capped.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(capped.At(0, 5), 10.0f);
  // Uncapped: no duplicate triplets for the re-touched column.
  const CsrMatrix full = a.Multiply(b);
  EXPECT_EQ(full.nnz(), 2u);
  EXPECT_FLOAT_EQ(full.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(full.At(0, 5), 10.0f);
}

TEST(SpGemmRowCapTest, RowCapStillPrunesSmallestMagnitude) {
  // Sanity: the fix must not change legitimate row_cap pruning.
  const CsrMatrix a = CsrMatrix::FromTriplets(1, 1, {{0, 0, 1.0f}});
  const CsrMatrix b = CsrMatrix::FromTriplets(
      1, 4, {{0, 0, 5.0f}, {0, 1, -7.0f}, {0, 2, 1.0f}, {0, 3, 3.0f}});
  const CsrMatrix capped = a.Multiply(b, 0.0f, /*row_cap=*/2);
  EXPECT_EQ(capped.nnz(), 2u);
  EXPECT_FLOAT_EQ(capped.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(capped.At(0, 1), -7.0f);
}

}  // namespace
}  // namespace lasagne
