#include "common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace lasagne {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = DataLossError("checksum mismatch");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_EQ(status.message(), "checksum mismatch");
  EXPECT_EQ(status.ToString(), "DATA_LOSS: checksum mismatch");
}

TEST(StatusTest, HelperConstructorsMapToCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, WithContextPrefixesMessageKeepsCode) {
  Status status = IOError("disk full").WithContext("saving ckpt");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
  EXPECT_EQ(status.message(), "saving ckpt: disk full");
  // Context on OK is a no-op.
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = NotFoundError("no such thing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

Status FailsWhen(bool fail) {
  if (fail) return InvalidArgumentError("asked to fail");
  return Status::OK();
}

Status Propagates(bool fail) {
  LASAGNE_RETURN_IF_ERROR(FailsWhen(fail));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates(false).ok());
  Status status = Propagates(true);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

StatusOr<int> MaybeInt(bool fail) {
  if (fail) return DataLossError("gone");
  return 7;
}

Status UsesAssignOrReturn(bool fail, int* out) {
  LASAGNE_ASSIGN_OR_RETURN(int v, MaybeInt(fail));
  *out = v + 1;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(false, &out).ok());
  EXPECT_EQ(out, 8);
  EXPECT_EQ(UsesAssignOrReturn(true, &out).code(), StatusCode::kDataLoss);
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> result = InternalError("boom");
  EXPECT_DEATH((void)result.value(), "StatusOr::value on error");
}

}  // namespace
}  // namespace lasagne
