// Forward-only inference path: NoGradGuard tape suppression, bitwise
// parity between Model::Predict and the tape-building Forward, and the
// pooled batched serving driver (infer::InferenceSession).
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/inference.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "infer/serving.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "tensor/rng.h"

// The pool intentionally bypasses its cache under AddressSanitizer so
// use-after-free stays visible; reuse/hit assertions only hold in
// normal builds.
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_CACHED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_CACHED 0
#endif
#endif
#ifndef LASAGNE_POOL_CACHED
#define LASAGNE_POOL_CACHED 1
#endif

namespace lasagne {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": inference-mode values differ from the tape-building "
                 "forward";
}

ModelConfig SmallConfig(uint64_t seed = 3) {
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.4f;
  config.seed = seed;
  return config;
}

// -- NoGradGuard / value-only nodes ----------------------------------------

TEST(InferenceModeTest, GuardTogglesAndNests) {
  EXPECT_FALSE(ag::InferenceModeEnabled());
  {
    ag::NoGradGuard outer;
    EXPECT_TRUE(ag::InferenceModeEnabled());
    {
      ag::NoGradGuard inner;
      EXPECT_TRUE(ag::InferenceModeEnabled());
    }
    EXPECT_TRUE(ag::InferenceModeEnabled());
  }
  EXPECT_FALSE(ag::InferenceModeEnabled());
}

TEST(InferenceModeTest, OpsUnderGuardBuildValueOnlyNodes) {
  Rng rng(1);
  ag::Variable w = ag::MakeParameter(Tensor::Normal(4, 4, 0.0f, 1.0f, rng));
  ag::Variable x = ag::MakeConstant(Tensor::Normal(4, 4, 0.0f, 1.0f, rng));

  ag::Variable tape = ag::Relu(ag::MatMul(x, w));
  EXPECT_TRUE(tape->requires_grad());
  EXPECT_TRUE(tape->grad_enabled());
  EXPECT_FALSE(tape->parents().empty());

  ag::NoGradGuard guard;
  ag::Variable value_only = ag::Relu(ag::MatMul(x, w));
  EXPECT_FALSE(value_only->requires_grad());
  EXPECT_FALSE(value_only->grad_enabled());
  EXPECT_TRUE(value_only->parents().empty());
  ExpectBitwiseEqual(tape->value(), value_only->value(), "relu(x @ w)");
}

TEST(InferenceModeTest, TapeStatsStayZeroUnderGuard) {
  Rng rng(2);
  ag::Variable w = ag::MakeParameter(Tensor::Normal(8, 8, 0.0f, 1.0f, rng));
  ag::Variable x = ag::MakeConstant(Tensor::Normal(8, 8, 0.0f, 1.0f, rng));
  auto chain = [&] {
    return ag::Sum(ag::Relu(ag::MatMul(x, ag::Add(w, w))));
  };

  ag::ResetTapeStats();
  {
    ag::NoGradGuard guard;
    (void)chain();
  }
  ag::TapeStats inference = ag::GetTapeStats();
  EXPECT_EQ(inference.nodes_created, 0u);
  EXPECT_EQ(inference.closures_retained, 0u);
  EXPECT_EQ(inference.parent_links, 0u);

  ag::ResetTapeStats();
  (void)chain();
  ag::TapeStats training = ag::GetTapeStats();
  EXPECT_GT(training.nodes_created, 0u);
  EXPECT_GT(training.closures_retained, 0u);
  EXPECT_GT(training.parent_links, 0u);
}

TEST(InferenceModeTest, BackwardInsideGuardAborts) {
  Rng rng(3);
  ag::Variable w = ag::MakeParameter(Tensor::Normal(2, 2, 0.0f, 1.0f, rng));
  ag::Variable loss = ag::Sum(w);
  ag::NoGradGuard guard;
  EXPECT_DEATH(ag::Backward(loss), "NoGradGuard");
}

TEST(InferenceModeTest, BackwardOnValueOnlyNodeAborts) {
  Rng rng(4);
  ag::Variable w = ag::MakeParameter(Tensor::Normal(2, 2, 0.0f, 1.0f, rng));
  ag::Variable loss;
  {
    ag::NoGradGuard guard;
    loss = ag::Sum(w);
  }
  EXPECT_DEATH(ag::Backward(loss), "value-only");
}

// -- Model::Predict bitwise parity -----------------------------------------

TEST(InferenceTest, PredictMatchesForwardBitwiseAcrossModelsAndThreads) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.3, 17);
  // One representative per architecture family: plain spectral conv,
  // attention (edge ops), propagation, and the paper's node-aware
  // multi-layer model with GC-FM units.
  const std::vector<std::string> names = {"gcn", "gat", "appnp",
                                          "lasagne-weighted"};
  for (const std::string& name : names) {
    std::unique_ptr<Model> model = MakeModel(name, data, SmallConfig());
    for (size_t threads : {1u, 2u, 8u}) {
      SetNumThreads(threads);
      Rng fwd_rng(9);
      nn::ForwardContext fwd_ctx{/*training=*/false, &fwd_rng};
      Tensor reference = model->Forward(fwd_ctx)->value();

      Rng rng(9);
      nn::ForwardContext ctx{/*training=*/false, &rng};
      ag::ResetTapeStats();
      Tensor predicted = model->Predict(ctx);
      ag::TapeStats stats = ag::GetTapeStats();
      EXPECT_EQ(stats.nodes_created, 0u) << name;
      EXPECT_EQ(stats.closures_retained, 0u) << name;
      EXPECT_EQ(stats.parent_links, 0u) << name;
      ExpectBitwiseEqual(reference, predicted,
                         name + " @ " + std::to_string(threads) +
                             " threads");
    }
  }
}

TEST(InferenceTest, PredictUnaffectedByObservability) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.25, 19);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  SetNumThreads(2);

  obs::DisableMetrics();
  Rng rng_plain(5);
  nn::ForwardContext plain_ctx{/*training=*/false, &rng_plain};
  Tensor plain = model->Predict(plain_ctx);

  obs::EnableMetrics();
  Rng rng_obs(5);
  nn::ForwardContext obs_ctx{/*training=*/false, &rng_obs};
  Tensor instrumented = model->Predict(obs_ctx);
  obs::DisableMetrics();

  ExpectBitwiseEqual(plain, instrumented, "predict with metrics enabled");
}

// -- InferenceSession ------------------------------------------------------

TEST(InferenceServingTest, ServeBatchGathersForwardRows) {
  Dataset data = LoadDataset("cora", 0.25, 23);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());

  Rng rng(7);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  Tensor full = model->Forward(ctx)->value();

  infer::InferenceSession session(*model);
  const std::vector<uint32_t> batch = {5, 0, 5, 120};  // duplicates ok
  StatusOr<Tensor> result = session.ServeBatch(batch);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Tensor& out = result.value();
  ASSERT_EQ(out.rows(), batch.size());
  ASSERT_EQ(out.cols(), full.cols());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(out.RowPtr(i), full.RowPtr(batch[i]),
                             full.cols() * sizeof(float)))
        << "row " << i;
  }
}

TEST(InferenceServingTest, InvalidBatchesAreRejected) {
  Dataset data = LoadDataset("cora", 0.15, 29);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  infer::InferenceSession session(*model);

  StatusOr<Tensor> empty = session.ServeBatch({});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  const uint32_t out_of_range =
      static_cast<uint32_t>(model->data().num_nodes());
  StatusOr<Tensor> bad = session.ServeBatch({0, out_of_range});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Failed requests are not counted.
  EXPECT_EQ(session.stats().requests, 0u);
}

TEST(InferenceServingTest, SoftmaxOutputsAreRowDistributions) {
  Dataset data = LoadDataset("cora", 0.15, 31);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  infer::ServeOptions options;
  options.softmax_outputs = true;
  infer::InferenceSession session(*model, options);
  StatusOr<Tensor> result = session.ServeBatch({0, 1, 2});
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < result.value().rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < result.value().cols(); ++j) {
      const float p = result.value()(i, j);
      EXPECT_GE(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(InferenceServingTest, StatsAccumulateAndReset) {
  Dataset data = LoadDataset("cora", 0.15, 37);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  infer::InferenceSession session(*model);

  ASSERT_TRUE(session.ServeBatch({0, 1}).ok());
  ASSERT_TRUE(session.ServeBatch({2}).ok());
  const infer::ServeStats& stats = session.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.nodes_served, 3u);
  EXPECT_EQ(stats.latency_reservoir.size(), 2u);
  EXPECT_GT(stats.total_latency_ms, 0.0);
  EXPECT_GT(stats.MeanLatencyMs(), 0.0);
  EXPECT_GT(stats.Qps(), 0.0);
  // p0 <= p50 <= p100, and the extremes bracket every sample.
  const double p0 = stats.LatencyPercentileMs(0.0);
  const double p50 = stats.LatencyPercentileMs(0.5);
  const double p100 = stats.LatencyPercentileMs(1.0);
  EXPECT_LE(p0, p50);
  EXPECT_LE(p50, p100);
  EXPECT_EQ(p0, *std::min_element(stats.latency_reservoir.begin(),
                                  stats.latency_reservoir.end()));
  EXPECT_EQ(p100, *std::max_element(stats.latency_reservoir.begin(),
                                    stats.latency_reservoir.end()));

  session.ResetStats();
  EXPECT_EQ(session.stats().requests, 0u);
  EXPECT_EQ(session.stats().latency_reservoir.size(), 0u);
}

TEST(InferenceServingTest, ServeAllMatchesFullForward) {
  Dataset data = LoadDataset("cora", 0.15, 41);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  Rng rng(11);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  Tensor full = model->Forward(ctx)->value();
  infer::InferenceSession session(*model);
  ExpectBitwiseEqual(full, session.ServeAll(), "ServeAll");
}

#if LASAGNE_POOL_CACHED

TEST(InferenceServingTest, WarmRequestPoolMissesCollapse) {
  // The serving analogue of the warm-epoch pool behavior: once the
  // first request has populated the freelists, steady-state requests
  // run (almost) miss-free. "Cold" is measured as N requests with the
  // pool trimmed before each one — what serving would pay with no
  // cross-request reuse. Note even a trimmed request self-serves most
  // allocations (inference-mode nodes free their buffers mid-request),
  // so per-request cold misses are small; aggregating over N requests
  // is what makes the >= 10x contrast meaningful.
  constexpr int kRequests = 8;
  Dataset data = LoadDataset("cora", 0.3, 43);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  infer::InferenceSession session(*model);
  BufferPool& pool = BufferPool::Global();

  ASSERT_TRUE(session.ServeBatch({0, 1, 2, 3}).ok());  // prime freelists
  session.ResetStats();
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(session.ServeBatch({0, 1, 2, 3}).ok());
  }
  const uint64_t warm_misses = session.stats().pool_misses;
  const uint64_t warm_hits = session.stats().pool_hits;

  session.ResetStats();
  for (int i = 0; i < kRequests; ++i) {
    pool.Trim();  // empty every freelist -> every request starts cold
    ASSERT_TRUE(session.ServeBatch({0, 1, 2, 3}).ok());
  }
  const uint64_t cold_misses = session.stats().pool_misses;

  EXPECT_GT(warm_hits, 0u);
  // N warm requests together stay >= 10x below N cold requests.
  EXPECT_GE(cold_misses, 10 * std::max<uint64_t>(warm_misses, 1));
}

TEST(InferenceServingTest, ConcurrentPoolTrafficDoesNotContaminateStats) {
  // Regression test for cross-thread pool-delta contamination: session
  // stats used to be computed from the *global* pool counters, so a
  // concurrent thread's allocation storm landed in whatever request
  // happened to be in flight. With per-thread counters a warm session
  // reports zero misses no matter how noisy its neighbors are.
  Dataset data = LoadDataset("cora", 0.3, 47);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  infer::InferenceSession session(*model);
  BufferPool& pool = BufferPool::Global();

  ASSERT_TRUE(session.ServeBatch({0, 1, 2, 3}).ok());  // compile + warm
  ASSERT_TRUE(session.ServeBatch({0, 1, 2, 3}).ok());
  session.ResetStats();

  // The noisy thread provokes real misses by growing the number of
  // simultaneously-held buffers of one bucket each round (one miss per
  // round once the freelist is exhausted). The bucket (16384 floats)
  // is one the serving path never touches, so the noise cannot eat the
  // session's own warmed freelists.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> noise_misses{0};
  std::thread noisy([&] {
    const BufferPool::ThreadStats start = BufferPool::GetThreadStats();
    std::vector<float*> held;
    size_t batch = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (size_t i = 0; i < batch; ++i) held.push_back(pool.Acquire(16384));
      for (float* p : held) pool.Release(p, 16384);
      held.clear();
      if (batch < 64) ++batch;
    }
    noise_misses.store(BufferPool::GetThreadStats().misses - start.misses);
  });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(session.ServeBatch({0, 1, 2, 3}).ok());
  }
  stop.store(true);
  noisy.join();

  EXPECT_GT(noise_misses.load(), 0u) << "noise thread generated no misses";
  EXPECT_EQ(session.stats().pool_misses, 0u)
      << "another thread's misses were attributed to this session";
  EXPECT_GT(session.stats().pool_hits, 0u);
}

#endif  // LASAGNE_POOL_CACHED

}  // namespace
}  // namespace lasagne
