#include "metrics/mutual_info.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace lasagne {
namespace {

TEST(KMeansTest, SeparatesObviousClusters) {
  Rng rng(1);
  Tensor points(40, 2);
  for (size_t i = 0; i < 20; ++i) {
    points(i, 0) = 10.0f + static_cast<float>(rng.Normal(0, 0.2));
    points(i, 1) = 10.0f + static_cast<float>(rng.Normal(0, 0.2));
    points(i + 20, 0) = -10.0f + static_cast<float>(rng.Normal(0, 0.2));
    points(i + 20, 1) = -10.0f + static_cast<float>(rng.Normal(0, 0.2));
  }
  auto assign = KMeansCluster(points, 2, 20, rng);
  for (size_t i = 1; i < 20; ++i) EXPECT_EQ(assign[i], assign[0]);
  for (size_t i = 21; i < 40; ++i) EXPECT_EQ(assign[i], assign[20]);
  EXPECT_NE(assign[0], assign[20]);
}

TEST(KMeansTest, KLargerThanNClamps) {
  Rng rng(2);
  Tensor points = Tensor::Normal(3, 2, 0.0f, 1.0f, rng);
  auto assign = KMeansCluster(points, 10, 5, rng);
  EXPECT_EQ(assign.size(), 3u);
  for (uint32_t a : assign) EXPECT_LT(a, 3u);
}

TEST(KMeansTest, EmptyClusterReseedsFromFarthestPoint) {
  // Deterministic scenario (found by seed search) where Lloyd iteration
  // strands one of the four k-means++ centroids: after the first
  // centroid update every point defects to another cluster. The
  // pre-fix code left the stranded centroid at the origin (the
  // SetZero() residue), silently returning only three populated
  // clusters with (-2.54, 2.19) folded into the cluster of
  // (2.57, 1.54) / (1.70, 0.54). Reseeding from the farthest point
  // must revive the empty cluster instead.
  const float kPts[7][2] = {
      {3.87943149f, -2.68116093f}, {4.25574923f, -3.84387279f},
      {2.56921554f, 1.53694904f},  {-2.53733277f, 2.19059634f},
      {1.6975944f, 0.538806856f},  {-1.60887933f, -2.54599404f},
      {-2.43461037f, -4.11840153f}};
  Tensor points(7, 2);
  for (size_t i = 0; i < 7; ++i) {
    points(i, 0) = kPts[i][0];
    points(i, 1) = kPts[i][1];
  }
  Rng rng(54);
  auto assign = KMeansCluster(points, 4, 50, rng);
  const std::vector<uint32_t> expected = {1, 1, 2, 0, 2, 3, 3};
  EXPECT_EQ(assign, expected);
  // Every requested cluster is populated; the pre-fix result used
  // only {1, 2, 3}.
  std::set<uint32_t> ids(assign.begin(), assign.end());
  EXPECT_EQ(ids.size(), 4u);
}

TEST(DiscreteMiTest, EntropyOfUniform) {
  std::vector<uint32_t> a = {0, 1, 2, 3, 0, 1, 2, 3};
  EXPECT_NEAR(DiscreteEntropy(a, 4), std::log(4.0), 1e-9);
}

TEST(DiscreteMiTest, SelfMiEqualsEntropy) {
  std::vector<uint32_t> a = {0, 0, 1, 1, 2, 2, 2, 0};
  EXPECT_NEAR(DiscreteMutualInformation(a, a, 3, 3), DiscreteEntropy(a, 3),
              1e-9);
}

TEST(DiscreteMiTest, IndependentVariablesHaveZeroMi) {
  // a alternates slow, b alternates fast -> independent on this support.
  std::vector<uint32_t> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back((i / 2) % 2);
    b.push_back(i % 2);
  }
  EXPECT_NEAR(DiscreteMutualInformation(a, b, 2, 2), 0.0, 1e-9);
}

TEST(DiscreteMiTest, DataProcessingInequality) {
  // c = f(b) cannot have more information about a than b.
  Rng rng(3);
  std::vector<uint32_t> a, b, c;
  for (int i = 0; i < 500; ++i) {
    uint32_t ai = static_cast<uint32_t>(rng.UniformInt(4));
    uint32_t bi = rng.Bernoulli(0.8) ? ai : static_cast<uint32_t>(
                                               rng.UniformInt(4));
    a.push_back(ai);
    b.push_back(bi);
    c.push_back(bi / 2);  // deterministic coarsening of b
  }
  const double mi_ab = DiscreteMutualInformation(a, b, 4, 4);
  const double mi_ac = DiscreteMutualInformation(a, c, 4, 2);
  EXPECT_LE(mi_ac, mi_ab + 1e-9);
}

TEST(RepresentationMiTest, IdentityBeatsNoise) {
  Rng rng(4);
  Tensor x = Tensor::Normal(300, 8, 0.0f, 1.0f, rng);
  Tensor noise = Tensor::Normal(300, 8, 0.0f, 1.0f, rng);
  Rng rng_a(5), rng_b(5);
  const double mi_self = RepresentationMutualInformation(x, x, 8, rng_a);
  const double mi_noise =
      RepresentationMutualInformation(x, noise, 8, rng_b);
  EXPECT_GT(mi_self, mi_noise + 0.5);
  EXPECT_LT(mi_noise, 0.5);
}

TEST(RepresentationMiTest, DegradesWithNoiseLevel) {
  Rng rng(6);
  Tensor x = Tensor::Normal(300, 8, 0.0f, 1.0f, rng);
  auto corrupted = [&](float noise_level) {
    Rng noise_rng(7);
    Tensor h = x;
    for (size_t i = 0; i < h.size(); ++i) {
      h.data()[i] += noise_level *
                     static_cast<float>(noise_rng.Normal(0.0, 1.0));
    }
    Rng mi_rng(8);
    return RepresentationMutualInformation(x, h, 8, mi_rng);
  };
  const double mi_low = corrupted(0.1f);
  const double mi_high = corrupted(5.0f);
  EXPECT_GT(mi_low, mi_high);
}

TEST(PcaTest, RecoversDominantDirection) {
  Rng rng(9);
  // Points along (1, 1) with small orthogonal noise.
  Tensor x(200, 2);
  for (size_t i = 0; i < 200; ++i) {
    const float t = static_cast<float>(rng.Normal(0, 5.0));
    const float noise = static_cast<float>(rng.Normal(0, 0.1));
    x(i, 0) = t + noise;
    x(i, 1) = t - noise;
  }
  Tensor projected = PcaProject(x, 1, 50, rng);
  // Variance captured along PC1 should be ~ all of it.
  double var_proj = 0.0, var_total = 0.0;
  for (size_t i = 0; i < 200; ++i) {
    var_proj += projected(i, 0) * projected(i, 0);
    var_total += x(i, 0) * x(i, 0) + x(i, 1) * x(i, 1);
  }
  EXPECT_GT(var_proj / var_total, 0.95);
}

TEST(BinnedMiTest, MonotoneRelationDetected) {
  std::vector<float> a, b, noise;
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    float v = static_cast<float>(rng.Normal(0, 1));
    a.push_back(v);
    b.push_back(v * v);  // deterministic nonlinear function
    noise.push_back(static_cast<float>(rng.Normal(0, 1)));
  }
  EXPECT_GT(BinnedMutualInformation(a, b, 10),
            BinnedMutualInformation(a, noise, 10) + 0.3);
}

TEST(CorrelationTest, PearsonOnLinearData) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(a, b), 1.0, 1e-9);
  std::vector<double> c = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(a, c), -1.0, 1e-9);
}

TEST(CorrelationTest, SpearmanHandlesMonotoneNonlinear) {
  std::vector<double> a = {1, 2, 3, 4, 5};
  std::vector<double> b = {1, 8, 27, 64, 125};  // monotone, nonlinear
  EXPECT_NEAR(SpearmanCorrelation(a, b), 1.0, 1e-9);
}

TEST(MadTest, IdenticalRowsZeroOppositeTwo) {
  Tensor x(2, 3, {1, 2, 3, -1, -2, -3});
  EXPECT_NEAR(MeanAverageDistance(x, {{0, 0}}), 0.0, 1e-6);
  EXPECT_NEAR(MeanAverageDistance(x, {{0, 1}}), 2.0, 1e-5);
}

}  // namespace
}  // namespace lasagne
