// Parameterized property sweeps: invariants that must hold across the
// whole configuration space (depths x aggregators x bases, random CSR
// shapes, arbitrary graph shapes).

#include <tuple>

#include <gtest/gtest.h>

#include "core/lasagne_model.h"
#include "data/registry.h"
#include "graph/algorithms.h"
#include "test_util.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

// --- Lasagne depth x aggregator sweep ---------------------------------------

class LasagneSweepTest
    : public ::testing::TestWithParam<std::tuple<AggregatorKind, size_t>> {
};

TEST_P(LasagneSweepTest, ForwardFiniteGradsFlowLossDrops) {
  auto [kind, depth] = GetParam();
  static const Dataset& data = *new Dataset(LoadDataset("cora", 0.2, 31));
  LasagneConfig config;
  config.aggregator = kind;
  config.depth = depth;
  config.hidden_dim = 8;
  config.dropout = 0.0f;
  config.fm_rank = 2;
  config.seed = 33;
  LasagneModel model(data, config);
  EXPECT_EQ(model.hidden_states().size(), 0u);

  Rng rng(35);
  nn::ForwardContext ctx{true, &rng};
  ag::Variable first_loss = model.TrainingLoss(ctx);
  ASSERT_TRUE(first_loss->value().AllFinite());

  // Three plain gradient steps must reduce the deterministic loss for
  // every configuration (dropout off; stochastic gates resample, so
  // give it the eval path for the comparison).
  std::vector<ag::Variable> params = model.Parameters();
  ASSERT_FALSE(params.empty());
  for (int step = 0; step < 5; ++step) {
    for (auto& p : params) p->ZeroGrad();
    nn::ForwardContext step_ctx{true, &rng};
    ag::Variable loss = model.TrainingLoss(step_ctx);
    ag::Backward(loss);
    for (auto& p : params) {
      if (!p->grad().empty()) p->mutable_value().Axpy(-0.1f, p->grad());
    }
  }
  Rng eval_rng(36);
  nn::ForwardContext eval_ctx{false, &eval_rng};
  ag::Variable final_logits = model.Forward(eval_ctx);
  EXPECT_TRUE(final_logits->value().AllFinite());
  EXPECT_EQ(model.hidden_states().size(), depth - 1);
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndAggregators, LasagneSweepTest,
    ::testing::Combine(
        ::testing::Values(AggregatorKind::kWeighted,
                          AggregatorKind::kMaxPooling,
                          AggregatorKind::kStochastic,
                          AggregatorKind::kMean, AggregatorKind::kLstm),
        ::testing::Values(size_t{2}, size_t{4}, size_t{7})),
    [](const ::testing::TestParamInfo<std::tuple<AggregatorKind, size_t>>&
           info) {
      return AggregatorKindName(std::get<0>(info.param)) + "_depth" +
             std::to_string(std::get<1>(info.param));
    });

// --- CSR random-shape properties ---------------------------------------------

class CsrPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CsrPropertyTest, MultiplyAgreesWithDenseOnRandomMatrices) {
  Rng rng(100 + GetParam());
  const size_t rows = 2 + rng.UniformInt(20);
  const size_t cols = 2 + rng.UniformInt(20);
  const size_t inner = 2 + rng.UniformInt(15);
  Tensor dense_a = Tensor::Normal(rows, inner, 0, 1, rng);
  for (size_t i = 0; i < dense_a.size(); ++i) {
    if (rng.Bernoulli(0.6)) dense_a.data()[i] = 0.0f;
  }
  CsrMatrix sparse_a = CsrMatrix::FromDense(dense_a);
  Tensor b = Tensor::Normal(inner, cols, 0, 1, rng);
  EXPECT_LT(sparse_a.Multiply(b).MaxAbsDiff(dense_a.MatMul(b)), 1e-4f);
  // Transpose consistency.
  Tensor c = Tensor::Normal(rows, cols, 0, 1, rng);
  EXPECT_LT(sparse_a.TransposedMultiply(c).MaxAbsDiff(
                dense_a.Transpose().MatMul(c)),
            1e-4f);
  // (A^T)^T == A.
  EXPECT_LT(sparse_a.Transpose().Transpose().ToDense().MaxAbsDiff(dense_a),
            1e-6f);
}

TEST_P(CsrPropertyTest, SparseSparseMatchesDense) {
  Rng rng(200 + GetParam());
  const size_t n = 3 + rng.UniformInt(12);
  Tensor da = Tensor::Normal(n, n, 0, 1, rng);
  Tensor db = Tensor::Normal(n, n, 0, 1, rng);
  for (size_t i = 0; i < da.size(); ++i) {
    if (rng.Bernoulli(0.7)) da.data()[i] = 0.0f;
    if (rng.Bernoulli(0.7)) db.data()[i] = 0.0f;
  }
  CsrMatrix sa = CsrMatrix::FromDense(da);
  CsrMatrix sb = CsrMatrix::FromDense(db);
  EXPECT_LT(sa.Multiply(sb).ToDense().MaxAbsDiff(da.MatMul(db)), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, CsrPropertyTest,
                         ::testing::Range(0, 8));

// --- Graph invariants under random generation --------------------------------

class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, NormalizedAdjacencySpectralRadiusAtMostOne) {
  Dataset data = LoadDataset(
      GetParam() % 2 == 0 ? "cora" : "citeseer", 0.15,
      static_cast<uint64_t>(GetParam() + 1));
  CsrMatrix a_hat = data.graph.NormalizedAdjacency();
  EXPECT_TRUE(a_hat.IsSymmetric(1e-5f));
  Rng rng(GetParam());
  const double radius = PowerIterationSpectralRadius(a_hat, 150, rng);
  EXPECT_LE(std::abs(radius), 1.0 + 1e-3);
}

TEST_P(GraphPropertyTest, PageRankIsDistribution) {
  Dataset data =
      LoadDataset("pubmed", 0.1, static_cast<uint64_t>(GetParam() + 1));
  Tensor pr = PageRank(data.graph);
  EXPECT_NEAR(pr.Sum(), 1.0f, 1e-3f);
  EXPECT_GE(pr.Min(), 0.0f);
}

TEST_P(GraphPropertyTest, PartitionIsAPartition) {
  Dataset data =
      LoadDataset("cora", 0.2, static_cast<uint64_t>(GetParam() + 1));
  Rng rng(GetParam() * 7 + 1);
  auto parts = PartitionGraph(data.graph, 4 + GetParam() % 3, rng);
  std::vector<int> seen(data.num_nodes(), 0);
  for (const auto& part : parts) {
    for (uint32_t u : part) seen[u]++;
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPropertyTest, ::testing::Range(0, 5));

// --- Autograd composition property --------------------------------------------

class AutogradCompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradCompositionTest, RandomDeepCompositionsGradCheck) {
  // Build a random chain of ops and gradient-check the whole thing.
  Rng rng(300 + GetParam());
  ag::Variable x =
      ag::MakeParameter(Tensor::Normal(4, 5, 0.0f, 0.5f, rng));
  ag::Variable w =
      ag::MakeParameter(Tensor::Normal(5, 5, 0.0f, 0.5f, rng));
  auto loss = [&] {
    ag::Variable h = x;
    Rng pick(400 + GetParam());
    for (int step = 0; step < 6; ++step) {
      switch (pick.UniformInt(5)) {
        case 0:
          h = ag::Tanh(h);
          break;
        case 1:
          h = ag::MatMul(h, w);
          break;
        case 2:
          h = ag::Add(h, x);
          break;
        case 3:
          h = ag::LeakyRelu(h, 0.1f);
          break;
        case 4:
          h = ag::Mul(h, h);
          break;
      }
    }
    return ag::Mean(h);
  };
  EXPECT_LT(testing::GradCheck(loss, {x, w}, 2e-3f), 6e-2f);
}

INSTANTIATE_TEST_SUITE_P(Chains, AutogradCompositionTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace lasagne
