#include "data/registry.h"

#include <gtest/gtest.h>

#include "data/splits.h"
#include "data/synthetic.h"
#include "graph/algorithms.h"

namespace lasagne {
namespace {

TEST(SyntheticTest, PlantedPartitionBasicShape) {
  PlantedPartitionConfig config;
  config.num_nodes = 300;
  config.num_classes = 5;
  config.feature_dim = 16;
  config.seed = 3;
  Dataset d = GeneratePlantedPartition(config);
  EXPECT_EQ(d.num_nodes(), 300u);
  EXPECT_EQ(d.feature_dim(), 16u);
  EXPECT_EQ(d.num_classes, 5u);
  EXPECT_EQ(d.labels.size(), 300u);
  for (int32_t l : d.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 5);
  }
}

TEST(SyntheticTest, ClassesAreBalanced) {
  PlantedPartitionConfig config;
  config.num_nodes = 500;
  config.num_classes = 5;
  config.seed = 4;
  Dataset d = GeneratePlantedPartition(config);
  std::vector<int> counts(5, 0);
  for (int32_t l : d.labels) counts[l]++;
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(SyntheticTest, IntraClassEdgeFractionNearSpec) {
  PlantedPartitionConfig config;
  config.num_nodes = 1000;
  config.num_classes = 4;
  config.intra_class_ratio = 0.85;
  config.avg_degree = 8.0;
  config.seed = 5;
  Dataset d = GeneratePlantedPartition(config);
  size_t intra = 0, total = 0;
  for (const auto& [u, v] : d.graph.Edges()) {
    ++total;
    if (d.labels[u] == d.labels[v]) ++intra;
  }
  ASSERT_GT(total, 0u);
  const double frac = static_cast<double>(intra) / total;
  // Inter-class picks can still land in the same class (1/C of the time),
  // so expected intra fraction is ratio + (1-ratio)/C ~ 0.89.
  EXPECT_NEAR(frac, 0.85 + 0.15 / 4.0, 0.05);
}

TEST(SyntheticTest, HubsCreateDegreeSkew) {
  PlantedPartitionConfig config;
  config.num_nodes = 800;
  config.hub_fraction = 0.05;
  config.hub_weight = 30.0;
  config.avg_degree = 6.0;
  config.seed = 6;
  Dataset d = GeneratePlantedPartition(config);
  EXPECT_GT(d.graph.MaxDegree(), 5 * d.graph.AverageDegree());
}

TEST(SyntheticTest, FeaturesAreClassSeparable) {
  // A nearest-centroid probe on the raw features must beat chance by a
  // wide margin, otherwise no model can learn anything.
  PlantedPartitionConfig config;
  config.num_nodes = 400;
  config.num_classes = 4;
  config.feature_dim = 32;
  config.feature_noise = 0.8;
  config.seed = 7;
  Dataset d = GeneratePlantedPartition(config);
  Tensor centroids(4, 32);
  std::vector<int> counts(4, 0);
  for (size_t i = 0; i < d.num_nodes(); ++i) {
    counts[d.labels[i]]++;
    for (size_t j = 0; j < 32; ++j) {
      centroids(d.labels[i], j) += d.features(i, j);
    }
  }
  for (size_t c = 0; c < 4; ++c) {
    for (size_t j = 0; j < 32; ++j) centroids(c, j) /= counts[c];
  }
  int correct = 0;
  for (size_t i = 0; i < d.num_nodes(); ++i) {
    int best = 0;
    double best_d = 1e30;
    for (int c = 0; c < 4; ++c) {
      double dist = 0;
      for (size_t j = 0; j < 32; ++j) {
        double diff = d.features(i, j) - centroids(c, j);
        dist += diff * diff;
      }
      if (dist < best_d) {
        best_d = dist;
        best = c;
      }
    }
    correct += (best == d.labels[i]);
  }
  EXPECT_GT(static_cast<double>(correct) / d.num_nodes(), 0.5);
}

TEST(SyntheticTest, BipartiteStructure) {
  BipartiteConfig config;
  config.num_items = 200;
  config.num_users = 100;
  config.num_classes = 10;
  config.seed = 8;
  Dataset d = GenerateBipartite(config);
  EXPECT_EQ(d.num_nodes(), 300u);
  // Edges are user-item watches or item-item co-clicks; never user-user.
  size_t watch_edges = 0, co_click_edges = 0;
  for (const auto& [u, v] : d.graph.Edges()) {
    const bool u_item = u < 200;
    const bool v_item = v < 200;
    EXPECT_TRUE(u_item || v_item);  // no user-user edges
    if (u_item && v_item) {
      ++co_click_edges;
    } else {
      ++watch_edges;
    }
  }
  EXPECT_GT(watch_edges, 0u);
  EXPECT_GT(co_click_edges, 0u);  // "concurrent clicks" projection
}

TEST(SyntheticTest, BipartiteCoClickCanBeDisabled) {
  BipartiteConfig config;
  config.num_items = 100;
  config.num_users = 80;
  config.num_classes = 5;
  config.co_click_pairs_per_user = 0.0;
  config.seed = 8;
  Dataset d = GenerateBipartite(config);
  for (const auto& [u, v] : d.graph.Edges()) {
    EXPECT_NE(u < 100, v < 100);  // strictly bipartite again
  }
}

TEST(SyntheticTest, BipartitePopularitySkew) {
  BipartiteConfig config;
  config.num_items = 300;
  config.num_users = 300;
  config.popularity_exponent = 1.1;
  config.avg_items_per_user = 8.0;
  config.seed = 9;
  Dataset d = GenerateBipartite(config);
  // The hottest item should be far above the average item degree.
  size_t max_item_degree = 0;
  double total = 0;
  for (uint32_t i = 0; i < 300; ++i) {
    max_item_degree = std::max(max_item_degree, d.graph.Degree(i));
    total += d.graph.Degree(i);
  }
  EXPECT_GT(max_item_degree, 8 * total / 300);
}

TEST(SplitsTest, TransductiveSplitCounts) {
  PlantedPartitionConfig config;
  config.num_nodes = 400;
  config.num_classes = 4;
  config.seed = 10;
  Dataset d = GeneratePlantedPartition(config);
  Rng rng(1);
  ApplyTransductiveSplit(d, 5, 50, 100, rng);
  EXPECT_EQ(d.TrainNodes().size(), 20u);
  EXPECT_EQ(d.ValNodes().size(), 50u);
  EXPECT_EQ(d.TestNodes().size(), 100u);
  // Per-class train balance.
  std::vector<int> counts(4, 0);
  for (uint32_t u : d.TrainNodes()) counts[d.labels[u]]++;
  for (int c : counts) EXPECT_EQ(c, 5);
}

TEST(SplitsTest, ResampleLabelRateKeepsValTest) {
  Dataset d = LoadDataset("cora", 1.0, 2);
  auto val_before = d.ValNodes();
  auto test_before = d.TestNodes();
  Rng rng(3);
  ResampleTrainPerClass(d, 12, rng);
  EXPECT_EQ(d.ValNodes(), val_before);
  EXPECT_EQ(d.TestNodes(), test_before);
  EXPECT_EQ(d.TrainNodes().size(), 12u * d.num_classes);
}

TEST(SplitsTest, InductiveSplitFractions) {
  PlantedPartitionConfig config;
  config.num_nodes = 400;
  config.seed = 11;
  Dataset d = GeneratePlantedPartition(config);
  Rng rng(4);
  ApplyInductiveSplit(d, 0.5, 0.25, rng);
  EXPECT_TRUE(d.inductive);
  EXPECT_EQ(d.TrainNodes().size(), 200u);
  EXPECT_EQ(d.ValNodes().size(), 100u);
  EXPECT_EQ(d.TestNodes().size(), 100u);
}

TEST(DatasetTest, TrainSubgraphOnlyTrainNodes) {
  Dataset d = LoadDataset("flickr", 0.3, 5);
  Dataset sub = d.TrainSubgraph();
  EXPECT_EQ(sub.num_nodes(), d.TrainNodes().size());
  EXPECT_EQ(sub.TrainNodes().size(), sub.num_nodes());
  // Features of subgraph node i match original train node i.
  auto train_nodes = d.TrainNodes();
  for (size_t i = 0; i < std::min<size_t>(10, train_nodes.size()); ++i) {
    EXPECT_FLOAT_EQ(sub.features(i, 0), d.features(train_nodes[i], 0));
    EXPECT_EQ(sub.labels[i], d.labels[train_nodes[i]]);
  }
}

TEST(RegistryTest, AllSpecsLoadable) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Dataset d = LoadDataset(spec.name, 0.25, 1);
    EXPECT_GT(d.num_nodes(), 0u) << spec.name;
    EXPECT_EQ(d.name, spec.name);
    EXPECT_TRUE(d.Validate().ok()) << spec.name;
    EXPECT_EQ(d.inductive, spec.inductive) << spec.name;
  }
}

TEST(RegistryTest, ElevenDatasetsLikePaperTable2) {
  EXPECT_EQ(AllDatasetSpecs().size(), 11u);
}

TEST(RegistryTest, SeedsChangeGraphScaleChangesSize) {
  Dataset a = LoadDataset("cora", 1.0, 1);
  Dataset b = LoadDataset("cora", 1.0, 2);
  EXPECT_NE(a.graph.num_edges(), b.graph.num_edges());
  Dataset half = LoadDataset("cora", 0.5, 1);
  EXPECT_NEAR(static_cast<double>(half.num_nodes()),
              0.5 * a.num_nodes(), 2.0);
}

TEST(RegistryTest, DeterministicForSameSeed) {
  Dataset a = LoadDataset("citeseer", 0.5, 7);
  Dataset b = LoadDataset("citeseer", 0.5, 7);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_LT(a.features.MaxAbsDiff(b.features), 1e-7f);
  EXPECT_EQ(a.train_mask, b.train_mask);
}

TEST(RegistryTest, CoraAplInRealisticRange) {
  // The paper reports APL 7.3 for Cora; our stand-in should land in the
  // same small-world ballpark (a few hops), which is what drives the
  // depth analysis.
  Dataset d = LoadDataset("cora", 1.0, 1);
  Rng rng(1);
  double apl = AveragePathLengthSampled(d.graph, 64, rng);
  EXPECT_GT(apl, 2.0);
  EXPECT_LT(apl, 12.0);
}

}  // namespace
}  // namespace lasagne
