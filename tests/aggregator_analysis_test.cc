#include "core/aggregator_analysis.h"

#include <gtest/gtest.h>

#include "data/registry.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

std::unique_ptr<LasagneModel> TrainedModel(const Dataset& data,
                                           AggregatorKind kind) {
  LasagneConfig config;
  config.aggregator = kind;
  config.depth = 4;
  config.hidden_dim = 16;
  config.dropout = 0.3f;
  config.seed = 5;
  auto model = std::make_unique<LasagneModel>(data, config);
  TrainOptions options;
  options.max_epochs = 40;
  options.patience = 40;
  options.seed = 7;
  TrainModel(*model, options);
  return model;
}

TEST(AggregatorAnalysisTest, StochasticReportWellFormed) {
  Dataset data = LoadDataset("cora", 0.25, 71);
  auto model = TrainedModel(data, AggregatorKind::kStochastic);
  AggregatorReport report = AnalyzeAggregator(*model, data);
  EXPECT_EQ(report.aggregator, "stochastic");
  EXPECT_EQ(report.num_layers, 3u);
  EXPECT_EQ(report.mean_per_layer.size(), 3u);
  for (double m : report.mean_per_layer) {
    EXPECT_GE(m, 0.0);
    EXPECT_LE(m, 1.0 + 1e-6);
  }
  EXPECT_GE(report.pagerank_early_preference_spearman, -1.0);
  EXPECT_LE(report.pagerank_early_preference_spearman, 1.0);
  EXPECT_EQ(report.most_central_gates.size(), 3u);
  EXPECT_EQ(report.least_central_gates.size(), 3u);
  EXPECT_NE(report.Summary().find("stochastic"), std::string::npos);
}

TEST(AggregatorAnalysisTest, WeightedGatesAreNormalized) {
  Dataset data = LoadDataset("cora", 0.25, 72);
  auto model = TrainedModel(data, AggregatorKind::kWeighted);
  AggregatorReport report = AnalyzeAggregator(*model, data);
  EXPECT_EQ(report.aggregator, "weighted");
  // |C| normalized per node: layer means sum to ~1.
  double total = 0.0;
  for (double m : report.mean_per_layer) total += m;
  EXPECT_NEAR(total, 1.0, 1e-3);
}

TEST(AggregatorAnalysisTest, RejectsNonNodeIndexedAggregators) {
  Dataset data = LoadDataset("cora", 0.2, 73);
  LasagneConfig config;
  config.aggregator = AggregatorKind::kMaxPooling;
  config.depth = 3;
  config.hidden_dim = 8;
  config.seed = 3;
  LasagneModel model(data, config);
  EXPECT_DEATH(AnalyzeAggregator(model, data), "node-indexed");
}

}  // namespace
}  // namespace lasagne
