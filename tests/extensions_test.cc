// Tests for the extension surface added on top of the paper core:
// LSTM cell/aggregator, JK-Net combination modes, batch-norm op,
// serialization, dataset file I/O, classification metrics and the
// unsupervised (DGI/GMI) pipelines.

#include <cstdio>

#include <gtest/gtest.h>

#include "autograd/ops.h"
#include "core/lasagne_model.h"
#include "core/lstm_aggregator.h"
#include "data/io.h"
#include "data/registry.h"
#include "metrics/classification.h"
#include "models/gcn_family.h"
#include "models/unsupervised.h"
#include "test_util.h"
#include "train/serialization.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

using testing::GradCheck;

TEST(BatchNormColumnsTest, NormalizesColumns) {
  Rng rng(1);
  ag::Variable x =
      ag::MakeParameter(Tensor::Normal(50, 4, 3.0f, 2.0f, rng));
  Tensor y = ag::BatchNormColumns(x)->value();
  for (size_t j = 0; j < 4; ++j) {
    double mean = 0.0, var = 0.0;
    for (size_t i = 0; i < 50; ++i) mean += y(i, j);
    mean /= 50.0;
    for (size_t i = 0; i < 50; ++i) {
      var += (y(i, j) - mean) * (y(i, j) - mean);
    }
    var /= 50.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNormColumnsTest, GradientsCheck) {
  Rng rng(2);
  ag::Variable x =
      ag::MakeParameter(Tensor::Normal(6, 3, 0.0f, 1.0f, rng));
  ag::Variable w = ag::MakeParameter(Tensor::Normal(6, 3, 0.0f, 1.0f, rng));
  auto loss = [&] {
    return ag::Sum(ag::Mul(ag::BatchNormColumns(x), w));
  };
  EXPECT_LT(GradCheck(loss, {x}), 3e-2f);
}

TEST(LstmCellTest, StateShapesAndBoundedActivations) {
  Rng rng(3);
  LstmCell cell(8, 5, rng);
  LstmCell::State state = cell.InitialState(10);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(10, 8, 0, 1, rng));
  for (int t = 0; t < 3; ++t) state = cell.Step(x, state);
  EXPECT_EQ(state.h->rows(), 10u);
  EXPECT_EQ(state.h->cols(), 5u);
  // tanh-bounded hidden state.
  EXPECT_LE(state.h->value().Max(), 1.0f);
  EXPECT_GE(state.h->value().Min(), -1.0f);
  EXPECT_EQ(cell.Parameters().size(), 3u);
}

TEST(LstmCellTest, GradientsFlowThroughTime) {
  Rng rng(4);
  LstmCell cell(3, 4, rng);
  ag::Variable x0 = ag::MakeParameter(Tensor::Normal(2, 3, 0, 0.5, rng));
  ag::Variable x1 = ag::MakeParameter(Tensor::Normal(2, 3, 0, 0.5, rng));
  auto loss = [&] {
    LstmCell::State s = cell.InitialState(2);
    s = cell.Step(x0, s);
    s = cell.Step(x1, s);
    return ag::Sum(ag::Mul(s.h, s.h));
  };
  std::vector<ag::Variable> params = cell.Parameters();
  params.push_back(x0);  // gradient through both timesteps
  EXPECT_LT(GradCheck(loss, params), 3e-2f);
}

TEST(LstmAggregatorTest, OutputShapeAndGradients) {
  Rng rng(5);
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto a_hat = std::make_shared<CsrMatrix>(g.NormalizedAdjacency());
  LstmAggregator agg({4, 4, 4}, /*lstm_hidden=*/6, rng);
  std::vector<ag::Variable> history;
  Rng gen(6);
  for (int i = 0; i < 3; ++i) {
    history.push_back(
        ag::MakeParameter(Tensor::Normal(5, 4, 0, 0.5, gen)));
  }
  nn::ForwardContext ctx{false, &gen};
  ag::Variable out = agg.Aggregate(a_hat, history, ctx);
  EXPECT_EQ(out->rows(), 5u);
  EXPECT_EQ(out->cols(), 4u);
  EXPECT_FALSE(agg.node_indexed());
  auto loss = [&] {
    ag::Variable o = agg.Aggregate(a_hat, history, ctx);
    return ag::Sum(ag::Mul(o, o));
  };
  EXPECT_LT(GradCheck(loss, agg.Parameters(), 3e-3f), 6e-2f);
}

TEST(LstmAggregatorTest, WorksInsideLasagneModel) {
  Dataset data = LoadDataset("cora", 0.25, 7);
  LasagneConfig config;
  config.aggregator = AggregatorKind::kLstm;
  config.depth = 4;
  config.hidden_dim = 12;
  config.seed = 8;
  LasagneModel model(data, config);
  Rng rng(9);
  nn::ForwardContext ctx{true, &rng};
  ag::Variable loss = model.TrainingLoss(ctx);
  EXPECT_TRUE(loss->value().AllFinite());
  ag::Backward(loss);
}

TEST(LstmAggregatorTest, RunsInductively) {
  Dataset data = LoadDataset("flickr", 0.12, 7);
  LasagneConfig config;
  config.aggregator = AggregatorKind::kLstm;
  config.depth = 3;
  config.hidden_dim = 12;
  config.seed = 8;
  LasagneModel model(data, config);  // must not abort (not node-indexed)
  Rng rng(10);
  nn::ForwardContext ctx{true, &rng};
  EXPECT_TRUE(model.TrainingLoss(ctx)->value().AllFinite());
}

TEST(JkNetModesTest, AllModesTrainAndDifferInShape) {
  Dataset data = LoadDataset("cora", 0.25, 11);
  for (const char* name : {"jknet", "jknet-maxpool", "jknet-lstm"}) {
    ModelConfig config;
    config.depth = 3;
    config.hidden_dim = 12;
    config.seed = 12;
    std::unique_ptr<Model> model = MakeModel(name, data, config);
    Rng rng(13);
    nn::ForwardContext ctx{true, &rng};
    ag::Variable loss = model->TrainingLoss(ctx);
    EXPECT_TRUE(loss->value().AllFinite()) << name;
    ag::Backward(loss);
    nn::ForwardContext eval{false, &rng};
    EXPECT_EQ(model->Forward(eval)->cols(), data.num_classes) << name;
  }
}

TEST(SerializationTest, SaveLoadRoundTrip) {
  Dataset data = LoadDataset("cora", 0.2, 14);
  ModelConfig config;
  config.depth = 3;
  config.hidden_dim = 8;
  config.seed = 15;
  std::unique_ptr<Model> model = MakeModel("lasagne-weighted", data, config);
  const std::string path = ::testing::TempDir() + "/ckpt.txt";
  ASSERT_TRUE(SaveModel(*model, path));

  // A second model with a different seed differs, then matches after load.
  ModelConfig other_config = config;
  other_config.seed = 999;
  std::unique_ptr<Model> other =
      MakeModel("lasagne-weighted", data, other_config);
  Rng rng(16);
  nn::ForwardContext ctx{false, &rng};
  Tensor before = other->Forward(ctx)->value();
  Tensor original = model->Forward(ctx)->value();
  EXPECT_GT(before.MaxAbsDiff(original), 1e-4f);
  ASSERT_TRUE(LoadModel(*other, path));
  Tensor after = other->Forward(ctx)->value();
  EXPECT_LT(after.MaxAbsDiff(original), 1e-5f);
}

TEST(SerializationTest, RejectsArchitectureMismatch) {
  Dataset data = LoadDataset("cora", 0.2, 17);
  ModelConfig config;
  config.depth = 3;
  config.hidden_dim = 8;
  config.seed = 18;
  std::unique_ptr<Model> small = MakeModel("gcn", data, config);
  const std::string path = ::testing::TempDir() + "/ckpt2.txt";
  ASSERT_TRUE(SaveModel(*small, path));
  ModelConfig bigger = config;
  bigger.hidden_dim = 16;
  std::unique_ptr<Model> big = MakeModel("gcn", data, bigger);
  EXPECT_FALSE(LoadModel(*big, path));
  EXPECT_FALSE(LoadModel(*small, path + ".does-not-exist"));
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  Dataset data = LoadDataset("citeseer", 0.2, 19);
  const std::string prefix = ::testing::TempDir() + "/citeseer_export";
  ASSERT_TRUE(SaveDatasetToFiles(data, prefix));
  Dataset loaded = LoadDatasetFromFiles(prefix);
  EXPECT_EQ(loaded.num_nodes(), data.num_nodes());
  EXPECT_EQ(loaded.graph.num_edges(), data.graph.num_edges());
  EXPECT_EQ(loaded.num_classes, data.num_classes);
  EXPECT_EQ(loaded.labels, data.labels);
  EXPECT_EQ(loaded.train_mask, data.train_mask);
  EXPECT_EQ(loaded.val_mask, data.val_mask);
  EXPECT_EQ(loaded.test_mask, data.test_mask);
  EXPECT_LT(loaded.features.MaxAbsDiff(data.features), 1e-4f);
}

TEST(DatasetIoTest, MissingFilesReturnEmpty) {
  Dataset loaded = LoadDatasetFromFiles("/nonexistent/prefix");
  EXPECT_EQ(loaded.num_nodes(), 0u);
}

TEST(ConfusionMatrixTest, CountsAndMetrics) {
  // 2 classes; predictions: argmax of logits.
  Tensor logits(4, 2, {0.9f, 0.1f,   // pred 0, true 0
                       0.2f, 0.8f,   // pred 1, true 0
                       0.1f, 0.9f,   // pred 1, true 1
                       0.7f, 0.3f}); // pred 0, true 1 (masked out)
  std::vector<int32_t> labels = {0, 0, 1, 1};
  std::vector<float> mask = {1, 1, 1, 0};
  ConfusionMatrix cm(logits, labels, mask, 2);
  EXPECT_EQ(cm.TotalCount(), 3u);
  EXPECT_EQ(cm.Count(0, 0), 1u);
  EXPECT_EQ(cm.Count(0, 1), 1u);
  EXPECT_EQ(cm.Count(1, 1), 1u);
  EXPECT_NEAR(cm.Accuracy(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(cm.Precision(0), 1.0, 1e-9);   // 1 of 1 predicted-0 correct
  EXPECT_NEAR(cm.Recall(0), 0.5, 1e-9);      // 1 of 2 true-0 found
  EXPECT_NEAR(cm.F1(0), 2.0 * 1.0 * 0.5 / 1.5, 1e-9);
  EXPECT_GT(cm.MacroF1(), 0.0);
  EXPECT_NEAR(cm.MicroF1(), cm.Accuracy(), 1e-12);
}

TEST(ConfusionMatrixTest, PerfectPrediction) {
  Tensor logits(2, 2, {1.0f, 0.0f, 0.0f, 1.0f});
  ConfusionMatrix cm(logits, {0, 1}, {1, 1}, 2);
  EXPECT_NEAR(cm.Accuracy(), 1.0, 1e-12);
  EXPECT_NEAR(cm.MacroF1(), 1.0, 1e-12);
}

TEST(UnsupervisedTest, DgiLearnsUsefulEmbeddings) {
  Dataset data = LoadDataset("cora", 0.3, 20);
  ModelConfig config;
  config.hidden_dim = 32;
  config.dropout = 0.2f;
  config.seed = 21;
  TrainOptions options;
  options.max_epochs = 80;
  options.patience = 40;
  options.seed = 22;
  UnsupervisedResult result = RunDgi(data, config, options);
  // Far above the 1/7 chance level.
  EXPECT_GT(result.test_accuracy, 0.35);
  EXPECT_TRUE(std::isfinite(result.pretrain_loss));
}

TEST(UnsupervisedTest, GmiLearnsUsefulEmbeddings) {
  Dataset data = LoadDataset("cora", 0.3, 23);
  ModelConfig config;
  config.hidden_dim = 32;
  config.dropout = 0.2f;
  config.seed = 24;
  TrainOptions options;
  options.max_epochs = 80;
  options.patience = 40;
  options.seed = 25;
  UnsupervisedResult result = RunGmi(data, config, options);
  EXPECT_GT(result.test_accuracy, 0.35);
}

TEST(LasagneLstmModelTest, RegisteredInFactory) {
  Dataset data = LoadDataset("cora", 0.2, 26);
  ModelConfig config;
  config.depth = 3;
  config.hidden_dim = 8;
  config.seed = 27;
  std::unique_ptr<Model> model = MakeModel("lasagne-lstm", data, config);
  EXPECT_EQ(model->name(), "Lasagne(lstm)");
  Rng rng(28);
  nn::ForwardContext ctx{false, &rng};
  EXPECT_TRUE(model->Forward(ctx)->value().AllFinite());
}

}  // namespace
}  // namespace lasagne
