// Behavior-specific tests for the baseline zoo: each test pins the
// mechanism that distinguishes a baseline, not just "it trains".

#include <cmath>

#include <gtest/gtest.h>

#include "data/registry.h"
#include "models/gcn_family.h"
#include "models/model.h"
#include "models/sampling_models.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

const Dataset& Data() {
  static const Dataset& d = *new Dataset(LoadDataset("cora", 0.25, 41));
  return d;
}

ModelConfig Config(size_t depth = 3) {
  ModelConfig config;
  config.depth = depth;
  config.hidden_dim = 12;
  config.dropout = 0.0f;  // deterministic eval paths
  config.seed = 43;
  return config;
}

Tensor EvalLogits(Model& model, uint64_t rng_seed = 1) {
  Rng rng(rng_seed);
  nn::ForwardContext ctx{false, &rng};
  return model.Forward(ctx)->value();
}

TEST(SgcBehaviorTest, EqualsLinearOnPrecomputedPropagation) {
  // SGC logits == (A_hat^K X) W: check against manual propagation.
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  SgcModel model(data, config);
  Tensor logits = EvalLogits(model);
  // Rebuild A^2 X manually and verify rank-one consistency: the logits
  // must be an exact linear map of A^2 X, i.e. rows with identical
  // propagated features get identical logits.
  CsrMatrix a_hat = data.graph.NormalizedAdjacency();
  Tensor propagated = a_hat.Multiply(a_hat.Multiply(data.features));
  // Linear map: logits = propagated @ W  =>  residual of least-squares
  // fit is 0. Cheap proxy: verify additivity on scaled rows via the
  // parameter count (single weight matrix, no bias).
  EXPECT_EQ(model.Parameters().size(), 1u);
  EXPECT_EQ(model.Parameters()[0]->rows(), data.feature_dim());
  EXPECT_EQ(logits.rows(), propagated.rows());
}

TEST(AppnpBehaviorTest, AlphaOneIsPurePseudoMlp) {
  // With teleport alpha = 1, propagation is a no-op: Z = Z0 (the MLP).
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  config.appnp_alpha = 1.0f;
  config.appnp_iterations = 7;
  AppnpModel with_prop(data, config);
  Tensor z = EvalLogits(with_prop);
  // Reference: zero iterations.
  ModelConfig config0 = config;
  config0.appnp_iterations = 0;
  AppnpModel no_prop(data, config0);
  Tensor z0 = EvalLogits(no_prop);
  EXPECT_LT(z.MaxAbsDiff(z0), 1e-4f);
}

TEST(AppnpBehaviorTest, SmallAlphaDiffersFromMlp) {
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  config.appnp_alpha = 0.1f;
  AppnpModel appnp(data, config);
  ModelConfig config0 = config;
  config0.appnp_iterations = 0;
  AppnpModel mlp(data, config0);
  EXPECT_GT(EvalLogits(appnp).MaxAbsDiff(EvalLogits(mlp)), 1e-3f);
}

TEST(DropEdgeBehaviorTest, EvalIsDeterministicTrainingIsNot) {
  const Dataset& data = Data();
  ModelConfig config = Config(3);
  config.drop_edge_rate = 0.5f;
  DropEdgeGcnModel model(data, config);
  // Eval twice with different RNGs: identical (full operator).
  Tensor a = EvalLogits(model, 1);
  Tensor b = EvalLogits(model, 999);
  EXPECT_LT(a.MaxAbsDiff(b), 1e-7f);
  // Training forwards with different RNGs: different sampled operators.
  Rng r1(1), r2(2);
  nn::ForwardContext t1{true, &r1}, t2{true, &r2};
  Tensor c = model.Forward(t1)->value();
  Tensor d = model.Forward(t2)->value();
  EXPECT_GT(c.MaxAbsDiff(d), 1e-6f);
}

TEST(PairNormBehaviorTest, HiddenRowNormsEqualScale) {
  const Dataset& data = Data();
  ModelConfig config = Config(3);
  config.pairnorm_scale = 1.5f;
  PairNormGcnModel model(data, config);
  EvalLogits(model);
  // First hidden layer output is PairNorm'd: every row norm == scale.
  const Tensor& h = model.hidden_states()[0];
  for (size_t r = 0; r < std::min<size_t>(h.rows(), 32); ++r) {
    double sq = 0.0;
    for (size_t c = 0; c < h.cols(); ++c) sq += h(r, c) * h(r, c);
    EXPECT_NEAR(std::sqrt(sq), 1.5, 1e-2);
  }
}

TEST(ResGcnBehaviorTest, DeepResidualKeepsSignalAliveAtInit) {
  // At initialization a deep plain GCN's hidden norms shrink layer over
  // layer; residual connections keep them up. Compare layer-7 norms.
  const Dataset& data = Data();
  ModelConfig config = Config(8);
  GcnModel gcn(data, config);
  ResGcnModel res(data, config);
  EvalLogits(gcn);
  EvalLogits(res);
  const double gcn_norm = gcn.hidden_states()[6].Norm();
  const double res_norm = res.hidden_states()[6].Norm();
  EXPECT_GT(res_norm, gcn_norm);
}

TEST(MadRegBehaviorTest, LossDiffersFromPlainCrossEntropy) {
  const Dataset& data = Data();
  ModelConfig config = Config(3);
  config.madreg_weight = 0.5f;
  MadRegGcnModel model(data, config);
  Rng rng(3);
  nn::ForwardContext ctx{false, &rng};
  ag::Variable reg_loss = model.TrainingLoss(ctx);
  ag::Variable logits = model.Forward(ctx);
  ag::Variable plain =
      ag::SoftmaxCrossEntropy(logits, data.labels, data.train_mask);
  EXPECT_GT(std::fabs(reg_loss->value()(0, 0) - plain->value()(0, 0)),
            1e-5f);
}

TEST(ClusterGcnBehaviorTest, TrainingLossUsesOnePartition) {
  // The per-step loss must be computable and different across steps
  // (different partitions picked), while Forward covers all nodes.
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  config.num_partitions = 4;
  ClusterGcnModel model(data, config);
  Rng rng(5);
  std::vector<float> losses;
  for (int i = 0; i < 6; ++i) {
    nn::ForwardContext ctx{true, &rng};
    losses.push_back(model.TrainingLoss(ctx)->value()(0, 0));
  }
  // Not all identical (different partitions; weights unchanged).
  bool all_same = true;
  for (float l : losses) all_same = all_same && (l == losses[0]);
  EXPECT_FALSE(all_same);
}

TEST(GraphSaintBehaviorTest, LossFiniteAcrossManySamples) {
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  config.saint_root_count = 12;
  config.saint_walk_length = 2;
  GraphSaintModel model(data, config);
  Rng rng(7);
  for (int i = 0; i < 8; ++i) {
    nn::ForwardContext ctx{true, &rng};
    EXPECT_TRUE(model.TrainingLoss(ctx)->value().AllFinite());
  }
}

TEST(GraphSageBehaviorTest, EvalUsesFullNeighborhoodsDeterministically) {
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  config.sage_fanout = 3;
  GraphSageModel model(data, config);
  Tensor a = EvalLogits(model, 11);
  Tensor b = EvalLogits(model, 222);
  EXPECT_LT(a.MaxAbsDiff(b), 1e-7f);
}

TEST(FastGcnBehaviorTest, TrainingLossVariesWithSampling) {
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  config.fastgcn_sample = 32;
  FastGcnModel model(data, config);
  Rng rng(9);
  nn::ForwardContext c1{true, &rng}, c2{true, &rng};
  float l1 = model.TrainingLoss(c1)->value()(0, 0);
  float l2 = model.TrainingLoss(c2)->value()(0, 0);
  EXPECT_TRUE(std::isfinite(l1));
  EXPECT_TRUE(std::isfinite(l2));
  EXPECT_NE(l1, l2);  // different column samples
}

TEST(JkNetBehaviorTest, ConcatClassifierSeesAllLayers) {
  const Dataset& data = Data();
  ModelConfig config = Config(4);
  JkNetModel model(data, config);
  EvalLogits(model);
  EXPECT_EQ(model.hidden_states().size(), 4u);
  // All hidden layers have the configured width (JK keeps them equal).
  for (const Tensor& h : model.hidden_states()) {
    EXPECT_EQ(h.cols(), config.hidden_dim);
  }
}

TEST(GinBehaviorTest, SumAggregationUsesRawAdjacency) {
  // GIN must distinguish multiset sizes: a hub and a leaf with the same
  // features should get different first-layer embeddings (mean
  // aggregation would not distinguish them with identical neighbors).
  Graph star = Graph::FromEdges(4, {{0, 1}, {0, 2}, {0, 3}});
  Dataset tiny;
  tiny.name = "tiny";
  tiny.graph = star;
  tiny.features = Tensor::Ones(4, 3);
  tiny.labels = {0, 1, 1, 1};
  tiny.num_classes = 2;
  tiny.train_mask = {1, 1, 1, 1};
  tiny.val_mask = {0, 0, 0, 0};
  tiny.test_mask = {0, 0, 0, 0};
  ModelConfig config = Config(2);
  GinModel model(tiny, config);
  Tensor logits = EvalLogits(model);
  // Hub (deg 3) vs leaf (deg 1) with identical features must differ.
  float diff = 0.0f;
  for (size_t c = 0; c < logits.cols(); ++c) {
    diff = std::max(diff, std::fabs(logits(0, c) - logits(1, c)));
  }
  EXPECT_GT(diff, 1e-5f);
}

TEST(MixHopBehaviorTest, PowerCountMatchesConfig) {
  const Dataset& data = Data();
  ModelConfig config = Config(2);
  config.power_k = 3;
  MixHopModel model(data, config);
  EvalLogits(model);
  // Layer output is the concat of (power_k + 1) blocks of hidden_dim.
  EXPECT_EQ(model.hidden_states()[0].cols(),
            (config.power_k + 1) * config.hidden_dim);
}

}  // namespace
}  // namespace lasagne
