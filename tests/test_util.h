#ifndef LASAGNE_TESTS_TEST_UTIL_H_
#define LASAGNE_TESTS_TEST_UTIL_H_

#include <cmath>
#include <functional>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace lasagne::testing {

/// Finite-difference gradient check.
///
/// `make_loss` must rebuild the graph from scratch and return the scalar
/// loss variable; `params` are the leaves whose analytic gradients are
/// compared against central differences. Returns the max relative error
/// max |analytic - numeric| / max(1, |analytic|, |numeric|).
inline float GradCheck(const std::function<ag::Variable()>& make_loss,
                       const std::vector<ag::Variable>& params,
                       float step = 1e-3f) {
  // Analytic pass.
  for (const ag::Variable& p : params) p->ZeroGrad();
  ag::Variable loss = make_loss();
  ag::Backward(loss);
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (const ag::Variable& p : params) {
    analytic.push_back(p->grad().empty()
                           ? Tensor::Zeros(p->rows(), p->cols())
                           : p->grad());
  }
  float max_err = 0.0f;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    ag::Variable p = params[pi];
    for (size_t r = 0; r < p->rows(); ++r) {
      for (size_t c = 0; c < p->cols(); ++c) {
        const float original = p->value()(r, c);
        p->mutable_value()(r, c) = original + step;
        const float plus = make_loss()->value()(0, 0);
        p->mutable_value()(r, c) = original - step;
        const float minus = make_loss()->value()(0, 0);
        p->mutable_value()(r, c) = original;
        const float numeric = (plus - minus) / (2.0f * step);
        const float a = analytic[pi](r, c);
        const float denom =
            std::max({1.0f, std::fabs(a), std::fabs(numeric)});
        max_err = std::max(max_err, std::fabs(a - numeric) / denom);
      }
    }
  }
  return max_err;
}

}  // namespace lasagne::testing

#endif  // LASAGNE_TESTS_TEST_UTIL_H_
