#include "sampling/samplers.h"

#include <gtest/gtest.h>

#include "data/registry.h"

namespace lasagne {
namespace {

Graph TestGraph() {
  Dataset d = LoadDataset("cora", 0.3, 2);
  return d.graph;
}

TEST(SamplersTest, NeighborOperatorRespectsFanout) {
  Graph g = TestGraph();
  Rng rng(1);
  CsrMatrix op = SampleNeighborOperator(g, 3, rng);
  for (size_t r = 0; r < op.rows(); ++r) {
    EXPECT_LE(op.RowNnz(r), 3u);
  }
}

TEST(SamplersTest, NeighborOperatorRowStochastic) {
  Graph g = TestGraph();
  Rng rng(2);
  CsrMatrix op = SampleNeighborOperator(g, 4, rng);
  Tensor sums = op.Multiply(Tensor::Ones(g.num_nodes(), 1));
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    if (g.Degree(u) > 0) EXPECT_NEAR(sums(u, 0), 1.0f, 1e-5f);
  }
}

TEST(SamplersTest, FullNeighborOperatorIsMean) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {0, 2}});
  CsrMatrix op = FullNeighborOperator(g);
  EXPECT_NEAR(op.At(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(op.At(0, 2), 0.5f, 1e-6f);
  EXPECT_NEAR(op.At(1, 0), 1.0f, 1e-6f);
}

TEST(SamplersTest, FastGcnOperatorIsUnbiased) {
  // E[op] == a_hat: average many sampled operators and compare.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                                 {5, 0}, {0, 3}});
  CsrMatrix a_hat = g.NormalizedAdjacency();
  Rng rng(3);
  Tensor x = Tensor::Normal(6, 4, 0.0f, 1.0f, rng);
  Tensor expect = a_hat.Multiply(x);
  Tensor mean(6, 4);
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    CsrMatrix op = FastGcnLayerOperator(a_hat, 3, rng);
    mean += op.Multiply(x);
  }
  mean *= 1.0f / trials;
  EXPECT_LT(mean.MaxAbsDiff(expect), 0.12f);
}

TEST(SamplersTest, ColumnImportanceMatchesDefinition) {
  CsrMatrix m = CsrMatrix::FromTriplets(
      2, 2, {{0, 0, 1.0f}, {1, 0, 2.0f}, {0, 1, 3.0f}});
  std::vector<double> imp = ColumnImportance(m);
  EXPECT_NEAR(imp[0], 1.0 + 4.0, 1e-9);
  EXPECT_NEAR(imp[1], 9.0, 1e-9);
}

TEST(SamplersTest, RandomWalkSubgraphNodesValidAndUnique) {
  Graph g = TestGraph();
  Rng rng(4);
  auto nodes = RandomWalkSubgraphNodes(g, 20, 4, rng);
  EXPECT_FALSE(nodes.empty());
  for (size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_LT(nodes[i - 1], nodes[i]);  // sorted unique
  }
  for (uint32_t u : nodes) EXPECT_LT(u, g.num_nodes());
}

TEST(SamplersTest, InclusionProbabilitiesInRange) {
  Graph g = TestGraph();
  Rng rng(5);
  auto probs = EstimateInclusionProbabilities(g, 20, 4, 10, rng);
  EXPECT_EQ(probs.size(), g.num_nodes());
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(SamplersTest, HighDegreeNodesIncludedMoreOften) {
  Graph star = Graph::FromEdges(
      11, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {0, 6}, {0, 7},
           {0, 8}, {0, 9}, {0, 10}});
  Rng rng(6);
  auto probs = EstimateInclusionProbabilities(star, 3, 2, 40, rng);
  for (size_t leaf = 1; leaf <= 10; ++leaf) {
    EXPECT_GE(probs[0], probs[leaf]);
  }
}

}  // namespace
}  // namespace lasagne
