// Resilient concurrent serving front end (infer::InferenceServer):
// bounded MPMC queue semantics, admission control, deadline enforcement
// at dequeue and at completion, batching-window coalescing determinism,
// drain/cancel shutdown, and fault-injected stalled / poisoned workers.
// Every suite here is named Serving* so the TSan pass in
// tools/run_sanitized_tests.sh picks it up.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_pool.h"
#include "common/fault_injection.h"
#include "common/mpmc_queue.h"
#include "data/registry.h"
#include "infer/server.h"
#include "infer/serving.h"
#include "models/model.h"
#include "obs/metrics.h"

// The pool intentionally bypasses its cache under AddressSanitizer so
// use-after-free stays visible; magazine/depot assertions only hold in
// normal builds.
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_CACHED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_CACHED 0
#endif
#endif
#ifndef LASAGNE_POOL_CACHED
#define LASAGNE_POOL_CACHED 1
#endif

namespace lasagne {
namespace {

using infer::DrainMode;
using infer::InferenceServer;
using infer::RequestOptions;
using infer::ServeFuture;
using infer::ServeResult;
using infer::ServerOptions;
using infer::ServerStats;
using infer::ServeStats;

ModelConfig SmallConfig(uint64_t seed = 3) {
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.4f;
  config.seed = seed;
  return config;
}

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": served rows differ";
}

/// Restores the process-global injector on scope exit so a failing
/// assertion cannot leak an armed fault into later tests.
class FaultInjectorGuard {
 public:
  FaultInjectorGuard() { FaultInjector::Global().Reset(); }
  ~FaultInjectorGuard() { FaultInjector::Global().Reset(); }
};

// -- Bounded MPMC queue ----------------------------------------------------

TEST(ServingQueueTest, TryPushRespectsCapacity) {
  BoundedMpmcQueue<int> queue(2);
  using Push = BoundedMpmcQueue<int>::PushResult;
  EXPECT_EQ(queue.TryPush(1), Push::kOk);
  EXPECT_EQ(queue.TryPush(2), Push::kOk);
  EXPECT_EQ(queue.TryPush(3), Push::kFull);
  EXPECT_EQ(queue.size(), 2u);
  int out = 0;
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 1);  // FIFO
  EXPECT_EQ(queue.TryPush(4), Push::kOk);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(ServingQueueTest, CloseDrainsBacklogThenReportsClosed) {
  BoundedMpmcQueue<int> queue(8);
  using Push = BoundedMpmcQueue<int>::PushResult;
  using Pop = BoundedMpmcQueue<int>::PopResult;
  ASSERT_EQ(queue.TryPush(10), Push::kOk);
  ASSERT_EQ(queue.TryPush(20), Push::kOk);
  queue.Close();
  EXPECT_EQ(queue.TryPush(30), Push::kClosed);
  int out = 0;
  EXPECT_EQ(queue.Pop(&out), Pop::kItem);
  EXPECT_EQ(out, 10);
  EXPECT_EQ(queue.Pop(&out), Pop::kItem);
  EXPECT_EQ(out, 20);
  EXPECT_EQ(queue.Pop(&out), Pop::kClosed);
  EXPECT_EQ(queue.PopFor(&out, std::chrono::milliseconds(5)),
            Pop::kClosed);
}

TEST(ServingQueueTest, PopForTimesOutOnEmptyOpenQueue) {
  BoundedMpmcQueue<int> queue(4);
  int out = 0;
  EXPECT_EQ(queue.PopFor(&out, std::chrono::milliseconds(1)),
            BoundedMpmcQueue<int>::PopResult::kTimeout);
}

TEST(ServingQueueTest, ConcurrentProducersConsumersAccountExactly) {
  constexpr int kProducers = 3;
  constexpr int kConsumers = 2;
  constexpr int kPerProducer = 200;
  BoundedMpmcQueue<int> queue(8);
  std::atomic<int> popped{0};
  std::atomic<long long> sum{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int item = 0;
      while (queue.Pop(&item) == BoundedMpmcQueue<int>::PopResult::kItem) {
        popped.fetch_add(1);
        sum.fetch_add(item);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        // Producers never block inside the queue; the retry loop is the
        // caller's policy (here: spin until admitted).
        while (queue.TryPush(value) !=
               BoundedMpmcQueue<int>::PushResult::kOk) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(),
            static_cast<long long>(total) * (total - 1) / 2);
  EXPECT_EQ(queue.size(), 0u);
}

// -- Bounded ServeStats ----------------------------------------------------

TEST(ServingStatsTest, ReservoirPercentilesAreExactForShortRuns) {
  ServeStats stats;
  for (int i = 100; i >= 1; --i) {
    stats.RecordLatency(static_cast<double>(i));
  }
  EXPECT_EQ(stats.requests, 100u);
  EXPECT_EQ(stats.latency_reservoir.size(), 100u);
  EXPECT_EQ(stats.LatencyPercentileMs(0.0), 1.0);
  EXPECT_EQ(stats.LatencyPercentileMs(0.5), 50.0);
  EXPECT_EQ(stats.LatencyPercentileMs(0.99), 99.0);
  EXPECT_EQ(stats.LatencyPercentileMs(1.0), 100.0);
  EXPECT_EQ(stats.min_latency_ms, 1.0);
  EXPECT_EQ(stats.max_latency_ms, 100.0);
}

TEST(ServingStatsTest, MemoryStaysBoundedBeyondReservoir) {
  ServeStats stats;
  const size_t total = ServeStats::kLatencyReservoir + 5000;
  for (size_t i = 0; i < total; ++i) {
    stats.RecordLatency(0.5 + static_cast<double>(i % 1000));
  }
  EXPECT_EQ(stats.requests, total);
  // The fix this test guards: the per-request record no longer grows
  // one double per request forever. The decimating reservoir halves
  // itself when full, so the size stays in (cap/2, cap].
  EXPECT_LE(stats.latency_reservoir.size(), ServeStats::kLatencyReservoir);
  EXPECT_GT(stats.latency_reservoir.size(), ServeStats::kLatencyReservoir / 2);
  uint64_t bucketed = 0;
  for (uint64_t c : stats.latency_buckets) bucketed += c;
  EXPECT_EQ(bucketed, total);
  // Bucket-estimated percentiles stay within the observed range and
  // monotone in q.
  const double p10 = stats.LatencyPercentileMs(0.10);
  const double p50 = stats.LatencyPercentileMs(0.50);
  const double p99 = stats.LatencyPercentileMs(0.99);
  EXPECT_GE(p10, stats.min_latency_ms);
  EXPECT_LE(p99, stats.max_latency_ms);
  EXPECT_LE(p10, p50);
  EXPECT_LE(p50, p99);
}

TEST(ServingStatsTest, MergeAggregatesWorkerBlocks) {
  ServeStats a;
  ServeStats b;
  for (double v : {1.0, 2.0, 3.0}) a.RecordLatency(v);
  for (double v : {10.0, 20.0}) b.RecordLatency(v);
  a.nodes_served = 30;
  b.nodes_served = 12;
  a.pool_hits = 5;
  b.pool_misses = 7;
  a.Merge(b);
  EXPECT_EQ(a.requests, 5u);
  EXPECT_EQ(a.nodes_served, 42u);
  EXPECT_EQ(a.pool_hits, 5u);
  EXPECT_EQ(a.pool_misses, 7u);
  EXPECT_EQ(a.min_latency_ms, 1.0);
  EXPECT_EQ(a.max_latency_ms, 20.0);
  EXPECT_EQ(a.latency_reservoir.size(), 5u);
  EXPECT_EQ(a.LatencyPercentileMs(1.0), 20.0);
  uint64_t bucketed = 0;
  for (uint64_t c : a.latency_buckets) bucketed += c;
  EXPECT_EQ(bucketed, 5u);
}

TEST(ServingStatsTest, QpsUsesWallClockWindowNotSummedLatency) {
  // Two workers, each serving ten 100 ms requests over the same 1 s
  // wall-clock window. True throughput is 20 requests / 1 s = 20 QPS;
  // the old requests / total_latency formula halved it to 10 because
  // concurrent workers' latencies sum while their wall clocks overlap.
  ServeStats a;
  ServeStats b;
  for (int i = 1; i <= 10; ++i) {
    a.RecordLatencyAt(100.0, /*end_steady_ms=*/i * 100.0);
    b.RecordLatencyAt(100.0, /*end_steady_ms=*/i * 100.0);
  }
  EXPECT_NEAR(a.Qps(), 10.0, 1e-9);  // one worker alone: 10 in 1 s
  a.Merge(b);
  EXPECT_EQ(a.requests, 20u);
  EXPECT_NEAR(a.Qps(), 20.0, 1e-9);  // not 10: overlap counts once
}

TEST(ServingStatsTest, QpsFallsBackToSummedLatencyWithoutTimestamps) {
  // Hand-built stats (no RecordLatencyAt timestamps, e.g. synthetic
  // fixtures) keep the old requests / total_latency estimate instead
  // of dividing by an empty window.
  ServeStats stats;
  stats.requests = 4;
  stats.total_latency_ms = 2000.0;
  EXPECT_NEAR(stats.Qps(), 2.0, 1e-9);
  EXPECT_EQ(ServeStats{}.Qps(), 0.0);
}

TEST(ServingStatsTest, MergeSubsamplesReservoirsProportionally) {
  // Both sides arrive with a full reservoir: a fast worker (1 ms) and a
  // slow one (100 ms) with equal request counts. The old merge appended
  // `other` only until the cap — already full, so the slow worker's
  // samples were dropped entirely and merged p90 read 1 ms. The
  // proportional merge gives each side ~half the cap.
  ServeStats fast;
  ServeStats slow;
  for (size_t i = 0; i < ServeStats::kLatencyReservoir; ++i) {
    fast.RecordLatency(1.0);
    slow.RecordLatency(100.0);
  }
  fast.Merge(slow);
  EXPECT_EQ(fast.latency_reservoir.size(), ServeStats::kLatencyReservoir);
  const size_t slow_samples = static_cast<size_t>(
      std::count(fast.latency_reservoir.begin(),
                 fast.latency_reservoir.end(), 100.0));
  EXPECT_EQ(slow_samples, ServeStats::kLatencyReservoir / 2);
  EXPECT_EQ(fast.LatencyPercentileMs(0.9), 100.0);
  EXPECT_EQ(fast.LatencyPercentileMs(0.1), 1.0);
}

TEST(ServingStatsTest, DecimatingReservoirStaysRepresentative) {
  // A 10k-request ramp overflows the reservoir; the deterministic
  // every-2nd decimation must keep the kept samples spread over the
  // whole run (not biased toward early arrivals), so percentile
  // estimates stay close to the exact values.
  ServeStats stats;
  const size_t total = 10000;
  for (size_t i = 0; i < total; ++i) {
    stats.RecordLatency(static_cast<double>(i) * 0.01);  // 0 .. 99.99
  }
  EXPECT_GT(stats.reservoir_stride, 1u);
  EXPECT_LE(stats.latency_reservoir.size(), ServeStats::kLatencyReservoir);
  EXPECT_NEAR(stats.LatencyPercentileMs(0.5), 50.0, 5.0);
  EXPECT_NEAR(stats.LatencyPercentileMs(0.9), 90.0, 5.0);
  EXPECT_NEAR(stats.LatencyPercentileMs(0.99), 99.0, 5.0);
}

// -- Admission control and deadlines ---------------------------------------

TEST(ServingServerTest, QueueFullRejectsWithRetryAfterHint) {
  Dataset data = LoadDataset("cora", 0.15, 51);
  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 4;
  options.autostart = false;  // stage the queue deterministically
  InferenceServer server("gcn", data, SmallConfig(), options);

  std::vector<ServeFuture> accepted;
  for (uint32_t i = 0; i < 4; ++i) {
    accepted.push_back(server.Submit({i, i + 1}));
    EXPECT_FALSE(accepted.back().ready());
  }
  EXPECT_EQ(server.queue_depth(), 4u);

  for (int i = 0; i < 3; ++i) {
    ServeFuture rejected = server.Submit({0, 1});
    ASSERT_TRUE(rejected.ready());  // producer was never blocked
    const ServeResult& result = rejected.Wait();
    EXPECT_EQ(result.status.code(), StatusCode::kResourceExhausted);
    EXPECT_FALSE(result.has_logits);
    EXPECT_GT(result.retry_after_ms, 0.0);
    EXPECT_NE(result.status.message().find("retry"), std::string::npos);
  }

  server.Shutdown(DrainMode::kDrain);
  for (ServeFuture& f : accepted) {
    EXPECT_TRUE(f.Wait().status.ok());
    EXPECT_TRUE(f.Wait().has_logits);
  }
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, 7u);
  EXPECT_EQ(stats.accepted, 4u);
  EXPECT_EQ(stats.rejected_queue_full, 3u);
  EXPECT_EQ(stats.served_ok, 4u);
  EXPECT_TRUE(stats.Accounted());
}

TEST(ServingServerTest, InvalidRequestsRejectedAtAdmission) {
  Dataset data = LoadDataset("cora", 0.15, 52);
  ServerOptions options;
  options.num_workers = 1;
  InferenceServer server("gcn", data, SmallConfig(), options);

  ServeFuture empty = server.Submit({});
  ASSERT_TRUE(empty.ready());
  EXPECT_EQ(empty.Wait().status.code(), StatusCode::kInvalidArgument);

  const uint32_t out_of_range = static_cast<uint32_t>(data.num_nodes());
  ServeFuture bad = server.Submit({0, out_of_range});
  ASSERT_TRUE(bad.ready());
  EXPECT_EQ(bad.Wait().status.code(), StatusCode::kInvalidArgument);

  server.Shutdown(DrainMode::kDrain);
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.rejected_invalid, 2u);
  EXPECT_TRUE(stats.Accounted());
}

TEST(ServingServerTest, ExpiredRequestsRejectedAtDequeueWithoutForwardPass) {
  Dataset data = LoadDataset("cora", 0.15, 53);
  ServerOptions options;
  options.num_workers = 1;
  options.autostart = false;
  InferenceServer server("gcn", data, SmallConfig(), options);

  RequestOptions tight;
  tight.deadline_ms = 5.0;
  std::vector<ServeFuture> futures;
  for (uint32_t i = 0; i < 3; ++i) futures.push_back(server.Submit({i}, tight));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Shutdown(DrainMode::kDrain);  // starts the worker, which drains

  for (ServeFuture& f : futures) {
    const ServeResult& result = f.Wait();
    EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
    EXPECT_FALSE(result.has_logits);
    EXPECT_EQ(result.worker, -1);
    EXPECT_GE(result.queue_ms, 5.0);
  }
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.expired_at_dequeue, 3u);
  EXPECT_EQ(stats.batches, 0u);  // no forward pass was spent on them
  EXPECT_EQ(stats.served_ok, 0u);
  EXPECT_TRUE(stats.Accounted());
}

TEST(ServingServerTest, LateCompletionIsDeliveredButFlagged) {
  FaultInjectorGuard injector_guard;
  Dataset data = LoadDataset("cora", 0.15, 54);
  ServerOptions options;
  options.num_workers = 1;
  options.autostart = false;
  InferenceServer server("gcn", data, SmallConfig(), options);

  // Dequeued well before the 150 ms deadline, but the injected 400 ms
  // stall makes completion late: the response is delivered with logits
  // and flagged DEADLINE_EXCEEDED.
  FaultInjector::Global().ArmServeStall(400.0, 1);
  RequestOptions request;
  request.deadline_ms = 150.0;
  ServeFuture future = server.Submit({1, 2, 3}, request);
  server.Start();
  const ServeResult& result = future.Wait();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.has_logits);
  EXPECT_EQ(result.logits.rows(), 3u);
  EXPECT_GE(result.total_ms, 150.0);
  server.Shutdown(DrainMode::kDrain);

  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.late_at_completion, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_TRUE(stats.Accounted());
  EXPECT_EQ(FaultInjector::Global().serve_stalls_injected(), 1u);
}

// -- Cross-request batching ------------------------------------------------

TEST(ServingServerTest, CoalescedBatchMatchesPerRequestServingBitwise) {
  Dataset data = LoadDataset("cora", 0.15, 55);
  ServerOptions options;
  options.num_workers = 1;
  options.batch_window_ms = 50.0;
  options.max_batch_requests = 8;
  options.autostart = false;
  InferenceServer server("gcn", data, SmallConfig(), options);

  const std::vector<std::vector<uint32_t>> queries = {
      {0, 1, 2}, {7}, {3, 3, 4}, {100, 50}, {9, 8, 7, 6}};
  std::vector<ServeFuture> futures;
  for (const auto& q : queries) futures.push_back(server.Submit(q));
  server.Start();
  server.Shutdown(DrainMode::kDrain);

  // All five were queued before any worker ran, so they coalesce into
  // one forward pass.
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.coalesced_requests, 5u);
  EXPECT_EQ(stats.served_ok, 5u);

  // Reference: per-request serving on a separately constructed,
  // identically seeded model. Coalescing must not change a single bit
  // of any served row.
  std::unique_ptr<Model> reference = MakeModel("gcn", data, SmallConfig());
  infer::InferenceSession session(*reference);
  for (size_t i = 0; i < queries.size(); ++i) {
    const ServeResult& result = futures[i].Wait();
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.batch_requests, 5u);
    StatusOr<Tensor> expected = session.ServeBatch(queries[i]);
    ASSERT_TRUE(expected.ok());
    ExpectBitwiseEqual(expected.value(), result.logits,
                       "coalesced request " + std::to_string(i));
  }
}

TEST(ServingServerTest, SoftmaxOutputsAreRowDistributions) {
  Dataset data = LoadDataset("cora", 0.15, 56);
  ServerOptions options;
  options.num_workers = 1;
  options.softmax_outputs = true;
  InferenceServer server("gcn", data, SmallConfig(), options);
  ServeFuture future = server.Submit({0, 1, 2});
  const ServeResult& result = future.Wait();
  ASSERT_TRUE(result.status.ok());
  for (size_t i = 0; i < result.logits.rows(); ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < result.logits.cols(); ++j) {
      EXPECT_GE(result.logits(i, j), 0.0f);
      sum += result.logits(i, j);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  server.Shutdown(DrainMode::kDrain);
}

// -- Shutdown --------------------------------------------------------------

TEST(ServingServerTest, DrainShutdownServesEveryQueuedRequest) {
  Dataset data = LoadDataset("cora", 0.15, 57);
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 16;
  options.autostart = false;
  InferenceServer server("gcn", data, SmallConfig(), options);

  std::vector<ServeFuture> futures;
  for (uint32_t i = 0; i < 10; ++i) futures.push_back(server.Submit({i}));
  // Shutdown on a never-started server still starts workers to drain:
  // the outcome is deterministic, not dependent on who ran first.
  server.Shutdown(DrainMode::kDrain);

  for (ServeFuture& f : futures) {
    const ServeResult& result = f.Wait();
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_TRUE(result.has_logits);
  }
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.served_ok, 10u);
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_TRUE(stats.Accounted());
  EXPECT_EQ(server.queue_depth(), 0u);
}

TEST(ServingServerTest, CancelShutdownResolvesQueuedWithoutForwardPass) {
  Dataset data = LoadDataset("cora", 0.15, 58);
  ServerOptions options;
  options.num_workers = 2;
  options.autostart = false;
  InferenceServer server("gcn", data, SmallConfig(), options);

  std::vector<ServeFuture> futures;
  for (uint32_t i = 0; i < 6; ++i) futures.push_back(server.Submit({i}));
  server.Shutdown(DrainMode::kCancelPending);

  for (ServeFuture& f : futures) {
    const ServeResult& result = f.Wait();
    EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
    EXPECT_FALSE(result.has_logits);
  }
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.cancelled, 6u);
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_TRUE(stats.Accounted());
}

TEST(ServingServerTest, SubmitAfterShutdownIsUnavailable) {
  Dataset data = LoadDataset("cora", 0.15, 59);
  InferenceServer server("gcn", data, SmallConfig(), ServerOptions{});
  server.Shutdown(DrainMode::kDrain);
  ServeFuture future = server.Submit({0});
  ASSERT_TRUE(future.ready());
  EXPECT_EQ(future.Wait().status.code(), StatusCode::kUnavailable);
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_TRUE(stats.Accounted());
}

// -- Fault-injected degradation --------------------------------------------

TEST(ServingFaultTest, StalledWorkerDegradesP99ButBlocksNothing) {
  FaultInjectorGuard injector_guard;
  Dataset data = LoadDataset("cora", 0.15, 60);
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 32;
  options.max_batch_requests = 1;  // one request per forward pass
  InferenceServer server("gcn", data, SmallConfig(), options);

  // Poison exactly one dequeue with a 250 ms stall. The victim's
  // latency degrades; the sibling worker keeps serving everyone else,
  // and nothing deadlocks or drops.
  FaultInjector::Global().ArmServeStall(250.0, 1);
  std::vector<ServeFuture> futures;
  for (uint32_t i = 0; i < 10; ++i) {
    futures.push_back(server.Submit({i, i + 1}));
  }
  size_t slow = 0;
  for (ServeFuture& f : futures) {
    const ServeResult& result = f.Wait();  // completing at all = no deadlock
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    if (result.total_ms >= 250.0) ++slow;
  }
  EXPECT_GE(slow, 1u);  // p100 visibly degraded by the stall
  server.Shutdown(DrainMode::kDrain);

  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.served_ok, 10u);
  EXPECT_TRUE(stats.Accounted());
  EXPECT_GE(stats.serve.max_latency_ms, 250.0);
  EXPECT_EQ(FaultInjector::Global().serve_stalls_injected(), 1u);
}

TEST(ServingFaultTest, PoisonedWorkerFailsDeterministicallyAndOthersServe) {
  FaultInjectorGuard injector_guard;
  Dataset data = LoadDataset("cora", 0.15, 61);
  ServerOptions options;
  options.num_workers = 1;
  options.max_batch_requests = 1;
  options.autostart = false;
  InferenceServer server("gcn", data, SmallConfig(), options);

  // Single worker + FIFO queue + one-request batches: exactly the
  // first two dequeues fail, deterministically.
  FaultInjector::Global().ArmServeFailure(/*worker=*/0, /*count=*/2);
  std::vector<ServeFuture> futures;
  for (uint32_t i = 0; i < 5; ++i) futures.push_back(server.Submit({i}));
  server.Shutdown(DrainMode::kDrain);

  for (size_t i = 0; i < futures.size(); ++i) {
    const ServeResult& result = futures[i].Wait();
    if (i < 2) {
      EXPECT_EQ(result.status.code(), StatusCode::kInternal);
      EXPECT_FALSE(result.has_logits);
    } else {
      EXPECT_TRUE(result.status.ok()) << result.status.ToString();
      EXPECT_TRUE(result.has_logits);
    }
  }
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.served_ok, 3u);
  EXPECT_TRUE(stats.Accounted());
  EXPECT_EQ(FaultInjector::Global().serve_failures_injected(), 2u);
}

TEST(ServingFaultTest, PermanentlyPoisonedWorkerNeverCorruptsSiblings) {
  FaultInjectorGuard injector_guard;
  Dataset data = LoadDataset("cora", 0.15, 62);
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  options.max_batch_requests = 1;
  InferenceServer server("gcn", data, SmallConfig(), options);

  // Worker 0 fails every batch it dequeues for the whole test.
  FaultInjector::Global().ArmServeFailure(/*worker=*/0, /*count=*/1 << 20);
  const std::vector<uint32_t> query = {5, 6, 7};
  std::vector<ServeFuture> futures;
  for (int i = 0; i < 24; ++i) futures.push_back(server.Submit(query));

  std::unique_ptr<Model> reference = MakeModel("gcn", data, SmallConfig());
  infer::InferenceSession session(*reference);
  StatusOr<Tensor> expected = session.ServeBatch(query);
  ASSERT_TRUE(expected.ok());

  size_t ok = 0;
  size_t failed = 0;
  for (ServeFuture& f : futures) {
    const ServeResult& result = f.Wait();
    if (result.status.ok()) {
      ++ok;
      EXPECT_NE(result.worker, 0);  // only the healthy sibling serves
      ExpectBitwiseEqual(expected.value(), result.logits,
                         "request served next to a poisoned worker");
    } else {
      ++failed;
      EXPECT_EQ(result.status.code(), StatusCode::kInternal);
      EXPECT_EQ(result.worker, 0);
    }
  }
  EXPECT_EQ(ok + failed, 24u);  // exactly one terminal outcome each
  server.Shutdown(DrainMode::kDrain);
  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.served_ok + stats.failed, 24u);
  EXPECT_TRUE(stats.Accounted());
}

TEST(ServingFaultInjectorTest, ArmAndConsumeAreThreadSafe) {
  FaultInjectorGuard injector_guard;
  constexpr int kStalls = 300;
  FaultInjector::Global().ArmServeStall(1.0, kStalls);
  FaultInjector::Global().ArmServeFailure(/*worker=*/1, /*count=*/50);
  EXPECT_TRUE(FaultInjector::Global().AnyArmed());

  std::atomic<int> stalls_consumed{0};
  std::atomic<int> failures_consumed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      double stall_ms = 0.0;
      for (int i = 0; i < 200; ++i) {
        if (FaultInjector::Global().ConsumeServeStall(&stall_ms)) {
          stalls_consumed.fetch_add(1);
        }
        // Worker index t: only t == 1 may consume failures.
        if (FaultInjector::Global().ConsumeServeFailure(t)) {
          failures_consumed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(stalls_consumed.load(), kStalls);
  EXPECT_EQ(failures_consumed.load(), 50);
  EXPECT_EQ(FaultInjector::Global().serve_stalls_injected(),
            static_cast<size_t>(kStalls));
  EXPECT_EQ(FaultInjector::Global().serve_failures_injected(), 50u);
  EXPECT_FALSE(FaultInjector::Global().AnyArmed());
}

// -- Overload: the acceptance invariant ------------------------------------

TEST(ServingServerTest, OverloadEveryRequestGetsExactlyOneTerminalOutcome) {
  Dataset data = LoadDataset("cora", 0.15, 63);
  ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 8;  // far below what producers offer
  options.batch_window_ms = 0.2;
  options.max_batch_requests = 4;
  InferenceServer server("gcn", data, SmallConfig(), options);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 30;
  std::vector<std::vector<ServeFuture>> futures(kProducers);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      futures[p].reserve(kPerProducer);
      Rng rng(100 + static_cast<uint64_t>(p));
      for (int i = 0; i < kPerProducer; ++i) {
        RequestOptions request;
        // Mix of no deadline, comfortable, and nearly-hopeless.
        if (i % 3 == 1) request.deadline_ms = 50.0;
        if (i % 3 == 2) request.deadline_ms = 0.5;
        std::vector<uint32_t> nodes(4);
        for (uint32_t& id : nodes) {
          id = static_cast<uint32_t>(rng.UniformInt(data.num_nodes()));
        }
        futures[p].push_back(server.Submit(std::move(nodes), request));
      }
    });
  }
  for (auto& t : producers) t.join();
  server.Shutdown(DrainMode::kDrain);

  uint64_t ok = 0, rejected = 0, deadline = 0, other = 0;
  for (auto& per_producer : futures) {
    for (ServeFuture& f : per_producer) {
      ASSERT_TRUE(f.ready());  // shutdown resolved everything
      const ServeResult& result = f.Wait();
      switch (result.status.code()) {
        case StatusCode::kOk:
          EXPECT_TRUE(result.has_logits);
          ++ok;
          break;
        case StatusCode::kResourceExhausted:
          EXPECT_FALSE(result.has_logits);
          EXPECT_GT(result.retry_after_ms, 0.0);
          ++rejected;
          break;
        case StatusCode::kDeadlineExceeded:
          ++deadline;
          break;
        default:
          ++other;
          break;
      }
    }
  }
  EXPECT_EQ(other, 0u);
  const uint64_t total =
      static_cast<uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(ok + rejected + deadline, total);  // zero silent drops

  const ServerStats stats = server.Snapshot();
  EXPECT_EQ(stats.submitted, total);
  EXPECT_TRUE(stats.Accounted());
  EXPECT_EQ(stats.served_ok, ok);
  EXPECT_EQ(stats.rejected_queue_full, rejected);
  EXPECT_EQ(stats.expired_at_dequeue + stats.late_at_completion, deadline);
  EXPECT_EQ(server.queue_depth(), 0u);
}

// -- Observability ---------------------------------------------------------

TEST(ServingServerTest, QueueDepthGaugeAndServeCountersExported) {
  Dataset data = LoadDataset("cora", 0.15, 64);
  obs::EnableMetrics();
  obs::Counter& submitted =
      obs::MetricsRegistry::Global().GetCounter("serve.submitted");
  obs::Counter& served =
      obs::MetricsRegistry::Global().GetCounter("serve.requests");
  obs::Counter& rejected =
      obs::MetricsRegistry::Global().GetCounter("serve.rejected");
  const uint64_t submitted_before = submitted.Value();
  const uint64_t served_before = served.Value();
  const uint64_t rejected_before = rejected.Value();

  ServerOptions options;
  options.num_workers = 1;
  options.queue_capacity = 2;
  options.autostart = false;
  InferenceServer server("gcn", data, SmallConfig(), options);
  std::vector<ServeFuture> futures;
  for (uint32_t i = 0; i < 2; ++i) futures.push_back(server.Submit({i}));
  ServeFuture reject = server.Submit({0});
  EXPECT_TRUE(reject.ready());
  obs::Gauge& depth =
      obs::MetricsRegistry::Global().GetGauge("serve.queue_depth");
  EXPECT_EQ(depth.Value(), 2.0);
  server.Shutdown(DrainMode::kDrain);
  obs::DisableMetrics();

  EXPECT_EQ(submitted.Value() - submitted_before, 3u);
  EXPECT_EQ(served.Value() - served_before, 2u);
  EXPECT_EQ(rejected.Value() - rejected_before, 1u);
  EXPECT_EQ(depth.Value(), 0.0);
}

// -- Pool sharding on the serving path -------------------------------------
// docs/SERVING.md "Pool sharding": once warm, the serving hot path must
// not exchange with the global depot. Skipped under LASAGNE_POOL_BYPASS
// (ASan builds disable the cache entirely).

#if LASAGNE_POOL_CACHED

TEST(ServingPoolShardingTest, WarmSessionServesWithoutDepotExchanges) {
  // Single-threaded InferenceSession: acquire and release happen on the
  // same thread, so after one warmup request every pool touch is a
  // magazine hit — zero depot refills, zero flushes, zero misses.
  Dataset data = LoadDataset("cora", 0.15, 71);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  infer::InferenceSession session(*model);
  ASSERT_TRUE(session.ServeBatch({0, 1, 2}).ok());  // warmup

  BufferPool& pool = BufferPool::Global();
  const BufferPool::Stats before = pool.GetStats();
  for (int i = 0; i < 50; ++i) {
    StatusOr<Tensor> result = session.ServeBatch({0, 1, 2});
    ASSERT_TRUE(result.ok());
  }
  const BufferPool::Stats after = pool.GetStats();
  EXPECT_EQ(after.depot_refills - before.depot_refills, 0u);
  EXPECT_EQ(after.depot_flushes - before.depot_flushes, 0u);
  EXPECT_EQ(after.misses - before.misses, 0u);
}

TEST(ServingPoolShardingTest, SteadyStateDepotExchangesAmortizedBelowPerRequest) {
  // Multi-worker server: the logits tensor is acquired on a worker
  // thread and released on the caller's thread, so chunks migrate
  // caller-magazine -> depot -> worker-magazine in batches. The whole
  // point of the magazine layer is that this costs an amortized
  // fraction of an exchange per request, not one-or-more.
  Dataset data = LoadDataset("cora", 0.15, 72);
  ServerOptions options;
  options.num_workers = 2;
  options.max_batch_requests = 1;  // no coalescing: every request a batch
  options.batch_window_ms = 0.0;
  InferenceServer server("gcn", data, SmallConfig(), options);

  // Bounded in-flight window: a real client paces submissions, and an
  // unbounded flood would hold every logits tensor live at once —
  // measuring queue overflow, not steady-state reuse.
  auto serve_round = [&](int requests) {
    constexpr int kWindow = 8;
    std::vector<ServeFuture> futures;
    for (int i = 0; i < requests; ++i) {
      futures.push_back(server.Submit({static_cast<uint32_t>(i % 64)}));
      if (static_cast<int>(futures.size()) == kWindow) {
        for (ServeFuture& f : futures) {
          ASSERT_TRUE(f.Wait().status.ok());
          // The logits tensor is released here, on this thread —
          // exercising the cross-thread release path every request.
        }
        futures.clear();
      }
    }
    for (ServeFuture& f : futures) ASSERT_TRUE(f.Wait().status.ok());
  };

  serve_round(32);  // warmup: populates worker + caller magazines
  BufferPool& pool = BufferPool::Global();
  const BufferPool::Stats before = pool.GetStats();
  constexpr int kSteady = 200;
  serve_round(kSteady);
  const BufferPool::Stats after = pool.GetStats();
  const uint64_t exchanges = (after.depot_refills - before.depot_refills) +
                             (after.depot_flushes - before.depot_flushes);
  // Amortized well under one exchange per request (batch size 8 gives
  // ~0.25/request in theory; allow 0.5 for scheduling jitter).
  EXPECT_LE(exchanges, static_cast<uint64_t>(kSteady) / 2)
      << "depot mutex is back on the steady-state serving path";
  // A handful of misses are legitimate while chunks migrate between the
  // caller's and the workers' magazines; anything near one-per-request
  // means reuse is broken.
  EXPECT_LE(after.misses - before.misses, static_cast<uint64_t>(kSteady) / 10);
  server.Shutdown(DrainMode::kDrain);
}

#endif  // LASAGNE_POOL_CACHED

}  // namespace
}  // namespace lasagne
