#include "core/lasagne_model.h"

#include <gtest/gtest.h>

#include "core/aggregators.h"
#include "core/gcfm.h"
#include "data/registry.h"
#include "test_util.h"

namespace lasagne {
namespace {

using testing::GradCheck;

std::shared_ptr<const CsrMatrix> TinyAHat() {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}});
  return std::make_shared<CsrMatrix>(g.NormalizedAdjacency());
}

std::vector<ag::Variable> MakeHistory(size_t layers, size_t n, size_t d,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<ag::Variable> history;
  for (size_t l = 0; l < layers; ++l) {
    history.push_back(
        ag::MakeParameter(Tensor::Normal(n, d, 0.0f, 1.0f, rng)));
  }
  return history;
}

TEST(WeightedAggregatorTest, SingleLayerHistoryIsRowScaledIdentity) {
  Rng rng(1);
  WeightedAggregator agg(5, {4}, rng);
  auto history = MakeHistory(1, 5, 4, 2);
  nn::ForwardContext ctx{false, &rng};
  ag::Variable out = agg.Aggregate(TinyAHat(), history, ctx);
  // With l = 1, Eq. 5 reduces to C[:,0] (x) H; C initialized to 1.
  EXPECT_LT(out->value().MaxAbsDiff(history[0]->value()), 1e-5f);
}

TEST(WeightedAggregatorTest, GradientsFlowToContributionsAndTransforms) {
  Rng rng(3);
  auto a_hat = TinyAHat();
  WeightedAggregator agg(5, {4, 4, 4}, rng);
  auto history = MakeHistory(3, 5, 4, 4);
  Rng fwd_rng(5);
  nn::ForwardContext ctx{false, &fwd_rng};
  std::vector<ag::Variable> params = agg.Parameters();
  EXPECT_EQ(params.size(), 3u);  // C + two W(il)
  auto loss = [&] {
    ag::Variable out = agg.Aggregate(a_hat, history, ctx);
    return ag::Sum(ag::Mul(out, out));
  };
  EXPECT_LT(GradCheck(loss, params), 3e-2f);
}

TEST(WeightedAggregatorTest, SupportsFlexibleHiddenDims) {
  Rng rng(7);
  auto a_hat = TinyAHat();
  WeightedAggregator agg(5, {8, 6, 4}, rng);
  Rng gen(8);
  std::vector<ag::Variable> history = {
      ag::MakeParameter(Tensor::Normal(5, 8, 0, 1, gen)),
      ag::MakeParameter(Tensor::Normal(5, 6, 0, 1, gen)),
      ag::MakeParameter(Tensor::Normal(5, 4, 0, 1, gen))};
  nn::ForwardContext ctx{false, &rng};
  ag::Variable out = agg.Aggregate(a_hat, history, ctx);
  EXPECT_EQ(out->cols(), 4u);  // current layer's dim
}

TEST(MaxPoolingAggregatorTest, MaxOverCandidateTerms) {
  Rng rng(9);
  auto a_hat = TinyAHat();
  MaxPoolingAggregator agg({4, 4, 4}, rng);
  auto history = MakeHistory(3, 5, 4, 10);
  nn::ForwardContext ctx{false, &rng};
  ag::Variable out = agg.Aggregate(a_hat, history, ctx);
  // The output dominates the current layer coordinate-wise (the current
  // layer is always one of the max candidates, Eq. 5 special case).
  for (size_t r = 0; r < 5; ++r) {
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_GE(out->value()(r, c), history[2]->value()(r, c));
    }
  }
  // No contribution matrix C: only the cross-layer transforms W(il).
  EXPECT_EQ(agg.Parameters().size(), 2u);
}

TEST(MaxPoolingAggregatorTest, SingleEntryHistoryIsIdentity) {
  Rng rng(10);
  MaxPoolingAggregator agg({4}, rng);
  auto history = MakeHistory(1, 5, 4, 11);
  nn::ForwardContext ctx{false, &rng};
  ag::Variable out = agg.Aggregate(TinyAHat(), history, ctx);
  EXPECT_LT(out->value().MaxAbsDiff(history[0]->value()), 1e-6f);
}

TEST(StochasticAggregatorTest, EvalModeIsDeterministicExpectation) {
  Rng rng(11);
  ag::Variable p =
      ag::MakeParameter(Tensor::Normal(5, 3, 0.0f, 0.5f, rng));
  StochasticAggregator agg(p, 3, {4, 4, 4}, rng);
  auto history = MakeHistory(3, 5, 4, 12);
  Rng e1(1), e2(99);
  nn::ForwardContext ctx1{false, &e1}, ctx2{false, &e2};
  ag::Variable out1 = agg.Aggregate(TinyAHat(), history, ctx1);
  ag::Variable out2 = agg.Aggregate(TinyAHat(), history, ctx2);
  // Different RNGs, same result: eval path uses expectations.
  EXPECT_LT(out1->value().MaxAbsDiff(out2->value()), 1e-6f);
}

TEST(StochasticAggregatorTest, TrainingGatesAreBinaryEffects) {
  Rng rng(13);
  // Large positive P => probability ~1 for every layer => training
  // output equals the eval output.
  ag::Variable p = ag::MakeParameter(Tensor::Full(5, 3, 8.0f));
  StochasticAggregator agg(p, 3, {4, 4, 4}, rng);
  auto history = MakeHistory(3, 5, 4, 14);
  Rng tr(3), ev(4);
  nn::ForwardContext train_ctx{true, &tr}, eval_ctx{false, &ev};
  ag::Variable out_train = agg.Aggregate(TinyAHat(), history, train_ctx);
  ag::Variable out_eval = agg.Aggregate(TinyAHat(), history, eval_ctx);
  EXPECT_LT(out_train->value().MaxAbsDiff(out_eval->value()), 1e-5f);
}

TEST(StochasticAggregatorTest, GradientReachesP) {
  Rng rng(15);
  ag::Variable p =
      ag::MakeParameter(Tensor::Normal(5, 2, 0.0f, 0.3f, rng));
  StochasticAggregator agg(p, 2, {4, 4}, rng);
  auto history = MakeHistory(2, 5, 4, 16);
  Rng fwd(5);
  nn::ForwardContext ctx{true, &fwd};
  ag::Variable out = agg.Aggregate(TinyAHat(), history, ctx);
  ag::Backward(ag::Sum(ag::Mul(out, out)));
  EXPECT_FALSE(p->grad().empty());
  EXPECT_GT(p->grad().Norm(), 0.0f);
}

TEST(MeanAggregatorTest, UniformCombination) {
  Rng rng(17);
  MeanAggregator agg({4, 4}, rng);
  auto history = MakeHistory(2, 5, 4, 18);
  nn::ForwardContext ctx{false, &rng};
  ag::Variable out = agg.Aggregate(TinyAHat(), history, ctx);
  EXPECT_EQ(out->rows(), 5u);
  EXPECT_EQ(out->cols(), 4u);
  EXPECT_EQ(agg.Parameters().size(), 1u);
}

TEST(GcFmLayerTest, OutputShapeAndGradients) {
  Rng rng(19);
  GcFmLayer layer({4, 3}, /*num_classes=*/2, /*fm_rank=*/2, rng,
                  /*final_relu=*/false);
  auto a_hat = TinyAHat();
  Rng gen(20);
  std::vector<ag::Variable> hidden = {
      ag::MakeParameter(Tensor::Normal(5, 4, 0, 0.5, gen)),
      ag::MakeParameter(Tensor::Normal(5, 3, 0, 0.5, gen))};
  ag::Variable out = layer.Forward(a_hat, hidden);
  EXPECT_EQ(out->rows(), 5u);
  EXPECT_EQ(out->cols(), 2u);
  auto loss = [&] {
    ag::Variable o = layer.Forward(a_hat, hidden);
    return ag::Sum(ag::Mul(o, o));
  };
  EXPECT_LT(GradCheck(loss, layer.Parameters()), 5e-2f);
}

TEST(GcFmLayerTest, FinalReluClampsNegatives) {
  Rng rng(21);
  GcFmLayer layer({4}, 3, 2, rng, /*final_relu=*/true);
  Rng gen(22);
  std::vector<ag::Variable> hidden = {
      ag::MakeParameter(Tensor::Normal(5, 4, 0, 1.0, gen))};
  ag::Variable out = layer.Forward(TinyAHat(), hidden);
  EXPECT_GE(out->value().Min(), 0.0f);
}

// -- LasagneModel ------------------------------------------------------------

const Dataset& TestData() {
  static const Dataset& data = *new Dataset(LoadDataset("cora", 0.25, 9));
  return data;
}

LasagneConfig BaseLasagneConfig(AggregatorKind kind) {
  LasagneConfig config;
  config.aggregator = kind;
  config.depth = 4;
  config.hidden_dim = 12;
  config.dropout = 0.2f;
  config.fm_rank = 3;
  config.seed = 23;
  return config;
}

TEST(LasagneModelTest, ForwardShapesAllAggregators) {
  for (AggregatorKind kind :
       {AggregatorKind::kWeighted, AggregatorKind::kMaxPooling,
        AggregatorKind::kStochastic, AggregatorKind::kMean}) {
    LasagneModel model(TestData(), BaseLasagneConfig(kind));
    Rng rng(1);
    nn::ForwardContext ctx{false, &rng};
    ag::Variable logits = model.Forward(ctx);
    EXPECT_EQ(logits->rows(), TestData().num_nodes());
    EXPECT_EQ(logits->cols(), TestData().num_classes);
    EXPECT_TRUE(logits->value().AllFinite());
    EXPECT_EQ(model.hidden_states().size(), 3u);  // depth-1 hidden layers
  }
}

TEST(LasagneModelTest, AllBaseConvolutionsWork) {
  for (BaseConv base : {BaseConv::kGcn, BaseConv::kSgc, BaseConv::kGat}) {
    LasagneConfig config = BaseLasagneConfig(AggregatorKind::kStochastic);
    config.base = base;
    LasagneModel model(TestData(), config);
    Rng rng(2);
    nn::ForwardContext ctx{true, &rng};
    ag::Variable loss = model.TrainingLoss(ctx);
    EXPECT_TRUE(loss->value().AllFinite());
    ag::Backward(loss);
  }
}

TEST(LasagneModelTest, FlexibleHiddenDimensions) {
  LasagneConfig config = BaseLasagneConfig(AggregatorKind::kWeighted);
  config.depth = 4;
  config.hidden_dims = {16, 12, 8};  // the freedom ResGCN lacks
  LasagneModel model(TestData(), config);
  Rng rng(3);
  nn::ForwardContext ctx{false, &rng};
  ag::Variable logits = model.Forward(ctx);
  EXPECT_TRUE(logits->value().AllFinite());
  EXPECT_EQ(model.hidden_states()[0].cols(), 16u);
  EXPECT_EQ(model.hidden_states()[2].cols(), 8u);
}

TEST(LasagneModelTest, StochasticProbabilitiesExposedForAnalysis) {
  LasagneModel model(TestData(),
                     BaseLasagneConfig(AggregatorKind::kStochastic));
  Tensor probs = model.StochasticProbabilities();
  EXPECT_EQ(probs.rows(), TestData().num_nodes());
  EXPECT_EQ(probs.cols(), 3u);
  EXPECT_LE(probs.Max(), 1.0f + 1e-5f);
  EXPECT_GT(probs.Min(), 0.0f);
}

TEST(LasagneModelTest, WeightedContributionsExposed) {
  LasagneModel model(TestData(),
                     BaseLasagneConfig(AggregatorKind::kWeighted));
  Tensor c = model.WeightedContributions();
  EXPECT_EQ(c.rows(), TestData().num_nodes());
  EXPECT_EQ(c.cols(), 3u);
}

TEST(LasagneModelTest, NoGcfmAblationUsesPlainGcOutput) {
  LasagneConfig config = BaseLasagneConfig(AggregatorKind::kWeighted);
  config.use_gcfm = false;
  LasagneModel model(TestData(), config);
  Rng rng(4);
  nn::ForwardContext ctx{false, &rng};
  ag::Variable logits = model.Forward(ctx);
  EXPECT_TRUE(logits->value().AllFinite());
}

TEST(LasagneModelTest, InductiveRequiresMaxPooling) {
  Dataset inductive = LoadDataset("flickr", 0.12, 11);
  EXPECT_DEATH(LasagneModel(inductive,
                            BaseLasagneConfig(AggregatorKind::kWeighted)),
               "transductive");
  // Max pooling constructs and trains fine.
  LasagneModel model(inductive,
                     BaseLasagneConfig(AggregatorKind::kMaxPooling));
  Rng rng(5);
  nn::ForwardContext ctx{true, &rng};
  ag::Variable loss = model.TrainingLoss(ctx);
  EXPECT_TRUE(loss->value().AllFinite());
}

TEST(LasagneModelTest, DeepTenLayerForwardStaysFinite) {
  LasagneConfig config = BaseLasagneConfig(AggregatorKind::kStochastic);
  config.depth = 10;
  LasagneModel model(TestData(), config);
  Rng rng(6);
  nn::ForwardContext ctx{false, &rng};
  EXPECT_TRUE(model.Forward(ctx)->value().AllFinite());
}

TEST(AggregatorFactoryTest, NamesRoundTrip) {
  EXPECT_EQ(AggregatorKindName(AggregatorKind::kWeighted), "weighted");
  EXPECT_EQ(AggregatorKindName(AggregatorKind::kMaxPooling), "maxpool");
  EXPECT_EQ(AggregatorKindName(AggregatorKind::kStochastic), "stochastic");
  EXPECT_EQ(AggregatorKindName(AggregatorKind::kMean), "mean");
}

}  // namespace
}  // namespace lasagne
