// The single-pass fused edge-attention kernel (docs/KERNELS.md) and
// the blocked SpGEMM row merge: the fused eager path must be
// bitwise-identical to the raw GatherEdgeScores→[AddEdgeBias]→
// LeakyRelu→EdgeSoftmax→EdgeWeightedAggregate chain at 1/2/8 threads
// with observability on and off (GAT and ADSF end to end, plus the op
// across shape/structure edge cases), and the blocked Gustavson merge
// must reproduce the naive unblocked merge exactly — including the
// row_cap cut, whose tie-break must not depend on the order the merge
// discovered columns in.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/edge_ops.h"
#include "autograd/inference.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "models/model.h"
#include "nn/layers.h"
#include "obs/metrics.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace lasagne {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

/// Restores the fused-path toggle (and metrics) no matter how a test
/// exits.
class FusedToggleGuard {
 public:
  FusedToggleGuard() : saved_(ag::FusedEdgeAttentionEnabled()) {}
  ~FusedToggleGuard() {
    ag::SetFusedEdgeAttentionEnabled(saved_);
    obs::DisableMetrics();
  }

 private:
  bool saved_;
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": fused values differ from the raw op chain";
}

ModelConfig SmallConfig() {
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.4f;
  config.seed = 3;
  return config;
}

Tensor EagerLogits(Model& model) {
  Rng rng(9);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  return model.Forward(ctx)->value();
}

// -- Fused eager path vs raw chain, end to end ------------------------------

TEST(EdgeAttentionParityTest, FusedModelsMatchRawChainAcrossThreadsAndObs) {
  ThreadCountGuard thread_guard;
  FusedToggleGuard toggle_guard;
  Dataset data = LoadDataset("cora", 0.3, 17);
  // adsf routes a structural-fingerprint bias through the chain, so
  // both the biased and unbiased kernels are covered.
  for (const char* name : {"gat", "adsf"}) {
    std::unique_ptr<Model> model = MakeModel(name, data, SmallConfig());
    // Pure eager: the execution plan has its own parity suites.
    model->set_use_execution_plan(false);
    ag::SetFusedEdgeAttentionEnabled(false);
    const Tensor reference = EagerLogits(*model);
    ag::SetFusedEdgeAttentionEnabled(true);
    for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      SetNumThreads(threads);
      const std::string tag =
          std::string(name) + " @ " + std::to_string(threads) + " threads";
      ExpectBitwiseEqual(reference, EagerLogits(*model), tag);
      obs::EnableMetrics();
      ExpectBitwiseEqual(reference, EagerLogits(*model), tag + ", obs on");
      obs::DisableMetrics();
    }
  }
}

// -- Op-level parity across shapes and structures ---------------------------

/// Random destination-grouped structure with deliberately awkward
/// rows: some isolated, some single-edge, some high fan-in.
std::shared_ptr<const ag::EdgeStructure> RandomEdges(size_t num_nodes,
                                                     uint64_t seed) {
  Rng rng(seed);
  auto edges = std::make_shared<ag::EdgeStructure>();
  edges->num_nodes = num_nodes;
  edges->row_ptr.assign(num_nodes + 1, 0);
  std::vector<std::vector<uint32_t>> rows(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    const uint64_t fan = rng.UniformInt(5);  // 0..4, so ~1/5 isolated
    for (uint64_t k = 0; k < fan; ++k) {
      rows[i].push_back(static_cast<uint32_t>(rng.UniformInt(num_nodes)));
    }
    edges->row_ptr[i + 1] = edges->row_ptr[i] + rows[i].size();
  }
  for (size_t i = 0; i < num_nodes; ++i) {
    for (uint32_t s : rows[i]) edges->src.push_back(s);
  }
  return edges;
}

TEST(EdgeAttentionParityTest, OpMatchesRawChainOnAwkwardShapes) {
  ThreadCountGuard thread_guard;
  ag::NoGradGuard inference;
  const size_t n = 37;
  auto edges = RandomEdges(n, 123);
  Rng rng(7);
  ag::Variable dst =
      ag::MakeConstant(Tensor::Normal(n, 1, 0.0f, 0.8f, rng));
  ag::Variable src =
      ag::MakeConstant(Tensor::Normal(n, 1, 0.0f, 0.8f, rng));
  auto bias = std::make_shared<std::vector<float>>();
  for (size_t e = 0; e < edges->num_edges(); ++e) {
    bias->push_back(static_cast<float>(rng.Normal(0.0, 0.5)));
  }
  // Widths straddling the vector width and the kColTile boundary.
  for (const size_t d : {size_t{1}, size_t{7}, size_t{15}, size_t{16},
                         size_t{17}, size_t{33}}) {
    ag::Variable features =
        ag::MakeConstant(Tensor::Normal(n, d, 0.0f, 0.6f, rng));
    for (const bool with_bias : {false, true}) {
      const auto chain_bias = with_bias ? bias : nullptr;
      ag::Variable e = ag::GatherEdgeScores(dst, src, edges);
      if (chain_bias != nullptr) e = ag::AddEdgeBias(e, chain_bias);
      e = ag::LeakyRelu(e, 0.2f);
      const Tensor reference =
          ag::EdgeWeightedAggregate(ag::EdgeSoftmax(e, edges), features,
                                    edges)
              ->value();
      for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        SetNumThreads(threads);
        const Tensor fused =
            ag::EdgeAttention(dst, src, features, edges, 0.2f, chain_bias)
                ->value();
        ExpectBitwiseEqual(reference, fused,
                           "d=" + std::to_string(d) + " bias=" +
                               std::to_string(with_bias) + " threads=" +
                               std::to_string(threads));
      }
    }
  }
}

// -- Blocked SpGEMM vs the naive unblocked merge ----------------------------

CsrMatrix RandomCsr(size_t rows, size_t cols, size_t nnz_per_row,
                    uint64_t seed, bool tie_values) {
  Rng rng(seed);
  std::vector<Triplet> triplets;
  for (size_t r = 0; r < rows; ++r) {
    const uint64_t count = rng.UniformInt(nnz_per_row + 1);
    for (uint64_t k = 0; k < count; ++k) {
      const uint32_t c = static_cast<uint32_t>(rng.UniformInt(cols));
      // tie_values makes every |product| identical so the row_cap cut
      // is decided purely by the tie-break.
      const float v = tie_values
                          ? (rng.Uniform() < 0.5 ? 1.0f : -1.0f)
                          : static_cast<float>(rng.Normal(0.0, 1.0));
      triplets.push_back({static_cast<uint32_t>(r), c, v});
    }
  }
  return CsrMatrix::FromTriplets(rows, cols, std::move(triplets));
}

/// The unblocked Gustavson merge, copied from the pre-blocking
/// CsrMatrix::Multiply — discovery order is first-touch in ascending
/// (A-entry, B-entry) order, which differs from the blocked kernel's
/// block-major order; the cap comparator must make that difference
/// unobservable.
CsrMatrix NaiveSpGemm(const CsrMatrix& a, const CsrMatrix& b,
                      float prune_tolerance, size_t row_cap) {
  std::vector<Triplet> triplets;
  std::vector<float> accumulator(b.cols(), 0.0f);
  std::vector<uint8_t> is_touched(b.cols(), 0);
  std::vector<uint32_t> touched;
  for (size_t r = 0; r < a.rows(); ++r) {
    touched.clear();
    for (size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const uint32_t mid = a.col_idx()[k];
      const float v = a.values()[k];
      for (size_t k2 = b.row_ptr()[mid]; k2 < b.row_ptr()[mid + 1]; ++k2) {
        const uint32_t c = b.col_idx()[k2];
        if (!is_touched[c]) {
          is_touched[c] = 1;
          touched.push_back(c);
        }
        accumulator[c] += v * b.values()[k2];
      }
    }
    if (row_cap > 0 && touched.size() > row_cap) {
      std::nth_element(touched.begin(), touched.begin() + row_cap,
                       touched.end(), [&](uint32_t x, uint32_t y) {
                         const float fx = std::fabs(accumulator[x]);
                         const float fy = std::fabs(accumulator[y]);
                         if (fx != fy) return fx > fy;
                         return x < y;
                       });
      for (size_t i = row_cap; i < touched.size(); ++i) {
        accumulator[touched[i]] = 0.0f;
        is_touched[touched[i]] = 0;
      }
      touched.resize(row_cap);
    }
    for (uint32_t c : touched) {
      const float v = accumulator[c];
      accumulator[c] = 0.0f;
      is_touched[c] = 0;
      if (std::fabs(v) > prune_tolerance) {
        triplets.push_back({static_cast<uint32_t>(r), c, v});
      }
    }
  }
  return CsrMatrix::FromTriplets(a.rows(), b.cols(), std::move(triplets));
}

void ExpectSameCsr(const CsrMatrix& a, const CsrMatrix& b,
                   const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  EXPECT_EQ(a.row_ptr(), b.row_ptr()) << what;
  EXPECT_EQ(a.col_idx(), b.col_idx()) << what;
  // Bitwise, not approximate: the blocked merge keeps the exact
  // per-element accumulation order.
  EXPECT_EQ(0, std::memcmp(a.values().data(), b.values().data(),
                           a.nnz() * sizeof(float)))
      << what;
}

TEST(SpGemmBlockedTest, MatchesNaiveMergeOnAwkwardShapes) {
  // Inner/outer dims straddling kSpGemmColBlock (2048): below, at, one
  // past, and multi-block, plus degenerate 1-column.
  const size_t widths[] = {1, 5, 127, 2047, 2048, 2049, 4097};
  uint64_t seed = 1000;
  for (const size_t b_cols : widths) {
    CsrMatrix a = RandomCsr(40, 60, 6, seed++, /*tie_values=*/false);
    CsrMatrix b = RandomCsr(60, b_cols, 12, seed++, /*tie_values=*/false);
    ExpectSameCsr(NaiveSpGemm(a, b, 0.0f, 0), a.Multiply(b, 0.0f, 0),
                  "uncapped b_cols=" + std::to_string(b_cols));
    ExpectSameCsr(NaiveSpGemm(a, b, 1e-4f, 8), a.Multiply(b, 1e-4f, 8),
                  "capped b_cols=" + std::to_string(b_cols));
  }
}

TEST(SpGemmBlockedTest, RowCapTieBreakIsDiscoveryOrderIndependent) {
  // Every product magnitude is exactly 1, so with row_cap well under
  // the touched count the kept set is decided entirely by the
  // tie-break. The naive merge discovers columns in a different order
  // than the blocked merge; identical results prove the cut depends
  // only on (|value|, column id).
  CsrMatrix a = RandomCsr(20, 30, 4, 77, /*tie_values=*/true);
  // One entry per B row keeps every output a single product (no
  // cancellation), preserving the all-ties property.
  std::vector<Triplet> b_triplets;
  Rng rng(78);
  for (uint32_t r = 0; r < 30; ++r) {
    b_triplets.push_back(
        {r, static_cast<uint32_t>(rng.UniformInt(4099)), 1.0f});
  }
  CsrMatrix b = CsrMatrix::FromTriplets(30, 4099, std::move(b_triplets));
  ExpectSameCsr(NaiveSpGemm(a, b, 0.0f, 2), a.Multiply(b, 0.0f, 2),
                "all-ties cap");
  // And the capped result must keep the lowest column ids among ties.
  CsrMatrix capped = a.Multiply(b, 0.0f, 2);
  CsrMatrix full = a.Multiply(b, 0.0f, 0);
  for (size_t r = 0; r < capped.rows(); ++r) {
    const size_t kept = capped.row_ptr()[r + 1] - capped.row_ptr()[r];
    const size_t avail = full.row_ptr()[r + 1] - full.row_ptr()[r];
    if (avail <= 2) continue;
    ASSERT_EQ(kept, 2u) << "row " << r;
    // CSR columns are sorted, so the kept pair must be the first two
    // of the uncapped row.
    for (size_t i = 0; i < kept; ++i) {
      EXPECT_EQ(capped.col_idx()[capped.row_ptr()[r] + i],
                full.col_idx()[full.row_ptr()[r] + i])
          << "row " << r;
    }
  }
}

}  // namespace
}  // namespace lasagne
