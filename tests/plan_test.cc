// Static execution-plan compiler (infer::ExecutionPlan): trace capture,
// bitwise plan-vs-eager parity across models and thread counts, the
// pre-reserved workspace serving warm runs without pool traffic, and the
// eager fallback for models the compiler cannot plan.
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "autograd/forward_trace.h"
#include "autograd/inference.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "infer/plan.h"
#include "models/model.h"
#include "obs/metrics.h"
#include "tensor/rng.h"

// The pool intentionally bypasses its cache under AddressSanitizer so
// use-after-free stays visible; the workspace (and therefore the
// zero-miss steady state) is compiled out with it.
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_CACHED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_CACHED 0
#endif
#endif
#ifndef LASAGNE_POOL_CACHED
#define LASAGNE_POOL_CACHED 1
#endif

namespace lasagne {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() = default;
  ~ThreadCountGuard() { SetNumThreads(0); }
};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": plan-interpreted values differ from the eager forward";
}

ModelConfig SmallConfig(uint64_t seed = 3) {
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.4f;
  config.seed = seed;
  return config;
}

/// Eval-mode eager reference logits (Forward never uses the plan).
Tensor EagerLogits(Model& model) {
  Rng rng(9);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  return model.Forward(ctx)->value();
}

Tensor PlanLogits(Model& model) {
  Rng rng(9);
  nn::ForwardContext ctx{/*training=*/false, &rng};
  return model.Predict(ctx);
}

// -- Bitwise parity --------------------------------------------------------

TEST(PlanParityTest, PlanMatchesEagerBitwiseAcrossModelsAndThreads) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.3, 17);
  // One representative per architecture family: plain spectral conv,
  // attention (edge ops), neighbor aggregation, and the paper's
  // node-aware multi-layer model with GC-FM units.
  const std::vector<std::string> names = {"gcn", "gat", "graphsage",
                                          "lasagne-weighted"};
  for (const std::string& name : names) {
    std::unique_ptr<Model> model = MakeModel(name, data, SmallConfig());
    for (size_t threads : {1u, 2u, 8u}) {
      SetNumThreads(threads);
      const Tensor reference = EagerLogits(*model);

      Rng rng(9);
      nn::ForwardContext ctx{/*training=*/false, &rng};
      ag::ResetTapeStats();
      Tensor predicted = model->Predict(ctx);
      // These four models must actually be plan-compiled, not silently
      // served by the eager fallback.
      ASSERT_NE(model->execution_plan(), nullptr)
          << name << ": " << model->plan_status().ToString();
      EXPECT_TRUE(model->plan_status().ok()) << name;
      // Plan replay builds no autograd nodes at all.
      ag::TapeStats stats = ag::GetTapeStats();
      EXPECT_EQ(stats.nodes_created, 0u) << name;
      EXPECT_EQ(stats.closures_retained, 0u) << name;
      EXPECT_EQ(stats.parent_links, 0u) << name;
      ExpectBitwiseEqual(reference, predicted,
                         name + " @ " + std::to_string(threads) +
                             " threads (cold)");
      // Warm run: the finalized workspace serves intermediates.
      ExpectBitwiseEqual(reference, PlanLogits(*model),
                         name + " @ " + std::to_string(threads) +
                             " threads (warm)");
    }
  }
}

TEST(PlanParityTest, ParityUnaffectedByObservability) {
  ThreadCountGuard guard;
  Dataset data = LoadDataset("cora", 0.25, 19);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  SetNumThreads(2);

  obs::DisableMetrics();
  const Tensor reference = EagerLogits(*model);
  Tensor plain = PlanLogits(*model);
  ASSERT_NE(model->execution_plan(), nullptr)
      << model->plan_status().ToString();

  obs::EnableMetrics();
  Tensor instrumented = PlanLogits(*model);
  obs::DisableMetrics();

  ExpectBitwiseEqual(reference, plain, "plan with metrics disabled");
  ExpectBitwiseEqual(reference, instrumented, "plan with metrics enabled");
}

TEST(PlanParityTest, AllKnownModelsPredictMatchesForward) {
  // Safety net over the whole zoo: whether a model plan-compiles or
  // falls back to the eager path, Predict must stay bitwise identical
  // to Forward.
  Dataset data = LoadDataset("cora", 0.3, 23);
  for (const std::string& name : KnownModelNames()) {
    std::unique_ptr<Model> model = MakeModel(name, data, SmallConfig());
    const Tensor reference = EagerLogits(*model);
    ExpectBitwiseEqual(reference, PlanLogits(*model), name);
    // A compiled plan implies an OK status and vice versa.
    EXPECT_EQ(model->execution_plan() != nullptr, model->plan_status().ok())
        << name << ": " << model->plan_status().ToString();
  }
}

TEST(PlanParityTest, InvalidateForcesRecompile) {
  Dataset data = LoadDataset("cora", 0.2, 29);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  const Tensor reference = EagerLogits(*model);
  ExpectBitwiseEqual(reference, PlanLogits(*model), "initial plan");
  const infer::ExecutionPlan* first = model->execution_plan();
  ASSERT_NE(first, nullptr);

  model->InvalidateExecutionPlan();
  EXPECT_EQ(model->execution_plan(), nullptr);
  ExpectBitwiseEqual(reference, PlanLogits(*model), "recompiled plan");
  EXPECT_NE(model->execution_plan(), nullptr);
}

// -- Workspace behavior ----------------------------------------------------

#if LASAGNE_POOL_CACHED

TEST(PlanWorkspaceTest, WarmRunsTouchNoGlobalPool) {
  Dataset data = LoadDataset("cora", 0.3, 31);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());

  // First Predict compiles (sizing run allocates through the global
  // pool); second run settles the freelist for the output copy.
  (void)PlanLogits(*model);
  (void)PlanLogits(*model);
  const infer::ExecutionPlan* plan = model->execution_plan();
  ASSERT_NE(plan, nullptr) << model->plan_status().ToString();
  EXPECT_GT(plan->info().steps, 0u);
  EXPECT_GT(plan->info().workspace_bytes, 0u);

  const BufferPool::ThreadStats before = BufferPool::GetThreadStats();
  (void)PlanLogits(*model);
  const BufferPool::ThreadStats after = BufferPool::GetThreadStats();
  // Zero misses: every intermediate is served by the pre-reserved
  // workspace slab, and the only global-pool touch (the returned
  // output copy) reuses a warmed freelist bucket.
  EXPECT_EQ(after.misses - before.misses, 0u);
  EXPECT_EQ(plan->overflow_acquires(), 0u);
}

#endif  // LASAGNE_POOL_CACHED

TEST(PlanWorkspaceTest, PlanSurvivesInPlaceParameterUpdates) {
  Dataset data = LoadDataset("cora", 0.25, 37);
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  const Tensor before = PlanLogits(*model);
  ASSERT_NE(model->execution_plan(), nullptr)
      << model->plan_status().ToString();

  // An in-place update (what an optimizer step or checkpoint restore
  // does) must flow into the next Run without recompiling: leaf slots
  // are bound by reference to the model's parameter nodes.
  std::vector<ag::Variable> params = model->Parameters();
  ASSERT_FALSE(params.empty());
  Tensor& w = params[0]->mutable_value();
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] *= 1.5f;

  const infer::ExecutionPlan* plan = model->execution_plan();
  const Tensor reference = EagerLogits(*model);
  const Tensor after = PlanLogits(*model);
  EXPECT_EQ(model->execution_plan(), plan) << "plan was recompiled";
  ExpectBitwiseEqual(reference, after, "plan after parameter update");
  EXPECT_NE(0, std::memcmp(before.data(), after.data(),
                           before.size() * sizeof(float)))
      << "parameter update did not change the logits";
}

// -- Eager fallback --------------------------------------------------------

/// Forward ends in a loss op, which deliberately has no replay closure:
/// the trace comes back incomplete and Predict must stay on the eager
/// path, permanently and correctly.
class LossRootModel : public Model {
 public:
  explicit LossRootModel(const Dataset& data)
      : Model("loss-root", data) {
    Rng rng(5);
    features_ = ag::MakeConstant(data.features);
    weight_ = ag::MakeParameter(Tensor::GlorotUniform(
        data.feature_dim(), data.num_classes, rng));
  }

  ag::Variable Forward(const nn::ForwardContext&) override {
    ag::Variable logits = ag::MatMul(features_, weight_);
    return ag::SoftmaxCrossEntropy(logits, data_.labels, data_.train_mask);
  }

  std::vector<ag::Variable> Parameters() const override { return {weight_}; }

 private:
  ag::Variable features_;
  ag::Variable weight_;
};

/// Forward returns a node created at construction time — nothing for
/// the trace to replay.
class CachedRootModel : public Model {
 public:
  explicit CachedRootModel(const Dataset& data)
      : Model("cached-root", data) {
    cached_ = ag::MakeConstant(Tensor::Zeros(data.num_nodes(),
                                             data.num_classes));
  }

  ag::Variable Forward(const nn::ForwardContext&) override { return cached_; }

  std::vector<ag::Variable> Parameters() const override { return {}; }

 private:
  ag::Variable cached_;
};

TEST(PlanFallbackTest, UntracedOpFallsBackToEager) {
  Dataset data = LoadDataset("cora", 0.2, 41);
  LossRootModel model(data);
  const Tensor reference = EagerLogits(model);
  ExpectBitwiseEqual(reference, PlanLogits(model), "loss-root fallback");
  EXPECT_EQ(model.execution_plan(), nullptr);
  EXPECT_EQ(model.plan_status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(model.plan_status().ToString().find("SoftmaxCrossEntropy"),
            std::string::npos)
      << model.plan_status().ToString();
  // The compile attempt is remembered, not repeated: the status object
  // is stable across further Predicts.
  (void)PlanLogits(model);
  EXPECT_EQ(model.plan_status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanFallbackTest, UntracedRootFallsBackToEager) {
  Dataset data = LoadDataset("cora", 0.2, 43);
  CachedRootModel model(data);
  const Tensor reference = EagerLogits(model);
  ExpectBitwiseEqual(reference, PlanLogits(model), "cached-root fallback");
  EXPECT_EQ(model.execution_plan(), nullptr);
  EXPECT_EQ(model.plan_status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlanFallbackTest, OptOutFlagsForceEager) {
  Dataset data = LoadDataset("cora", 0.2, 47);

  // Instance opt-out: never compiles.
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallConfig());
  model->set_use_execution_plan(false);
  const Tensor reference = EagerLogits(*model);
  ExpectBitwiseEqual(reference, PlanLogits(*model), "instance opt-out");
  EXPECT_EQ(model->execution_plan(), nullptr);
  EXPECT_TRUE(model->plan_status().ok());

  // Process default: models built while disabled start opted out.
  const bool saved = Model::ExecutionPlanDefault();
  Model::SetExecutionPlanDefault(false);
  std::unique_ptr<Model> eager_model = MakeModel("gcn", data, SmallConfig());
  Model::SetExecutionPlanDefault(saved);
  EXPECT_FALSE(eager_model->use_execution_plan());
  ExpectBitwiseEqual(EagerLogits(*eager_model), PlanLogits(*eager_model),
                     "process-default opt-out");
  EXPECT_EQ(eager_model->execution_plan(), nullptr);
}

// -- Trace capture ---------------------------------------------------------

TEST(PlanTraceTest, TraceRecordsEvalOpsInExecutionOrder) {
  Rng rng(1);
  ag::Variable w = ag::MakeParameter(Tensor::Normal(4, 4, 0.0f, 1.0f, rng));
  ag::Variable x = ag::MakeConstant(Tensor::Normal(4, 4, 0.0f, 1.0f, rng));

  ag::NoGradGuard guard;
  ag::ForwardTrace trace;
  ag::Variable y = ag::Relu(ag::MatMul(x, w));
  EXPECT_TRUE(trace.complete());
  EXPECT_EQ(trace.untraced_ops(), 0u);
  EXPECT_EQ(trace.first_untraced_op(), "");
  ASSERT_EQ(trace.records().size(), 2u);
  EXPECT_STREQ(trace.records()[0].op_name, "MatMul");
  EXPECT_STREQ(trace.records()[1].op_name, "Relu");
  EXPECT_EQ(trace.records()[1].output.get(), y.get());
  EXPECT_EQ(trace.records()[1].inputs.size(), 1u);
  EXPECT_EQ(trace.records()[1].inputs[0].get(),
            trace.records()[0].output.get());
}

TEST(PlanTraceTest, LossOpLeavesTraceIncomplete) {
  Rng rng(2);
  ag::Variable logits =
      ag::MakeConstant(Tensor::Normal(6, 3, 0.0f, 1.0f, rng));
  const std::vector<int32_t> labels = {0, 1, 2, 0, 1, 2};
  const std::vector<float> mask(6, 1.0f);

  ag::NoGradGuard guard;
  ag::ForwardTrace trace;
  (void)ag::SoftmaxCrossEntropy(logits, labels, mask);
  EXPECT_FALSE(trace.complete());
  EXPECT_GE(trace.untraced_ops(), 1u);
  EXPECT_EQ(trace.first_untraced_op(), "SoftmaxCrossEntropy");
}

TEST(PlanTraceTest, TraceRequiresNoGradGuard) {
  EXPECT_DEATH(ag::ForwardTrace trace, "NoGradGuard");
}

TEST(PlanTraceTest, NestedTraceShadowsOuter) {
  Rng rng(3);
  ag::Variable x = ag::MakeConstant(Tensor::Normal(4, 4, 0.0f, 1.0f, rng));

  ag::NoGradGuard guard;
  ag::ForwardTrace outer;
  (void)ag::Relu(x);
  {
    ag::ForwardTrace inner;
    (void)ag::Relu(x);
    (void)ag::Relu(x);
    EXPECT_EQ(inner.records().size(), 2u);
  }
  (void)ag::Relu(x);
  EXPECT_TRUE(outer.complete());
  EXPECT_EQ(outer.records().size(), 2u);  // inner ops not double-counted
}

}  // namespace
}  // namespace lasagne
