// Tests for the size-bucketed tensor buffer pool (docs/KERNELS.md):
// bucket rounding, alignment, checkout reuse, concurrent acquire under
// the thread pool, and the end goal — training reuses its buffers
// instead of re-allocating every epoch.

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "models/model.h"
#include "tensor/tensor.h"
#include "train/trainer.h"

// The pool intentionally bypasses its cache under AddressSanitizer so
// use-after-free stays visible; reuse/hit assertions only hold in
// normal builds.
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_CACHED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_CACHED 0
#endif
#endif
#ifndef LASAGNE_POOL_CACHED
#define LASAGNE_POOL_CACHED 1
#endif

namespace lasagne {
namespace {

TEST(BufferPoolTest, BucketCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BufferPool::BucketCapacity(0), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(1), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(64), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(65), 128u);
  EXPECT_EQ(BufferPool::BucketCapacity(1000), 1024u);
  EXPECT_EQ(BufferPool::BucketCapacity(1 << 20), 1u << 20);
  EXPECT_EQ(BufferPool::BucketCapacity((1 << 20) + 1), 1u << 21);
}

TEST(BufferPoolTest, AcquireReturnsAlignedBuffers) {
  BufferPool& pool = BufferPool::Global();
  for (size_t count : {1u, 63u, 64u, 1000u, 4096u}) {
    float* p = pool.Acquire(count);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u)
        << "count=" << count;
    // Must be writable over the whole bucket capacity.
    for (size_t i = 0; i < count; ++i) p[i] = static_cast<float>(i);
    pool.Release(p, count);
  }
}

TEST(BufferPoolTest, AcquireZeroReturnsNull) {
  BufferPool& pool = BufferPool::Global();
  EXPECT_EQ(pool.Acquire(0), nullptr);
  pool.Release(nullptr, 0);  // no-op
}

#if LASAGNE_POOL_CACHED

TEST(BufferPoolTest, ReleaseThenAcquireReusesBuffer) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  float* p = pool.Acquire(100);
  pool.Release(p, 100);
  // Same bucket (128 floats) -> must hand back the cached buffer.
  float* q = pool.Acquire(128);
  EXPECT_EQ(p, q);
  pool.Release(q, 128);
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(BufferPoolTest, DistinctBucketsDoNotShareBuffers) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  float* small = pool.Acquire(64);
  pool.Release(small, 64);
  // A larger request must not receive the smaller cached buffer.
  float* large = pool.Acquire(4096);
  EXPECT_NE(small, large);
  pool.Release(large, 4096);
  EXPECT_EQ(pool.GetStats().hits, 0u);
}

TEST(BufferPoolTest, CachedBytesLimitEvictsInsteadOfCaching) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  const uint64_t old_limit = pool.cached_bytes_limit();
  pool.SetCachedBytesLimit(0);
  float* p = pool.Acquire(256);
  pool.Release(p, 256);
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.cached_bytes, 0u);
  // Nothing cached -> next acquire is a miss again.
  float* q = pool.Acquire(256);
  EXPECT_EQ(pool.GetStats().hits, 0u);
  pool.SetCachedBytesLimit(old_limit);
  pool.Release(q, 256);
}

TEST(BufferPoolTest, TensorStorageRoundTripsThroughPool) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  { Tensor t(32, 32); }  // 1024 floats, released on destruction
  { Tensor t(32, 32); }  // same bucket -> served from the freelist
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(BufferPoolTest, ThreadStatsAreThreadLocal) {
  // Per-thread hit/miss counters are the attribution primitive for
  // serving stats: traffic on one thread must never show up in
  // another thread's delta.
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  const BufferPool::ThreadStats main_before = BufferPool::GetThreadStats();
  std::thread worker([&] {
    // Fresh thread: counters start at zero. After a trim the first
    // acquire misses; the release caches it; the second acquire hits.
    float* p = pool.Acquire(256);
    pool.Release(p, 256);
    float* q = pool.Acquire(256);
    pool.Release(q, 256);
    const BufferPool::ThreadStats s = BufferPool::GetThreadStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
  });
  worker.join();
  const BufferPool::ThreadStats main_after = BufferPool::GetThreadStats();
  EXPECT_EQ(main_after.hits - main_before.hits, 0u);
  EXPECT_EQ(main_after.misses - main_before.misses, 0u);
  // The main thread's own traffic still counts.
  float* p = pool.Acquire(256);
  pool.Release(p, 256);
  const BufferPool::ThreadStats own = BufferPool::GetThreadStats();
  EXPECT_EQ((own.hits + own.misses) - (main_before.hits + main_before.misses),
            1u);
}

TEST(BufferPoolTest, WorkspaceRecordsFinalizesAndServesWithoutPoolTraffic) {
  BufferPool& pool = BufferPool::Global();
  BufferPool::Workspace ws;
  // Recording phase: the global pool serves every request while the
  // workspace tracks the per-bucket high-water working set (two live
  // 64-float chunks + one 4096-float chunk here).
  {
    BufferPool::WorkspaceScope scope(&ws);
    float* a = pool.Acquire(64);
    float* b = pool.Acquire(33);  // same 64-float bucket, live with a
    float* c = pool.Acquire(4096);
    pool.Release(b, 33);
    pool.Release(a, 64);
    pool.Release(c, 4096);
  }
  EXPECT_FALSE(ws.finalized());
  EXPECT_EQ(ws.reserved_bytes(), 0u);
  ws.Finalize();
  EXPECT_TRUE(ws.finalized());
  EXPECT_EQ(ws.reserved_bytes(), (64 + 64 + 4096) * sizeof(float));
  ws.Finalize();  // idempotent
  EXPECT_EQ(ws.reserved_bytes(), (64 + 64 + 4096) * sizeof(float));

  // Finalized phase: the same working set is served entirely from the
  // slab — the thread's pool counters do not move.
  const BufferPool::ThreadStats before = BufferPool::GetThreadStats();
  {
    BufferPool::WorkspaceScope scope(&ws);
    float* a = pool.Acquire(64);
    float* b = pool.Acquire(64);
    float* c = pool.Acquire(4000);  // rounds into the 4096 bucket
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_NE(a, b);
    a[0] = b[0] = c[0] = 1.0f;  // chunks are writable
    pool.Release(a, 64);
    pool.Release(b, 64);
    pool.Release(c, 4000);
  }
  const BufferPool::ThreadStats after = BufferPool::GetThreadStats();
  EXPECT_EQ(after.hits - before.hits, 0u);
  EXPECT_EQ(after.misses - before.misses, 0u);
  EXPECT_EQ(ws.overflow_acquires(), 0u);

  // Exceeding the recorded working set overflows to the global pool
  // (counted, attributed to this thread) instead of failing.
  {
    BufferPool::WorkspaceScope scope(&ws);
    float* a = pool.Acquire(64);
    float* b = pool.Acquire(64);
    float* over = pool.Acquire(64);  // third live 64-float chunk
    ASSERT_NE(over, nullptr);
    pool.Release(over, 64);
    pool.Release(b, 64);
    pool.Release(a, 64);
  }
  EXPECT_EQ(ws.overflow_acquires(), 1u);
  const BufferPool::ThreadStats overflowed = BufferPool::GetThreadStats();
  EXPECT_EQ((overflowed.hits + overflowed.misses) -
                (after.hits + after.misses),
            1u);
}

#endif  // LASAGNE_POOL_CACHED

TEST(BufferPoolTest, ConcurrentCheckoutYieldsDisjointBuffers) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  SetNumThreads(8);
  constexpr size_t kTasks = 256;
  std::vector<float*> held(kTasks, nullptr);
  // Every task checks a buffer out, stamps it, verifies the stamp
  // (catching handed-out-twice bugs), then returns it.
  ParallelFor(0, kTasks, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* p = pool.Acquire(512);
      held[i] = p;
      const float stamp = static_cast<float>(i) + 0.5f;
      for (size_t j = 0; j < 512; ++j) p[j] = stamp;
      for (size_t j = 0; j < 512; ++j) {
        ASSERT_EQ(p[j], stamp) << "buffer shared between tasks";
      }
    }
  });
  // All buffers were held simultaneously: pairwise distinct.
  std::set<float*> unique(held.begin(), held.end());
  EXPECT_EQ(unique.size(), kTasks);
  for (size_t i = 0; i < kTasks; ++i) pool.Release(held[i], 512);
  SetNumThreads(0);
}

#if LASAGNE_POOL_CACHED

TEST(BufferPoolTest, TrainingEpochMissesCollapseOnceWarm) {
  // The point of the pool: after the first epoch has populated the
  // buckets, training's per-epoch allocations become freelist hits.
  // Cold run vs identically-shaped warm run must differ by >= 10x in
  // miss count.
  Dataset data = LoadDataset("cora", 0.3, 21);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.seed = 5;
  TrainOptions options;
  options.max_epochs = 1;
  options.patience = 1;
  options.seed = 6;
  BufferPool& pool = BufferPool::Global();
  auto run_one_epoch = [&] {
    std::unique_ptr<Model> model = MakeModel("gcn", data, config);
    TrainModel(*model, options);
  };
  pool.Trim();
  run_one_epoch();  // prime shapes without counting model-setup noise
  pool.ResetStats();
  run_one_epoch();
  const uint64_t warm_misses = pool.GetStats().misses;
  const uint64_t warm_hits = pool.GetStats().hits;
  pool.Trim();  // empty every freelist -> cold start
  pool.ResetStats();
  run_one_epoch();
  const uint64_t cold_misses = pool.GetStats().misses;
  EXPECT_GT(warm_hits, 0u);
  EXPECT_GE(cold_misses, 10 * std::max<uint64_t>(warm_misses, 1));
}

#endif  // LASAGNE_POOL_CACHED

}  // namespace
}  // namespace lasagne
