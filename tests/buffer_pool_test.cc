// Tests for the size-bucketed tensor buffer pool (docs/KERNELS.md):
// bucket rounding, alignment, checkout reuse, concurrent acquire under
// the thread pool, and the end goal — training reuses its buffers
// instead of re-allocating every epoch.

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "models/model.h"
#include "tensor/tensor.h"
#include "train/trainer.h"

// The pool intentionally bypasses its cache under AddressSanitizer so
// use-after-free stays visible; reuse/hit assertions only hold in
// normal builds.
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_CACHED 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_CACHED 0
#endif
#endif
#ifndef LASAGNE_POOL_CACHED
#define LASAGNE_POOL_CACHED 1
#endif

namespace lasagne {
namespace {

TEST(BufferPoolTest, BucketCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BufferPool::BucketCapacity(0), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(1), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(64), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(65), 128u);
  EXPECT_EQ(BufferPool::BucketCapacity(1000), 1024u);
  EXPECT_EQ(BufferPool::BucketCapacity(1 << 20), 1u << 20);
  EXPECT_EQ(BufferPool::BucketCapacity((1 << 20) + 1), 1u << 21);
}

TEST(BufferPoolTest, AcquireReturnsAlignedBuffers) {
  BufferPool& pool = BufferPool::Global();
  for (size_t count : {1u, 63u, 64u, 1000u, 4096u}) {
    float* p = pool.Acquire(count);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u)
        << "count=" << count;
    // Must be writable over the whole bucket capacity.
    for (size_t i = 0; i < count; ++i) p[i] = static_cast<float>(i);
    pool.Release(p, count);
  }
}

TEST(BufferPoolTest, AcquireZeroReturnsNull) {
  BufferPool& pool = BufferPool::Global();
  EXPECT_EQ(pool.Acquire(0), nullptr);
  pool.Release(nullptr, 0);  // no-op
}

#if LASAGNE_POOL_CACHED

TEST(BufferPoolTest, ReleaseThenAcquireReusesBuffer) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  float* p = pool.Acquire(100);
  pool.Release(p, 100);
  // Same bucket (128 floats) -> must hand back the cached buffer.
  float* q = pool.Acquire(128);
  EXPECT_EQ(p, q);
  pool.Release(q, 128);
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(BufferPoolTest, DistinctBucketsDoNotShareBuffers) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  float* small = pool.Acquire(64);
  pool.Release(small, 64);
  // A larger request must not receive the smaller cached buffer.
  float* large = pool.Acquire(4096);
  EXPECT_NE(small, large);
  pool.Release(large, 4096);
  EXPECT_EQ(pool.GetStats().hits, 0u);
}

TEST(BufferPoolTest, CachedBytesLimitEvictsInsteadOfCaching) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  // Delta-based: Trim() frees the depot and this thread's magazine
  // eagerly, but other (idle) threads' magazines drain lazily, so the
  // residue is whatever they still hold — constant while they sleep.
  const uint64_t base = pool.GetStats().cached_bytes;
  const uint64_t old_limit = pool.cached_bytes_limit();
  pool.SetCachedBytesLimit(0);
  float* p = pool.Acquire(256);
  pool.Release(p, 256);
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.cached_bytes, base);  // the evicted release cached nothing
  // Nothing cached -> next acquire is a miss again.
  float* q = pool.Acquire(256);
  EXPECT_EQ(pool.GetStats().hits, 0u);
  pool.SetCachedBytesLimit(old_limit);
  pool.Release(q, 256);
}

TEST(BufferPoolTest, TensorStorageRoundTripsThroughPool) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  pool.ResetStats();
  { Tensor t(32, 32); }  // 1024 floats, released on destruction
  { Tensor t(32, 32); }  // same bucket -> served from the freelist
  const BufferPool::Stats stats = pool.GetStats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(BufferPoolTest, ThreadStatsAreThreadLocal) {
  // Per-thread hit/miss counters are the attribution primitive for
  // serving stats: traffic on one thread must never show up in
  // another thread's delta.
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  const BufferPool::ThreadStats main_before = BufferPool::GetThreadStats();
  std::thread worker([&] {
    // Fresh thread: counters start at zero. After a trim the first
    // acquire misses; the release caches it; the second acquire hits.
    float* p = pool.Acquire(256);
    pool.Release(p, 256);
    float* q = pool.Acquire(256);
    pool.Release(q, 256);
    const BufferPool::ThreadStats s = BufferPool::GetThreadStats();
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
  });
  worker.join();
  const BufferPool::ThreadStats main_after = BufferPool::GetThreadStats();
  EXPECT_EQ(main_after.hits - main_before.hits, 0u);
  EXPECT_EQ(main_after.misses - main_before.misses, 0u);
  // The main thread's own traffic still counts.
  float* p = pool.Acquire(256);
  pool.Release(p, 256);
  const BufferPool::ThreadStats own = BufferPool::GetThreadStats();
  EXPECT_EQ((own.hits + own.misses) - (main_before.hits + main_before.misses),
            1u);
}

TEST(BufferPoolTest, WorkspaceRecordsFinalizesAndServesWithoutPoolTraffic) {
  BufferPool& pool = BufferPool::Global();
  BufferPool::Workspace ws;
  // Recording phase: the global pool serves every request while the
  // workspace tracks the per-bucket high-water working set (two live
  // 64-float chunks + one 4096-float chunk here).
  {
    BufferPool::WorkspaceScope scope(&ws);
    float* a = pool.Acquire(64);
    float* b = pool.Acquire(33);  // same 64-float bucket, live with a
    float* c = pool.Acquire(4096);
    pool.Release(b, 33);
    pool.Release(a, 64);
    pool.Release(c, 4096);
  }
  EXPECT_FALSE(ws.finalized());
  EXPECT_EQ(ws.reserved_bytes(), 0u);
  ws.Finalize();
  EXPECT_TRUE(ws.finalized());
  EXPECT_EQ(ws.reserved_bytes(), (64 + 64 + 4096) * sizeof(float));
  ws.Finalize();  // idempotent
  EXPECT_EQ(ws.reserved_bytes(), (64 + 64 + 4096) * sizeof(float));

  // Finalized phase: the same working set is served entirely from the
  // slab — the thread's pool counters do not move.
  const BufferPool::ThreadStats before = BufferPool::GetThreadStats();
  {
    BufferPool::WorkspaceScope scope(&ws);
    float* a = pool.Acquire(64);
    float* b = pool.Acquire(64);
    float* c = pool.Acquire(4000);  // rounds into the 4096 bucket
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    ASSERT_NE(c, nullptr);
    EXPECT_NE(a, b);
    a[0] = b[0] = c[0] = 1.0f;  // chunks are writable
    pool.Release(a, 64);
    pool.Release(b, 64);
    pool.Release(c, 4000);
  }
  const BufferPool::ThreadStats after = BufferPool::GetThreadStats();
  EXPECT_EQ(after.hits - before.hits, 0u);
  EXPECT_EQ(after.misses - before.misses, 0u);
  EXPECT_EQ(ws.overflow_acquires(), 0u);

  // Exceeding the recorded working set overflows to the global pool
  // (counted, attributed to this thread) instead of failing.
  {
    BufferPool::WorkspaceScope scope(&ws);
    float* a = pool.Acquire(64);
    float* b = pool.Acquire(64);
    float* over = pool.Acquire(64);  // third live 64-float chunk
    ASSERT_NE(over, nullptr);
    pool.Release(over, 64);
    pool.Release(b, 64);
    pool.Release(a, 64);
  }
  EXPECT_EQ(ws.overflow_acquires(), 1u);
  const BufferPool::ThreadStats overflowed = BufferPool::GetThreadStats();
  EXPECT_EQ((overflowed.hits + overflowed.misses) -
                (after.hits + after.misses),
            1u);
}

#endif  // LASAGNE_POOL_CACHED

TEST(BufferPoolTest, ConcurrentCheckoutYieldsDisjointBuffers) {
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  SetNumThreads(8);
  constexpr size_t kTasks = 256;
  std::vector<float*> held(kTasks, nullptr);
  // Every task checks a buffer out, stamps it, verifies the stamp
  // (catching handed-out-twice bugs), then returns it.
  ParallelFor(0, kTasks, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* p = pool.Acquire(512);
      held[i] = p;
      const float stamp = static_cast<float>(i) + 0.5f;
      for (size_t j = 0; j < 512; ++j) p[j] = stamp;
      for (size_t j = 0; j < 512; ++j) {
        ASSERT_EQ(p[j], stamp) << "buffer shared between tasks";
      }
    }
  });
  // All buffers were held simultaneously: pairwise distinct.
  std::set<float*> unique(held.begin(), held.end());
  EXPECT_EQ(unique.size(), kTasks);
  for (size_t i = 0; i < kTasks; ++i) pool.Release(held[i], 512);
  SetNumThreads(0);
}

#if LASAGNE_POOL_CACHED

TEST(BufferPoolTest, TrainingEpochMissesCollapseOnceWarm) {
  // The point of the pool: after the first epoch has populated the
  // buckets, training's per-epoch allocations become freelist hits.
  // Cold run vs identically-shaped warm run must differ by >= 10x in
  // miss count.
  Dataset data = LoadDataset("cora", 0.3, 21);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.seed = 5;
  TrainOptions options;
  options.max_epochs = 1;
  options.patience = 1;
  options.seed = 6;
  BufferPool& pool = BufferPool::Global();
  auto run_one_epoch = [&] {
    std::unique_ptr<Model> model = MakeModel("gcn", data, config);
    TrainModel(*model, options);
  };
  pool.Trim();
  run_one_epoch();  // prime shapes without counting model-setup noise
  pool.ResetStats();
  run_one_epoch();
  const uint64_t warm_misses = pool.GetStats().misses;
  const uint64_t warm_hits = pool.GetStats().hits;
  pool.Trim();  // empty every freelist -> cold start
  pool.ResetStats();
  run_one_epoch();
  const uint64_t cold_misses = pool.GetStats().misses;
  EXPECT_GT(warm_hits, 0u);
  EXPECT_GE(cold_misses, 10 * std::max<uint64_t>(warm_misses, 1));
}

// ---------------------------------------------------------------------------
// Sharded pool: thread-local magazines + global depot (docs/SERVING.md
// "Pool sharding"). Suites are named BufferPool* so the TSan pass in
// tools/run_sanitized_tests.sh picks them up.
// ---------------------------------------------------------------------------

/// Restores the cached-bytes limit on scope exit so a failing
/// assertion cannot leak a tiny cap into later tests.
class CachedBytesLimitGuard {
 public:
  CachedBytesLimitGuard()
      : old_limit_(BufferPool::Global().cached_bytes_limit()) {}
  ~CachedBytesLimitGuard() {
    BufferPool::Global().SetCachedBytesLimit(old_limit_);
  }

 private:
  uint64_t old_limit_;
};

TEST(BufferPoolShardingTest, SteadyStateReuseNeverTouchesTheDepot) {
  // The tentpole invariant: once a thread's magazine holds its working
  // set, acquire/release cycles are served lock-free — zero depot
  // exchanges, every hit a magazine hit.
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  // Warm the magazine: first acquire misses, release caches locally.
  float* warm = pool.Acquire(768);  // 1024-float bucket
  pool.Release(warm, 768);
  const BufferPool::Stats before = pool.GetStats();
  constexpr uint64_t kCycles = 1000;
  for (uint64_t i = 0; i < kCycles; ++i) {
    float* p = pool.Acquire(768);
    ASSERT_NE(p, nullptr);
    p[0] = static_cast<float>(i);
    pool.Release(p, 768);
  }
  const BufferPool::Stats after = pool.GetStats();
  EXPECT_EQ(after.magazine_hits - before.magazine_hits, kCycles);
  EXPECT_EQ(after.depot_refills - before.depot_refills, 0u);
  EXPECT_EQ(after.depot_flushes - before.depot_flushes, 0u);
  EXPECT_EQ(after.misses - before.misses, 0u);
}

TEST(BufferPoolShardingTest, ThreadExitDrainsMagazineIntoDepot) {
  // A dying thread's cached chunks must not leak: they move to the
  // depot (bytes stay cached) and the next thread refills from there.
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  const BufferPool::Stats base = pool.GetStats();
  std::thread worker([&] {
    float* p = pool.Acquire(2048);
    pool.Release(p, 2048);  // lands in the worker's magazine
  });
  worker.join();
  // The chunk survived the thread: still cached, now in the depot.
  const BufferPool::Stats drained = pool.GetStats();
  EXPECT_EQ(drained.cached_bytes - base.cached_bytes,
            2048 * sizeof(float));
  // This thread's acquire of the same bucket refills from the depot —
  // a hit (one depot exchange), not a fresh allocation.
  float* p = pool.Acquire(2048);
  const BufferPool::Stats refilled = pool.GetStats();
  EXPECT_EQ(refilled.hits - drained.hits, 1u);
  EXPECT_EQ(refilled.depot_refills - drained.depot_refills, 1u);
  pool.Release(p, 2048);
}

TEST(BufferPoolShardingTest, CrossThreadReleaseKeepsChunksAndAccounting) {
  // Acquire on thread A, free on thread B: chunks are interchangeable
  // within a bucket, so they simply land in B's magazine (overflowing
  // into the depot) — nothing leaks, nothing double-frees, and the
  // byte accounting balances.
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  const BufferPool::Stats base = pool.GetStats();
  constexpr size_t kChunks = 32;  // 2x the magazine depth: forces flushes
  std::vector<float*> handoff(kChunks, nullptr);
  std::thread producer([&] {
    for (size_t i = 0; i < kChunks; ++i) {
      handoff[i] = pool.Acquire(4096);
      handoff[i][0] = static_cast<float>(i);
    }
  });
  producer.join();
  std::thread consumer([&] {
    for (size_t i = 0; i < kChunks; ++i) pool.Release(handoff[i], 4096);
  });
  consumer.join();
  // All 32 chunks are cached somewhere (consumer magazine drained to
  // the depot at exit): exactly kChunks * bucket bytes.
  const BufferPool::Stats cached = pool.GetStats();
  EXPECT_EQ(cached.cached_bytes - base.cached_bytes,
            kChunks * 4096 * sizeof(float));
  // And re-acquirable: this thread gets all of them back as hits.
  std::vector<float*> again(kChunks, nullptr);
  for (size_t i = 0; i < kChunks; ++i) again[i] = pool.Acquire(4096);
  const BufferPool::Stats reused = pool.GetStats();
  EXPECT_EQ(reused.hits - cached.hits, kChunks);
  EXPECT_EQ(reused.misses - cached.misses, 0u);
  for (size_t i = 0; i < kChunks; ++i) pool.Release(again[i], 4096);
}

TEST(BufferPoolShardingTest, ConcurrentReleasesNeverOvershootTheCap) {
  // Regression test for the Release cap race: the old code checked
  // `cached_bytes + bytes <= limit` *outside* the mutex, so N
  // concurrent releases could all pass the check and collectively blow
  // past the cap. With the atomic reservation, cached_bytes can never
  // exceed max(pre-existing residue, limit) — sampled live by a
  // watcher thread and asserted at every settle point.
  BufferPool& pool = BufferPool::Global();
  CachedBytesLimitGuard restore_limit;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 8;
  constexpr size_t kFloats = 2048;  // 8 KiB chunks
  constexpr uint64_t kChunkBytes = kFloats * sizeof(float);
  constexpr uint64_t kTinyCap = 4 * kChunkBytes;  // room for 4 of 64

  for (int round = 0; round < 10; ++round) {
    pool.Trim();
    pool.SetCachedBytesLimit(512ull << 20);
    // Residue: bytes still cached in idle threads' magazines (drained
    // lazily). Constant while those threads sleep, so the invariant is
    // cached_bytes <= max(residue, tiny cap) throughout.
    const uint64_t residue = pool.GetStats().cached_bytes;
    const uint64_t ceiling = std::max(residue, kTinyCap);

    std::vector<std::vector<float*>> held(kThreads);
    for (auto& bufs : held) {
      bufs.reserve(kPerThread);
      for (size_t i = 0; i < kPerThread; ++i) {
        bufs.push_back(pool.Acquire(kFloats));
      }
    }
    pool.Trim();  // acquired buffers are outstanding, cache is empty
    pool.SetCachedBytesLimit(kTinyCap);
    const uint64_t evictions_before = pool.GetStats().evictions;

    std::atomic<bool> stop{false};
    std::atomic<bool> overshoot{false};
    std::thread watcher([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (pool.GetStats().cached_bytes > ceiling) {
          overshoot.store(true, std::memory_order_relaxed);
        }
      }
    });
    std::vector<std::thread> releasers;
    for (size_t t = 0; t < kThreads; ++t) {
      releasers.emplace_back([&, t] {
        for (float* p : held[t]) pool.Release(p, kFloats);
      });
    }
    for (std::thread& t : releasers) t.join();
    stop.store(true, std::memory_order_relaxed);
    watcher.join();

    const BufferPool::Stats settled = pool.GetStats();
    EXPECT_FALSE(overshoot.load()) << "cap overshot mid-release";
    EXPECT_LE(settled.cached_bytes, ceiling) << "cap overshot at settle";
    // 64 releases against a 4-chunk cap: most were evicted, not cached.
    EXPECT_GE(settled.evictions - evictions_before,
              kThreads * kPerThread - kTinyCap / kChunkBytes);
  }
}

TEST(BufferPoolShardingTest, StressAcquireReleaseTrimLimitUnderThreads) {
  // TSan-targeted interleaving stress: 8 threads hammer
  // Acquire/Release across three buckets while one thread Trims
  // periodically and another toggles the cached-bytes limit. Each
  // buffer is stamped and verified so a chunk handed out twice (or
  // freed while held) is caught even in non-sanitizer builds.
  BufferPool& pool = BufferPool::Global();
  CachedBytesLimitGuard restore_limit;
  pool.Trim();
  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 400;
  const size_t sizes[3] = {64, 300, 5000};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kIters; ++i) {
        if (t == 0 && i % 64 == 0) pool.Trim();
        if (t == 1 && i % 32 == 0) {
          pool.SetCachedBytesLimit(i % 64 == 0 ? (1ull << 20)
                                               : (512ull << 20));
        }
        const size_t count = sizes[(t + i) % 3];
        float* p = pool.Acquire(count);
        ASSERT_NE(p, nullptr);
        const float stamp = static_cast<float>(t * kIters + i) + 0.25f;
        p[0] = stamp;
        p[count - 1] = stamp;
        ASSERT_EQ(p[0], stamp);
        ASSERT_EQ(p[count - 1], stamp);
        pool.Release(p, count);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  pool.SetCachedBytesLimit(512ull << 20);
  pool.Trim();
  // Every stress thread exited (magazines drained) and the depot was
  // just trimmed: at most idle pool threads' residue remains, which is
  // always under the restored cap.
  EXPECT_LE(pool.GetStats().cached_bytes, pool.cached_bytes_limit());
}

TEST(BufferPoolShardingTest, OversizeAcquireBypassesFreelistsAndCap) {
  // Regression test for the oversize out-of-bounds bug: a request
  // above the top bucket used to compute bucket >= kNumBuckets and
  // index free_lists_ out of bounds in NDEBUG builds. The shrunken
  // bucket-count seam makes the path testable without allocating
  // 2^40 floats: with 4 buckets, capacities above 512 floats are
  // oversize.
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  const size_t old_buckets = pool.SetBucketCountForTest(4);
  const BufferPool::Stats base = pool.GetStats();

  // Boundary: the top surviving bucket (512 floats) still pools.
  float* top = pool.Acquire(512);
  pool.Release(top, 512);
  EXPECT_EQ(pool.GetStats().oversize_acquires - base.oversize_acquires, 0u);

  // Above it: straight to the allocator — counted as an oversize miss,
  // never cached, never capped, never evicted.
  float* big = pool.Acquire(1000);  // 1024-float bucket -> oversize
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % 64, 0u);
  for (size_t i = 0; i < 1000; ++i) big[i] = 1.0f;  // writable throughout
  const BufferPool::Stats acquired = pool.GetStats();
  EXPECT_EQ(acquired.oversize_acquires - base.oversize_acquires, 1u);
  EXPECT_EQ(acquired.misses - base.misses, 2u);  // top-bucket miss + big
  const uint64_t cached_before_release = acquired.cached_bytes;
  pool.Release(big, 1000);
  const BufferPool::Stats released = pool.GetStats();
  EXPECT_EQ(released.cached_bytes, cached_before_release);  // not cached
  EXPECT_EQ(released.evictions, acquired.evictions);        // not an evict
  // Not cached -> the next oversize acquire allocates again.
  float* again = pool.Acquire(1000);
  EXPECT_EQ(pool.GetStats().oversize_acquires - base.oversize_acquires, 2u);
  pool.Release(again, 1000);

  pool.SetBucketCountForTest(old_buckets);
  pool.Trim();
}

TEST(BufferPoolShardingTest, ThreadStatsStayMonotonicAcrossResetStats) {
  // ResetStats() clears the *global* counters only; per-thread
  // counters are monotonic by contract (buffer_pool.h), so delta-based
  // consumers (serving.cc, server.cc) can difference them across a
  // ResetStats() without seeing values jump backwards.
  BufferPool& pool = BufferPool::Global();
  pool.Trim();
  float* p = pool.Acquire(256);
  pool.Release(p, 256);
  const BufferPool::ThreadStats before = BufferPool::GetThreadStats();
  EXPECT_GT(before.hits + before.misses, 0u);
  pool.ResetStats();
  const BufferPool::ThreadStats after = BufferPool::GetThreadStats();
  // Untouched by the reset: still the full monotonic history.
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  // And still advancing normally, so deltas spanning the reset are
  // exact: one acquire -> exactly one new hit-or-miss.
  float* q = pool.Acquire(256);
  pool.Release(q, 256);
  const BufferPool::ThreadStats advanced = BufferPool::GetThreadStats();
  EXPECT_EQ((advanced.hits + advanced.misses) - (after.hits + after.misses),
            1u);
  // The global counters did reset (this thread's traffic since).
  const BufferPool::Stats global = pool.GetStats();
  EXPECT_LE(global.hits + global.misses, 2u);
}

#endif  // LASAGNE_POOL_CACHED

}  // namespace
}  // namespace lasagne
