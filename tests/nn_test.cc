#include "nn/layers.h"

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "test_util.h"

namespace lasagne {
namespace {

using testing::GradCheck;

Graph SmallGraph() {
  return Graph::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5},
                              {5, 0}, {0, 3}});
}

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  nn::Linear layer(4, 3, rng, /*bias=*/true);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(5, 4, 0, 1, rng));
  ag::Variable y = layer.Forward(x);
  EXPECT_EQ(y->rows(), 5u);
  EXPECT_EQ(y->cols(), 3u);
  EXPECT_EQ(layer.Parameters().size(), 2u);  // weight + bias
  nn::Linear no_bias(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(no_bias.Parameters().size(), 1u);
}

TEST(LinearTest, BiasBroadcastsOverRows) {
  Rng rng(2);
  nn::Linear layer(2, 2, rng, /*bias=*/true);
  ag::Variable zero = ag::MakeParameter(Tensor::Zeros(3, 2));
  Tensor y = layer.Forward(zero)->value();
  // With zero input, the output equals the bias in every row.
  for (size_t r = 1; r < 3; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_FLOAT_EQ(y(r, c), y(0, c));
    }
  }
}

TEST(LinearTest, GradCheckWithBias) {
  Rng rng(3);
  nn::Linear layer(3, 2, rng, /*bias=*/true);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(4, 3, 0, 1, rng));
  auto loss = [&] {
    ag::Variable y = layer.Forward(x);
    return ag::Sum(ag::Mul(y, y));
  };
  std::vector<ag::Variable> params = layer.Parameters();
  params.push_back(x);
  EXPECT_LT(GradCheck(loss, params), 3e-2f);
}

TEST(GraphConvolutionTest, ForwardMatchesManualComputation) {
  Graph g = SmallGraph();
  auto a_hat = std::make_shared<CsrMatrix>(g.NormalizedAdjacency());
  Rng rng(4);
  nn::GraphConvolution conv(3, 2, rng);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(6, 3, 0, 1, rng));
  Rng fwd(5);
  nn::ForwardContext ctx{false, &fwd};
  Tensor got = conv.Forward(a_hat, x, ctx, 0.0f, /*relu=*/false)->value();
  Tensor expect =
      a_hat->Multiply(x->value().MatMul(conv.weight()->value()));
  EXPECT_LT(got.MaxAbsDiff(expect), 1e-5f);
}

TEST(GraphConvolutionTest, ReluClampsNegatives) {
  Graph g = SmallGraph();
  auto a_hat = std::make_shared<CsrMatrix>(g.NormalizedAdjacency());
  Rng rng(6);
  nn::GraphConvolution conv(3, 4, rng);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(6, 3, 0, 2, rng));
  Rng fwd(7);
  nn::ForwardContext ctx{false, &fwd};
  Tensor y = conv.Forward(a_hat, x, ctx, 0.0f, /*relu=*/true)->value();
  EXPECT_GE(y.Min(), 0.0f);
}

TEST(GraphConvolutionTest, DropoutOnlyInTraining) {
  Graph g = SmallGraph();
  auto a_hat = std::make_shared<CsrMatrix>(g.NormalizedAdjacency());
  Rng rng(8);
  nn::GraphConvolution conv(3, 2, rng);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(6, 3, 0, 1, rng));
  Rng e1(9), e2(10);
  nn::ForwardContext eval1{false, &e1}, eval2{false, &e2};
  // Different RNGs at eval time must give identical outputs.
  Tensor a = conv.Forward(a_hat, x, eval1, 0.8f, false)->value();
  Tensor b = conv.Forward(a_hat, x, eval2, 0.8f, false)->value();
  EXPECT_LT(a.MaxAbsDiff(b), 1e-7f);
}

TEST(GatMultiHeadTest, ConcatAndAverageDims) {
  Graph g = SmallGraph();
  auto edges = ag::EdgeStructure::FromGraph(g, true);
  Rng rng(11);
  nn::GatMultiHead concat(5, 4, 3, /*concat=*/true, rng);
  nn::GatMultiHead average(5, 4, 3, /*concat=*/false, rng);
  EXPECT_EQ(concat.out_dim(), 12u);
  EXPECT_EQ(average.out_dim(), 4u);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(6, 5, 0, 1, rng));
  Rng fwd(12);
  nn::ForwardContext ctx{false, &fwd};
  EXPECT_EQ(concat.Forward(edges, x, ctx)->cols(), 12u);
  EXPECT_EQ(average.Forward(edges, x, ctx)->cols(), 4u);
  EXPECT_EQ(concat.Parameters().size(), 9u);  // 3 heads x (W, aL, aR)
}

TEST(GatHeadTest, EndToEndGradients) {
  Graph g = SmallGraph();
  auto edges = ag::EdgeStructure::FromGraph(g, true);
  Rng rng(13);
  nn::GatHead head(3, 2, rng);
  ag::Variable x = ag::MakeParameter(Tensor::Normal(6, 3, 0, 0.5, rng));
  Rng fwd(14);
  nn::ForwardContext ctx{false, &fwd};
  auto loss = [&] {
    ag::Variable y = head.Forward(edges, x, ctx, 0.0f);
    return ag::Sum(ag::Mul(y, y));
  };
  std::vector<ag::Variable> params = head.Parameters();
  params.push_back(x);
  EXPECT_LT(GradCheck(loss, params, 2e-3f), 5e-2f);
}

TEST(GatHeadTest, AttentionWeightsAreRowStochastic) {
  // Indirect check: with a constant feature matrix, the attention
  // mixture of identical rows reproduces W h regardless of weights.
  Graph g = SmallGraph();
  auto edges = ag::EdgeStructure::FromGraph(g, true);
  Rng rng(15);
  nn::GatHead head(3, 2, rng);
  ag::Variable x = ag::MakeParameter(Tensor::Ones(6, 3));
  Rng fwd(16);
  nn::ForwardContext ctx{false, &fwd};
  Tensor y = head.Forward(edges, x, ctx, 0.0f)->value();
  for (size_t r = 1; r < 6; ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_NEAR(y(r, c), y(0, c), 1e-5f);
    }
  }
}

}  // namespace
}  // namespace lasagne
