// Coverage for corners not exercised elsewhere: trainer semantics,
// checked accessors, death-on-misuse, RNG stream independence, dangling
// PageRank nodes, edge-structure variants, registry error paths.

#include <cmath>

#include <gtest/gtest.h>

#include "autograd/edge_ops.h"
#include "autograd/ops.h"
#include "data/registry.h"
#include "graph/algorithms.h"
#include "sparse/csr_matrix.h"
#include "tensor/tensor.h"
#include "train/experiment.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

TEST(TensorMiscTest, CheckedAtAbortsOutOfRange) {
  Tensor t(2, 2);
  EXPECT_FLOAT_EQ(t.At(1, 1), 0.0f);
  EXPECT_DEATH(t.At(2, 0), "LASAGNE_CHECK");
  EXPECT_DEATH(t.At(0, 2), "LASAGNE_CHECK");
}

TEST(TensorMiscTest, ShapeMismatchAborts) {
  Tensor a(2, 2), b(2, 3);
  EXPECT_DEATH(a + b, "LASAGNE_CHECK");
  EXPECT_DEATH(a.MatMul(Tensor(3, 2)), "LASAGNE_CHECK");
}

TEST(TensorMiscTest, DebugStringMentionsShape) {
  Tensor t(3, 4);
  EXPECT_NE(t.DebugString().find("3x4"), std::string::npos);
}

TEST(TensorMiscTest, RowExtractsSingleRow) {
  Tensor t(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Row(1);
  EXPECT_EQ(r.rows(), 1u);
  EXPECT_FLOAT_EQ(r(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(r(0, 2), 6.0f);
}

TEST(RngMiscTest, SplitStreamsAreIndependent) {
  Rng parent(7);
  Rng a = parent.Split();
  Rng b = parent.Split();
  // The two children diverge from each other and from the parent.
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(CsrMiscTest, AtOnEmptyRowsAndScale) {
  CsrMatrix m = CsrMatrix::FromTriplets(3, 3, {{0, 2, 4.0f}});
  EXPECT_FLOAT_EQ(m.At(1, 1), 0.0f);  // fully empty row
  EXPECT_FLOAT_EQ(m.Scale(0.5f).At(0, 2), 2.0f);
}

TEST(CsrMiscTest, RowStochasticLeavesEmptyRowsEmpty) {
  CsrMatrix m = CsrMatrix::FromTriplets(2, 2, {{0, 0, 3.0f}});
  CsrMatrix rs = m.RowStochastic();
  EXPECT_FLOAT_EQ(rs.At(0, 0), 1.0f);
  EXPECT_EQ(rs.RowNnz(1), 0u);
}

TEST(PageRankMiscTest, DanglingNodesStillSumToOne) {
  // Node 2 is isolated (dangling); mass must be redistributed.
  Graph g = Graph::FromEdges(3, {{0, 1}});
  Tensor pr = PageRank(g);
  EXPECT_NEAR(pr.Sum(), 1.0f, 1e-3f);
  EXPECT_GT(pr(2, 0), 0.0f);
}

TEST(EdgeStructureMiscTest, WithoutSelfLoops) {
  Graph g = Graph::FromEdges(3, {{0, 1}, {1, 2}});
  auto edges = ag::EdgeStructure::FromGraph(g, /*add_self_loops=*/false);
  // Directed edge count == 2 * undirected, no self loops added.
  EXPECT_EQ(edges->num_edges(), 4u);
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
      EXPECT_NE(edges->src[k], i);
    }
  }
}

TEST(RegistryMiscTest, UnknownDatasetAborts) {
  EXPECT_DEATH(LoadDataset("not-a-dataset"), "unknown dataset");
  EXPECT_DEATH(GetDatasetSpec("nope"), "unknown dataset");
}

TEST(OpsMiscTest, LogClampsBelowEps) {
  ag::Variable x = ag::MakeParameter(Tensor(1, 2, {0.0f, 1.0f}));
  Tensor y = ag::Log(x, 1e-6f)->value();
  EXPECT_NEAR(y(0, 0), std::log(1e-6f), 1e-3f);
  EXPECT_NEAR(y(0, 1), 0.0f, 1e-6f);
}

TEST(OpsMiscTest, BackwardWithExplicitSeed) {
  ag::Variable x = ag::MakeParameter(Tensor(2, 2, {1, 2, 3, 4}));
  ag::Variable y = ag::ScalarMul(x, 3.0f);
  Tensor seed(2, 2, {1, 0, 0, 1});
  ag::BackwardWithGrad(y, seed);
  EXPECT_FLOAT_EQ(x->grad()(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(x->grad()(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(x->grad()(1, 1), 3.0f);
}

TEST(OpsMiscTest, ScalarBackwardRequiresScalar) {
  ag::Variable x = ag::MakeParameter(Tensor::Ones(2, 2));
  EXPECT_DEATH(ag::Backward(x), "LASAGNE_CHECK");
}

TEST(TrainerMiscTest, RestoreBestRecoversEarlyPeak) {
  // Train long past convergence with restore_best on/off; the restored
  // model's val accuracy equals the recorded best.
  Dataset data = LoadDataset("cora", 0.2, 61);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.dropout = 0.0f;
  config.seed = 3;
  std::unique_ptr<Model> model = MakeModel("gcn", data, config);
  TrainOptions options;
  options.max_epochs = 80;
  options.patience = 80;
  options.restore_best = true;
  options.seed = 5;
  TrainResult result = TrainModel(*model, options);
  Rng rng(7);
  const double val_now = EvaluateAccuracy(*model, data.val_mask, rng);
  EXPECT_NEAR(val_now, result.best_val_accuracy, 1e-9);
}

TEST(TrainerMiscTest, ZeroTrainMaskAborts) {
  Dataset data = LoadDataset("cora", 0.2, 62);
  std::fill(data.train_mask.begin(), data.train_mask.end(), 0.0f);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 3;
  std::unique_ptr<Model> model = MakeModel("gcn", data, config);
  Rng rng(1);
  nn::ForwardContext ctx{true, &rng};
  EXPECT_DEATH(model->TrainingLoss(ctx), "LASAGNE_CHECK");
}

TEST(ExperimentMiscTest, RepeatedRunsDifferAcrossSeeds) {
  Dataset data = LoadDataset("cora", 0.2, 63);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 3;
  TrainOptions options;
  options.max_epochs = 30;
  options.seed = 5;
  ExperimentResult result =
      RunRepeatedExperiment("gcn", data, config, options, 3);
  // Different seeds should generally produce non-identical runs.
  const bool all_equal = result.runs[0] == result.runs[1] &&
                         result.runs[1] == result.runs[2];
  EXPECT_FALSE(all_equal);
  // And the summary must bracket the individual runs.
  for (double r : result.runs) {
    EXPECT_GE(r, result.test_accuracy.mean - 3 * result.test_accuracy.std_dev -
                     1e-9);
    EXPECT_LE(r, result.test_accuracy.mean + 3 * result.test_accuracy.std_dev +
                     1e-9);
  }
}

TEST(ExperimentMiscTest, SameSeedIsDeterministic) {
  Dataset data = LoadDataset("cora", 0.2, 64);
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 8;
  config.seed = 9;
  TrainOptions options;
  options.max_epochs = 25;
  options.seed = 11;
  ExperimentResult a =
      RunRepeatedExperiment("gcn", data, config, options, 1);
  ExperimentResult b =
      RunRepeatedExperiment("gcn", data, config, options, 1);
  EXPECT_EQ(a.runs[0], b.runs[0]);
}

TEST(MaskedAccuracyMiscTest, EmptyMaskIsZero) {
  Tensor logits(2, 2, {1, 0, 0, 1});
  EXPECT_EQ(MaskedAccuracy(logits, {0, 1}, {0, 0}), 0.0);
}

}  // namespace
}  // namespace lasagne
