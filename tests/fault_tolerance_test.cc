#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "common/fault_injection.h"
#include "data/registry.h"
#include "obs/telemetry.h"
#include "train/experiment.h"
#include "train/serialization.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

/// Resets the global injector around every test so arming never leaks
/// into unrelated suites.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

ModelConfig SmallGcnConfig() {
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 16;
  config.dropout = 0.4f;
  config.seed = 11;
  return config;
}

TrainOptions BaseOptions() {
  TrainOptions options;
  options.max_epochs = 60;
  options.patience = 100;
  options.seed = 12;
  return options;
}

// The acceptance scenario: an injected NaN gradient at epoch k triggers
// rollback + learning-rate backoff, and the run still completes and
// converges close to an uninjected run.
TEST_F(FaultToleranceTest, NanGradientRollsBackAndStillConverges) {
  Dataset data = LoadDataset("cora", 0.3, 41);

  std::unique_ptr<Model> clean_model =
      MakeModel("gcn", data, SmallGcnConfig());
  TrainResult clean = TrainModel(*clean_model, BaseOptions());
  ASSERT_TRUE(clean.recoveries.empty());
  ASSERT_FALSE(clean.diverged);
  ASSERT_GT(clean.test_accuracy, 0.5);

  FaultInjector::Global().ArmNanGradient(/*epoch=*/5);
  std::unique_ptr<Model> faulty_model =
      MakeModel("gcn", data, SmallGcnConfig());
  TrainResult faulty = TrainModel(*faulty_model, BaseOptions());

  EXPECT_EQ(FaultInjector::Global().nan_gradients_injected(), 1u);
  ASSERT_EQ(faulty.recoveries.size(), 1u);
  EXPECT_EQ(faulty.recoveries[0].epoch, 5u);
  EXPECT_EQ(faulty.recoveries[0].reason, "non-finite gradient");
  EXPECT_FLOAT_EQ(faulty.recoveries[0].new_learning_rate,
                  BaseOptions().learning_rate * 0.5f);
  EXPECT_FALSE(faulty.diverged);
  EXPECT_GE(faulty.epochs_run, clean.epochs_run / 2);
  // Within tolerance of the clean run despite the fault.
  EXPECT_GT(faulty.test_accuracy, clean.test_accuracy - 0.15);
}

TEST_F(FaultToleranceTest, RecoveryBudgetExhaustionReportsDivergence) {
  Dataset data = LoadDataset("cora", 0.2, 42);
  // Re-poison epoch 2 every time it is retried: the bounded policy
  // must give up after max_recoveries instead of looping forever.
  FaultInjector::Global().ArmNanGradient(/*epoch=*/2, /*count=*/100);
  TrainOptions options = BaseOptions();
  options.max_recoveries = 3;
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallGcnConfig());
  TrainResult result = TrainModel(*model, options);

  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.recoveries.size(), 3u);
  // Each rollback halves the learning rate once.
  EXPECT_FLOAT_EQ(result.recoveries.back().new_learning_rate,
                  options.learning_rate * 0.125f);
  // Only the two healthy epochs before the fault completed.
  EXPECT_EQ(result.epochs_run, 2u);
}

// Acceptance criterion: --resume continues from the saved epoch with
// bitwise-identical parameters (which requires bitwise-identical Adam
// moments and RNG stream).
TEST_F(FaultToleranceTest, ResumeIsBitwiseIdenticalToUninterruptedRun) {
  Dataset data = LoadDataset("cora", 0.25, 43);
  const std::string path = ::testing::TempDir() + "/resume.ckpt";
  std::remove(path.c_str());

  ModelConfig config = SmallGcnConfig();
  TrainOptions options = BaseOptions();
  options.max_epochs = 8;
  options.restore_best = false;  // compare the raw final parameters

  // Reference: 8 uninterrupted epochs.
  std::unique_ptr<Model> reference = MakeModel("gcn", data, config);
  TrainResult ref_result = TrainModel(*reference, options);
  ASSERT_EQ(ref_result.epochs_run, 8u);

  // Interrupted: stop after 4 epochs, checkpointing at epoch 4.
  TrainOptions first_half = options;
  first_half.max_epochs = 4;
  first_half.checkpoint_path = path;
  first_half.checkpoint_interval = 4;
  std::unique_ptr<Model> interrupted = MakeModel("gcn", data, config);
  TrainResult first = TrainModel(*interrupted, first_half);
  ASSERT_EQ(first.epochs_run, 4u);
  ASSERT_EQ(first.checkpoint_write_failures, 0u);

  // Resumed: a fresh process picks up the checkpoint and finishes.
  TrainOptions second_half = options;
  second_half.checkpoint_path = path;
  second_half.checkpoint_interval = 1000;  // no further writes
  second_half.resume = true;
  std::unique_ptr<Model> resumed = MakeModel("gcn", data, config);
  TrainResult second = TrainModel(*resumed, second_half);
  ASSERT_TRUE(second.resume_status.ok())
      << second.resume_status.ToString();
  EXPECT_EQ(second.resumed_from_epoch, 4u);
  EXPECT_EQ(second.epochs_run, 8u);

  std::vector<ag::Variable> a = reference->Parameters();
  std::vector<ag::Variable> b = resumed->Parameters();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->value().MaxAbsDiff(b[i]->value()), 0.0f)
        << "parameter " << i << " diverged after resume";
  }
  EXPECT_EQ(second.test_accuracy, ref_result.test_accuracy);
}

// mean_epoch_time_ms must average over the epochs THIS invocation
// executed: a resumed run only timed the post-resume epochs, and the
// pre-fix code divided their total by the absolute epoch counter
// (pre-resume epochs included), underreporting the mean by the resume
// ratio. The telemetry sink records the exact per-epoch wall times the
// trainer accumulated, so the expected mean is recomputable.
TEST_F(FaultToleranceTest, ResumedRunTimingCoversOnlyExecutedEpochs) {
  Dataset data = LoadDataset("cora", 0.2, 45);
  const std::string path = ::testing::TempDir() + "/timing_resume.ckpt";
  std::remove(path.c_str());

  ModelConfig config = SmallGcnConfig();
  TrainOptions options = BaseOptions();
  options.max_epochs = 6;
  options.checkpoint_path = path;
  options.checkpoint_interval = 6;
  std::unique_ptr<Model> first_model = MakeModel("gcn", data, config);
  TrainResult first = TrainModel(*first_model, options);
  ASSERT_EQ(first.epochs_run, 6u);
  EXPECT_EQ(first.epochs_executed, 6u);

  obs::TelemetryWriter telemetry;
  TrainOptions resume_options = BaseOptions();
  resume_options.max_epochs = 8;
  resume_options.checkpoint_path = path;
  resume_options.checkpoint_interval = 1000;  // no further writes
  resume_options.resume = true;
  resume_options.telemetry = &telemetry;
  std::unique_ptr<Model> resumed = MakeModel("gcn", data, config);
  TrainResult second = TrainModel(*resumed, resume_options);
  ASSERT_TRUE(second.resume_status.ok())
      << second.resume_status.ToString();
  ASSERT_EQ(second.resumed_from_epoch, 6u);
  ASSERT_EQ(second.epochs_run, 8u);
  EXPECT_EQ(second.epochs_executed, 2u);

  ASSERT_EQ(telemetry.epochs().size(), 2u);
  double timed_total_ms = 0.0;
  for (const obs::EpochTelemetry& e : telemetry.epochs()) {
    timed_total_ms += e.epoch_time_ms;
  }
  ASSERT_GT(timed_total_ms, 0.0);
  // Divided by the 2 executed epochs, not the absolute count 8.
  EXPECT_DOUBLE_EQ(second.mean_epoch_time_ms, timed_total_ms / 2.0);
}

TEST_F(FaultToleranceTest, ResumeFromCorruptCheckpointStartsFresh) {
  Dataset data = LoadDataset("cora", 0.2, 44);
  const std::string path = ::testing::TempDir() + "/corrupt_resume.ckpt";
  {
    std::ofstream out(path);
    out << "lasagne-checkpoint v2 0123456789abcdef 9999\ngarbage\n";
  }
  TrainOptions options = BaseOptions();
  options.max_epochs = 3;
  options.checkpoint_path = path;
  options.checkpoint_interval = 1000;  // don't overwrite the evidence
  options.resume = true;
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallGcnConfig());
  TrainResult result = TrainModel(*model, options);
  // The corrupt file is reported, the run trains from scratch.
  EXPECT_FALSE(result.resume_status.ok());
  EXPECT_EQ(result.resumed_from_epoch, 0u);
  EXPECT_EQ(result.epochs_run, 3u);
  EXPECT_FALSE(result.diverged);
}

TEST_F(FaultToleranceTest, MissingCheckpointResumeIsNotAnError) {
  Dataset data = LoadDataset("cora", 0.2, 45);
  TrainOptions options = BaseOptions();
  options.max_epochs = 2;
  options.checkpoint_path =
      ::testing::TempDir() + "/never_written_before.ckpt";
  std::remove(options.checkpoint_path.c_str());
  options.resume = true;
  options.checkpoint_interval = 1000;
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallGcnConfig());
  TrainResult result = TrainModel(*model, options);
  EXPECT_TRUE(result.resume_status.ok());
  EXPECT_EQ(result.resumed_from_epoch, 0u);
  EXPECT_EQ(result.epochs_run, 2u);
}

// A mid-training checkpoint write failure (disk full / crash) must not
// kill the run, and the previous checkpoint must stay loadable.
TEST_F(FaultToleranceTest, CheckpointWriteFailureKeepsTrainingAndOldFile) {
  Dataset data = LoadDataset("cora", 0.2, 46);
  const std::string path = ::testing::TempDir() + "/mid_fail.ckpt";
  std::remove(path.c_str());
  TrainOptions options = BaseOptions();
  options.max_epochs = 6;
  options.checkpoint_path = path;
  options.checkpoint_interval = 2;

  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallGcnConfig());
  // Phase 1: two epochs with a healthy periodic write at epoch 2.
  options.max_epochs = 2;
  TrainResult phase1 = TrainModel(*model, options);
  ASSERT_EQ(phase1.checkpoint_write_failures, 0u);
  TrainerState saved_state;
  std::vector<ag::Variable> probe = model->Parameters();
  ASSERT_TRUE(LoadCheckpoint(probe, &saved_state, path).ok());
  ASSERT_EQ(saved_state.next_epoch, 2u);

  FaultInjector::Global().ArmWriteFailure(/*byte_offset=*/128);
  TrainOptions options2 = options;
  options2.max_epochs = 4;
  options2.resume = true;
  std::unique_ptr<Model> model2 = MakeModel("gcn", data, SmallGcnConfig());
  TrainResult phase2 = TrainModel(*model2, options2);
  EXPECT_EQ(phase2.checkpoint_write_failures, 1u);
  EXPECT_FALSE(phase2.diverged);
  EXPECT_EQ(phase2.epochs_run, 4u);

  // The epoch-2 checkpoint survived the torn epoch-4 write.
  TrainerState after;
  ASSERT_TRUE(LoadCheckpoint(probe, &after, path).ok());
  EXPECT_EQ(after.next_epoch, 2u);
  std::remove((path + ".tmp").c_str());
}

TEST_F(FaultToleranceTest, GradientClippingTrainsHealthily) {
  Dataset data = LoadDataset("cora", 0.25, 47);
  TrainOptions options = BaseOptions();
  options.grad_clip_norm = 1.0f;
  std::unique_ptr<Model> model = MakeModel("gcn", data, SmallGcnConfig());
  TrainResult result = TrainModel(*model, options);
  EXPECT_FALSE(result.diverged);
  EXPECT_TRUE(result.recoveries.empty());
  EXPECT_GT(result.test_accuracy, 0.4);
}

// Per-trial isolation: one diverging attempt inside a repeated
// experiment is retried with a perturbed seed instead of killing (or
// skewing) the whole table.
TEST_F(FaultToleranceTest, RepeatedExperimentRetriesDivergedTrial) {
  Dataset data = LoadDataset("cora", 0.2, 48);
  ModelConfig config = SmallGcnConfig();
  TrainOptions options = BaseOptions();
  options.max_epochs = 12;
  options.max_recoveries = 2;
  // Exactly enough injections to sink trial 0 / attempt 0 (two
  // recoveries + the diverging third hit) and leave every other
  // attempt clean.
  FaultInjector::Global().ArmNanGradient(/*epoch=*/1, /*count=*/3);
  ExperimentResult result =
      RunRepeatedExperiment("gcn", data, config, options, 3);

  EXPECT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(result.test_accuracy.count, 3u);
  EXPECT_EQ(result.retried_trials, 1u);
  EXPECT_EQ(result.failed_trials, 0u);
  ASSERT_EQ(result.trial_errors.size(), 1u);
  EXPECT_NE(result.trial_errors[0].find("trial 0"), std::string::npos);
  EXPECT_NE(result.trial_errors[0].find("diverged"), std::string::npos);
}

TEST_F(FaultToleranceTest, RepeatedExperimentRecordsUnrecoverableTrial) {
  Dataset data = LoadDataset("cora", 0.2, 49);
  ModelConfig config = SmallGcnConfig();
  TrainOptions options = BaseOptions();
  options.max_epochs = 8;
  options.max_recoveries = 1;
  // Poison epoch 0 forever: every attempt of every trial diverges.
  FaultInjector::Global().ArmNanGradient(/*epoch=*/0, /*count=*/1000000);
  ExperimentResult result =
      RunRepeatedExperiment("gcn", data, config, options, 2);
  EXPECT_EQ(result.runs.size(), 0u);
  EXPECT_EQ(result.failed_trials, 2u);
  EXPECT_EQ(result.test_accuracy.count, 0u);
  // 2 trials x 3 attempts, each recorded.
  EXPECT_EQ(result.trial_errors.size(), 6u);
}

// -- Factory validation (recoverable config errors) ------------------------

TEST(FactoryValidationTest, UnknownNameIsNotFound) {
  Dataset data = LoadDataset("cora", 0.2, 50);
  StatusOr<std::unique_ptr<Model>> model =
      TryMakeModel("not-a-model", data, ModelConfig());
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
}

TEST(FactoryValidationTest, BadConfigIsInvalidArgument) {
  Dataset data = LoadDataset("cora", 0.2, 51);
  ModelConfig config;
  config.depth = 0;
  EXPECT_EQ(TryMakeModel("gcn", data, config).status().code(),
            StatusCode::kInvalidArgument);
  config = ModelConfig();
  config.dropout = 1.5f;
  EXPECT_EQ(TryMakeModel("gcn", data, config).status().code(),
            StatusCode::kInvalidArgument);
  config = ModelConfig();
  config.heads = 0;
  EXPECT_EQ(TryMakeModel("gat", data, config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FactoryValidationTest, EmptyDatasetRejected) {
  Dataset empty;
  EXPECT_EQ(TryMakeModel("gcn", empty, ModelConfig()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FactoryValidationTest, AllKnownNamesValidateWithDefaults) {
  Dataset data = LoadDataset("cora", 0.2, 52);
  for (const std::string& name : KnownModelNames()) {
    EXPECT_TRUE(ValidateModelConfig(name, data, ModelConfig()).ok()) << name;
  }
}

}  // namespace
}  // namespace lasagne
