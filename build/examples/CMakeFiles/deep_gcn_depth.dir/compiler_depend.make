# Empty compiler generated dependencies file for deep_gcn_depth.
# This may be replaced when dependencies are built.
