file(REMOVE_RECURSE
  "CMakeFiles/deep_gcn_depth.dir/deep_gcn_depth.cpp.o"
  "CMakeFiles/deep_gcn_depth.dir/deep_gcn_depth.cpp.o.d"
  "deep_gcn_depth"
  "deep_gcn_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_gcn_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
