# Empty dependencies file for mutual_information.
# This may be replaced when dependencies are built.
