file(REMOVE_RECURSE
  "CMakeFiles/mutual_information.dir/mutual_information.cpp.o"
  "CMakeFiles/mutual_information.dir/mutual_information.cpp.o.d"
  "mutual_information"
  "mutual_information.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mutual_information.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
