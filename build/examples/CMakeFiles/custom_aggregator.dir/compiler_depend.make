# Empty compiler generated dependencies file for custom_aggregator.
# This may be replaced when dependencies are built.
