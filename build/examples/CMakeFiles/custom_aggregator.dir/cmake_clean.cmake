file(REMOVE_RECURSE
  "CMakeFiles/custom_aggregator.dir/custom_aggregator.cpp.o"
  "CMakeFiles/custom_aggregator.dir/custom_aggregator.cpp.o.d"
  "custom_aggregator"
  "custom_aggregator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
