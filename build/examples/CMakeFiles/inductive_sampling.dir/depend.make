# Empty dependencies file for inductive_sampling.
# This may be replaced when dependencies are built.
