file(REMOVE_RECURSE
  "CMakeFiles/inductive_sampling.dir/inductive_sampling.cpp.o"
  "CMakeFiles/inductive_sampling.dir/inductive_sampling.cpp.o.d"
  "inductive_sampling"
  "inductive_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inductive_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
