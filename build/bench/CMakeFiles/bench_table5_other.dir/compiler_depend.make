# Empty compiler generated dependencies file for bench_table5_other.
# This may be replaced when dependencies are built.
