file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_other.dir/bench_table5_other.cc.o"
  "CMakeFiles/bench_table5_other.dir/bench_table5_other.cc.o.d"
  "bench_table5_other"
  "bench_table5_other.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_other.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
