# Empty dependencies file for bench_fig2_mi_layers.
# This may be replaced when dependencies are built.
