# Empty compiler generated dependencies file for bench_table6_gcfm_ablation.
# This may be replaced when dependencies are built.
