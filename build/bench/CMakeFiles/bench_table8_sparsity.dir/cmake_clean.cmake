file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_sparsity.dir/bench_table8_sparsity.cc.o"
  "CMakeFiles/bench_table8_sparsity.dir/bench_table8_sparsity.cc.o.d"
  "bench_table8_sparsity"
  "bench_table8_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
