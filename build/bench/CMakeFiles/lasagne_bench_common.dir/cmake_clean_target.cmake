file(REMOVE_RECURSE
  "liblasagne_bench_common.a"
)
