file(REMOVE_RECURSE
  "CMakeFiles/lasagne_bench_common.dir/common/bench_util.cc.o"
  "CMakeFiles/lasagne_bench_common.dir/common/bench_util.cc.o.d"
  "liblasagne_bench_common.a"
  "liblasagne_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagne_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
