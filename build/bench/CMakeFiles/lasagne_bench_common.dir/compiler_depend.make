# Empty compiler generated dependencies file for lasagne_bench_common.
# This may be replaced when dependencies are built.
