file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_citation.dir/bench_table3_citation.cc.o"
  "CMakeFiles/bench_table3_citation.dir/bench_table3_citation.cc.o.d"
  "bench_table3_citation"
  "bench_table3_citation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_citation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
