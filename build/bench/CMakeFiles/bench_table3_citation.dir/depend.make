# Empty dependencies file for bench_table3_citation.
# This may be replaced when dependencies are built.
