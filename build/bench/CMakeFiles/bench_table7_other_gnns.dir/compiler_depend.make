# Empty compiler generated dependencies file for bench_table7_other_gnns.
# This may be replaced when dependencies are built.
