file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_other_gnns.dir/bench_table7_other_gnns.cc.o"
  "CMakeFiles/bench_table7_other_gnns.dir/bench_table7_other_gnns.cc.o.d"
  "bench_table7_other_gnns"
  "bench_table7_other_gnns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_other_gnns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
