# Empty compiler generated dependencies file for bench_fig6_mi_training.
# This may be replaced when dependencies are built.
