# Empty dependencies file for bench_table4_inductive.
# This may be replaced when dependencies are built.
