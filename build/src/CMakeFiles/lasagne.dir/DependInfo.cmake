
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/edge_ops.cc" "src/CMakeFiles/lasagne.dir/autograd/edge_ops.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/autograd/edge_ops.cc.o.d"
  "/root/repo/src/autograd/fm_op.cc" "src/CMakeFiles/lasagne.dir/autograd/fm_op.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/autograd/fm_op.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/lasagne.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/lasagne.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/autograd/variable.cc.o.d"
  "/root/repo/src/core/aggregator_analysis.cc" "src/CMakeFiles/lasagne.dir/core/aggregator_analysis.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/core/aggregator_analysis.cc.o.d"
  "/root/repo/src/core/aggregators.cc" "src/CMakeFiles/lasagne.dir/core/aggregators.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/core/aggregators.cc.o.d"
  "/root/repo/src/core/gcfm.cc" "src/CMakeFiles/lasagne.dir/core/gcfm.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/core/gcfm.cc.o.d"
  "/root/repo/src/core/lasagne_model.cc" "src/CMakeFiles/lasagne.dir/core/lasagne_model.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/core/lasagne_model.cc.o.d"
  "/root/repo/src/core/lstm_aggregator.cc" "src/CMakeFiles/lasagne.dir/core/lstm_aggregator.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/core/lstm_aggregator.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/lasagne.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/lasagne.dir/data/io.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/data/io.cc.o.d"
  "/root/repo/src/data/registry.cc" "src/CMakeFiles/lasagne.dir/data/registry.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/data/registry.cc.o.d"
  "/root/repo/src/data/splits.cc" "src/CMakeFiles/lasagne.dir/data/splits.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/data/splits.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/lasagne.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/data/synthetic.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/lasagne.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/lasagne.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/graph/graph.cc.o.d"
  "/root/repo/src/metrics/classification.cc" "src/CMakeFiles/lasagne.dir/metrics/classification.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/metrics/classification.cc.o.d"
  "/root/repo/src/metrics/mutual_info.cc" "src/CMakeFiles/lasagne.dir/metrics/mutual_info.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/metrics/mutual_info.cc.o.d"
  "/root/repo/src/models/attention.cc" "src/CMakeFiles/lasagne.dir/models/attention.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/models/attention.cc.o.d"
  "/root/repo/src/models/factory.cc" "src/CMakeFiles/lasagne.dir/models/factory.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/models/factory.cc.o.d"
  "/root/repo/src/models/gcn_family.cc" "src/CMakeFiles/lasagne.dir/models/gcn_family.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/models/gcn_family.cc.o.d"
  "/root/repo/src/models/model.cc" "src/CMakeFiles/lasagne.dir/models/model.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/models/model.cc.o.d"
  "/root/repo/src/models/propagation.cc" "src/CMakeFiles/lasagne.dir/models/propagation.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/models/propagation.cc.o.d"
  "/root/repo/src/models/sampling_models.cc" "src/CMakeFiles/lasagne.dir/models/sampling_models.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/models/sampling_models.cc.o.d"
  "/root/repo/src/models/unsupervised.cc" "src/CMakeFiles/lasagne.dir/models/unsupervised.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/models/unsupervised.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/lasagne.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/nn/layers.cc.o.d"
  "/root/repo/src/sampling/samplers.cc" "src/CMakeFiles/lasagne.dir/sampling/samplers.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/sampling/samplers.cc.o.d"
  "/root/repo/src/sparse/csr_matrix.cc" "src/CMakeFiles/lasagne.dir/sparse/csr_matrix.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/sparse/csr_matrix.cc.o.d"
  "/root/repo/src/tensor/rng.cc" "src/CMakeFiles/lasagne.dir/tensor/rng.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/tensor/rng.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/lasagne.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/train/experiment.cc" "src/CMakeFiles/lasagne.dir/train/experiment.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/train/experiment.cc.o.d"
  "/root/repo/src/train/optimizer.cc" "src/CMakeFiles/lasagne.dir/train/optimizer.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/train/optimizer.cc.o.d"
  "/root/repo/src/train/serialization.cc" "src/CMakeFiles/lasagne.dir/train/serialization.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/train/serialization.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/lasagne.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/lasagne.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
