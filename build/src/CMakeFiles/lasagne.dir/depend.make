# Empty dependencies file for lasagne.
# This may be replaced when dependencies are built.
