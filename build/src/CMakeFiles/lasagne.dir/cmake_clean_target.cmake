file(REMOVE_RECURSE
  "liblasagne.a"
)
