# Empty compiler generated dependencies file for lasagne_tests.
# This may be replaced when dependencies are built.
