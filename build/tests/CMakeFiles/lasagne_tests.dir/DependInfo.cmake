
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggregator_analysis_test.cc" "tests/CMakeFiles/lasagne_tests.dir/aggregator_analysis_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/aggregator_analysis_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/lasagne_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/baselines_behavior_test.cc" "tests/CMakeFiles/lasagne_tests.dir/baselines_behavior_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/baselines_behavior_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/lasagne_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/lasagne_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/lasagne_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/lasagne_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/lasagne_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/misc_coverage_test.cc" "tests/CMakeFiles/lasagne_tests.dir/misc_coverage_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/misc_coverage_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/lasagne_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/lasagne_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/lasagne_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sampling_test.cc" "tests/CMakeFiles/lasagne_tests.dir/sampling_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/sampling_test.cc.o.d"
  "/root/repo/tests/sparse_test.cc" "tests/CMakeFiles/lasagne_tests.dir/sparse_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/sparse_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/lasagne_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/train_test.cc" "tests/CMakeFiles/lasagne_tests.dir/train_test.cc.o" "gcc" "tests/CMakeFiles/lasagne_tests.dir/train_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lasagne.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
