file(REMOVE_RECURSE
  "CMakeFiles/lasagne_run.dir/lasagne_run.cc.o"
  "CMakeFiles/lasagne_run.dir/lasagne_run.cc.o.d"
  "lasagne_run"
  "lasagne_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lasagne_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
