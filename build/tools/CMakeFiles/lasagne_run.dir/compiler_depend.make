# Empty compiler generated dependencies file for lasagne_run.
# This may be replaced when dependencies are built.
