// Ablations for the design choices DESIGN.md documents (beyond the
// paper's own Table 6):
//   (a) GC-FM final ReLU: paper-literal ReLU(A_hat O) vs our default
//       identity (the documented deviation);
//   (b) flexible per-layer hidden dims (the freedom the paper claims
//       over ResGCN) vs uniform dims at matched parameter budget;
//   (c) aggregator spectrum incl. the non-node-aware mean and LSTM
//       aggregators — how much of the win is *node-awareness*;
//   (d) dataset heterogeneity: accuracy of GCN vs Lasagne as the
//       fraction of featureless nodes grows (the paper's node-locality
//       motivation made quantitative).

#include <cstdio>
#include <vector>

#include "common/bench_util.h"
#include "core/lasagne_model.h"
#include "data/registry.h"
#include "data/splits.h"
#include "data/synthetic.h"
#include "models/model.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

Summary RunLasagne(const Dataset& data, const LasagneConfig& base,
                   int repeats) {
  std::vector<double> accs;
  for (int r = 0; r < repeats; ++r) {
    LasagneConfig config = base;
    config.seed = base.seed + 1000 * r;
    LasagneModel model(data, config);
    TrainOptions options;
    options.max_epochs = 140;
    options.patience = 20;
    options.seed = 31 + 2000 * r;
    accs.push_back(TrainModel(model, options).test_accuracy * 100.0);
  }
  return MeanStd(accs);
}

void GcfmReluAblation(const Dataset& data, int repeats) {
  std::printf("\n-- (a) GC-FM final ReLU (paper Eq. 7 literal form)\n");
  bench::TablePrinter table({14, 16, 16});
  table.Row({"aggregator", "identity (ours)", "ReLU (paper)"});
  table.Rule();
  for (AggregatorKind kind :
       {AggregatorKind::kWeighted, AggregatorKind::kStochastic,
        AggregatorKind::kMaxPooling}) {
    LasagneConfig config;
    config.aggregator = kind;
    config.depth = 4;
    config.hidden_dim = 32;
    config.seed = 5;
    config.gcfm_final_relu = false;
    Summary identity = RunLasagne(data, config, repeats);
    config.gcfm_final_relu = true;
    Summary relu = RunLasagne(data, config, repeats);
    table.Row({AggregatorKindName(kind),
               bench::FormatMeanStd(identity.mean, identity.std_dev),
               bench::FormatMeanStd(relu.mean, relu.std_dev)});
    std::fflush(stdout);
  }
  table.Rule();
}

void FlexibleDimsAblation(const Dataset& data, int repeats) {
  std::printf("\n-- (b) flexible hidden dims (same total width budget)\n");
  bench::TablePrinter table({26, 16});
  table.Row({"hidden dims", "test acc"});
  table.Rule();
  const std::vector<std::vector<size_t>> shapes = {
      {32, 32, 32}, {48, 32, 16}, {16, 32, 48}, {64, 24, 8}};
  for (const auto& dims : shapes) {
    LasagneConfig config;
    config.aggregator = AggregatorKind::kWeighted;
    config.depth = dims.size() + 1;
    config.hidden_dims = dims;
    config.seed = 7;
    Summary s = RunLasagne(data, config, repeats);
    std::string label;
    for (size_t d : dims) label += std::to_string(d) + " ";
    table.Row({label, bench::FormatMeanStd(s.mean, s.std_dev)});
    std::fflush(stdout);
  }
  table.Rule();
}

void AggregatorSpectrum(const Dataset& data, int repeats) {
  std::printf(
      "\n-- (c) aggregator spectrum (node-aware vs uniform schemes)\n");
  bench::TablePrinter table({14, 16, 14});
  table.Row({"aggregator", "test acc", "node-aware?"});
  table.Rule();
  for (AggregatorKind kind :
       {AggregatorKind::kWeighted, AggregatorKind::kStochastic,
        AggregatorKind::kMaxPooling, AggregatorKind::kLstm,
        AggregatorKind::kMean}) {
    LasagneConfig config;
    config.aggregator = kind;
    config.depth = 5;
    config.hidden_dim = 32;
    config.seed = 9;
    Summary s = RunLasagne(data, config, repeats);
    const bool node_aware = kind == AggregatorKind::kWeighted ||
                            kind == AggregatorKind::kStochastic ||
                            kind == AggregatorKind::kMaxPooling ||
                            kind == AggregatorKind::kLstm;
    table.Row({AggregatorKindName(kind),
               bench::FormatMeanStd(s.mean, s.std_dev),
               node_aware ? "yes" : "no"});
    std::fflush(stdout);
  }
  table.Rule();
}

void HeterogeneitySweep(int repeats) {
  std::printf(
      "\n-- (d) node heterogeneity sweep: featureless-node fraction vs\n"
      "       the Lasagne-over-GCN margin (node-locality motivation)\n");
  bench::TablePrinter table({12, 12, 16, 10});
  table.Row({"featureless", "GCN(2)", "Lasagne(S,4)", "margin"});
  table.Rule();
  for (double fraction : {0.0, 0.2, 0.4, 0.6}) {
    PlantedPartitionConfig gen;
    gen.num_nodes = 600;
    gen.num_classes = 7;
    gen.feature_dim = 64;
    gen.intra_class_ratio = 0.9;
    gen.hub_intra_ratio = 0.45;
    gen.feature_noise = 1.8;
    gen.featureless_fraction = fraction;
    gen.noisy_neighborhood_fraction = 0.25;
    gen.seed = 3;
    Dataset data = GeneratePlantedPartition(gen);
    Rng rng(4);
    ApplyTransductiveSplit(data, 6, 140, 280, rng);

    ModelConfig gcn_config;
    gcn_config.depth = 2;
    gcn_config.hidden_dim = 32;
    gcn_config.seed = 11;
    TrainOptions options;
    options.max_epochs = 140;
    options.seed = 13;
    ExperimentResult gcn =
        RunRepeatedExperiment("gcn", data, gcn_config, options, repeats);

    LasagneConfig lasagne_config;
    lasagne_config.aggregator = AggregatorKind::kStochastic;
    lasagne_config.depth = 4;
    lasagne_config.hidden_dim = 32;
    lasagne_config.seed = 11;
    Summary lasagne = RunLasagne(data, lasagne_config, repeats);

    char frac_buf[16], margin_buf[16];
    std::snprintf(frac_buf, sizeof(frac_buf), "%.0f%%", 100 * fraction);
    std::snprintf(margin_buf, sizeof(margin_buf), "%+.1f",
                  lasagne.mean - gcn.test_accuracy.mean);
    table.Row({frac_buf,
               bench::FormatMeanStd(gcn.test_accuracy.mean,
                                    gcn.test_accuracy.std_dev),
               bench::FormatMeanStd(lasagne.mean, lasagne.std_dev),
               margin_buf});
    std::fflush(stdout);
  }
  table.Rule();
  std::printf(
      "Expected: the margin grows with the featureless fraction — the\n"
      "more the optimal aggregation depth varies per node, the more\n"
      "node-aware aggregation buys (the paper's Fig. 1 story).\n");
}

void Run() {
  bench::PrintBanner("Design-choice ablations",
                     "DESIGN.md documented deviations & claims");
  const double scale = bench::BenchScale();
  const int repeats = std::min(bench::BenchRepeats(), 2);
  Dataset cora = LoadDataset("cora", 0.8 * scale, /*seed=*/1);
  GcfmReluAblation(cora, repeats);
  FlexibleDimsAblation(cora, repeats);
  AggregatorSpectrum(cora, repeats);
  HeterogeneitySweep(repeats);
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
