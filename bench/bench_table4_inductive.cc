// Reproduces paper Table 4: inductive accuracy (%) on Flickr and Reddit
// for GraphSAGE / FastGCN / ClusterGCN / GraphSAINT versus Lasagne (Max
// pooling) — the only aggregator without node-indexed parameters, hence
// the only one usable inductively (paper §5.2.1).

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

struct RowSpec {
  const char* model;
  const char* label;
  const char* paper[2];  // flickr, reddit
};

constexpr RowSpec kRows[] = {
    {"graphsage", "GraphSAGE", {"50.1+-1.3", "95.4+-0.0"}},
    {"fastgcn", "FastGCN", {"50.4+-0.1", "93.7+-0.0"}},
    {"clustergcn", "ClusterGCN", {"48.1+-0.5", "96.6+-0.0"}},
    {"graphsaint", "GraphSAINT", {"51.1+-0.1", "96.6+-0.1"}},
    {"lasagne-maxpool", "Lasagne (Max pool)", {"52.9+-0.2", "96.7+-0.1"}},
};

void Run() {
  bench::PrintBanner("Table 4: inductive accuracy (%)",
                     "paper Table 4 (Flickr / Reddit)");
  const double scale = bench::BenchScale();
  const int repeats = bench::BenchRepeats();
  Dataset flickr = LoadDataset("flickr", 0.5 * scale, /*seed=*/1);
  Dataset reddit = LoadDataset("reddit", 0.4 * scale, /*seed=*/1);
  const Dataset* datasets[2] = {&flickr, &reddit};

  bench::TablePrinter table({20, 11, 12, 11, 12});
  table.Row({"Model", "Flickr", "Flickr(ours)", "Reddit",
             "Reddit(ours)"});
  table.Rule();
  for (const RowSpec& row : kRows) {
    std::vector<std::string> cells = {row.label};
    for (int d = 0; d < 2; ++d) {
      ModelConfig config;
      config.depth = 3;
      config.hidden_dim = 32;
      config.dropout = d == 0 ? 0.5f : 0.2f;  // paper's per-dataset rates
      config.seed = 21;
      TrainOptions options;
      options.max_epochs = 120;
      options.patience = 20;
      options.learning_rate = d == 0 ? 0.01f : 0.005f;
      options.weight_decay = 1e-5f;
      options.seed = 77;
      ExperimentResult result = RunRepeatedExperiment(
          row.model, *datasets[d], config, options, repeats);
      cells.push_back(row.paper[d]);
      cells.push_back(bench::FormatMeanStd(result.test_accuracy.mean,
                                           result.test_accuracy.std_dev));
    }
    table.Row(cells);
    std::fflush(stdout);
  }
  table.Rule();
  std::printf(
      "Shape check: Lasagne (Max pooling) should match or beat the four\n"
      "sampling baselines on both inductive datasets.\n"
      "NOTE: our synthetic inductive graphs are far easier than Flickr\n"
      "(paper ~50%%), so compare ordering, not magnitude.\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
