// Reproduces paper Table 5: test accuracy (%) on Amazon Computer /
// Amazon Photo / Coauthor CS / Coauthor Physics / Tencent for GAT, GCN,
// JK-Net, ResGCN, DenseGCN and the three Lasagne aggregators.
//
// Expected shape: Lasagne wins every column; the margin is largest on
// the bipartite Tencent stand-in where hub ("hot video") over-smoothing
// is most severe.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

struct RowSpec {
  const char* model;
  const char* label;
  const char* paper[5];
};

constexpr RowSpec kRows[] = {
    {"gat", "GAT",
     {"80.1", "85.7", "87.4", "90.2", "46.8"}},
    {"gcn", "GCN",
     {"82.4", "85.9", "90.7", "92.7", "45.9"}},
    {"jknet", "JK-Net",
     {"82.0", "85.9", "89.5", "92.5", "47.2"}},
    {"resgcn", "ResGCN",
     {"81.1", "85.3", "87.9", "92.2", "46.8"}},
    {"densegcn", "DenseGCN",
     {"81.3", "84.9", "88.4", "91.9", "46.5"}},
    {"lasagne-weighted", "Lasagne (W)",
     {"83.9", "87.4", "92.4", "93.8", "47.6"}},
    {"lasagne-stochastic", "Lasagne (S)",
     {"84.5", "88.2", "92.5", "94.1", "48.7"}},
    {"lasagne-maxpool", "Lasagne (M)",
     {"84.1", "88.7", "92.1", "93.8", "48.1"}},
};

void Run() {
  bench::PrintBanner("Table 5: accuracy (%) on other datasets",
                     "paper Table 5 (Amazon/Coauthor/Tencent)");
  const double scale = bench::BenchScale();
  const int repeats = bench::BenchRepeats();
  const char* names[5] = {"amazon-computer", "amazon-photo", "coauthor-cs",
                          "coauthor-physics", "tencent"};
  std::vector<Dataset> datasets;
  for (const char* name : names) {
    datasets.push_back(LoadDataset(name, 0.55 * scale, /*seed=*/1));
  }
  bench::TablePrinter table({14, 6, 11, 6, 11, 6, 11, 6, 11, 6, 11});
  table.Row({"Model", "Comp", "ours", "Photo", "ours", "CS", "ours",
             "Phys", "ours", "Tenc", "ours"});
  table.Rule();
  for (const RowSpec& row : kRows) {
    std::vector<std::string> cells = {row.label};
    for (int d = 0; d < 5; ++d) {
      ModelConfig config;
      config.depth = 4;
      config.hidden_dim = 32;
      config.dropout = d == 4 ? 0.5f : 0.3f;  // paper's rates
      config.seed = 33;
      TrainOptions options;
      options.max_epochs = 120;
      options.patience = 20;
      options.learning_rate = d == 4 ? 0.02f : 0.01f;
      options.weight_decay = 1e-5f;
      options.seed = 55;
      bench::TuneForModel(row.model, config, options);
      ExperimentResult result = RunRepeatedExperiment(
          row.model, datasets[d], config, options, repeats);
      cells.push_back(row.paper[d]);
      cells.push_back(bench::FormatMeanStd(result.test_accuracy.mean,
                                           result.test_accuracy.std_dev));
    }
    table.Row(cells);
    std::fflush(stdout);
  }
  table.Rule();
  std::printf(
      "Shape check: Lasagne rows lead every column; the Tencent column\n"
      "(bipartite hub-skewed production stand-in) shows the clearest\n"
      "gap, mirroring the paper's production result.\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
