// Reproduces paper Fig. 7: training efficiency.
//  (a) per-epoch time at depth 4 for GCN, Lasagne (Weighted) and GAT on
//      the citation datasets and Tencent;
//  (b) per-epoch time vs depth (2..10) on Cora.
//
// The paper ran a TITAN RTX; we run one CPU core, so absolute times
// differ. The claim under test is RELATIVE: Lasagne costs about the
// same as GCN (both linear in |E| and N), while GAT is far more
// expensive per epoch (per-edge attention, multi-head). We also print
// an analytic per-epoch FLOP estimate, which is hardware-independent.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

// Rough forward-pass FLOP count per epoch; backward ~ 2x forward.
double EstimateFlops(const std::string& model, const Dataset& data,
                     size_t depth, size_t hidden, size_t heads) {
  const double n = static_cast<double>(data.num_nodes());
  const double e = 2.0 * data.graph.num_edges() + n;  // directed + self
  const double m = static_cast<double>(data.feature_dim());
  const double d = static_cast<double>(hidden);
  double flops = 0.0;
  if (model == "gcn") {
    for (size_t l = 0; l < depth; ++l) {
      const double in = l == 0 ? m : d;
      flops += 2.0 * n * in * d + 2.0 * e * d;
    }
  } else if (model == "lasagne-weighted") {
    for (size_t l = 0; l < depth; ++l) {
      const double in = l == 0 ? m : d;
      flops += 2.0 * n * in * d + 2.0 * e * d;  // base conv
      // Cross-layer transforms + row scaling + propagation per earlier
      // layer (Eq. 5).
      flops += static_cast<double>(l) * (2.0 * n * d * d + 2.0 * e * d +
                                         2.0 * n * d);
    }
    // GC-FM output layer: O(N * F * (depth*d) * k).
    flops += 2.0 * n * static_cast<double>(data.num_classes) *
             (static_cast<double>(depth) * d) * 5.0;
  } else if (model == "gat") {
    for (size_t l = 0; l < depth; ++l) {
      const double in = l == 0 ? m : d * heads;
      // heads x (projection + per-edge scores/softmax/aggregate).
      flops += heads * (2.0 * n * in * d + 6.0 * e * d + 8.0 * e);
    }
  }
  return 3.0 * flops;  // forward + ~2x backward
}

double MeasureEpochMs(const std::string& model, const Dataset& data,
                      size_t depth) {
  ModelConfig config;
  config.depth = depth;
  config.hidden_dim = 32;
  config.dropout = 0.5f;
  config.heads = 4;
  config.seed = 3;
  TrainOptions options;
  options.max_epochs = 12;
  options.patience = 12;
  options.restore_best = false;
  options.seed = 5;
  std::unique_ptr<Model> m = MakeModel(model, data, config);
  return TrainModel(*m, options).mean_epoch_time_ms;
}

void PartA(double scale) {
  std::printf("\n-- Fig. 7(a): per-epoch time (ms), depth = 4\n");
  const char* names[4] = {"cora", "citeseer", "pubmed", "tencent"};
  bench::TablePrinter table({10, 12, 16, 12, 14, 16, 14});
  table.Row({"dataset", "GCN ms", "Lasagne(W) ms", "GAT ms", "GCN GF",
             "Lasagne(W) GF", "GAT GF"});
  table.Rule();
  for (const char* name : names) {
    Dataset data = LoadDataset(name, 0.7 * scale, /*seed=*/1);
    std::vector<std::string> row = {name};
    char buf[32];
    for (const char* model : {"gcn", "lasagne-weighted", "gat"}) {
      std::snprintf(buf, sizeof(buf), "%.2f",
                    MeasureEpochMs(model, data, 4));
      row.push_back(buf);
    }
    for (const char* model : {"gcn", "lasagne-weighted", "gat"}) {
      std::snprintf(buf, sizeof(buf), "%.4f",
                    EstimateFlops(model, data, 4, 32, 4) / 1e9);
      row.push_back(buf);
    }
    table.Row(row);
    std::fflush(stdout);
  }
  table.Rule();
}

void PartB(double scale) {
  std::printf("\n-- Fig. 7(b): per-epoch time (ms) vs depth on Cora\n");
  Dataset data = LoadDataset("cora", 0.7 * scale, /*seed=*/1);
  bench::TablePrinter table({8, 12, 16, 12});
  table.Row({"depth", "GCN ms", "Lasagne(W) ms", "GAT ms"});
  table.Rule();
  for (size_t depth : {2, 4, 6, 8, 10}) {
    std::vector<std::string> row = {std::to_string(depth)};
    char buf[32];
    for (const char* model : {"gcn", "lasagne-weighted", "gat"}) {
      std::snprintf(buf, sizeof(buf), "%.2f",
                    MeasureEpochMs(model, data, depth));
      row.push_back(buf);
    }
    table.Row(row);
    std::fflush(stdout);
  }
  table.Rule();
}

void PartC(double scale) {
  // Thread-count sweep over the parallel compute layer. Kernels are
  // bitwise-deterministic across thread counts, so only the wall clock
  // moves. Speedups require physical cores; on a 1-core machine the
  // sweep is flat.
  std::printf("\n-- Fig. 7(c): per-epoch time (ms) vs threads, depth = 4\n");
  const size_t original_threads = GetNumThreads();
  Dataset data = LoadDataset("pubmed", 0.7 * scale, /*seed=*/1);
  bench::TablePrinter table({9, 12, 16, 12});
  table.Row({"threads", "GCN ms", "Lasagne(W) ms", "GAT ms"});
  table.Rule();
  for (size_t threads : {1, 2, 4, 8}) {
    SetNumThreads(threads);
    std::vector<std::string> row = {std::to_string(threads)};
    char buf[32];
    for (const char* model : {"gcn", "lasagne-weighted", "gat"}) {
      std::snprintf(buf, sizeof(buf), "%.2f",
                    MeasureEpochMs(model, data, 4));
      row.push_back(buf);
    }
    table.Row(row);
    std::fflush(stdout);
  }
  table.Rule();
  SetNumThreads(original_threads);
}

void Run() {
  bench::PrintBanner("Figure 7: efficiency comparison",
                     "paper Fig. 7(a)/(b)");
  const double scale = bench::BenchScale();
  PartA(scale);
  PartB(scale);
  PartC(scale);
  std::printf(
      "\nShape check: Lasagne(W) within a small constant of GCN at every\n"
      "depth; GAT several times slower (the paper reports up to 100x on\n"
      "large graphs with 24GB GPU memory exhausted).\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
