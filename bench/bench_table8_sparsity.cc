// Reproduces paper Table 8: accuracy as the training label rate grows,
// on Cora (5/10/15/20 labels per class = 1.3/2.6/3.9/5.2%) and NELL
// (0.1/1/10%).
//
// Expected shape: Lasagne leads at every label rate; the advantage is
// clearest at the lowest rates (deep aggregation compensates for label
// scarcity).

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "data/splits.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

const char* kModels[] = {"gcn",
                         "resgcn",
                         "densegcn",
                         "jknet",
                         "lasagne-weighted",
                         "lasagne-stochastic",
                         "lasagne-maxpool"};

void SweepDataset(const char* name, double scale,
                  const std::vector<size_t>& labels_per_class,
                  int repeats) {
  // The paper's protocol: "5, 10, 15 and 20 labeled nodes per class".
  // Sweeping absolute per-class counts (not node fractions) keeps the
  // label BUDGET comparable to the paper's regime on scaled graphs.
  Dataset data = LoadDataset(name, scale, /*seed=*/1);
  std::printf("\n-- %s (labeled nodes per class; rate shown per column)\n",
              name);
  std::vector<int> widths = {20};
  for (size_t c : labels_per_class) {
    (void)c;
    widths.push_back(12);
  }
  bench::TablePrinter table(widths);
  std::vector<std::string> header = {"model \\ labels"};
  for (size_t c : labels_per_class) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%zu (%.1f%%)", c,
                  100.0 * static_cast<double>(c * data.num_classes) /
                      static_cast<double>(data.num_nodes()));
    header.push_back(buf);
  }
  table.Row(header);
  table.Rule();
  for (const char* model : kModels) {
    std::vector<std::string> row = {model};
    for (size_t per_class : labels_per_class) {
      Dataset sweep = data;
      Rng rng(97);
      ResampleTrainPerClass(sweep, per_class, rng);
      ModelConfig config;
      config.depth = 4;
      config.hidden_dim = 24;
      config.dropout = 0.5f;
      config.seed = 7;
      TrainOptions options;
      options.max_epochs = 120;
      options.patience = 20;
      options.seed = 17;
      ExperimentResult result =
          RunRepeatedExperiment(model, sweep, config, options, repeats);
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%.1f", result.test_accuracy.mean);
      row.push_back(buf);
    }
    table.Row(row);
    std::fflush(stdout);
  }
  table.Rule();
}

void Run() {
  bench::PrintBanner(
      "Table 8: accuracy vs label rate (Cora / NELL stand-ins)",
      "paper Table 8");
  const double scale = bench::BenchScale();
  const int repeats = std::min(bench::BenchRepeats(), 2);
  // Paper: Cora 5/10/15/20 labels per class (1.3-5.2%); NELL 0.1/1/10%
  // label rates, which on 65755 nodes are roughly 0.3/3/31 per class —
  // we sweep {1, 3, 12} per class on the scaled stand-in.
  SweepDataset("cora", 0.55 * scale, {5, 10, 15, 20}, repeats);
  SweepDataset("nell", 0.4 * scale, {1, 3, 12}, repeats);
  std::printf(
      "\nShape check: Lasagne rows lead at every rate; their margin over\n"
      "GCN should be widest at the smallest label rates.\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
