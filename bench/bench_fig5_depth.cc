// Reproduces paper Fig. 5 (accuracy vs model depth on the citation
// datasets + NELL) and the §5.2.2 depth analysis (stochastic aggregator
// probabilities vs PageRank node locality).
//
// Expected shape: plain GCN peaks at 2 layers then decays fast; ResGCN /
// DenseGCN / JK-Net decay more slowly; all three Lasagne aggregators
// stay flat or improve with depth and dominate at depth >= 5.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "core/lasagne_model.h"
#include "data/registry.h"
#include "graph/algorithms.h"
#include "metrics/mutual_info.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

void DepthSweep(const char* dataset_name, double scale, int repeats) {
  Dataset data = LoadDataset(dataset_name, scale, /*seed=*/1);
  Rng apl_rng(3);
  const double apl = AveragePathLengthSampled(data.graph, 48, apl_rng);
  std::printf("\n-- %s (APL of stand-in: %.1f; paper APLs: Cora 7.3, "
              "Citeseer 10.3, Pubmed 6.3, NELL 5.4)\n",
              dataset_name, apl);
  const std::vector<std::string> models = {
      "gcn", "resgcn", "densegcn", "jknet",
      "lasagne-weighted", "lasagne-stochastic", "lasagne-maxpool"};
  const std::vector<size_t> depths = {2, 4, 6, 8, 10};
  std::vector<int> widths = {20};
  for (size_t d : depths) widths.push_back(9);
  bench::TablePrinter table(widths);
  std::vector<std::string> header = {"model \\ depth"};
  for (size_t d : depths) header.push_back("L=" + std::to_string(d));
  table.Row(header);
  table.Rule();
  for (const std::string& model : models) {
    std::vector<std::string> row = {model};
    for (size_t depth : depths) {
      ModelConfig config;
      config.depth = depth;
      config.hidden_dim = 24;
      config.dropout = 0.4f;
      config.seed = 9;
      TrainOptions options;
      options.max_epochs = 100;
      options.patience = 15;
      options.seed = 19;
      ExperimentResult result =
          RunRepeatedExperiment(model, data, config, options, repeats);
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%.1f", result.test_accuracy.mean);
      row.push_back(buf);
    }
    table.Row(row);
    std::fflush(stdout);
  }
  table.Rule();
}

// §5.2.2: train a 5-layer Lasagne (Stochastic) on Cora and correlate the
// learned aggregation probabilities with PageRank. The paper reports the
// most-central node prefers early layers ([1.00, 0.95, 0.89]) while the
// least-central prefers distant ones ([0.67, 0.86, 1.00]).
void StochasticDepthAnalysis(double scale) {
  std::printf("\n-- Depth analysis (paper §5.2.2): P distribution vs "
              "PageRank on Cora\n");
  Dataset data = LoadDataset("cora", scale, /*seed=*/2);
  LasagneConfig config;
  config.aggregator = AggregatorKind::kStochastic;
  config.depth = 5;
  config.hidden_dim = 24;
  config.dropout = 0.4f;
  config.seed = 5;
  LasagneModel model(data, config);
  TrainOptions options;
  options.max_epochs = 200;
  options.patience = 30;
  options.seed = 23;
  TrainModel(model, options);

  Tensor probs = model.StochasticProbabilities();
  Tensor pagerank = PageRank(data.graph);
  size_t central = 0, peripheral = 0;
  for (size_t i = 1; i < data.num_nodes(); ++i) {
    if (pagerank(i, 0) > pagerank(central, 0)) central = i;
    if (pagerank(i, 0) < pagerank(peripheral, 0)) peripheral = i;
  }
  auto print_node = [&](const char* tag, size_t node) {
    std::printf("  %s node %zu (PR %.4f): P = [", tag, node,
                pagerank(node, 0));
    for (size_t c = 0; c + 1 < probs.cols(); ++c) {
      std::printf("%s%.2f", c ? ", " : "", probs(node, c));
    }
    std::printf("] (first layers' activation probability)\n");
  };
  print_node("central   ", central);
  print_node("peripheral", peripheral);

  // Aggregate statistic: correlation between PageRank and the node's
  // preference for EARLY layers (prob(layer 1) - prob(last layer)).
  std::vector<double> pr, early_pref;
  for (size_t i = 0; i < data.num_nodes(); ++i) {
    pr.push_back(pagerank(i, 0));
    early_pref.push_back(probs(i, 0) - probs(i, probs.cols() - 1));
  }
  std::printf(
      "  Spearman(PageRank, early-layer preference) = %.3f\n"
      "  (paper: central nodes prefer nearby hops -> positive trend)\n",
      SpearmanCorrelation(pr, early_pref));
}

void Run() {
  bench::PrintBanner(
      "Figure 5 + depth analysis: accuracy vs number of layers",
      "paper Fig. 5 and §5.2.2");
  const double scale = bench::BenchScale();
  const int repeats = std::min(bench::BenchRepeats(), 2);
  DepthSweep("cora", 0.5 * scale, repeats);
  DepthSweep("citeseer", 0.5 * scale, repeats);
  DepthSweep("pubmed", 0.3 * scale, repeats);
  DepthSweep("nell", 0.4 * scale, repeats);
  StochasticDepthAnalysis(0.6 * scale);
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
