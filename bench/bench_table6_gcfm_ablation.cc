// Reproduces paper Table 6: ablation of the GC-FM layer — Lasagne with
// each aggregator, with and without GC-FM, on the three citation sets.
//
// Expected shape: +GC-FM >= baseline in (nearly) every cell, with gains
// of a few tenths of a percent, as in the paper.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

struct RowSpec {
  const char* base_model;  // "-nofm" variant name
  const char* full_model;
  const char* label;
  const char* paper[6];  // cora base, cora fm, cs base, cs fm, pm base, pm fm
};

constexpr RowSpec kRows[] = {
    {"lasagne-weighted-nofm", "lasagne-weighted", "Weighted",
     {"83.8", "84.1", "72.9", "73.2", "79.4", "79.5"}},
    {"lasagne-stochastic-nofm", "lasagne-stochastic", "Stochastic",
     {"84.0", "84.2", "72.5", "73.1", "79.8", "80.2"}},
    {"lasagne-maxpool-nofm", "lasagne-maxpool", "Max Pooling",
     {"83.7", "84.1", "72.7", "73.3", "79.3", "79.6"}},
};

void Run() {
  bench::PrintBanner("Table 6: GC-FM ablation (accuracy %)",
                     "paper Table 6 (with / without GC-FM)");
  const double scale = bench::BenchScale();
  const int repeats = bench::BenchRepeats();
  const char* names[3] = {"cora", "citeseer", "pubmed"};
  std::vector<Dataset> datasets;
  for (const char* name : names) {
    datasets.push_back(LoadDataset(name, 0.7 * scale, /*seed=*/1));
  }

  bench::TablePrinter table({12, 11, 11, 11, 11, 11, 11});
  table.Row({"Aggregator", "Cora base", "Cora +FM", "CiteS base",
             "CiteS +FM", "PubMed base", "PubMed +FM"});
  table.Rule();
  std::printf("(paper values)\n");
  for (const RowSpec& row : kRows) {
    table.Row({row.label, row.paper[0], row.paper[1], row.paper[2],
               row.paper[3], row.paper[4], row.paper[5]});
  }
  table.Rule();
  std::printf("(our measurements)\n");
  for (const RowSpec& row : kRows) {
    std::vector<std::string> cells = {row.label};
    for (int d = 0; d < 3; ++d) {
      for (const char* model : {row.base_model, row.full_model}) {
        ModelConfig config;
        config.depth = 4;
        config.hidden_dim = 32;
        config.dropout = 0.5f;
        config.seed = 3;
        TrainOptions options;
        options.max_epochs = 140;
        options.patience = 20;
        options.seed = 13;
        ExperimentResult result = RunRepeatedExperiment(
            model, datasets[d], config, options, repeats);
        cells.push_back(bench::FormatMeanStd(
            result.test_accuracy.mean, result.test_accuracy.std_dev));
      }
    }
    table.Row(cells);
    std::fflush(stdout);
  }
  table.Rule();
  std::printf("Shape check: the +FM column should not lose to its base\n"
              "column (cross-layer interactions add information).\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
