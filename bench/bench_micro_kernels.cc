// Micro-benchmarks of the kernels everything else is built on: SpMM,
// dense GEMM, graph-convolution forward/backward, the three Lasagne
// aggregators, GC-FM, edge softmax (GAT) and the MI estimator.

#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "autograd/edge_ops.h"
#include "autograd/fm_op.h"
#include "autograd/ops.h"
#include "common/bench_util.h"
#include "common/thread_pool.h"
#include "core/aggregators.h"
#include "core/gcfm.h"
#include "data/registry.h"
#include "metrics/mutual_info.h"
#include "nn/layers.h"
#include "train/optimizer.h"

namespace lasagne {
namespace {

struct Fixture {
  Fixture() : data(LoadDataset("cora", 1.0, 1)) {
    a_hat = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
    Rng rng(1);
    h = Tensor::Normal(data.num_nodes(), 32, 0.0f, 1.0f, rng);
  }
  Dataset data;
  std::shared_ptr<CsrMatrix> a_hat;
  Tensor h;
};

Fixture& GetFixture() {
  static Fixture& fixture = *new Fixture();
  return fixture;
}

void BM_SpMM(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.a_hat->Multiply(f.h));
  }
  state.SetItemsProcessed(state.iterations() * f.a_hat->nnz());
}
BENCHMARK(BM_SpMM);

void BM_DenseGemm(benchmark::State& state) {
  Fixture& f = GetFixture();
  Rng rng(2);
  Tensor w = Tensor::Normal(32, 32, 0.0f, 1.0f, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.h.MatMul(w));
  }
}
BENCHMARK(BM_DenseGemm);

void BM_GraphConvForwardBackward(benchmark::State& state) {
  Fixture& f = GetFixture();
  Rng rng(3);
  nn::GraphConvolution conv(32, 32, rng);
  nn::ForwardContext ctx{true, &rng};
  ag::Variable x = ag::MakeParameter(f.h);
  for (auto _ : state) {
    x->ZeroGrad();
    for (const auto& p : conv.Parameters()) p->ZeroGrad();
    ag::Variable out = conv.Forward(f.a_hat, x, ctx, 0.0f, true);
    ag::BackwardWithGrad(out, Tensor::Ones(out->rows(), out->cols()));
    benchmark::DoNotOptimize(out->value().data());
  }
}
BENCHMARK(BM_GraphConvForwardBackward);

template <AggregatorKind kKind>
void BM_Aggregator(benchmark::State& state) {
  Fixture& f = GetFixture();
  Rng rng(4);
  const size_t layers = static_cast<size_t>(state.range(0));
  ag::Variable shared_p = ag::MakeParameter(
      Tensor::Normal(f.data.num_nodes(), layers, 0.0f, 0.1f, rng));
  std::vector<size_t> dims(layers, 32);
  auto agg = MakeAggregator(kKind, f.data.num_nodes(), layers, dims,
                            shared_p, rng);
  std::vector<ag::Variable> history;
  for (size_t l = 0; l < layers; ++l) {
    history.push_back(ag::MakeConstant(f.h));
  }
  nn::ForwardContext ctx{false, &rng};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        agg->Aggregate(f.a_hat, history, ctx)->value().data());
  }
}
BENCHMARK(BM_Aggregator<AggregatorKind::kWeighted>)->Arg(4)->Arg(8);
BENCHMARK(BM_Aggregator<AggregatorKind::kMaxPooling>)->Arg(4)->Arg(8);
BENCHMARK(BM_Aggregator<AggregatorKind::kStochastic>)->Arg(4)->Arg(8);

void BM_GcFmLayer(benchmark::State& state) {
  Fixture& f = GetFixture();
  Rng rng(5);
  const size_t layers = static_cast<size_t>(state.range(0));
  std::vector<size_t> dims(layers, 32);
  GcFmLayer layer(dims, f.data.num_classes, 5, rng);
  std::vector<ag::Variable> hidden;
  for (size_t l = 0; l < layers; ++l) {
    hidden.push_back(ag::MakeConstant(f.h));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layer.Forward(f.a_hat, hidden)->value().data());
  }
}
BENCHMARK(BM_GcFmLayer)->Arg(3)->Arg(9);

void BM_EdgeSoftmaxAggregate(benchmark::State& state) {
  Fixture& f = GetFixture();
  Rng rng(6);
  auto edges = ag::EdgeStructure::FromGraph(f.data.graph, true);
  ag::Variable scores = ag::MakeParameter(
      Tensor::Normal(edges->num_edges(), 1, 0.0f, 1.0f, rng));
  ag::Variable feats = ag::MakeConstant(f.h);
  for (auto _ : state) {
    ag::Variable alpha = ag::EdgeSoftmax(scores, edges);
    benchmark::DoNotOptimize(
        ag::EdgeWeightedAggregate(alpha, feats, edges)->value().data());
  }
}
BENCHMARK(BM_EdgeSoftmaxAggregate);

void BM_RepresentationMI(benchmark::State& state) {
  Fixture& f = GetFixture();
  Rng rng(7);
  for (auto _ : state) {
    Rng mi_rng = rng.Split();
    benchmark::DoNotOptimize(RepresentationMutualInformation(
        f.data.features, f.h, 8, mi_rng));
  }
}
BENCHMARK(BM_RepresentationMI);

void BM_NormalizedAdjacency(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.data.graph.NormalizedAdjacency().nnz());
  }
}
BENCHMARK(BM_NormalizedAdjacency);

// -- Thread-count sweeps on a >= 10k-node graph ----------------------------
//
// The sweep drives the parallel compute layer (docs/THREADING.md); the
// benchmark argument is the thread count. Outputs are
// bitwise-identical across thread counts (asserted in
// tests/parallel_determinism_test.cc); only wall clock should move, and
// only on machines with that many physical cores.

struct LargeFixture {
  LargeFixture() : data(LoadDataset("pubmed", 1.0, 1)) {
    a_hat = std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
    Rng rng(11);
    h = Tensor::Normal(data.num_nodes(), 64, 0.0f, 1.0f, rng);
    w = Tensor::Normal(64, 64, 0.0f, 1.0f, rng);
  }
  Dataset data;
  std::shared_ptr<CsrMatrix> a_hat;
  Tensor h;
  Tensor w;
};

LargeFixture& GetLargeFixture() {
  static LargeFixture& fixture = *new LargeFixture();
  return fixture;
}

void BM_DenseGemmLarge(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.h.MatMul(f.w));
  }
  state.SetItemsProcessed(state.iterations() * f.h.rows() * 64 * 64);
  SetNumThreads(0);
}
BENCHMARK(BM_DenseGemmLarge)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SpMMLarge(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.a_hat->Multiply(f.h));
  }
  state.SetItemsProcessed(state.iterations() * f.a_hat->nnz() * 64);
  SetNumThreads(0);
}
BENCHMARK(BM_SpMMLarge)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_TransposedSpMMLarge(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.a_hat->TransposedMultiply(f.h));
  }
  state.SetItemsProcessed(state.iterations() * f.a_hat->nnz() * 64);
  SetNumThreads(0);
}
BENCHMARK(BM_TransposedSpMMLarge)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

// The single-pass fused attention kernel vs the four-op eager chain it
// replaces (docs/KERNELS.md). Same float semantics, same output bits;
// the contrast is edge-array traffic: one CSR sweep instead of four.
void BM_EdgeAttentionFusedLarge(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  Rng rng(19);
  auto edges = ag::EdgeStructure::FromGraph(f.data.graph, true);
  const size_t n = f.data.num_nodes();
  ag::Variable dst =
      ag::MakeConstant(Tensor::Normal(n, 1, 0.0f, 1.0f, rng));
  ag::Variable src =
      ag::MakeConstant(Tensor::Normal(n, 1, 0.0f, 1.0f, rng));
  ag::Variable feats = ag::MakeConstant(f.h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ag::EdgeAttention(dst, src, feats, edges, 0.2f, nullptr)
            ->value()
            .data());
  }
  state.SetItemsProcessed(state.iterations() * edges->num_edges() * 64);
  SetNumThreads(0);
}
BENCHMARK(BM_EdgeAttentionFusedLarge)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

void BM_EdgeChainUnfusedLarge(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  Rng rng(19);
  auto edges = ag::EdgeStructure::FromGraph(f.data.graph, true);
  const size_t n = f.data.num_nodes();
  ag::Variable dst =
      ag::MakeConstant(Tensor::Normal(n, 1, 0.0f, 1.0f, rng));
  ag::Variable src =
      ag::MakeConstant(Tensor::Normal(n, 1, 0.0f, 1.0f, rng));
  ag::Variable feats = ag::MakeConstant(f.h);
  for (auto _ : state) {
    ag::Variable e = ag::GatherEdgeScores(dst, src, edges);
    e = ag::LeakyRelu(e, 0.2f);
    ag::Variable alpha = ag::EdgeSoftmax(e, edges);
    benchmark::DoNotOptimize(
        ag::EdgeWeightedAggregate(alpha, feats, edges)->value().data());
  }
  state.SetItemsProcessed(state.iterations() * edges->num_edges() * 64);
  SetNumThreads(0);
}
BENCHMARK(BM_EdgeChainUnfusedLarge)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

// Sparse x sparse A_hat^2 through the blocked row merge
// (kSpGemmColBlock-wide column windows over the accumulator); serial
// by design, so a single-thread row only.
void BM_SpGemmLarge(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.a_hat->Multiply(*f.a_hat, 0.0f, 0).nnz());
  }
  state.SetItemsProcessed(state.iterations() * f.a_hat->nnz());
}
BENCHMARK(BM_SpGemmLarge)->ArgName("threads")->Arg(1);

// -- Fused kernels and the buffer pool -------------------------------------

void BM_MatMulTransposedLarge(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  SetNumThreads(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.h.MatMulTransposed(f.w));
  }
  state.SetItemsProcessed(state.iterations() * f.h.rows() * 64 * 64);
  SetNumThreads(0);
}
BENCHMARK(BM_MatMulTransposedLarge)->ArgName("threads")->Arg(1)->Arg(8);

void BM_AdamStepFused(benchmark::State& state) {
  Rng rng(13);
  std::vector<ag::Variable> params;
  for (int i = 0; i < 4; ++i) {
    params.push_back(
        ag::MakeParameter(Tensor::Normal(1433, 64, 0.0f, 0.1f, rng)));
  }
  AdamOptimizer opt(params, 0.01f, 5e-4f);
  for (const ag::Variable& p : params) {
    p->AccumulateGrad(Tensor::Normal(1433, 64, 0.0f, 0.1f, rng));
  }
  for (auto _ : state) {
    opt.Step();
  }
  state.SetItemsProcessed(state.iterations() * params.size() * 1433 * 64);
}
BENCHMARK(BM_AdamStepFused);

void BM_LinearBiasForward(benchmark::State& state) {
  // Fused AddRowVector bias broadcast vs the retired ones @ bias GEMM.
  Fixture& f = GetFixture();
  Rng rng(17);
  nn::Linear linear(32, 32, rng, /*bias=*/true);
  ag::Variable x = ag::MakeConstant(f.h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear.Forward(x)->value().data());
  }
  state.SetItemsProcessed(state.iterations() * f.h.rows() * 32);
}
BENCHMARK(BM_LinearBiasForward);

void BM_ReluForwardBackwardFused(benchmark::State& state) {
  LargeFixture& f = GetLargeFixture();
  ag::Variable x = ag::MakeParameter(f.h);
  const Tensor g = Tensor::Ones(f.h.rows(), f.h.cols());
  for (auto _ : state) {
    x->ZeroGrad();
    ag::Variable y = ag::Relu(x);
    ag::BackwardWithGrad(y, g);
    benchmark::DoNotOptimize(x->grad().data());
  }
  state.SetItemsProcessed(state.iterations() * f.h.size() * 2);
}
BENCHMARK(BM_ReluForwardBackwardFused);

void BM_PoolAllocationChurn(benchmark::State& state) {
  // Steady-state temporary churn: the pattern autograd generates every
  // epoch. With the pool warm this is freelist checkout, not malloc.
  for (auto _ : state) {
    Tensor a = Tensor::Uninitialized(2708, 64);
    Tensor b = Tensor::Uninitialized(2708, 16);
    Tensor c = Tensor::Uninitialized(1, 64);
    benchmark::DoNotOptimize(a.data());
    benchmark::DoNotOptimize(b.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_PoolAllocationChurn);

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  // Strip our own flags before handing argv to google-benchmark, which
  // rejects flags it does not know.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 < argc && (arg == "--threads" || arg == "--trace-out" ||
                         arg == "--metrics-out")) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
