// Reproduces paper Fig. 6: mutual information between the LAST layer's
// hidden representation and the input features, tracked DURING training
// of 10-layer models on Cora.
//
// Expected shape: DenseGCN / JK-Net start high and drop as training
// over-smooths; Lasagne keeps the highest last-layer MI throughout.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "metrics/mutual_info.h"
#include "models/model.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

void Run() {
  bench::PrintBanner(
      "Figure 6: last-layer MI during training (10-layer models, Cora)",
      "paper Fig. 6");
  const double scale = bench::BenchScale();
  Dataset data = LoadDataset("cora", 0.4 * scale, /*seed=*/1);

  const std::vector<std::string> models = {
      "gcn", "resgcn", "densegcn", "jknet", "lasagne-stochastic"};
  const size_t probe_every = 10;
  const size_t max_epochs = 100;

  std::vector<int> widths = {20};
  for (size_t e = 0; e < max_epochs; e += probe_every) widths.push_back(8);
  bench::TablePrinter table(widths);
  std::vector<std::string> header = {"model \\ epoch"};
  for (size_t e = 0; e < max_epochs; e += probe_every) {
    header.push_back("e" + std::to_string(e));
  }
  table.Row(header);
  table.Rule();

  for (const std::string& name : models) {
    ModelConfig config;
    config.depth = 10;
    config.hidden_dim = 16;
    config.dropout = 0.5f;
    config.seed = 13;
    std::unique_ptr<Model> model = MakeModel(name, data, config);
    std::vector<double> mi_series;
    Rng probe_rng(31);
    TrainOptions options;
    options.max_epochs = max_epochs;
    options.patience = max_epochs;  // no early stop: fixed-length curves
    options.seed = 41;
    options.epoch_callback = [&](size_t epoch, Model& m) {
      if (epoch % probe_every != 0) return;
      Rng fwd_rng(7);
      nn::ForwardContext ctx{false, &fwd_rng};
      m.Forward(ctx);
      const Tensor& last = m.hidden_states().back();
      Rng mi_rng = probe_rng.Split();
      mi_series.push_back(
          RepresentationMutualInformation(data.features, last, 8, mi_rng));
    };
    TrainModel(*model, options);
    std::vector<std::string> row = {name};
    for (double mi : mi_series) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f", mi);
      row.push_back(buf);
    }
    table.Row(row);
    std::fflush(stdout);
  }
  table.Rule();
  std::printf(
      "Shape check: the Lasagne row should end with the highest MI; the\n"
      "plain GCN row should sit lowest (over-smoothed last layer).\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
