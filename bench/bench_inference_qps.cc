// Steady-state serving benchmark for the forward-only inference path.
//
// Drives infer::InferenceSession over repeated batches of query nodes
// and reports steady-state QPS, p50/p99 request latency, and the
// BufferPool behavior the pooled serving design promises: once the
// freelists are primed, warm requests run (almost) miss-free, the
// serving analogue of warm-epoch training. The "cold" column counts
// misses over the same number of requests with the pool trimmed
// before each one — what serving would pay with no cross-request
// reuse. (Even a trimmed request self-serves most allocations,
// because inference-mode nodes release buffers mid-request; the
// aggregate over N requests is the meaningful contrast.)
//
// Every model runs in three modes: "eager" (execution plans disabled —
// the NoGradGuard Forward walk), "plan-nofuse" (a static execution
// plan compiled with the op-chain fusion pass disabled), and "plan"
// (the default fused plan). Plan-mode warm requests must be exactly
// miss-free and at least as fast as eager, and the fused plan must be
// at least as fast as the unfused one; gated by
// tools/check_bench_regression.py --plan-* / --fusion-*.
//
// Writes a machine-readable baseline to BENCH_inference.json
// (override with --json-out PATH); tools/check_bench_regression.py
// compares a fresh run against the committed baseline and enforces the
// warm/cold miss-collapse invariant. Obs integration: run with
// --metrics-out / --trace-out to capture infer.* counters and
// infer.request trace spans.

#include <cstdio>
#include <ctime>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/buffer_pool.h"
#include "common/thread_pool.h"
#include "data/registry.h"
#include "infer/plan.h"
#include "infer/serving.h"
#include "models/model.h"
#include "obs/json.h"
#include "tensor/rng.h"

namespace lasagne {
namespace {

constexpr size_t kBatchSize = 64;
constexpr size_t kWarmupRequests = 3;
constexpr size_t kSteadyRequests = 40;

struct ModelResult {
  std::string model;
  std::string mode;  // "eager" (plan disabled), "plan-nofuse", or "plan"
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t cold_pool_misses = 0;  // total over kSteadyRequests trimmed requests
  uint64_t warm_pool_misses = 0;  // total over kSteadyRequests primed requests
  uint64_t warm_pool_hits = 0;
  bool plan_compiled = false;     // plan mode actually used a compiled plan
  uint64_t workspace_bytes = 0;   // plan's pre-reserved slab size
  uint64_t plan_steps = 0;        // interpreted steps after fusion
  uint64_t fused_steps = 0;       // steps covering more than one traced op
  uint64_t ops_fused_away = 0;    // traced ops folded into a fused step
};

std::vector<uint32_t> MakeBatch(size_t num_nodes, Rng& rng) {
  std::vector<uint32_t> batch(kBatchSize);
  for (uint32_t& id : batch) {
    id = static_cast<uint32_t>(rng.UniformInt(num_nodes));
  }
  return batch;
}

ModelResult BenchOne(const std::string& name, const Dataset& data,
                     const std::string& mode) {
  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 32;
  config.seed = 3;
  std::unique_ptr<Model> model = MakeModel(name, data, config);
  const bool use_plan = mode != "eager";
  model->set_use_execution_plan(use_plan);
  model->set_use_plan_fusion(mode == "plan");
  infer::InferenceSession session(*model);
  Rng batch_rng(17);

  ModelResult out;
  out.model = name;
  out.mode = mode;

  // Cold phase: trim the freelists before every request, so each one
  // pays the no-cross-request-reuse allocation cost.
  for (size_t i = 0; i < kSteadyRequests; ++i) {
    BufferPool::Global().Trim();
    (void)session.ServeBatch(MakeBatch(data.num_nodes(), batch_rng));
  }
  out.cold_pool_misses = session.stats().pool_misses;

  // Warm up, then measure steady state.
  session.ResetStats();
  for (size_t i = 0; i < kWarmupRequests; ++i) {
    (void)session.ServeBatch(MakeBatch(data.num_nodes(), batch_rng));
  }
  session.ResetStats();
  for (size_t i = 0; i < kSteadyRequests; ++i) {
    (void)session.ServeBatch(MakeBatch(data.num_nodes(), batch_rng));
  }
  const infer::ServeStats& stats = session.stats();
  out.qps = stats.Qps();
  out.mean_ms = stats.MeanLatencyMs();
  out.p50_ms = stats.LatencyPercentileMs(0.5);
  out.p99_ms = stats.LatencyPercentileMs(0.99);
  out.warm_pool_misses = stats.pool_misses;
  out.warm_pool_hits = stats.pool_hits;
  if (use_plan && model->execution_plan() != nullptr) {
    const infer::PlanInfo& info = model->execution_plan()->info();
    out.plan_compiled = true;
    out.workspace_bytes = info.workspace_bytes;
    out.plan_steps = info.steps;
    out.fused_steps = info.fused_steps;
    out.ops_fused_away = info.ops_fused_away;
  }
  return out;
}

void WriteJson(const std::string& path, size_t threads, double scale,
               const std::vector<ModelResult>& results) {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("benchmark",
          obs::JsonValue::String(
              "bench_inference_qps: steady-state full-graph serving, "
              "batch " + std::to_string(kBatchSize) + " query nodes x " +
              std::to_string(kSteadyRequests) + " requests"));
  char date[16];
  std::time_t now = std::time(nullptr);
  std::tm tm_now{};
  localtime_r(&now, &tm_now);
  std::strftime(date, sizeof(date), "%Y-%m-%d", &tm_now);
  doc.Set("date", obs::JsonValue::String(date));
  doc.Set("dataset", obs::JsonValue::String("cora"));
  doc.Set("scale", obs::JsonValue::Number(scale));
  doc.Set("threads", obs::JsonValue::Number(static_cast<double>(threads)));
  doc.Set("machine_note",
          obs::JsonValue::String(
              "QPS is wall-clock dependent; the regression gate applies "
              "a generous tolerance. The warm/cold pool-miss collapse is "
              "hardware independent and gated strictly."));
  obs::JsonValue arr = obs::JsonValue::Array();
  for (const ModelResult& r : results) {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("model", obs::JsonValue::String(r.model));
    row.Set("mode", obs::JsonValue::String(r.mode));
    row.Set("plan_compiled", obs::JsonValue::Bool(r.plan_compiled));
    row.Set("workspace_bytes",
            obs::JsonValue::Number(static_cast<double>(r.workspace_bytes)));
    row.Set("plan_steps",
            obs::JsonValue::Number(static_cast<double>(r.plan_steps)));
    row.Set("fused_steps",
            obs::JsonValue::Number(static_cast<double>(r.fused_steps)));
    row.Set("ops_fused_away",
            obs::JsonValue::Number(static_cast<double>(r.ops_fused_away)));
    row.Set("requests",
            obs::JsonValue::Number(static_cast<double>(kSteadyRequests)));
    row.Set("batch_size",
            obs::JsonValue::Number(static_cast<double>(kBatchSize)));
    row.Set("qps", obs::JsonValue::Number(r.qps));
    row.Set("mean_ms", obs::JsonValue::Number(r.mean_ms));
    row.Set("p50_ms", obs::JsonValue::Number(r.p50_ms));
    row.Set("p99_ms", obs::JsonValue::Number(r.p99_ms));
    row.Set("cold_pool_misses",
            obs::JsonValue::Number(static_cast<double>(r.cold_pool_misses)));
    row.Set("warm_pool_misses",
            obs::JsonValue::Number(static_cast<double>(r.warm_pool_misses)));
    row.Set("warm_pool_hits",
            obs::JsonValue::Number(static_cast<double>(r.warm_pool_hits)));
    arr.Append(std::move(row));
  }
  doc.Set("results", std::move(arr));
  std::ofstream out(path);
  out << doc.Dump() << "\n";
  std::printf("\nwrote %s\n", path.c_str());
}

void Run(const std::string& json_out, size_t threads) {
  bench::PrintBanner("Inference serving: steady-state QPS and latency",
                     "serving extension (no paper figure)");
  const double scale = bench::BenchScale();
  Dataset data = LoadDataset("cora", 0.7 * scale, /*seed=*/1);
  std::printf("graph: %zu nodes, %zu edges; batch %zu, %zu steady "
              "requests, %zu threads\n",
              data.num_nodes(), data.graph.num_edges(), kBatchSize,
              kSteadyRequests, threads);

  std::vector<ModelResult> results;
  bench::TablePrinter table({18, 12, 10, 10, 10, 10, 12, 12, 12});
  table.Row({"model", "mode", "QPS", "mean ms", "p50 ms", "p99 ms",
             "cold miss", "warm miss", "steps(fused)"});
  table.Rule();
  for (const char* name : {"gcn", "lasagne-weighted", "gat"}) {
    for (const char* mode : {"eager", "plan-nofuse", "plan"}) {
      ModelResult r = BenchOne(name, data, mode);
      char buf[7][32];
      std::snprintf(buf[0], sizeof(buf[0]), "%.1f", r.qps);
      std::snprintf(buf[1], sizeof(buf[1]), "%.2f", r.mean_ms);
      std::snprintf(buf[2], sizeof(buf[2]), "%.2f", r.p50_ms);
      std::snprintf(buf[3], sizeof(buf[3]), "%.2f", r.p99_ms);
      std::snprintf(buf[4], sizeof(buf[4]), "%llu",
                    static_cast<unsigned long long>(r.cold_pool_misses));
      std::snprintf(buf[5], sizeof(buf[5]), "%llu",
                    static_cast<unsigned long long>(r.warm_pool_misses));
      if (r.plan_compiled) {
        std::snprintf(buf[6], sizeof(buf[6]), "%llu(%llu)",
                      static_cast<unsigned long long>(r.plan_steps),
                      static_cast<unsigned long long>(r.fused_steps));
      } else {
        std::snprintf(buf[6], sizeof(buf[6]), "-");
      }
      table.Row({r.model, r.mode, buf[0], buf[1], buf[2], buf[3], buf[4],
                 buf[5], buf[6]});
      std::fflush(stdout);
      results.push_back(r);
    }
  }
  table.Rule();
  std::printf(
      "\nInvariants: eager warm-request pool misses collapse >= 10x below\n"
      "the cold phase (pool trimmed before each cold request), and plan\n"
      "mode serves warm requests with ZERO pool misses from its\n"
      "pre-reserved workspace at >= eager QPS; the fused plan fuses every\n"
      "expected op chain and is >= the unfused plan's QPS on gcn, gat,\n"
      "and lasagne-weighted; gated by tools/check_bench_regression.py\n"
      "--inference-* / --plan-* / --fusion-*.\n");
  WriteJson(json_out, threads, scale, results);
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  const size_t threads = lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  std::string json_out = "BENCH_inference.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }
  lasagne::Run(json_out, threads);
  return 0;
}
