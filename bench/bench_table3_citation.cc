// Reproduces paper Table 3: test accuracy (%) on the citation datasets
// (Cora / Citeseer / Pubmed) for 20 baselines and the three Lasagne
// aggregators. Paper-reported numbers are printed alongside ours.
//
// Expected shape: Lasagne variants at or near the top on every dataset;
// plain deep-GCN-technique ports (ResGCN/DenseGCN/JK-Net) close to GCN.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "models/unsupervised.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

struct RowSpec {
  const char* model;      // registry name ("dgi"/"gmi" special-cased)
  const char* label;      // printed name, matches the paper's rows
  const char* paper[3];   // paper-reported accuracy on cora/citeseer/pubmed
};

constexpr RowSpec kRows[] = {
    {"gpnn", "GPNN (simplified)", {"81.8", "69.7", "79.3"}},
    {"ngcn", "NGCN", {"83.0", "72.2", "79.5"}},
    {"dgcn", "DGCN", {"83.5", "72.6", "80.0"}},
    {"dropedge", "DropEdge", {"82.8", "72.3", "79.6"}},
    {"stgcn", "STGCN", {"83.6", "72.6", "79.5"}},
    {"dgi", "DGI", {"82.3", "71.8", "76.8"}},
    {"gmi", "GMI (simplified)", {"82.7", "73.0", "80.1"}},
    {"gin", "GIN", {"77.6", "66.1", "77.0"}},
    {"sgc", "SGC", {"81.0", "71.9", "78.9"}},
    {"lgcn", "LGCN (simplified)", {"83.3", "73.0", "79.5"}},
    {"appnp", "APPNP", {"83.3", "71.8", "80.1"}},
    {"gat", "GAT", {"83.0", "72.5", "79.0"}},
    {"pairnorm", "Pairnorm", {"81.4", "68.5", "79.1"}},
    {"adsf", "ADSF (simplified)", {"83.8", "72.8", "80.1"}},
    {"mixhop", "MixHop", {"82.1", "71.4", "80.0"}},
    {"madreg", "MADReg", {"82.3", "71.6", "79.5"}},
    {"gcn", "GCN", {"81.8", "70.8", "79.3"}},
    {"jknet", "JK-Net", {"81.8", "70.7", "78.8"}},
    {"resgcn", "ResGCN", {"82.2", "70.8", "78.3"}},
    {"densegcn", "DenseGCN", {"82.1", "70.9", "79.1"}},
    {"lasagne-weighted", "Lasagne (Weighted)", {"84.1", "73.2", "79.5"}},
    {"lasagne-stochastic", "Lasagne (Stochastic)", {"84.2", "73.1", "80.2"}},
    {"lasagne-maxpool", "Lasagne (Max pooling)", {"84.1", "73.3", "79.6"}},
};

std::string RunCell(const std::string& model, const Dataset& data,
                    int repeats) {
  ModelConfig config;
  config.depth = 4;
  config.hidden_dim = 32;
  config.dropout = 0.5f;
  config.seed = 42;
  TrainOptions options;
  options.max_epochs = 150;
  options.patience = 20;
  options.learning_rate = 0.02f;
  options.weight_decay = 5e-4f;
  options.seed = 4242;
  if (model == "dgi" || model == "gmi") {
    std::vector<double> accs;
    for (int r = 0; r < repeats; ++r) {
      ModelConfig run_config = config;
      run_config.seed = config.seed + 1000 * r;
      TrainOptions run_options = options;
      run_options.max_epochs = 80;
      run_options.seed = options.seed + 2000 * r;
      UnsupervisedResult result =
          model == "dgi" ? RunDgi(data, run_config, run_options)
                         : RunGmi(data, run_config, run_options);
      accs.push_back(result.test_accuracy * 100.0);
    }
    Summary s = MeanStd(accs);
    return bench::FormatMeanStd(s.mean, s.std_dev);
  }
  // Per-model conventions: canonical 2-layer classics, attention
  // models with lower lr / lighter dropout.
  ModelConfig run_config = config;
  bench::TuneForModel(model, run_config, options);
  ExperimentResult result =
      RunRepeatedExperiment(model, data, run_config, options, repeats);
  return bench::FormatMeanStd(result.test_accuracy.mean,
                              result.test_accuracy.std_dev);
}

void Run() {
  bench::PrintBanner("Table 3: citation-dataset accuracy (%)",
                     "paper Table 3 (20 baselines + Lasagne x3)");
  const double scale = bench::BenchScale();
  const int repeats = bench::BenchRepeats();
  const char* names[3] = {"cora", "citeseer", "pubmed"};
  std::vector<Dataset> datasets;
  for (const char* name : names) {
    datasets.push_back(LoadDataset(name, 0.85 * scale, /*seed=*/1));
  }
  bench::TablePrinter table({22, 7, 12, 7, 12, 7, 12});
  table.Row({"Model", "Cora", "Cora(ours)", "CiteS", "CiteS(ours)",
             "PubMed", "PubMed(ours)"});
  table.Rule();
  for (const RowSpec& row : kRows) {
    std::vector<std::string> cells = {row.label};
    for (int d = 0; d < 3; ++d) {
      cells.push_back(row.paper[d]);
      cells.push_back(RunCell(row.model, datasets[d], repeats));
    }
    table.Row(cells);
    std::fflush(stdout);
  }
  table.Rule();
  std::printf(
      "Shape check: the Lasagne rows should lead or tie the best\n"
      "baseline on each dataset, as in the paper.\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
