#include "common/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne::bench {

namespace {

// atexit targets for ApplyObservabilityFlags (set at most once).
std::string& TraceOutPath() {
  static std::string& path = *new std::string();
  return path;
}

std::string& MetricsOutPath() {
  static std::string& path = *new std::string();
  return path;
}

void ExportObservabilityAtExit() {
  if (!TraceOutPath().empty()) {
    Status written = obs::WriteTraceJson(TraceOutPath());
    if (written.ok()) {
      std::fprintf(stderr, "wrote trace to %s\n", TraceOutPath().c_str());
    } else {
      std::fprintf(stderr, "trace export failed: %s\n",
                   written.ToString().c_str());
    }
  }
  if (!MetricsOutPath().empty()) {
    std::ofstream out(MetricsOutPath(),
                      std::ios::binary | std::ios::trunc);
    if (out) {
      out << obs::MetricsRegistry::Global().ScrapeText();
      std::fprintf(stderr, "wrote metrics to %s\n",
                   MetricsOutPath().c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   MetricsOutPath().c_str());
    }
  }
}

}  // namespace

double BenchScale() {
  const char* env = std::getenv("LASAGNE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

int BenchRepeats() {
  const char* env = std::getenv("LASAGNE_BENCH_REPEATS");
  if (env == nullptr) return 3;
  int v = std::atoi(env);
  return v > 0 ? v : 3;
}

size_t ApplyThreadsFlag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const long v = std::atol(argv[i + 1]);
      if (v > 0) lasagne::SetNumThreads(static_cast<size_t>(v));
    }
  }
  return lasagne::GetNumThreads();
}

void ApplyObservabilityFlags(int argc, char** argv) {
  bool hooked = false;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      TraceOutPath() = argv[i + 1];
      obs::EnableTracing();
      hooked = true;
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      MetricsOutPath() = argv[i + 1];
      obs::EnableMetrics();
      hooked = true;
    }
  }
  if (hooked) std::atexit(ExportObservabilityAtExit);
}

std::string FormatMeanStd(double mean, double std_dev, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f+-%.*f", precision, mean, precision,
                std_dev);
  return buf;
}

TablePrinter::TablePrinter(std::vector<int> widths)
    : widths_(std::move(widths)) {}

void TablePrinter::Row(const std::vector<std::string>& cells) const {
  std::ostringstream line;
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    const int w = widths_[i];
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) > w) cell = cell.substr(0, w);
    if (i == 0) {
      line << cell << std::string(w - cell.size(), ' ');
    } else {
      line << std::string(w - cell.size(), ' ') << cell;
    }
    line << "  ";
  }
  std::printf("%s\n", line.str().c_str());
}

void TablePrinter::Rule() const {
  size_t total = 0;
  for (int w : widths_) total += static_cast<size_t>(w) + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
}

void TuneForModel(const std::string& model, ModelConfig& config,
                  TrainOptions& options) {
  if (model == "gat" || model == "adsf" ||
      model == "lasagne-stochastic-gat") {
    options.learning_rate = 0.005f;
    config.dropout = std::min(config.dropout, 0.3f);
  }
  if (model == "gcn" || model == "sgc" || model == "gat" ||
      model == "appnp" || model == "dgcn" || model == "adsf") {
    // Canonically shallow models.
    config.depth = 2;
  }
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Data: synthetic stand-ins (see DESIGN.md §1); compare the\n");
  std::printf("SHAPE (ordering / trends) with the paper, not absolute values.\n");
  std::printf("Scale=%.2f repeats=%d threads=%zu (env LASAGNE_BENCH_SCALE /\n"
              "_REPEATS, --threads or LASAGNE_NUM_THREADS)\n",
              BenchScale(), BenchRepeats(), lasagne::GetNumThreads());
  std::printf("==============================================================\n");
}

}  // namespace lasagne::bench
