#include "common/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/thread_pool.h"

namespace lasagne::bench {

double BenchScale() {
  const char* env = std::getenv("LASAGNE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

int BenchRepeats() {
  const char* env = std::getenv("LASAGNE_BENCH_REPEATS");
  if (env == nullptr) return 3;
  int v = std::atoi(env);
  return v > 0 ? v : 3;
}

size_t ApplyThreadsFlag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      const long v = std::atol(argv[i + 1]);
      if (v > 0) lasagne::SetNumThreads(static_cast<size_t>(v));
    }
  }
  return lasagne::GetNumThreads();
}

std::string FormatMeanStd(double mean, double std_dev, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f+-%.*f", precision, mean, precision,
                std_dev);
  return buf;
}

TablePrinter::TablePrinter(std::vector<int> widths)
    : widths_(std::move(widths)) {}

void TablePrinter::Row(const std::vector<std::string>& cells) const {
  std::ostringstream line;
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    const int w = widths_[i];
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) > w) cell = cell.substr(0, w);
    if (i == 0) {
      line << cell << std::string(w - cell.size(), ' ');
    } else {
      line << std::string(w - cell.size(), ' ') << cell;
    }
    line << "  ";
  }
  std::printf("%s\n", line.str().c_str());
}

void TablePrinter::Rule() const {
  size_t total = 0;
  for (int w : widths_) total += static_cast<size_t>(w) + 2;
  std::printf("%s\n", std::string(total, '-').c_str());
}

void TuneForModel(const std::string& model, ModelConfig& config,
                  TrainOptions& options) {
  if (model == "gat" || model == "adsf" ||
      model == "lasagne-stochastic-gat") {
    options.learning_rate = 0.005f;
    config.dropout = std::min(config.dropout, 0.3f);
  }
  if (model == "gcn" || model == "sgc" || model == "gat" ||
      model == "appnp" || model == "dgcn" || model == "adsf") {
    // Canonically shallow models.
    config.depth = 2;
  }
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Data: synthetic stand-ins (see DESIGN.md §1); compare the\n");
  std::printf("SHAPE (ordering / trends) with the paper, not absolute values.\n");
  std::printf("Scale=%.2f repeats=%d threads=%zu (env LASAGNE_BENCH_SCALE /\n"
              "_REPEATS, --threads or LASAGNE_NUM_THREADS)\n",
              BenchScale(), BenchRepeats(), lasagne::GetNumThreads());
  std::printf("==============================================================\n");
}

}  // namespace lasagne::bench
