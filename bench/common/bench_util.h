#ifndef LASAGNE_BENCH_COMMON_BENCH_UTIL_H_
#define LASAGNE_BENCH_COMMON_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "models/model.h"
#include "train/trainer.h"

namespace lasagne::bench {

/// Scale factor for bench workloads, from LASAGNE_BENCH_SCALE (default 1.0).
/// Values < 1 shrink graphs/epochs for smoke runs; > 1 enlarges them.
double BenchScale();

/// Number of repeated trials per configuration, from
/// LASAGNE_BENCH_REPEATS (default 3; the paper uses 10).
int BenchRepeats();

/// Scans argv for `--threads N` and applies it via lasagne::SetNumThreads
/// (LASAGNE_NUM_THREADS still applies when the flag is absent). Returns
/// the active thread count. Every bench main calls this so Fig. 7 and
/// the micro-kernels can report thread-count sweeps.
size_t ApplyThreadsFlag(int argc, char** argv);

/// Scans argv for `--trace-out PATH` / `--metrics-out PATH`, enables
/// the corresponding observability subsystem, and registers an atexit
/// hook that writes the trace JSON / metrics scrape when the bench
/// exits. Every bench main calls this right after ApplyThreadsFlag.
void ApplyObservabilityFlags(int argc, char** argv);

/// A "mean +- std" cell, formatted like the paper's tables.
std::string FormatMeanStd(double mean, double std_dev, int precision = 1);

/// Fixed-width table printer used by every bench binary so their output
/// lines up like the paper's tables.
class TablePrinter {
 public:
  /// `widths[i]` is the printed width of column i.
  explicit TablePrinter(std::vector<int> widths);

  /// Prints a row of cells, left-aligned first column, right-aligned rest.
  void Row(const std::vector<std::string>& cells) const;

  /// Prints a horizontal rule.
  void Rule() const;

 private:
  std::vector<int> widths_;
};

/// Prints the standard bench banner (what this binary reproduces, how it
/// is scaled, and the caveat about synthetic data).
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// Applies the per-model hyper-parameter conventions the paper's
/// experimental section implies: attention models (GAT/ADSF) train with
/// a lower learning rate and lighter dropout; the 2-layer classics keep
/// their canonical depth.
void TuneForModel(const std::string& model, ModelConfig& config,
                  TrainOptions& options);

}  // namespace lasagne::bench

#endif  // LASAGNE_BENCH_COMMON_BENCH_UTIL_H_
