// Closed-loop load benchmark for the resilient concurrent serving
// front end (infer::InferenceServer, docs/SERVING.md).
//
// A fixed set of producer threads drives the server in closed loop:
// each producer submits a burst of requests, waits for every future to
// resolve, and repeats. Rows sweep the worker count (1/2/4) and add a
// fault-injected run (periodic worker stalls) to show graceful
// degradation: p99 rises, but every request still gets exactly one
// terminal outcome and shutdown drains deterministically. Reported per
// row: sustained QPS, p50/p99 latency, reject rate (queue-full
// admission control), deadline-miss rate, and the two robustness
// invariants the regression gate enforces strictly — accounting_ok
// (submitted == terminal outcomes; zero silent drops) and drained
// (empty queue after shutdown, no deadlocked workers).
//
// Writes BENCH_serving.json (override with --json-out PATH);
// tools/check_bench_regression.py --serving-* compares a fresh run
// against the committed baseline. QPS / p99 get a generous tolerance
// (wall-clock dependent); the invariants get none.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "common/fault_injection.h"
#include "data/registry.h"
#include "infer/server.h"
#include "models/model.h"
#include "obs/json.h"
#include "tensor/rng.h"

namespace lasagne {
namespace {

constexpr size_t kProducers = 4;
constexpr size_t kBurst = 8;            // outstanding requests per producer
constexpr size_t kNodesPerRequest = 16;
constexpr double kDeadlineMs = 200.0;

struct LoadResult {
  std::string label;
  size_t workers = 0;
  bool faulted = false;
  uint64_t submitted = 0;
  uint64_t served_ok = 0;
  uint64_t rejected = 0;
  uint64_t deadline_missed = 0;  // expired at dequeue + late at completion
  uint64_t failed = 0;
  uint64_t batches = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double reject_rate = 0.0;
  double miss_rate = 0.0;
  bool accounting_ok = false;
  bool drained = false;
};

LoadResult RunLoad(const Dataset& data, size_t workers, size_t rounds,
                   bool faulted) {
  LoadResult out;
  out.label = std::to_string(workers) + (faulted ? "w+stall" : "w");
  out.workers = workers;
  out.faulted = faulted;

  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 32;
  config.seed = 3;

  infer::ServerOptions options;
  options.num_workers = workers;
  options.queue_capacity = 24;  // < producers * burst: overload is real
  options.batch_window_ms = 0.5;
  options.max_batch_requests = 8;
  options.default_deadline_ms = kDeadlineMs;
  infer::InferenceServer server("gcn", data, config, options);

  if (faulted) {
    // One 25 ms stall per round, landing on whichever worker dequeues
    // next: the degradation the resilience tests promise to contain.
    FaultInjector::Global().ArmServeStall(25.0,
                                          static_cast<int>(rounds));
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(41 + p);
      std::vector<infer::ServeFuture> burst;
      burst.reserve(kBurst);
      for (size_t round = 0; round < rounds; ++round) {
        burst.clear();
        for (size_t i = 0; i < kBurst; ++i) {
          std::vector<uint32_t> nodes(kNodesPerRequest);
          for (uint32_t& id : nodes) {
            id = static_cast<uint32_t>(rng.UniformInt(data.num_nodes()));
          }
          burst.push_back(server.Submit(std::move(nodes)));
        }
        // Closed loop: the next burst waits for this one.
        for (infer::ServeFuture& f : burst) (void)f.Wait();
      }
    });
  }
  for (std::thread& t : producers) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  server.Shutdown(infer::DrainMode::kDrain);
  if (faulted) FaultInjector::Global().Reset();

  const infer::ServerStats stats = server.Snapshot();
  out.submitted = stats.submitted;
  out.served_ok = stats.served_ok;
  out.rejected = stats.rejected_queue_full;
  out.deadline_missed = stats.expired_at_dequeue + stats.late_at_completion;
  out.failed = stats.failed;
  out.batches = stats.batches;
  out.qps = wall_ms > 0.0
                ? static_cast<double>(stats.served_ok) / (wall_ms / 1000.0)
                : 0.0;
  out.p50_ms = stats.serve.LatencyPercentileMs(0.5);
  out.p99_ms = stats.serve.LatencyPercentileMs(0.99);
  out.max_ms = stats.serve.max_latency_ms;
  const double submitted = static_cast<double>(stats.submitted);
  out.reject_rate =
      submitted > 0.0 ? static_cast<double>(out.rejected) / submitted : 0.0;
  out.miss_rate = submitted > 0.0
                      ? static_cast<double>(out.deadline_missed) / submitted
                      : 0.0;
  out.accounting_ok = stats.Accounted();
  out.drained = server.queue_depth() == 0;
  return out;
}

void WriteJson(const std::string& path, size_t threads, double scale,
               size_t rounds, const std::vector<LoadResult>& results) {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("benchmark",
          obs::JsonValue::String(
              "bench_serving_load: closed-loop concurrent serving, " +
              std::to_string(kProducers) + " producers x burst " +
              std::to_string(kBurst) + " x " + std::to_string(rounds) +
              " rounds, deadline " + std::to_string(kDeadlineMs) + " ms"));
  char date[16];
  std::time_t now = std::time(nullptr);
  std::tm tm_now{};
  localtime_r(&now, &tm_now);
  std::strftime(date, sizeof(date), "%Y-%m-%d", &tm_now);
  doc.Set("date", obs::JsonValue::String(date));
  doc.Set("dataset", obs::JsonValue::String("cora"));
  doc.Set("scale", obs::JsonValue::Number(scale));
  doc.Set("threads", obs::JsonValue::Number(static_cast<double>(threads)));
  doc.Set("machine_note",
          obs::JsonValue::String(
              "Recorded in a single-core container: the 1/2/4-worker "
              "sweep measures scheduling overhead there, not parallel "
              "speedup, and QPS/p99 are wall-clock dependent (gated "
              "generously). The robustness invariants — accounting_ok, "
              "drained, failed==0 on unfaulted rows — are hardware "
              "independent and gated strictly."));
  obs::JsonValue arr = obs::JsonValue::Array();
  for (const LoadResult& r : results) {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("config", obs::JsonValue::String(r.label));
    row.Set("workers",
            obs::JsonValue::Number(static_cast<double>(r.workers)));
    row.Set("faulted", obs::JsonValue::Bool(r.faulted));
    row.Set("submitted",
            obs::JsonValue::Number(static_cast<double>(r.submitted)));
    row.Set("served_ok",
            obs::JsonValue::Number(static_cast<double>(r.served_ok)));
    row.Set("rejected",
            obs::JsonValue::Number(static_cast<double>(r.rejected)));
    row.Set("deadline_missed",
            obs::JsonValue::Number(static_cast<double>(r.deadline_missed)));
    row.Set("failed", obs::JsonValue::Number(static_cast<double>(r.failed)));
    row.Set("batches",
            obs::JsonValue::Number(static_cast<double>(r.batches)));
    row.Set("qps", obs::JsonValue::Number(r.qps));
    row.Set("p50_ms", obs::JsonValue::Number(r.p50_ms));
    row.Set("p99_ms", obs::JsonValue::Number(r.p99_ms));
    row.Set("max_ms", obs::JsonValue::Number(r.max_ms));
    row.Set("reject_rate", obs::JsonValue::Number(r.reject_rate));
    row.Set("deadline_miss_rate", obs::JsonValue::Number(r.miss_rate));
    row.Set("accounting_ok", obs::JsonValue::Bool(r.accounting_ok));
    row.Set("drained", obs::JsonValue::Bool(r.drained));
    arr.Append(std::move(row));
  }
  doc.Set("results", std::move(arr));
  std::ofstream out(path);
  out << doc.Dump() << "\n";
  std::printf("\nwrote %s\n", path.c_str());
}

void Run(const std::string& json_out, size_t threads) {
  bench::PrintBanner(
      "Concurrent serving: closed-loop load, overload and faults",
      "serving extension (no paper figure)");
  const double scale = bench::BenchScale();
  const size_t rounds =
      std::max<size_t>(3, static_cast<size_t>(12 * scale));
  Dataset data = LoadDataset("cora", 0.7 * scale, /*seed=*/1);
  std::printf("graph: %zu nodes, %zu edges; %zu producers x burst %zu x "
              "%zu rounds, %zu-node requests, deadline %.0f ms, %zu "
              "threads\n",
              data.num_nodes(), data.graph.num_edges(), kProducers, kBurst,
              rounds, kNodesPerRequest, kDeadlineMs, threads);

  std::vector<LoadResult> results;
  bench::TablePrinter table({10, 9, 9, 9, 9, 8, 8, 7, 7});
  table.Row({"config", "QPS", "p50 ms", "p99 ms", "max ms", "rej%",
             "miss%", "acct", "drain"});
  table.Rule();
  struct RowSpec {
    size_t workers;
    bool faulted;
  };
  const RowSpec specs[] = {{1, false}, {2, false}, {4, false}, {2, true}};
  for (const RowSpec& spec : specs) {
    LoadResult r = RunLoad(data, spec.workers, rounds, spec.faulted);
    char buf[6][32];
    std::snprintf(buf[0], sizeof(buf[0]), "%.1f", r.qps);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f", r.p50_ms);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2f", r.p99_ms);
    std::snprintf(buf[3], sizeof(buf[3]), "%.2f", r.max_ms);
    std::snprintf(buf[4], sizeof(buf[4]), "%.1f", 100.0 * r.reject_rate);
    std::snprintf(buf[5], sizeof(buf[5]), "%.1f", 100.0 * r.miss_rate);
    table.Row({r.label, buf[0], buf[1], buf[2], buf[3], buf[4], buf[5],
               r.accounting_ok ? "ok" : "FAIL", r.drained ? "ok" : "FAIL"});
    std::fflush(stdout);
    results.push_back(r);
  }
  table.Rule();
  std::printf(
      "\nInvariants: every submitted request gets exactly one terminal\n"
      "outcome (acct) and shutdown drains the queue deterministically\n"
      "(drain) — on every row, including the fault-injected one; gated\n"
      "by tools/check_bench_regression.py --serving-*.\n");
  WriteJson(json_out, threads, scale, rounds, results);
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  const size_t threads = lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  std::string json_out = "BENCH_serving.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }
  lasagne::Run(json_out, threads);
  return 0;
}
