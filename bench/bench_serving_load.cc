// Closed-loop load benchmark for the resilient concurrent serving
// front end (infer::InferenceServer, docs/SERVING.md).
//
// A fixed set of producer threads drives the server in closed loop:
// each producer submits a burst of requests, waits for every future to
// resolve, and repeats. Rows sweep the worker count (1/2/4) and add a
// fault-injected run (periodic worker stalls) to show graceful
// degradation: p99 rises, but every request still gets exactly one
// terminal outcome and shutdown drains deterministically.
//
// Each row runs a warmup phase first (magazines and workspaces fill),
// then measures a steady phase: QPS is computed over the steady window
// only, and the buffer-pool columns report steady-phase deltas —
// magazine hits, depot refills/flushes, and the amortized depot
// exchanges per request that the pool-sharding gate enforces stays
// well below one (docs/SERVING.md "Pool sharding").
//
// Reported per row: sustained QPS, p50/p99 latency, reject rate
// (queue-full admission control), deadline-miss rate, pool columns,
// and the two robustness invariants the regression gate enforces
// strictly — accounting_ok (submitted == terminal outcomes; zero
// silent drops) and drained (empty queue after shutdown, no deadlocked
// workers).
//
// Writes BENCH_serving.json (override with --json-out PATH);
// tools/check_bench_regression.py --serving-* compares a fresh run
// against the committed baseline and --pool-* gates the sharding
// counters. QPS / p99 get a generous tolerance (wall-clock dependent);
// the invariants get none.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <ctime>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "common/buffer_pool.h"
#include "common/fault_injection.h"
#include "data/registry.h"
#include "infer/server.h"
#include "models/model.h"
#include "obs/json.h"
#include "tensor/rng.h"

namespace lasagne {
namespace {

constexpr size_t kProducers = 4;
constexpr size_t kBurst = 8;            // outstanding requests per producer
constexpr size_t kNodesPerRequest = 16;
constexpr double kDeadlineMs = 200.0;

struct LoadResult {
  std::string label;
  size_t workers = 0;
  bool faulted = false;
  uint64_t submitted = 0;
  uint64_t served_ok = 0;
  uint64_t rejected = 0;
  uint64_t deadline_missed = 0;  // expired at dequeue + late at completion
  uint64_t failed = 0;
  uint64_t batches = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double reject_rate = 0.0;
  double miss_rate = 0.0;
  bool accounting_ok = false;
  bool drained = false;
  // Steady-phase pool-sharding deltas (warmup excluded).
  uint64_t steady_requests = 0;
  uint64_t magazine_hits = 0;
  uint64_t depot_refills = 0;
  uint64_t depot_flushes = 0;
  uint64_t steady_pool_misses = 0;
  double depot_exchanges_per_request = 0.0;
};

LoadResult RunLoad(const Dataset& data, size_t workers, size_t rounds,
                   bool faulted) {
  LoadResult out;
  out.label = std::to_string(workers) + (faulted ? "w+stall" : "w");
  out.workers = workers;
  out.faulted = faulted;

  ModelConfig config;
  config.depth = 2;
  config.hidden_dim = 32;
  config.seed = 3;

  infer::ServerOptions options;
  options.num_workers = workers;
  options.queue_capacity = 24;  // < producers * burst: overload is real
  options.batch_window_ms = 0.5;
  options.max_batch_requests = 8;
  options.default_deadline_ms = kDeadlineMs;
  infer::InferenceServer server("gcn", data, config, options);

  if (faulted) {
    // One 25 ms stall per round, landing on whichever worker dequeues
    // next: the degradation the resilience tests promise to contain.
    FaultInjector::Global().ArmServeStall(25.0,
                                          static_cast<int>(rounds));
  }

  // One set of persistent producers runs warmup rounds, pauses at a
  // barrier while the main thread snapshots the pool and server
  // counters, then continues into the measured steady phase. Keeping
  // the same threads across the boundary is the point: their magazines
  // stay warm, so the steady window measures reuse, not the one-time
  // magazine fill a fresh thread pays.
  const size_t warmup_rounds = std::max<size_t>(2, rounds / 4);
  std::mutex barrier_mu;
  std::condition_variable barrier_cv;
  size_t warmed = 0;
  bool steady_go = false;
  infer::ServerStats warm_stats;
  BufferPool::Stats pool_before;
  std::chrono::steady_clock::time_point steady_start;

  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(41 + p);
      std::vector<infer::ServeFuture> burst;
      burst.reserve(kBurst);
      auto run_rounds = [&](size_t phase_rounds) {
        for (size_t round = 0; round < phase_rounds; ++round) {
          burst.clear();
          for (size_t i = 0; i < kBurst; ++i) {
            std::vector<uint32_t> nodes(kNodesPerRequest);
            for (uint32_t& id : nodes) {
              id = static_cast<uint32_t>(rng.UniformInt(data.num_nodes()));
            }
            burst.push_back(server.Submit(std::move(nodes)));
          }
          // Closed loop: the next burst waits for this one.
          for (infer::ServeFuture& f : burst) (void)f.Wait();
        }
      };
      run_rounds(warmup_rounds);
      {
        std::unique_lock<std::mutex> lock(barrier_mu);
        if (++warmed == kProducers) barrier_cv.notify_all();
        barrier_cv.wait(lock, [&] { return steady_go; });
      }
      run_rounds(rounds);
    });
  }
  {
    // All producers idle at the barrier, their in-flight bursts
    // resolved: the counters are quiescent, so this snapshot cleanly
    // separates warmup from the steady phase.
    std::unique_lock<std::mutex> lock(barrier_mu);
    barrier_cv.wait(lock, [&] { return warmed == kProducers; });
    warm_stats = server.Snapshot();
    pool_before = BufferPool::Global().GetStats();
    steady_start = std::chrono::steady_clock::now();
    steady_go = true;
    barrier_cv.notify_all();
  }
  for (std::thread& t : producers) t.join();
  const double steady_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - steady_start)
          .count();
  const BufferPool::Stats pool_after = BufferPool::Global().GetStats();
  server.Shutdown(infer::DrainMode::kDrain);
  if (faulted) FaultInjector::Global().Reset();

  const infer::ServerStats stats = server.Snapshot();
  out.submitted = stats.submitted;
  out.served_ok = stats.served_ok;
  out.rejected = stats.rejected_queue_full;
  out.deadline_missed = stats.expired_at_dequeue + stats.late_at_completion;
  out.failed = stats.failed;
  out.batches = stats.batches;
  out.steady_requests = stats.served_ok - warm_stats.served_ok;
  out.qps = steady_wall_ms > 0.0
                ? static_cast<double>(out.steady_requests) /
                      (steady_wall_ms / 1000.0)
                : 0.0;
  out.p50_ms = stats.serve.LatencyPercentileMs(0.5);
  out.p99_ms = stats.serve.LatencyPercentileMs(0.99);
  out.max_ms = stats.serve.max_latency_ms;
  const double submitted = static_cast<double>(stats.submitted);
  out.reject_rate =
      submitted > 0.0 ? static_cast<double>(out.rejected) / submitted : 0.0;
  out.miss_rate = submitted > 0.0
                      ? static_cast<double>(out.deadline_missed) / submitted
                      : 0.0;
  out.accounting_ok = stats.Accounted();
  out.drained = server.queue_depth() == 0;
  out.magazine_hits = pool_after.magazine_hits - pool_before.magazine_hits;
  out.depot_refills = pool_after.depot_refills - pool_before.depot_refills;
  out.depot_flushes = pool_after.depot_flushes - pool_before.depot_flushes;
  out.steady_pool_misses = pool_after.misses - pool_before.misses;
  out.depot_exchanges_per_request =
      out.steady_requests > 0
          ? static_cast<double>(out.depot_refills + out.depot_flushes) /
                static_cast<double>(out.steady_requests)
          : 0.0;
  return out;
}

void WriteJson(const std::string& path, size_t threads, double scale,
               size_t rounds, const std::vector<LoadResult>& results) {
  obs::JsonValue doc = obs::JsonValue::Object();
  doc.Set("benchmark",
          obs::JsonValue::String(
              "bench_serving_load: closed-loop concurrent serving, " +
              std::to_string(kProducers) + " producers x burst " +
              std::to_string(kBurst) + " x " + std::to_string(rounds) +
              " steady rounds (+warmup), deadline " +
              std::to_string(kDeadlineMs) + " ms"));
  char date[16];
  std::time_t now = std::time(nullptr);
  std::tm tm_now{};
  localtime_r(&now, &tm_now);
  std::strftime(date, sizeof(date), "%Y-%m-%d", &tm_now);
  doc.Set("date", obs::JsonValue::String(date));
  doc.Set("dataset", obs::JsonValue::String("cora"));
  doc.Set("scale", obs::JsonValue::Number(scale));
  doc.Set("threads", obs::JsonValue::Number(static_cast<double>(threads)));
  doc.Set("hw_cores",
          obs::JsonValue::Number(static_cast<double>(
              std::max(1u, std::thread::hardware_concurrency()))));
  doc.Set("machine_note",
          obs::JsonValue::String(
              "Recorded in a single-core container: the 1/2/4-worker "
              "sweep measures scheduling overhead there, not parallel "
              "speedup, and QPS/p99 are wall-clock dependent (gated "
              "generously; the 4w>=1w scaling gate only applies when "
              "hw_cores >= 4). The robustness invariants — "
              "accounting_ok, drained, failed==0 on unfaulted rows — "
              "and the pool-sharding counters (steady-phase depot "
              "exchanges amortized below one per request) are hardware "
              "independent and gated strictly."));
  obs::JsonValue arr = obs::JsonValue::Array();
  for (const LoadResult& r : results) {
    obs::JsonValue row = obs::JsonValue::Object();
    row.Set("config", obs::JsonValue::String(r.label));
    row.Set("workers",
            obs::JsonValue::Number(static_cast<double>(r.workers)));
    row.Set("faulted", obs::JsonValue::Bool(r.faulted));
    row.Set("submitted",
            obs::JsonValue::Number(static_cast<double>(r.submitted)));
    row.Set("served_ok",
            obs::JsonValue::Number(static_cast<double>(r.served_ok)));
    row.Set("rejected",
            obs::JsonValue::Number(static_cast<double>(r.rejected)));
    row.Set("deadline_missed",
            obs::JsonValue::Number(static_cast<double>(r.deadline_missed)));
    row.Set("failed", obs::JsonValue::Number(static_cast<double>(r.failed)));
    row.Set("batches",
            obs::JsonValue::Number(static_cast<double>(r.batches)));
    row.Set("qps", obs::JsonValue::Number(r.qps));
    row.Set("p50_ms", obs::JsonValue::Number(r.p50_ms));
    row.Set("p99_ms", obs::JsonValue::Number(r.p99_ms));
    row.Set("max_ms", obs::JsonValue::Number(r.max_ms));
    row.Set("reject_rate", obs::JsonValue::Number(r.reject_rate));
    row.Set("deadline_miss_rate", obs::JsonValue::Number(r.miss_rate));
    row.Set("accounting_ok", obs::JsonValue::Bool(r.accounting_ok));
    row.Set("drained", obs::JsonValue::Bool(r.drained));
    row.Set("steady_requests",
            obs::JsonValue::Number(static_cast<double>(r.steady_requests)));
    row.Set("magazine_hits",
            obs::JsonValue::Number(static_cast<double>(r.magazine_hits)));
    row.Set("depot_refills",
            obs::JsonValue::Number(static_cast<double>(r.depot_refills)));
    row.Set("depot_flushes",
            obs::JsonValue::Number(static_cast<double>(r.depot_flushes)));
    row.Set("steady_pool_misses",
            obs::JsonValue::Number(
                static_cast<double>(r.steady_pool_misses)));
    row.Set("depot_exchanges_per_request",
            obs::JsonValue::Number(r.depot_exchanges_per_request));
    arr.Append(std::move(row));
  }
  doc.Set("results", std::move(arr));
  std::ofstream out(path);
  out << doc.Dump() << "\n";
  std::printf("\nwrote %s\n", path.c_str());
}

void Run(const std::string& json_out, size_t threads) {
  bench::PrintBanner(
      "Concurrent serving: closed-loop load, overload and faults",
      "serving extension (no paper figure)");
  const double scale = bench::BenchScale();
  const size_t rounds =
      std::max<size_t>(3, static_cast<size_t>(12 * scale));
  Dataset data = LoadDataset("cora", 0.7 * scale, /*seed=*/1);
  std::printf("graph: %zu nodes, %zu edges; %zu producers x burst %zu x "
              "%zu steady rounds (+%zu warmup), %zu-node requests, "
              "deadline %.0f ms, %zu threads\n",
              data.num_nodes(), data.graph.num_edges(), kProducers, kBurst,
              rounds, std::max<size_t>(2, rounds / 4), kNodesPerRequest,
              kDeadlineMs, threads);

  std::vector<LoadResult> results;
  bench::TablePrinter table({10, 9, 9, 9, 8, 8, 9, 9, 7, 7});
  table.Row({"config", "QPS", "p50 ms", "p99 ms", "rej%", "miss%",
             "mag hits", "depot/rq", "acct", "drain"});
  table.Rule();
  struct RowSpec {
    size_t workers;
    bool faulted;
  };
  const RowSpec specs[] = {{1, false}, {2, false}, {4, false}, {2, true}};
  for (const RowSpec& spec : specs) {
    LoadResult r = RunLoad(data, spec.workers, rounds, spec.faulted);
    char buf[6][32];
    std::snprintf(buf[0], sizeof(buf[0]), "%.1f", r.qps);
    std::snprintf(buf[1], sizeof(buf[1]), "%.2f", r.p50_ms);
    std::snprintf(buf[2], sizeof(buf[2]), "%.2f", r.p99_ms);
    std::snprintf(buf[3], sizeof(buf[3]), "%.1f", 100.0 * r.reject_rate);
    std::snprintf(buf[4], sizeof(buf[4]), "%.1f", 100.0 * r.miss_rate);
    std::snprintf(buf[5], sizeof(buf[5]), "%.3f",
                  r.depot_exchanges_per_request);
    table.Row({r.label, buf[0], buf[1], buf[2], buf[3], buf[4],
               std::to_string(r.magazine_hits), buf[5],
               r.accounting_ok ? "ok" : "FAIL", r.drained ? "ok" : "FAIL"});
    std::fflush(stdout);
    results.push_back(r);
  }
  table.Rule();
  std::printf(
      "\nInvariants: every submitted request gets exactly one terminal\n"
      "outcome (acct) and shutdown drains the queue deterministically\n"
      "(drain) — on every row, including the fault-injected one. The\n"
      "pool columns cover the steady phase only: depot/rq is the\n"
      "amortized depot-exchange count per served request, which the\n"
      "sharded pool keeps well below one (magazine layer, see\n"
      "docs/SERVING.md). Gated by tools/check_bench_regression.py\n"
      "--serving-* and --pool-*.\n");
  WriteJson(json_out, threads, scale, rounds, results);
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  const size_t threads = lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  std::string json_out = "BENCH_serving.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json-out") json_out = argv[i + 1];
  }
  lasagne::Run(json_out, threads);
  return 0;
}
