// Reproduces paper Table 2: dataset statistics. Prints the paper's
// numbers next to our synthetic stand-ins (scaled instantiations).

#include <cstdio>
#include <string>

#include "common/bench_util.h"
#include "data/registry.h"
#include "graph/algorithms.h"

namespace lasagne {
namespace {

void Run() {
  bench::PrintBanner("Table 2: overview of datasets",
                     "paper Table 2 (11 datasets incl. Tencent)");
  const double scale = bench::BenchScale();
  bench::TablePrinter table({18, 12, 10, 12, 9, 11, 9, 12, 9, 13});
  table.Row({"Dataset", "paper#Nodes", "ours", "paper#Edges", "ours",
             "paper#Feat", "ours", "paper#Class", "ours", "split(ours)"});
  table.Rule();
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Dataset d = LoadDataset(spec.name, scale, /*seed=*/1);
    std::string split = std::to_string(d.TrainNodes().size()) + "/" +
                        std::to_string(d.ValNodes().size()) + "/" +
                        std::to_string(d.TestNodes().size());
    table.Row({spec.name, std::to_string(spec.paper_nodes),
               std::to_string(d.num_nodes()),
               std::to_string(spec.paper_edges),
               std::to_string(d.graph.num_edges()),
               std::to_string(spec.paper_features),
               std::to_string(d.feature_dim()),
               std::to_string(spec.paper_classes),
               std::to_string(d.num_classes), split});
  }
  table.Rule();

  std::printf("\nStructural properties of the stand-ins (the knobs the\n"
              "over-smoothing phenomenon depends on):\n");
  bench::TablePrinter props({18, 11, 11, 9, 9});
  props.Row({"Dataset", "homophily", "clustering", "maxdeg", "avgdeg"});
  props.Rule();
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    Dataset d = LoadDataset(spec.name, scale, /*seed=*/1);
    char h[16], c[16], a[16];
    std::snprintf(h, sizeof(h), "%.2f", EdgeHomophily(d.graph, d.labels));
    std::snprintf(c, sizeof(c), "%.3f",
                  AverageClusteringCoefficient(d.graph));
    std::snprintf(a, sizeof(a), "%.1f", d.graph.AverageDegree());
    props.Row({spec.name, h, c, std::to_string(d.graph.MaxDegree()), a});
  }
  props.Rule();
  std::printf(
      "Stand-ins preserve: community structure, hub-degree skew,\n"
      "class-correlated sparse features, low label rates, inductive\n"
      "splits (flickr/reddit) and the bipartite user-video shape\n"
      "(tencent). Sizes are scaled for single-core runtimes.\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
