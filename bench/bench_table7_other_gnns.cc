// Reproduces paper Table 7: the Lasagne framework applied to other base
// GNNs — GCN, SGC and GAT with and without Lasagne (Stochastic).
//
// Expected shape: +Lasagne(S) improves every base model on every
// dataset (the paper reports boosts up to 2.9 points).

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "train/experiment.h"

namespace lasagne {
namespace {

struct RowSpec {
  const char* base_model;
  const char* lasagne_model;
  const char* label;
  const char* paper[6];
};

constexpr RowSpec kRows[] = {
    {"gcn", "lasagne-stochastic", "GCN",
     {"81.8", "84.2", "70.8", "73.1", "79.3", "80.2"}},
    {"sgc", "lasagne-stochastic-sgc", "SGC",
     {"81.0", "83.9", "71.9", "72.6", "78.9", "80.1"}},
    {"gat", "lasagne-stochastic-gat", "GAT",
     {"83.0", "84.1", "72.5", "73.1", "79.0", "79.7"}},
};

void Run() {
  bench::PrintBanner(
      "Table 7: Lasagne (stochastic) on other base GNNs (accuracy %)",
      "paper Table 7 / §5.2.5");
  const double scale = bench::BenchScale();
  const int repeats = bench::BenchRepeats();
  const char* names[3] = {"cora", "citeseer", "pubmed"};
  std::vector<Dataset> datasets;
  for (const char* name : names) {
    datasets.push_back(LoadDataset(name, 0.7 * scale, /*seed=*/1));
  }
  bench::TablePrinter table({7, 11, 11, 11, 11, 11, 11});
  table.Row({"Base", "Cora", "Cora +L(S)", "CiteS", "CiteS +L(S)",
             "PubMed", "PubMed+L(S)"});
  table.Rule();
  std::printf("(paper values)\n");
  for (const RowSpec& row : kRows) {
    table.Row({row.label, row.paper[0], row.paper[1], row.paper[2],
               row.paper[3], row.paper[4], row.paper[5]});
  }
  table.Rule();
  std::printf("(our measurements)\n");
  for (const RowSpec& row : kRows) {
    std::vector<std::string> cells = {row.label};
    for (int d = 0; d < 3; ++d) {
      for (int variant = 0; variant < 2; ++variant) {
        const char* model =
            variant == 0 ? row.base_model : row.lasagne_model;
        ModelConfig config;
        config.depth = variant == 0 ? 2 : 4;  // classic base vs deep Lasagne
        config.hidden_dim = 32;
        config.dropout = 0.5f;
        config.heads = 2;
        config.seed = 8;
        TrainOptions options;
        options.max_epochs = 140;
        options.patience = 20;
        options.seed = 18;
        if (std::string(row.label) == "GAT") {
          options.learning_rate = 0.005f;
          config.dropout = 0.3f;
        }
        ExperimentResult result = RunRepeatedExperiment(
            model, datasets[d], config, options, repeats);
        cells.push_back(bench::FormatMeanStd(
            result.test_accuracy.mean, result.test_accuracy.std_dev));
      }
    }
    table.Row(cells);
    std::fflush(stdout);
  }
  table.Rule();
  std::printf("Shape check: every '+L(S)' column should improve on its\n"
              "base column, for all three base GNNs.\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
