// Reproduces paper Fig. 2: mutual information between the input features
// X and every hidden layer H(l) of converged 10-layer models on Cora.
//
// Expected shape (paper): vanilla GCN's MI decays sharply with depth
// (over-smoothing); ResGCN holds MI for shallow layers; JK-Net lifts the
// last layers; DenseGCN retains information at every layer.

#include <cstdio>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "data/registry.h"
#include "metrics/mutual_info.h"
#include "models/model.h"
#include "train/trainer.h"

namespace lasagne {
namespace {

void Run() {
  bench::PrintBanner("Figure 2: per-layer MI of 10-layer models on Cora",
                     "paper Fig. 2");
  const double scale = bench::BenchScale();
  Dataset data = LoadDataset("cora", 0.6 * scale, /*seed=*/1);

  const size_t depth = 10;
  const std::vector<std::string> models = {"gcn", "resgcn", "jknet",
                                           "densegcn"};
  std::vector<int> widths = {10};
  for (size_t l = 1; l <= depth; ++l) widths.push_back(7);
  bench::TablePrinter table(widths);
  std::vector<std::string> header = {"model"};
  for (size_t l = 1; l <= depth; ++l) header.push_back("L" + std::to_string(l));
  table.Row(header);
  table.Rule();

  for (const std::string& name : models) {
    ModelConfig config;
    config.depth = depth;
    config.hidden_dim = 16;
    config.dropout = 0.5f;
    config.seed = 7;
    std::unique_ptr<Model> model = MakeModel(name, data, config);
    TrainOptions options;
    options.max_epochs = 150;
    options.patience = 30;
    options.seed = 3;
    TrainModel(*model, options);

    // Converged model: capture hidden states and estimate MI(X; H(l)).
    Rng eval_rng(5);
    nn::ForwardContext ctx{false, &eval_rng};
    model->Forward(ctx);
    std::vector<std::string> row = {name};
    Rng mi_rng(11);
    for (const Tensor& h : model->hidden_states()) {
      Rng layer_rng = mi_rng.Split();
      const double mi =
          RepresentationMutualInformation(data.features, h, 8, layer_rng);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%.3f", mi);
      row.push_back(buf);
    }
    while (row.size() < depth + 1) row.push_back("-");
    table.Row(row);
  }
  table.Rule();
  std::printf(
      "Check the SHAPE against the paper: GCN decays with depth; JK-Net\n"
      "lifts the final layers; DenseGCN retains the most MI per layer.\n");
}

}  // namespace
}  // namespace lasagne

int main(int argc, char** argv) {
  lasagne::bench::ApplyThreadsFlag(argc, argv);
  lasagne::bench::ApplyObservabilityFlags(argc, argv);
  lasagne::Run();
  return 0;
}
