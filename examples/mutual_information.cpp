// Mutual-information analysis of hidden representations — the paper's
// §3.2 lens on over-smoothing (Figs. 2 and 6), as a library walkthrough.
//
//   $ ./build/examples/mutual_information

#include <cstdio>
#include <string>
#include <vector>

#include "data/registry.h"
#include "metrics/mutual_info.h"
#include "models/model.h"
#include "train/trainer.h"

int main() {
  using namespace lasagne;

  Dataset data = LoadDataset("cora", 0.6, /*seed=*/5);

  // Train an 8-layer GCN and an 8-layer Lasagne, then estimate
  // MI(X; H(l)) for every hidden layer with the quantization estimator.
  for (const std::string name : {"gcn", "lasagne-stochastic"}) {
    ModelConfig config;
    config.depth = 8;
    config.hidden_dim = 16;
    config.dropout = 0.5f;
    config.seed = 3;
    std::unique_ptr<Model> model = MakeModel(name, data, config);
    TrainOptions options;
    options.max_epochs = 120;
    options.seed = 7;
    TrainModel(*model, options);

    Rng fwd_rng(1);
    nn::ForwardContext ctx{false, &fwd_rng};
    model->Forward(ctx);

    std::printf("%s: MI(X; H(l)) per layer:\n  ", model->name().c_str());
    Rng mi_rng(9);
    for (const Tensor& h : model->hidden_states()) {
      Rng layer_rng = mi_rng.Split();
      std::printf("%.3f ", RepresentationMutualInformation(data.features,
                                                           h, 8,
                                                           layer_rng));
    }
    std::printf("\n");
  }

  // Calibration: what do MI values mean? Show the estimator's anchors:
  // the entropy of the quantized input is the ceiling (a representation
  // can at most preserve all of it), independent noise is the floor.
  Rng rng(11);
  Tensor x = data.features;
  Tensor noise =
      Tensor::Normal(x.rows(), x.cols(), 0.0f, 1.0f, rng);
  Rng quant_rng(13);
  std::vector<uint32_t> quantized = KMeansCluster(x, 8, 25, quant_rng);
  Rng floor_rng(13);
  std::printf(
      "\nEstimator anchors: H(quantized X) = %.3f (ceiling),"
      " MI(X;noise) = %.3f (floor)\n",
      DiscreteEntropy(quantized, 8),
      RepresentationMutualInformation(x, noise, 8, floor_rng));
  std::printf(
      "Reading: a GCN's later layers drift toward the noise floor\n"
      "(diminishing feature reuse / over-smoothing, paper §3.2);\n"
      "Lasagne layers should stay well above it.\n");
  return 0;
}
