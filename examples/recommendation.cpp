// Production-style scenario: classifying short-videos in a user-video
// bipartite graph (the paper's Tencent deployment, §5.2.1 "Production").
//
// "Hot" videos are watched by a large share of users; plain GCN
// aggregation makes their embeddings indistinguishable. Lasagne's
// node-aware aggregators keep the per-item signal.
//
//   $ ./build/examples/recommendation

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/registry.h"
#include "models/model.h"
#include "train/trainer.h"

int main() {
  using namespace lasagne;

  Dataset data = LoadDataset("tencent", 1.0, /*seed=*/11);
  std::printf("User-video graph: %zu nodes (%zu labeled videos), "
              "%zu watch edges, %zu video classes\n",
              data.num_nodes(), data.TestNodes().size() +
              data.TrainNodes().size() + data.ValNodes().size(),
              data.graph.num_edges(), data.num_classes);

  // Popularity skew: degree of the hottest vs median video.
  std::vector<size_t> item_degrees;
  for (uint32_t u = 0; u < data.num_nodes(); ++u) {
    if (data.train_mask[u] > 0 || data.val_mask[u] > 0 ||
        data.test_mask[u] > 0 || data.graph.Degree(u) > 0) {
      item_degrees.push_back(data.graph.Degree(u));
    }
  }
  std::sort(item_degrees.begin(), item_degrees.end());
  std::printf("Degree skew: max %zu vs median %zu (hot-video effect)\n\n",
              item_degrees.back(), item_degrees[item_degrees.size() / 2]);

  const char* models[] = {"gcn", "jknet", "lasagne-stochastic"};
  std::printf("%-22s %10s %12s\n", "model", "test acc", "epoch ms");
  for (const char* name : models) {
    ModelConfig config;
    config.depth = 4;  // deep: exploit high-order user-item connectivity
    config.hidden_dim = 32;
    config.dropout = 0.5f;
    config.seed = 13;
    std::unique_ptr<Model> model = MakeModel(name, data, config);
    TrainOptions options;
    options.max_epochs = 150;
    options.seed = 17;
    TrainResult result = TrainModel(*model, options);
    std::printf("%-22s %9.1f%% %11.1f\n", model->name().c_str(),
                100.0 * result.test_accuracy, result.mean_epoch_time_ms);
  }
  std::printf(
      "\nExpected: Lasagne ahead of GCN/JK-Net — the node-aware\n"
      "aggregators let hot videos stay shallow while cold-start videos\n"
      "aggregate deep user co-watch signal (paper Table 5, Tencent).\n");
  return 0;
}
