// Inductive learning with sampling — the paper's Table 4 protocol as a
// walkthrough: models may only see the subgraph induced by training
// nodes, then predict on nodes (and edges) never seen in training.
//
//   $ ./build/examples/inductive_sampling

#include <cstdio>

#include "data/registry.h"
#include "models/model.h"
#include "sampling/samplers.h"
#include "train/trainer.h"

int main() {
  using namespace lasagne;

  Dataset data = LoadDataset("flickr", 0.8, /*seed=*/21);
  Dataset train_view = data.TrainSubgraph();
  std::printf(
      "Inductive split: full graph %zu nodes / %zu edges; training view\n"
      "%zu nodes / %zu edges (val+test nodes and their edges are\n"
      "invisible during training)\n\n",
      data.num_nodes(), data.graph.num_edges(), train_view.num_nodes(),
      train_view.graph.num_edges());

  // Peek at the samplers the inductive methods are built on.
  Rng rng(3);
  CsrMatrix sage_op = SampleNeighborOperator(train_view.graph, 8, rng);
  auto saint_nodes = RandomWalkSubgraphNodes(train_view.graph, 48, 3, rng);
  std::printf("GraphSAGE sampled operator: %zu edges (fanout 8)\n",
              sage_op.nnz());
  std::printf("GraphSAINT walk subgraph: %zu of %zu train nodes\n\n",
              saint_nodes.size(), train_view.num_nodes());

  const char* models[] = {"graphsage", "fastgcn", "clustergcn",
                          "graphsaint", "lasagne-maxpool"};
  std::printf("%-18s %10s\n", "model", "test acc");
  for (const char* name : models) {
    ModelConfig config;
    config.depth = 3;
    config.hidden_dim = 32;
    config.dropout = 0.5f;
    config.seed = 5;
    std::unique_ptr<Model> model = MakeModel(name, data, config);
    TrainOptions options;
    options.max_epochs = 120;
    options.learning_rate = 0.01f;
    options.weight_decay = 1e-5f;
    options.seed = 9;
    TrainResult result = TrainModel(*model, options);
    std::printf("%-18s %9.1f%%\n", model->name().c_str(),
                100.0 * result.test_accuracy);
  }
  std::printf(
      "\nOnly Max-Pooling Lasagne runs inductively: the Weighted and\n"
      "Stochastic aggregators own per-node parameters that do not exist\n"
      "for unseen nodes (paper §5.2.1).\n");
  return 0;
}
