// Over-smoothing demo: what happens to a plain GCN as it gets deeper,
// and how Lasagne's node-aware aggregation prevents the collapse
// (the phenomenon behind paper Fig. 5).
//
//   $ ./build/examples/deep_gcn_depth

#include <cstdio>

#include "data/registry.h"
#include "graph/algorithms.h"
#include "models/model.h"
#include "train/trainer.h"

int main() {
  using namespace lasagne;

  Dataset data = LoadDataset("cora", 0.8, /*seed=*/3);
  Rng apl_rng(1);
  std::printf(
      "Graph: %zu nodes, avg degree %.1f, average path length %.1f\n"
      "(an L-layer GCN sees the L-hop neighborhood; APL bounds the\n"
      "useful depth)\n\n",
      data.num_nodes(), data.graph.AverageDegree(),
      AveragePathLengthSampled(data.graph, 48, apl_rng));

  std::printf("%8s  %12s  %22s\n", "depth", "GCN", "Lasagne(stochastic)");
  for (size_t depth : {2, 4, 6, 8, 10}) {
    double acc[2];
    int i = 0;
    for (const char* name : {"gcn", "lasagne-stochastic"}) {
      ModelConfig config;
      config.depth = depth;
      config.hidden_dim = 24;
      config.dropout = 0.4f;
      config.seed = 5;
      std::unique_ptr<Model> model = MakeModel(name, data, config);
      TrainOptions options;
      options.max_epochs = 150;
      options.seed = 9;
      acc[i++] = TrainModel(*model, options).test_accuracy;
    }
    std::printf("%8zu  %11.1f%%  %21.1f%%\n", depth, 100.0 * acc[0],
                100.0 * acc[1]);
  }
  std::printf(
      "\nThe GCN column should peak at depth 2 and decay (over-\n"
      "smoothing: hub nodes aggregate beyond their cluster); the\n"
      "Lasagne column should stay flat or improve, because every node\n"
      "learns which layers to aggregate (paper Eq. 4-6).\n");
  return 0;
}
