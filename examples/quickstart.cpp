// Quickstart: train Lasagne on a Cora-like graph in ~30 lines.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API surface: load a dataset, pick a
// model from the registry, train with early stopping, evaluate.

#include <cstdio>

#include "data/registry.h"
#include "models/model.h"
#include "train/trainer.h"

int main() {
  using namespace lasagne;

  // 1. A Cora-scale synthetic citation graph (see DESIGN.md for how the
  //    generator stands in for the real dataset).
  Dataset data = LoadDataset("cora", /*scale=*/1.0, /*seed=*/7);
  std::printf("Loaded %s: %zu nodes, %zu edges, %zu classes, "
              "label rate %.1f%%\n",
              data.name.c_str(), data.num_nodes(), data.graph.num_edges(),
              data.num_classes, 100.0 * data.LabelRate());

  // 2. A 4-layer Lasagne with the stochastic node-aware aggregator and
  //    the GC-FM output layer (the paper's strongest configuration).
  ModelConfig config;
  config.depth = 4;
  config.hidden_dim = 32;
  config.dropout = 0.5f;
  std::unique_ptr<Model> model =
      MakeModel("lasagne-stochastic", data, config);

  // 3. Train: Adam, lr 0.02, L2 5e-4, early stopping on validation
  //    accuracy — the paper's §5.1.3 settings are the defaults.
  TrainOptions options;
  options.max_epochs = 200;
  options.verbose = true;
  TrainResult result = TrainModel(*model, options);

  std::printf("\n%s on %s\n", model->name().c_str(), data.name.c_str());
  std::printf("  epochs run        : %zu (early stop patience %zu)\n",
              result.epochs_run, options.patience);
  std::printf("  best val accuracy : %.1f%%\n",
              100.0 * result.best_val_accuracy);
  std::printf("  test accuracy     : %.1f%%\n",
              100.0 * result.test_accuracy);
  std::printf("  per-epoch time    : %.1f ms\n",
              result.mean_epoch_time_ms);

  // 4. Compare against the 2-layer GCN baseline in three lines.
  ModelConfig gcn_config = config;
  gcn_config.depth = 2;
  std::unique_ptr<Model> gcn = MakeModel("gcn", data, gcn_config);
  TrainResult gcn_result = TrainModel(*gcn, options);
  std::printf("  (2-layer GCN      : %.1f%%)\n",
              100.0 * gcn_result.test_accuracy);
  return 0;
}
