// Extending Lasagne with a custom layer aggregator (the paper notes
// "other custom aggregation operations (e.g., mean, LSTM) are also
// possible"). This example implements an exponential-decay aggregator —
// layer i gets weight gamma^(l-i) with a single trainable gamma logit —
// and plugs it into LasagneModel through LasagneConfig::custom_aggregator.
//
//   $ ./build/examples/custom_aggregator

#include <cstdio>

#include "core/lasagne_model.h"
#include "data/registry.h"
#include "train/trainer.h"

namespace {

using namespace lasagne;

// A minimal LayerAggregator: softly decaying mixture of the history,
// H(l) = sum_i gamma^(l-i) A_hat H(i) W(il) + H(l), with one scalar
// trainable decay parameter shared by all nodes. (Deliberately NOT
// node-aware — run it against the built-ins to see what node-awareness
// is worth.)
class DecayAggregator : public LayerAggregator {
 public:
  DecayAggregator(std::vector<size_t> layer_dims, Rng& rng)
      : layer_dims_(std::move(layer_dims)) {
    const size_t out = layer_dims_.back();
    for (size_t i = 0; i + 1 < layer_dims_.size(); ++i) {
      transforms_.push_back(ag::MakeParameter(
          Tensor::GlorotUniform(layer_dims_[i], out, rng)));
    }
    gamma_logit_ = ag::MakeParameter(Tensor::Zeros(1, 1));
  }

  ag::Variable Aggregate(const std::shared_ptr<const CsrMatrix>& a_hat,
                         const std::vector<ag::Variable>& history,
                         const nn::ForwardContext& ctx) override {
    (void)ctx;
    const size_t l = history.size();
    ag::Variable gamma = ag::Sigmoid(gamma_logit_);  // decay in (0, 1)
    std::vector<ag::Variable> terms = {history.back()};
    ag::Variable weight = gamma;
    for (size_t back = 1; back < l; ++back) {
      const size_t i = l - 1 - back;
      ag::Variable transformed =
          ag::SpMM(a_hat, ag::MatMul(history[i], transforms_[i]));
      // Broadcast the scalar gamma^back over the matrix.
      ag::Variable ones_row =
          ag::MakeConstant(Tensor::Ones(1, transformed->cols()));
      ag::Variable col = ag::MatMul(
          ag::MakeConstant(Tensor::Ones(transformed->rows(), 1)), weight);
      terms.push_back(ag::RowScale(transformed, col));
      weight = ag::Mul(weight, gamma);
    }
    return terms.size() == 1 ? terms[0] : ag::AddMany(terms);
  }

  std::vector<ag::Variable> Parameters() const override {
    std::vector<ag::Variable> params = transforms_;
    params.push_back(gamma_logit_);
    return params;
  }
  std::string name() const override { return "decay"; }
  bool node_indexed() const override { return false; }

 private:
  std::vector<size_t> layer_dims_;
  std::vector<ag::Variable> transforms_;
  ag::Variable gamma_logit_;
};

}  // namespace

int main() {
  using namespace lasagne;
  Dataset data = LoadDataset("cora", 0.8, /*seed=*/9);

  auto run = [&](const char* label, LasagneConfig config) {
    config.depth = 6;
    config.hidden_dim = 24;
    config.dropout = 0.4f;
    config.seed = 3;
    LasagneModel model(data, config);
    TrainOptions options;
    options.max_epochs = 150;
    options.seed = 7;
    TrainResult result = TrainModel(model, options);
    std::printf("%-28s test acc %.1f%%\n", label,
                100.0 * result.test_accuracy);
  };

  LasagneConfig custom;
  custom.custom_aggregator = [](size_t layer_index,
                                std::vector<size_t> layer_dims, Rng& rng) {
    (void)layer_index;
    return std::make_unique<DecayAggregator>(std::move(layer_dims), rng);
  };
  run("custom decay aggregator", custom);

  LasagneConfig stochastic;
  stochastic.aggregator = AggregatorKind::kStochastic;
  run("built-in stochastic (Eq. 6)", stochastic);

  LasagneConfig mean;
  mean.aggregator = AggregatorKind::kMean;
  run("built-in mean", mean);

  std::printf(
      "\nThe node-aware stochastic aggregator should beat both uniform\n"
      "schemes: a single global decay cannot serve hubs and leaves at\n"
      "the same time (the paper's central argument).\n");
  return 0;
}
