#ifndef LASAGNE_AUTOGRAD_FORWARD_TRACE_H_
#define LASAGNE_AUTOGRAD_FORWARD_TRACE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.h"

namespace lasagne {
class CsrMatrix;
}

namespace lasagne::ag {

class ForwardTrace;
struct EdgeStructure;

/// Pure recompute closure for one traced op: given pointers to the
/// current input tensors (in the op's argument order), it returns the
/// op's output tensor. Closures must run exactly the arithmetic of the
/// eager forward (same kernels, same accumulation order) so that a
/// replayed value is bitwise identical to the eager one, and must not
/// retain Variables — side data (CSR matrices, edge structures, index
/// lists, scalars) is captured by shared_ptr or value.
using TraceFn = std::function<Tensor(const std::vector<const Tensor*>&)>;

/// Structural identity of a traced op, for the execution-plan fusion
/// pass (src/infer/plan.cc). The replay closure is opaque, so ops that
/// participate in a fusion rule self-describe here; everything else
/// stays kOpaque and never fuses.
enum class TraceOpKind : uint8_t {
  kOpaque,
  kAdd,               // inputs {a, b}; same shape
  kMatMul,            // inputs {a, b}
  kSpMM,              // inputs {x}; meta.spmm_matrix set
  kAddRowVector,      // inputs {x, bias}
  kRelu,              // inputs {x}
  kLeakyRelu,         // inputs {x}; meta.alpha set
  kGatherEdgeScores,  // inputs {dst_scores, src_scores}; meta.edges set
  kAddEdgeBias,       // inputs {scores}; meta.edge_bias set
  kEdgeSoftmax,       // inputs {scores}; meta.edges set
  kEdgeWeightedAggregate,  // inputs {weights, features}; meta.edges set
  kEdgeAttention,  // inputs {dst_scores, src_scores, features}; meta.edges,
                   // meta.alpha (slope), optional meta.edge_bias set
};

/// Side data a fused replay closure needs to be rebuilt from scratch
/// (the original closures capture it privately). Cheap to copy: two
/// shared_ptrs and two scalars.
struct TraceOpMeta {
  TraceOpKind kind = TraceOpKind::kOpaque;
  std::shared_ptr<const CsrMatrix> spmm_matrix;   // kSpMM
  std::shared_ptr<const EdgeStructure> edges;     // edge ops
  std::shared_ptr<const std::vector<float>> edge_bias;  // kAddEdgeBias
  float alpha = 0.0f;                             // kLeakyRelu slope

  static TraceOpMeta Kind(TraceOpKind k) {
    TraceOpMeta m;
    m.kind = k;
    return m;
  }
  static TraceOpMeta Spmm(std::shared_ptr<const CsrMatrix> matrix) {
    TraceOpMeta m;
    m.kind = TraceOpKind::kSpMM;
    m.spmm_matrix = std::move(matrix);
    return m;
  }
  static TraceOpMeta LeakySlope(float alpha) {
    TraceOpMeta m;
    m.kind = TraceOpKind::kLeakyRelu;
    m.alpha = alpha;
    return m;
  }
  static TraceOpMeta Edge(TraceOpKind k,
                          std::shared_ptr<const EdgeStructure> edges) {
    TraceOpMeta m;
    m.kind = k;
    m.edges = std::move(edges);
    return m;
  }
  static TraceOpMeta EdgeBias(std::shared_ptr<const std::vector<float>> bias) {
    TraceOpMeta m;
    m.kind = TraceOpKind::kAddEdgeBias;
    m.edge_bias = std::move(bias);
    return m;
  }
};

/// One op captured by a ForwardTrace, in execution order.
struct TraceRecord {
  Variable output;
  std::vector<Variable> inputs;
  TraceFn replay;
  const char* op_name = "";
  TraceOpMeta meta;
};

namespace internal {

/// True while the calling thread has a ForwardTrace installed. Op
/// implementations branch on this before building trace arguments, so
/// the untraced hot path pays one thread-local load.
bool ForwardTraceActive();

/// Called by MakeOpNode for every inference-mode node while a trace is
/// active. Pairs with the TraceRecordOp the op issues right after; a
/// node that is noted but never recorded marks the trace incomplete
/// (the op has no replay closure yet).
void TraceNoteNode(const Node* node, const char* op_name);

/// Registers the replay closure for the op that just created `output`.
/// Ops covered by a fusion rule pass their structural `meta`; the
/// default (kOpaque) opts out of fusion but still replays.
void TraceRecordOp(const Variable& output, std::vector<Variable> inputs,
                   TraceFn replay, const char* op_name,
                   TraceOpMeta meta = TraceOpMeta());

}  // namespace internal

/// RAII scope that records every autograd op the calling thread
/// executes into a flat, execution-ordered list of TraceRecords. This
/// is the capture half of the static execution-plan compiler
/// (src/infer/plan.h): one traced eval forward yields the op list the
/// plan interpreter replays without re-walking Forward.
///
/// Only valid under ag::NoGradGuard — tracing a tape-building forward
/// is meaningless (the tape itself is the trace) and the registered
/// closures replay evaluation-mode semantics. Ops that create a node
/// without registering a closure (training-only or not-yet-instrumented
/// ops) leave the trace incomplete; callers must then fall back to the
/// eager forward. Nestable; inner traces shadow outer ones.
class ForwardTrace {
 public:
  ForwardTrace();
  ~ForwardTrace();

  ForwardTrace(const ForwardTrace&) = delete;
  ForwardTrace& operator=(const ForwardTrace&) = delete;

  /// True when every op node created while this trace was active
  /// registered a replay closure.
  bool complete() const;
  /// Number of nodes created without a replay closure.
  size_t untraced_ops() const;
  /// Op name of the first untraced node ("" when complete).
  std::string first_untraced_op() const;

  const std::vector<TraceRecord>& records() const { return records_; }
  std::vector<TraceRecord> TakeRecords() { return std::move(records_); }

 private:
  friend void internal::TraceNoteNode(const Node* node, const char* op_name);
  friend void internal::TraceRecordOp(const Variable& output,
                                      std::vector<Variable> inputs,
                                      TraceFn replay, const char* op_name,
                                      TraceOpMeta meta);

  /// Counts a noted-but-never-recorded node as untraced.
  void FlushPending();

  std::vector<TraceRecord> records_;
  size_t untraced_ = 0;
  const char* first_untraced_ = "";
  const Node* pending_node_ = nullptr;
  const char* pending_name_ = "";
  ForwardTrace* previous_ = nullptr;
};

}  // namespace lasagne::ag

#endif  // LASAGNE_AUTOGRAD_FORWARD_TRACE_H_
