#ifndef LASAGNE_AUTOGRAD_FM_OP_H_
#define LASAGNE_AUTOGRAD_FM_OP_H_

#include <vector>

#include "autograd/variable.h"

namespace lasagne::ag {

/// Cross-field Factorization Machine scores (the GC-FM layer core,
/// paper Eq. 7).
///
/// `x` is (N x M) with M columns grouped into P fields (one field per
/// stacked hidden layer); `field_offsets` has P+1 entries with
/// field p occupying columns [field_offsets[p], field_offsets[p+1]).
/// `w` is the (M x F) linear term; `v` is (M x F*k): the latent factor
/// of input coordinate m for output class j is v[m, j*k .. j*k+k).
///
/// Output (N x F):
///   O_ij = <w[:,j], x_i>
///        + sum_{p<q} sum_{m in p} sum_{n in q} <v_jm, v_jn> x_im x_in
/// computed with the field identity
///   cross = 0.5 * (||sum_p t_p||^2 - sum_p ||t_p||^2),
///   t_ijp = sum_{m in p} v_jm x_im,
/// which restricts interactions to *different* fields (layers), exactly
/// as the paper requires ("we only interact between different layers'
/// embeddings"). Cost O(N * F * M * k) instead of O(N * F * M^2).
///
/// Gradients flow to x, w and v.
Variable FmInteraction(const Variable& x, const Variable& w,
                       const Variable& v,
                       std::vector<size_t> field_offsets, size_t k);

}  // namespace lasagne::ag

#endif  // LASAGNE_AUTOGRAD_FM_OP_H_
