#include "autograd/inference.h"

namespace lasagne::ag {

namespace {

thread_local bool t_inference_mode = false;
thread_local TapeStats t_tape_stats;

}  // namespace

bool InferenceModeEnabled() { return t_inference_mode; }

NoGradGuard::NoGradGuard() : previous_(t_inference_mode) {
  t_inference_mode = true;
}

NoGradGuard::~NoGradGuard() { t_inference_mode = previous_; }

TapeStats GetTapeStats() { return t_tape_stats; }

void ResetTapeStats() { t_tape_stats = TapeStats{}; }

namespace internal {

void CountOpNode(uint64_t parent_links) {
  ++t_tape_stats.nodes_created;
  t_tape_stats.parent_links += parent_links;
}

void CountClosure() { ++t_tape_stats.closures_retained; }

}  // namespace internal

}  // namespace lasagne::ag
