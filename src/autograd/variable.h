#ifndef LASAGNE_AUTOGRAD_VARIABLE_H_
#define LASAGNE_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace lasagne::ag {

class Node;

/// A handle to a node in the dynamic computation graph.
///
/// Variables are produced either by `MakeParameter` / `MakeConstant`
/// (leaves) or by the differentiable ops in ops.h (interior nodes). The
/// graph is define-by-run: every op allocates a new node that remembers
/// its parents and a closure that propagates gradients to them.
using Variable = std::shared_ptr<Node>;

/// One node of the computation graph: a value, an optional gradient and
/// the backward closure that routes `grad` into the parents' grads.
///
/// Nodes built while the calling thread is in inference mode (see
/// autograd/inference.h) are value-only: `grad_enabled()` is false and
/// `set_backward_fn` discards the closure instead of storing it, so no
/// tape is retained.
class Node {
 public:
  Node(Tensor value, bool requires_grad, bool grad_enabled = true)
      : value_(std::move(value)),
        requires_grad_(requires_grad),
        grad_enabled_(grad_enabled) {}

  const Tensor& value() const { return value_; }
  Tensor& mutable_value() { return value_; }

  /// Accumulated gradient; zero-sized until the first accumulation.
  const Tensor& grad() const { return grad_; }

  /// Mutable access to the gradient buffer (gradient clipping, fault
  /// injection). Zero-sized until the first accumulation.
  Tensor& mutable_grad() { return grad_; }

  bool requires_grad() const { return requires_grad_; }

  /// False for value-only nodes built under inference mode.
  bool grad_enabled() const { return grad_enabled_; }

  /// Adds `g` into this node's gradient (allocating on first use).
  void AccumulateGrad(const Tensor& g);

  /// Clears the gradient buffer (kept allocated).
  void ZeroGrad();

  size_t rows() const { return value_.rows(); }
  size_t cols() const { return value_.cols(); }

  // -- Graph wiring (used by op implementations) -------------------------

  void set_parents(std::vector<Variable> parents) {
    parents_ = std::move(parents);
  }
  const std::vector<Variable>& parents() const { return parents_; }

  /// `fn` receives this node's gradient and must accumulate into
  /// parents. Discarded (not stored) when `grad_enabled()` is false:
  /// inference-mode closures would capture raw pointers to parents the
  /// node does not retain.
  void set_backward_fn(std::function<void(const Tensor&)> fn);
  const std::function<void(const Tensor&)>& backward_fn() const {
    return backward_fn_;
  }

  void set_op_name(std::string name) { op_name_ = std::move(name); }
  const std::string& op_name() const { return op_name_; }

 private:
  Tensor value_;
  Tensor grad_;
  bool requires_grad_;
  bool grad_enabled_ = true;
  std::vector<Variable> parents_;
  std::function<void(const Tensor&)> backward_fn_;
  std::string op_name_;
};

/// Creates a trainable leaf (gradients will be accumulated).
Variable MakeParameter(Tensor value);

/// Creates a non-trainable leaf (no gradient tracking).
Variable MakeConstant(Tensor value);

/// Runs reverse-mode differentiation from `root`, which must be a 1x1
/// scalar. Gradients accumulate into every reachable node that
/// `requires_grad`. Call `ZeroGrad` on parameters between steps.
void Backward(const Variable& root);

/// Runs reverse-mode differentiation from `root` seeded with an explicit
/// output gradient of the same shape as `root->value()`.
void BackwardWithGrad(const Variable& root, const Tensor& seed);

}  // namespace lasagne::ag

#endif  // LASAGNE_AUTOGRAD_VARIABLE_H_
