#include "autograd/variable.h"

#include <unordered_set>

#include "autograd/inference.h"
#include "common/check.h"
#include "obs/trace.h"

namespace lasagne::ag {

void Node::set_backward_fn(std::function<void(const Tensor&)> fn) {
  if (!grad_enabled_) return;
  internal::CountClosure();
  backward_fn_ = std::move(fn);
}

void Node::AccumulateGrad(const Tensor& g) {
  if (!requires_grad_) return;
  LASAGNE_CHECK_EQ(g.rows(), value_.rows());
  LASAGNE_CHECK_EQ(g.cols(), value_.cols());
  if (grad_.empty()) {
    grad_ = g;
  } else {
    grad_ += g;
  }
}

void Node::ZeroGrad() {
  if (!grad_.empty()) grad_.SetZero();
}

Variable MakeParameter(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true);
}

Variable MakeConstant(Tensor value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false);
}

namespace {

// Iterative post-order DFS producing a topological order (parents before
// children in the returned vector; we traverse it in reverse).
void TopologicalOrder(const Variable& root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents().size()) {
      Node* parent = node->parents()[next_child].get();
      ++next_child;
      if (parent != nullptr && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void BackwardWithGrad(const Variable& root, const Tensor& seed) {
  LASAGNE_TRACE_SCOPE("backward");
  LASAGNE_CHECK_MSG(!InferenceModeEnabled(),
                    "Backward called inside a NoGradGuard scope");
  LASAGNE_CHECK(root != nullptr);
  LASAGNE_CHECK_MSG(root->grad_enabled(),
                    "Backward called on a value-only (inference-mode) node");
  LASAGNE_CHECK_EQ(seed.rows(), root->value().rows());
  LASAGNE_CHECK_EQ(seed.cols(), root->value().cols());
  std::vector<Node*> order;
  TopologicalOrder(root, order);
  root->AccumulateGrad(seed);
  // Reverse topological order: each node's grad is complete before its
  // backward fn runs (all consumers appear later in `order`).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn() && node->requires_grad() &&
        !node->grad().empty()) {
      node->backward_fn()(node->grad());
    }
  }
}

void Backward(const Variable& root) {
  LASAGNE_CHECK(root != nullptr);
  LASAGNE_CHECK_EQ(root->value().rows(), 1u);
  LASAGNE_CHECK_EQ(root->value().cols(), 1u);
  BackwardWithGrad(root, Tensor::Ones(1, 1));
}

}  // namespace lasagne::ag
