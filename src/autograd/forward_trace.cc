#include "autograd/forward_trace.h"

#include "autograd/inference.h"
#include "common/check.h"

namespace lasagne::ag {

namespace {

thread_local ForwardTrace* t_active_trace = nullptr;

}  // namespace

ForwardTrace::ForwardTrace() : previous_(t_active_trace) {
  // Tracing captures evaluation-mode replay closures; a tape-building
  // forward already has its own graph and several ops (Dropout) change
  // structure between modes.
  LASAGNE_CHECK_MSG(InferenceModeEnabled(),
                    "ForwardTrace requires an active ag::NoGradGuard");
  t_active_trace = this;
}

ForwardTrace::~ForwardTrace() { t_active_trace = previous_; }

void ForwardTrace::FlushPending() {
  if (pending_node_ == nullptr) return;
  if (untraced_ == 0) first_untraced_ = pending_name_;
  ++untraced_;
  pending_node_ = nullptr;
  pending_name_ = "";
}

bool ForwardTrace::complete() const {
  return untraced_ == 0 && pending_node_ == nullptr;
}

size_t ForwardTrace::untraced_ops() const {
  return untraced_ + (pending_node_ != nullptr ? 1 : 0);
}

std::string ForwardTrace::first_untraced_op() const {
  if (untraced_ > 0) return first_untraced_;
  if (pending_node_ != nullptr) return pending_name_;
  return "";
}

namespace internal {

bool ForwardTraceActive() { return t_active_trace != nullptr; }

void TraceNoteNode(const Node* node, const char* op_name) {
  ForwardTrace* trace = t_active_trace;
  if (trace == nullptr) return;
  trace->FlushPending();
  trace->pending_node_ = node;
  trace->pending_name_ = op_name;
}

void TraceRecordOp(const Variable& output, std::vector<Variable> inputs,
                   TraceFn replay, const char* op_name, TraceOpMeta meta) {
  ForwardTrace* trace = t_active_trace;
  if (trace == nullptr) return;
  if (trace->pending_node_ == output.get()) {
    trace->pending_node_ = nullptr;
    trace->pending_name_ = "";
  }
  trace->records_.push_back({output, std::move(inputs), std::move(replay),
                             op_name, std::move(meta)});
}

}  // namespace internal

}  // namespace lasagne::ag
