#include "autograd/ops.h"

#include <algorithm>
#include <cmath>

#include "autograd/forward_trace.h"
#include "autograd/inference.h"
#include "common/check.h"
#include "common/parallel_config.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace lasagne::ag {

Variable MakeOpNode(Tensor value, std::vector<Variable> parents,
                    const char* op_name) {
  if (InferenceModeEnabled()) {
    // Value-only node: no requires_grad propagation, no parent
    // retention, and set_backward_fn discards the op's closure, so the
    // tape never materializes and each intermediate frees as soon as
    // its consumer has run.
    for (const Variable& p : parents) LASAGNE_CHECK(p != nullptr);
    auto node = std::make_shared<Node>(std::move(value),
                                       /*requires_grad=*/false,
                                       /*grad_enabled=*/false);
    node->set_op_name(op_name);
    if (internal::ForwardTraceActive()) {
      internal::TraceNoteNode(node.get(), op_name);
    }
    return node;
  }
  bool requires_grad = false;
  for (const Variable& p : parents) {
    LASAGNE_CHECK(p != nullptr);
    requires_grad = requires_grad || p->requires_grad();
  }
  internal::CountOpNode(parents.size());
  auto node = std::make_shared<Node>(std::move(value), requires_grad);
  node->set_parents(std::move(parents));
  node->set_op_name(op_name);
  return node;
}

// ---------------------------------------------------------------------------
// Elementwise / arithmetic
// ---------------------------------------------------------------------------

// Every op that can appear in an evaluation-mode forward registers a
// replay closure with the active ForwardTrace (plan compiler capture,
// src/infer/plan.h). The closure reruns exactly the eager arithmetic on
// the current input tensors; the ForwardTraceActive() branch keeps the
// untraced path at one thread-local load per op.

Variable Add(const Variable& a, const Variable& b) {
  Variable out = MakeOpNode(a->value() + b->value(), {a, b}, "Add");
  Node* pa = a.get();
  Node* pb = b.get();
  out->set_backward_fn([pa, pb](const Tensor& g) {
    pa->AccumulateGrad(g);
    pb->AccumulateGrad(g);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {a, b},
        [](const std::vector<const Tensor*>& in) { return *in[0] + *in[1]; },
        "Add", TraceOpMeta::Kind(TraceOpKind::kAdd));
  }
  return out;
}

Variable AddMany(const std::vector<Variable>& inputs) {
  LASAGNE_CHECK(!inputs.empty());
  Tensor total = inputs[0]->value();
  for (size_t i = 1; i < inputs.size(); ++i) total += inputs[i]->value();
  Variable out = MakeOpNode(std::move(total), inputs, "AddMany");
  std::vector<Node*> raw;
  raw.reserve(inputs.size());
  for (const Variable& v : inputs) raw.push_back(v.get());
  out->set_backward_fn([raw](const Tensor& g) {
    for (Node* n : raw) n->AccumulateGrad(g);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, inputs,
        [](const std::vector<const Tensor*>& in) {
          Tensor total = *in[0];
          for (size_t i = 1; i < in.size(); ++i) total += *in[i];
          return total;
        },
        "AddMany");
  }
  return out;
}

Variable Sub(const Variable& a, const Variable& b) {
  Variable out = MakeOpNode(a->value() - b->value(), {a, b}, "Sub");
  Node* pa = a.get();
  Node* pb = b.get();
  out->set_backward_fn([pa, pb](const Tensor& g) {
    pa->AccumulateGrad(g);
    pb->AccumulateGrad(g * -1.0f);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {a, b},
        [](const std::vector<const Tensor*>& in) { return *in[0] - *in[1]; },
        "Sub");
  }
  return out;
}

Variable Mul(const Variable& a, const Variable& b) {
  Variable out = MakeOpNode(a->value() * b->value(), {a, b}, "Mul");
  Node* pa = a.get();
  Node* pb = b.get();
  out->set_backward_fn([pa, pb](const Tensor& g) {
    pa->AccumulateGrad(g * pb->value());
    pb->AccumulateGrad(g * pa->value());
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {a, b},
        [](const std::vector<const Tensor*>& in) { return *in[0] * *in[1]; },
        "Mul");
  }
  return out;
}

Variable ScalarMul(const Variable& x, float scalar) {
  Variable out = MakeOpNode(x->value() * scalar, {x}, "ScalarMul");
  Node* px = x.get();
  out->set_backward_fn([px, scalar](const Tensor& g) {
    px->AccumulateGrad(g * scalar);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [scalar](const std::vector<const Tensor*>& in) {
          return *in[0] * scalar;
        },
        "ScalarMul");
  }
  return out;
}

namespace {

// Shared implementation for y = f(x) with dy/dx a function of (x, y).
Variable UnaryOp(const Variable& x, const char* name,
                 const std::function<float(float)>& fwd,
                 std::function<Tensor(const Tensor& g, const Tensor& x_val,
                                      const Tensor& y_val)>
                     bwd) {
  Tensor y = x->value().Map(fwd);
  Variable out = MakeOpNode(std::move(y), {x}, name);
  Node* px = x.get();
  Node* pout = out.get();
  out->set_backward_fn([px, pout, bwd](const Tensor& g) {
    px->AccumulateGrad(bwd(g, px->value(), pout->value()));
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [fwd](const std::vector<const Tensor*>& in) { return in[0]->Map(fwd); },
        name);
  }
  return out;
}

}  // namespace

Variable Relu(const Variable& x) {
  // Fused kernel path: forward is max(x, 0) lane-exactly, backward
  // masks g where x <= 0 — both bitwise the per-element formulation
  // UnaryOp used to run through std::function (docs/KERNELS.md).
  Tensor y = Tensor::Uninitialized(x->rows(), x->cols());
  ParallelFor(0, y.size(), kGrain, [&](size_t begin, size_t end) {
    kernels::ReluForward(x->value().data() + begin, y.data() + begin,
                         end - begin);
  });
  Variable out = MakeOpNode(std::move(y), {x}, "Relu");
  Node* px = x.get();
  out->set_backward_fn([px](const Tensor& g) {
    Tensor dx = Tensor::Uninitialized(g.rows(), g.cols());
    ParallelFor(0, g.size(), kGrain, [&](size_t begin, size_t end) {
      kernels::ReluBackward(g.data() + begin, px->value().data() + begin,
                            dx.data() + begin, end - begin);
    });
    px->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [](const std::vector<const Tensor*>& in) {
          Tensor y = Tensor::Uninitialized(in[0]->rows(), in[0]->cols());
          ParallelFor(0, y.size(), kGrain, [&](size_t begin, size_t end) {
            kernels::ReluForward(in[0]->data() + begin, y.data() + begin,
                                 end - begin);
          });
          return y;
        },
        "Relu", TraceOpMeta::Kind(TraceOpKind::kRelu));
  }
  return out;
}

Variable LeakyRelu(const Variable& x, float alpha) {
  Tensor y = Tensor::Uninitialized(x->rows(), x->cols());
  ParallelFor(0, y.size(), kGrain, [&](size_t begin, size_t end) {
    kernels::LeakyReluForward(x->value().data() + begin, alpha,
                              y.data() + begin, end - begin);
  });
  Variable out = MakeOpNode(std::move(y), {x}, "LeakyRelu");
  Node* px = x.get();
  out->set_backward_fn([px, alpha](const Tensor& g) {
    Tensor dx = Tensor::Uninitialized(g.rows(), g.cols());
    ParallelFor(0, g.size(), kGrain, [&](size_t begin, size_t end) {
      kernels::LeakyReluBackward(g.data() + begin,
                                 px->value().data() + begin, alpha,
                                 dx.data() + begin, end - begin);
    });
    px->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [alpha](const std::vector<const Tensor*>& in) {
          Tensor y = Tensor::Uninitialized(in[0]->rows(), in[0]->cols());
          ParallelFor(0, y.size(), kGrain, [&](size_t begin, size_t end) {
            kernels::LeakyReluForward(in[0]->data() + begin, alpha,
                                      y.data() + begin, end - begin);
          });
          return y;
        },
        "LeakyRelu", TraceOpMeta::LeakySlope(alpha));
  }
  return out;
}

Variable Sigmoid(const Variable& x) {
  return UnaryOp(
      x, "Sigmoid",
      [](float v) { return 1.0f / (1.0f + std::exp(-v)); },
      [](const Tensor& g, const Tensor&, const Tensor& y_val) {
        Tensor dx = g;
        for (size_t i = 0; i < dx.rows(); ++i) {
          for (size_t j = 0; j < dx.cols(); ++j) {
            const float s = y_val(i, j);
            dx(i, j) *= s * (1.0f - s);
          }
        }
        return dx;
      });
}

Variable Tanh(const Variable& x) {
  return UnaryOp(
      x, "Tanh", [](float v) { return std::tanh(v); },
      [](const Tensor& g, const Tensor&, const Tensor& y_val) {
        Tensor dx = g;
        for (size_t i = 0; i < dx.rows(); ++i) {
          for (size_t j = 0; j < dx.cols(); ++j) {
            const float t = y_val(i, j);
            dx(i, j) *= 1.0f - t * t;
          }
        }
        return dx;
      });
}

Variable Exp(const Variable& x) {
  return UnaryOp(
      x, "Exp", [](float v) { return std::exp(v); },
      [](const Tensor& g, const Tensor&, const Tensor& y_val) {
        return g * y_val;
      });
}

Variable Log(const Variable& x, float eps) {
  return UnaryOp(
      x, "Log",
      [eps](float v) { return std::log(std::max(v, eps)); },
      [eps](const Tensor& g, const Tensor& x_val, const Tensor&) {
        Tensor dx = g;
        for (size_t i = 0; i < dx.rows(); ++i) {
          for (size_t j = 0; j < dx.cols(); ++j) {
            dx(i, j) /= std::max(x_val(i, j), eps);
          }
        }
        return dx;
      });
}

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

Variable MatMul(const Variable& a, const Variable& b) {
  Variable out = MakeOpNode(a->value().MatMul(b->value()), {a, b}, "MatMul");
  Node* pa = a.get();
  Node* pb = b.get();
  out->set_backward_fn([pa, pb](const Tensor& g) {
    if (pa->requires_grad()) {
      pa->AccumulateGrad(g.MatMulTransposed(pb->value()));
    }
    if (pb->requires_grad()) {
      pb->AccumulateGrad(pa->value().TransposedMatMul(g));
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {a, b},
        [](const std::vector<const Tensor*>& in) {
          return in[0]->MatMul(*in[1]);
        },
        "MatMul", TraceOpMeta::Kind(TraceOpKind::kMatMul));
  }
  return out;
}

Variable Transpose(const Variable& x) {
  Variable out = MakeOpNode(x->value().Transpose(), {x}, "Transpose");
  Node* px = x.get();
  out->set_backward_fn([px](const Tensor& g) {
    px->AccumulateGrad(g.Transpose());
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [](const std::vector<const Tensor*>& in) { return in[0]->Transpose(); },
        "Transpose");
  }
  return out;
}

Variable SpMM(std::shared_ptr<const CsrMatrix> matrix, const Variable& x) {
  LASAGNE_CHECK(matrix != nullptr);
  Variable out = MakeOpNode(matrix->Multiply(x->value()), {x}, "SpMM");
  Node* px = x.get();
  out->set_backward_fn([matrix, px](const Tensor& g) {
    px->AccumulateGrad(matrix->TransposedMultiply(g));
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [matrix](const std::vector<const Tensor*>& in) {
          return matrix->Multiply(*in[0]);
        },
        "SpMM", TraceOpMeta::Spmm(matrix));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Broadcasting / shaping
// ---------------------------------------------------------------------------

Variable AddRowVector(const Variable& x, const Variable& bias) {
  LASAGNE_CHECK_EQ(bias->rows(), 1u);
  LASAGNE_CHECK_EQ(bias->cols(), x->cols());
  const size_t cols = x->cols();
  Tensor y = Tensor::Uninitialized(x->rows(), cols);
  ParallelFor(0, x->rows(), RowGrain(cols), [&](size_t row_begin,
                                                size_t row_end) {
    kernels::AddRowVector(x->value().data(), bias->value().data(), y.data(),
                          cols, row_begin, row_end);
  });
  Variable out = MakeOpNode(std::move(y), {x, bias}, "AddRowVector");
  Node* px = x.get();
  Node* pb = bias.get();
  out->set_backward_fn([px, pb](const Tensor& g) {
    if (px->requires_grad()) px->AccumulateGrad(g);
    if (pb->requires_grad()) {
      Tensor db(1, g.cols());
      kernels::ColSumAccumulate(g.data(), g.rows(), g.cols(), db.data());
      pb->AccumulateGrad(db);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x, bias},
        [](const std::vector<const Tensor*>& in) {
          const size_t cols = in[0]->cols();
          Tensor y = Tensor::Uninitialized(in[0]->rows(), cols);
          ParallelFor(0, in[0]->rows(), RowGrain(cols),
                      [&](size_t row_begin, size_t row_end) {
                        kernels::AddRowVector(in[0]->data(), in[1]->data(),
                                              y.data(), cols, row_begin,
                                              row_end);
                      });
          return y;
        },
        "AddRowVector", TraceOpMeta::Kind(TraceOpKind::kAddRowVector));
  }
  return out;
}

Variable RowScale(const Variable& x, const Variable& c) {
  LASAGNE_CHECK_EQ(c->cols(), 1u);
  LASAGNE_CHECK_EQ(c->rows(), x->rows());
  Tensor y = x->value();
  for (size_t r = 0; r < y.rows(); ++r) {
    const float f = c->value()(r, 0);
    float* row = y.RowPtr(r);
    for (size_t j = 0; j < y.cols(); ++j) row[j] *= f;
  }
  Variable out = MakeOpNode(std::move(y), {x, c}, "RowScale");
  Node* px = x.get();
  Node* pc = c.get();
  out->set_backward_fn([px, pc](const Tensor& g) {
    if (px->requires_grad()) {
      Tensor dx = g;
      for (size_t r = 0; r < dx.rows(); ++r) {
        const float f = pc->value()(r, 0);
        float* row = dx.RowPtr(r);
        for (size_t j = 0; j < dx.cols(); ++j) row[j] *= f;
      }
      px->AccumulateGrad(dx);
    }
    if (pc->requires_grad()) {
      Tensor dc(g.rows(), 1);
      for (size_t r = 0; r < g.rows(); ++r) {
        const float* g_row = g.RowPtr(r);
        const float* x_row = px->value().RowPtr(r);
        double acc = 0.0;
        for (size_t j = 0; j < g.cols(); ++j) acc += g_row[j] * x_row[j];
        dc(r, 0) = static_cast<float>(acc);
      }
      pc->AccumulateGrad(dc);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x, c},
        [](const std::vector<const Tensor*>& in) {
          Tensor y = *in[0];
          for (size_t r = 0; r < y.rows(); ++r) {
            const float f = (*in[1])(r, 0);
            float* row = y.RowPtr(r);
            for (size_t j = 0; j < y.cols(); ++j) row[j] *= f;
          }
          return y;
        },
        "RowScale");
  }
  return out;
}

Variable RowDivide(const Variable& x, const Variable& d, float eps) {
  LASAGNE_CHECK_EQ(d->cols(), 1u);
  LASAGNE_CHECK_EQ(d->rows(), x->rows());
  Tensor y = x->value();
  for (size_t r = 0; r < y.rows(); ++r) {
    const float denom = d->value()(r, 0);
    const float inv = 1.0f / (std::fabs(denom) > eps
                                  ? denom
                                  : (denom < 0 ? -eps : eps));
    float* row = y.RowPtr(r);
    for (size_t j = 0; j < y.cols(); ++j) row[j] *= inv;
  }
  Variable out = MakeOpNode(std::move(y), {x, d}, "RowDivide");
  Node* px = x.get();
  Node* pd = d.get();
  Node* pout = out.get();
  out->set_backward_fn([px, pd, pout, eps](const Tensor& g) {
    if (px->requires_grad()) {
      Tensor dx = g;
      for (size_t r = 0; r < dx.rows(); ++r) {
        const float denom = pd->value()(r, 0);
        const float inv = 1.0f / (std::fabs(denom) > eps
                                      ? denom
                                      : (denom < 0 ? -eps : eps));
        float* row = dx.RowPtr(r);
        for (size_t j = 0; j < dx.cols(); ++j) row[j] *= inv;
      }
      px->AccumulateGrad(dx);
    }
    if (pd->requires_grad()) {
      // dL/dd_r = -sum_j g_rj * y_rj / d_r
      Tensor dd(g.rows(), 1);
      for (size_t r = 0; r < g.rows(); ++r) {
        const float denom = pd->value()(r, 0);
        const float inv = 1.0f / (std::fabs(denom) > eps
                                      ? denom
                                      : (denom < 0 ? -eps : eps));
        const float* g_row = g.RowPtr(r);
        const float* y_row = pout->value().RowPtr(r);
        double acc = 0.0;
        for (size_t j = 0; j < g.cols(); ++j) acc += g_row[j] * y_row[j];
        dd(r, 0) = static_cast<float>(-acc * inv);
      }
      pd->AccumulateGrad(dd);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x, d},
        [eps](const std::vector<const Tensor*>& in) {
          Tensor y = *in[0];
          for (size_t r = 0; r < y.rows(); ++r) {
            const float denom = (*in[1])(r, 0);
            const float inv = 1.0f / (std::fabs(denom) > eps
                                          ? denom
                                          : (denom < 0 ? -eps : eps));
            float* row = y.RowPtr(r);
            for (size_t j = 0; j < y.cols(); ++j) row[j] *= inv;
          }
          return y;
        },
        "RowDivide");
  }
  return out;
}

Variable RowMax(const Variable& x) {
  LASAGNE_CHECK_GT(x->cols(), 0u);
  Tensor y(x->rows(), 1);
  auto argmax = std::make_shared<std::vector<size_t>>(x->rows());
  for (size_t r = 0; r < x->rows(); ++r) {
    const float* row = x->value().RowPtr(r);
    size_t best = 0;
    for (size_t j = 1; j < x->cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    (*argmax)[r] = best;
    y(r, 0) = row[best];
  }
  Variable out = MakeOpNode(std::move(y), {x}, "RowMax");
  Node* px = x.get();
  out->set_backward_fn([px, argmax](const Tensor& g) {
    Tensor dx(px->rows(), px->cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      dx(r, (*argmax)[r]) = g(r, 0);
    }
    px->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [](const std::vector<const Tensor*>& in) {
          Tensor y(in[0]->rows(), 1);
          for (size_t r = 0; r < in[0]->rows(); ++r) {
            const float* row = in[0]->RowPtr(r);
            size_t best = 0;
            for (size_t j = 1; j < in[0]->cols(); ++j) {
              if (row[j] > row[best]) best = j;
            }
            y(r, 0) = row[best];
          }
          return y;
        },
        "RowMax");
  }
  return out;
}

Variable ConcatCols(const std::vector<Variable>& inputs) {
  LASAGNE_CHECK(!inputs.empty());
  const size_t rows = inputs[0]->rows();
  size_t total_cols = 0;
  for (const Variable& v : inputs) {
    LASAGNE_CHECK_EQ(v->rows(), rows);
    total_cols += v->cols();
  }
  Tensor y(rows, total_cols);
  size_t offset = 0;
  for (const Variable& v : inputs) {
    for (size_t r = 0; r < rows; ++r) {
      std::copy(v->value().RowPtr(r), v->value().RowPtr(r) + v->cols(),
                y.RowPtr(r) + offset);
    }
    offset += v->cols();
  }
  Variable out = MakeOpNode(std::move(y), inputs, "ConcatCols");
  std::vector<Node*> raw;
  std::vector<size_t> offsets;
  size_t acc = 0;
  for (const Variable& v : inputs) {
    raw.push_back(v.get());
    offsets.push_back(acc);
    acc += v->cols();
  }
  out->set_backward_fn([raw, offsets, rows](const Tensor& g) {
    for (size_t i = 0; i < raw.size(); ++i) {
      Node* n = raw[i];
      if (!n->requires_grad()) continue;
      Tensor dx(n->rows(), n->cols());
      for (size_t r = 0; r < rows; ++r) {
        std::copy(g.RowPtr(r) + offsets[i],
                  g.RowPtr(r) + offsets[i] + n->cols(), dx.RowPtr(r));
      }
      n->AccumulateGrad(dx);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, inputs,
        [](const std::vector<const Tensor*>& in) {
          const size_t rows = in[0]->rows();
          size_t total_cols = 0;
          for (const Tensor* t : in) total_cols += t->cols();
          Tensor y(rows, total_cols);
          size_t offset = 0;
          for (const Tensor* t : in) {
            for (size_t r = 0; r < rows; ++r) {
              std::copy(t->RowPtr(r), t->RowPtr(r) + t->cols(),
                        y.RowPtr(r) + offset);
            }
            offset += t->cols();
          }
          return y;
        },
        "ConcatCols");
  }
  return out;
}

Variable SliceCols(const Variable& x, size_t start, size_t len) {
  LASAGNE_CHECK_LE(start + len, x->cols());
  Tensor y(x->rows(), len);
  for (size_t r = 0; r < x->rows(); ++r) {
    std::copy(x->value().RowPtr(r) + start,
              x->value().RowPtr(r) + start + len, y.RowPtr(r));
  }
  Variable out = MakeOpNode(std::move(y), {x}, "SliceCols");
  Node* px = x.get();
  out->set_backward_fn([px, start, len](const Tensor& g) {
    Tensor dx(px->rows(), px->cols());
    for (size_t r = 0; r < g.rows(); ++r) {
      std::copy(g.RowPtr(r), g.RowPtr(r) + len, dx.RowPtr(r) + start);
    }
    px->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [start, len](const std::vector<const Tensor*>& in) {
          Tensor y(in[0]->rows(), len);
          for (size_t r = 0; r < in[0]->rows(); ++r) {
            std::copy(in[0]->RowPtr(r) + start,
                      in[0]->RowPtr(r) + start + len, y.RowPtr(r));
          }
          return y;
        },
        "SliceCols");
  }
  return out;
}

Variable GatherRows(const Variable& x, std::vector<size_t> indices) {
  Tensor y = x->value().GatherRows(indices);
  Variable out = MakeOpNode(std::move(y), {x}, "GatherRows");
  Node* px = x.get();
  auto idx = std::make_shared<std::vector<size_t>>(std::move(indices));
  out->set_backward_fn([px, idx](const Tensor& g) {
    Tensor dx(px->rows(), px->cols());
    for (size_t i = 0; i < idx->size(); ++i) {
      const float* g_row = g.RowPtr(i);
      float* dx_row = dx.RowPtr((*idx)[i]);
      for (size_t j = 0; j < g.cols(); ++j) dx_row[j] += g_row[j];
    }
    px->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [idx](const std::vector<const Tensor*>& in) {
          return in[0]->GatherRows(*idx);
        },
        "GatherRows");
  }
  return out;
}

Variable MaxOverSet(const std::vector<Variable>& inputs) {
  LASAGNE_CHECK(!inputs.empty());
  const size_t rows = inputs[0]->rows();
  const size_t cols = inputs[0]->cols();
  for (const Variable& v : inputs) {
    LASAGNE_CHECK_EQ(v->rows(), rows);
    LASAGNE_CHECK_EQ(v->cols(), cols);
  }
  Tensor y = inputs[0]->value();
  auto winner =
      std::make_shared<std::vector<uint8_t>>(rows * cols, uint8_t{0});
  for (size_t k = 1; k < inputs.size(); ++k) {
    const Tensor& v = inputs[k]->value();
    for (size_t i = 0; i < rows * cols; ++i) {
      if (v.data()[i] > y.data()[i]) {
        y.data()[i] = v.data()[i];
        (*winner)[i] = static_cast<uint8_t>(k);
      }
    }
  }
  Variable out = MakeOpNode(std::move(y), inputs, "MaxOverSet");
  std::vector<Node*> raw;
  for (const Variable& v : inputs) raw.push_back(v.get());
  out->set_backward_fn([raw, winner, rows, cols](const Tensor& g) {
    std::vector<Tensor> grads;
    grads.reserve(raw.size());
    for (size_t k = 0; k < raw.size(); ++k) grads.emplace_back(rows, cols);
    for (size_t i = 0; i < rows * cols; ++i) {
      grads[(*winner)[i]].data()[i] = g.data()[i];
    }
    for (size_t k = 0; k < raw.size(); ++k) {
      if (raw[k]->requires_grad()) raw[k]->AccumulateGrad(grads[k]);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, inputs,
        [](const std::vector<const Tensor*>& in) {
          Tensor y = *in[0];
          for (size_t k = 1; k < in.size(); ++k) {
            const Tensor& v = *in[k];
            for (size_t i = 0; i < y.size(); ++i) {
              if (v.data()[i] > y.data()[i]) y.data()[i] = v.data()[i];
            }
          }
          return y;
        },
        "MaxOverSet");
  }
  return out;
}

Variable MeanRows(const Variable& x) {
  LASAGNE_CHECK_GT(x->rows(), 0u);
  Tensor y(1, x->cols());
  for (size_t r = 0; r < x->rows(); ++r) {
    const float* row = x->value().RowPtr(r);
    for (size_t j = 0; j < x->cols(); ++j) y(0, j) += row[j];
  }
  y *= 1.0f / static_cast<float>(x->rows());
  Variable out = MakeOpNode(std::move(y), {x}, "MeanRows");
  Node* px = x.get();
  out->set_backward_fn([px](const Tensor& g) {
    const float inv = 1.0f / static_cast<float>(px->rows());
    Tensor dx(px->rows(), px->cols());
    for (size_t r = 0; r < px->rows(); ++r) {
      float* row = dx.RowPtr(r);
      for (size_t j = 0; j < px->cols(); ++j) row[j] = g(0, j) * inv;
    }
    px->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [](const std::vector<const Tensor*>& in) {
          Tensor y(1, in[0]->cols());
          for (size_t r = 0; r < in[0]->rows(); ++r) {
            const float* row = in[0]->RowPtr(r);
            for (size_t j = 0; j < in[0]->cols(); ++j) y(0, j) += row[j];
          }
          y *= 1.0f / static_cast<float>(in[0]->rows());
          return y;
        },
        "MeanRows");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Variable Sum(const Variable& x) {
  Tensor y(1, 1);
  y(0, 0) = x->value().Sum();
  Variable out = MakeOpNode(std::move(y), {x}, "Sum");
  Node* px = x.get();
  out->set_backward_fn([px](const Tensor& g) {
    px->AccumulateGrad(Tensor::Full(px->rows(), px->cols(), g(0, 0)));
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [](const std::vector<const Tensor*>& in) {
          Tensor y(1, 1);
          y(0, 0) = in[0]->Sum();
          return y;
        },
        "Sum");
  }
  return out;
}

Variable Mean(const Variable& x) {
  LASAGNE_CHECK_GT(x->value().size(), 0u);
  Tensor y(1, 1);
  y(0, 0) = x->value().Mean();
  Variable out = MakeOpNode(std::move(y), {x}, "Mean");
  Node* px = x.get();
  out->set_backward_fn([px](const Tensor& g) {
    const float scale =
        g(0, 0) / static_cast<float>(px->value().size());
    px->AccumulateGrad(Tensor::Full(px->rows(), px->cols(), scale));
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [](const std::vector<const Tensor*>& in) {
          Tensor y(1, 1);
          y(0, 0) = in[0]->Mean();
          return y;
        },
        "Mean");
  }
  return out;
}

Variable SquaredSum(const Variable& x) {
  Tensor y(1, 1);
  y(0, 0) = x->value().SquaredNorm();
  Variable out = MakeOpNode(std::move(y), {x}, "SquaredSum");
  Node* px = x.get();
  out->set_backward_fn([px](const Tensor& g) {
    px->AccumulateGrad(px->value() * (2.0f * g(0, 0)));
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [](const std::vector<const Tensor*>& in) {
          Tensor y(1, 1);
          y(0, 0) = in[0]->SquaredNorm();
          return y;
        },
        "SquaredSum");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Stochastic / regularization ops
// ---------------------------------------------------------------------------

Variable Dropout(const Variable& x, float rate, Rng& rng, bool training) {
  LASAGNE_CHECK_GE(rate, 0.0f);
  LASAGNE_CHECK_LT(rate, 1.0f);
  if (!training || rate == 0.0f) return x;
  const float keep = 1.0f - rate;
  const float scale = 1.0f / keep;
  auto mask = std::make_shared<Tensor>(x->rows(), x->cols());
  Tensor y = x->value();
  for (size_t i = 0; i < y.size(); ++i) {
    const float m = rng.Bernoulli(keep) ? scale : 0.0f;
    mask->data()[i] = m;
    y.data()[i] *= m;
  }
  Variable out = MakeOpNode(std::move(y), {x}, "Dropout");
  Node* px = x.get();
  out->set_backward_fn([px, mask](const Tensor& g) {
    px->AccumulateGrad(g * *mask);
  });
  return out;
}

Variable BernoulliStraightThrough(const Variable& probs, Rng& rng,
                                  bool training) {
  Tensor y = probs->value();
  if (training) {
    for (size_t i = 0; i < y.size(); ++i) {
      const float p = std::clamp(y.data()[i], 0.0f, 1.0f);
      y.data()[i] = rng.Bernoulli(p) ? 1.0f : 0.0f;
    }
  }
  Variable out =
      MakeOpNode(std::move(y), {probs}, "BernoulliStraightThrough");
  Node* pp = probs.get();
  out->set_backward_fn([pp](const Tensor& g) { pp->AccumulateGrad(g); });
  // Only the deterministic eval path (identity) is replayable; the
  // training path consumes RNG state and stays untraced.
  if (!training && internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {probs},
        [](const std::vector<const Tensor*>& in) { return *in[0]; },
        "BernoulliStraightThrough");
  }
  return out;
}

Variable PairNorm(const Variable& x, float scale, float eps) {
  const size_t n = x->rows();
  const size_t d = x->cols();
  LASAGNE_CHECK_GT(n, 0u);
  // Forward: center columns, then normalize each row to `scale`.
  Tensor col_mean(1, d);
  for (size_t r = 0; r < n; ++r) {
    const float* row = x->value().RowPtr(r);
    for (size_t j = 0; j < d; ++j) col_mean(0, j) += row[j];
  }
  col_mean *= 1.0f / static_cast<float>(n);
  Tensor centered(n, d);
  auto inv_norms = std::make_shared<std::vector<float>>(n);
  Tensor y(n, d);
  for (size_t r = 0; r < n; ++r) {
    const float* row = x->value().RowPtr(r);
    float* c_row = centered.RowPtr(r);
    double sq = 0.0;
    for (size_t j = 0; j < d; ++j) {
      c_row[j] = row[j] - col_mean(0, j);
      sq += static_cast<double>(c_row[j]) * c_row[j];
    }
    const float inv = scale / std::sqrt(static_cast<float>(sq) + eps);
    (*inv_norms)[r] = inv;
    float* y_row = y.RowPtr(r);
    for (size_t j = 0; j < d; ++j) y_row[j] = c_row[j] * inv;
  }
  auto centered_ptr = std::make_shared<Tensor>(std::move(centered));
  Variable out = MakeOpNode(std::move(y), {x}, "PairNorm");
  Node* px = x.get();
  out->set_backward_fn([px, centered_ptr, inv_norms, scale, eps,
                        n, d](const Tensor& g) {
    // y_r = s * c_r / ||c_r||, c = x - colmean(x).
    // dL/dc_r = inv_r * (g_r - (g_r . c_r) * c_r / (||c_r||^2 + eps))
    // dL/dx = dL/dc - colmean(dL/dc)   (centering backward)
    Tensor dc(n, d);
    for (size_t r = 0; r < n; ++r) {
      const float* g_row = g.RowPtr(r);
      const float* c_row = centered_ptr->RowPtr(r);
      double dot = 0.0;
      double sq = 0.0;
      for (size_t j = 0; j < d; ++j) {
        dot += static_cast<double>(g_row[j]) * c_row[j];
        sq += static_cast<double>(c_row[j]) * c_row[j];
      }
      const float inv = (*inv_norms)[r];  // = s / sqrt(sq + eps)
      const float coeff =
          static_cast<float>(dot / (sq + static_cast<double>(eps)));
      float* dc_row = dc.RowPtr(r);
      for (size_t j = 0; j < d; ++j) {
        dc_row[j] = inv * (g_row[j] - coeff * c_row[j]);
      }
    }
    Tensor mean_dc(1, d);
    for (size_t r = 0; r < n; ++r) {
      const float* row = dc.RowPtr(r);
      for (size_t j = 0; j < d; ++j) mean_dc(0, j) += row[j];
    }
    mean_dc *= 1.0f / static_cast<float>(n);
    for (size_t r = 0; r < n; ++r) {
      float* row = dc.RowPtr(r);
      for (size_t j = 0; j < d; ++j) row[j] -= mean_dc(0, j);
    }
    px->AccumulateGrad(dc);
    (void)scale;
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [scale, eps](const std::vector<const Tensor*>& in) {
          const size_t n = in[0]->rows();
          const size_t d = in[0]->cols();
          Tensor col_mean(1, d);
          for (size_t r = 0; r < n; ++r) {
            const float* row = in[0]->RowPtr(r);
            for (size_t j = 0; j < d; ++j) col_mean(0, j) += row[j];
          }
          col_mean *= 1.0f / static_cast<float>(n);
          Tensor y(n, d);
          for (size_t r = 0; r < n; ++r) {
            const float* row = in[0]->RowPtr(r);
            float* y_row = y.RowPtr(r);
            double sq = 0.0;
            for (size_t j = 0; j < d; ++j) {
              y_row[j] = row[j] - col_mean(0, j);
              sq += static_cast<double>(y_row[j]) * y_row[j];
            }
            const float inv =
                scale / std::sqrt(static_cast<float>(sq) + eps);
            for (size_t j = 0; j < d; ++j) y_row[j] *= inv;
          }
          return y;
        },
        "PairNorm");
  }
  return out;
}

Variable BatchNormColumns(const Variable& x, float eps) {
  const size_t n = x->rows();
  const size_t d = x->cols();
  LASAGNE_CHECK_GT(n, 1u);
  Tensor mean(1, d);
  Tensor inv_std(1, d);
  for (size_t j = 0; j < d; ++j) {
    double mu = 0.0;
    for (size_t i = 0; i < n; ++i) mu += x->value()(i, j);
    mu /= static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double diff = x->value()(i, j) - mu;
      var += diff * diff;
    }
    var /= static_cast<double>(n);
    mean(0, j) = static_cast<float>(mu);
    inv_std(0, j) =
        static_cast<float>(1.0 / std::sqrt(var + static_cast<double>(eps)));
  }
  Tensor y(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      y(i, j) = (x->value()(i, j) - mean(0, j)) * inv_std(0, j);
    }
  }
  Variable out = MakeOpNode(y, {x}, "BatchNormColumns");
  Node* px = x.get();
  auto y_cache = std::make_shared<Tensor>(std::move(y));
  auto inv_cache = std::make_shared<Tensor>(std::move(inv_std));
  out->set_backward_fn([px, y_cache, inv_cache, n, d](const Tensor& g) {
    // dx = inv_std * (g - mean(g) - y * mean(g * y)), per column.
    Tensor dx(n, d);
    for (size_t j = 0; j < d; ++j) {
      double g_mean = 0.0;
      double gy_mean = 0.0;
      for (size_t i = 0; i < n; ++i) {
        g_mean += g(i, j);
        gy_mean += static_cast<double>(g(i, j)) * (*y_cache)(i, j);
      }
      g_mean /= static_cast<double>(n);
      gy_mean /= static_cast<double>(n);
      const float inv = (*inv_cache)(0, j);
      for (size_t i = 0; i < n; ++i) {
        dx(i, j) = inv * (g(i, j) - static_cast<float>(g_mean) -
                          (*y_cache)(i, j) * static_cast<float>(gy_mean));
      }
    }
    px->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x},
        [eps](const std::vector<const Tensor*>& in) {
          const size_t n = in[0]->rows();
          const size_t d = in[0]->cols();
          Tensor mean(1, d);
          Tensor inv_std(1, d);
          for (size_t j = 0; j < d; ++j) {
            double mu = 0.0;
            for (size_t i = 0; i < n; ++i) mu += (*in[0])(i, j);
            mu /= static_cast<double>(n);
            double var = 0.0;
            for (size_t i = 0; i < n; ++i) {
              const double diff = (*in[0])(i, j) - mu;
              var += diff * diff;
            }
            var /= static_cast<double>(n);
            mean(0, j) = static_cast<float>(mu);
            inv_std(0, j) = static_cast<float>(
                1.0 / std::sqrt(var + static_cast<double>(eps)));
          }
          Tensor y(n, d);
          for (size_t i = 0; i < n; ++i) {
            for (size_t j = 0; j < d; ++j) {
              y(i, j) = ((*in[0])(i, j) - mean(0, j)) * inv_std(0, j);
            }
          }
          return y;
        },
        "BatchNormColumns");
  }
  return out;
}

// ---------------------------------------------------------------------------
// Losses (deliberately untraced: a loss in an eval forward forces the
// eager fallback, which is correct — plans serve logits, not losses)
// ---------------------------------------------------------------------------

Tensor SoftmaxRows(const Tensor& logits) {
  Tensor probs = logits;
  for (size_t r = 0; r < probs.rows(); ++r) {
    float* row = probs.RowPtr(r);
    float max_v = row[0];
    for (size_t j = 1; j < probs.cols(); ++j) max_v = std::max(max_v, row[j]);
    double total = 0.0;
    for (size_t j = 0; j < probs.cols(); ++j) {
      row[j] = std::exp(row[j] - max_v);
      total += row[j];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t j = 0; j < probs.cols(); ++j) row[j] *= inv;
  }
  return probs;
}

Variable WeightedSoftmaxCrossEntropy(const Variable& logits,
                                     const std::vector<int32_t>& labels,
                                     const std::vector<float>& weights) {
  const size_t n = logits->rows();
  const size_t c = logits->cols();
  LASAGNE_CHECK_EQ(labels.size(), n);
  LASAGNE_CHECK_EQ(weights.size(), n);
  auto probs = std::make_shared<Tensor>(SoftmaxRows(logits->value()));
  double weight_total = 0.0;
  double loss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] <= 0.0f) continue;
    LASAGNE_CHECK_GE(labels[i], 0);
    LASAGNE_CHECK_LT(static_cast<size_t>(labels[i]), c);
    weight_total += weights[i];
    const float p = std::max((*probs)(i, labels[i]), 1e-12f);
    loss -= weights[i] * std::log(p);
  }
  LASAGNE_CHECK_GT(weight_total, 0.0);
  Tensor y(1, 1);
  y(0, 0) = static_cast<float>(loss / weight_total);
  Variable out =
      MakeOpNode(std::move(y), {logits}, "SoftmaxCrossEntropy");
  Node* pl = logits.get();
  auto labels_ptr = std::make_shared<std::vector<int32_t>>(labels);
  auto weights_ptr = std::make_shared<std::vector<float>>(weights);
  out->set_backward_fn([pl, probs, labels_ptr, weights_ptr, weight_total, n,
                        c](const Tensor& g) {
    const float scale =
        g(0, 0) / static_cast<float>(weight_total);
    Tensor dx(n, c);
    for (size_t i = 0; i < n; ++i) {
      const float w = (*weights_ptr)[i];
      if (w <= 0.0f) continue;
      const float* p_row = probs->RowPtr(i);
      float* dx_row = dx.RowPtr(i);
      for (size_t j = 0; j < c; ++j) dx_row[j] = w * scale * p_row[j];
      dx_row[(*labels_ptr)[i]] -= w * scale;
    }
    pl->AccumulateGrad(dx);
  });
  return out;
}

Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int32_t>& labels,
                             const std::vector<float>& mask) {
  return WeightedSoftmaxCrossEntropy(logits, labels, mask);
}

Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const Tensor& targets) {
  LASAGNE_CHECK(logits->value().SameShape(targets));
  const size_t total = logits->value().size();
  LASAGNE_CHECK_GT(total, 0u);
  auto sig = std::make_shared<Tensor>(logits->value().Map(
      [](float v) { return 1.0f / (1.0f + std::exp(-v)); }));
  // Numerically stable form: taking log of the sigmoid output produces
  // NaN/-inf once |logit| pushes the sigmoid to exactly 0 or 1 (around
  // |x| ~ 17 in float32). The algebraically equivalent
  //   max(x, 0) - x*t + log1p(exp(-|x|))
  // stays finite for every logit; the gradient is unchanged:
  // sigmoid(x) - t.
  const float* x_data = logits->value().data();
  const float* t_data = targets.data();
  const double loss =
      ParallelReduce(0, total, kGrain, [&](size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) {
          const float x = x_data[i];
          const float t = t_data[i];
          acc += static_cast<double>(std::max(x, 0.0f)) -
                 static_cast<double>(x) * t +
                 std::log1p(std::exp(-std::fabs(static_cast<double>(x))));
        }
        return acc;
      });
  Tensor y(1, 1);
  y(0, 0) = static_cast<float>(loss / static_cast<double>(total));
  Variable out =
      MakeOpNode(std::move(y), {logits}, "BinaryCrossEntropyWithLogits");
  Node* pl = logits.get();
  auto targets_ptr = std::make_shared<Tensor>(targets);
  out->set_backward_fn([pl, sig, targets_ptr, total](const Tensor& g) {
    const float scale = g(0, 0) / static_cast<float>(total);
    Tensor dx(pl->rows(), pl->cols());
    ParallelFor(0, total, kGrain, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        dx.data()[i] = scale * (sig->data()[i] - targets_ptr->data()[i]);
      }
    });
    pl->AccumulateGrad(dx);
  });
  return out;
}

Variable MeanCosineDistance(
    const Variable& x, std::vector<std::pair<uint32_t, uint32_t>> pairs,
    float eps) {
  LASAGNE_CHECK(!pairs.empty());
  const size_t d = x->cols();
  const Tensor& v = x->value();
  double total = 0.0;
  for (const auto& [a, b] : pairs) {
    LASAGNE_CHECK_LT(a, v.rows());
    LASAGNE_CHECK_LT(b, v.rows());
    const float* ra = v.RowPtr(a);
    const float* rb = v.RowPtr(b);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (size_t j = 0; j < d; ++j) {
      dot += static_cast<double>(ra[j]) * rb[j];
      na += static_cast<double>(ra[j]) * ra[j];
      nb += static_cast<double>(rb[j]) * rb[j];
    }
    const double denom = std::sqrt(na) * std::sqrt(nb) + eps;
    total += 1.0 - dot / denom;
  }
  Tensor y(1, 1);
  y(0, 0) = static_cast<float>(total / static_cast<double>(pairs.size()));
  Variable out = MakeOpNode(std::move(y), {x}, "MeanCosineDistance");
  Node* px = x.get();
  auto pairs_ptr =
      std::make_shared<std::vector<std::pair<uint32_t, uint32_t>>>(
          std::move(pairs));
  out->set_backward_fn([px, pairs_ptr, eps, d](const Tensor& g) {
    const Tensor& v = px->value();
    Tensor dx(v.rows(), v.cols());
    const float scale =
        g(0, 0) / static_cast<float>(pairs_ptr->size());
    for (const auto& [a, b] : *pairs_ptr) {
      const float* ra = v.RowPtr(a);
      const float* rb = v.RowPtr(b);
      double dot = 0.0, na = 0.0, nb = 0.0;
      for (size_t j = 0; j < d; ++j) {
        dot += static_cast<double>(ra[j]) * rb[j];
        na += static_cast<double>(ra[j]) * ra[j];
        nb += static_cast<double>(rb[j]) * rb[j];
      }
      const double norm_a = std::sqrt(na);
      const double norm_b = std::sqrt(nb);
      const double denom = norm_a * norm_b + eps;
      // d(1 - cos)/da_j = -(b_j / denom - cos * a_j / (na + eps'))
      const double cos_ab = dot / denom;
      float* da = dx.RowPtr(a);
      float* db = dx.RowPtr(b);
      for (size_t j = 0; j < d; ++j) {
        da[j] += scale * static_cast<float>(
                     -(rb[j] / denom - cos_ab * ra[j] / (na + eps)));
        db[j] += scale * static_cast<float>(
                     -(ra[j] / denom - cos_ab * rb[j] / (nb + eps)));
      }
    }
    px->AccumulateGrad(dx);
  });
  return out;
}

}  // namespace lasagne::ag
