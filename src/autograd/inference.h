#ifndef LASAGNE_AUTOGRAD_INFERENCE_H_
#define LASAGNE_AUTOGRAD_INFERENCE_H_

#include <cstdint>

namespace lasagne::ag {

/// True while the calling thread is inside a NoGradGuard scope.
///
/// Under inference mode, MakeOpNode builds value-only nodes: the
/// output's `requires_grad` is forced to false, parents are not
/// retained, and backward closures handed to `Node::set_backward_fn`
/// are discarded instead of stored. The forward *values* are computed
/// by exactly the same kernels as in training mode, so inference-mode
/// logits are bitwise identical to the tape-building forward; only the
/// graph bookkeeping disappears, which lets every intermediate tensor
/// return to the BufferPool as soon as its consumer has run.
bool InferenceModeEnabled();

/// RAII scope that switches the calling thread into inference mode.
/// Nestable; the destructor restores the previous state. Calling
/// ag::Backward / ag::BackwardWithGrad while a guard is active aborts
/// (there is no tape to traverse).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// Per-thread tape-construction counters, used by tests and the
/// inference bench to prove that a forward pass under NoGradGuard
/// allocates no autograd bookkeeping.
struct TapeStats {
  uint64_t nodes_created = 0;      // tape-building interior nodes
  uint64_t closures_retained = 0;  // backward closures actually stored
  uint64_t parent_links = 0;       // parent shared_ptrs retained
};

/// Counters for the calling thread since the last ResetTapeStats().
TapeStats GetTapeStats();
void ResetTapeStats();

namespace internal {

/// Bumps the per-thread counters (called by MakeOpNode /
/// Node::set_backward_fn).
void CountOpNode(uint64_t parent_links);
void CountClosure();

}  // namespace internal

}  // namespace lasagne::ag

#endif  // LASAGNE_AUTOGRAD_INFERENCE_H_
