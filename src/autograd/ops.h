#ifndef LASAGNE_AUTOGRAD_OPS_H_
#define LASAGNE_AUTOGRAD_OPS_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"

namespace lasagne::ag {

// ---------------------------------------------------------------------------
// Elementwise and arithmetic ops
// ---------------------------------------------------------------------------

/// Elementwise a + b (same shape).
Variable Add(const Variable& a, const Variable& b);
/// Sum of k same-shaped variables.
Variable AddMany(const std::vector<Variable>& inputs);
/// Elementwise a - b.
Variable Sub(const Variable& a, const Variable& b);
/// Hadamard product.
Variable Mul(const Variable& a, const Variable& b);
/// x * scalar.
Variable ScalarMul(const Variable& x, float scalar);
/// max(x, 0).
Variable Relu(const Variable& x);
/// x >= 0 ? x : alpha * x.
Variable LeakyRelu(const Variable& x, float alpha = 0.2f);
/// 1 / (1 + exp(-x)).
Variable Sigmoid(const Variable& x);
/// tanh(x).
Variable Tanh(const Variable& x);
/// exp(x).
Variable Exp(const Variable& x);
/// log(max(x, eps)).
Variable Log(const Variable& x, float eps = 1e-12f);

// ---------------------------------------------------------------------------
// Linear algebra
// ---------------------------------------------------------------------------

/// Dense matrix product a @ b.
Variable MatMul(const Variable& a, const Variable& b);
/// Materialized transpose.
Variable Transpose(const Variable& x);
/// Sparse @ dense: `matrix` is a constant operator (no gradient to it).
/// The matrix is captured by shared_ptr and must stay unchanged until
/// backward has run.
Variable SpMM(std::shared_ptr<const CsrMatrix> matrix, const Variable& x);

// ---------------------------------------------------------------------------
// Broadcasting / shaping
// ---------------------------------------------------------------------------

/// Adds the (1 x D) row vector `bias` to every row of x (N x D): the
/// fused bias-broadcast behind Linear. Backward routes g to x verbatim
/// and the per-column sum of g to bias (bitwise the ones^T @ g chain
/// the unfused formulation produced).
Variable AddRowVector(const Variable& x, const Variable& bias);
/// Scales row i of x (N x D) by c(i, 0); c is (N x 1) and trainable.
Variable RowScale(const Variable& x, const Variable& c);
/// Divides row i of x by d(i, 0) (no gradient safety below eps).
Variable RowDivide(const Variable& x, const Variable& d, float eps = 1e-12f);
/// Per-row maximum (N x D) -> (N x 1); gradient routes to the argmax.
Variable RowMax(const Variable& x);
/// Column concatenation [a | b | ...].
Variable ConcatCols(const std::vector<Variable>& inputs);
/// Columns [start, start+len) of x.
Variable SliceCols(const Variable& x, size_t start, size_t len);
/// Gathers rows by index; backward scatter-adds.
Variable GatherRows(const Variable& x, std::vector<size_t> indices);
/// Elementwise maximum over k same-shaped inputs; gradient goes to the
/// (first) argmax input per coordinate. This is the Max-Pooling layer
/// aggregator primitive.
Variable MaxOverSet(const std::vector<Variable>& inputs);
/// Mean over all rows: (N x D) -> (1 x D).
Variable MeanRows(const Variable& x);

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sum of all entries -> (1 x 1).
Variable Sum(const Variable& x);
/// Mean of all entries -> (1 x 1).
Variable Mean(const Variable& x);
/// Sum of squared entries -> (1 x 1) (L2 penalty building block).
Variable SquaredSum(const Variable& x);

// ---------------------------------------------------------------------------
// Regularization / stochastic ops
// ---------------------------------------------------------------------------

/// Inverted dropout. Identity when `training` is false or rate == 0.
Variable Dropout(const Variable& x, float rate, Rng& rng, bool training);

/// Straight-through Bernoulli: forward samples 0/1 masks with the given
/// probabilities (training) or passes the probabilities through (eval);
/// backward treats the op as identity, so gradients reach the
/// probability parameters (stochastic aggregator, Eq. 6).
Variable BernoulliStraightThrough(const Variable& probs, Rng& rng,
                                  bool training);

/// PairNorm (Zhao & Akoglu, ICLR'20): centers each column across nodes,
/// then rescales every row to norm `scale` (the PN-SI variant).
Variable PairNorm(const Variable& x, float scale = 1.0f,
                  float eps = 1e-6f);

/// Column standardization across rows (batch-norm without affine
/// parameters or running statistics): each column gets zero mean and
/// unit variance over the node dimension. Stabilizes sum-aggregation
/// models (GIN) whose activations otherwise grow with node degree.
Variable BatchNormColumns(const Variable& x, float eps = 1e-5f);

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

/// Masked softmax cross-entropy. `labels[i]` in [0, C) or ignored when
/// `mask[i]` == 0. Returns mean loss over masked rows as (1 x 1).
Variable SoftmaxCrossEntropy(const Variable& logits,
                             const std::vector<int32_t>& labels,
                             const std::vector<float>& mask);

/// As above with per-row weights (GraphSAINT loss normalization).
Variable WeightedSoftmaxCrossEntropy(const Variable& logits,
                                     const std::vector<int32_t>& labels,
                                     const std::vector<float>& weights);

/// Mean binary cross-entropy with logits; `targets` is same-shape 0/1.
Variable BinaryCrossEntropyWithLogits(const Variable& logits,
                                      const Tensor& targets);

/// Row-wise softmax probabilities (forward-only helper, no graph).
Tensor SoftmaxRows(const Tensor& logits);

/// Mean cosine distance (1 - cos) over the given node pairs of x's rows;
/// differentiable. Used by the MADReg baseline's MADGap regularizer.
Variable MeanCosineDistance(const Variable& x,
                            std::vector<std::pair<uint32_t, uint32_t>> pairs,
                            float eps = 1e-8f);

// ---------------------------------------------------------------------------
// Internal helper shared by op implementations
// ---------------------------------------------------------------------------

/// Builds an interior node whose `requires_grad` is the OR of parents'.
Variable MakeOpNode(Tensor value, std::vector<Variable> parents,
                    const char* op_name);

}  // namespace lasagne::ag

#endif  // LASAGNE_AUTOGRAD_OPS_H_
