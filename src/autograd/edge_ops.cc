#include "autograd/edge_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "autograd/forward_trace.h"
#include "autograd/ops.h"
#include "common/buffer_pool.h"
#include "common/check.h"
#include "common/parallel_config.h"
#include "common/thread_pool.h"
#include "tensor/kernels.h"

namespace lasagne::ag {

namespace {

std::atomic<bool>& FusedEdgeAttentionFlag() {
  static std::atomic<bool> enabled([] {
    const char* v = std::getenv("LASAGNE_DISABLE_EDGE_ATTENTION");
    return v == nullptr || v[0] == '\0' || std::strcmp(v, "0") == 0;
  }());
  return enabled;
}

// Row-partition grain for the fused forward: same work model as
// CsrMatrix::Multiply (average fan-in times feature width per row).
size_t EdgeAttentionGrain(const EdgeStructure& edges, size_t d) {
  const size_t work_per_row =
      (edges.num_edges() / std::max<size_t>(edges.num_nodes, 1) + 1) *
      std::max<size_t>(d, 1);
  return std::max<size_t>(1, kGrain / work_per_row);
}

}  // namespace

void SetFusedEdgeAttentionEnabled(bool enabled) {
  FusedEdgeAttentionFlag().store(enabled, std::memory_order_relaxed);
}

bool FusedEdgeAttentionEnabled() {
  return FusedEdgeAttentionFlag().load(std::memory_order_relaxed);
}

std::shared_ptr<const EdgeStructure> EdgeStructure::FromGraph(
    const Graph& graph, bool add_self_loops) {
  auto edges = std::make_shared<EdgeStructure>();
  edges->num_nodes = graph.num_nodes();
  edges->row_ptr.assign(graph.num_nodes() + 1, 0);
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    // Destination i receives from each neighbor (graph is undirected) and
    // optionally itself.
    bool has_self = graph.HasEdge(i, i);
    size_t count = graph.Degree(i) + ((add_self_loops && !has_self) ? 1 : 0);
    edges->row_ptr[i + 1] = edges->row_ptr[i] + count;
  }
  edges->src.resize(edges->row_ptr.back());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    size_t pos = edges->row_ptr[i];
    bool has_self = graph.HasEdge(i, i);
    if (add_self_loops && !has_self) edges->src[pos++] = i;
    for (const uint32_t* it = graph.NeighborsBegin(i);
         it != graph.NeighborsEnd(i); ++it) {
      edges->src[pos++] = *it;
    }
    LASAGNE_CHECK_EQ(pos, edges->row_ptr[i + 1]);
  }
  return edges;
}

Variable GatherEdgeScores(const Variable& dst_scores,
                          const Variable& src_scores,
                          std::shared_ptr<const EdgeStructure> edges) {
  LASAGNE_CHECK_EQ(dst_scores->cols(), 1u);
  LASAGNE_CHECK_EQ(src_scores->cols(), 1u);
  LASAGNE_CHECK_EQ(dst_scores->rows(), edges->num_nodes);
  LASAGNE_CHECK_EQ(src_scores->rows(), edges->num_nodes);
  Tensor y(edges->num_edges(), 1);
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    const float d = dst_scores->value()(i, 0);
    for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
      y(k, 0) = d + src_scores->value()(edges->src[k], 0);
    }
  }
  Variable out = MakeOpNode(std::move(y), {dst_scores, src_scores},
                            "GatherEdgeScores");
  Node* pd = dst_scores.get();
  Node* ps = src_scores.get();
  out->set_backward_fn([pd, ps, edges](const Tensor& g) {
    if (pd->requires_grad()) {
      Tensor dd(edges->num_nodes, 1);
      for (size_t i = 0; i < edges->num_nodes; ++i) {
        double acc = 0.0;
        for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
          acc += g(k, 0);
        }
        dd(i, 0) = static_cast<float>(acc);
      }
      pd->AccumulateGrad(dd);
    }
    if (ps->requires_grad()) {
      Tensor ds(edges->num_nodes, 1);
      for (size_t k = 0; k < edges->num_edges(); ++k) {
        ds(edges->src[k], 0) += g(k, 0);
      }
      ps->AccumulateGrad(ds);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {dst_scores, src_scores},
        [edges](const std::vector<const Tensor*>& in) {
          Tensor y(edges->num_edges(), 1);
          for (size_t i = 0; i < edges->num_nodes; ++i) {
            const float d = (*in[0])(i, 0);
            for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1];
                 ++k) {
              y(k, 0) = d + (*in[1])(edges->src[k], 0);
            }
          }
          return y;
        },
        "GatherEdgeScores",
        TraceOpMeta::Edge(TraceOpKind::kGatherEdgeScores, edges));
  }
  return out;
}

Variable AddEdgeBias(const Variable& edge_scores,
                     std::shared_ptr<const std::vector<float>> bias) {
  LASAGNE_CHECK_EQ(edge_scores->rows(), bias->size());
  LASAGNE_CHECK_EQ(edge_scores->cols(), 1u);
  Tensor y = edge_scores->value();
  for (size_t k = 0; k < bias->size(); ++k) y(k, 0) += (*bias)[k];
  Variable out = MakeOpNode(std::move(y), {edge_scores}, "AddEdgeBias");
  Node* pe = edge_scores.get();
  out->set_backward_fn([pe](const Tensor& g) { pe->AccumulateGrad(g); });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {edge_scores},
        [bias](const std::vector<const Tensor*>& in) {
          Tensor y = *in[0];
          for (size_t k = 0; k < bias->size(); ++k) y(k, 0) += (*bias)[k];
          return y;
        },
        "AddEdgeBias", TraceOpMeta::EdgeBias(bias));
  }
  return out;
}

Variable EdgeSoftmax(const Variable& edge_scores,
                     std::shared_ptr<const EdgeStructure> edges) {
  LASAGNE_CHECK_EQ(edge_scores->rows(), edges->num_edges());
  LASAGNE_CHECK_EQ(edge_scores->cols(), 1u);
  Tensor y = edge_scores->value();
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    const size_t begin = edges->row_ptr[i];
    const size_t end = edges->row_ptr[i + 1];
    if (begin == end) continue;
    float max_v = y(begin, 0);
    for (size_t k = begin + 1; k < end; ++k) max_v = std::max(max_v, y(k, 0));
    double total = 0.0;
    for (size_t k = begin; k < end; ++k) {
      y(k, 0) = std::exp(y(k, 0) - max_v);
      total += y(k, 0);
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t k = begin; k < end; ++k) y(k, 0) *= inv;
  }
  Variable out = MakeOpNode(y, {edge_scores}, "EdgeSoftmax");
  Node* pe = edge_scores.get();
  auto probs = std::make_shared<Tensor>(std::move(y));
  out->set_backward_fn([pe, probs, edges](const Tensor& g) {
    Tensor dx(edges->num_edges(), 1);
    for (size_t i = 0; i < edges->num_nodes; ++i) {
      const size_t begin = edges->row_ptr[i];
      const size_t end = edges->row_ptr[i + 1];
      double dot = 0.0;
      for (size_t k = begin; k < end; ++k) {
        dot += static_cast<double>(g(k, 0)) * (*probs)(k, 0);
      }
      for (size_t k = begin; k < end; ++k) {
        dx(k, 0) = (*probs)(k, 0) *
                   (g(k, 0) - static_cast<float>(dot));
      }
    }
    pe->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {edge_scores},
        [edges](const std::vector<const Tensor*>& in) {
          Tensor y = *in[0];
          for (size_t i = 0; i < edges->num_nodes; ++i) {
            const size_t begin = edges->row_ptr[i];
            const size_t end = edges->row_ptr[i + 1];
            if (begin == end) continue;
            float max_v = y(begin, 0);
            for (size_t k = begin + 1; k < end; ++k) {
              max_v = std::max(max_v, y(k, 0));
            }
            double total = 0.0;
            for (size_t k = begin; k < end; ++k) {
              y(k, 0) = std::exp(y(k, 0) - max_v);
              total += y(k, 0);
            }
            const float inv = static_cast<float>(1.0 / total);
            for (size_t k = begin; k < end; ++k) y(k, 0) *= inv;
          }
          return y;
        },
        "EdgeSoftmax", TraceOpMeta::Edge(TraceOpKind::kEdgeSoftmax, edges));
  }
  return out;
}

Variable EdgeWeightedAggregate(const Variable& edge_weights,
                               const Variable& features,
                               std::shared_ptr<const EdgeStructure> edges) {
  LASAGNE_CHECK_EQ(edge_weights->rows(), edges->num_edges());
  LASAGNE_CHECK_EQ(edge_weights->cols(), 1u);
  LASAGNE_CHECK_EQ(features->rows(), edges->num_nodes);
  const size_t d = features->cols();
  Tensor y(edges->num_nodes, d);
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    float* out_row = y.RowPtr(i);
    for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
      const float w = edge_weights->value()(k, 0);
      const float* f_row = features->value().RowPtr(edges->src[k]);
      for (size_t j = 0; j < d; ++j) out_row[j] += w * f_row[j];
    }
  }
  Variable out = MakeOpNode(std::move(y), {edge_weights, features},
                            "EdgeWeightedAggregate");
  Node* pw = edge_weights.get();
  Node* pf = features.get();
  out->set_backward_fn([pw, pf, edges, d](const Tensor& g) {
    if (pw->requires_grad()) {
      Tensor dw(edges->num_edges(), 1);
      for (size_t i = 0; i < edges->num_nodes; ++i) {
        const float* g_row = g.RowPtr(i);
        for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
          const float* f_row = pf->value().RowPtr(edges->src[k]);
          double acc = 0.0;
          for (size_t j = 0; j < d; ++j) acc += g_row[j] * f_row[j];
          dw(k, 0) = static_cast<float>(acc);
        }
      }
      pw->AccumulateGrad(dw);
    }
    if (pf->requires_grad()) {
      Tensor df(edges->num_nodes, d);
      for (size_t i = 0; i < edges->num_nodes; ++i) {
        const float* g_row = g.RowPtr(i);
        for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
          const float w = pw->value()(k, 0);
          float* df_row = df.RowPtr(edges->src[k]);
          for (size_t j = 0; j < d; ++j) df_row[j] += w * g_row[j];
        }
      }
      pf->AccumulateGrad(df);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {edge_weights, features},
        [edges](const std::vector<const Tensor*>& in) {
          const size_t d = in[1]->cols();
          Tensor y(edges->num_nodes, d);
          for (size_t i = 0; i < edges->num_nodes; ++i) {
            float* out_row = y.RowPtr(i);
            for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1];
                 ++k) {
              const float w = (*in[0])(k, 0);
              const float* f_row = in[1]->RowPtr(edges->src[k]);
              for (size_t j = 0; j < d; ++j) out_row[j] += w * f_row[j];
            }
          }
          return y;
        },
        "EdgeWeightedAggregate",
        TraceOpMeta::Edge(TraceOpKind::kEdgeWeightedAggregate, edges));
  }
  return out;
}

Variable EdgeAttention(const Variable& dst_scores, const Variable& src_scores,
                       const Variable& features,
                       std::shared_ptr<const EdgeStructure> edges, float slope,
                       std::shared_ptr<const std::vector<float>> edge_bias) {
  LASAGNE_CHECK_EQ(dst_scores->cols(), 1u);
  LASAGNE_CHECK_EQ(src_scores->cols(), 1u);
  LASAGNE_CHECK_EQ(dst_scores->rows(), edges->num_nodes);
  LASAGNE_CHECK_EQ(src_scores->rows(), edges->num_nodes);
  LASAGNE_CHECK_EQ(features->rows(), edges->num_nodes);
  if (edge_bias != nullptr) {
    LASAGNE_CHECK_EQ(edge_bias->size(), edges->num_edges());
  }
  const size_t d = features->cols();
  const float* bias_ptr = edge_bias != nullptr ? edge_bias->data() : nullptr;
  // The normalized attention weights double as the softmax result the
  // backward needs; row slices are disjoint, so the ParallelFor chunks
  // write race-free.
  auto probs = std::make_shared<Tensor>(edges->num_edges(), 1);
  Tensor y = Tensor::Uninitialized(edges->num_nodes, d);
  ParallelFor(0, edges->num_nodes, EdgeAttentionGrain(*edges, d),
              [&](size_t row_begin, size_t row_end) {
                kernels::EdgeAttentionForward(
                    edges->row_ptr.data(), edges->src.data(),
                    dst_scores->value().data(), src_scores->value().data(),
                    bias_ptr, slope, features->value().data(), d,
                    probs->data(), y.data(), row_begin, row_end);
              });
  Variable out = MakeOpNode(std::move(y), {dst_scores, src_scores, features},
                            "EdgeAttention");
  Node* pd = dst_scores.get();
  Node* ps = src_scores.get();
  Node* pf = features.get();
  out->set_backward_fn([pd, ps, pf, edges, slope, edge_bias, probs,
                        d](const Tensor& g) {
    // Serial like the eager edge-op backwards: the d_src / d_feat
    // scatters cross destination-row boundaries.
    Tensor dd(edges->num_nodes, 1);
    Tensor ds(edges->num_nodes, 1);
    Tensor df(edges->num_nodes, d);
    std::vector<float> scratch(edges->num_edges());
    kernels::EdgeAttentionBackward(
        edges->row_ptr.data(), edges->src.data(), edges->num_nodes,
        pd->value().data(), ps->value().data(),
        edge_bias != nullptr ? edge_bias->data() : nullptr, slope,
        pf->value().data(), d, probs->data(), g.data(), dd.data(), ds.data(),
        df.data(), scratch.data());
    if (pd->requires_grad()) pd->AccumulateGrad(dd);
    if (ps->requires_grad()) ps->AccumulateGrad(ds);
    if (pf->requires_grad()) pf->AccumulateGrad(df);
  });
  if (internal::ForwardTraceActive()) {
    TraceOpMeta meta = TraceOpMeta::Edge(TraceOpKind::kEdgeAttention, edges);
    meta.alpha = slope;
    meta.edge_bias = edge_bias;
    internal::TraceRecordOp(
        out, {dst_scores, src_scores, features},
        [edges, slope, edge_bias](const std::vector<const Tensor*>& in) {
          const size_t d = in[2]->cols();
          Tensor y = Tensor::Uninitialized(edges->num_nodes, d);
          lasagne::internal::PoolBuffer probs(edges->num_edges());
          ParallelFor(0, edges->num_nodes, EdgeAttentionGrain(*edges, d),
                      [&](size_t row_begin, size_t row_end) {
                        kernels::EdgeAttentionForward(
                            edges->row_ptr.data(), edges->src.data(),
                            in[0]->data(), in[1]->data(),
                            edge_bias != nullptr ? edge_bias->data() : nullptr,
                            slope, in[2]->data(), d, probs.data(), y.data(),
                            row_begin, row_end);
                      });
          return y;
        },
        "EdgeAttention", std::move(meta));
  }
  return out;
}

}  // namespace lasagne::ag
