#include "autograd/edge_ops.h"

#include <algorithm>
#include <cmath>

#include "autograd/forward_trace.h"
#include "autograd/ops.h"
#include "common/check.h"

namespace lasagne::ag {

std::shared_ptr<const EdgeStructure> EdgeStructure::FromGraph(
    const Graph& graph, bool add_self_loops) {
  auto edges = std::make_shared<EdgeStructure>();
  edges->num_nodes = graph.num_nodes();
  edges->row_ptr.assign(graph.num_nodes() + 1, 0);
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    // Destination i receives from each neighbor (graph is undirected) and
    // optionally itself.
    bool has_self = graph.HasEdge(i, i);
    size_t count = graph.Degree(i) + ((add_self_loops && !has_self) ? 1 : 0);
    edges->row_ptr[i + 1] = edges->row_ptr[i] + count;
  }
  edges->src.resize(edges->row_ptr.back());
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    size_t pos = edges->row_ptr[i];
    bool has_self = graph.HasEdge(i, i);
    if (add_self_loops && !has_self) edges->src[pos++] = i;
    for (const uint32_t* it = graph.NeighborsBegin(i);
         it != graph.NeighborsEnd(i); ++it) {
      edges->src[pos++] = *it;
    }
    LASAGNE_CHECK_EQ(pos, edges->row_ptr[i + 1]);
  }
  return edges;
}

Variable GatherEdgeScores(const Variable& dst_scores,
                          const Variable& src_scores,
                          std::shared_ptr<const EdgeStructure> edges) {
  LASAGNE_CHECK_EQ(dst_scores->cols(), 1u);
  LASAGNE_CHECK_EQ(src_scores->cols(), 1u);
  LASAGNE_CHECK_EQ(dst_scores->rows(), edges->num_nodes);
  LASAGNE_CHECK_EQ(src_scores->rows(), edges->num_nodes);
  Tensor y(edges->num_edges(), 1);
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    const float d = dst_scores->value()(i, 0);
    for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
      y(k, 0) = d + src_scores->value()(edges->src[k], 0);
    }
  }
  Variable out = MakeOpNode(std::move(y), {dst_scores, src_scores},
                            "GatherEdgeScores");
  Node* pd = dst_scores.get();
  Node* ps = src_scores.get();
  out->set_backward_fn([pd, ps, edges](const Tensor& g) {
    if (pd->requires_grad()) {
      Tensor dd(edges->num_nodes, 1);
      for (size_t i = 0; i < edges->num_nodes; ++i) {
        double acc = 0.0;
        for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
          acc += g(k, 0);
        }
        dd(i, 0) = static_cast<float>(acc);
      }
      pd->AccumulateGrad(dd);
    }
    if (ps->requires_grad()) {
      Tensor ds(edges->num_nodes, 1);
      for (size_t k = 0; k < edges->num_edges(); ++k) {
        ds(edges->src[k], 0) += g(k, 0);
      }
      ps->AccumulateGrad(ds);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {dst_scores, src_scores},
        [edges](const std::vector<const Tensor*>& in) {
          Tensor y(edges->num_edges(), 1);
          for (size_t i = 0; i < edges->num_nodes; ++i) {
            const float d = (*in[0])(i, 0);
            for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1];
                 ++k) {
              y(k, 0) = d + (*in[1])(edges->src[k], 0);
            }
          }
          return y;
        },
        "GatherEdgeScores",
        TraceOpMeta::Edge(TraceOpKind::kGatherEdgeScores, edges));
  }
  return out;
}

Variable AddEdgeBias(const Variable& edge_scores,
                     std::shared_ptr<const std::vector<float>> bias) {
  LASAGNE_CHECK_EQ(edge_scores->rows(), bias->size());
  LASAGNE_CHECK_EQ(edge_scores->cols(), 1u);
  Tensor y = edge_scores->value();
  for (size_t k = 0; k < bias->size(); ++k) y(k, 0) += (*bias)[k];
  Variable out = MakeOpNode(std::move(y), {edge_scores}, "AddEdgeBias");
  Node* pe = edge_scores.get();
  out->set_backward_fn([pe](const Tensor& g) { pe->AccumulateGrad(g); });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {edge_scores},
        [bias](const std::vector<const Tensor*>& in) {
          Tensor y = *in[0];
          for (size_t k = 0; k < bias->size(); ++k) y(k, 0) += (*bias)[k];
          return y;
        },
        "AddEdgeBias");
  }
  return out;
}

Variable EdgeSoftmax(const Variable& edge_scores,
                     std::shared_ptr<const EdgeStructure> edges) {
  LASAGNE_CHECK_EQ(edge_scores->rows(), edges->num_edges());
  LASAGNE_CHECK_EQ(edge_scores->cols(), 1u);
  Tensor y = edge_scores->value();
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    const size_t begin = edges->row_ptr[i];
    const size_t end = edges->row_ptr[i + 1];
    if (begin == end) continue;
    float max_v = y(begin, 0);
    for (size_t k = begin + 1; k < end; ++k) max_v = std::max(max_v, y(k, 0));
    double total = 0.0;
    for (size_t k = begin; k < end; ++k) {
      y(k, 0) = std::exp(y(k, 0) - max_v);
      total += y(k, 0);
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t k = begin; k < end; ++k) y(k, 0) *= inv;
  }
  Variable out = MakeOpNode(y, {edge_scores}, "EdgeSoftmax");
  Node* pe = edge_scores.get();
  auto probs = std::make_shared<Tensor>(std::move(y));
  out->set_backward_fn([pe, probs, edges](const Tensor& g) {
    Tensor dx(edges->num_edges(), 1);
    for (size_t i = 0; i < edges->num_nodes; ++i) {
      const size_t begin = edges->row_ptr[i];
      const size_t end = edges->row_ptr[i + 1];
      double dot = 0.0;
      for (size_t k = begin; k < end; ++k) {
        dot += static_cast<double>(g(k, 0)) * (*probs)(k, 0);
      }
      for (size_t k = begin; k < end; ++k) {
        dx(k, 0) = (*probs)(k, 0) *
                   (g(k, 0) - static_cast<float>(dot));
      }
    }
    pe->AccumulateGrad(dx);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {edge_scores},
        [edges](const std::vector<const Tensor*>& in) {
          Tensor y = *in[0];
          for (size_t i = 0; i < edges->num_nodes; ++i) {
            const size_t begin = edges->row_ptr[i];
            const size_t end = edges->row_ptr[i + 1];
            if (begin == end) continue;
            float max_v = y(begin, 0);
            for (size_t k = begin + 1; k < end; ++k) {
              max_v = std::max(max_v, y(k, 0));
            }
            double total = 0.0;
            for (size_t k = begin; k < end; ++k) {
              y(k, 0) = std::exp(y(k, 0) - max_v);
              total += y(k, 0);
            }
            const float inv = static_cast<float>(1.0 / total);
            for (size_t k = begin; k < end; ++k) y(k, 0) *= inv;
          }
          return y;
        },
        "EdgeSoftmax", TraceOpMeta::Edge(TraceOpKind::kEdgeSoftmax, edges));
  }
  return out;
}

Variable EdgeWeightedAggregate(const Variable& edge_weights,
                               const Variable& features,
                               std::shared_ptr<const EdgeStructure> edges) {
  LASAGNE_CHECK_EQ(edge_weights->rows(), edges->num_edges());
  LASAGNE_CHECK_EQ(edge_weights->cols(), 1u);
  LASAGNE_CHECK_EQ(features->rows(), edges->num_nodes);
  const size_t d = features->cols();
  Tensor y(edges->num_nodes, d);
  for (size_t i = 0; i < edges->num_nodes; ++i) {
    float* out_row = y.RowPtr(i);
    for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
      const float w = edge_weights->value()(k, 0);
      const float* f_row = features->value().RowPtr(edges->src[k]);
      for (size_t j = 0; j < d; ++j) out_row[j] += w * f_row[j];
    }
  }
  Variable out = MakeOpNode(std::move(y), {edge_weights, features},
                            "EdgeWeightedAggregate");
  Node* pw = edge_weights.get();
  Node* pf = features.get();
  out->set_backward_fn([pw, pf, edges, d](const Tensor& g) {
    if (pw->requires_grad()) {
      Tensor dw(edges->num_edges(), 1);
      for (size_t i = 0; i < edges->num_nodes; ++i) {
        const float* g_row = g.RowPtr(i);
        for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
          const float* f_row = pf->value().RowPtr(edges->src[k]);
          double acc = 0.0;
          for (size_t j = 0; j < d; ++j) acc += g_row[j] * f_row[j];
          dw(k, 0) = static_cast<float>(acc);
        }
      }
      pw->AccumulateGrad(dw);
    }
    if (pf->requires_grad()) {
      Tensor df(edges->num_nodes, d);
      for (size_t i = 0; i < edges->num_nodes; ++i) {
        const float* g_row = g.RowPtr(i);
        for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1]; ++k) {
          const float w = pw->value()(k, 0);
          float* df_row = df.RowPtr(edges->src[k]);
          for (size_t j = 0; j < d; ++j) df_row[j] += w * g_row[j];
        }
      }
      pf->AccumulateGrad(df);
    }
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {edge_weights, features},
        [edges](const std::vector<const Tensor*>& in) {
          const size_t d = in[1]->cols();
          Tensor y(edges->num_nodes, d);
          for (size_t i = 0; i < edges->num_nodes; ++i) {
            float* out_row = y.RowPtr(i);
            for (size_t k = edges->row_ptr[i]; k < edges->row_ptr[i + 1];
                 ++k) {
              const float w = (*in[0])(k, 0);
              const float* f_row = in[1]->RowPtr(edges->src[k]);
              for (size_t j = 0; j < d; ++j) out_row[j] += w * f_row[j];
            }
          }
          return y;
        },
        "EdgeWeightedAggregate",
        TraceOpMeta::Edge(TraceOpKind::kEdgeWeightedAggregate, edges));
  }
  return out;
}

}  // namespace lasagne::ag
