#include "autograd/fm_op.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "autograd/forward_trace.h"
#include "autograd/ops.h"
#include "common/check.h"
#include "obs/trace.h"

namespace lasagne::ag {

Variable FmInteraction(const Variable& x, const Variable& w,
                       const Variable& v,
                       std::vector<size_t> field_offsets, size_t k) {
  LASAGNE_TRACE_SCOPE("fm.forward");
  const size_t n = x->rows();
  const size_t m = x->cols();
  const size_t f = w->cols();
  LASAGNE_CHECK_GE(field_offsets.size(), 2u);
  const size_t p_fields = field_offsets.size() - 1;
  LASAGNE_CHECK_EQ(field_offsets.front(), 0u);
  LASAGNE_CHECK_EQ(field_offsets.back(), m);
  LASAGNE_CHECK_EQ(w->rows(), m);
  LASAGNE_CHECK_EQ(v->rows(), m);
  LASAGNE_CHECK_EQ(v->cols(), f * k);

  // t[((i * f) + j) * p_fields * k + p * k + t] cached for backward.
  auto t_cache =
      std::make_shared<std::vector<float>>(n * f * p_fields * k, 0.0f);
  const Tensor& xv = x->value();
  const Tensor& vv = v->value();

  Tensor out_val = xv.MatMul(w->value());  // linear term
  for (size_t i = 0; i < n; ++i) {
    const float* x_row = xv.RowPtr(i);
    for (size_t j = 0; j < f; ++j) {
      float* t_ij = t_cache->data() + ((i * f) + j) * p_fields * k;
      for (size_t p = 0; p < p_fields; ++p) {
        float* t_p = t_ij + p * k;
        for (size_t mm = field_offsets[p]; mm < field_offsets[p + 1]; ++mm) {
          const float xim = x_row[mm];
          if (xim == 0.0f) continue;
          const float* v_row = vv.RowPtr(mm) + j * k;
          for (size_t tt = 0; tt < k; ++tt) t_p[tt] += xim * v_row[tt];
        }
      }
      // cross = 0.5 * (||sum_p t_p||^2 - sum_p ||t_p||^2)
      double cross = 0.0;
      for (size_t tt = 0; tt < k; ++tt) {
        double s = 0.0;
        double sq = 0.0;
        for (size_t p = 0; p < p_fields; ++p) {
          const double val = t_ij[p * k + tt];
          s += val;
          sq += val * val;
        }
        cross += 0.5 * (s * s - sq);
      }
      out_val(i, j) += static_cast<float>(cross);
    }
  }

  Variable out = MakeOpNode(std::move(out_val), {x, w, v}, "FmInteraction");
  Node* px = x.get();
  Node* pw = w.get();
  Node* pv = v.get();
  auto offsets =
      std::make_shared<std::vector<size_t>>(std::move(field_offsets));
  out->set_backward_fn([px, pw, pv, t_cache, offsets, n, m, f, k,
                        p_fields](const Tensor& g) {
    LASAGNE_TRACE_SCOPE("fm.backward");
    const Tensor& xv = px->value();
    const Tensor& vv = pv->value();
    if (pw->requires_grad()) {
      pw->AccumulateGrad(xv.TransposedMatMul(g));
    }
    Tensor dx(n, m);
    Tensor dv(m, f * k);
    const bool need_dx = px->requires_grad();
    const bool need_dv = pv->requires_grad();
    if (need_dx) {
      // Linear part: dx += g @ w^T.
      dx = g.MatMulTransposed(pw->value());
    }
    // Field -> offset lookup for coordinate m.
    std::vector<size_t> field_of(m);
    for (size_t p = 0; p < p_fields; ++p) {
      for (size_t mm = (*offsets)[p]; mm < (*offsets)[p + 1]; ++mm) {
        field_of[mm] = p;
      }
    }
    std::vector<float> s_ij(k);
    for (size_t i = 0; i < n; ++i) {
      const float* x_row = xv.RowPtr(i);
      float* dx_row = need_dx ? dx.RowPtr(i) : nullptr;
      for (size_t j = 0; j < f; ++j) {
        const float gij = g(i, j);
        if (gij == 0.0f) continue;
        const float* t_ij = t_cache->data() + ((i * f) + j) * p_fields * k;
        for (size_t tt = 0; tt < k; ++tt) {
          double s = 0.0;
          for (size_t p = 0; p < p_fields; ++p) s += t_ij[p * k + tt];
          s_ij[tt] = static_cast<float>(s);
        }
        for (size_t mm = 0; mm < m; ++mm) {
          const size_t p = field_of[mm];
          const float* v_row = vv.RowPtr(mm) + j * k;
          const float xim = x_row[mm];
          const float* t_p = t_ij + p * k;
          if (need_dx) {
            double acc = 0.0;
            for (size_t tt = 0; tt < k; ++tt) {
              acc += static_cast<double>(s_ij[tt] - t_p[tt]) * v_row[tt];
            }
            dx_row[mm] += gij * static_cast<float>(acc);
          }
          if (need_dv && xim != 0.0f) {
            float* dv_row = dv.RowPtr(mm) + j * k;
            for (size_t tt = 0; tt < k; ++tt) {
              dv_row[tt] += gij * (s_ij[tt] - t_p[tt]) * xim;
            }
          }
        }
      }
    }
    if (need_dx) px->AccumulateGrad(dx);
    if (need_dv) pv->AccumulateGrad(dv);
  });
  if (internal::ForwardTraceActive()) {
    internal::TraceRecordOp(
        out, {x, w, v},
        [offsets, k](const std::vector<const Tensor*>& in) {
          const Tensor& xv = *in[0];
          const Tensor& vv = *in[2];
          const size_t n = xv.rows();
          const size_t f = in[1]->cols();
          const size_t p_fields = offsets->size() - 1;
          Tensor y = xv.MatMul(*in[1]);
          // Per-(i, j) scratch replaces the backward t_cache; each
          // accumulation chain is identical to the eager forward's.
          std::vector<float> t(p_fields * k);
          for (size_t i = 0; i < n; ++i) {
            const float* x_row = xv.RowPtr(i);
            for (size_t j = 0; j < f; ++j) {
              std::fill(t.begin(), t.end(), 0.0f);
              for (size_t p = 0; p < p_fields; ++p) {
                float* t_p = t.data() + p * k;
                for (size_t mm = (*offsets)[p]; mm < (*offsets)[p + 1];
                     ++mm) {
                  const float xim = x_row[mm];
                  if (xim == 0.0f) continue;
                  const float* v_row = vv.RowPtr(mm) + j * k;
                  for (size_t tt = 0; tt < k; ++tt) t_p[tt] += xim * v_row[tt];
                }
              }
              double cross = 0.0;
              for (size_t tt = 0; tt < k; ++tt) {
                double s = 0.0;
                double sq = 0.0;
                for (size_t p = 0; p < p_fields; ++p) {
                  const double val = t[p * k + tt];
                  s += val;
                  sq += val * val;
                }
                cross += 0.5 * (s * s - sq);
              }
              y(i, j) += static_cast<float>(cross);
            }
          }
          return y;
        },
        "FmInteraction");
  }
  return out;
}

}  // namespace lasagne::ag
