#ifndef LASAGNE_AUTOGRAD_EDGE_OPS_H_
#define LASAGNE_AUTOGRAD_EDGE_OPS_H_

#include <memory>
#include <vector>

#include "autograd/variable.h"
#include "graph/graph.h"

namespace lasagne::ag {

/// Destination-grouped directed edge structure used by per-edge
/// (attention) ops. For destination node i, the incident source nodes
/// are `src[row_ptr[i] .. row_ptr[i+1])`. Edge id == position in `src`.
struct EdgeStructure {
  size_t num_nodes = 0;
  std::vector<size_t> row_ptr;  // size num_nodes + 1
  std::vector<uint32_t> src;    // size num_edges (directed)

  size_t num_edges() const { return src.size(); }

  /// Builds from a graph, optionally adding self-loops (GAT convention).
  static std::shared_ptr<const EdgeStructure> FromGraph(const Graph& graph,
                                                        bool add_self_loops);
};

/// Per-edge score e_k = src_scores[src(k)] + dst_scores[dst(k)], the GAT
/// decomposition a^T [W h_i || W h_j] = aL.W h_i + aR.W h_j.
/// `src_scores`/`dst_scores` are (N x 1). Returns (E x 1).
Variable GatherEdgeScores(const Variable& dst_scores,
                          const Variable& src_scores,
                          std::shared_ptr<const EdgeStructure> edges);

/// Adds a constant per-edge bias (structural prior, used by ADSF).
Variable AddEdgeBias(const Variable& edge_scores,
                     std::shared_ptr<const std::vector<float>> bias);

/// Softmax over each destination's incident edges: (E x 1) -> (E x 1).
Variable EdgeSoftmax(const Variable& edge_scores,
                     std::shared_ptr<const EdgeStructure> edges);

/// Aggregates features through weighted edges:
/// out[i] = sum_{k : dst(k) = i} w_k * features[src(k)]. Gradients flow
/// to both the edge weights and the features.
Variable EdgeWeightedAggregate(const Variable& edge_weights,
                               const Variable& features,
                               std::shared_ptr<const EdgeStructure> edges);

/// Single-pass fused attention chain: equivalent to
///   GatherEdgeScores → [AddEdgeBias] → LeakyRelu(slope) → EdgeSoftmax
///   → EdgeWeightedAggregate
/// executed as one CSR sweep (kernels::EdgeAttentionForward/Backward),
/// bitwise-identical to the unfused chain in both directions at any
/// thread count. `edge_bias` may be nullptr. Gradients flow to
/// `dst_scores`, `src_scores` and `features`.
Variable EdgeAttention(const Variable& dst_scores, const Variable& src_scores,
                       const Variable& features,
                       std::shared_ptr<const EdgeStructure> edges, float slope,
                       std::shared_ptr<const std::vector<float>> edge_bias);

/// Process-wide switch for the fused eager edge-attention path
/// (nn::GatHead dispatches through it when off the trace/dropout
/// paths). Defaults to enabled; set LASAGNE_DISABLE_EDGE_ATTENTION=1
/// to start disabled. Parity tests toggle it to compare both forms.
void SetFusedEdgeAttentionEnabled(bool enabled);
bool FusedEdgeAttentionEnabled();

}  // namespace lasagne::ag

#endif  // LASAGNE_AUTOGRAD_EDGE_OPS_H_
