#include "data/registry.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "data/splits.h"
#include "data/synthetic.h"

namespace lasagne {

namespace {

std::vector<DatasetSpec> BuildSpecs() {
  std::vector<DatasetSpec> specs;

  auto add = [&specs](DatasetSpec s) { specs.push_back(std::move(s)); };

  // Transductive citation networks. Base sizes are scaled-down stand-ins
  // (the paper's counts are kept in paper_* for side-by-side printing).
  add({.name = "cora",
       .description = "citation network",
       .paper_nodes = 2708,
       .paper_edges = 5429,
       .paper_features = 1433,
       .paper_classes = 7,
       .paper_split = "140/500/1000",
       .nodes = 800,
       .features = 64,
       .classes = 7,
       .train_per_class = 6,
       .val_count = 150,
       .test_count = 300,
       .avg_degree = 4.0,
       .intra_class_ratio = 0.90,
       .hub_fraction = 0.05,
       .hub_weight = 20.0,
       .feature_noise = 1.8,
       .feature_sparsity = 0.65,
       .featureless_fraction = 0.40,
       .noisy_neighborhood_fraction = 0.30});
  add({.name = "citeseer",
       .description = "citation network",
       .paper_nodes = 3327,
       .paper_edges = 4732,
       .paper_features = 3703,
       .paper_classes = 6,
       .paper_split = "120/500/1000",
       .nodes = 900,
       .features = 80,
       .classes = 6,
       .train_per_class = 6,
       .val_count = 150,
       .test_count = 300,
       .avg_degree = 2.8,
       .intra_class_ratio = 0.88,
       .hub_fraction = 0.04,
       .hub_weight = 15.0,
       .feature_noise = 2.2,
       .feature_sparsity = 0.70,
       .featureless_fraction = 0.40,
       .noisy_neighborhood_fraction = 0.30});
  add({.name = "pubmed",
       .description = "citation network",
       .paper_nodes = 19717,
       .paper_edges = 44338,
       .paper_features = 500,
       .paper_classes = 3,
       .paper_split = "60/500/1000",
       .nodes = 1400,
       .features = 48,
       .classes = 3,
       .train_per_class = 7,
       .val_count = 250,
       .test_count = 500,
       .avg_degree = 4.5,
       .intra_class_ratio = 0.86,
       .hub_fraction = 0.06,
       .hub_weight = 25.0,
       .feature_noise = 2.3,
       .feature_sparsity = 0.60,
       .featureless_fraction = 0.45,
       .noisy_neighborhood_fraction = 0.30});
  add({.name = "nell",
       .description = "knowledge graph",
       .paper_nodes = 65755,
       .paper_edges = 266144,
       .paper_features = 61278,
       .paper_classes = 210,
       .paper_split = "6575/500/1000",
       .nodes = 1200,
       .features = 96,
       .classes = 21,
       .train_per_class = 6,
       .val_count = 200,
       .test_count = 400,
       .avg_degree = 8.0,
       .intra_class_ratio = 0.86,
       .hub_fraction = 0.05,
       .hub_weight = 30.0,
       .feature_noise = 2.2,
       .feature_sparsity = 0.70,
       .featureless_fraction = 0.40,
       .noisy_neighborhood_fraction = 0.30});
  add({.name = "amazon-computer",
       .description = "co-purchase graph",
       .paper_nodes = 13381,
       .paper_edges = 245778,
       .paper_features = 767,
       .paper_classes = 10,
       .paper_split = "200/300/12881",
       .nodes = 1000,
       .features = 64,
       .classes = 10,
       .train_per_class = 8,
       .val_count = 120,
       .test_count = 700,
       .avg_degree = 12.0,
       .intra_class_ratio = 0.82,
       .hub_fraction = 0.06,
       .hub_weight = 25.0,
       .feature_noise = 2.6,
       .feature_sparsity = 0.60,
       .featureless_fraction = 0.40,
       .noisy_neighborhood_fraction = 0.20});
  add({.name = "amazon-photo",
       .description = "co-purchase graph",
       .paper_nodes = 7487,
       .paper_edges = 119043,
       .paper_features = 745,
       .paper_classes = 8,
       .paper_split = "160/240/7087",
       .nodes = 800,
       .features = 64,
       .classes = 8,
       .train_per_class = 8,
       .val_count = 100,
       .test_count = 550,
       .avg_degree = 12.0,
       .intra_class_ratio = 0.85,
       .hub_fraction = 0.06,
       .hub_weight = 25.0,
       .feature_noise = 2.4,
       .feature_sparsity = 0.60,
       .featureless_fraction = 0.40,
       .noisy_neighborhood_fraction = 0.20});
  add({.name = "coauthor-cs",
       .description = "citation network",
       .paper_nodes = 18333,
       .paper_edges = 81894,
       .paper_features = 6805,
       .paper_classes = 15,
       .paper_split = "300/450/17583",
       .nodes = 1200,
       .features = 96,
       .classes = 15,
       .train_per_class = 8,
       .val_count = 150,
       .test_count = 800,
       .avg_degree = 6.0,
       .intra_class_ratio = 0.9,
       .hub_fraction = 0.05,
       .hub_weight = 20.0,
       .feature_noise = 2.2,
       .feature_sparsity = 0.60,
       .featureless_fraction = 0.35,
       .noisy_neighborhood_fraction = 0.15});
  add({.name = "coauthor-physics",
       .description = "citation network",
       .paper_nodes = 34493,
       .paper_edges = 247962,
       .paper_features = 8415,
       .paper_classes = 5,
       .paper_split = "100/150/34243",
       .nodes = 1400,
       .features = 96,
       .classes = 5,
       .train_per_class = 8,
       .val_count = 150,
       .test_count = 900,
       .avg_degree = 8.0,
       .intra_class_ratio = 0.9,
       .hub_fraction = 0.05,
       .hub_weight = 20.0,
       .feature_noise = 2.2,
       .feature_sparsity = 0.60,
       .featureless_fraction = 0.35,
       .noisy_neighborhood_fraction = 0.15});

  // Inductive social/image networks.
  DatasetSpec flickr{.name = "flickr",
                     .description = "image network",
                     .inductive = true,
                     .paper_nodes = 89250,
                     .paper_edges = 899756,
                     .paper_features = 500,
                     .paper_classes = 7,
                     .paper_split = "44625/22312/22312",
                     .nodes = 1600,
                     .features = 64,
                     .classes = 7,
                     .avg_degree = 10.0,
                     .intra_class_ratio = 0.7,
                     .hub_fraction = 0.06,
                     .hub_weight = 30.0,
                     .feature_noise = 3.5,
                     .feature_sparsity = 0.80,
                     .featureless_fraction = 0.50,
                     .noisy_neighborhood_fraction = 0.40};
  add(flickr);
  DatasetSpec reddit{.name = "reddit",
                     .description = "social network",
                     .inductive = true,
                     .paper_nodes = 232965,
                     .paper_edges = 11606919,
                     .paper_features = 602,
                     .paper_classes = 41,
                     .paper_split = "155310/23297/54358",
                     .nodes = 2400,
                     .features = 64,
                     .classes = 16,
                     .avg_degree = 20.0,
                     .intra_class_ratio = 0.78,
                     .hub_fraction = 0.08,
                     .hub_weight = 40.0,
                     .feature_noise = 1.2,
                     .feature_sparsity = 0.50,
                     .featureless_fraction = 0.20,
                     .noisy_neighborhood_fraction = 0.10};
  add(reddit);

  // Bipartite production stand-in.
  DatasetSpec tencent{.name = "tencent",
                      .description = "user-video graph",
                      .bipartite = true,
                      .paper_nodes = 1000000,
                      .paper_edges = 1434382,
                      .paper_features = 64,
                      .paper_classes = 253,
                      .paper_split = "5000/10000/30000",
                      .nodes = 2000,  // items + users below
                      .features = 64,
                      .classes = 40,
                      .train_per_class = 6,
                      .val_count = 250,
                      .test_count = 500,
                      .feature_noise = 1.8,
                      .feature_sparsity = 0.65};
  add(tencent);
  return specs;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasetSpecs() {
  static const std::vector<DatasetSpec>& specs =
      *new std::vector<DatasetSpec>(BuildSpecs());
  return specs;
}

const DatasetSpec& GetDatasetSpec(const std::string& name) {
  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    if (spec.name == name) return spec;
  }
  LASAGNE_CHECK_MSG(false, "unknown dataset: " << name);
  // Unreachable.
  return AllDatasetSpecs().front();
}

Dataset LoadDataset(const std::string& name, double scale, uint64_t seed) {
  LASAGNE_CHECK_GT(scale, 0.0);
  const DatasetSpec& spec = GetDatasetSpec(name);
  Rng split_rng(seed * 7919 + 13);

  auto scaled = [scale](size_t v) {
    return std::max<size_t>(1, static_cast<size_t>(
                                   std::llround(v * scale)));
  };

  // Clamp val/test to what remains after the per-class train picks so
  // small-scale instantiations always fit.
  auto fit_split = [](size_t eligible, size_t train_total, size_t& val,
                      size_t& test) {
    const size_t available =
        eligible > train_total ? eligible - train_total : 0;
    if (val + test > available && val + test > 0) {
      const size_t new_val = available * val / (val + test);
      test = available - new_val;
      val = new_val;
    }
  };

  if (spec.bipartite) {
    BipartiteConfig config;
    config.num_items = scaled(spec.nodes * 3 / 5);
    config.num_users = scaled(spec.nodes * 2 / 5);
    config.num_classes = spec.classes;
    config.feature_dim = spec.features;
    config.feature_noise = spec.feature_noise;
    config.seed = seed;
    Dataset dataset = GenerateBipartite(config);
    dataset.name = spec.name;
    size_t val = scaled(spec.val_count);
    size_t test = scaled(spec.test_count);
    const size_t per_class = std::max<size_t>(1, spec.train_per_class);
    fit_split(config.num_items, per_class * spec.classes, val, test);
    ApplyTransductiveSplitOnPrefix(dataset, config.num_items, per_class,
                                   val, test, split_rng);
    return dataset;
  }

  PlantedPartitionConfig config;
  config.num_nodes = scaled(spec.nodes);
  config.num_classes = spec.classes;
  config.feature_dim = spec.features;
  config.avg_degree = spec.avg_degree;
  config.intra_class_ratio = spec.intra_class_ratio;
  config.hub_fraction = spec.hub_fraction;
  config.hub_weight = spec.hub_weight;
  config.hub_intra_ratio = spec.hub_intra_ratio;
  config.feature_noise = spec.feature_noise;
  config.feature_sparsity = spec.feature_sparsity;
  config.featureless_fraction = spec.featureless_fraction;
  config.noisy_neighborhood_fraction = spec.noisy_neighborhood_fraction;
  config.seed = seed;
  Dataset dataset = GeneratePlantedPartition(config);
  dataset.name = spec.name;
  if (spec.inductive) {
    ApplyInductiveSplit(dataset, 0.5, 0.25, split_rng);
  } else {
    size_t val = scaled(spec.val_count);
    size_t test = scaled(spec.test_count);
    const size_t per_class = std::max<size_t>(1, spec.train_per_class);
    fit_split(config.num_nodes, per_class * spec.classes, val, test);
    ApplyTransductiveSplit(dataset, per_class, val, test, split_rng);
  }
  return dataset;
}

}  // namespace lasagne
