#ifndef LASAGNE_DATA_IO_H_
#define LASAGNE_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace lasagne {

/// Writes `dataset` to four TSV files (`prefix.graph`, `prefix.features`,
/// `prefix.labels`, `prefix.splits`) so experiments can be frozen to
/// disk and reloaded (or real data imported from external pipelines):
///  * .graph    : first line "<num_nodes> <num_edges>", then "u v" rows
///  * .features : one row per node, tab-separated floats
///  * .labels   : first line "<num_classes>", then one label per line
///  * .splits   : one of {train, val, test, none} per line
Status ExportDatasetToFiles(const Dataset& dataset,
                            const std::string& prefix);

/// Reads a dataset previously written by ExportDatasetToFiles (or
/// hand-assembled in the same format). Missing files come back as
/// NotFound, malformed contents as DataLoss/InvalidArgument with the
/// offending file and record in the message — external data is caller
/// input, never worth an abort. The loaded dataset is Validate()d
/// before being returned.
StatusOr<Dataset> TryLoadDatasetFromFiles(const std::string& prefix);

// -- Legacy API ------------------------------------------------------------

/// Bool wrapper around ExportDatasetToFiles.
bool SaveDatasetToFiles(const Dataset& dataset, const std::string& prefix);

/// Wrapper around TryLoadDatasetFromFiles that returns an empty dataset
/// (num_nodes() == 0) on any failure, logging the error to stderr.
Dataset LoadDatasetFromFiles(const std::string& prefix);

}  // namespace lasagne

#endif  // LASAGNE_DATA_IO_H_
