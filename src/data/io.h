#ifndef LASAGNE_DATA_IO_H_
#define LASAGNE_DATA_IO_H_

#include <string>

#include "data/dataset.h"

namespace lasagne {

/// Writes `dataset` to four TSV files (`prefix.graph`, `prefix.features`,
/// `prefix.labels`, `prefix.splits`) so experiments can be frozen to
/// disk and reloaded (or real data imported from external pipelines):
///  * .graph    : first line "<num_nodes> <num_edges>", then "u v" rows
///  * .features : one row per node, tab-separated floats
///  * .labels   : first line "<num_classes>", then one label per line
///  * .splits   : one of {train, val, test, none} per line
/// Returns false on I/O failure.
bool SaveDatasetToFiles(const Dataset& dataset, const std::string& prefix);

/// Reads a dataset previously written by SaveDatasetToFiles (or
/// hand-assembled in the same format). Aborts on malformed files;
/// returns an empty dataset (num_nodes() == 0) when files are missing.
Dataset LoadDatasetFromFiles(const std::string& prefix);

}  // namespace lasagne

#endif  // LASAGNE_DATA_IO_H_
