#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace lasagne {

namespace {

// Weighted sampler over a fixed set of node ids (binary search over the
// cumulative weight array).
class WeightedPicker {
 public:
  void Add(uint32_t id, double weight) {
    ids_.push_back(id);
    total_ += weight;
    cumulative_.push_back(total_);
  }
  bool empty() const { return ids_.empty(); }
  uint32_t Pick(Rng& rng) const {
    LASAGNE_CHECK(!ids_.empty());
    const double target = rng.Uniform() * total_;
    auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(),
                               target);
    size_t idx = static_cast<size_t>(it - cumulative_.begin());
    if (idx >= ids_.size()) idx = ids_.size() - 1;
    return ids_[idx];
  }

 private:
  std::vector<uint32_t> ids_;
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

// Class-conditioned sparse features: each class owns a random centroid;
// node features are noisy centroids with a sparsity mask.
Tensor MakeClassFeatures(const std::vector<int32_t>& labels,
                         size_t num_classes, size_t feature_dim,
                         double noise, double sparsity,
                         const std::vector<bool>& featureless, Rng& rng) {
  Tensor centroids = Tensor::Normal(num_classes, feature_dim, 0.0f, 1.0f,
                                    rng);
  Tensor features(labels.size(), feature_dim);
  for (size_t i = 0; i < labels.size(); ++i) {
    const float* centroid = centroids.RowPtr(labels[i]);
    float* row = features.RowPtr(i);
    const bool blind = !featureless.empty() && featureless[i];
    for (size_t j = 0; j < feature_dim; ++j) {
      if (rng.Bernoulli(sparsity)) continue;  // stays zero
      // Featureless nodes draw pure noise at centroid scale: their own
      // features say nothing about the class.
      const float base = blind ? static_cast<float>(rng.Normal(0.0, 1.0))
                               : centroid[j];
      row[j] = base + static_cast<float>(rng.Normal(0.0, noise));
    }
  }
  return features;
}

}  // namespace

Dataset GeneratePlantedPartition(const PlantedPartitionConfig& config) {
  LASAGNE_CHECK_GT(config.num_nodes, config.num_classes);
  LASAGNE_CHECK_GT(config.num_classes, 1u);
  Rng rng(config.seed);

  const size_t n = config.num_nodes;
  const size_t c = config.num_classes;

  // Balanced shuffled class assignment.
  std::vector<int32_t> labels(n);
  for (size_t i = 0; i < n; ++i) labels[i] = static_cast<int32_t>(i % c);
  rng.Shuffle(labels);

  // Hub designation and attachment weights.
  std::vector<double> weight(n, 1.0);
  std::vector<bool> is_hub(n, false);
  const size_t num_hubs =
      static_cast<size_t>(config.hub_fraction * static_cast<double>(n));
  std::vector<size_t> hub_ids = rng.SampleWithoutReplacement(n, num_hubs);
  for (size_t h : hub_ids) {
    weight[h] = config.hub_weight;
    is_hub[h] = true;
  }
  const double hub_intra = config.hub_intra_ratio >= 0.0
                               ? config.hub_intra_ratio
                               : config.intra_class_ratio;

  // Nodes with class-uninformative neighborhoods (their initiated edges
  // mix classes) and nodes with class-uninformative features. Together
  // they spread the per-node optimal aggregation depth.
  std::vector<bool> noisy_neighborhood(n, false);
  for (size_t v : rng.SampleWithoutReplacement(
           n, static_cast<size_t>(config.noisy_neighborhood_fraction *
                                  static_cast<double>(n)))) {
    noisy_neighborhood[v] = true;
  }

  // Per-class weighted pickers, plus a global picker for inter-class
  // edges.
  std::vector<WeightedPicker> class_picker(c);
  WeightedPicker global_picker;
  for (uint32_t u = 0; u < n; ++u) {
    class_picker[labels[u]].Add(u, weight[u]);
    global_picker.Add(u, weight[u]);
  }

  // Edge stubs: each node initiates ~avg_degree/2 edges (so the expected
  // degree is avg_degree).
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  const double stubs_mean = config.avg_degree / 2.0;
  for (uint32_t u = 0; u < n; ++u) {
    // 1 + geometric-ish count keeps every node connected on average.
    size_t stubs = static_cast<size_t>(stubs_mean);
    if (rng.Uniform() < stubs_mean - std::floor(stubs_mean)) ++stubs;
    if (stubs == 0) stubs = 1;
    double intra_prob = is_hub[u] ? hub_intra : config.intra_class_ratio;
    if (noisy_neighborhood[u]) intra_prob = 0.5;
    for (size_t s = 0; s < stubs; ++s) {
      uint32_t v;
      if (rng.Bernoulli(intra_prob)) {
        v = class_picker[labels[u]].Pick(rng);
      } else {
        v = global_picker.Pick(rng);
      }
      if (v == u) continue;  // skip self-loops
      edges.emplace_back(u, v);
    }
  }

  Dataset dataset;
  dataset.name = "planted-partition";
  dataset.graph = Graph::FromEdges(n, edges);
  dataset.labels = std::move(labels);
  dataset.num_classes = c;
  std::vector<bool> featureless(n, false);
  for (size_t v : rng.SampleWithoutReplacement(
           n, static_cast<size_t>(config.featureless_fraction *
                                  static_cast<double>(n)))) {
    featureless[v] = true;
  }
  dataset.features =
      MakeClassFeatures(dataset.labels, c, config.feature_dim,
                        config.feature_noise, config.feature_sparsity,
                        featureless, rng);
  dataset.train_mask.assign(n, 0.0f);
  dataset.val_mask.assign(n, 0.0f);
  dataset.test_mask.assign(n, 0.0f);
  return dataset;
}

Dataset GenerateBipartite(const BipartiteConfig& config) {
  LASAGNE_CHECK_GT(config.num_items, config.num_classes);
  Rng rng(config.seed);
  const size_t items = config.num_items;
  const size_t users = config.num_users;
  const size_t n = items + users;
  const size_t c = config.num_classes;

  // Item labels, balanced and shuffled.
  std::vector<int32_t> item_labels(items);
  for (size_t i = 0; i < items; ++i) {
    item_labels[i] = static_cast<int32_t>(i % c);
  }
  rng.Shuffle(item_labels);

  // Zipf popularity over items ("hot videos").
  std::vector<size_t> rank(items);
  std::iota(rank.begin(), rank.end(), size_t{0});
  rng.Shuffle(rank);
  WeightedPicker item_picker;
  for (uint32_t i = 0; i < items; ++i) {
    const double w = 1.0 / std::pow(static_cast<double>(rank[i] + 1),
                                    config.popularity_exponent);
    item_picker.Add(i, w);
  }

  // User->item watch edges, plus co-click item-item edges between
  // items watched by the same user (paper §5.2.1's "concurrent clicks").
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t u = 0; u < users; ++u) {
    size_t watches = 1 + rng.UniformInt(static_cast<uint64_t>(
                             2.0 * config.avg_items_per_user));
    std::vector<uint32_t> watched;
    for (size_t w = 0; w < watches; ++w) {
      const uint32_t item = item_picker.Pick(rng);
      watched.push_back(item);
      edges.emplace_back(static_cast<uint32_t>(items + u), item);
    }
    if (watched.size() >= 2) {
      const size_t pairs = static_cast<size_t>(
          std::min<double>(config.co_click_pairs_per_user,
                           static_cast<double>(watched.size())));
      for (size_t p = 0; p < pairs; ++p) {
        const uint32_t a = watched[rng.UniformInt(watched.size())];
        const uint32_t b = watched[rng.UniformInt(watched.size())];
        if (a != b) edges.emplace_back(a, b);
      }
    }
  }

  // Labels vector over all nodes: users get class 0 as a filler (they
  // are excluded from every mask).
  std::vector<int32_t> labels(n, 0);
  std::copy(item_labels.begin(), item_labels.end(), labels.begin());

  Dataset dataset;
  dataset.name = "bipartite";
  dataset.graph = Graph::FromEdges(n, edges);
  dataset.num_classes = c;

  // Item features: class centroid + noise. User features: mean of their
  // watched items' features + noise (behavioural features).
  Tensor centroids =
      Tensor::Normal(c, config.feature_dim, 0.0f, 1.0f, rng);
  Tensor features(n, config.feature_dim);
  for (size_t i = 0; i < items; ++i) {
    const float* centroid = centroids.RowPtr(item_labels[i]);
    float* row = features.RowPtr(i);
    for (size_t j = 0; j < config.feature_dim; ++j) {
      row[j] = centroid[j] +
               static_cast<float>(rng.Normal(0.0, config.feature_noise));
    }
  }
  for (size_t u = items; u < n; ++u) {
    float* row = features.RowPtr(u);
    const size_t deg = dataset.graph.Degree(static_cast<uint32_t>(u));
    if (deg > 0) {
      for (const uint32_t* it =
               dataset.graph.NeighborsBegin(static_cast<uint32_t>(u));
           it != dataset.graph.NeighborsEnd(static_cast<uint32_t>(u));
           ++it) {
        const float* item_row = features.RowPtr(*it);
        for (size_t j = 0; j < config.feature_dim; ++j) {
          row[j] += item_row[j] / static_cast<float>(deg);
        }
      }
    }
    for (size_t j = 0; j < config.feature_dim; ++j) {
      row[j] += static_cast<float>(rng.Normal(0.0, config.feature_noise));
    }
  }
  dataset.features = std::move(features);
  dataset.labels = std::move(labels);
  dataset.train_mask.assign(n, 0.0f);
  dataset.val_mask.assign(n, 0.0f);
  dataset.test_mask.assign(n, 0.0f);
  return dataset;
}

}  // namespace lasagne
