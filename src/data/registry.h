#ifndef LASAGNE_DATA_REGISTRY_H_
#define LASAGNE_DATA_REGISTRY_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace lasagne {

/// Statistics describing both the paper's original dataset (Table 2) and
/// our scaled synthetic stand-in.
struct DatasetSpec {
  std::string name;           // registry key, e.g. "cora"
  std::string description;    // paper's description column
  bool inductive = false;
  bool bipartite = false;
  // Paper's Table 2 numbers (for side-by-side printing).
  size_t paper_nodes = 0;
  size_t paper_edges = 0;
  size_t paper_features = 0;
  size_t paper_classes = 0;
  std::string paper_split;
  // Our stand-in base dimensions (before the scale multiplier).
  size_t nodes = 0;
  size_t features = 0;
  size_t classes = 0;
  size_t train_per_class = 0;  // transductive presets
  size_t val_count = 0;
  size_t test_count = 0;
  double avg_degree = 4.0;
  double intra_class_ratio = 0.85;
  double hub_fraction = 0.05;
  double hub_weight = 20.0;
  /// Hub-initiated edges cross classes at this rate (see
  /// PlantedPartitionConfig::hub_intra_ratio).
  double hub_intra_ratio = 0.45;
  /// Feature difficulty knobs, calibrated per dataset so the classic
  /// 2-layer GCN lands near its paper-reported accuracy band.
  double feature_noise = 2.5;
  double feature_sparsity = 0.65;
  /// Per-node heterogeneity (see PlantedPartitionConfig): fraction of
  /// nodes with class-uninformative features / neighborhoods. Nonzero
  /// values spread the optimal aggregation depth across nodes.
  double featureless_fraction = 0.35;
  double noisy_neighborhood_fraction = 0.25;
};

/// All 11 dataset specs in Table 2 order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Spec lookup by name; aborts on unknown names.
const DatasetSpec& GetDatasetSpec(const std::string& name);

/// Instantiates the synthetic stand-in named by `name` ("cora",
/// "citeseer", "pubmed", "nell", "amazon-computer", "amazon-photo",
/// "coauthor-cs", "coauthor-physics", "flickr", "reddit", "tencent"),
/// with splits already applied. `scale` multiplies node counts (and the
/// split sizes proportionally); `seed` drives generation and splitting.
Dataset LoadDataset(const std::string& name, double scale = 1.0,
                    uint64_t seed = 1);

}  // namespace lasagne

#endif  // LASAGNE_DATA_REGISTRY_H_
