#ifndef LASAGNE_DATA_DATASET_H_
#define LASAGNE_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "tensor/tensor.h"

namespace lasagne {

/// A node-classification dataset: graph, features, labels and the
/// train/val/test masks.
///
/// Masks are float 0/1 vectors of length num_nodes (so they double as
/// loss weights). For inductive datasets the convention follows the
/// paper's Flickr/Reddit setting: models may only look at the subgraph
/// induced by train nodes during training (`TrainSubgraph` below).
struct Dataset {
  std::string name;
  Graph graph;
  Tensor features;              // N x M
  std::vector<int32_t> labels;  // N, values in [0, num_classes)
  size_t num_classes = 0;
  std::vector<float> train_mask;
  std::vector<float> val_mask;
  std::vector<float> test_mask;
  bool inductive = false;

  size_t num_nodes() const { return graph.num_nodes(); }
  size_t feature_dim() const { return features.cols(); }

  /// Node ids with mask[i] > 0.
  std::vector<uint32_t> MaskedNodes(const std::vector<float>& mask) const;
  std::vector<uint32_t> TrainNodes() const { return MaskedNodes(train_mask); }
  std::vector<uint32_t> ValNodes() const { return MaskedNodes(val_mask); }
  std::vector<uint32_t> TestNodes() const { return MaskedNodes(test_mask); }

  size_t TrainCount() const { return TrainNodes().size(); }

  /// Training label rate in [0, 1].
  double LabelRate() const;

  /// The subgraph induced by train nodes together with its features,
  /// labels and an all-ones train mask (inductive training view).
  Dataset TrainSubgraph() const;

  /// Internal consistency checks (sizes, label ranges, disjoint masks,
  /// finite features). Returns InvalidArgument describing the first
  /// violation instead of aborting, so loaders of external data can
  /// reject malformed input cleanly; the synthetic generators CHECK the
  /// result (a violation there is a bug).
  Status Validate() const;
};

}  // namespace lasagne

#endif  // LASAGNE_DATA_DATASET_H_
