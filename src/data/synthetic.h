#ifndef LASAGNE_DATA_SYNTHETIC_H_
#define LASAGNE_DATA_SYNTHETIC_H_

#include <cstdint>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace lasagne {

/// Configuration for the planted-partition ("SBM with hubs") generator.
///
/// This generator stands in for the paper's benchmark graphs (Cora,
/// Citeseer, ...). It reproduces the four properties the paper's
/// phenomena depend on (DESIGN.md §1): community structure (classes are
/// clusters), degree heterogeneity (a hub fraction with preferential
/// attachment inside communities), class-correlated sparse features and
/// low label rates (applied later by the split helpers).
struct PlantedPartitionConfig {
  size_t num_nodes = 800;
  size_t num_classes = 7;
  size_t feature_dim = 64;
  /// Average node degree (edge endpoints per node).
  double avg_degree = 4.0;
  /// Probability that an edge stays inside its endpoint's class.
  double intra_class_ratio = 0.85;
  /// Fraction of nodes designated hubs ("central" nodes).
  double hub_fraction = 0.05;
  /// Hubs receive this multiple of the base attachment weight.
  double hub_weight = 20.0;
  /// Intra-class probability for edges initiated BY hubs. Real hubs
  /// (citation surveys, hot videos) connect across communities; setting
  /// this below intra_class_ratio makes deep aggregation through hubs
  /// actively harmful — the precise failure mode the paper's node-aware
  /// aggregation addresses. Negative = use intra_class_ratio.
  double hub_intra_ratio = -1.0;
  /// Std-dev of Gaussian feature noise around the class centroid.
  double feature_noise = 0.8;
  /// Fraction of feature coordinates zeroed per node (sparse features,
  /// like bag-of-words citation data).
  double feature_sparsity = 0.5;
  /// Fraction of nodes whose own features carry NO class signal (pure
  /// noise). These nodes can only be classified by aggregating their
  /// neighborhood — they need depth. Combined with
  /// noisy_neighborhood_fraction this creates per-node variance in the
  /// optimal aggregation depth, the heterogeneity Lasagne's node-aware
  /// aggregators exploit (paper Fig. 1's locality argument).
  double featureless_fraction = 0.0;
  /// Fraction of nodes whose initiated edges ignore class structure
  /// (intra probability 0.5). Their own features are informative but
  /// their neighborhoods are not — they should stay shallow.
  double noisy_neighborhood_fraction = 0.0;
  uint64_t seed = 1;
};

/// Generates graph + features + labels. Masks are left empty; apply a
/// split helper (splits.h) afterwards.
Dataset GeneratePlantedPartition(const PlantedPartitionConfig& config);

/// Configuration for the bipartite user-item generator (the Tencent
/// user/short-video production-graph stand-in).
///
/// Nodes [0, num_items) are items (short-videos, labeled), nodes
/// [num_items, num_items + num_users) are users (unlabeled; they get a
/// filler class and are never in any mask). Item popularity follows a
/// Zipf law, so "hot videos" are watched by a large share of users and
/// become nearly indistinguishable under plain GCN aggregation — the
/// exact failure mode the paper's production section discusses.
struct BipartiteConfig {
  size_t num_users = 600;
  size_t num_items = 900;
  size_t num_classes = 40;
  size_t feature_dim = 64;
  double avg_items_per_user = 6.0;
  /// Zipf exponent for item popularity (higher = more skew).
  double popularity_exponent = 1.1;
  /// Co-click item-item edges sampled per user from their watch list
  /// (the paper: "the edges represent concurrent clicks on the
  /// short-video by the users"). Keeps items connected in item space,
  /// with hot videos becoming massive hubs.
  double co_click_pairs_per_user = 2.0;
  double feature_noise = 0.8;
  uint64_t seed = 1;
};

/// Generates the bipartite dataset; only item nodes carry meaningful
/// labels and only they appear in masks (applied later).
Dataset GenerateBipartite(const BipartiteConfig& config);

}  // namespace lasagne

#endif  // LASAGNE_DATA_SYNTHETIC_H_
