#ifndef LASAGNE_DATA_SPLITS_H_
#define LASAGNE_DATA_SPLITS_H_

#include <cstddef>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace lasagne {

/// Applies the standard "Planetoid-style" transductive split in place:
/// `train_per_class` labeled nodes per class, then `val_count` and
/// `test_count` nodes sampled from the remainder. Mirrors the splits of
/// the paper's Table 2 (e.g. Cora 140/500/1000 = 20 per class).
void ApplyTransductiveSplit(Dataset& dataset, size_t train_per_class,
                            size_t val_count, size_t test_count, Rng& rng);

/// As above but only nodes in [0, eligible_limit) may enter any mask
/// (bipartite Tencent stand-in: only item nodes are labeled).
void ApplyTransductiveSplitOnPrefix(Dataset& dataset, size_t eligible_limit,
                                    size_t train_per_class, size_t val_count,
                                    size_t test_count, Rng& rng);

/// Applies an inductive split by node fractions (Flickr/Reddit style,
/// e.g. 0.5/0.25/0.25) and marks the dataset inductive.
void ApplyInductiveSplit(Dataset& dataset, double train_fraction,
                         double val_fraction, Rng& rng);

/// Rewrites only the train mask to `train_per_class` nodes per class,
/// preserving the existing val/test masks (Table 8 label-rate sweeps).
void ResampleTrainPerClass(Dataset& dataset, size_t train_per_class,
                           Rng& rng);

}  // namespace lasagne

#endif  // LASAGNE_DATA_SPLITS_H_
