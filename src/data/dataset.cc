#include "data/dataset.h"

#include "common/check.h"

namespace lasagne {

std::vector<uint32_t> Dataset::MaskedNodes(
    const std::vector<float>& mask) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < mask.size(); ++i) {
    if (mask[i] > 0.0f) out.push_back(i);
  }
  return out;
}

double Dataset::LabelRate() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(TrainCount()) /
         static_cast<double>(num_nodes());
}

Dataset Dataset::TrainSubgraph() const {
  std::vector<uint32_t> nodes = TrainNodes();
  Dataset sub;
  sub.name = name + "/train";
  sub.graph = graph.InducedSubgraph(nodes);
  std::vector<size_t> idx(nodes.begin(), nodes.end());
  sub.features = features.GatherRows(idx);
  sub.labels.reserve(nodes.size());
  for (uint32_t u : nodes) sub.labels.push_back(labels[u]);
  sub.num_classes = num_classes;
  sub.train_mask.assign(nodes.size(), 1.0f);
  sub.val_mask.assign(nodes.size(), 0.0f);
  sub.test_mask.assign(nodes.size(), 0.0f);
  sub.inductive = inductive;
  return sub;
}

void Dataset::Validate() const {
  const size_t n = num_nodes();
  LASAGNE_CHECK_EQ(features.rows(), n);
  LASAGNE_CHECK_EQ(labels.size(), n);
  LASAGNE_CHECK_EQ(train_mask.size(), n);
  LASAGNE_CHECK_EQ(val_mask.size(), n);
  LASAGNE_CHECK_EQ(test_mask.size(), n);
  LASAGNE_CHECK_GT(num_classes, 0u);
  for (size_t i = 0; i < n; ++i) {
    LASAGNE_CHECK_GE(labels[i], 0);
    LASAGNE_CHECK_LT(static_cast<size_t>(labels[i]), num_classes);
    // Masks are disjoint.
    int memberships = (train_mask[i] > 0) + (val_mask[i] > 0) +
                      (test_mask[i] > 0);
    LASAGNE_CHECK_LE(memberships, 1);
  }
  LASAGNE_CHECK(features.AllFinite());
}

}  // namespace lasagne
