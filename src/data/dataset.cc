#include "data/dataset.h"

#include "common/check.h"

namespace lasagne {

std::vector<uint32_t> Dataset::MaskedNodes(
    const std::vector<float>& mask) const {
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < mask.size(); ++i) {
    if (mask[i] > 0.0f) out.push_back(i);
  }
  return out;
}

double Dataset::LabelRate() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(TrainCount()) /
         static_cast<double>(num_nodes());
}

Dataset Dataset::TrainSubgraph() const {
  std::vector<uint32_t> nodes = TrainNodes();
  Dataset sub;
  sub.name = name + "/train";
  sub.graph = graph.InducedSubgraph(nodes);
  std::vector<size_t> idx(nodes.begin(), nodes.end());
  sub.features = features.GatherRows(idx);
  sub.labels.reserve(nodes.size());
  for (uint32_t u : nodes) sub.labels.push_back(labels[u]);
  sub.num_classes = num_classes;
  sub.train_mask.assign(nodes.size(), 1.0f);
  sub.val_mask.assign(nodes.size(), 0.0f);
  sub.test_mask.assign(nodes.size(), 0.0f);
  sub.inductive = inductive;
  return sub;
}

Status Dataset::Validate() const {
  const size_t n = num_nodes();
  auto size_error = [&](const char* what, size_t got) {
    return InvalidArgumentError(name + ": " + what + " has " +
                                std::to_string(got) + " entries for " +
                                std::to_string(n) + " nodes");
  };
  if (features.rows() != n) return size_error("feature matrix", features.rows());
  if (labels.size() != n) return size_error("label vector", labels.size());
  if (train_mask.size() != n) return size_error("train mask", train_mask.size());
  if (val_mask.size() != n) return size_error("val mask", val_mask.size());
  if (test_mask.size() != n) return size_error("test mask", test_mask.size());
  if (num_classes == 0) {
    return InvalidArgumentError(name + ": num_classes is zero");
  }
  for (size_t i = 0; i < n; ++i) {
    if (labels[i] < 0 || static_cast<size_t>(labels[i]) >= num_classes) {
      return InvalidArgumentError(
          name + ": label " + std::to_string(labels[i]) + " at node " +
          std::to_string(i) + " outside [0, " + std::to_string(num_classes) +
          ")");
    }
    // Masks are disjoint.
    int memberships = (train_mask[i] > 0) + (val_mask[i] > 0) +
                      (test_mask[i] > 0);
    if (memberships > 1) {
      return InvalidArgumentError(name + ": node " + std::to_string(i) +
                                  " is in more than one split");
    }
  }
  if (!features.AllFinite()) {
    return InvalidArgumentError(name + ": features contain NaN/Inf");
  }
  return Status::OK();
}

}  // namespace lasagne
