#include "data/splits.h"

#include <algorithm>

#include "common/check.h"

namespace lasagne {

namespace {

// Picks `per_class` nodes per class from `eligible` (shuffled) and sets
// mask[node] = 1 for them; returns the chosen nodes.
std::vector<uint32_t> PickPerClass(const Dataset& dataset,
                                   const std::vector<uint32_t>& eligible,
                                   size_t per_class,
                                   std::vector<float>& mask) {
  std::vector<size_t> taken(dataset.num_classes, 0);
  std::vector<uint32_t> chosen;
  for (uint32_t u : eligible) {
    const int32_t label = dataset.labels[u];
    if (taken[label] < per_class) {
      mask[u] = 1.0f;
      chosen.push_back(u);
      ++taken[label];
    }
  }
  return chosen;
}

// The split generators build the masks themselves, so a validation
// failure here is an internal bug, not caller input: CHECK it.
void CheckValid(const Dataset& dataset) {
  Status valid = dataset.Validate();
  LASAGNE_CHECK_MSG(valid.ok(), valid.ToString());
}

}  // namespace

void ApplyTransductiveSplitOnPrefix(Dataset& dataset, size_t eligible_limit,
                                    size_t train_per_class, size_t val_count,
                                    size_t test_count, Rng& rng) {
  const size_t n = dataset.num_nodes();
  LASAGNE_CHECK_LE(eligible_limit, n);
  dataset.train_mask.assign(n, 0.0f);
  dataset.val_mask.assign(n, 0.0f);
  dataset.test_mask.assign(n, 0.0f);

  std::vector<uint32_t> eligible(eligible_limit);
  for (uint32_t i = 0; i < eligible_limit; ++i) eligible[i] = i;
  rng.Shuffle(eligible);

  PickPerClass(dataset, eligible, train_per_class, dataset.train_mask);

  std::vector<uint32_t> rest;
  for (uint32_t u : eligible) {
    if (dataset.train_mask[u] == 0.0f) rest.push_back(u);
  }
  LASAGNE_CHECK_MSG(rest.size() >= val_count + test_count,
                    "split does not fit: " << rest.size() << " remaining, "
                                           << val_count + test_count
                                           << " requested");
  for (size_t i = 0; i < val_count; ++i) dataset.val_mask[rest[i]] = 1.0f;
  for (size_t i = 0; i < test_count; ++i) {
    dataset.test_mask[rest[val_count + i]] = 1.0f;
  }
  CheckValid(dataset);
}

void ApplyTransductiveSplit(Dataset& dataset, size_t train_per_class,
                            size_t val_count, size_t test_count, Rng& rng) {
  ApplyTransductiveSplitOnPrefix(dataset, dataset.num_nodes(),
                                 train_per_class, val_count, test_count,
                                 rng);
}

void ApplyInductiveSplit(Dataset& dataset, double train_fraction,
                         double val_fraction, Rng& rng) {
  LASAGNE_CHECK_GT(train_fraction, 0.0);
  LASAGNE_CHECK_LT(train_fraction + val_fraction, 1.0);
  const size_t n = dataset.num_nodes();
  dataset.train_mask.assign(n, 0.0f);
  dataset.val_mask.assign(n, 0.0f);
  dataset.test_mask.assign(n, 0.0f);
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  const size_t train_end = static_cast<size_t>(train_fraction * n);
  const size_t val_end =
      train_end + static_cast<size_t>(val_fraction * n);
  for (size_t i = 0; i < n; ++i) {
    if (i < train_end) {
      dataset.train_mask[order[i]] = 1.0f;
    } else if (i < val_end) {
      dataset.val_mask[order[i]] = 1.0f;
    } else {
      dataset.test_mask[order[i]] = 1.0f;
    }
  }
  dataset.inductive = true;
  CheckValid(dataset);
}

void ResampleTrainPerClass(Dataset& dataset, size_t train_per_class,
                           Rng& rng) {
  const size_t n = dataset.num_nodes();
  dataset.train_mask.assign(n, 0.0f);
  std::vector<uint32_t> eligible;
  for (uint32_t u = 0; u < n; ++u) {
    if (dataset.val_mask[u] == 0.0f && dataset.test_mask[u] == 0.0f) {
      eligible.push_back(u);
    }
  }
  rng.Shuffle(eligible);
  PickPerClass(dataset, eligible, train_per_class, dataset.train_mask);
  CheckValid(dataset);
}

}  // namespace lasagne
