#include "data/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace lasagne {

Status ExportDatasetToFiles(const Dataset& dataset,
                            const std::string& prefix) {
  {
    const std::string path = prefix + ".graph";
    std::ofstream out(path);
    if (!out) return IOError("cannot open " + path + " for writing");
    auto edges = dataset.graph.Edges();
    out << dataset.num_nodes() << "\t" << edges.size() << "\n";
    for (const auto& [u, v] : edges) out << u << "\t" << v << "\n";
    if (!out) return IOError("write failed on " + path);
  }
  {
    const std::string path = prefix + ".features";
    std::ofstream out(path);
    if (!out) return IOError("cannot open " + path + " for writing");
    out.precision(7);
    for (size_t i = 0; i < dataset.num_nodes(); ++i) {
      for (size_t j = 0; j < dataset.feature_dim(); ++j) {
        out << dataset.features(i, j)
            << (j + 1 == dataset.feature_dim() ? '\n' : '\t');
      }
    }
    if (!out) return IOError("write failed on " + path);
  }
  {
    const std::string path = prefix + ".labels";
    std::ofstream out(path);
    if (!out) return IOError("cannot open " + path + " for writing");
    out << dataset.num_classes << "\n";
    for (int32_t label : dataset.labels) out << label << "\n";
    if (!out) return IOError("write failed on " + path);
  }
  {
    const std::string path = prefix + ".splits";
    std::ofstream out(path);
    if (!out) return IOError("cannot open " + path + " for writing");
    for (size_t i = 0; i < dataset.num_nodes(); ++i) {
      if (dataset.train_mask[i] > 0) {
        out << "train\n";
      } else if (dataset.val_mask[i] > 0) {
        out << "val\n";
      } else if (dataset.test_mask[i] > 0) {
        out << "test\n";
      } else {
        out << "none\n";
      }
    }
    if (!out) return IOError("write failed on " + path);
  }
  return Status::OK();
}

StatusOr<Dataset> TryLoadDatasetFromFiles(const std::string& prefix) {
  Dataset dataset;
  const std::string graph_path = prefix + ".graph";
  std::ifstream graph_in(graph_path);
  if (!graph_in) return NotFoundError("missing " + graph_path);

  size_t num_nodes = 0, num_edges = 0;
  if (!(graph_in >> num_nodes >> num_edges)) {
    return DataLossError(graph_path + ": malformed header line");
  }
  if (num_nodes == 0) {
    return InvalidArgumentError(graph_path + ": zero nodes");
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    uint32_t u = 0, v = 0;
    if (!(graph_in >> u >> v)) {
      return DataLossError(graph_path + ": truncated at edge " +
                           std::to_string(e) + " of " +
                           std::to_string(num_edges));
    }
    if (u >= num_nodes || v >= num_nodes) {
      return InvalidArgumentError(graph_path + ": edge " +
                                  std::to_string(e) + " (" +
                                  std::to_string(u) + ", " +
                                  std::to_string(v) +
                                  ") references a node out of range");
    }
    edges.emplace_back(u, v);
  }
  dataset.graph = Graph::FromEdges(num_nodes, edges);

  // Features: infer the dimension from the first line.
  const std::string feat_path = prefix + ".features";
  std::ifstream feat_in(feat_path);
  if (!feat_in) return NotFoundError("missing " + feat_path);
  std::string first_line;
  if (!std::getline(feat_in, first_line)) {
    return DataLossError(feat_path + ": empty file");
  }
  std::vector<float> first_row;
  {
    std::istringstream line(first_line);
    float v;
    while (line >> v) first_row.push_back(v);
  }
  if (first_row.empty()) {
    return DataLossError(feat_path + ": first line holds no numbers");
  }
  const size_t dim = first_row.size();
  Tensor features(num_nodes, dim);
  std::copy(first_row.begin(), first_row.end(), features.RowPtr(0));
  for (size_t i = 1; i < num_nodes; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      if (!(feat_in >> features(i, j))) {
        return DataLossError(feat_path + ": truncated at node " +
                             std::to_string(i) + " of " +
                             std::to_string(num_nodes));
      }
    }
  }
  dataset.features = std::move(features);

  const std::string label_path = prefix + ".labels";
  std::ifstream label_in(label_path);
  if (!label_in) return NotFoundError("missing " + label_path);
  if (!(label_in >> dataset.num_classes)) {
    return DataLossError(label_path + ": missing class count");
  }
  dataset.labels.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    if (!(label_in >> dataset.labels[i])) {
      return DataLossError(label_path + ": truncated at node " +
                           std::to_string(i));
    }
  }

  dataset.train_mask.assign(num_nodes, 0.0f);
  dataset.val_mask.assign(num_nodes, 0.0f);
  dataset.test_mask.assign(num_nodes, 0.0f);
  const std::string split_path = prefix + ".splits";
  std::ifstream split_in(split_path);
  if (!split_in) return NotFoundError("missing " + split_path);
  for (size_t i = 0; i < num_nodes; ++i) {
    std::string tag;
    if (!(split_in >> tag)) {
      return DataLossError(split_path + ": truncated at node " +
                           std::to_string(i));
    }
    if (tag == "train") {
      dataset.train_mask[i] = 1.0f;
    } else if (tag == "val") {
      dataset.val_mask[i] = 1.0f;
    } else if (tag == "test") {
      dataset.test_mask[i] = 1.0f;
    } else if (tag != "none") {
      return InvalidArgumentError(split_path + ": bad split tag '" + tag +
                                  "' at node " + std::to_string(i));
    }
  }
  dataset.name = prefix;
  LASAGNE_RETURN_IF_ERROR(
      dataset.Validate().WithContext("loaded dataset " + prefix));
  return dataset;
}

bool SaveDatasetToFiles(const Dataset& dataset, const std::string& prefix) {
  return ExportDatasetToFiles(dataset, prefix).ok();
}

Dataset LoadDatasetFromFiles(const std::string& prefix) {
  StatusOr<Dataset> loaded = TryLoadDatasetFromFiles(prefix);
  if (!loaded.ok()) {
    std::fprintf(stderr, "LoadDatasetFromFiles(%s): %s\n", prefix.c_str(),
                 loaded.status().ToString().c_str());
    return Dataset();
  }
  return std::move(loaded).value();
}

}  // namespace lasagne
