#include "data/io.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace lasagne {

bool SaveDatasetToFiles(const Dataset& dataset, const std::string& prefix) {
  {
    std::ofstream out(prefix + ".graph");
    if (!out) return false;
    auto edges = dataset.graph.Edges();
    out << dataset.num_nodes() << "\t" << edges.size() << "\n";
    for (const auto& [u, v] : edges) out << u << "\t" << v << "\n";
    if (!out) return false;
  }
  {
    std::ofstream out(prefix + ".features");
    if (!out) return false;
    out.precision(7);
    for (size_t i = 0; i < dataset.num_nodes(); ++i) {
      for (size_t j = 0; j < dataset.feature_dim(); ++j) {
        out << dataset.features(i, j)
            << (j + 1 == dataset.feature_dim() ? '\n' : '\t');
      }
    }
    if (!out) return false;
  }
  {
    std::ofstream out(prefix + ".labels");
    if (!out) return false;
    out << dataset.num_classes << "\n";
    for (int32_t label : dataset.labels) out << label << "\n";
    if (!out) return false;
  }
  {
    std::ofstream out(prefix + ".splits");
    if (!out) return false;
    for (size_t i = 0; i < dataset.num_nodes(); ++i) {
      if (dataset.train_mask[i] > 0) {
        out << "train\n";
      } else if (dataset.val_mask[i] > 0) {
        out << "val\n";
      } else if (dataset.test_mask[i] > 0) {
        out << "test\n";
      } else {
        out << "none\n";
      }
    }
    if (!out) return false;
  }
  return true;
}

Dataset LoadDatasetFromFiles(const std::string& prefix) {
  Dataset dataset;
  std::ifstream graph_in(prefix + ".graph");
  if (!graph_in) return dataset;

  size_t num_nodes = 0, num_edges = 0;
  graph_in >> num_nodes >> num_edges;
  LASAGNE_CHECK_GT(num_nodes, 0u);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(num_edges);
  for (size_t e = 0; e < num_edges; ++e) {
    uint32_t u = 0, v = 0;
    LASAGNE_CHECK(static_cast<bool>(graph_in >> u >> v));
    edges.emplace_back(u, v);
  }
  dataset.graph = Graph::FromEdges(num_nodes, edges);

  // Features: infer the dimension from the first line.
  std::ifstream feat_in(prefix + ".features");
  LASAGNE_CHECK_MSG(static_cast<bool>(feat_in),
                    "missing " << prefix << ".features");
  std::string first_line;
  LASAGNE_CHECK(static_cast<bool>(std::getline(feat_in, first_line)));
  std::vector<float> first_row;
  {
    std::istringstream line(first_line);
    float v;
    while (line >> v) first_row.push_back(v);
  }
  LASAGNE_CHECK(!first_row.empty());
  const size_t dim = first_row.size();
  Tensor features(num_nodes, dim);
  std::copy(first_row.begin(), first_row.end(), features.RowPtr(0));
  for (size_t i = 1; i < num_nodes; ++i) {
    for (size_t j = 0; j < dim; ++j) {
      LASAGNE_CHECK(static_cast<bool>(feat_in >> features(i, j)));
    }
  }
  dataset.features = std::move(features);

  std::ifstream label_in(prefix + ".labels");
  LASAGNE_CHECK_MSG(static_cast<bool>(label_in),
                    "missing " << prefix << ".labels");
  LASAGNE_CHECK(static_cast<bool>(label_in >> dataset.num_classes));
  dataset.labels.resize(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    LASAGNE_CHECK(static_cast<bool>(label_in >> dataset.labels[i]));
  }

  dataset.train_mask.assign(num_nodes, 0.0f);
  dataset.val_mask.assign(num_nodes, 0.0f);
  dataset.test_mask.assign(num_nodes, 0.0f);
  std::ifstream split_in(prefix + ".splits");
  LASAGNE_CHECK_MSG(static_cast<bool>(split_in),
                    "missing " << prefix << ".splits");
  for (size_t i = 0; i < num_nodes; ++i) {
    std::string tag;
    LASAGNE_CHECK(static_cast<bool>(split_in >> tag));
    if (tag == "train") {
      dataset.train_mask[i] = 1.0f;
    } else if (tag == "val") {
      dataset.val_mask[i] = 1.0f;
    } else if (tag == "test") {
      dataset.test_mask[i] = 1.0f;
    } else {
      LASAGNE_CHECK_MSG(tag == "none", "bad split tag: " << tag);
    }
  }
  dataset.name = prefix;
  dataset.Validate();
  return dataset;
}

}  // namespace lasagne
