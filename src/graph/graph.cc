#include "graph/graph.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lasagne {

Graph Graph::FromEdges(
    size_t num_nodes,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<std::pair<uint32_t, uint32_t>> directed;
  directed.reserve(edges.size() * 2);
  for (const auto& [u, v] : edges) {
    LASAGNE_CHECK_LT(u, num_nodes);
    LASAGNE_CHECK_LT(v, num_nodes);
    directed.emplace_back(u, v);
    if (u != v) directed.emplace_back(v, u);
  }
  std::sort(directed.begin(), directed.end());
  directed.erase(std::unique(directed.begin(), directed.end()),
                 directed.end());

  Graph g;
  g.num_nodes_ = num_nodes;
  g.offsets_.assign(num_nodes + 1, 0);
  g.adj_.reserve(directed.size());
  size_t i = 0;
  for (uint32_t u = 0; u < num_nodes; ++u) {
    while (i < directed.size() && directed[i].first == u) {
      g.adj_.push_back(directed[i].second);
      ++i;
    }
    g.offsets_[u + 1] = g.adj_.size();
  }
  // Count undirected edges: self-loops contribute one directed entry.
  size_t self_loops = 0;
  for (uint32_t u = 0; u < num_nodes; ++u) {
    if (g.HasEdge(u, u)) ++self_loops;
  }
  g.num_edges_ = (g.adj_.size() - self_loops) / 2 + self_loops;
  return g;
}

bool Graph::HasEdge(uint32_t u, uint32_t v) const {
  LASAGNE_CHECK_LT(u, num_nodes_);
  LASAGNE_CHECK_LT(v, num_nodes_);
  return std::binary_search(NeighborsBegin(u), NeighborsEnd(u), v);
}

std::vector<std::pair<uint32_t, uint32_t>> Graph::Edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(num_edges_);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    for (const uint32_t* it = NeighborsBegin(u); it != NeighborsEnd(u);
         ++it) {
      if (u <= *it) out.emplace_back(u, *it);
    }
  }
  return out;
}

CsrMatrix Graph::Adjacency() const {
  std::vector<Triplet> triplets;
  triplets.reserve(adj_.size());
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    for (const uint32_t* it = NeighborsBegin(u); it != NeighborsEnd(u);
         ++it) {
      triplets.push_back({u, *it, 1.0f});
    }
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_,
                                 std::move(triplets));
}

CsrMatrix Graph::NormalizedAdjacency() const {
  std::vector<Triplet> triplets;
  triplets.reserve(adj_.size() + num_nodes_);
  std::vector<float> degree(num_nodes_, 0.0f);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    bool has_self = false;
    for (const uint32_t* it = NeighborsBegin(u); it != NeighborsEnd(u);
         ++it) {
      triplets.push_back({u, *it, 1.0f});
      degree[u] += 1.0f;
      if (*it == u) has_self = true;
    }
    if (!has_self) {
      triplets.push_back({u, u, 1.0f});
      degree[u] += 1.0f;
    }
  }
  for (Triplet& t : triplets) {
    t.value = 1.0f / std::sqrt(degree[t.row] * degree[t.col]);
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_,
                                 std::move(triplets));
}

CsrMatrix Graph::RandomWalkAdjacency() const {
  std::vector<Triplet> triplets;
  triplets.reserve(adj_.size() + num_nodes_);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    bool has_self = false;
    for (const uint32_t* it = NeighborsBegin(u); it != NeighborsEnd(u);
         ++it) {
      triplets.push_back({u, *it, 1.0f});
      if (*it == u) has_self = true;
    }
    if (!has_self) triplets.push_back({u, u, 1.0f});
  }
  return CsrMatrix::FromTriplets(num_nodes_, num_nodes_, std::move(triplets))
      .RowStochastic();
}

Graph Graph::InducedSubgraph(const std::vector<uint32_t>& nodes) const {
  std::vector<int64_t> new_id(num_nodes_, -1);
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    LASAGNE_CHECK_LT(nodes[i], num_nodes_);
    LASAGNE_CHECK_EQ(new_id[nodes[i]], -1);
    new_id[nodes[i]] = i;
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  for (uint32_t i = 0; i < nodes.size(); ++i) {
    const uint32_t u = nodes[i];
    for (const uint32_t* it = NeighborsBegin(u); it != NeighborsEnd(u);
         ++it) {
      if (new_id[*it] >= 0 && u <= *it) {
        edges.emplace_back(i, static_cast<uint32_t>(new_id[*it]));
      }
    }
  }
  return FromEdges(nodes.size(), edges);
}

Graph Graph::DropEdges(double drop_rate, Rng& rng) const {
  LASAGNE_CHECK_GE(drop_rate, 0.0);
  LASAGNE_CHECK_LE(drop_rate, 1.0);
  std::vector<std::pair<uint32_t, uint32_t>> kept;
  for (const auto& e : Edges()) {
    if (!rng.Bernoulli(drop_rate)) kept.push_back(e);
  }
  return FromEdges(num_nodes_, kept);
}

Tensor Graph::DegreeVector() const {
  Tensor out(num_nodes_, 1);
  for (uint32_t u = 0; u < num_nodes_; ++u) {
    out(u, 0) = static_cast<float>(Degree(u));
  }
  return out;
}

double Graph::AverageDegree() const {
  if (num_nodes_ == 0) return 0.0;
  return static_cast<double>(adj_.size()) / static_cast<double>(num_nodes_);
}

size_t Graph::MaxDegree() const {
  size_t best = 0;
  for (uint32_t u = 0; u < num_nodes_; ++u) best = std::max(best, Degree(u));
  return best;
}

}  // namespace lasagne
