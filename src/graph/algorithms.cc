#include "graph/algorithms.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <numeric>
#include <queue>

#include "common/check.h"

namespace lasagne {

std::vector<int32_t> BfsDistances(const Graph& graph, uint32_t source) {
  LASAGNE_CHECK_LT(source, graph.num_nodes());
  std::vector<int32_t> dist(graph.num_nodes(), -1);
  std::deque<uint32_t> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    uint32_t u = queue.front();
    queue.pop_front();
    for (const uint32_t* it = graph.NeighborsBegin(u);
         it != graph.NeighborsEnd(u); ++it) {
      if (dist[*it] < 0) {
        dist[*it] = dist[u] + 1;
        queue.push_back(*it);
      }
    }
  }
  return dist;
}

namespace {

// Accumulates (sum of distances, number of connected ordered pairs) for
// BFS runs from the given sources.
std::pair<double, double> SumBfsDistances(
    const Graph& graph, const std::vector<uint32_t>& sources) {
  double total = 0.0;
  double pairs = 0.0;
  for (uint32_t s : sources) {
    std::vector<int32_t> dist = BfsDistances(graph, s);
    for (size_t v = 0; v < dist.size(); ++v) {
      if (dist[v] > 0) {
        total += dist[v];
        pairs += 1.0;
      }
    }
  }
  return {total, pairs};
}

}  // namespace

double AveragePathLength(const Graph& graph) {
  if (graph.num_nodes() < 2) return 0.0;
  std::vector<uint32_t> sources(graph.num_nodes());
  std::iota(sources.begin(), sources.end(), 0u);
  auto [total, pairs] = SumBfsDistances(graph, sources);
  if (pairs == 0.0) return 0.0;
  return total / pairs;
}

double AveragePathLengthSampled(const Graph& graph, size_t num_sources,
                                Rng& rng) {
  if (graph.num_nodes() < 2) return 0.0;
  num_sources = std::min(num_sources, graph.num_nodes());
  std::vector<size_t> picked =
      rng.SampleWithoutReplacement(graph.num_nodes(), num_sources);
  std::vector<uint32_t> sources(picked.begin(), picked.end());
  auto [total, pairs] = SumBfsDistances(graph, sources);
  if (pairs == 0.0) return 0.0;
  return total / pairs;
}

Tensor PageRank(const Graph& graph, double damping, size_t max_iters,
                double tolerance) {
  const size_t n = graph.num_nodes();
  LASAGNE_CHECK_GT(n, 0u);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (size_t iter = 0; iter < max_iters; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (uint32_t u = 0; u < n; ++u) {
      const size_t deg = graph.Degree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(deg);
      for (const uint32_t* it = graph.NeighborsBegin(u);
           it != graph.NeighborsEnd(u); ++it) {
        next[*it] += share;
      }
    }
    const double base =
        (1.0 - damping) / static_cast<double>(n) +
        damping * dangling / static_cast<double>(n);
    double delta = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double updated = base + damping * next[i];
      delta += std::fabs(updated - rank[i]);
      rank[i] = updated;
    }
    if (delta < tolerance) break;
  }
  Tensor out(n, 1);
  for (size_t i = 0; i < n; ++i) out(i, 0) = static_cast<float>(rank[i]);
  return out;
}

std::vector<uint32_t> ConnectedComponents(const Graph& graph,
                                          size_t* num_components) {
  const size_t n = graph.num_nodes();
  std::vector<uint32_t> component(n, UINT32_MAX);
  uint32_t next_id = 0;
  std::deque<uint32_t> queue;
  for (uint32_t s = 0; s < n; ++s) {
    if (component[s] != UINT32_MAX) continue;
    component[s] = next_id;
    queue.push_back(s);
    while (!queue.empty()) {
      uint32_t u = queue.front();
      queue.pop_front();
      for (const uint32_t* it = graph.NeighborsBegin(u);
           it != graph.NeighborsEnd(u); ++it) {
        if (component[*it] == UINT32_MAX) {
          component[*it] = next_id;
          queue.push_back(*it);
        }
      }
    }
    ++next_id;
  }
  if (num_components != nullptr) *num_components = next_id;
  return component;
}

std::vector<std::vector<uint32_t>> PartitionGraph(const Graph& graph,
                                                  size_t num_parts,
                                                  Rng& rng) {
  const size_t n = graph.num_nodes();
  LASAGNE_CHECK_GT(num_parts, 0u);
  num_parts = std::min(num_parts, n);
  const size_t target = (n + num_parts - 1) / num_parts;

  std::vector<bool> assigned(n, false);
  std::vector<std::vector<uint32_t>> parts;
  std::vector<size_t> order = rng.SampleWithoutReplacement(n, n);
  size_t cursor = 0;

  auto next_seed = [&]() -> int64_t {
    while (cursor < order.size() && assigned[order[cursor]]) ++cursor;
    return cursor < order.size() ? static_cast<int64_t>(order[cursor]) : -1;
  };

  while (parts.size() < num_parts) {
    int64_t seed = next_seed();
    if (seed < 0) break;
    std::vector<uint32_t> part;
    std::deque<uint32_t> queue;
    assigned[seed] = true;
    queue.push_back(static_cast<uint32_t>(seed));
    while (!queue.empty() && part.size() < target) {
      uint32_t u = queue.front();
      queue.pop_front();
      part.push_back(u);
      for (const uint32_t* it = graph.NeighborsBegin(u);
           it != graph.NeighborsEnd(u); ++it) {
        if (!assigned[*it]) {
          assigned[*it] = true;
          queue.push_back(*it);
        }
      }
    }
    // Frontier nodes that did not fit are released back.
    while (!queue.empty()) {
      assigned[queue.front()] = false;
      queue.pop_front();
    }
    parts.push_back(std::move(part));
  }
  // Any stragglers (disconnected leftovers) round-robin into parts.
  size_t wheel = 0;
  for (uint32_t u = 0; u < n; ++u) {
    if (!assigned[u]) {
      parts[wheel % parts.size()].push_back(u);
      assigned[u] = true;
      ++wheel;
    }
  }
  return parts;
}

std::vector<uint32_t> RandomWalk(const Graph& graph, uint32_t start,
                                 size_t length, Rng& rng) {
  LASAGNE_CHECK_LT(start, graph.num_nodes());
  std::vector<uint32_t> walk;
  walk.reserve(length + 1);
  walk.push_back(start);
  uint32_t current = start;
  for (size_t step = 0; step < length; ++step) {
    const size_t deg = graph.Degree(current);
    if (deg == 0) break;
    const uint32_t* begin = graph.NeighborsBegin(current);
    current = begin[rng.UniformInt(deg)];
    walk.push_back(current);
  }
  return walk;
}

CsrMatrix PpmiMatrix(const Graph& graph, size_t walks_per_node,
                     size_t walk_length, size_t window, Rng& rng) {
  const size_t n = graph.num_nodes();
  std::map<std::pair<uint32_t, uint32_t>, double> cooccurrence;
  std::vector<double> row_totals(n, 0.0);
  double grand_total = 0.0;
  for (uint32_t s = 0; s < n; ++s) {
    for (size_t w = 0; w < walks_per_node; ++w) {
      std::vector<uint32_t> walk = RandomWalk(graph, s, walk_length, rng);
      for (size_t i = 0; i < walk.size(); ++i) {
        for (size_t j = i + 1; j <= i + window && j < walk.size(); ++j) {
          cooccurrence[{walk[i], walk[j]}] += 1.0;
          cooccurrence[{walk[j], walk[i]}] += 1.0;
          row_totals[walk[i]] += 1.0;
          row_totals[walk[j]] += 1.0;
          grand_total += 2.0;
        }
      }
    }
  }
  std::vector<Triplet> triplets;
  triplets.reserve(cooccurrence.size());
  for (const auto& [key, count] : cooccurrence) {
    const auto [u, v] = key;
    if (row_totals[u] <= 0.0 || row_totals[v] <= 0.0) continue;
    const double pmi = std::log(count * grand_total /
                                (row_totals[u] * row_totals[v]));
    if (pmi > 0.0) {
      triplets.push_back({u, v, static_cast<float>(pmi)});
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

CsrMatrix StructuralFingerprints(const Graph& graph, size_t hops,
                                 double restart_prob, size_t row_cap) {
  // Deterministic truncated RWR: propagate a unit mass from each node
  // through the row-stochastic operator for `hops` steps.
  const size_t n = graph.num_nodes();
  CsrMatrix walk = graph.RandomWalkAdjacency();
  CsrMatrix result = CsrMatrix::Identity(n).Scale(
      static_cast<float>(restart_prob));
  CsrMatrix frontier = CsrMatrix::Identity(n);
  double mass = 1.0 - restart_prob;
  for (size_t h = 0; h < hops; ++h) {
    frontier = frontier.Multiply(walk, 1e-5f, row_cap);
    result = result.Add(frontier.Scale(static_cast<float>(
        mass * (h + 1 == hops ? 1.0 : restart_prob))));
    mass *= (1.0 - restart_prob);
  }
  return result.RowStochastic();
}

double AverageClusteringCoefficient(const Graph& graph) {
  const size_t n = graph.num_nodes();
  if (n == 0) return 0.0;
  double total = 0.0;
  for (uint32_t v = 0; v < n; ++v) {
    // The triangle scan below skips self-loops, so the pair count in
    // the denominator must come from the self-loop-excluded degree —
    // the raw degree would understate the coefficient of any node with
    // a self-loop.
    size_t deg = 0;
    for (const uint32_t* a = graph.NeighborsBegin(v);
         a != graph.NeighborsEnd(v); ++a) {
      if (*a != v) ++deg;
    }
    if (deg < 2) continue;
    size_t closed = 0;
    for (const uint32_t* a = graph.NeighborsBegin(v);
         a != graph.NeighborsEnd(v); ++a) {
      if (*a == v) continue;
      for (const uint32_t* b = a + 1; b != graph.NeighborsEnd(v); ++b) {
        if (*b == v) continue;
        if (graph.HasEdge(*a, *b)) ++closed;
      }
    }
    const double possible =
        static_cast<double>(deg) * static_cast<double>(deg - 1) / 2.0;
    total += static_cast<double>(closed) / possible;
  }
  return total / static_cast<double>(n);
}

double EdgeHomophily(const Graph& graph,
                     const std::vector<int32_t>& labels) {
  LASAGNE_CHECK_EQ(labels.size(), graph.num_nodes());
  size_t same = 0;
  size_t total = 0;
  for (const auto& [u, v] : graph.Edges()) {
    if (u == v) continue;
    ++total;
    if (labels[u] == labels[v]) ++same;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(same) / static_cast<double>(total);
}

std::vector<size_t> DegreeHistogram(const Graph& graph) {
  std::vector<size_t> histogram;
  for (uint32_t v = 0; v < graph.num_nodes(); ++v) {
    const size_t deg = graph.Degree(v);
    size_t bucket = 0;
    if (deg > 0) {
      bucket = 1;
      size_t upper = 2;
      while (deg >= upper) {
        ++bucket;
        upper *= 2;
      }
    }
    if (histogram.size() <= bucket) histogram.resize(bucket + 1, 0);
    histogram[bucket]++;
  }
  return histogram;
}

double PowerIterationSpectralRadius(const CsrMatrix& matrix, size_t iters,
                                    Rng& rng) {
  LASAGNE_CHECK_EQ(matrix.rows(), matrix.cols());
  Tensor v = Tensor::Normal(matrix.rows(), 1, 0.0f, 1.0f, rng);
  double eigenvalue = 0.0;
  for (size_t i = 0; i < iters; ++i) {
    Tensor next = matrix.Multiply(v);
    const double norm = next.Norm();
    if (norm < 1e-30) return 0.0;
    next *= static_cast<float>(1.0 / norm);
    eigenvalue = norm;
    // Rayleigh quotient sign correction.
    double dot = 0.0;
    for (size_t r = 0; r < v.rows(); ++r) dot += v(r, 0) * next(r, 0);
    if (dot < 0) eigenvalue = -eigenvalue;
    v = next;
  }
  return eigenvalue;
}

}  // namespace lasagne
