#ifndef LASAGNE_GRAPH_ALGORITHMS_H_
#define LASAGNE_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace lasagne {

/// BFS distances (in hops) from `source`; unreachable nodes get -1.
std::vector<int32_t> BfsDistances(const Graph& graph, uint32_t source);

/// Average Path Length over connected pairs (paper Eq. 8):
/// \f$L = \frac{2}{N(N-1)}\sum_{i<j} d(v_i, v_j)\f$.
/// Runs exact BFS from every node; use the sampled variant on big graphs.
double AveragePathLength(const Graph& graph);

/// Monte-Carlo APL estimate using `num_sources` BFS sources.
double AveragePathLengthSampled(const Graph& graph, size_t num_sources,
                                Rng& rng);

/// PageRank with damping factor; returns an (N x 1) score vector that
/// sums to 1. Used by the paper's depth analysis to rank node locality.
Tensor PageRank(const Graph& graph, double damping = 0.85,
                size_t max_iters = 100, double tolerance = 1e-8);

/// Connected components; returns per-node component id (0-based) and
/// sets *num_components when non-null.
std::vector<uint32_t> ConnectedComponents(const Graph& graph,
                                          size_t* num_components = nullptr);

/// Greedy BFS partitioning into `num_parts` balanced node blocks.
/// Every node appears in exactly one part. This is the partitioner used
/// by our ClusterGCN / GPNN baselines (a METIS stand-in: BFS-grown
/// blocks preserve locality which is what those methods rely on).
std::vector<std::vector<uint32_t>> PartitionGraph(const Graph& graph,
                                                  size_t num_parts,
                                                  Rng& rng);

/// A single random walk of `length` steps starting at `start` (the start
/// node is included as element 0; walk stops early at isolated nodes).
std::vector<uint32_t> RandomWalk(const Graph& graph, uint32_t start,
                                 size_t length, Rng& rng);

/// Positive pointwise mutual information matrix built from random-walk
/// co-occurrence counts (used by the DGCN baseline's second channel).
/// `walks_per_node` walks of length `walk_length` with window `window`.
CsrMatrix PpmiMatrix(const Graph& graph, size_t walks_per_node,
                     size_t walk_length, size_t window, Rng& rng);

/// K-hop "structural fingerprint" scores via truncated random walk with
/// restart: returns for each node the RWR proximity to nodes within
/// `hops`. Output is row-stochastic, used by the ADSF baseline to bias
/// attention. Rows capped to `row_cap` strongest entries.
CsrMatrix StructuralFingerprints(const Graph& graph, size_t hops,
                                 double restart_prob, size_t row_cap);

/// Largest-magnitude eigenvalue estimate of a symmetric CSR operator via
/// power iteration (spectral sanity checks).
double PowerIterationSpectralRadius(const CsrMatrix& matrix,
                                    size_t iters, Rng& rng);

/// Average local clustering coefficient (Watts-Strogatz): mean over
/// nodes of (closed triangles at v) / (deg(v) choose 2); nodes with
/// degree < 2 contribute 0.
double AverageClusteringCoefficient(const Graph& graph);

/// Edge homophily: fraction of edges whose endpoints share a label —
/// the knob that controls how much propagation helps on a dataset.
double EdgeHomophily(const Graph& graph,
                     const std::vector<int32_t>& labels);

/// Degree distribution histogram with log-spaced buckets
/// [1,2), [2,4), [4,8), ...; bucket 0 counts isolated nodes.
std::vector<size_t> DegreeHistogram(const Graph& graph);

}  // namespace lasagne

#endif  // LASAGNE_GRAPH_ALGORITHMS_H_
