#ifndef LASAGNE_GRAPH_GRAPH_H_
#define LASAGNE_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sparse/csr_matrix.h"
#include "tensor/tensor.h"

namespace lasagne {

/// An undirected, unweighted graph stored as a CSR adjacency structure.
///
/// This is the substrate type every GNN in the library consumes. Nodes
/// are dense integer ids in [0, num_nodes). Self-loops are allowed but
/// not required; the normalized propagation operators add them per the
/// GCN convention (\f$\tilde A = A + I\f$). Parallel edges are collapsed
/// at construction.
class Graph {
 public:
  Graph() = default;

  /// Builds from an undirected edge list; each {u, v} pair is stored in
  /// both directions. Duplicate and reversed duplicates are collapsed.
  static Graph FromEdges(size_t num_nodes,
                         const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  size_t num_nodes() const { return num_nodes_; }
  /// Number of undirected edges (each counted once; self-loops count once).
  size_t num_edges() const { return num_edges_; }

  /// Neighbors of `node` (sorted, no duplicates).
  const uint32_t* NeighborsBegin(uint32_t node) const {
    return adj_.data() + offsets_[node];
  }
  const uint32_t* NeighborsEnd(uint32_t node) const {
    return adj_.data() + offsets_[node + 1];
  }
  size_t Degree(uint32_t node) const {
    return offsets_[node + 1] - offsets_[node];
  }
  std::vector<uint32_t> Neighbors(uint32_t node) const {
    return {NeighborsBegin(node), NeighborsEnd(node)};
  }
  bool HasEdge(uint32_t u, uint32_t v) const;

  /// All undirected edges, each once with u <= v.
  std::vector<std::pair<uint32_t, uint32_t>> Edges() const;

  /// Plain 0/1 adjacency as CSR (no self-loops added).
  CsrMatrix Adjacency() const;

  /// Symmetric GCN propagation operator
  /// \f$\hat A = \tilde D^{-1/2}(A + I)\tilde D^{-1/2}\f$ (Eq. 1/2).
  CsrMatrix NormalizedAdjacency() const;

  /// Row-stochastic random-walk operator \f$\tilde D^{-1}(A + I)\f$.
  CsrMatrix RandomWalkAdjacency() const;

  /// Induced subgraph on `nodes`; returns the subgraph and keeps the
  /// meaning new-id i == nodes[i].
  Graph InducedSubgraph(const std::vector<uint32_t>& nodes) const;

  /// Returns a graph with each edge independently kept with probability
  /// (1 - drop_rate). Used by DropEdge.
  Graph DropEdges(double drop_rate, Rng& rng) const;

  /// Degrees of all nodes as an (N x 1) tensor.
  Tensor DegreeVector() const;

  /// Average degree.
  double AverageDegree() const;

  /// Maximum degree.
  size_t MaxDegree() const;

 private:
  size_t num_nodes_ = 0;
  size_t num_edges_ = 0;
  std::vector<size_t> offsets_;  // size num_nodes_ + 1
  std::vector<uint32_t> adj_;    // flattened sorted neighbor lists
};

}  // namespace lasagne

#endif  // LASAGNE_GRAPH_GRAPH_H_
