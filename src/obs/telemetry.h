#ifndef LASAGNE_OBS_TELEMETRY_H_
#define LASAGNE_OBS_TELEMETRY_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace lasagne::obs {

/// One per-epoch training record (the trainer fills one in after every
/// healthy epoch and streams it as a JSONL line).
struct EpochTelemetry {
  size_t epoch = 0;
  double loss = 0.0;
  double val_accuracy = 0.0;
  double grad_norm = 0.0;       // global L2 norm, pre-clipping
  double learning_rate = 0.0;
  double epoch_time_ms = 0.0;
};

/// One divergence-recovery incident record.
struct RecoveryTelemetry {
  size_t epoch = 0;
  std::string reason;
  double new_learning_rate = 0.0;
};

/// Streams training telemetry to a JSONL file (one JSON object per
/// line, flushed per record so a killed run keeps its history) and
/// keeps the records in memory for the end-of-run summary table.
///
/// Purely an observer: it never touches model state or RNG streams, so
/// attaching it cannot perturb training results. Not thread-safe — one
/// writer per training run (the repeated-experiment driver gives
/// concurrent trials no writer).
class TelemetryWriter {
 public:
  TelemetryWriter() = default;
  ~TelemetryWriter();
  TelemetryWriter(const TelemetryWriter&) = delete;
  TelemetryWriter& operator=(const TelemetryWriter&) = delete;

  /// Opens (truncates) the JSONL stream. Empty path = in-memory only.
  Status Open(const std::string& path);

  /// Appends one epoch record ({"type":"epoch",...}).
  void RecordEpoch(const EpochTelemetry& record);

  /// Appends one recovery record ({"type":"recovery",...}).
  void RecordRecovery(const RecoveryTelemetry& record);

  const std::vector<EpochTelemetry>& epochs() const { return epochs_; }
  const std::vector<RecoveryTelemetry>& recoveries() const {
    return recoveries_;
  }

  /// End-of-run summary: epochs run, first/final loss, best val
  /// accuracy, mean epoch time, mean grad norm, recovery count.
  std::string SummaryTable() const;

  /// Flushes and closes the stream (idempotent; destructor calls it).
  void Close();

 private:
  std::FILE* file_ = nullptr;
  std::vector<EpochTelemetry> epochs_;
  std::vector<RecoveryTelemetry> recoveries_;
};

}  // namespace lasagne::obs

#endif  // LASAGNE_OBS_TELEMETRY_H_
