#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "obs/json.h"

namespace lasagne::obs {

namespace {

/// One thread's private span storage. Only the owning thread writes;
/// collectors read `count` with acquire ordering, which publishes every
/// slot written before the matching release store. Buffers are kept
/// alive by the registry (shared_ptr) so spans survive thread exit.
struct ThreadTraceBuffer {
  ThreadTraceBuffer(size_t capacity, uint32_t thread_id)
      : ring(capacity), tid(thread_id) {}

  std::vector<TraceEvent> ring;
  std::atomic<uint64_t> count{0};  // total spans ever written
  uint32_t tid;
  uint32_t depth = 0;  // owner-thread-only nesting depth
};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadTraceBuffer>> buffers;
  std::atomic<size_t> capacity{1 << 16};
  std::atomic<uint32_t> next_tid{0};
};

TraceRegistry& Registry() {
  // Leaked intentionally: worker threads may record during shutdown.
  static TraceRegistry& registry = *new TraceRegistry();
  return registry;
}

ThreadTraceBuffer& GetThreadBuffer() {
  thread_local const std::shared_ptr<ThreadTraceBuffer> buffer = [] {
    TraceRegistry& registry = Registry();
    auto buf = std::make_shared<ThreadTraceBuffer>(
        std::max<size_t>(1, registry.capacity.load(std::memory_order_relaxed)),
        registry.next_tid.fetch_add(1, std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(registry.mutex);
    registry.buffers.push_back(buf);
    return buf;
  }();
  return *buffer;
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{false};

int64_t TraceNowNs() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

uint32_t EnterSpan() { return GetThreadBuffer().depth++; }

void RecordSpan(const char* name, int64_t start_ns) {
  const int64_t end_ns = TraceNowNs();
  ThreadTraceBuffer& buf = GetThreadBuffer();
  --buf.depth;
  const uint64_t n = buf.count.load(std::memory_order_relaxed);
  TraceEvent& slot = buf.ring[n % buf.ring.size()];
  slot.name = name;
  slot.start_ns = start_ns;
  slot.duration_ns = end_ns - start_ns;
  slot.tid = buf.tid;
  slot.depth = buf.depth;
  buf.count.store(n + 1, std::memory_order_release);
}

}  // namespace internal

void EnableTracing(size_t events_per_thread) {
  Registry().capacity.store(std::max<size_t>(1, events_per_thread),
                            std::memory_order_relaxed);
  internal::TraceNowNs();  // pin the epoch before the first span
  internal::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void DisableTracing() {
  internal::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void ClearTrace() {
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& buf : registry.buffers) {
    buf->count.store(0, std::memory_order_release);
  }
}

std::vector<TraceEvent> CollectTrace() {
  std::vector<TraceEvent> events;
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buf : registry.buffers) {
    const uint64_t n = buf->count.load(std::memory_order_acquire);
    const uint64_t cap = buf->ring.size();
    const uint64_t kept = std::min(n, cap);
    for (uint64_t i = 0; i < kept; ++i) {
      // Oldest surviving span first; ring order when wrapped.
      const uint64_t index = n <= cap ? i : (n + i) % cap;
      events.push_back(buf->ring[index]);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.tid < b.tid;
            });
  return events;
}

uint64_t TraceDroppedEvents() {
  uint64_t dropped = 0;
  TraceRegistry& registry = Registry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  for (const auto& buf : registry.buffers) {
    const uint64_t n = buf->count.load(std::memory_order_acquire);
    const uint64_t cap = buf->ring.size();
    if (n > cap) dropped += n - cap;
  }
  return dropped;
}

std::string TraceToJson() {
  const std::vector<TraceEvent> events = CollectTrace();
  std::string out;
  out.reserve(events.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    out += JsonQuote(e.name != nullptr ? e.name : "?");
    out += ",\"cat\":\"lasagne\",\"ph\":\"X\",\"pid\":0,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    out += JsonNumber(static_cast<double>(e.start_ns) / 1000.0);
    out += ",\"dur\":";
    out += JsonNumber(static_cast<double>(e.duration_ns) / 1000.0);
    out += ",\"args\":{\"depth\":";
    out += std::to_string(e.depth);
    out += "}}";
  }
  out += "]}";
  return out;
}

Status WriteTraceJson(const std::string& path) {
  const std::string json = TraceToJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return IOError("cannot open trace output file: " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != json.size() || !close_ok) {
    return IOError("short write to trace output file: " + path);
  }
  return Status::OK();
}

}  // namespace lasagne::obs
