#ifndef LASAGNE_OBS_JSON_H_
#define LASAGNE_OBS_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace lasagne::obs {

/// Minimal zero-dependency JSON document: parse, inspect, serialize.
///
/// This exists so the observability layer can *validate its own output*
/// (trace files, metric scrapes, telemetry lines) and so tests can read
/// golden files without an external JSON library. It supports the full
/// JSON grammar except `\u` escapes beyond the ASCII range (which the
/// library never emits); numbers are stored as double.
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double v);
  static JsonValue String(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  /// Parses `text` into a document. Trailing garbage is an error.
  static StatusOr<JsonValue> Parse(const std::string& text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; abort on type mismatch (test/tool usage).
  bool AsBool() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::map<std::string, JsonValue>& AsObject() const;

  /// Object lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Mutators for building documents programmatically.
  void Append(JsonValue v);                       // arrays
  void Set(const std::string& key, JsonValue v);  // objects

  /// Compact serialization (no whitespace). Numbers use shortest
  /// round-trip formatting (%.17g trimmed), strings are escaped.
  std::string Dump() const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Escapes a string for embedding in JSON output (adds quotes).
std::string JsonQuote(const std::string& s);

/// Formats a double as a JSON number (finite; NaN/Inf become null).
std::string JsonNumber(double v);

}  // namespace lasagne::obs

#endif  // LASAGNE_OBS_JSON_H_
