#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace lasagne::obs {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  LASAGNE_CHECK(is_bool());
  return bool_;
}

double JsonValue::AsDouble() const {
  LASAGNE_CHECK(is_number());
  return number_;
}

const std::string& JsonValue::AsString() const {
  LASAGNE_CHECK(is_string());
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  LASAGNE_CHECK(is_array());
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::AsObject() const {
  LASAGNE_CHECK(is_object());
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::Append(JsonValue v) {
  LASAGNE_CHECK(is_array());
  array_.push_back(std::move(v));
}

void JsonValue::Set(const std::string& key, JsonValue v) {
  LASAGNE_CHECK(is_object());
  object_[key] = std::move(v);
}

std::string JsonQuote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers within the exact double range print without a fraction.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Shorten when a lower precision already round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string JsonValue::Dump() const {
  switch (type_) {
    case Type::kNull:
      return "null";
    case Type::kBool:
      return bool_ ? "true" : "false";
    case Type::kNumber:
      return JsonNumber(number_);
    case Type::kString:
      return JsonQuote(string_);
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        out += array_[i].Dump();
      }
      out.push_back(']');
      return out;
    }
    case Type::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out.push_back(',');
        first = false;
        out += JsonQuote(key);
        out.push_back(':');
        out += value.Dump();
      }
      out.push_back('}');
      return out;
    }
  }
  return "null";
}

namespace {

/// Recursive-descent parser over a raw character range.
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  StatusOr<JsonValue> ParseDocument() {
    StatusOr<JsonValue> v = ParseValue();
    if (!v.ok()) return v;
    SkipWhitespace();
    if (p_ != end_) return Error("trailing characters after JSON value");
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return DataLossError("JSON parse error at offset " +
                         std::to_string(offset_) + ": " + what);
  }

  void SkipWhitespace() {
    while (p_ != end_ &&
           (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      Advance();
    }
  }

  void Advance() {
    ++p_;
    ++offset_;
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* literal) {
    const size_t n = std::strlen(literal);
    if (static_cast<size_t>(end_ - p_) < n) return false;
    if (std::strncmp(p_, literal, n) != 0) return false;
    p_ += n;
    offset_ += n;
    return true;
  }

  StatusOr<JsonValue> ParseValue() {
    SkipWhitespace();
    if (p_ == end_) return Error("unexpected end of input");
    switch (*p_) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        StatusOr<std::string> s = ParseString();
        if (!s.ok()) return s.status();
        return JsonValue::String(std::move(s).value());
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<JsonValue> ParseObject() {
    Advance();  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (p_ == end_ || *p_ != '"') return Error("expected object key");
      StatusOr<std::string> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      obj.Set(key.value(), std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray() {
    Advance();  // '['
    JsonValue arr = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      StatusOr<JsonValue> value = ParseValue();
      if (!value.ok()) return value;
      arr.Append(std::move(value).value());
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<std::string> ParseString() {
    Advance();  // '"'
    std::string out;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_;
      Advance();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) return Error("unterminated escape");
      char esc = *p_;
      Advance();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (end_ - p_ < 4) return Error("truncated \\u escape");
          char hex[5] = {p_[0], p_[1], p_[2], p_[3], '\0'};
          char* hex_end = nullptr;
          long code = std::strtol(hex, &hex_end, 16);
          if (hex_end != hex + 4) return Error("invalid \\u escape");
          p_ += 4;
          offset_ += 4;
          if (code > 0x7f) return Error("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    if (!Consume('"')) return Error("unterminated string");
    return out;
  }

  StatusOr<JsonValue> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) Advance();
    bool any_digit = false;
    auto eat_digits = [&] {
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
        any_digit = true;
        Advance();
      }
    };
    eat_digits();
    if (p_ != end_ && *p_ == '.') {
      Advance();
      eat_digits();
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      Advance();
      if (p_ != end_ && (*p_ == '-' || *p_ == '+')) Advance();
      eat_digits();
    }
    if (!any_digit) return Error("invalid number");
    return JsonValue::Number(std::strtod(std::string(start, p_).c_str(),
                                         nullptr));
  }

  const char* p_;
  const char* end_;
  size_t offset_ = 0;
};

}  // namespace

StatusOr<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text.data(), text.data() + text.size());
  return parser.ParseDocument();
}

}  // namespace lasagne::obs
