#ifndef LASAGNE_OBS_TRACE_H_
#define LASAGNE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace lasagne::obs {

namespace internal {

extern std::atomic<bool> g_trace_enabled;

/// Wall-clock nanoseconds since the process trace epoch (steady clock).
int64_t TraceNowNs();

/// Records one completed span for the calling thread. Handles the
/// nesting-depth bookkeeping started by TraceScope's constructor.
void RecordSpan(const char* name, int64_t start_ns);

/// Increments the calling thread's span-nesting depth (called by
/// TraceScope when tracing is on) and returns the depth of the new
/// span (0 = top level).
uint32_t EnterSpan();

}  // namespace internal

/// One completed span, collected from the per-thread ring buffers.
struct TraceEvent {
  const char* name = nullptr;  // static-lifetime string (span label)
  int64_t start_ns = 0;        // since the trace epoch
  int64_t duration_ns = 0;
  uint32_t tid = 0;    // small dense thread id
  uint32_t depth = 0;  // span nesting depth on that thread (0 = top)
};

/// True while span recording is on. One relaxed atomic load — the whole
/// cost of a LASAGNE_TRACE_SCOPE while tracing is off.
inline bool TracingEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turns span recording on. Threads record into private ring buffers of
/// `events_per_thread` slots (oldest spans overwritten on overflow).
/// Buffers already created keep their capacity.
void EnableTracing(size_t events_per_thread = 1 << 16);

/// Stops recording. Already-recorded spans remain collectable.
void DisableTracing();

/// Drops every recorded span (buffers stay allocated).
void ClearTrace();

/// Snapshot of all recorded spans, merged across threads and sorted by
/// start time. Spans recorded concurrently with the collection may be
/// missed; call after the traced work has finished.
std::vector<TraceEvent> CollectTrace();

/// Number of spans dropped to ring-buffer overflow so far.
uint64_t TraceDroppedEvents();

/// Serializes the recorded spans in Chrome trace / Perfetto JSON
/// ("traceEvents" array of "ph":"X" complete events, microsecond
/// timestamps). Open in chrome://tracing or https://ui.perfetto.dev.
std::string TraceToJson();

/// Writes TraceToJson() to `path`.
Status WriteTraceJson(const std::string& path);

/// RAII span: records [construction, destruction) of the enclosing
/// scope under `name` when tracing is enabled; a single relaxed atomic
/// load otherwise. `name` must have static lifetime (string literal).
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (!TracingEnabled()) return;
    name_ = name;
    depth_plus_one_ = internal::EnterSpan() + 1;
    start_ns_ = internal::TraceNowNs();
  }

  ~TraceScope() {
    if (depth_plus_one_ != 0) internal::RecordSpan(name_, start_ns_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  uint32_t depth_plus_one_ = 0;  // 0 = inactive (tracing was off)
};

#define LASAGNE_TRACE_CONCAT_INNER_(a, b) a##b
#define LASAGNE_TRACE_CONCAT_(a, b) LASAGNE_TRACE_CONCAT_INNER_(a, b)

/// Instruments the enclosing scope as a named trace span.
#define LASAGNE_TRACE_SCOPE(name)                                     \
  ::lasagne::obs::TraceScope LASAGNE_TRACE_CONCAT_(lasagne_trace_at_, \
                                                   __LINE__)(name)

}  // namespace lasagne::obs

#endif  // LASAGNE_OBS_TRACE_H_
