#include "obs/telemetry.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"

namespace lasagne::obs {

TelemetryWriter::~TelemetryWriter() { Close(); }

Status TelemetryWriter::Open(const std::string& path) {
  Close();
  if (path.empty()) return Status::OK();
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return IOError("cannot open telemetry output file: " + path);
  }
  return Status::OK();
}

void TelemetryWriter::RecordEpoch(const EpochTelemetry& record) {
  epochs_.push_back(record);
  if (file_ == nullptr) return;
  std::string line = "{\"type\":\"epoch\",\"epoch\":" +
                     std::to_string(record.epoch) +
                     ",\"loss\":" + JsonNumber(record.loss) +
                     ",\"val_accuracy\":" + JsonNumber(record.val_accuracy) +
                     ",\"grad_norm\":" + JsonNumber(record.grad_norm) +
                     ",\"learning_rate\":" + JsonNumber(record.learning_rate) +
                     ",\"epoch_time_ms\":" + JsonNumber(record.epoch_time_ms) +
                     "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

void TelemetryWriter::RecordRecovery(const RecoveryTelemetry& record) {
  recoveries_.push_back(record);
  if (file_ == nullptr) return;
  std::string line =
      "{\"type\":\"recovery\",\"epoch\":" + std::to_string(record.epoch) +
      ",\"reason\":" + JsonQuote(record.reason) + ",\"new_learning_rate\":" +
      JsonNumber(record.new_learning_rate) + "}\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

std::string TelemetryWriter::SummaryTable() const {
  std::ostringstream os;
  os << "-- training telemetry ------------------------------------\n";
  if (epochs_.empty()) {
    os << "  no epochs recorded\n";
  } else {
    double best_val = 0.0;
    double mean_ms = 0.0;
    double mean_grad = 0.0;
    for (const EpochTelemetry& e : epochs_) {
      best_val = std::max(best_val, e.val_accuracy);
      mean_ms += e.epoch_time_ms;
      mean_grad += e.grad_norm;
    }
    mean_ms /= static_cast<double>(epochs_.size());
    mean_grad /= static_cast<double>(epochs_.size());
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-18s %zu\n", "epochs",
                  epochs_.size());
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-18s %.6g -> %.6g\n", "loss",
                  epochs_.front().loss, epochs_.back().loss);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-18s %.4f\n", "best val acc",
                  best_val);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-18s %.3f\n", "mean epoch ms",
                  mean_ms);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-18s %.6g\n", "mean grad norm",
                  mean_grad);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-18s %.6g\n", "final lr",
                  epochs_.back().learning_rate);
    os << buf;
  }
  os << "  recoveries         " << recoveries_.size() << "\n";
  os << "----------------------------------------------------------\n";
  return os.str();
}

void TelemetryWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace lasagne::obs
