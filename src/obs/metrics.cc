#include "obs/metrics.h"

#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace lasagne::obs {

namespace internal {
std::atomic<bool> g_metrics_enabled{false};
}  // namespace internal

void EnableMetrics() {
  internal::g_metrics_enabled.store(true, std::memory_order_relaxed);
}

void DisableMetrics() {
  internal::g_metrics_enabled.store(false, std::memory_order_relaxed);
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
}

size_t Histogram::BucketFor(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN and negatives
  int exponent = 0;
  std::frexp(value, &exponent);
  // value in [2^(exponent-1), 2^exponent)  ->  bucket `exponent`.
  if (exponent < 1) return 0;
  if (exponent > static_cast<int>(kBuckets) - 1) return kBuckets - 1;
  return static_cast<size_t>(exponent);
}

double Histogram::BucketLowerEdge(size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 1);
}

void Histogram::Record(double value) {
  Shard& shard = shards_[internal::ThreadSlot() % internal::kMetricStripes];
  shard.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kBuckets> merged{};
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < kBuckets; ++i) {
      merged[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return merged;
}

double Histogram::Percentile(double q) const {
  const std::array<uint64_t, kBuckets> merged = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : merged) total += c;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(total);
  uint64_t running = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    running += merged[i];
    if (static_cast<double>(running) >= target && merged[i] > 0) {
      // Upper edge of the bucket (== lower edge of the next).
      return i + 1 < kBuckets ? BucketLowerEdge(i + 1)
                              : BucketLowerEdge(kBuckets - 1) * 2.0;
    }
  }
  return BucketLowerEdge(kBuckets - 1) * 2.0;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked intentionally: instrumentation sites hold references for the
  // process lifetime and may fire during static destruction.
  static MetricsRegistry& registry = *new MetricsRegistry();
  return registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ScrapeText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << "counter " << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "gauge " << name << " " << JsonNumber(gauge->Value()) << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << "histogram " << name << " count=" << hist->Count()
       << " sum=" << JsonNumber(hist->Sum())
       << " mean=" << JsonNumber(hist->Mean())
       << " p50=" << JsonNumber(hist->Percentile(0.5))
       << " p99=" << JsonNumber(hist->Percentile(0.99)) << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::ScrapeJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  JsonValue root = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, counter] : counters_) {
    counters.Set(name,
                 JsonValue::Number(static_cast<double>(counter->Value())));
  }
  root.Set("counters", std::move(counters));
  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, gauge] : gauges_) {
    gauges.Set(name, JsonValue::Number(gauge->Value()));
  }
  root.Set("gauges", std::move(gauges));
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, hist] : histograms_) {
    JsonValue h = JsonValue::Object();
    h.Set("count", JsonValue::Number(static_cast<double>(hist->Count())));
    h.Set("sum", JsonValue::Number(hist->Sum()));
    h.Set("mean", JsonValue::Number(hist->Mean()));
    h.Set("p50", JsonValue::Number(hist->Percentile(0.5)));
    h.Set("p99", JsonValue::Number(hist->Percentile(0.99)));
    JsonValue buckets = JsonValue::Object();
    const auto counts = hist->BucketCounts();
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (counts[i] == 0) continue;
      buckets.Set(JsonNumber(Histogram::BucketLowerEdge(i)),
                  JsonValue::Number(static_cast<double>(counts[i])));
    }
    h.Set("buckets", std::move(buckets));
    histograms.Set(name, std::move(h));
  }
  root.Set("histograms", std::move(histograms));
  return root.Dump();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace lasagne::obs
