#ifndef LASAGNE_OBS_METRICS_H_
#define LASAGNE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace lasagne::obs {

namespace internal {

/// Number of independent shards a metric spreads its updates over.
/// Threads hash onto shards by a small per-thread slot id, so updates
/// from different threads rarely contend on the same cache line.
constexpr size_t kMetricStripes = 16;

/// Small dense id for the calling thread (assigned on first use, never
/// reused within a process). Used to pick a metric stripe.
inline size_t ThreadSlot() {
  static std::atomic<size_t> next{0};
  thread_local const size_t slot = next.fetch_add(1);
  return slot;
}

extern std::atomic<bool> g_metrics_enabled;

}  // namespace internal

/// True when metric collection is on. One relaxed atomic load — the
/// whole cost of every instrumentation site while metrics are off.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}

void EnableMetrics();
void DisableMetrics();

/// Monotonically increasing event count. The fast path is one relaxed
/// fetch_add on the calling thread's stripe; Value() sums stripes.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    cells_[internal::ThreadSlot() % internal::kMetricStripes].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const;
  void Reset();

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  std::array<Cell, internal::kMetricStripes> cells_;
};

/// Last-write-wins instantaneous value (thread count, LR, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram over non-negative values with fixed log2-scale buckets:
/// bucket 0 holds values < 1, bucket i (1..62) holds [2^(i-1), 2^i),
/// bucket 63 holds everything >= 2^62. Recording is a relaxed
/// fetch_add on the calling thread's shard; scraping merges shards.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  /// Maps a value to its bucket index (pure function, exposed for
  /// tests and the exporter's bucket labels).
  static size_t BucketFor(double value);

  /// Lower edge of bucket i (0 for bucket 0, else 2^(i-1)).
  static double BucketLowerEdge(size_t i);

  void Record(double value);

  uint64_t Count() const;
  double Sum() const;
  double Mean() const { return Count() > 0 ? Sum() / Count() : 0.0; }
  std::array<uint64_t, kBuckets> BucketCounts() const;

  /// Upper-edge estimate of the q-quantile (q in [0, 1]) from the
  /// merged bucket counts; 0 when empty.
  double Percentile(double q) const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::array<Shard, internal::kMetricStripes> shards_;
};

/// Process-wide name -> metric registry.
///
/// Call sites cache the returned reference in a function-local static,
/// so registration (which takes a mutex) happens once per site and the
/// steady-state path is the metric's own lock-free update:
///
///   if (obs::MetricsEnabled()) {
///     static obs::Counter& c =
///         obs::MetricsRegistry::Global().GetCounter("spmm.calls");
///     c.Increment();
///   }
///
/// Metrics are never destroyed (references stay valid for the process
/// lifetime); Reset() zeroes values in place.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Plain-text scrape, one metric per line, sorted by name:
  ///   counter spmm.calls 1234
  ///   gauge threadpool.threads 8
  ///   histogram train.epoch_ms count=10 sum=123.4 p50=... p99=...
  std::string ScrapeText() const;

  /// JSON scrape: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms export count/sum/mean/percentiles plus the non-empty
  /// buckets as {"lower_edge":count}.
  std::string ScrapeJson() const;

  /// Zeroes every registered metric (objects stay alive — cached
  /// references at call sites remain valid).
  void Reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;  // guards the maps, never the fast path
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lasagne::obs

#endif  // LASAGNE_OBS_METRICS_H_
