#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne {

namespace {

// Elements of work per parallel chunk. Loops cheaper than this run
// inline; see docs/THREADING.md for the grain-size heuristics.
constexpr size_t kGrain = 32768;

// Counts a dense-GEMM-family call when metrics are on (one relaxed
// atomic load when off; see docs/OBSERVABILITY.md for metric names).
inline void CountMatMul() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::Global().GetCounter("tensor.matmul.calls");
    calls.Increment();
  }
}

// Row grain for kernels whose per-row cost is `work_per_row` elements.
size_t RowGrain(size_t work_per_row) {
  return std::max<size_t>(1, kGrain / std::max<size_t>(1, work_per_row));
}

}  // namespace

Tensor::Tensor(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  LASAGNE_CHECK_EQ(rows_ * cols_, data_.size());
}

Tensor Tensor::Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }

Tensor Tensor::Ones(size_t rows, size_t cols) {
  return Full(rows, cols, 1.0f);
}

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  Tensor t(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Identity(size_t n) {
  Tensor t(n, n);
  for (size_t i = 0; i < n; ++i) t(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Uniform(size_t rows, size_t cols, float lo, float hi,
                       Rng& rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data_[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Normal(size_t rows, size_t cols, float mean, float stddev,
                      Rng& rng) {
  Tensor t(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data_[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::GlorotUniform(size_t in_dim, size_t out_dim, Rng& rng) {
  float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  return Uniform(in_dim, out_dim, -bound, bound, rng);
}

Tensor Tensor::RowVector(const std::vector<float>& values) {
  return Tensor(1, values.size(), values);
}

Tensor Tensor::ColumnVector(const std::vector<float>& values) {
  return Tensor(values.size(), 1, values);
}

float Tensor::At(size_t r, size_t c) const {
  LASAGNE_CHECK_LT(r, rows_);
  LASAGNE_CHECK_LT(c, cols_);
  return (*this)(r, c);
}

Tensor Tensor::operator+(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  Tensor out = *this;
  out += other;
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  Tensor out = *this;
  out -= other;
  return out;
}

Tensor Tensor::operator*(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  Tensor out = *this;
  ParallelFor(0, out.size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out.data_[i] *= other.data_[i];
  });
  return out;
}

Tensor Tensor::operator*(float scalar) const {
  Tensor out = *this;
  out *= scalar;
  return out;
}

Tensor Tensor::operator/(float scalar) const {
  LASAGNE_CHECK_NE(scalar, 0.0f);
  return *this * (1.0f / scalar);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  LASAGNE_CHECK(SameShape(other));
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data_[i] += other.data_[i];
  });
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  LASAGNE_CHECK(SameShape(other));
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data_[i] -= other.data_[i];
  });
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data_[i] *= scalar;
  });
  return *this;
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  LASAGNE_CHECK(SameShape(other));
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data_[i] += alpha * other.data_[i];
  });
}

Tensor Tensor::Map(const std::function<float(float)>& fn) const {
  // `fn` may run concurrently from several threads; it must be
  // re-entrant (every caller in the library passes a pure function).
  Tensor out = *this;
  ParallelFor(0, out.size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out.data_[i] = fn(out.data_[i]);
  });
  return out;
}

Tensor Tensor::MatMul(const Tensor& other) const {
  LASAGNE_TRACE_SCOPE("matmul");
  CountMatMul();
  LASAGNE_CHECK_EQ(cols_, other.rows_);
  Tensor out(rows_, other.cols_);
  const size_t k_dim = cols_;
  const size_t n_dim = other.cols_;
  // i-k-j loop order keeps the inner loop streaming over contiguous rows.
  // Row-partitioned: each output row is produced by exactly one chunk
  // with the serial k-j order, so results are bitwise-identical to the
  // serial loop at every thread count.
  ParallelFor(0, rows_, RowGrain(k_dim * n_dim), [&](size_t row_begin,
                                                     size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const float* a_row = RowPtr(i);
      float* out_row = out.RowPtr(i);
      for (size_t k = 0; k < k_dim; ++k) {
        const float a_ik = a_row[k];
        if (a_ik == 0.0f) continue;
        const float* b_row = other.RowPtr(k);
        for (size_t j = 0; j < n_dim; ++j) out_row[j] += a_ik * b_row[j];
      }
    }
  });
  return out;
}

Tensor Tensor::TransposedMatMul(const Tensor& other) const {
  LASAGNE_TRACE_SCOPE("matmul_at");
  CountMatMul();
  LASAGNE_CHECK_EQ(rows_, other.rows_);
  Tensor out(cols_, other.cols_);
  const size_t n_dim = other.cols_;
  // Partitioned over output rows (columns of `this`); the inner r loop
  // keeps the serial ascending accumulation order per output element,
  // so any thread count reproduces the serial result bitwise.
  ParallelFor(0, cols_, RowGrain(rows_ * n_dim), [&](size_t col_begin,
                                                     size_t col_end) {
    for (size_t r = 0; r < rows_; ++r) {
      const float* a_row = RowPtr(r);
      const float* b_row = other.RowPtr(r);
      for (size_t i = col_begin; i < col_end; ++i) {
        const float a_ri = a_row[i];
        if (a_ri == 0.0f) continue;
        float* out_row = out.RowPtr(i);
        for (size_t j = 0; j < n_dim; ++j) out_row[j] += a_ri * b_row[j];
      }
    }
  });
  return out;
}

Tensor Tensor::MatMulTransposed(const Tensor& other) const {
  LASAGNE_TRACE_SCOPE("matmul_bt");
  CountMatMul();
  LASAGNE_CHECK_EQ(cols_, other.cols_);
  Tensor out(rows_, other.rows_);
  ParallelFor(0, rows_, RowGrain(other.rows_ * cols_), [&](size_t row_begin,
                                                           size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const float* a_row = RowPtr(i);
      float* out_row = out.RowPtr(i);
      for (size_t j = 0; j < other.rows_; ++j) {
        const float* b_row = other.RowPtr(j);
        float acc = 0.0f;
        for (size_t k = 0; k < cols_; ++k) acc += a_row[k] * b_row[k];
        out_row[j] = acc;
      }
    }
  });
  return out;
}

Tensor Tensor::Transpose() const {
  Tensor out(cols_, rows_);
  ParallelFor(0, rows_, RowGrain(cols_), [&](size_t row_begin,
                                             size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    }
  });
  return out;
}

float Tensor::Sum() const {
  // Grain-sized chunks summed in ascending order: the association is a
  // function of the size only, never of the thread count.
  return static_cast<float>(
      ParallelReduce(0, size(), kGrain, [&](size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) acc += data_[i];
        return acc;
      }));
}

float Tensor::Mean() const {
  LASAGNE_CHECK_GT(size(), 0u);
  return Sum() / static_cast<float>(size());
}

float Tensor::Min() const {
  LASAGNE_CHECK_GT(size(), 0u);
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::Max() const {
  LASAGNE_CHECK_GT(size(), 0u);
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::Norm() const { return std::sqrt(SquaredNorm()); }

float Tensor::SquaredNorm() const {
  return static_cast<float>(
      ParallelReduce(0, size(), kGrain, [&](size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) {
          acc += static_cast<double>(data_[i]) * data_[i];
        }
        return acc;
      }));
}

Tensor Tensor::RowSum() const {
  Tensor out(rows_, 1);
  ParallelFor(0, rows_, RowGrain(cols_), [&](size_t row_begin,
                                             size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const float* row = RowPtr(i);
      double acc = 0.0;
      for (size_t j = 0; j < cols_; ++j) acc += row[j];
      out(i, 0) = static_cast<float>(acc);
    }
  });
  return out;
}

Tensor Tensor::ColSum() const {
  Tensor out(1, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* row = RowPtr(i);
    for (size_t j = 0; j < cols_; ++j) out(0, j) += row[j];
  }
  return out;
}

Tensor Tensor::RowMean() const {
  LASAGNE_CHECK_GT(cols_, 0u);
  Tensor out = RowSum();
  out *= 1.0f / static_cast<float>(cols_);
  return out;
}

std::vector<size_t> Tensor::ArgMaxPerRow() const {
  LASAGNE_CHECK_GT(cols_, 0u);
  std::vector<size_t> out(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* row = RowPtr(i);
    size_t best = 0;
    for (size_t j = 1; j < cols_; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::GatherRows(const std::vector<size_t>& indices) const {
  Tensor out(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    LASAGNE_CHECK_LT(indices[i], rows_);
    std::copy(RowPtr(indices[i]), RowPtr(indices[i]) + cols_, out.RowPtr(i));
  }
  return out;
}

Tensor Tensor::Row(size_t r) const {
  LASAGNE_CHECK_LT(r, rows_);
  Tensor out(1, cols_);
  std::copy(RowPtr(r), RowPtr(r) + cols_, out.RowPtr(0));
  return out;
}

bool Tensor::AllFinite() const {
  for (float v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

float Tensor::MaxAbsDiff(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  float max_diff = 0.0f;
  for (size_t i = 0; i < size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data_[i] - other.data_[i]));
  }
  return max_diff;
}

std::string Tensor::DebugString() const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_;
  if (!empty()) {
    os << ", mean=" << Mean() << ", norm=" << Norm();
  }
  os << ")";
  return os.str();
}

Tensor operator*(float scalar, const Tensor& tensor) {
  return tensor * scalar;
}

}  // namespace lasagne
