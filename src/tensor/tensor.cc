#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/parallel_config.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/kernels.h"

namespace lasagne {

namespace {

// Counts a dense-GEMM-family call when metrics are on (one relaxed
// atomic load when off; see docs/OBSERVABILITY.md for metric names).
inline void CountMatMul() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::Global().GetCounter("tensor.matmul.calls");
    calls.Increment();
  }
}

// Pool-backed scratch for a packed B panel (freed back to the pool at
// the end of the GEMM call).
internal::PoolBuffer PackPanel(const float* b, size_t k_dim, size_t n_dim,
                               bool transposed) {
  internal::PoolBuffer packed(kernels::PackedBSize(k_dim, n_dim));
  if (packed.data() != nullptr) {
    if (transposed) {
      kernels::PackBTransposed(b, n_dim, k_dim, packed.data());
    } else {
      kernels::PackB(b, k_dim, n_dim, packed.data());
    }
  }
  return packed;
}

}  // namespace

Tensor::Tensor(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), buf_(rows * cols) {
  std::fill(buf_.data(), buf_.data() + rows * cols, 0.0f);
}

Tensor::Tensor(size_t rows, size_t cols, UninitTag)
    : rows_(rows), cols_(cols), buf_(rows * cols) {}

Tensor::Tensor(size_t rows, size_t cols, std::vector<float> data)
    : rows_(rows), cols_(cols), buf_(rows * cols) {
  LASAGNE_CHECK_EQ(rows_ * cols_, data.size());
  std::copy(data.begin(), data.end(), buf_.data());
}

Tensor::Tensor(const Tensor& other)
    : rows_(other.rows_), cols_(other.cols_), buf_(other.size()) {
  std::copy(other.data(), other.data() + other.size(), buf_.data());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (size() != other.size()) {
    buf_ = internal::PoolBuffer(other.size());
  }
  rows_ = other.rows_;
  cols_ = other.cols_;
  std::copy(other.data(), other.data() + other.size(), buf_.data());
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), buf_(std::move(other.buf_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this != &other) {
    buf_ = std::move(other.buf_);
    rows_ = other.rows_;
    cols_ = other.cols_;
    other.rows_ = 0;
    other.cols_ = 0;
  }
  return *this;
}

Tensor Tensor::Zeros(size_t rows, size_t cols) { return Tensor(rows, cols); }

Tensor Tensor::Uninitialized(size_t rows, size_t cols) {
  return Tensor(rows, cols, UninitTag{});
}

Tensor Tensor::Ones(size_t rows, size_t cols) {
  return Full(rows, cols, 1.0f);
}

Tensor Tensor::Full(size_t rows, size_t cols, float value) {
  Tensor t = Uninitialized(rows, cols);
  t.Fill(value);
  return t;
}

Tensor Tensor::Identity(size_t n) {
  Tensor t(n, n);
  for (size_t i = 0; i < n; ++i) t(i, i) = 1.0f;
  return t;
}

Tensor Tensor::Uniform(size_t rows, size_t cols, float lo, float hi,
                       Rng& rng) {
  Tensor t = Uninitialized(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Normal(size_t rows, size_t cols, float mean, float stddev,
                      Rng& rng) {
  Tensor t = Uninitialized(rows, cols);
  for (size_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::GlorotUniform(size_t in_dim, size_t out_dim, Rng& rng) {
  float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  return Uniform(in_dim, out_dim, -bound, bound, rng);
}

Tensor Tensor::RowVector(const std::vector<float>& values) {
  return Tensor(1, values.size(), values);
}

Tensor Tensor::ColumnVector(const std::vector<float>& values) {
  return Tensor(values.size(), 1, values);
}

float Tensor::At(size_t r, size_t c) const {
  LASAGNE_CHECK_LT(r, rows_);
  LASAGNE_CHECK_LT(c, cols_);
  return (*this)(r, c);
}

Tensor Tensor::operator+(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  Tensor out = Uninitialized(rows_, cols_);
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwAdd(data() + begin, other.data() + begin, out.data() + begin,
                   end - begin);
  });
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  Tensor out = Uninitialized(rows_, cols_);
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwSub(data() + begin, other.data() + begin, out.data() + begin,
                   end - begin);
  });
  return out;
}

Tensor Tensor::operator*(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  Tensor out = Uninitialized(rows_, cols_);
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwMul(data() + begin, other.data() + begin, out.data() + begin,
                   end - begin);
  });
  return out;
}

Tensor Tensor::operator*(float scalar) const {
  Tensor out = Uninitialized(rows_, cols_);
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwScale(data() + begin, scalar, out.data() + begin, end - begin);
  });
  return out;
}

Tensor Tensor::operator/(float scalar) const {
  LASAGNE_CHECK_NE(scalar, 0.0f);
  return *this * (1.0f / scalar);
}

Tensor& Tensor::operator+=(const Tensor& other) {
  LASAGNE_CHECK(SameShape(other));
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwAddInPlace(data() + begin, other.data() + begin, end - begin);
  });
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& other) {
  LASAGNE_CHECK(SameShape(other));
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwSubInPlace(data() + begin, other.data() + begin, end - begin);
  });
  return *this;
}

Tensor& Tensor::operator*=(float scalar) {
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwScaleInPlace(data() + begin, scalar, end - begin);
  });
  return *this;
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  LASAGNE_CHECK(SameShape(other));
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    kernels::EwAxpy(data() + begin, alpha, other.data() + begin, end - begin);
  });
}

Tensor Tensor::Map(const std::function<float(float)>& fn) const {
  // `fn` may run concurrently from several threads; it must be
  // re-entrant (every caller in the library passes a pure function).
  Tensor out = Uninitialized(rows_, cols_);
  ParallelFor(0, size(), kGrain, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) out.data()[i] = fn(data()[i]);
  });
  return out;
}

Tensor Tensor::MatMul(const Tensor& other) const {
  LASAGNE_TRACE_SCOPE("matmul");
  CountMatMul();
  LASAGNE_CHECK_EQ(cols_, other.rows_);
  const size_t k_dim = cols_;
  const size_t n_dim = other.cols_;
  Tensor out = Uninitialized(rows_, n_dim);
  // B is packed once into kColTile-wide panels shared read-only by all
  // row chunks; each output row keeps the serial ascending-k
  // accumulation order (docs/KERNELS.md), so results are
  // bitwise-identical to the naive loop at every thread count.
  internal::PoolBuffer packed =
      PackPanel(other.data(), k_dim, n_dim, /*transposed=*/false);
  ParallelFor(0, rows_, RowGrain(k_dim * n_dim),
              [&](size_t row_begin, size_t row_end) {
                kernels::GemmRowsNN(data(), k_dim, n_dim, other.data(),
                                    packed.data(), out.data(), row_begin,
                                    row_end);
              });
  return out;
}

Tensor Tensor::TransposedMatMul(const Tensor& other) const {
  LASAGNE_TRACE_SCOPE("matmul_at");
  CountMatMul();
  LASAGNE_CHECK_EQ(rows_, other.rows_);
  const size_t n_dim = other.cols_;
  // Zero-initialized: the kernel accumulates into memory in ascending r
  // order, partitioned over output rows (columns of `this`).
  Tensor out(cols_, n_dim);
  ParallelFor(0, cols_, RowGrain(rows_ * n_dim),
              [&](size_t col_begin, size_t col_end) {
                kernels::GemmColsTN(data(), cols_, other.data(), n_dim, rows_,
                                    out.data(), col_begin, col_end);
              });
  return out;
}

Tensor Tensor::MatMulTransposed(const Tensor& other) const {
  LASAGNE_TRACE_SCOPE("matmul_bt");
  CountMatMul();
  LASAGNE_CHECK_EQ(cols_, other.cols_);
  const size_t k_dim = cols_;
  const size_t n_dim = other.rows_;
  Tensor out = Uninitialized(rows_, n_dim);
  internal::PoolBuffer packed =
      PackPanel(other.data(), k_dim, n_dim, /*transposed=*/true);
  ParallelFor(0, rows_, RowGrain(n_dim * k_dim),
              [&](size_t row_begin, size_t row_end) {
                kernels::GemmRowsNT(data(), k_dim, n_dim, other.data(),
                                    packed.data(), out.data(), row_begin,
                                    row_end);
              });
  return out;
}

Tensor Tensor::Transpose() const {
  Tensor out = Uninitialized(cols_, rows_);
  ParallelFor(0, rows_, RowGrain(cols_), [&](size_t row_begin,
                                             size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    }
  });
  return out;
}

float Tensor::Sum() const {
  // Grain-sized chunks summed in ascending order: the association is a
  // function of the size only, never of the thread count.
  return static_cast<float>(
      ParallelReduce(0, size(), kGrain, [&](size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) acc += data()[i];
        return acc;
      }));
}

float Tensor::Mean() const {
  LASAGNE_CHECK_GT(size(), 0u);
  return Sum() / static_cast<float>(size());
}

float Tensor::Min() const {
  LASAGNE_CHECK_GT(size(), 0u);
  return *std::min_element(data(), data() + size());
}

float Tensor::Max() const {
  LASAGNE_CHECK_GT(size(), 0u);
  return *std::max_element(data(), data() + size());
}

float Tensor::Norm() const { return std::sqrt(SquaredNorm()); }

float Tensor::SquaredNorm() const {
  return static_cast<float>(
      ParallelReduce(0, size(), kGrain, [&](size_t begin, size_t end) {
        double acc = 0.0;
        for (size_t i = begin; i < end; ++i) {
          acc += static_cast<double>(data()[i]) * data()[i];
        }
        return acc;
      }));
}

Tensor Tensor::RowSum() const {
  Tensor out = Uninitialized(rows_, 1);
  ParallelFor(0, rows_, RowGrain(cols_), [&](size_t row_begin,
                                             size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const float* row = RowPtr(i);
      double acc = 0.0;
      for (size_t j = 0; j < cols_; ++j) acc += row[j];
      out(i, 0) = static_cast<float>(acc);
    }
  });
  return out;
}

Tensor Tensor::ColSum() const {
  Tensor out(1, cols_);
  kernels::ColSumAccumulate(data(), rows_, cols_, out.data());
  return out;
}

Tensor Tensor::RowMean() const {
  LASAGNE_CHECK_GT(cols_, 0u);
  Tensor out = RowSum();
  out *= 1.0f / static_cast<float>(cols_);
  return out;
}

std::vector<size_t> Tensor::ArgMaxPerRow() const {
  LASAGNE_CHECK_GT(cols_, 0u);
  std::vector<size_t> out(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const float* row = RowPtr(i);
    size_t best = 0;
    for (size_t j = 1; j < cols_; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

void Tensor::Fill(float value) {
  std::fill(data(), data() + size(), value);
}

Tensor Tensor::GatherRows(const std::vector<size_t>& indices) const {
  Tensor out = Uninitialized(indices.size(), cols_);
  for (size_t i = 0; i < indices.size(); ++i) {
    LASAGNE_CHECK_LT(indices[i], rows_);
    std::copy(RowPtr(indices[i]), RowPtr(indices[i]) + cols_, out.RowPtr(i));
  }
  return out;
}

Tensor Tensor::Row(size_t r) const {
  LASAGNE_CHECK_LT(r, rows_);
  Tensor out = Uninitialized(1, cols_);
  std::copy(RowPtr(r), RowPtr(r) + cols_, out.RowPtr(0));
  return out;
}

bool Tensor::AllFinite() const {
  for (size_t i = 0; i < size(); ++i) {
    if (!std::isfinite(data()[i])) return false;
  }
  return true;
}

float Tensor::MaxAbsDiff(const Tensor& other) const {
  LASAGNE_CHECK(SameShape(other));
  float max_diff = 0.0f;
  for (size_t i = 0; i < size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(data()[i] - other.data()[i]));
  }
  return max_diff;
}

std::string Tensor::DebugString() const {
  std::ostringstream os;
  os << "Tensor(" << rows_ << "x" << cols_;
  if (!empty()) {
    os << ", mean=" << Mean() << ", norm=" << Norm();
  }
  os << ")";
  return os.str();
}

Tensor operator*(float scalar, const Tensor& tensor) {
  return tensor * scalar;
}

}  // namespace lasagne
