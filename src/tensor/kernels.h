#ifndef LASAGNE_TENSOR_KERNELS_H_
#define LASAGNE_TENSOR_KERNELS_H_

#include <cstddef>
#include <cstdint>

// Blocked, explicitly vectorized compute kernels behind Tensor,
// CsrMatrix, the fused autograd ops and the Adam optimizer.
//
// Every kernel here is SERIAL over the range it is given — callers own
// partitioning (ParallelFor over disjoint output rows/columns) exactly
// as before. The kernels change the *schedule* (register tiles, packed
// panels, SIMD lanes across output columns), never the *arithmetic*:
// each output element accumulates its products in the original
// ascending reduction order with separate rounded mul and add, so
// results are bitwise-identical to the naive loops at every thread
// count. See docs/KERNELS.md for the tiling scheme and the
// ordered-accumulation determinism rule.
//
// This translation unit is the only one built with the optional SIMD
// target flags (LASAGNE_SIMD); the headers expose plain pointers so
// the rest of the library stays at the baseline ISA.

namespace lasagne::kernels {

// -- Dense GEMM family -------------------------------------------------------

/// Floats required for the packed-B panel of a (k x n) B matrix
/// (full kColTile-wide tiles only; tail columns read B directly).
size_t PackedBSize(size_t k_dim, size_t n_dim);

/// Packs B (k x n, row-major) into tile-major panels: for each tile t
/// of kColTile output columns, the k rows of that column strip are laid
/// out contiguously. One pack per GEMM call, shared read-only by every
/// row chunk.
void PackB(const float* b, size_t k_dim, size_t n_dim, float* packed);

/// Packs B^T panels for MatMulTransposed: B is (n x k) row-major and
/// tile t holds columns t*kColTile.. of the *output* (rows of B),
/// k-major so the kernel streams it contiguously.
void PackBTransposed(const float* b, size_t n_dim, size_t k_dim,
                     float* packed);

/// out[i] = A[i] * B for rows i in [row_begin, row_end).
/// A is (m x k), B is (k x n) with its packed panels, out is (m x n)
/// and may be uninitialized (every element of the row range is
/// written). Keeps the naive kernel's skip of zero A entries.
void GemmRowsNN(const float* a, size_t k_dim, size_t n_dim, const float* b,
                const float* b_packed, float* out, size_t row_begin,
                size_t row_end);

/// out[i] = A[i] * B^T for rows i in [row_begin, row_end).
/// A is (m x k), B is (n x k), b_packed from PackBTransposed, out
/// (m x n) may be uninitialized.
void GemmRowsNT(const float* a, size_t k_dim, size_t n_dim, const float* b,
                const float* b_packed, float* out, size_t row_begin,
                size_t row_end);

/// Fused GEMM + bias row tails, used by the execution-plan fusion pass
/// (docs/INFERENCE.md). Each runs GemmRowsNN over the row range and
/// then applies the epilogue to the still-hot output rows. The epilogue
/// is elementwise, so the result is bitwise-identical to running the
/// unfused op pair under any partition: the GEMM keeps its ascending-k
/// accumulation per element, and `out[j] + bias[j]` / the activation
/// are single rounded float ops either way.

/// out[i] = A[i] * B + bias (bias broadcast over rows).
void GemmRowsNNBias(const float* a, size_t k_dim, size_t n_dim,
                    const float* b, const float* b_packed, const float* bias,
                    float* out, size_t row_begin, size_t row_end);

/// out[i] = relu(A[i] * B + bias).
void GemmRowsNNBiasRelu(const float* a, size_t k_dim, size_t n_dim,
                        const float* b, const float* b_packed,
                        const float* bias, float* out, size_t row_begin,
                        size_t row_end);

/// out[i] = leaky_relu(A[i] * B + bias, alpha).
void GemmRowsNNBiasLeakyRelu(const float* a, size_t k_dim, size_t n_dim,
                             const float* b, const float* b_packed,
                             const float* bias, float alpha, float* out,
                             size_t row_begin, size_t row_end);

/// out[i][j] += sum_r A[r][i] * B[r][j] for output rows i in
/// [col_begin, col_end) (columns of A). A is (m x a_cols), B is
/// (m x n), out (a_cols x n) must be zero-initialized (memory
/// accumulation in ascending r order).
void GemmColsTN(const float* a, size_t a_cols, const float* b, size_t n_dim,
                size_t m_rows, float* out, size_t col_begin, size_t col_end);

// -- CSR sparse-dense products ----------------------------------------------

/// out[r] = sum_k values[k] * dense[col_idx[k]] over row r's entries,
/// for r in [row_begin, row_end). dense is (x x d); out (rows x d) may
/// be uninitialized over the row range. Register-blocked: kColTile
/// output columns per pass, ascending-k accumulation per element.
void SpmmRows(const size_t* row_ptr, const uint32_t* col_idx,
              const float* values, const float* dense, size_t d, float* out,
              size_t row_begin, size_t row_end);

/// Fused SpMM + activation row tails (execution-plan fusion pass):
/// SpmmRows over the row range, then the activation applied to the
/// contiguous output block while it is cache-hot. Bitwise-identical to
/// the unfused SpMM→activation pair (same ascending-k accumulation,
/// elementwise epilogue).
void SpmmRowsRelu(const size_t* row_ptr, const uint32_t* col_idx,
                  const float* values, const float* dense, size_t d,
                  float* out, size_t row_begin, size_t row_end);
void SpmmRowsLeakyRelu(const size_t* row_ptr, const uint32_t* col_idx,
                       const float* values, const float* dense, size_t d,
                       float alpha, float* out, size_t row_begin,
                       size_t row_end);

/// Fused elementwise add + ReLU (execution-plan fusion pass):
/// out = max(a + b, 0). Serial over [0, n); callers chunk via
/// ParallelFor. Bitwise-identical to EwAdd followed by ReluForward.
void EwAddRelu(const float* a, const float* b, float* out, size_t n);

/// out[col_idx[k]][j] += values[k] * dense[r][j] for j in
/// [col_begin, col_end), all rows r ascending. out must be
/// zero-initialized; writes touch only the column strip, so disjoint
/// strips parallelize without races.
void SpmmTransposedCols(const size_t* row_ptr, const uint32_t* col_idx,
                        const float* values, size_t rows, const float* dense,
                        size_t d, float* out, size_t col_begin,
                        size_t col_end);

// -- Single-pass fused edge attention ----------------------------------------
// The whole GAT per-edge chain — score gather → optional additive bias
// → LeakyReLU → numerically-stable masked softmax → weighted feature
// aggregation — in one CSR sweep per destination row. Replaces four
// (five with bias) materialized (E x 1) tensor ops with one kernel.
// Each stage reproduces the eager op's float sequence exactly (same
// std::max chain, float exp, double total in ascending k, one rounded
// multiply by 1/total, ascending-k feature accumulation), and the
// aggregation is register-blocked like SpmmRows, so the fused result
// is bitwise-identical to the unfused chain at any thread count.

/// Forward over destination rows [row_begin, row_end). `dst_scores` /
/// `src_scores` are (N x 1), `features` is (N x d), `edge_bias` is an
/// optional E-length per-edge additive prior (nullptr to skip). Writes
/// the normalized attention weights into `probs[k]` for every edge k
/// of the row range (bitwise the eager EdgeSoftmax output — the
/// backward reuses them) and the aggregated rows into `out`, which may
/// be uninitialized (empty rows are zero-filled, matching the eager
/// zero-init + accumulate). Serial; row ranges touch disjoint `probs`
/// and `out` regions, so callers partition rows via ParallelFor.
void EdgeAttentionForward(const size_t* row_ptr, const uint32_t* src,
                          const float* dst_scores, const float* src_scores,
                          const float* edge_bias, float slope,
                          const float* features, size_t d, float* probs,
                          float* out, size_t row_begin, size_t row_end);

/// Backward for the fused chain: given the upstream gradient `g`
/// (N x d) and the forward's normalized `probs`, produces the exact
/// gradient chain of the unfused ops — aggregate backward (per-edge
/// double dot g·feature), softmax backward (p * (dw - <dw, p>)), leaky
/// backward (raw scores are recomputed from the inputs for the sign
/// test; bitwise reproducible), and the gather/bias scatters. Outputs
/// `d_dst` (N x 1), `d_src` (N x 1), `d_feat` (N x d) must be
/// zero-initialized. Serial over ALL rows (the d_src/d_feat scatters
/// cross row boundaries, matching the eager serial backward);
/// `edge_scratch` holds E floats.
void EdgeAttentionBackward(const size_t* row_ptr, const uint32_t* src,
                           size_t num_nodes, const float* dst_scores,
                           const float* src_scores, const float* edge_bias,
                           float slope, const float* features, size_t d,
                           const float* probs, const float* g, float* d_dst,
                           float* d_src, float* d_feat, float* edge_scratch);

// -- Blocked SpGEMM row merge ------------------------------------------------

/// Column-block width of the SpGemmRowBlocked merge. 2048 floats of
/// accumulator plus flags stay L1-resident while a row's partial sums
/// build up, instead of striding the full B-width accumulator per
/// A-entry as the unblocked merge did.
inline constexpr size_t kSpGemmColBlock = 2048;

/// One row of C = A·B with Gustavson's dense-accumulator merge,
/// processed in kSpGemmColBlock-wide column blocks. The caller passes
/// the A-row's entries (`a_cols`/`a_vals`, `a_len` of them), B's CSR
/// arrays, a zero `accumulator` / `is_touched` pair of width `b_cols`,
/// a `touched` array with room for `b_cols` columns, and an `a_len`
/// cursor scratch. Appends each touched column once and returns the
/// count; the caller owns cap/prune/emission and resets the arrays.
/// B's column indices are sorted within each row (FromTriplets
/// guarantees it), so per output element the products still accumulate
/// in ascending-A-entry order — bitwise-identical to the unblocked
/// merge. Serial.
size_t SpGemmRowBlocked(const uint32_t* a_cols, const float* a_vals,
                        size_t a_len, const size_t* b_row_ptr,
                        const uint32_t* b_col_idx, const float* b_vals,
                        size_t b_cols, float* accumulator, uint8_t* is_touched,
                        uint32_t* touched, size_t* cursors);

// -- Fused elementwise kernels ----------------------------------------------
// All serial over [0, n); callers chunk via ParallelFor.

void EwAdd(const float* a, const float* b, float* out, size_t n);
void EwSub(const float* a, const float* b, float* out, size_t n);
void EwMul(const float* a, const float* b, float* out, size_t n);
void EwScale(const float* a, float s, float* out, size_t n);
void EwAddInPlace(float* a, const float* b, size_t n);
void EwSubInPlace(float* a, const float* b, size_t n);
void EwScaleInPlace(float* a, float s, size_t n);
/// y += alpha * x.
void EwAxpy(float* y, float alpha, const float* x, size_t n);

/// y = max(x, 0), matching `v > 0 ? v : 0` lane-exactly (NaN -> 0).
void ReluForward(const float* x, float* y, size_t n);
/// dx = (x > 0) ? g : 0 — bitwise the mask the naive backward applied
/// (`if (x <= 0) dx = 0` with NaN x keeping g).
void ReluBackward(const float* g, const float* x, float* dx, size_t n);
/// y = x >= 0 ? x : alpha * x.
void LeakyReluForward(const float* x, float alpha, float* y, size_t n);
/// dx = x < 0 ? alpha * g : g.
void LeakyReluBackward(const float* g, const float* x, float alpha,
                       float* dx, size_t n);

/// y[r][j] = x[r][j] + bias[j] for rows [row_begin, row_end).
void AddRowVector(const float* x, const float* bias, float* y, size_t cols,
                  size_t row_begin, size_t row_end);
/// out[j] += sum_r g[r][j], float accumulation in ascending r order
/// (the bias-gradient column sum; bitwise the ones^T @ g chain).
void ColSumAccumulate(const float* g, size_t rows, size_t cols, float* out);

/// One fused Adam step over [0, n): replicates the scalar update
///   g = grad + wd * value
///   m = beta1 * m + (1 - beta1) * g
///   v = beta2 * v + ((1 - beta2) * g) * g
///   value -= (lr * (m / bias1)) / (sqrt(v / bias2) + eps)
/// operation-for-operation (div and sqrt are correctly rounded, so the
/// vector path is bitwise the scalar path).
void AdamUpdate(float* value, const float* grad, float* m, float* v, size_t n,
                float lr, float weight_decay, float beta1, float beta2,
                float bias1, float bias2, float eps);

}  // namespace lasagne::kernels

#endif  // LASAGNE_TENSOR_KERNELS_H_
