#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/parallel_config.h"
#include "common/simd.h"

namespace lasagne::kernels {

namespace {

// Accumulator registers per output-column tile.
constexpr size_t kAcc = kColTile / simd::kWidth;
static_assert(kColTile % simd::kWidth == 0,
              "tile width must be a whole number of vector registers");

}  // namespace

// -- Packing -----------------------------------------------------------------

size_t PackedBSize(size_t k_dim, size_t n_dim) {
  return (n_dim / kColTile) * k_dim * kColTile;
}

void PackB(const float* b, size_t k_dim, size_t n_dim, float* packed) {
  const size_t full_tiles = n_dim / kColTile;
  for (size_t t = 0; t < full_tiles; ++t) {
    float* panel = packed + t * k_dim * kColTile;
    const float* src = b + t * kColTile;
    for (size_t kk = 0; kk < k_dim; ++kk) {
      const float* row = src + kk * n_dim;
      float* dst = panel + kk * kColTile;
      for (size_t c = 0; c < kColTile; ++c) dst[c] = row[c];
    }
  }
}

void PackBTransposed(const float* b, size_t n_dim, size_t k_dim,
                     float* packed) {
  const size_t full_tiles = n_dim / kColTile;
  for (size_t t = 0; t < full_tiles; ++t) {
    float* panel = packed + t * k_dim * kColTile;
    for (size_t jr = 0; jr < kColTile; ++jr) {
      const float* row = b + (t * kColTile + jr) * k_dim;
      for (size_t kk = 0; kk < k_dim; ++kk) {
        panel[kk * kColTile + jr] = row[kk];
      }
    }
  }
}

// -- Dense GEMM --------------------------------------------------------------

void GemmRowsNN(const float* a, size_t k_dim, size_t n_dim, const float* b,
                const float* b_packed, float* out, size_t row_begin,
                size_t row_end) {
  const size_t full_tiles = n_dim / kColTile;
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a + i * k_dim;
    float* out_row = out + i * n_dim;
    for (size_t t = 0; t < full_tiles; ++t) {
      const float* panel = b_packed + t * k_dim * kColTile;
      simd::Vec acc[kAcc];
      for (size_t c = 0; c < kAcc; ++c) acc[c] = simd::Zero();
      for (size_t kk = 0; kk < k_dim; ++kk) {
        const float a_ik = a_row[kk];
        if (a_ik == 0.0f) continue;
        const simd::Vec av = simd::Broadcast(a_ik);
        const float* prow = panel + kk * kColTile;
        for (size_t c = 0; c < kAcc; ++c) {
          acc[c] = simd::MulAdd(av, simd::Load(prow + c * simd::kWidth),
                                acc[c]);
        }
      }
      float* dst = out_row + t * kColTile;
      for (size_t c = 0; c < kAcc; ++c) {
        simd::Store(dst + c * simd::kWidth, acc[c]);
      }
    }
    for (size_t j = full_tiles * kColTile; j < n_dim; ++j) {
      float acc = 0.0f;
      for (size_t kk = 0; kk < k_dim; ++kk) {
        const float a_ik = a_row[kk];
        if (a_ik == 0.0f) continue;
        acc += a_ik * b[kk * n_dim + j];
      }
      out_row[j] = acc;
    }
  }
}

void GemmRowsNT(const float* a, size_t k_dim, size_t n_dim, const float* b,
                const float* b_packed, float* out, size_t row_begin,
                size_t row_end) {
  const size_t full_tiles = n_dim / kColTile;
  for (size_t i = row_begin; i < row_end; ++i) {
    const float* a_row = a + i * k_dim;
    float* out_row = out + i * n_dim;
    for (size_t t = 0; t < full_tiles; ++t) {
      const float* panel = b_packed + t * k_dim * kColTile;
      simd::Vec acc[kAcc];
      for (size_t c = 0; c < kAcc; ++c) acc[c] = simd::Zero();
      for (size_t kk = 0; kk < k_dim; ++kk) {
        const simd::Vec av = simd::Broadcast(a_row[kk]);
        const float* prow = panel + kk * kColTile;
        for (size_t c = 0; c < kAcc; ++c) {
          acc[c] = simd::MulAdd(av, simd::Load(prow + c * simd::kWidth),
                                acc[c]);
        }
      }
      float* dst = out_row + t * kColTile;
      for (size_t c = 0; c < kAcc; ++c) {
        simd::Store(dst + c * simd::kWidth, acc[c]);
      }
    }
    for (size_t j = full_tiles * kColTile; j < n_dim; ++j) {
      const float* b_row = b + j * k_dim;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k_dim; ++kk) acc += a_row[kk] * b_row[kk];
      out_row[j] = acc;
    }
  }
}

void GemmColsTN(const float* a, size_t a_cols, const float* b, size_t n_dim,
                size_t m_rows, float* out, size_t col_begin, size_t col_end) {
  const size_t vec_n = (n_dim / simd::kWidth) * simd::kWidth;
  for (size_t r = 0; r < m_rows; ++r) {
    const float* a_row = a + r * a_cols;
    const float* b_row = b + r * n_dim;
    for (size_t i = col_begin; i < col_end; ++i) {
      const float a_ri = a_row[i];
      if (a_ri == 0.0f) continue;
      const simd::Vec av = simd::Broadcast(a_ri);
      float* out_row = out + i * n_dim;
      size_t j = 0;
      for (; j < vec_n; j += simd::kWidth) {
        simd::Store(out_row + j,
                    simd::MulAdd(av, simd::Load(b_row + j),
                                 simd::Load(out_row + j)));
      }
      for (; j < n_dim; ++j) out_row[j] += a_ri * b_row[j];
    }
  }
}

// -- CSR sparse-dense --------------------------------------------------------

void SpmmRows(const size_t* row_ptr, const uint32_t* col_idx,
              const float* values, const float* dense, size_t d, float* out,
              size_t row_begin, size_t row_end) {
  const size_t full_tiles = d / kColTile;
  for (size_t r = row_begin; r < row_end; ++r) {
    float* out_row = out + r * d;
    const size_t k_begin = row_ptr[r];
    const size_t k_end = row_ptr[r + 1];
    for (size_t t = 0; t < full_tiles; ++t) {
      const size_t off = t * kColTile;
      simd::Vec acc[kAcc];
      for (size_t c = 0; c < kAcc; ++c) acc[c] = simd::Zero();
      for (size_t k = k_begin; k < k_end; ++k) {
        const simd::Vec vv = simd::Broadcast(values[k]);
        const float* in_row = dense + col_idx[k] * d + off;
        for (size_t c = 0; c < kAcc; ++c) {
          acc[c] = simd::MulAdd(vv, simd::Load(in_row + c * simd::kWidth),
                                acc[c]);
        }
      }
      float* dst = out_row + off;
      for (size_t c = 0; c < kAcc; ++c) {
        simd::Store(dst + c * simd::kWidth, acc[c]);
      }
    }
    for (size_t j = full_tiles * kColTile; j < d; ++j) {
      float acc = 0.0f;
      for (size_t k = k_begin; k < k_end; ++k) {
        acc += values[k] * dense[col_idx[k] * d + j];
      }
      out_row[j] = acc;
    }
  }
}

void EdgeAttentionForward(const size_t* row_ptr, const uint32_t* src,
                          const float* dst_scores, const float* src_scores,
                          const float* edge_bias, float slope,
                          const float* features, size_t d, float* probs,
                          float* out, size_t row_begin, size_t row_end) {
  const size_t full_tiles = d / kColTile;
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t k_begin = row_ptr[i];
    const size_t k_end = row_ptr[i + 1];
    float* out_row = out + i * d;
    if (k_begin == k_end) {
      // Eager EdgeWeightedAggregate zero-initializes and never touches
      // isolated destinations; out may be uninitialized here.
      for (size_t j = 0; j < d; ++j) out_row[j] = 0.0f;
      continue;
    }
    // Raw score + bias + LeakyReLU, stored in the row's probs slice —
    // the exact GatherEdgeScores/AddEdgeBias/LeakyRelu float sequence.
    const float dst_i = dst_scores[i];
    for (size_t k = k_begin; k < k_end; ++k) {
      float t = dst_i + src_scores[src[k]];
      if (edge_bias != nullptr) t += edge_bias[k];
      probs[k] = t >= 0.0f ? t : slope * t;
    }
    // Masked softmax over the row, matching EdgeSoftmax: ascending
    // std::max chain, float exp, double total in ascending k, one
    // rounded multiply by 1/total per edge.
    float max_v = probs[k_begin];
    for (size_t k = k_begin + 1; k < k_end; ++k) {
      max_v = std::max(max_v, probs[k]);
    }
    double total = 0.0;
    for (size_t k = k_begin; k < k_end; ++k) {
      probs[k] = std::exp(probs[k] - max_v);
      total += probs[k];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (size_t k = k_begin; k < k_end; ++k) probs[k] *= inv;
    // Weighted aggregation, register-blocked like SpmmRows: kColTile
    // output columns per pass, ascending-k accumulation per element —
    // the same 0 + w0*f0 + w1*f1 + ... chain as the eager zero-init
    // accumulate.
    for (size_t t = 0; t < full_tiles; ++t) {
      const size_t off = t * kColTile;
      simd::Vec acc[kAcc];
      for (size_t c = 0; c < kAcc; ++c) acc[c] = simd::Zero();
      for (size_t k = k_begin; k < k_end; ++k) {
        const simd::Vec wv = simd::Broadcast(probs[k]);
        const float* f_row = features + src[k] * d + off;
        for (size_t c = 0; c < kAcc; ++c) {
          acc[c] = simd::MulAdd(wv, simd::Load(f_row + c * simd::kWidth),
                                acc[c]);
        }
      }
      float* dst = out_row + off;
      for (size_t c = 0; c < kAcc; ++c) {
        simd::Store(dst + c * simd::kWidth, acc[c]);
      }
    }
    for (size_t j = full_tiles * kColTile; j < d; ++j) {
      float acc = 0.0f;
      for (size_t k = k_begin; k < k_end; ++k) {
        acc += probs[k] * features[src[k] * d + j];
      }
      out_row[j] = acc;
    }
  }
}

void EdgeAttentionBackward(const size_t* row_ptr, const uint32_t* src,
                           size_t num_nodes, const float* dst_scores,
                           const float* src_scores, const float* edge_bias,
                           float slope, const float* features, size_t d,
                           const float* probs, const float* g, float* d_dst,
                           float* d_src, float* d_feat,
                           float* edge_scratch) {
  const size_t num_edges = row_ptr[num_nodes];
  // Aggregate backward, weight half: dw_k = <g_i, f_src(k)> with the
  // eager double accumulator over ascending j.
  for (size_t i = 0; i < num_nodes; ++i) {
    const float* g_row = g + i * d;
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float* f_row = features + src[k] * d;
      double acc = 0.0;
      for (size_t j = 0; j < d; ++j) acc += g_row[j] * f_row[j];
      edge_scratch[k] = static_cast<float>(acc);
    }
  }
  // Softmax backward in place: de_k = p_k * (dw_k - <dw, p>_row).
  for (size_t i = 0; i < num_nodes; ++i) {
    const size_t begin = row_ptr[i];
    const size_t end = row_ptr[i + 1];
    double dot = 0.0;
    for (size_t k = begin; k < end; ++k) {
      dot += static_cast<double>(edge_scratch[k]) * probs[k];
    }
    for (size_t k = begin; k < end; ++k) {
      edge_scratch[k] =
          probs[k] * (edge_scratch[k] - static_cast<float>(dot));
    }
  }
  // LeakyReLU backward: the raw pre-activation score is recomputed from
  // the inputs (float add chain is deterministic) for the sign test.
  for (size_t i = 0; i < num_nodes; ++i) {
    const float dst_i = dst_scores[i];
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      float raw = dst_i + src_scores[src[k]];
      if (edge_bias != nullptr) raw += edge_bias[k];
      if (raw < 0.0f) edge_scratch[k] = edge_scratch[k] * slope;
    }
  }
  // Gather backward: dd_i is the eager double row sum; d_src is the
  // eager global ascending-k float scatter. (AddEdgeBias backward is
  // the identity, so the bias leg adds nothing here.)
  for (size_t i = 0; i < num_nodes; ++i) {
    double acc = 0.0;
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      acc += edge_scratch[k];
    }
    d_dst[i] = static_cast<float>(acc);
  }
  for (size_t k = 0; k < num_edges; ++k) {
    d_src[src[k]] += edge_scratch[k];
  }
  // Aggregate backward, feature half: ascending-i, ascending-k scatter
  // of p_k * g_i into the source rows — the eager order exactly.
  for (size_t i = 0; i < num_nodes; ++i) {
    const float* g_row = g + i * d;
    for (size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const float w = probs[k];
      float* df_row = d_feat + src[k] * d;
      for (size_t j = 0; j < d; ++j) df_row[j] += w * g_row[j];
    }
  }
}

size_t SpGemmRowBlocked(const uint32_t* a_cols, const float* a_vals,
                        size_t a_len, const size_t* b_row_ptr,
                        const uint32_t* b_col_idx, const float* b_vals,
                        size_t b_cols, float* accumulator, uint8_t* is_touched,
                        uint32_t* touched, size_t* cursors) {
  if (a_len == 0) return 0;
  // One rolling cursor per A entry over its (sorted) B row; the column
  // span of the row bounds the block sweep.
  uint32_t min_col = static_cast<uint32_t>(b_cols);
  uint32_t max_col = 0;
  for (size_t t = 0; t < a_len; ++t) {
    const size_t begin = b_row_ptr[a_cols[t]];
    const size_t end = b_row_ptr[a_cols[t] + 1];
    cursors[t] = begin;
    if (begin == end) continue;
    min_col = std::min(min_col, b_col_idx[begin]);
    max_col = std::max(max_col, b_col_idx[end - 1]);
  }
  if (min_col >= b_cols) return 0;  // every contributing B row is empty
  size_t count = 0;
  const size_t first_block = (min_col / kSpGemmColBlock) * kSpGemmColBlock;
  for (size_t block_begin = first_block; block_begin <= max_col;
       block_begin += kSpGemmColBlock) {
    const uint32_t block_end = static_cast<uint32_t>(
        std::min(b_cols, block_begin + kSpGemmColBlock));
    for (size_t t = 0; t < a_len; ++t) {
      const float v = a_vals[t];
      const size_t row_end = b_row_ptr[a_cols[t] + 1];
      size_t k = cursors[t];
      // Within the block, entries of this B row are consumed in
      // ascending column order; across A entries t ascends, so each
      // output column still accumulates its products in the unblocked
      // merge's ascending-t order.
      while (k < row_end && b_col_idx[k] < block_end) {
        const uint32_t c = b_col_idx[k];
        if (!is_touched[c]) {
          is_touched[c] = 1;
          touched[count++] = c;
        }
        accumulator[c] += v * b_vals[k];
        ++k;
      }
      cursors[t] = k;
    }
  }
  return count;
}

void SpmmTransposedCols(const size_t* row_ptr, const uint32_t* col_idx,
                        const float* values, size_t rows, const float* dense,
                        size_t d, float* out, size_t col_begin,
                        size_t col_end) {
  const size_t width = col_end - col_begin;
  const size_t vec_w = (width / simd::kWidth) * simd::kWidth;
  for (size_t r = 0; r < rows; ++r) {
    const float* in_row = dense + r * d + col_begin;
    for (size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const float v = values[k];
      const simd::Vec vv = simd::Broadcast(v);
      float* out_row = out + col_idx[k] * d + col_begin;
      size_t j = 0;
      for (; j < vec_w; j += simd::kWidth) {
        simd::Store(out_row + j,
                    simd::MulAdd(vv, simd::Load(in_row + j),
                                 simd::Load(out_row + j)));
      }
      for (; j < width; ++j) out_row[j] += v * in_row[j];
    }
  }
}

// -- Fused elementwise -------------------------------------------------------

namespace {

// Shared shape of every elementwise kernel: vector main loop plus a
// scalar tail computing the same per-lane expression.
template <typename VecFn, typename ScalarFn>
inline void EwLoop(size_t n, VecFn vec_fn, ScalarFn scalar_fn) {
  const size_t vec_n = (n / simd::kWidth) * simd::kWidth;
  size_t i = 0;
  for (; i < vec_n; i += simd::kWidth) vec_fn(i);
  for (; i < n; ++i) scalar_fn(i);
}

}  // namespace

void EwAdd(const float* a, const float* b, float* out, size_t n) {
  EwLoop(
      n,
      [&](size_t i) {
        simd::Store(out + i, simd::Add(simd::Load(a + i), simd::Load(b + i)));
      },
      [&](size_t i) { out[i] = a[i] + b[i]; });
}

void EwSub(const float* a, const float* b, float* out, size_t n) {
  EwLoop(
      n,
      [&](size_t i) {
        simd::Store(out + i, simd::Sub(simd::Load(a + i), simd::Load(b + i)));
      },
      [&](size_t i) { out[i] = a[i] - b[i]; });
}

void EwMul(const float* a, const float* b, float* out, size_t n) {
  EwLoop(
      n,
      [&](size_t i) {
        simd::Store(out + i, simd::Mul(simd::Load(a + i), simd::Load(b + i)));
      },
      [&](size_t i) { out[i] = a[i] * b[i]; });
}

void EwScale(const float* a, float s, float* out, size_t n) {
  const simd::Vec sv = simd::Broadcast(s);
  EwLoop(
      n,
      [&](size_t i) { simd::Store(out + i, simd::Mul(simd::Load(a + i), sv)); },
      [&](size_t i) { out[i] = a[i] * s; });
}

void EwAddInPlace(float* a, const float* b, size_t n) { EwAdd(a, b, a, n); }

void EwSubInPlace(float* a, const float* b, size_t n) { EwSub(a, b, a, n); }

void EwScaleInPlace(float* a, float s, size_t n) { EwScale(a, s, a, n); }

void EwAxpy(float* y, float alpha, const float* x, size_t n) {
  const simd::Vec av = simd::Broadcast(alpha);
  EwLoop(
      n,
      [&](size_t i) {
        simd::Store(y + i,
                    simd::MulAdd(av, simd::Load(x + i), simd::Load(y + i)));
      },
      [&](size_t i) { y[i] += alpha * x[i]; });
}

void ReluForward(const float* x, float* y, size_t n) {
  const simd::Vec zero = simd::Zero();
  EwLoop(
      n,
      // maxps(x, 0) returns 0 for NaN and -0 lanes — exactly the
      // scalar `v > 0 ? v : 0`.
      [&](size_t i) { simd::Store(y + i, simd::Max(simd::Load(x + i), zero)); },
      [&](size_t i) { y[i] = x[i] > 0.0f ? x[i] : 0.0f; });
}

void ReluBackward(const float* g, const float* x, float* dx, size_t n) {
  const simd::Vec zero = simd::Zero();
  EwLoop(
      n,
      // Naive backward: dx = g, then zeroed where x <= 0 (ordered:
      // NaN x keeps g). Equivalent mask: g & ~(x <= 0).
      [&](size_t i) {
        simd::Store(dx + i, simd::AndNot(simd::CmpLe(simd::Load(x + i), zero),
                                         simd::Load(g + i)));
      },
      [&](size_t i) { dx[i] = x[i] <= 0.0f ? 0.0f : g[i]; });
}

void LeakyReluForward(const float* x, float alpha, float* y, size_t n) {
  const simd::Vec zero = simd::Zero();
  const simd::Vec av = simd::Broadcast(alpha);
  EwLoop(
      n,
      [&](size_t i) {
        const simd::Vec xv = simd::Load(x + i);
        simd::Store(y + i, simd::Select(simd::CmpGe(xv, zero), xv,
                                        simd::Mul(av, xv)));
      },
      [&](size_t i) { y[i] = x[i] >= 0.0f ? x[i] : alpha * x[i]; });
}

void LeakyReluBackward(const float* g, const float* x, float alpha, float* dx,
                       size_t n) {
  const simd::Vec zero = simd::Zero();
  const simd::Vec av = simd::Broadcast(alpha);
  EwLoop(
      n,
      // Naive backward: dx = g, then scaled by alpha where x < 0
      // (ordered: NaN x keeps g).
      [&](size_t i) {
        const simd::Vec gv = simd::Load(g + i);
        simd::Store(dx + i, simd::Select(simd::CmpLt(simd::Load(x + i), zero),
                                         simd::Mul(gv, av), gv));
      },
      [&](size_t i) { dx[i] = x[i] < 0.0f ? g[i] * alpha : g[i]; });
}

void AddRowVector(const float* x, const float* bias, float* y, size_t cols,
                  size_t row_begin, size_t row_end) {
  for (size_t r = row_begin; r < row_end; ++r) {
    EwAdd(x + r * cols, bias, y + r * cols, cols);
  }
}

void ColSumAccumulate(const float* g, size_t rows, size_t cols, float* out) {
  const size_t vec_n = (cols / simd::kWidth) * simd::kWidth;
  for (size_t r = 0; r < rows; ++r) {
    const float* g_row = g + r * cols;
    size_t j = 0;
    for (; j < vec_n; j += simd::kWidth) {
      simd::Store(out + j, simd::Add(simd::Load(out + j),
                                     simd::Load(g_row + j)));
    }
    for (; j < cols; ++j) out[j] += g_row[j];
  }
}

void AdamUpdate(float* value, const float* grad, float* m, float* v, size_t n,
                float lr, float weight_decay, float beta1, float beta2,
                float bias1, float bias2, float eps) {
  const simd::Vec wd_v = simd::Broadcast(weight_decay);
  const simd::Vec b1_v = simd::Broadcast(beta1);
  const simd::Vec b2_v = simd::Broadcast(beta2);
  const simd::Vec c1_v = simd::Broadcast(1.0f - beta1);
  const simd::Vec c2_v = simd::Broadcast(1.0f - beta2);
  const simd::Vec bias1_v = simd::Broadcast(bias1);
  const simd::Vec bias2_v = simd::Broadcast(bias2);
  const simd::Vec lr_v = simd::Broadcast(lr);
  const simd::Vec eps_v = simd::Broadcast(eps);
  EwLoop(
      n,
      [&](size_t i) {
        const simd::Vec g =
            simd::Add(simd::Load(grad + i), simd::Mul(wd_v, simd::Load(value + i)));
        const simd::Vec m_new =
            simd::Add(simd::Mul(b1_v, simd::Load(m + i)), simd::Mul(c1_v, g));
        // ((1 - beta2) * g) * g — the naive loop's left-assoc product.
        const simd::Vec v_new = simd::Add(simd::Mul(b2_v, simd::Load(v + i)),
                                          simd::Mul(simd::Mul(c2_v, g), g));
        simd::Store(m + i, m_new);
        simd::Store(v + i, v_new);
        const simd::Vec m_hat = simd::Div(m_new, bias1_v);
        const simd::Vec v_hat = simd::Div(v_new, bias2_v);
        const simd::Vec step =
            simd::Div(simd::Mul(lr_v, m_hat),
                      simd::Add(simd::Sqrt(v_hat), eps_v));
        simd::Store(value + i, simd::Sub(simd::Load(value + i), step));
      },
      [&](size_t i) {
        const float g = grad[i] + weight_decay * value[i];
        m[i] = beta1 * m[i] + (1.0f - beta1) * g;
        v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
        const float m_hat = m[i] / bias1;
        const float v_hat = v[i] / bias2;
        value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
      });
}

// -- Fused plan kernels ------------------------------------------------------
// Compute-then-epilogue over the caller's row range: the reduction
// kernel runs unchanged (same ascending-k accumulation per element),
// then the elementwise tail reuses the output rows while they are
// still cache-resident. Elementwise epilogues are partition-
// independent, so these match the unfused op pair bitwise under any
// ParallelFor split.

void GemmRowsNNBias(const float* a, size_t k_dim, size_t n_dim,
                    const float* b, const float* b_packed, const float* bias,
                    float* out, size_t row_begin, size_t row_end) {
  GemmRowsNN(a, k_dim, n_dim, b, b_packed, out, row_begin, row_end);
  for (size_t i = row_begin; i < row_end; ++i) {
    EwAddInPlace(out + i * n_dim, bias, n_dim);
  }
}

void GemmRowsNNBiasRelu(const float* a, size_t k_dim, size_t n_dim,
                        const float* b, const float* b_packed,
                        const float* bias, float* out, size_t row_begin,
                        size_t row_end) {
  GemmRowsNN(a, k_dim, n_dim, b, b_packed, out, row_begin, row_end);
  for (size_t i = row_begin; i < row_end; ++i) {
    float* row = out + i * n_dim;
    EwAddInPlace(row, bias, n_dim);
    ReluForward(row, row, n_dim);
  }
}

void GemmRowsNNBiasLeakyRelu(const float* a, size_t k_dim, size_t n_dim,
                             const float* b, const float* b_packed,
                             const float* bias, float alpha, float* out,
                             size_t row_begin, size_t row_end) {
  GemmRowsNN(a, k_dim, n_dim, b, b_packed, out, row_begin, row_end);
  for (size_t i = row_begin; i < row_end; ++i) {
    float* row = out + i * n_dim;
    EwAddInPlace(row, bias, n_dim);
    LeakyReluForward(row, alpha, row, n_dim);
  }
}

void SpmmRowsRelu(const size_t* row_ptr, const uint32_t* col_idx,
                  const float* values, const float* dense, size_t d,
                  float* out, size_t row_begin, size_t row_end) {
  SpmmRows(row_ptr, col_idx, values, dense, d, out, row_begin, row_end);
  ReluForward(out + row_begin * d, out + row_begin * d,
              (row_end - row_begin) * d);
}

void SpmmRowsLeakyRelu(const size_t* row_ptr, const uint32_t* col_idx,
                       const float* values, const float* dense, size_t d,
                       float alpha, float* out, size_t row_begin,
                       size_t row_end) {
  SpmmRows(row_ptr, col_idx, values, dense, d, out, row_begin, row_end);
  LeakyReluForward(out + row_begin * d, alpha, out + row_begin * d,
                   (row_end - row_begin) * d);
}

void EwAddRelu(const float* a, const float* b, float* out, size_t n) {
  const simd::Vec zero = simd::Zero();
  EwLoop(
      n,
      [&](size_t i) {
        simd::Store(out + i, simd::Max(simd::Add(simd::Load(a + i),
                                                 simd::Load(b + i)),
                                       zero));
      },
      [&](size_t i) {
        const float v = a[i] + b[i];
        out[i] = v > 0.0f ? v : 0.0f;
      });
}

}  // namespace lasagne::kernels
