#include "tensor/rng.h"

#include <cmath>
#include <numeric>

#include "common/check.h"

namespace lasagne {

uint64_t Rng::NextUint64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::Uniform() {
  // 53 random bits into the mantissa: uniform on [0, 1).
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) {
  LASAGNE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  LASAGNE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  LASAGNE_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < cumulative) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  LASAGNE_CHECK_LE(k, n);
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace lasagne
