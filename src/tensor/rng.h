#ifndef LASAGNE_TENSOR_RNG_H_
#define LASAGNE_TENSOR_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lasagne {

/// Complete snapshot of an `Rng`'s internal state, used by the
/// checkpointing layer so a resumed training run replays the exact
/// random stream it would have seen uninterrupted.
struct RngState {
  uint64_t state = 0;
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic pseudo-random number generator (SplitMix64 core).
///
/// All randomness in the library flows through explicit `Rng` instances
/// seeded by the caller, so every experiment is reproducible. SplitMix64
/// passes BigCrush, has a single 64-bit word of state, and is cheap enough
/// for per-edge sampling in hot loops.
class Rng {
 public:
  /// Creates a generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (caches the second deviate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; requires a positive total.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) without replacement
  /// (reservoir when k << n would be overkill; partial Fisher-Yates).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent generator; handy for giving each repeat or
  /// each worker its own stream.
  Rng Split();

  /// Captures the full generator state for checkpointing.
  RngState SaveState() const {
    return RngState{state_, has_cached_normal_, cached_normal_};
  }

  /// Restores a state captured by SaveState; the stream continues
  /// bitwise-identically from the capture point.
  void RestoreState(const RngState& s) {
    state_ = s.state;
    has_cached_normal_ = s.has_cached_normal;
    cached_normal_ = s.cached_normal;
  }

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace lasagne

#endif  // LASAGNE_TENSOR_RNG_H_
