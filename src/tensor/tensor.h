#ifndef LASAGNE_TENSOR_TENSOR_H_
#define LASAGNE_TENSOR_TENSOR_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/buffer_pool.h"
#include "tensor/rng.h"

namespace lasagne {

/// Dense row-major float32 matrix.
///
/// `Tensor` is the value type that flows through the whole library: node
/// feature matrices, hidden representations, weight matrices and
/// gradients. It is intentionally 2-D only (an `n`-vector is an `n x 1`
/// tensor); graph learning on this substrate never needs higher rank.
/// Copyable and movable; copies are deep. Storage is a 64-byte-aligned
/// buffer checked out of BufferPool (docs/KERNELS.md), so destroying a
/// tensor recycles its memory for the next same-sized allocation.
class Tensor {
 public:
  /// Empty 0x0 tensor.
  Tensor() : rows_(0), cols_(0) {}

  /// Zero-initialized `rows x cols` tensor.
  Tensor(size_t rows, size_t cols);

  /// Tensor with explicit contents (row-major, size must match).
  Tensor(size_t rows, size_t cols, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  // -- Factories -----------------------------------------------------------

  /// All-zeros.
  static Tensor Zeros(size_t rows, size_t cols);
  /// Uninitialized contents (pool-backed, no zero-fill). Only for
  /// callers that overwrite every element before reading any.
  static Tensor Uninitialized(size_t rows, size_t cols);
  /// All-ones.
  static Tensor Ones(size_t rows, size_t cols);
  /// Every entry `value`.
  static Tensor Full(size_t rows, size_t cols, float value);
  /// Identity matrix.
  static Tensor Identity(size_t n);
  /// IID uniform entries in [lo, hi).
  static Tensor Uniform(size_t rows, size_t cols, float lo, float hi,
                        Rng& rng);
  /// IID normal entries.
  static Tensor Normal(size_t rows, size_t cols, float mean, float stddev,
                       Rng& rng);
  /// Glorot/Xavier uniform initialization: U(-a, a), a = sqrt(6/(in+out)).
  static Tensor GlorotUniform(size_t in_dim, size_t out_dim, Rng& rng);
  /// Row vector (1 x n) from values.
  static Tensor RowVector(const std::vector<float>& values);
  /// Column vector (n x 1) from values.
  static Tensor ColumnVector(const std::vector<float>& values);

  // -- Shape and element access --------------------------------------------

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }
  bool empty() const { return rows_ * cols_ == 0; }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& operator()(size_t r, size_t c) { return buf_.data()[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const {
    return buf_.data()[r * cols_ + c];
  }

  /// Checked element access (aborts on out-of-range).
  float At(size_t r, size_t c) const;

  float* data() { return buf_.data(); }
  const float* data() const { return buf_.data(); }
  float* RowPtr(size_t r) { return buf_.data() + r * cols_; }
  const float* RowPtr(size_t r) const { return buf_.data() + r * cols_; }

  // -- Elementwise / scalar ops (allocate the result) -----------------------

  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  /// Hadamard (elementwise) product.
  Tensor operator*(const Tensor& other) const;
  Tensor operator*(float scalar) const;
  Tensor operator/(float scalar) const;

  Tensor& operator+=(const Tensor& other);
  Tensor& operator-=(const Tensor& other);
  Tensor& operator*=(float scalar);

  /// `this + alpha * other`, fused.
  void Axpy(float alpha, const Tensor& other);

  /// Applies `fn` to every entry, returning a new tensor.
  Tensor Map(const std::function<float(float)>& fn) const;

  // -- Linear algebra --------------------------------------------------------

  /// Dense matrix product `this (r x k) * other (k x c)`.
  Tensor MatMul(const Tensor& other) const;
  /// `this^T * other` without materializing the transpose.
  Tensor TransposedMatMul(const Tensor& other) const;
  /// `this * other^T` without materializing the transpose.
  Tensor MatMulTransposed(const Tensor& other) const;
  /// Materialized transpose.
  Tensor Transpose() const;

  // -- Reductions ------------------------------------------------------------

  float Sum() const;
  float Mean() const;
  float Min() const;
  float Max() const;
  /// Frobenius norm.
  float Norm() const;
  /// Sum of squares (== Norm()^2 without the sqrt).
  float SquaredNorm() const;
  /// Per-row sum, returned as (rows x 1).
  Tensor RowSum() const;
  /// Per-column sum, returned as (1 x cols).
  Tensor ColSum() const;
  /// Per-row mean, returned as (rows x 1).
  Tensor RowMean() const;
  /// Index of the max entry in each row.
  std::vector<size_t> ArgMaxPerRow() const;

  // -- Utilities ---------------------------------------------------------------

  void Fill(float value);
  void SetZero() { Fill(0.0f); }
  /// Extracts rows given by `indices` (gather).
  Tensor GatherRows(const std::vector<size_t>& indices) const;
  /// Returns a copy of row r as (1 x cols).
  Tensor Row(size_t r) const;
  /// True when all entries are finite.
  bool AllFinite() const;
  /// Max |a - b| over entries; shapes must match.
  float MaxAbsDiff(const Tensor& other) const;
  /// Human-readable summary ("Tensor(3x4, mean=..., norm=...)").
  std::string DebugString() const;

 private:
  // Tag dispatch for the no-zero-fill constructor behind Uninitialized.
  struct UninitTag {};
  Tensor(size_t rows, size_t cols, UninitTag);

  size_t rows_;
  size_t cols_;
  internal::PoolBuffer buf_;
};

/// Scalar * tensor.
Tensor operator*(float scalar, const Tensor& tensor);

}  // namespace lasagne

#endif  // LASAGNE_TENSOR_TENSOR_H_
