#include "sampling/samplers.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "graph/algorithms.h"

namespace lasagne {

CsrMatrix SampleNeighborOperator(const Graph& graph, size_t fanout,
                                 Rng& rng) {
  LASAGNE_CHECK_GT(fanout, 0u);
  std::vector<Triplet> triplets;
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    const size_t deg = graph.Degree(u);
    if (deg == 0) continue;
    if (deg <= fanout) {
      const float w = 1.0f / static_cast<float>(deg);
      for (const uint32_t* it = graph.NeighborsBegin(u);
           it != graph.NeighborsEnd(u); ++it) {
        triplets.push_back({u, *it, w});
      }
    } else {
      std::vector<size_t> picks = rng.SampleWithoutReplacement(deg, fanout);
      const float w = 1.0f / static_cast<float>(fanout);
      const uint32_t* begin = graph.NeighborsBegin(u);
      for (size_t p : picks) triplets.push_back({u, begin[p], w});
    }
  }
  return CsrMatrix::FromTriplets(graph.num_nodes(), graph.num_nodes(),
                                 std::move(triplets));
}

CsrMatrix FullNeighborOperator(const Graph& graph) {
  std::vector<Triplet> triplets;
  for (uint32_t u = 0; u < graph.num_nodes(); ++u) {
    const size_t deg = graph.Degree(u);
    if (deg == 0) continue;
    const float w = 1.0f / static_cast<float>(deg);
    for (const uint32_t* it = graph.NeighborsBegin(u);
         it != graph.NeighborsEnd(u); ++it) {
      triplets.push_back({u, *it, w});
    }
  }
  return CsrMatrix::FromTriplets(graph.num_nodes(), graph.num_nodes(),
                                 std::move(triplets));
}

std::vector<double> ColumnImportance(const CsrMatrix& a_hat) {
  std::vector<double> importance(a_hat.cols(), 0.0);
  for (size_t r = 0; r < a_hat.rows(); ++r) {
    for (size_t k = a_hat.row_ptr()[r]; k < a_hat.row_ptr()[r + 1]; ++k) {
      const double v = a_hat.values()[k];
      importance[a_hat.col_idx()[k]] += v * v;
    }
  }
  return importance;
}

CsrMatrix FastGcnLayerOperator(const CsrMatrix& a_hat, size_t sample_size,
                               Rng& rng) {
  LASAGNE_CHECK_GT(sample_size, 0u);
  std::vector<double> importance = ColumnImportance(a_hat);
  double total = 0.0;
  for (double v : importance) total += v;
  LASAGNE_CHECK_GT(total, 0.0);

  // Sample columns with replacement; accumulate 1/(s * q_v) factors.
  std::vector<double> factor(a_hat.cols(), 0.0);
  for (size_t s = 0; s < sample_size; ++s) {
    const size_t v = rng.Categorical(importance);
    const double q = importance[v] / total;
    factor[v] += 1.0 / (static_cast<double>(sample_size) * q);
  }
  std::vector<Triplet> triplets;
  for (size_t r = 0; r < a_hat.rows(); ++r) {
    for (size_t k = a_hat.row_ptr()[r]; k < a_hat.row_ptr()[r + 1]; ++k) {
      const uint32_t c = a_hat.col_idx()[k];
      if (factor[c] != 0.0) {
        triplets.push_back({static_cast<uint32_t>(r), c,
                            static_cast<float>(a_hat.values()[k] *
                                               factor[c])});
      }
    }
  }
  return CsrMatrix::FromTriplets(a_hat.rows(), a_hat.cols(),
                                 std::move(triplets));
}

std::vector<uint32_t> RandomWalkSubgraphNodes(const Graph& graph,
                                              size_t num_roots,
                                              size_t walk_length, Rng& rng) {
  LASAGNE_CHECK_GT(graph.num_nodes(), 0u);
  std::vector<uint32_t> nodes;
  for (size_t r = 0; r < num_roots; ++r) {
    const uint32_t root =
        static_cast<uint32_t>(rng.UniformInt(graph.num_nodes()));
    std::vector<uint32_t> walk = RandomWalk(graph, root, walk_length, rng);
    nodes.insert(nodes.end(), walk.begin(), walk.end());
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::vector<double> EstimateInclusionProbabilities(
    const Graph& graph, size_t num_roots, size_t walk_length, size_t trials,
    Rng& rng, double min_prob) {
  std::vector<double> counts(graph.num_nodes(), 0.0);
  for (size_t t = 0; t < trials; ++t) {
    for (uint32_t u :
         RandomWalkSubgraphNodes(graph, num_roots, walk_length, rng)) {
      counts[u] += 1.0;
    }
  }
  std::vector<double> probs(graph.num_nodes(), 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    probs[i] = std::max(counts[i] / static_cast<double>(trials), min_prob);
    probs[i] = std::min(probs[i], 1.0);
  }
  return probs;
}

}  // namespace lasagne
