#ifndef LASAGNE_SAMPLING_SAMPLERS_H_
#define LASAGNE_SAMPLING_SAMPLERS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"

namespace lasagne {

/// GraphSAGE-style neighbor sampling: a row-stochastic mean-aggregation
/// operator where every node keeps at most `fanout` uniformly sampled
/// neighbors (no self loop; the self path is a separate weight matrix in
/// SAGE).
CsrMatrix SampleNeighborOperator(const Graph& graph, size_t fanout,
                                 Rng& rng);

/// Full-neighborhood mean-aggregation operator (evaluation-time SAGE).
CsrMatrix FullNeighborOperator(const Graph& graph);

/// FastGCN importance-based layer sampling (Chen et al., ICLR'18):
/// samples `sample_size` columns of `a_hat` with probability
/// q(v) proportional to ||a_hat[:, v]||^2 and returns the unbiased
/// estimator  sum_{v in S} a_hat[:, v] / (s * q_v)  as an N x N operator
/// whose non-sampled columns are empty.
CsrMatrix FastGcnLayerOperator(const CsrMatrix& a_hat, size_t sample_size,
                               Rng& rng);

/// Column-norm-squared importance distribution used by FastGCN (exposed
/// for tests).
std::vector<double> ColumnImportance(const CsrMatrix& a_hat);

/// GraphSAINT random-walk sampler: unions the nodes visited by
/// `num_roots` walks of `walk_length` steps from uniformly sampled
/// roots. Returns sorted unique node ids.
std::vector<uint32_t> RandomWalkSubgraphNodes(const Graph& graph,
                                              size_t num_roots,
                                              size_t walk_length, Rng& rng);

/// Estimates per-node inclusion probabilities of the random-walk sampler
/// by Monte-Carlo over `trials` draws (GraphSAINT's loss-normalization
/// statistics). Probabilities are clamped to [min_prob, 1].
std::vector<double> EstimateInclusionProbabilities(
    const Graph& graph, size_t num_roots, size_t walk_length, size_t trials,
    Rng& rng, double min_prob = 1e-3);

}  // namespace lasagne

#endif  // LASAGNE_SAMPLING_SAMPLERS_H_
