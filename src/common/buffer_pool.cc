#include "common/buffer_pool.h"

#include <cstdlib>

#include "common/check.h"
#include "obs/metrics.h"

// Bypass the cache under ASan so reuse does not mask use-after-free of
// tensor storage (the TSan build keeps the cache: concurrent checkout
// is exactly what it should exercise).
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_BYPASS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_BYPASS 1
#endif
#endif
#ifndef LASAGNE_POOL_BYPASS
#define LASAGNE_POOL_BYPASS 0
#endif

namespace lasagne {

namespace {

constexpr size_t kAlignment = 64;

inline void CountHit() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& hits =
        obs::MetricsRegistry::Global().GetCounter("tensor.alloc.pool_hits");
    hits.Increment();
  }
}

inline void CountMiss() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& misses =
        obs::MetricsRegistry::Global().GetCounter("tensor.alloc.pool_misses");
    misses.Increment();
  }
}

float* AlignedAlloc(size_t count) {
  // Bucket capacities are powers of two >= 64 floats, so the byte size
  // is always a multiple of the alignment as aligned_alloc requires.
  void* p = std::aligned_alloc(kAlignment, count * sizeof(float));
  LASAGNE_CHECK(p != nullptr);
  return static_cast<float*>(p);
}

size_t BucketLog2(size_t capacity) {
  size_t log2 = 0;
  while ((size_t{1} << log2) < capacity) ++log2;
  return log2;
}

// Per-thread mirrors of the global hit/miss traffic this thread caused.
// Workspace-served acquires bump neither (they are invisible to the
// pool by design).
thread_local uint64_t t_thread_hits = 0;
thread_local uint64_t t_thread_misses = 0;

#if !LASAGNE_POOL_BYPASS
// Workspace installed on this thread by WorkspaceScope (null = none).
thread_local BufferPool::Workspace* t_workspace = nullptr;
#endif

}  // namespace

BufferPool& BufferPool::Global() {
  // Leaked on purpose: tensors with static storage duration may release
  // buffers during process teardown, after local statics are destroyed.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

size_t BufferPool::BucketCapacity(size_t count) {
  size_t capacity = size_t{1} << kMinBucketLog2;
  while (capacity < count) capacity <<= 1;
  return capacity;
}

float* BufferPool::Acquire(size_t count) {
  if (count == 0) return nullptr;
  const size_t capacity = BucketCapacity(count);
#if !LASAGNE_POOL_BYPASS
  const size_t bucket = BucketLog2(capacity) - kMinBucketLog2;
  LASAGNE_DCHECK(bucket < kNumBuckets);
  if (Workspace* ws = t_workspace; ws != nullptr) {
    // Workspace-served acquires bypass the pool entirely — no mutex,
    // no stats. A recording workspace tracks the request and returns
    // nullptr; a dry finalized one counts an overflow. Both fall
    // through to the global path.
    float* p = ws->AcquireChunk(bucket);
    if (p != nullptr) return p;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<float*>& list = free_lists_[bucket];
    if (!list.empty()) {
      float* p = list.back();
      list.pop_back();
      cached_bytes_.fetch_sub(capacity * sizeof(float),
                              std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      ++t_thread_hits;
      CountHit();
      return p;
    }
  }
#endif
  misses_.fetch_add(1, std::memory_order_relaxed);
  ++t_thread_misses;
  CountMiss();
  return AlignedAlloc(capacity);
}

void BufferPool::Release(float* ptr, size_t count) {
  if (ptr == nullptr) return;
  const size_t capacity = BucketCapacity(count);
  const uint64_t bytes = capacity * sizeof(float);
#if !LASAGNE_POOL_BYPASS
  const size_t bucket = BucketLog2(capacity) - kMinBucketLog2;
  LASAGNE_DCHECK(bucket < kNumBuckets);
  if (Workspace* ws = t_workspace;
      ws != nullptr && ws->ReleaseChunk(ptr, bucket)) {
    return;  // chunk returned to the workspace slab
  }
  if (cached_bytes_.load(std::memory_order_relaxed) + bytes <=
      limit_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(mutex_);
    free_lists_[bucket].push_back(ptr);
    cached_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return;
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
#endif
  std::free(ptr);
}

BufferPool::ThreadStats BufferPool::GetThreadStats() {
  ThreadStats s;
  s.hits = t_thread_hits;
  s.misses = t_thread_misses;
  return s;
}

BufferPool::Stats BufferPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.cached_bytes = cached_bytes_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

void BufferPool::Trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::vector<float*>& list : free_lists_) {
    for (float* p : list) std::free(p);
    list.clear();
    list.shrink_to_fit();
  }
  cached_bytes_.store(0, std::memory_order_relaxed);
}

void BufferPool::SetCachedBytesLimit(uint64_t bytes) {
  limit_.store(bytes, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

BufferPool::Workspace::~Workspace() { std::free(slab_); }

float* BufferPool::Workspace::AcquireChunk(size_t bucket) {
  if (!finalized_) {
    // Recording phase: track the working set, let the global pool
    // serve the request.
    if (++live_[bucket] > high_water_[bucket]) {
      high_water_[bucket] = live_[bucket];
    }
    return nullptr;
  }
  std::vector<float*>& stack = free_[bucket];
  if (stack.empty()) {
    ++overflow_;
    return nullptr;
  }
  float* p = stack.back();
  stack.pop_back();
  return p;
}

bool BufferPool::Workspace::ReleaseChunk(float* ptr, size_t bucket) {
  if (!finalized_) {
    if (live_[bucket] > 0) --live_[bucket];
    return false;  // buffer came from the global pool
  }
  if (slab_ == nullptr || ptr < slab_ || ptr >= slab_ + slab_floats_) {
    return false;  // overflow buffer owned by the global pool
  }
  free_[bucket].push_back(ptr);
  return true;
}

void BufferPool::Workspace::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  size_t total_floats = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    total_floats += static_cast<size_t>(high_water_[b])
                    << (b + kMinBucketLog2);
  }
  if (total_floats == 0) return;
  // Chunk capacities are multiples of 64 floats (256 bytes), so
  // sequential carving keeps every chunk 64-byte aligned.
  slab_ = AlignedAlloc(total_floats);
  slab_floats_ = total_floats;
  float* cursor = slab_;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const size_t capacity = size_t{1} << (b + kMinBucketLog2);
    free_[b].reserve(high_water_[b]);
    for (uint32_t i = 0; i < high_water_[b]; ++i) {
      free_[b].push_back(cursor);
      cursor += capacity;
    }
  }
}

uint64_t BufferPool::Workspace::reserved_bytes() const {
  return static_cast<uint64_t>(slab_floats_) * sizeof(float);
}

BufferPool::WorkspaceScope::WorkspaceScope(Workspace* ws) {
#if !LASAGNE_POOL_BYPASS
  previous_ = t_workspace;
  t_workspace = ws;
#else
  (void)ws;
#endif
}

BufferPool::WorkspaceScope::~WorkspaceScope() {
#if !LASAGNE_POOL_BYPASS
  t_workspace = previous_;
#endif
}

}  // namespace lasagne
