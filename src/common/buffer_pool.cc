#include "common/buffer_pool.h"

#include <cstdlib>

#include "common/check.h"
#include "obs/metrics.h"

// Bypass the cache under ASan so reuse does not mask use-after-free of
// tensor storage (the TSan build keeps the cache: concurrent checkout
// is exactly what it should exercise).
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_BYPASS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_BYPASS 1
#endif
#endif
#ifndef LASAGNE_POOL_BYPASS
#define LASAGNE_POOL_BYPASS 0
#endif

namespace lasagne {

namespace {

constexpr size_t kAlignment = 64;

inline void CountHit() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& hits =
        obs::MetricsRegistry::Global().GetCounter("tensor.alloc.pool_hits");
    hits.Increment();
  }
}

inline void CountMiss() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& misses =
        obs::MetricsRegistry::Global().GetCounter("tensor.alloc.pool_misses");
    misses.Increment();
  }
}

float* AlignedAlloc(size_t count) {
  // Bucket capacities are powers of two >= 64 floats, so the byte size
  // is always a multiple of the alignment as aligned_alloc requires.
  void* p = std::aligned_alloc(kAlignment, count * sizeof(float));
  LASAGNE_CHECK(p != nullptr);
  return static_cast<float*>(p);
}

size_t BucketLog2(size_t capacity) {
  size_t log2 = 0;
  while ((size_t{1} << log2) < capacity) ++log2;
  return log2;
}

}  // namespace

BufferPool& BufferPool::Global() {
  // Leaked on purpose: tensors with static storage duration may release
  // buffers during process teardown, after local statics are destroyed.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

size_t BufferPool::BucketCapacity(size_t count) {
  size_t capacity = size_t{1} << kMinBucketLog2;
  while (capacity < count) capacity <<= 1;
  return capacity;
}

float* BufferPool::Acquire(size_t count) {
  if (count == 0) return nullptr;
  const size_t capacity = BucketCapacity(count);
#if !LASAGNE_POOL_BYPASS
  const size_t bucket = BucketLog2(capacity) - kMinBucketLog2;
  LASAGNE_DCHECK(bucket < kNumBuckets);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<float*>& list = free_lists_[bucket];
    if (!list.empty()) {
      float* p = list.back();
      list.pop_back();
      cached_bytes_.fetch_sub(capacity * sizeof(float),
                              std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      CountHit();
      return p;
    }
  }
#endif
  misses_.fetch_add(1, std::memory_order_relaxed);
  CountMiss();
  return AlignedAlloc(capacity);
}

void BufferPool::Release(float* ptr, size_t count) {
  if (ptr == nullptr) return;
  const size_t capacity = BucketCapacity(count);
  const uint64_t bytes = capacity * sizeof(float);
#if !LASAGNE_POOL_BYPASS
  if (cached_bytes_.load(std::memory_order_relaxed) + bytes <=
      limit_.load(std::memory_order_relaxed)) {
    const size_t bucket = BucketLog2(capacity) - kMinBucketLog2;
    LASAGNE_DCHECK(bucket < kNumBuckets);
    std::lock_guard<std::mutex> lock(mutex_);
    free_lists_[bucket].push_back(ptr);
    cached_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return;
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
#endif
  std::free(ptr);
}

BufferPool::Stats BufferPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.cached_bytes = cached_bytes_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

void BufferPool::Trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::vector<float*>& list : free_lists_) {
    for (float* p : list) std::free(p);
    list.clear();
    list.shrink_to_fit();
  }
  cached_bytes_.store(0, std::memory_order_relaxed);
}

void BufferPool::SetCachedBytesLimit(uint64_t bytes) {
  limit_.store(bytes, std::memory_order_relaxed);
}

}  // namespace lasagne
