#include "common/buffer_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"
#include "obs/metrics.h"

// Bypass the cache under ASan so reuse does not mask use-after-free of
// tensor storage (the TSan build keeps the cache: concurrent checkout
// is exactly what it should exercise).
#if defined(__SANITIZE_ADDRESS__)
#define LASAGNE_POOL_BYPASS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LASAGNE_POOL_BYPASS 1
#endif
#endif
#ifndef LASAGNE_POOL_BYPASS
#define LASAGNE_POOL_BYPASS 0
#endif

namespace lasagne {

namespace {

constexpr size_t kAlignment = 64;

inline void CountHit() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& hits =
        obs::MetricsRegistry::Global().GetCounter("tensor.alloc.pool_hits");
    hits.Increment();
  }
}

inline void CountMiss() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& misses =
        obs::MetricsRegistry::Global().GetCounter("tensor.alloc.pool_misses");
    misses.Increment();
  }
}

inline void CountMagazineHit() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& mag_hits =
        obs::MetricsRegistry::Global().GetCounter(
            "tensor.alloc.magazine_hits");
    mag_hits.Increment();
  }
}

inline void CountDepotRefill() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& refills =
        obs::MetricsRegistry::Global().GetCounter(
            "tensor.alloc.depot_refills");
    refills.Increment();
  }
}

inline void CountDepotFlush() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& flushes =
        obs::MetricsRegistry::Global().GetCounter(
            "tensor.alloc.depot_flushes");
    flushes.Increment();
  }
}

float* AlignedAlloc(size_t count) {
  // Bucket capacities are powers of two >= 64 floats, so the byte size
  // is always a multiple of the alignment as aligned_alloc requires.
  void* p = std::aligned_alloc(kAlignment, count * sizeof(float));
  LASAGNE_CHECK(p != nullptr);
  return static_cast<float*>(p);
}

size_t BucketLog2(size_t capacity) {
  size_t log2 = 0;
  while ((size_t{1} << log2) < capacity) ++log2;
  return log2;
}

// Per-thread mirrors of the global hit/miss traffic this thread caused.
// Workspace-served acquires bump neither (they are invisible to the
// pool by design). Never reset: ResetStats() clears the global
// counters only, so ThreadStats stays monotonic and delta-safe (see
// the contract in buffer_pool.h).
thread_local uint64_t t_thread_hits = 0;
thread_local uint64_t t_thread_misses = 0;

#if !LASAGNE_POOL_BYPASS
// Workspace installed on this thread by WorkspaceScope (null = none).
thread_local BufferPool::Workspace* t_workspace = nullptr;

// This thread's magazine: the lock-free shard of the pool. Constructed
// on the thread's first pool interaction; the destructor drains into
// the depot at thread exit (the pool singleton is leaked, so the depot
// outlives every thread).
thread_local internal::Magazine t_magazine;
#endif

}  // namespace

BufferPool& BufferPool::Global() {
  // Leaked on purpose: tensors with static storage duration may release
  // buffers during process teardown, after local statics are destroyed.
  static BufferPool* pool = new BufferPool();
  return *pool;
}

size_t BufferPool::BucketCapacity(size_t count) {
  size_t capacity = size_t{1} << kMinBucketLog2;
  while (capacity < count) capacity <<= 1;
  return capacity;
}

bool BufferPool::TryReserveCachedBytes(uint64_t bytes) {
  // fetch_add-then-verify: each contender reserves first and backs out
  // on failure, so the sum of successful reservations never exceeds
  // the limit — unlike the old load-check-then-lock sequence, where N
  // concurrent releases could all pass the check and overshoot the cap
  // together.
  const uint64_t prev = cached_bytes_.fetch_add(bytes,
                                                std::memory_order_relaxed);
  if (prev + bytes > limit_.load(std::memory_order_relaxed)) {
    cached_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void BufferPool::FreeChunkList(std::vector<float*>& list, size_t capacity) {
  if (list.empty()) return;
  for (float* p : list) std::free(p);
  cached_bytes_.fetch_sub(
      static_cast<uint64_t>(list.size()) * capacity * sizeof(float),
      std::memory_order_relaxed);
  list.clear();
}

void BufferPool::SyncMagazineEpoch(internal::Magazine& mag) {
  const uint64_t epoch = trim_epoch_.load(std::memory_order_acquire);
  if (mag.epoch == epoch) return;
  // A Trim() happened since this thread last touched the pool: its
  // cached chunks are stale. Free them (and return their bytes) before
  // serving, so the pool is cold for this thread too.
  for (size_t b = 0; b < kNumBuckets; ++b) {
    FreeChunkList(mag.chunks[b], size_t{1} << (b + kMinBucketLog2));
  }
  mag.epoch = epoch;
}

void BufferPool::DrainMagazineOnThreadExit(internal::Magazine& mag) {
  bool any = false;
  for (size_t b = 0; b < kNumBuckets && !any; ++b) {
    any = !mag.chunks[b].empty();
  }
  if (!any) return;
  if (mag.epoch != trim_epoch_.load(std::memory_order_acquire)) {
    // Trimmed since last touch: the chunks are stale — free them.
    for (size_t b = 0; b < kNumBuckets; ++b) {
      FreeChunkList(mag.chunks[b], size_t{1} << (b + kMinBucketLog2));
    }
    return;
  }
  // Exit drain: the bytes stay cached, they just change shelf — no cap
  // interaction, one mutex acquisition for the whole magazine.
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    std::vector<float*>& local = mag.chunks[b];
    if (local.empty()) continue;
    free_lists_[b].insert(free_lists_[b].end(), local.begin(), local.end());
    local.clear();
  }
}

namespace internal {

Magazine::~Magazine() {
  BufferPool::Global().DrainMagazineOnThreadExit(*this);
}

}  // namespace internal

float* BufferPool::Acquire(size_t count) {
  if (count == 0) return nullptr;
  const size_t capacity = BucketCapacity(count);
#if !LASAGNE_POOL_BYPASS
  const size_t bucket = BucketLog2(capacity) - kMinBucketLog2;
  if (bucket >= bucket_count_.load(std::memory_order_relaxed)) {
    // Oversize: beyond the top bucket there is no freelist (or
    // workspace stack) to index — NDEBUG builds used to read
    // free_lists_ out of bounds here. Serve straight from the
    // allocator, bypassing magazines, depot and cap; Release frees it
    // the same way.
    oversize_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    ++t_thread_misses;
    CountMiss();
    return AlignedAlloc(capacity);
  }
  if (Workspace* ws = t_workspace; ws != nullptr) {
    // Workspace-served acquires bypass the pool entirely — no mutex,
    // no stats. A recording workspace tracks the request and returns
    // nullptr; a dry finalized one counts an overflow. Both fall
    // through to the global path.
    float* p = ws->AcquireChunk(bucket);
    if (p != nullptr) return p;
  }
  internal::Magazine& mag = t_magazine;
  SyncMagazineEpoch(mag);
  std::vector<float*>& local = mag.chunks[bucket];
  if (!local.empty()) {
    // Steady-state fast path: this thread's own magazine, zero locks.
    float* p = local.back();
    local.pop_back();
    cached_bytes_.fetch_sub(capacity * sizeof(float),
                            std::memory_order_relaxed);
    magazine_hits_.fetch_add(1, std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    ++t_thread_hits;
    CountHit();
    CountMagazineHit();
    return p;
  }
  // Magazine underflow: one depot exchange fetches a batch, so the
  // next kMagazineBatch-1 acquires of this bucket stay lock-free.
  float* p = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<float*>& depot = free_lists_[bucket];
    if (!depot.empty()) {
      p = depot.back();
      depot.pop_back();
      const size_t take = std::min(kMagazineBatch - 1, depot.size());
      local.insert(local.end(), depot.end() - take, depot.end());
      depot.resize(depot.size() - take);
      depot_refills_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (p != nullptr) {
    cached_bytes_.fetch_sub(capacity * sizeof(float),
                            std::memory_order_relaxed);
    hits_.fetch_add(1, std::memory_order_relaxed);
    ++t_thread_hits;
    CountHit();
    CountDepotRefill();
    return p;
  }
#endif
  misses_.fetch_add(1, std::memory_order_relaxed);
  ++t_thread_misses;
  CountMiss();
  return AlignedAlloc(capacity);
}

void BufferPool::Release(float* ptr, size_t count) {
  if (ptr == nullptr) return;
  const size_t capacity = BucketCapacity(count);
  const uint64_t bytes = capacity * sizeof(float);
#if !LASAGNE_POOL_BYPASS
  const size_t bucket = BucketLog2(capacity) - kMinBucketLog2;
  if (bucket >= bucket_count_.load(std::memory_order_relaxed)) {
    std::free(ptr);  // oversize: never cached, never capped
    return;
  }
  if (Workspace* ws = t_workspace;
      ws != nullptr && ws->ReleaseChunk(ptr, bucket)) {
    return;  // chunk returned to the workspace slab
  }
  internal::Magazine& mag = t_magazine;
  SyncMagazineEpoch(mag);
  std::vector<float*>& local = mag.chunks[bucket];
  if (local.size() >= kMagazineChunks) {
    // Magazine overflow: one depot exchange flushes a batch (the bytes
    // stay cached, they just change shelf), making room for the next
    // kMagazineBatch releases to stay lock-free.
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<float*>& depot = free_lists_[bucket];
    depot.insert(depot.end(), local.end() - kMagazineBatch, local.end());
    local.resize(local.size() - kMagazineBatch);
    depot_flushes_.fetch_add(1, std::memory_order_relaxed);
    CountDepotFlush();
  }
  // The reservation is the cap check (see TryReserveCachedBytes):
  // caching and cap accounting are one atomic step, so concurrent
  // releases cannot collectively overshoot the limit.
  if (TryReserveCachedBytes(bytes)) {
    local.push_back(ptr);
    return;
  }
  evictions_.fetch_add(1, std::memory_order_relaxed);
#endif
  std::free(ptr);
}

BufferPool::ThreadStats BufferPool::GetThreadStats() {
  ThreadStats s;
  s.hits = t_thread_hits;
  s.misses = t_thread_misses;
  return s;
}

BufferPool::Stats BufferPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.cached_bytes = cached_bytes_.load(std::memory_order_relaxed);
  s.magazine_hits = magazine_hits_.load(std::memory_order_relaxed);
  s.depot_refills = depot_refills_.load(std::memory_order_relaxed);
  s.depot_flushes = depot_flushes_.load(std::memory_order_relaxed);
  s.oversize_acquires = oversize_.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  magazine_hits_.store(0, std::memory_order_relaxed);
  depot_refills_.store(0, std::memory_order_relaxed);
  depot_flushes_.store(0, std::memory_order_relaxed);
  oversize_.store(0, std::memory_order_relaxed);
}

void BufferPool::Trim() {
#if !LASAGNE_POOL_BYPASS
  // Marking every magazine stale first means a thread that touches the
  // pool after this line can never resurrect a pre-trim chunk; the
  // calling thread's own magazine is drained eagerly below so Trim()
  // is synchronously "cold" for the caller (what tests and the cold
  // phases of the benches rely on).
  const uint64_t epoch =
      trim_epoch_.fetch_add(1, std::memory_order_acq_rel) + 1;
  internal::Magazine& mag = t_magazine;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    FreeChunkList(mag.chunks[b], size_t{1} << (b + kMinBucketLog2));
  }
  mag.epoch = epoch;
#endif
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t b = 0; b < kNumBuckets; ++b) {
    FreeChunkList(free_lists_[b], size_t{1} << (b + kMinBucketLog2));
    free_lists_[b].shrink_to_fit();
  }
}

void BufferPool::SetCachedBytesLimit(uint64_t bytes) {
  limit_.store(bytes, std::memory_order_relaxed);
}

size_t BufferPool::SetBucketCountForTest(size_t count) {
  LASAGNE_CHECK(count >= 1 && count <= kNumBuckets);
  return bucket_count_.exchange(count, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

BufferPool::Workspace::~Workspace() { std::free(slab_); }

float* BufferPool::Workspace::AcquireChunk(size_t bucket) {
  if (!finalized_) {
    // Recording phase: track the working set, let the global pool
    // serve the request.
    if (++live_[bucket] > high_water_[bucket]) {
      high_water_[bucket] = live_[bucket];
    }
    return nullptr;
  }
  std::vector<float*>& stack = free_[bucket];
  if (stack.empty()) {
    ++overflow_;
    return nullptr;
  }
  float* p = stack.back();
  stack.pop_back();
  return p;
}

bool BufferPool::Workspace::ReleaseChunk(float* ptr, size_t bucket) {
  if (!finalized_) {
    if (live_[bucket] > 0) --live_[bucket];
    return false;  // buffer came from the global pool
  }
  if (slab_ == nullptr || ptr < slab_ || ptr >= slab_ + slab_floats_) {
    return false;  // overflow buffer owned by the global pool
  }
  free_[bucket].push_back(ptr);
  return true;
}

void BufferPool::Workspace::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  size_t total_floats = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    total_floats += static_cast<size_t>(high_water_[b])
                    << (b + kMinBucketLog2);
  }
  if (total_floats == 0) return;
  // Chunk capacities are multiples of 64 floats (256 bytes), so
  // sequential carving keeps every chunk 64-byte aligned.
  slab_ = AlignedAlloc(total_floats);
  slab_floats_ = total_floats;
  float* cursor = slab_;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const size_t capacity = size_t{1} << (b + kMinBucketLog2);
    free_[b].reserve(high_water_[b]);
    for (uint32_t i = 0; i < high_water_[b]; ++i) {
      free_[b].push_back(cursor);
      cursor += capacity;
    }
  }
}

uint64_t BufferPool::Workspace::reserved_bytes() const {
  return static_cast<uint64_t>(slab_floats_) * sizeof(float);
}

BufferPool::WorkspaceScope::WorkspaceScope(Workspace* ws) {
#if !LASAGNE_POOL_BYPASS
  previous_ = t_workspace;
  t_workspace = ws;
#else
  (void)ws;
#endif
}

BufferPool::WorkspaceScope::~WorkspaceScope() {
#if !LASAGNE_POOL_BYPASS
  t_workspace = previous_;
#endif
}

}  // namespace lasagne
