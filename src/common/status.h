#ifndef LASAGNE_COMMON_STATUS_H_
#define LASAGNE_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

// Recoverable-error vocabulary for API boundaries (dataset loading,
// checkpoint I/O, config validation). Unlike LASAGNE_CHECK — which is
// reserved for internal invariants whose violation means a bug — a
// Status travels back to the caller, who decides whether to retry,
// substitute a default, or surface the message to the user.
//
// The design follows absl::Status/absl::StatusOr in miniature: a code,
// a message, and helper constructors named after the codes. The library
// still does not use exceptions.

namespace lasagne {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   // caller passed something malformed
  kNotFound = 2,          // file or registry entry does not exist
  kDataLoss = 3,          // file exists but is corrupt (checksum, truncation)
  kFailedPrecondition = 4,  // operation needs different prior state
  kIOError = 5,           // read/write/rename failed
  kResourceExhausted = 6,  // retry/recovery budget spent, or queue full
  kInternal = 7,          // invariant violation reported instead of aborting
  kDeadlineExceeded = 8,  // work finished (or was abandoned) past its deadline
  kCancelled = 9,         // caller or shutdown cancelled the operation
  kUnavailable = 10,      // service is shutting down / not accepting work
};

/// Human-readable name of a code ("kDataLoss" -> "DATA_LOSS").
const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  /// Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "DATA_LOSS: checksum mismatch" (or "OK").
  std::string ToString() const;

  /// Prefixes extra context onto the message, preserving the code.
  Status WithContext(const std::string& context) const {
    if (ok()) return *this;
    return Status(code_, context + ": " + message_);
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status IOError(std::string message) {
  return Status(StatusCode::kIOError, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

/// Either a value or the error that prevented producing one. Accessing
/// `value()` on an error is an internal bug and aborts.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from an error Status (must not be OK: an OK StatusOr
  /// needs a value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    LASAGNE_CHECK_MSG(!status_.ok(),
                      "StatusOr constructed from OK status without a value");
  }
  /// Implicit from a value.
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    LASAGNE_CHECK_MSG(ok(), "StatusOr::value on error: " << status_.ToString());
    return value_;
  }
  T& value() & {
    LASAGNE_CHECK_MSG(ok(), "StatusOr::value on error: " << status_.ToString());
    return value_;
  }
  T&& value() && {
    LASAGNE_CHECK_MSG(ok(), "StatusOr::value on error: " << status_.ToString());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace lasagne

/// Propagates a non-OK Status to the caller.
#define LASAGNE_RETURN_IF_ERROR(expr)               \
  do {                                              \
    ::lasagne::Status status_macro_ = (expr);       \
    if (!status_macro_.ok()) return status_macro_;  \
  } while (0)

#define LASAGNE_STATUS_CONCAT_INNER_(a, b) a##b
#define LASAGNE_STATUS_CONCAT_(a, b) LASAGNE_STATUS_CONCAT_INNER_(a, b)

/// `LASAGNE_ASSIGN_OR_RETURN(auto x, MaybeX());` — unwraps a StatusOr,
/// propagating the error on failure.
#define LASAGNE_ASSIGN_OR_RETURN(lhs, expr)                            \
  auto LASAGNE_STATUS_CONCAT_(statusor_, __LINE__) = (expr);           \
  if (!LASAGNE_STATUS_CONCAT_(statusor_, __LINE__).ok()) {             \
    return LASAGNE_STATUS_CONCAT_(statusor_, __LINE__).status();       \
  }                                                                    \
  lhs = std::move(LASAGNE_STATUS_CONCAT_(statusor_, __LINE__)).value()

#endif  // LASAGNE_COMMON_STATUS_H_
