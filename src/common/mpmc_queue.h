#ifndef LASAGNE_COMMON_MPMC_QUEUE_H_
#define LASAGNE_COMMON_MPMC_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace lasagne {

/// Bounded multi-producer multi-consumer queue for the serving front
/// end (docs/SERVING.md).
///
/// Design constraints, in order:
///   * Producers never block. Admission control is the caller's job:
///     TryPush reports kFull / kClosed and the caller turns that into a
///     ResourceExhausted / Unavailable response instead of holding the
///     client thread hostage.
///   * Consumers block (Pop) or bounded-block (PopFor) — a serving
///     worker with nothing to do should sleep on the condvar, not spin.
///   * Close() is drain-friendly: items already queued remain poppable;
///     Pop returns kClosed only once the queue is closed AND empty, so
///     a worker loop `while (Pop(&x) == kItem)` naturally drains the
///     backlog before exiting.
///
/// A mutex + condvar implementation is deliberate: request payloads are
/// milliseconds of work, so queue overhead is noise, and the simple
/// lock keeps the structure trivially TSan-clean.
template <typename T>
class BoundedMpmcQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };
  enum class PopResult { kItem, kClosed, kTimeout };

  explicit BoundedMpmcQueue(size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {}

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Non-blocking enqueue; kFull when at capacity, kClosed after
  /// Close(). Never waits.
  PushResult TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available (kItem) or the queue is closed
  /// and fully drained (kClosed).
  PopResult Pop(T* out) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return PopResult::kClosed;
    *out = std::move(items_.front());
    items_.pop_front();
    return PopResult::kItem;
  }

  /// Pop bounded by `timeout`; used by the batching window so a worker
  /// coalesces whatever arrives before the window closes.
  PopResult PopFor(T* out, std::chrono::nanoseconds timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    const bool got = not_empty_.wait_for(
        lock, timeout, [&] { return !items_.empty() || closed_; });
    if (!got) return PopResult::kTimeout;
    if (items_.empty()) return PopResult::kClosed;
    *out = std::move(items_.front());
    items_.pop_front();
    return PopResult::kItem;
  }

  /// Non-blocking pop (opportunistic coalescing of an already-queued
  /// backlog).
  bool TryPop(T* out) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Rejects all future pushes and wakes every blocked popper. Queued
  /// items stay poppable (drain); call repeatedly without harm.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace lasagne

#endif  // LASAGNE_COMMON_MPMC_QUEUE_H_
