#ifndef LASAGNE_COMMON_SIMD_H_
#define LASAGNE_COMMON_SIMD_H_

#include <cmath>
#include <cstddef>

// Thin portable wrapper over the widest float vector the *translation
// unit* is compiled for (AVX > SSE2 > scalar). Only include this from
// kernel translation units that are built with the matching -m flags
// (see LASAGNE_SIMD in src/CMakeLists.txt); the rest of the library
// stays at the baseline ISA.
//
// Determinism contract: every operation here maps to one IEEE-754
// correctly-rounded instruction per lane (add/sub/mul/div/sqrt/min/max
// or bitwise selects). MulAdd is deliberately two rounded operations —
// never an FMA — so a vectorized accumulation chain is bit-for-bit the
// scalar chain run lane by lane. Keep it that way: the golden-run and
// cross-thread-count bitwise tests depend on it (docs/KERNELS.md).

#if defined(__AVX__)
#include <immintrin.h>

namespace lasagne::simd {

inline constexpr size_t kWidth = 8;
using Vec = __m256;

inline Vec Load(const float* p) { return _mm256_loadu_ps(p); }
inline void Store(float* p, Vec v) { _mm256_storeu_ps(p, v); }
inline Vec Broadcast(float v) { return _mm256_set1_ps(v); }
inline Vec Zero() { return _mm256_setzero_ps(); }
inline Vec Add(Vec a, Vec b) { return _mm256_add_ps(a, b); }
inline Vec Sub(Vec a, Vec b) { return _mm256_sub_ps(a, b); }
inline Vec Mul(Vec a, Vec b) { return _mm256_mul_ps(a, b); }
inline Vec Div(Vec a, Vec b) { return _mm256_div_ps(a, b); }
inline Vec Sqrt(Vec a) { return _mm256_sqrt_ps(a); }
/// Lane-wise `a > b ? a : b`; returns b when a is NaN (maxps semantics).
inline Vec Max(Vec a, Vec b) { return _mm256_max_ps(a, b); }
/// Ordered compares: lanes with NaN compare false (all-zero mask).
inline Vec CmpGt(Vec a, Vec b) { return _mm256_cmp_ps(a, b, _CMP_GT_OQ); }
inline Vec CmpGe(Vec a, Vec b) { return _mm256_cmp_ps(a, b, _CMP_GE_OQ); }
inline Vec CmpLt(Vec a, Vec b) { return _mm256_cmp_ps(a, b, _CMP_LT_OQ); }
inline Vec CmpLe(Vec a, Vec b) { return _mm256_cmp_ps(a, b, _CMP_LE_OQ); }
inline Vec And(Vec a, Vec b) { return _mm256_and_ps(a, b); }
/// b & ~mask.
inline Vec AndNot(Vec mask, Vec b) { return _mm256_andnot_ps(mask, b); }
/// Lane-wise mask ? a : b (mask lanes are all-ones/all-zeros).
inline Vec Select(Vec mask, Vec a, Vec b) {
  return _mm256_blendv_ps(b, a, mask);
}
/// acc + a * b as two rounded IEEE ops — never contracted to an FMA.
inline Vec MulAdd(Vec a, Vec b, Vec acc) { return Add(acc, Mul(a, b)); }

}  // namespace lasagne::simd

#elif defined(__SSE2__)
#include <emmintrin.h>

namespace lasagne::simd {

inline constexpr size_t kWidth = 4;
using Vec = __m128;

inline Vec Load(const float* p) { return _mm_loadu_ps(p); }
inline void Store(float* p, Vec v) { _mm_storeu_ps(p, v); }
inline Vec Broadcast(float v) { return _mm_set1_ps(v); }
inline Vec Zero() { return _mm_setzero_ps(); }
inline Vec Add(Vec a, Vec b) { return _mm_add_ps(a, b); }
inline Vec Sub(Vec a, Vec b) { return _mm_sub_ps(a, b); }
inline Vec Mul(Vec a, Vec b) { return _mm_mul_ps(a, b); }
inline Vec Div(Vec a, Vec b) { return _mm_div_ps(a, b); }
inline Vec Sqrt(Vec a) { return _mm_sqrt_ps(a); }
inline Vec Max(Vec a, Vec b) { return _mm_max_ps(a, b); }
inline Vec CmpGt(Vec a, Vec b) { return _mm_cmpgt_ps(a, b); }
inline Vec CmpGe(Vec a, Vec b) { return _mm_cmpge_ps(a, b); }
inline Vec CmpLt(Vec a, Vec b) { return _mm_cmplt_ps(a, b); }
inline Vec CmpLe(Vec a, Vec b) { return _mm_cmple_ps(a, b); }
inline Vec And(Vec a, Vec b) { return _mm_and_ps(a, b); }
inline Vec AndNot(Vec mask, Vec b) { return _mm_andnot_ps(mask, b); }
inline Vec Select(Vec mask, Vec a, Vec b) {
  return _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b));
}
inline Vec MulAdd(Vec a, Vec b, Vec acc) { return Add(acc, Mul(a, b)); }

}  // namespace lasagne::simd

#else  // scalar fallback

#include <cstring>

namespace lasagne::simd {

inline constexpr size_t kWidth = 1;
struct Vec {
  float v;
};

inline Vec Load(const float* p) { return {*p}; }
inline void Store(float* p, Vec v) { *p = v.v; }
inline Vec Broadcast(float v) { return {v}; }
inline Vec Zero() { return {0.0f}; }
inline Vec Add(Vec a, Vec b) { return {a.v + b.v}; }
inline Vec Sub(Vec a, Vec b) { return {a.v - b.v}; }
inline Vec Mul(Vec a, Vec b) { return {a.v * b.v}; }
inline Vec Div(Vec a, Vec b) { return {a.v / b.v}; }
inline Vec Sqrt(Vec a) { return {std::sqrt(a.v)}; }
inline Vec Max(Vec a, Vec b) { return {a.v > b.v ? a.v : b.v}; }

namespace detail {
inline Vec MaskOf(bool cond) {
  Vec m;
  const unsigned bits = cond ? 0xFFFFFFFFu : 0u;
  std::memcpy(&m.v, &bits, sizeof(bits));
  return m;
}
inline unsigned BitsOf(Vec a) {
  unsigned bits;
  std::memcpy(&bits, &a.v, sizeof(bits));
  return bits;
}
inline Vec OfBits(unsigned bits) {
  Vec m;
  std::memcpy(&m.v, &bits, sizeof(bits));
  return m;
}
}  // namespace detail

inline Vec CmpGt(Vec a, Vec b) { return detail::MaskOf(a.v > b.v); }
inline Vec CmpGe(Vec a, Vec b) { return detail::MaskOf(a.v >= b.v); }
inline Vec CmpLt(Vec a, Vec b) { return detail::MaskOf(a.v < b.v); }
inline Vec CmpLe(Vec a, Vec b) { return detail::MaskOf(a.v <= b.v); }
inline Vec And(Vec a, Vec b) {
  return detail::OfBits(detail::BitsOf(a) & detail::BitsOf(b));
}
inline Vec AndNot(Vec mask, Vec b) {
  return detail::OfBits(~detail::BitsOf(mask) & detail::BitsOf(b));
}
inline Vec Select(Vec mask, Vec a, Vec b) {
  return detail::OfBits((detail::BitsOf(mask) & detail::BitsOf(a)) |
                        (~detail::BitsOf(mask) & detail::BitsOf(b)));
}
inline Vec MulAdd(Vec a, Vec b, Vec acc) { return Add(acc, Mul(a, b)); }

}  // namespace lasagne::simd

#endif

#endif  // LASAGNE_COMMON_SIMD_H_
