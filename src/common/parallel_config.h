#ifndef LASAGNE_COMMON_PARALLEL_CONFIG_H_
#define LASAGNE_COMMON_PARALLEL_CONFIG_H_

#include <algorithm>
#include <cstddef>

// Shared chunking and tile-size constants for the parallel compute
// layer and the blocked kernel engine. Grain tuning happens here, in
// one place, instead of in per-file anonymous-namespace copies (see
// docs/THREADING.md for the grain heuristics and docs/KERNELS.md for
// the tile geometry).

namespace lasagne {

/// Elements of work per parallel chunk. Loops cheaper than this run
/// inline on the calling thread.
inline constexpr size_t kGrain = 32768;

/// Row grain for kernels whose per-row cost is `work_per_row` elements:
/// enough rows per chunk that a chunk amortizes the dispatch overhead.
inline size_t RowGrain(size_t work_per_row) {
  return std::max<size_t>(1, kGrain / std::max<size_t>(1, work_per_row));
}

namespace kernels {

/// Width (in floats) of one GEMM/SpMM register tile along the output
/// columns. Each tile is accumulated in SIMD registers across the full
/// reduction dimension, so it must fit the architectural register file:
/// 16 floats = 2 AVX2 or 4 SSE2 accumulators plus operand registers.
inline constexpr size_t kColTile = 16;

}  // namespace kernels
}  // namespace lasagne

#endif  // LASAGNE_COMMON_PARALLEL_CONFIG_H_
