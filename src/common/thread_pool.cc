#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace lasagne {
namespace {

thread_local bool t_in_parallel_region = false;

inline void CountPoolRegion(size_t num_tasks) {
  if (obs::MetricsEnabled()) {
    static obs::Counter& regions =
        obs::MetricsRegistry::Global().GetCounter("threadpool.regions");
    static obs::Counter& tasks =
        obs::MetricsRegistry::Global().GetCounter("threadpool.tasks");
    regions.Increment();
    tasks.Increment(num_tasks);
  }
}

// Resolved once: LASAGNE_NUM_THREADS wins, then the hardware count.
size_t DefaultNumThreads() {
  static const size_t cached = [] {
    if (const char* env = std::getenv("LASAGNE_NUM_THREADS")) {
      const long v = std::atol(env);
      if (v > 0) return static_cast<size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<size_t>(hw > 0 ? hw : 1);
  }();
  return cached;
}

}  // namespace

namespace internal {

ThreadPool& ThreadPool::Global() {
  static ThreadPool& pool = *new ThreadPool();
  return pool;
}

ThreadPool::ThreadPool() = default;

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::num_threads() {
  std::lock_guard<std::mutex> lock(mutex_);
  return requested_threads_ > 0 ? requested_threads_ : DefaultNumThreads();
}

void ThreadPool::SetNumThreads(size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  requested_threads_ = n;
}

void ThreadPool::EnsureWorkers() {
  // Called with region_mutex_ held (no region in flight), so joining
  // idle workers cannot deadlock against task execution.
  size_t target;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t total =
        requested_threads_ > 0 ? requested_threads_ : DefaultNumThreads();
    target = total - 1;  // the caller is the extra participant
    if (workers_.size() == target) return;
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = false;
  }
  workers_.reserve(target);
  for (size_t i = 0; i < target; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;
  LASAGNE_TRACE_SCOPE("pool.region");
  CountPoolRegion(num_tasks);
  std::lock_guard<std::mutex> region(region_mutex_);
  EnsureWorkers();
  if (obs::MetricsEnabled()) {
    static obs::Gauge& threads =
        obs::MetricsRegistry::Global().GetGauge("threadpool.threads");
    threads.Set(static_cast<double>(workers_.size() + 1));
  }
  if (workers_.empty()) {
    ParallelRegionGuard guard;
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    remaining_ = num_tasks;
  }
  work_cv_.notify_all();
  RunTasks();
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  task_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return shutdown_ || (task_ != nullptr && next_task_ < num_tasks_);
      });
      if (shutdown_) return;
    }
    RunTasks();
  }
}

void ThreadPool::RunTasks() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (task_ != nullptr && next_task_ < num_tasks_) {
    const size_t index = next_task_++;
    const std::function<void(size_t)>* task = task_;
    lock.unlock();
    {
      ParallelRegionGuard guard;
      LASAGNE_TRACE_SCOPE("pool.task");
      (*task)(index);
    }
    lock.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

}  // namespace internal

void SetNumThreads(size_t n) { internal::ThreadPool::Global().SetNumThreads(n); }

size_t GetNumThreads() { return internal::ThreadPool::Global().num_threads(); }

bool InParallelRegion() { return t_in_parallel_region; }

ParallelRegionGuard::ParallelRegionGuard()
    : previous_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

ParallelRegionGuard::~ParallelRegionGuard() {
  t_in_parallel_region = previous_;
}

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  const size_t range = end - begin;
  if (grain == 0) grain = 1;
  const size_t max_chunks = (range + grain - 1) / grain;
  if (max_chunks <= 1 || t_in_parallel_region || GetNumThreads() <= 1) {
    fn(begin, end);
    return;
  }
  const size_t num_chunks = std::min(GetNumThreads(), max_chunks);
  const size_t base = range / num_chunks;
  const size_t extra = range % num_chunks;
  internal::ThreadPool::Global().Run(num_chunks, [&](size_t i) {
    const size_t chunk_begin =
        begin + i * base + std::min<size_t>(i, extra);
    const size_t chunk_end = chunk_begin + base + (i < extra ? 1 : 0);
    fn(chunk_begin, chunk_end);
  });
}

double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& chunk_fn) {
  if (end <= begin) return 0.0;
  if (grain == 0) grain = 1;
  const size_t range = end - begin;
  const size_t num_chunks = (range + grain - 1) / grain;
  auto chunk_bounds = [&](size_t i) {
    const size_t b = begin + i * grain;
    return std::pair<size_t, size_t>(b, std::min(b + grain, end));
  };
  if (num_chunks == 1 || t_in_parallel_region || GetNumThreads() <= 1) {
    double total = 0.0;
    for (size_t i = 0; i < num_chunks; ++i) {
      const auto [b, e] = chunk_bounds(i);
      total += chunk_fn(b, e);
    }
    return total;
  }
  std::vector<double> partials(num_chunks, 0.0);
  internal::ThreadPool::Global().Run(num_chunks, [&](size_t i) {
    const auto [b, e] = chunk_bounds(i);
    partials[i] = chunk_fn(b, e);
  });
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

}  // namespace lasagne
