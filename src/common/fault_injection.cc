#include "common/fault_injection.h"

namespace lasagne {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::UpdateArmedFlag() {
  any_armed_.store(write_failures_armed_ > 0 || nan_gradients_armed_ > 0 ||
                       serve_stalls_armed_ > 0 || serve_failures_armed_ > 0,
                   std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  write_failures_armed_ = 0;
  write_fail_offset_ = 0;
  nan_gradients_armed_ = 0;
  nan_gradient_epoch_ = 0;
  serve_stalls_armed_ = 0;
  serve_stall_ms_ = 0.0;
  serve_failures_armed_ = 0;
  serve_failure_worker_ = -1;
  write_failures_injected_ = 0;
  nan_gradients_injected_ = 0;
  serve_stalls_injected_ = 0;
  serve_failures_injected_ = 0;
  UpdateArmedFlag();
}

void FaultInjector::ArmWriteFailure(size_t byte_offset, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  write_fail_offset_ = byte_offset;
  write_failures_armed_ = count;
  UpdateArmedFlag();
}

bool FaultInjector::ConsumeWriteFailure(size_t* fail_after_bytes) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (write_failures_armed_ <= 0) return false;
  --write_failures_armed_;
  ++write_failures_injected_;
  *fail_after_bytes = write_fail_offset_;
  UpdateArmedFlag();
  return true;
}

void FaultInjector::ArmNanGradient(size_t epoch, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  nan_gradient_epoch_ = epoch;
  nan_gradients_armed_ = count;
  UpdateArmedFlag();
}

bool FaultInjector::ConsumeNanGradient(size_t epoch) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (nan_gradients_armed_ <= 0 || epoch != nan_gradient_epoch_) return false;
  --nan_gradients_armed_;
  ++nan_gradients_injected_;
  UpdateArmedFlag();
  return true;
}

void FaultInjector::ArmServeStall(double stall_ms, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  serve_stall_ms_ = stall_ms;
  serve_stalls_armed_ = count;
  UpdateArmedFlag();
}

bool FaultInjector::ConsumeServeStall(double* stall_ms) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (serve_stalls_armed_ <= 0) return false;
  --serve_stalls_armed_;
  ++serve_stalls_injected_;
  *stall_ms = serve_stall_ms_;
  UpdateArmedFlag();
  return true;
}

void FaultInjector::ArmServeFailure(int worker, int count) {
  std::lock_guard<std::mutex> lock(mutex_);
  serve_failure_worker_ = worker;
  serve_failures_armed_ = count;
  UpdateArmedFlag();
}

bool FaultInjector::ConsumeServeFailure(int worker) {
  if (!AnyArmed()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (serve_failures_armed_ <= 0 || worker != serve_failure_worker_) {
    return false;
  }
  --serve_failures_armed_;
  ++serve_failures_injected_;
  UpdateArmedFlag();
  return true;
}

size_t FaultInjector::write_failures_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_failures_injected_;
}

size_t FaultInjector::nan_gradients_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return nan_gradients_injected_;
}

size_t FaultInjector::serve_stalls_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return serve_stalls_injected_;
}

size_t FaultInjector::serve_failures_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return serve_failures_injected_;
}

}  // namespace lasagne
