#include "common/fault_injection.h"

namespace lasagne {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Reset() {
  write_failures_armed_ = 0;
  write_fail_offset_ = 0;
  nan_gradients_armed_ = 0;
  nan_gradient_epoch_ = 0;
  write_failures_injected_ = 0;
  nan_gradients_injected_ = 0;
}

void FaultInjector::ArmWriteFailure(size_t byte_offset, int count) {
  write_fail_offset_ = byte_offset;
  write_failures_armed_ = count;
}

bool FaultInjector::ConsumeWriteFailure(size_t* fail_after_bytes) {
  if (write_failures_armed_ <= 0) return false;
  --write_failures_armed_;
  ++write_failures_injected_;
  *fail_after_bytes = write_fail_offset_;
  return true;
}

void FaultInjector::ArmNanGradient(size_t epoch, int count) {
  nan_gradient_epoch_ = epoch;
  nan_gradients_armed_ = count;
}

bool FaultInjector::ConsumeNanGradient(size_t epoch) {
  if (nan_gradients_armed_ <= 0 || epoch != nan_gradient_epoch_) return false;
  --nan_gradients_armed_;
  ++nan_gradients_injected_;
  return true;
}

}  // namespace lasagne
