#ifndef LASAGNE_COMMON_CHECK_H_
#define LASAGNE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

// Invariant-checking macros in the spirit of glog's CHECK family.
//
// The library does not use exceptions (per the project style); a failed
// check prints the failing condition with file/line context and aborts.
// LASAGNE_DCHECK compiles away in NDEBUG builds and is meant for hot
// inner loops.

namespace lasagne::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "LASAGNE_CHECK failed at %s:%d: %s %s\n", file, line,
               condition, message.c_str());
  std::abort();
}

// Builds the optional "extra context" message for a failed check.
class CheckMessageBuilder {
 public:
  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }
  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

}  // namespace lasagne::internal

#define LASAGNE_CHECK(condition)                                          \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::lasagne::internal::CheckFailed(__FILE__, __LINE__, #condition,    \
                                       std::string());                    \
    }                                                                     \
  } while (0)

#define LASAGNE_CHECK_MSG(condition, ...)                                 \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::lasagne::internal::CheckMessageBuilder builder_;                  \
      builder_ << __VA_ARGS__;                                            \
      ::lasagne::internal::CheckFailed(__FILE__, __LINE__, #condition,    \
                                       builder_.str());                   \
    }                                                                     \
  } while (0)

#define LASAGNE_CHECK_EQ(a, b) \
  LASAGNE_CHECK_MSG((a) == (b), "(" << (a) << " vs " << (b) << ")")
#define LASAGNE_CHECK_NE(a, b) \
  LASAGNE_CHECK_MSG((a) != (b), "(" << (a) << " vs " << (b) << ")")
#define LASAGNE_CHECK_LT(a, b) \
  LASAGNE_CHECK_MSG((a) < (b), "(" << (a) << " vs " << (b) << ")")
#define LASAGNE_CHECK_LE(a, b) \
  LASAGNE_CHECK_MSG((a) <= (b), "(" << (a) << " vs " << (b) << ")")
#define LASAGNE_CHECK_GT(a, b) \
  LASAGNE_CHECK_MSG((a) > (b), "(" << (a) << " vs " << (b) << ")")
#define LASAGNE_CHECK_GE(a, b) \
  LASAGNE_CHECK_MSG((a) >= (b), "(" << (a) << " vs " << (b) << ")")

#ifdef NDEBUG
// Keep the condition syntactically alive (but unevaluated) so that
// variables referenced only in debug checks don't trigger
// -Wunused-variable in release builds.
#define LASAGNE_DCHECK(condition)            \
  do {                                       \
    (void)sizeof((condition) ? true : false); \
  } while (0)
#else
#define LASAGNE_DCHECK(condition) LASAGNE_CHECK(condition)
#endif

#endif  // LASAGNE_COMMON_CHECK_H_
