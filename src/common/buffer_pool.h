#ifndef LASAGNE_COMMON_BUFFER_POOL_H_
#define LASAGNE_COMMON_BUFFER_POOL_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace lasagne {

/// Process-wide, thread-safe, size-bucketed pool of 64-byte-aligned
/// float buffers.
///
/// Training reallocates the same handful of tensor shapes every epoch
/// (autograd forward/backward temporaries, Adam scratch, aggregator
/// intermediates). The pool turns that churn into checkout/return of
/// cached buffers: requests are rounded up to a power-of-two bucket,
/// each bucket keeps a freelist, and a released buffer is handed back
/// verbatim to the next acquire of the same bucket. After the first
/// epoch has populated the buckets, steady-state training allocates
/// (almost) nothing.
///
/// Buffers are uninitialized on acquire — callers that need zeros must
/// clear them (Tensor's zeroing constructor does). A global byte cap
/// bounds cached memory; releases beyond the cap free eagerly and
/// count as evictions. Under AddressSanitizer the cache is bypassed
/// (every acquire is a fresh allocation) so use-after-free of pooled
/// storage stays visible to the sanitizer.
///
/// Stats are always-on relaxed atomics (a few nanoseconds per alloc);
/// when the observability registry is enabled the pool also mirrors
/// hits/misses into the `tensor.alloc.pool_hits` /
/// `tensor.alloc.pool_misses` counters.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;        // acquires served from a freelist
    uint64_t misses = 0;      // acquires that had to allocate
    uint64_t evictions = 0;   // releases freed because of the byte cap
    uint64_t cached_bytes = 0;  // bytes currently sitting in freelists
  };

  static BufferPool& Global();

  /// Returns a 64-byte-aligned buffer with capacity for at least
  /// `count` floats. Contents are uninitialized. `count == 0` returns
  /// nullptr. Thread-safe.
  float* Acquire(size_t count);

  /// Returns a buffer obtained from Acquire(count) to the pool (or
  /// frees it when the cache is over its byte cap). `ptr == nullptr`
  /// is a no-op. Thread-safe.
  void Release(float* ptr, size_t count);

  Stats GetStats() const;
  void ResetStats();

  /// Frees every cached buffer (outstanding buffers are unaffected).
  void Trim();

  /// Caps the total bytes kept in freelists. Releases that would
  /// exceed the cap free their buffer instead of caching it.
  void SetCachedBytesLimit(uint64_t bytes);
  uint64_t cached_bytes_limit() const {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Bucket capacity (in floats) a request of `count` floats maps to:
  /// the next power of two >= max(count, 64). Exposed for tests.
  static size_t BucketCapacity(size_t count);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  BufferPool() = default;

  // log2(BucketCapacity): buckets 6 (64 floats) .. 40 (2^40 floats).
  static constexpr size_t kMinBucketLog2 = 6;
  static constexpr size_t kNumBuckets = 35;

  std::mutex mutex_;  // guards free_lists_
  std::array<std::vector<float*>, kNumBuckets> free_lists_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> cached_bytes_{0};
  std::atomic<uint64_t> limit_{512ull << 20};  // 512 MiB default
};

namespace internal {

/// RAII float buffer checked out of BufferPool::Global(). Move-only;
/// the destructor returns the storage to the pool. This is the storage
/// type behind Tensor.
class PoolBuffer {
 public:
  PoolBuffer() = default;
  explicit PoolBuffer(size_t count)
      : data_(BufferPool::Global().Acquire(count)), count_(count) {}
  ~PoolBuffer() { BufferPool::Global().Release(data_, count_); }

  PoolBuffer(PoolBuffer&& other) noexcept
      : data_(other.data_), count_(other.count_) {
    other.data_ = nullptr;
    other.count_ = 0;
  }
  PoolBuffer& operator=(PoolBuffer&& other) noexcept {
    if (this != &other) {
      BufferPool::Global().Release(data_, count_);
      data_ = other.data_;
      count_ = other.count_;
      other.data_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }
  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t count() const { return count_; }

 private:
  float* data_ = nullptr;
  size_t count_ = 0;
};

}  // namespace internal
}  // namespace lasagne

#endif  // LASAGNE_COMMON_BUFFER_POOL_H_
