#ifndef LASAGNE_COMMON_BUFFER_POOL_H_
#define LASAGNE_COMMON_BUFFER_POOL_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace lasagne {

namespace internal {
struct Magazine;
}  // namespace internal

/// Process-wide, thread-safe, size-bucketed pool of 64-byte-aligned
/// float buffers.
///
/// Training reallocates the same handful of tensor shapes every epoch
/// (autograd forward/backward temporaries, Adam scratch, aggregator
/// intermediates). The pool turns that churn into checkout/return of
/// cached buffers: requests are rounded up to a power-of-two bucket,
/// each bucket keeps a freelist, and a released buffer is handed back
/// verbatim to the next acquire of the same bucket. After the first
/// epoch has populated the buckets, steady-state training allocates
/// (almost) nothing.
///
/// The pool is sharded (docs/SERVING.md "Pool sharding"): every thread
/// keeps a small bounded *magazine* per bucket — acquire pops and
/// release pushes it with zero locking — and only magazine
/// overflow/underflow exchanges a batch of kMagazineBatch chunks with
/// the mutex-guarded global *depot*. A warm worker thread therefore
/// acquires and releases on the steady-state path without ever taking
/// the depot mutex; cross-thread releases (acquired on A, freed on B)
/// are safe because chunks of one bucket are interchangeable — the
/// chunk simply lands in B's magazine and flows back through the depot
/// when B's magazine overflows.
///
/// Buffers are uninitialized on acquire — callers that need zeros must
/// clear them (Tensor's zeroing constructor does). A global byte cap
/// bounds cached memory *across the depot and every magazine*: caching
/// a released buffer atomically reserves its bytes against the cap
/// first, so concurrent releases can never overshoot it; releases that
/// fail the reservation free eagerly and count as evictions. Requests
/// larger than the top bucket bypass the freelists and the cap
/// entirely (served straight from the allocator, counted as misses).
/// Under AddressSanitizer the cache is bypassed (every acquire is a
/// fresh allocation) so use-after-free of pooled storage stays visible
/// to the sanitizer.
///
/// Trim() frees the depot and the calling thread's magazine eagerly
/// and marks every other thread's magazine stale (epoch bump); a stale
/// magazine frees its chunks on that thread's next pool interaction,
/// and a thread that exits drains its magazine into the depot. So
/// after Trim() the pool is cold for every thread that touches it
/// again, while idle threads' cached bytes linger only until they next
/// allocate or exit.
///
/// Stats are always-on relaxed atomics (a few nanoseconds per alloc);
/// when the observability registry is enabled the pool also mirrors
/// hits/misses into `tensor.alloc.pool_hits` /
/// `tensor.alloc.pool_misses`, magazine-served hits into
/// `tensor.alloc.magazine_hits`, and depot exchanges into
/// `tensor.alloc.depot_refills` / `tensor.alloc.depot_flushes`.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;        // acquires served from a freelist
    uint64_t misses = 0;      // acquires that had to allocate
    uint64_t evictions = 0;   // releases freed because of the byte cap
    uint64_t cached_bytes = 0;  // bytes cached across depot + magazines
    // Sharding counters (docs/SERVING.md "Pool sharding"):
    uint64_t magazine_hits = 0;   // subset of hits served lock-free from
                                  // the calling thread's magazine
    uint64_t depot_refills = 0;   // magazine<-depot batch fetches (each
                                  // takes the depot mutex once)
    uint64_t depot_flushes = 0;   // magazine->depot batch returns (each
                                  // takes the depot mutex once)
    uint64_t oversize_acquires = 0;  // requests above the top bucket,
                                     // served straight from the
                                     // allocator (also counted as
                                     // misses)
  };

  /// Monotonic per-thread view of the global pool traffic this thread
  /// generated (workspace-served acquires are invisible to it). Unlike
  /// GetStats(), deltas of these are meaningful under concurrency:
  /// another thread's allocations can never leak into this thread's
  /// before/after window.
  ///
  /// Monotonic contract: these counters only ever increase over a
  /// thread's lifetime. ResetStats() resets the *global* counters but
  /// deliberately never touches any thread's ThreadStats (it cannot —
  /// they live in other threads' TLS). Consumers must therefore use
  /// before/after *deltas* exclusively (serving.cc and server.cc do);
  /// comparing a raw ThreadStats value against a global counter that
  /// was reset in between compares different epochs and is a bug.
  struct ThreadStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  // log2(BucketCapacity): buckets 6 (64 floats) .. 40 (2^40 floats).
  static constexpr size_t kMinBucketLog2 = 6;
  static constexpr size_t kNumBuckets = 35;

  // Magazine geometry (exposed for tests): each thread caches at most
  // kMagazineChunks chunks per bucket and exchanges kMagazineBatch
  // chunks with the depot per mutex acquisition, so steady-state depot
  // traffic is amortized 1/kMagazineBatch per cross-thread release and
  // zero for same-thread reuse.
  static constexpr size_t kMagazineChunks = 16;
  static constexpr size_t kMagazineBatch = 8;

  static BufferPool& Global();

  /// Stats for the calling thread only. Thread-safe by construction.
  static ThreadStats GetThreadStats();

  /// Pre-reserved arena that can satisfy a fixed working set of pool
  /// requests without touching the global pool (no mutex, no stats —
  /// `tensor.alloc.pool_hits/misses` stay flat while it serves).
  ///
  /// Two-phase: while a non-finalized workspace is installed via
  /// WorkspaceScope, acquires are *recorded* (per-bucket high-water
  /// marks) but still served by the global pool. Finalize() then
  /// allocates one contiguous 64-byte-aligned slab sized to the
  /// high-water marks and carves it into per-bucket free stacks; under
  /// a finalized scope, acquires pop from those stacks. A finalized
  /// workspace that runs dry (workload grew beyond the recording)
  /// counts an overflow and falls back to the global pool — correct,
  /// just no longer free of pool traffic.
  ///
  /// Buffers served by a workspace MUST be released while the same
  /// workspace is still installed on the releasing thread (the release
  /// returns the chunk to the workspace's free stack; the global pool
  /// never sees it). The execution-plan interpreter (src/infer/plan.h)
  /// guarantees this by scoping every intermediate inside Run(). Not
  /// thread-safe: one workspace serves one thread at a time. Under the
  /// ASan pool bypass the workspace is inert (never consulted).
  class Workspace {
   public:
    Workspace() = default;
    ~Workspace();

    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;

    /// Ends the recording phase: reserves the slab. Idempotent.
    void Finalize();

    bool finalized() const { return finalized_; }
    /// Slab size in bytes (0 before Finalize or when nothing was
    /// recorded).
    uint64_t reserved_bytes() const;
    /// Finalized acquires that could not be served from the slab.
    uint64_t overflow_acquires() const { return overflow_; }

   private:
    friend class BufferPool;

    /// Finalized: pop a chunk or count an overflow. Recording: track
    /// the high-water mark and return nullptr (global pool serves).
    float* AcquireChunk(size_t bucket);
    /// True when `ptr` belongs to the slab (chunk returned to the free
    /// stack); false sends the buffer back to the global pool.
    bool ReleaseChunk(float* ptr, size_t bucket);

    bool finalized_ = false;
    std::array<uint32_t, kNumBuckets> live_{};
    std::array<uint32_t, kNumBuckets> high_water_{};
    std::array<std::vector<float*>, kNumBuckets> free_;
    float* slab_ = nullptr;
    size_t slab_floats_ = 0;
    uint64_t overflow_ = 0;
  };

  /// RAII: installs `ws` as the calling thread's workspace for the
  /// scope's lifetime (restores the previous one on exit).
  class WorkspaceScope {
   public:
    explicit WorkspaceScope(Workspace* ws);
    ~WorkspaceScope();

    WorkspaceScope(const WorkspaceScope&) = delete;
    WorkspaceScope& operator=(const WorkspaceScope&) = delete;

   private:
    Workspace* previous_ = nullptr;
  };

  /// Returns a 64-byte-aligned buffer with capacity for at least
  /// `count` floats. Contents are uninitialized. `count == 0` returns
  /// nullptr. Thread-safe.
  float* Acquire(size_t count);

  /// Returns a buffer obtained from Acquire(count) to the pool (or
  /// frees it when the cache is over its byte cap). `ptr == nullptr`
  /// is a no-op. Thread-safe.
  void Release(float* ptr, size_t count);

  Stats GetStats() const;
  /// Resets the global hit/miss/eviction/sharding counters (not
  /// cached_bytes, which is an accounting balance, and not any
  /// thread's ThreadStats — see the monotonic contract above).
  void ResetStats();

  /// Frees every cached buffer (outstanding buffers are unaffected).
  /// The depot and the calling thread's magazine are freed eagerly;
  /// other threads' magazines are marked stale and free themselves on
  /// that thread's next Acquire/Release (or move to the depot when the
  /// thread exits).
  void Trim();

  /// Caps the total bytes kept cached (depot + all magazines).
  /// Releases that would exceed the cap free their buffer instead of
  /// caching it. Lowering the cap does not evict retroactively — call
  /// Trim() to flush immediately.
  void SetCachedBytesLimit(uint64_t bytes);
  uint64_t cached_bytes_limit() const {
    return limit_.load(std::memory_order_relaxed);
  }

  /// Bucket capacity (in floats) a request of `count` floats maps to:
  /// the next power of two >= max(count, 64). Exposed for tests.
  static size_t BucketCapacity(size_t count);

  /// Test seam for the oversize path: pretend the pool only has
  /// `count` buckets (1..kNumBuckets), so requests above bucket
  /// `count - 1` take the oversize direct-allocation route without the
  /// test having to allocate > 2^40 floats. Returns the previous
  /// value. Callers should Trim() before shrinking and restore + Trim()
  /// after, so chunks cached under one geometry are not re-bucketed
  /// under another.
  size_t SetBucketCountForTest(size_t count);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  friend struct internal::Magazine;

  BufferPool() = default;

  /// Atomically reserves `bytes` against the cache cap. The
  /// reservation IS the cap check: concurrent releases each
  /// fetch_add-then-verify, so the sum of successful reservations can
  /// never exceed the limit (the failing side backs its bytes out).
  bool TryReserveCachedBytes(uint64_t bytes);

  /// Frees a thread's stale magazine if a Trim happened since it last
  /// touched the pool.
  void SyncMagazineEpoch(internal::Magazine& mag);

  /// Thread-exit hook (Magazine destructor): a current-epoch magazine
  /// splices its chunks into the depot (bytes stay cached); a stale
  /// one frees them.
  void DrainMagazineOnThreadExit(internal::Magazine& mag);

  /// Frees every chunk in `list` and returns the bytes to the cap
  /// accounting. `capacity` is the bucket capacity in floats.
  void FreeChunkList(std::vector<float*>& list, size_t capacity);

  std::mutex mutex_;  // guards free_lists_ (the depot)
  std::array<std::vector<float*>, kNumBuckets> free_lists_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> cached_bytes_{0};
  std::atomic<uint64_t> limit_{512ull << 20};  // 512 MiB default
  std::atomic<uint64_t> magazine_hits_{0};
  std::atomic<uint64_t> depot_refills_{0};
  std::atomic<uint64_t> depot_flushes_{0};
  std::atomic<uint64_t> oversize_{0};
  std::atomic<uint64_t> trim_epoch_{0};
  std::atomic<size_t> bucket_count_{kNumBuckets};
};

namespace internal {

/// Per-thread freelist cache ("magazine"): one bounded LIFO stack of
/// chunks per bucket, touched only by its owning thread, so pops and
/// pushes need no lock. Defined here (not in the .cc) so BufferPool
/// member functions can take it by reference; constructed lazily as a
/// thread_local in buffer_pool.cc, and its destructor drains the cache
/// back to the depot on thread exit.
struct Magazine {
  ~Magazine();

  std::array<std::vector<float*>, BufferPool::kNumBuckets> chunks;
  /// Last trim_epoch_ this magazine synchronized with; a mismatch
  /// means a Trim() happened and the cached chunks must be freed.
  uint64_t epoch = 0;
};

/// RAII float buffer checked out of BufferPool::Global(). Move-only;
/// the destructor returns the storage to the pool. This is the storage
/// type behind Tensor.
class PoolBuffer {
 public:
  PoolBuffer() = default;
  explicit PoolBuffer(size_t count)
      : data_(BufferPool::Global().Acquire(count)), count_(count) {}
  ~PoolBuffer() { BufferPool::Global().Release(data_, count_); }

  PoolBuffer(PoolBuffer&& other) noexcept
      : data_(other.data_), count_(other.count_) {
    other.data_ = nullptr;
    other.count_ = 0;
  }
  PoolBuffer& operator=(PoolBuffer&& other) noexcept {
    if (this != &other) {
      BufferPool::Global().Release(data_, count_);
      data_ = other.data_;
      count_ = other.count_;
      other.data_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }
  PoolBuffer(const PoolBuffer&) = delete;
  PoolBuffer& operator=(const PoolBuffer&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  size_t count() const { return count_; }

 private:
  float* data_ = nullptr;
  size_t count_ = 0;
};

}  // namespace internal
}  // namespace lasagne

#endif  // LASAGNE_COMMON_BUFFER_POOL_H_
