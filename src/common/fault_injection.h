#ifndef LASAGNE_COMMON_FAULT_INJECTION_H_
#define LASAGNE_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace lasagne {

/// Deterministic fault-injection hook for exercising recovery paths.
///
/// Production code consults the global injector at the few places where
/// the runtime must handle failure: checkpoint writes (simulating a
/// crash or full disk after N bytes), gradient computation (simulating
/// numerical divergence at a chosen epoch), and the concurrent serving
/// front end (simulating a stalled dequeue or a poisoned worker; see
/// docs/SERVING.md). All arming is one-shot-per-count and disabled by
/// default, so the injector is a no-op outside tests.
///
/// Thread-safe: arm/consume/Reset may be called from any thread
/// (serving workers consume concurrently while a test thread arms).
/// AnyArmed() is a single relaxed atomic load, so the trainer-side
/// consult sites stay free. The serial-fallback contract for
/// experiment trials is unchanged: RunRepeatedExperiment checks
/// AnyArmed() and runs trials serially while any fault is armed, since
/// which trial consumes an armed count would otherwise be a race.
class FaultInjector {
 public:
  /// Process-wide instance consulted by serialization, the trainer and
  /// the serving workers.
  static FaultInjector& Global();

  /// Returns every knob to the disabled state and clears counters.
  void Reset();

  // -- I/O failures --------------------------------------------------------

  /// Arms the next `count` checkpoint writes to fail after exactly
  /// `byte_offset` bytes have been written (0 = fail before any byte),
  /// leaving a torn temp file behind as a real crash would.
  void ArmWriteFailure(size_t byte_offset, int count = 1);

  /// Consulted by the atomic file writer. When armed, consumes one
  /// count, stores the cut-off in `*fail_after_bytes`, and returns
  /// true; the writer must stop at that offset and report an I/O error.
  bool ConsumeWriteFailure(size_t* fail_after_bytes);

  // -- Numerical faults ----------------------------------------------------

  /// Arms gradient poisoning: at training epoch `epoch` (for the next
  /// `count` times that epoch index is reached, across runs), the
  /// trainer overwrites one gradient entry with NaN after backward.
  void ArmNanGradient(size_t epoch, int count = 1);

  /// Consulted by the trainer after backward. Consumes one count and
  /// returns true when `epoch` matches the armed epoch.
  bool ConsumeNanGradient(size_t epoch);

  // -- Serving faults ------------------------------------------------------

  /// Arms the next `count` dequeued serving batches (on whichever
  /// worker dequeues them) to stall for `stall_ms` before computing —
  /// a slow request. The stall happens before the forward pass, so a
  /// victim's latency degrades while other workers keep serving.
  void ArmServeStall(double stall_ms, int count = 1);

  /// Consulted by a serving worker per dequeued batch. When armed,
  /// consumes one count, stores the stall in `*stall_ms` and returns
  /// true; the worker must sleep that long before serving.
  bool ConsumeServeStall(double* stall_ms);

  /// Arms the next `count` batches dequeued by worker `worker` to fail:
  /// the worker resolves every request in the batch with an INTERNAL
  /// error instead of running the forward pass (a poisoned worker).
  void ArmServeFailure(int worker, int count = 1);

  /// Consulted by serving worker `worker` per dequeued batch. Consumes
  /// one count and returns true only when `worker` matches the armed
  /// worker index.
  bool ConsumeServeFailure(int worker);

  /// True while any fault is armed (one relaxed atomic load).
  /// Coarse-grained parallelism (e.g. concurrent experiment trials)
  /// falls back to serial execution when faults are armed, since which
  /// trial consumes an armed count would otherwise be a race.
  bool AnyArmed() const {
    return any_armed_.load(std::memory_order_relaxed);
  }

  // -- Observability -------------------------------------------------------

  size_t write_failures_injected() const;
  size_t nan_gradients_injected() const;
  size_t serve_stalls_injected() const;
  size_t serve_failures_injected() const;

 private:
  FaultInjector() = default;

  /// Recomputes the any_armed_ fast-path flag; callers hold mutex_.
  void UpdateArmedFlag();

  mutable std::mutex mutex_;
  std::atomic<bool> any_armed_{false};

  int write_failures_armed_ = 0;
  size_t write_fail_offset_ = 0;
  int nan_gradients_armed_ = 0;
  size_t nan_gradient_epoch_ = 0;
  int serve_stalls_armed_ = 0;
  double serve_stall_ms_ = 0.0;
  int serve_failures_armed_ = 0;
  int serve_failure_worker_ = -1;

  size_t write_failures_injected_ = 0;
  size_t nan_gradients_injected_ = 0;
  size_t serve_stalls_injected_ = 0;
  size_t serve_failures_injected_ = 0;
};

}  // namespace lasagne

#endif  // LASAGNE_COMMON_FAULT_INJECTION_H_
