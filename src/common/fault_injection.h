#ifndef LASAGNE_COMMON_FAULT_INJECTION_H_
#define LASAGNE_COMMON_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>

namespace lasagne {

/// Deterministic fault-injection hook for exercising recovery paths.
///
/// Production code consults the global injector at the few places where
/// the fault-tolerant runtime must handle failure: checkpoint writes
/// (simulating a crash or full disk after N bytes) and gradient
/// computation (simulating numerical divergence at a chosen epoch).
/// All arming is one-shot-per-count and disabled by default, so the
/// injector is a no-op outside tests. Not thread-safe; tests arm it
/// from the thread that trains.
class FaultInjector {
 public:
  /// Process-wide instance consulted by serialization and the trainer.
  static FaultInjector& Global();

  /// Returns every knob to the disabled state and clears counters.
  void Reset();

  // -- I/O failures --------------------------------------------------------

  /// Arms the next `count` checkpoint writes to fail after exactly
  /// `byte_offset` bytes have been written (0 = fail before any byte),
  /// leaving a torn temp file behind as a real crash would.
  void ArmWriteFailure(size_t byte_offset, int count = 1);

  /// Consulted by the atomic file writer. When armed, consumes one
  /// count, stores the cut-off in `*fail_after_bytes`, and returns
  /// true; the writer must stop at that offset and report an I/O error.
  bool ConsumeWriteFailure(size_t* fail_after_bytes);

  // -- Numerical faults ----------------------------------------------------

  /// Arms gradient poisoning: at training epoch `epoch` (for the next
  /// `count` times that epoch index is reached, across runs), the
  /// trainer overwrites one gradient entry with NaN after backward.
  void ArmNanGradient(size_t epoch, int count = 1);

  /// Consulted by the trainer after backward. Consumes one count and
  /// returns true when `epoch` matches the armed epoch.
  bool ConsumeNanGradient(size_t epoch);

  /// True while any fault is armed. Coarse-grained parallelism (e.g.
  /// concurrent experiment trials) falls back to serial execution when
  /// faults are armed, since which trial consumes an armed count would
  /// otherwise be a race.
  bool AnyArmed() const {
    return write_failures_armed_ > 0 || nan_gradients_armed_ > 0;
  }

  // -- Observability -------------------------------------------------------

  size_t write_failures_injected() const { return write_failures_injected_; }
  size_t nan_gradients_injected() const { return nan_gradients_injected_; }

 private:
  FaultInjector() = default;

  int write_failures_armed_ = 0;
  size_t write_fail_offset_ = 0;
  int nan_gradients_armed_ = 0;
  size_t nan_gradient_epoch_ = 0;
  size_t write_failures_injected_ = 0;
  size_t nan_gradients_injected_ = 0;
};

}  // namespace lasagne

#endif  // LASAGNE_COMMON_FAULT_INJECTION_H_
