#ifndef LASAGNE_COMMON_THREAD_POOL_H_
#define LASAGNE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lasagne {

/// Sets the number of threads used by ParallelFor / ParallelReduce.
/// `n == 0` restores the default (the LASAGNE_NUM_THREADS environment
/// variable if set, otherwise std::thread::hardware_concurrency()).
/// Safe to call at any time outside a parallel region; the global pool
/// is resized lazily before the next parallel call.
void SetNumThreads(size_t n);

/// Number of threads parallel kernels will use (>= 1).
size_t GetNumThreads();

/// True when the calling thread is already inside a parallel region (a
/// ParallelFor/ParallelReduce task, or a scope holding a
/// ParallelRegionGuard). Nested parallel calls run inline and serial.
bool InParallelRegion();

/// RAII marker that makes every ParallelFor/ParallelReduce issued from
/// the current thread run inline and serial for the guard's lifetime.
/// Used by coarse-grained parallelism (e.g. concurrent experiment
/// trials) so inner kernels do not oversubscribe the machine and each
/// trial's arithmetic stays identical to a single-threaded run.
class ParallelRegionGuard {
 public:
  ParallelRegionGuard();
  ~ParallelRegionGuard();
  ParallelRegionGuard(const ParallelRegionGuard&) = delete;
  ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;

 private:
  bool previous_;
};

/// Runs `fn(chunk_begin, chunk_end)` over a partition of [begin, end).
///
/// Determinism contract: the partition is a pure function of
/// (begin, end, grain) and the thread count only decides which thread
/// executes which chunk. A kernel whose chunks write disjoint outputs
/// (each output element produced by exactly one chunk, inner loops in a
/// fixed order) therefore produces results bitwise-identical to the
/// serial loop at every thread count.
///
/// Ranges of `grain` elements or fewer, nested calls and 1-thread pools
/// run `fn(begin, end)` inline on the caller. `fn` must be safe to
/// invoke concurrently from multiple threads.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Ordered parallel reduction: splits [begin, end) into fixed chunks of
/// exactly `grain` elements (the last chunk may be short), evaluates
/// `chunk_fn(chunk_begin, chunk_end) -> double` for each, and returns
/// the chunk partials summed in ascending chunk order.
///
/// Because the chunk boundaries depend only on `grain` — never on the
/// thread count — the float association is fixed and the result is
/// bitwise-identical at 1, 2 or N threads.
double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& chunk_fn);

namespace internal {

/// Lazily-initialized global worker pool behind ParallelFor. Exposed
/// for tests; library code should use the free functions above.
class ThreadPool {
 public:
  static ThreadPool& Global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Threads participating in a region (workers + the calling thread).
  size_t num_threads();

  /// Requests `n` total threads (0 = default). Applied lazily.
  void SetNumThreads(size_t n);

  /// Runs `task(i)` for i in [0, num_tasks), blocking until all tasks
  /// finish. The calling thread participates. Regions are serialized:
  /// concurrent callers take turns.
  void Run(size_t num_tasks, const std::function<void(size_t)>& task);

 private:
  ThreadPool();

  void EnsureWorkers();   // spawns/reaps workers to match the request
  void WorkerLoop();
  void RunTasks();        // claims and runs tasks until the region drains

  std::mutex region_mutex_;  // one parallel region at a time

  std::mutex mutex_;         // guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  size_t requested_threads_ = 0;  // 0 = default
  const std::function<void(size_t)>* task_ = nullptr;
  size_t num_tasks_ = 0;
  size_t next_task_ = 0;
  size_t remaining_ = 0;
  bool shutdown_ = false;
};

}  // namespace internal
}  // namespace lasagne

#endif  // LASAGNE_COMMON_THREAD_POOL_H_
