#include "nn/layers.h"

#include "autograd/forward_trace.h"
#include "common/check.h"
#include "obs/trace.h"

namespace lasagne::nn {

Linear::Linear(size_t in_dim, size_t out_dim, Rng& rng, bool bias)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = ag::MakeParameter(Tensor::GlorotUniform(in_dim, out_dim, rng));
  if (bias) bias_ = ag::MakeParameter(Tensor::Zeros(1, out_dim));
}

ag::Variable Linear::Forward(const ag::Variable& x) const {
  ag::Variable out = ag::MatMul(x, weight_);
  if (bias_ != nullptr) {
    // Fused row broadcast; bitwise the old ones(N,1) @ bias(1,D) + Add
    // formulation in both directions (docs/KERNELS.md) without the
    // N x D temporary or the rank-1 GEMM.
    out = ag::AddRowVector(out, bias_);
  }
  return out;
}

std::vector<ag::Variable> Linear::Parameters() const {
  std::vector<ag::Variable> params = {weight_};
  if (bias_ != nullptr) params.push_back(bias_);
  return params;
}

GraphConvolution::GraphConvolution(size_t in_dim, size_t out_dim, Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = ag::MakeParameter(Tensor::GlorotUniform(in_dim, out_dim, rng));
}

ag::Variable GraphConvolution::Forward(
    const std::shared_ptr<const CsrMatrix>& a_hat, const ag::Variable& x,
    const ForwardContext& ctx, float dropout, bool relu) const {
  LASAGNE_TRACE_SCOPE("graph_conv");
  LASAGNE_CHECK(ctx.rng != nullptr);
  ag::Variable h = x;
  if (dropout > 0.0f) h = ag::Dropout(h, dropout, *ctx.rng, ctx.training);
  h = ag::SpMM(a_hat, ag::MatMul(h, weight_));
  if (relu) h = ag::Relu(h);
  return h;
}

GatHead::GatHead(size_t in_dim, size_t out_dim, Rng& rng) {
  weight_ = ag::MakeParameter(Tensor::GlorotUniform(in_dim, out_dim, rng));
  attn_dst_ = ag::MakeParameter(Tensor::GlorotUniform(out_dim, 1, rng));
  attn_src_ = ag::MakeParameter(Tensor::GlorotUniform(out_dim, 1, rng));
}

ag::Variable GatHead::Forward(
    const std::shared_ptr<const ag::EdgeStructure>& edges,
    const ag::Variable& x, const ForwardContext& ctx, float dropout,
    std::shared_ptr<const std::vector<float>> edge_bias) const {
  LASAGNE_TRACE_SCOPE("gat_head");
  LASAGNE_CHECK(ctx.rng != nullptr);
  ag::Variable h = x;
  if (dropout > 0.0f) h = ag::Dropout(h, dropout, *ctx.rng, ctx.training);
  ag::Variable wh = ag::MatMul(h, weight_);
  ag::Variable scores_dst = ag::MatMul(wh, attn_dst_);
  ag::Variable scores_src = ag::MatMul(wh, attn_src_);
  // Single-pass fused attention chain (bitwise-identical to the raw op
  // chain below in both directions). Not taken when training dropout
  // sits between the softmax and the aggregation, nor under an active
  // ForwardTrace — traces keep the raw chain so the execution plan's
  // super-fusion rule collapses it at compile time (and the plan-nofuse
  // baseline stays a true per-op replay).
  if (ag::FusedEdgeAttentionEnabled() && !(ctx.training && dropout > 0.0f) &&
      !ag::internal::ForwardTraceActive()) {
    return ag::EdgeAttention(scores_dst, scores_src, wh, edges, 0.2f,
                             edge_bias);
  }
  ag::Variable e = ag::GatherEdgeScores(scores_dst, scores_src, edges);
  if (edge_bias != nullptr) e = ag::AddEdgeBias(e, edge_bias);
  e = ag::LeakyRelu(e, 0.2f);
  ag::Variable alpha = ag::EdgeSoftmax(e, edges);
  if (dropout > 0.0f) {
    alpha = ag::Dropout(alpha, dropout, *ctx.rng, ctx.training);
  }
  return ag::EdgeWeightedAggregate(alpha, wh, edges);
}

std::vector<ag::Variable> GatHead::Parameters() const {
  return {weight_, attn_dst_, attn_src_};
}

GatMultiHead::GatMultiHead(size_t in_dim, size_t out_dim_per_head,
                           size_t num_heads, bool concat, Rng& rng)
    : out_dim_per_head_(out_dim_per_head), concat_(concat) {
  LASAGNE_CHECK_GT(num_heads, 0u);
  heads_.reserve(num_heads);
  for (size_t i = 0; i < num_heads; ++i) {
    heads_.emplace_back(in_dim, out_dim_per_head, rng);
  }
}

ag::Variable GatMultiHead::Forward(
    const std::shared_ptr<const ag::EdgeStructure>& edges,
    const ag::Variable& x, const ForwardContext& ctx, float dropout,
    std::shared_ptr<const std::vector<float>> edge_bias) const {
  std::vector<ag::Variable> outs;
  outs.reserve(heads_.size());
  for (const GatHead& head : heads_) {
    outs.push_back(head.Forward(edges, x, ctx, dropout, edge_bias));
  }
  if (outs.size() == 1) return outs[0];
  if (concat_) return ag::ConcatCols(outs);
  ag::Variable sum = ag::AddMany(outs);
  return ag::ScalarMul(sum, 1.0f / static_cast<float>(outs.size()));
}

std::vector<ag::Variable> GatMultiHead::Parameters() const {
  std::vector<ag::Variable> params;
  for (const GatHead& head : heads_) {
    for (const ag::Variable& p : head.Parameters()) params.push_back(p);
  }
  return params;
}

size_t GatMultiHead::out_dim() const {
  return concat_ ? out_dim_per_head_ * heads_.size() : out_dim_per_head_;
}

}  // namespace lasagne::nn
