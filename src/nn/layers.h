#ifndef LASAGNE_NN_LAYERS_H_
#define LASAGNE_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "autograd/edge_ops.h"
#include "autograd/ops.h"
#include "autograd/variable.h"
#include "sparse/csr_matrix.h"
#include "tensor/rng.h"

namespace lasagne::nn {

/// Per-forward context: training mode and the RNG driving dropout /
/// stochastic aggregation / edge sampling.
struct ForwardContext {
  bool training = false;
  Rng* rng = nullptr;
};

/// Dense affine layer `x W (+ b)`.
class Linear {
 public:
  Linear(size_t in_dim, size_t out_dim, Rng& rng, bool bias = false);

  ag::Variable Forward(const ag::Variable& x) const;

  std::vector<ag::Variable> Parameters() const;
  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  ag::Variable weight_;
  ag::Variable bias_;  // nullptr when disabled
};

/// GCN layer (paper Eq. 1): `act(A_hat x W)` with optional input dropout.
///
/// The propagation operator is passed at call time so that one layer
/// object can serve sampled/partitioned operators (DropEdge, ClusterGCN).
class GraphConvolution {
 public:
  GraphConvolution(size_t in_dim, size_t out_dim, Rng& rng);

  /// `activation`: 0 = identity, 1 = ReLU.
  ag::Variable Forward(const std::shared_ptr<const CsrMatrix>& a_hat,
                       const ag::Variable& x, const ForwardContext& ctx,
                       float dropout = 0.0f, bool relu = true) const;

  std::vector<ag::Variable> Parameters() const { return {weight_}; }
  const ag::Variable& weight() const { return weight_; }
  size_t in_dim() const { return in_dim_; }
  size_t out_dim() const { return out_dim_; }

 private:
  size_t in_dim_;
  size_t out_dim_;
  ag::Variable weight_;
};

/// Single-head graph attention layer (Velickovic et al., ICLR'18):
/// e_ij = LeakyReLU(aL . W h_i + aR . W h_j), alpha = edge-softmax(e),
/// out_i = sum_j alpha_ij W h_j. Multi-head use concatenates several
/// instances (see GatMultiHead).
class GatHead {
 public:
  GatHead(size_t in_dim, size_t out_dim, Rng& rng);

  /// `edge_bias`: optional per-edge additive prior before the softmax
  /// (used by the ADSF baseline's structural fingerprints).
  ag::Variable Forward(
      const std::shared_ptr<const ag::EdgeStructure>& edges,
      const ag::Variable& x, const ForwardContext& ctx,
      float dropout = 0.0f,
      std::shared_ptr<const std::vector<float>> edge_bias = nullptr) const;

  std::vector<ag::Variable> Parameters() const;

 private:
  ag::Variable weight_;
  ag::Variable attn_dst_;  // aL, (out_dim x 1)
  ag::Variable attn_src_;  // aR, (out_dim x 1)
};

/// Multi-head GAT layer; head outputs are concatenated (hidden layers)
/// or averaged (output layer).
class GatMultiHead {
 public:
  GatMultiHead(size_t in_dim, size_t out_dim_per_head, size_t num_heads,
               bool concat, Rng& rng);

  ag::Variable Forward(
      const std::shared_ptr<const ag::EdgeStructure>& edges,
      const ag::Variable& x, const ForwardContext& ctx,
      float dropout = 0.0f,
      std::shared_ptr<const std::vector<float>> edge_bias = nullptr) const;

  std::vector<ag::Variable> Parameters() const;
  size_t out_dim() const;

 private:
  std::vector<GatHead> heads_;
  size_t out_dim_per_head_;
  bool concat_;
};

}  // namespace lasagne::nn

#endif  // LASAGNE_NN_LAYERS_H_
