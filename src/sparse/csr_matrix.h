#ifndef LASAGNE_SPARSE_CSR_MATRIX_H_
#define LASAGNE_SPARSE_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace lasagne {

/// A weighted edge used when assembling sparse matrices.
struct Triplet {
  uint32_t row;
  uint32_t col;
  float value;
};

/// Compressed Sparse Row matrix (float32 values, 32-bit indices).
///
/// `CsrMatrix` carries every propagation operator in the library: the
/// normalized adjacency \f$\hat A = \tilde D^{-1/2}\tilde A\tilde
/// D^{-1/2}\f$, its powers, PPMI matrices and sampled sub-adjacencies.
/// Rows are sorted by column index; duplicate (row, col) entries are
/// coalesced (summed) at construction.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() : rows_(0), cols_(0), row_ptr_{0} {}

  /// Builds from triplets. Duplicates are summed; explicit zeros kept.
  static CsrMatrix FromTriplets(size_t rows, size_t cols,
                                std::vector<Triplet> triplets);

  /// Builds from a dense matrix, dropping entries with |v| <= tolerance.
  static CsrMatrix FromDense(const Tensor& dense, float tolerance = 0.0f);

  /// Identity matrix.
  static CsrMatrix Identity(size_t n);

  // -- Shape / storage ---------------------------------------------------

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& mutable_values() { return values_; }

  /// Number of stored entries in row r.
  size_t RowNnz(size_t r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  // -- Core kernels ------------------------------------------------------

  /// Sparse-dense product `this (r x c) * dense (c x d)`.
  Tensor Multiply(const Tensor& dense) const;

  /// `this^T * dense` without materializing the transpose.
  Tensor TransposedMultiply(const Tensor& dense) const;

  /// Sparse matrix-vector product (dense given as n x 1).
  Tensor MultiplyVector(const Tensor& vec) const;

  /// Materialized transpose.
  CsrMatrix Transpose() const;

  /// Sparse-sparse product (used for adjacency powers). The result keeps
  /// entries with |v| > prune_tolerance; pass row_cap > 0 to keep only
  /// the largest row_cap entries of each row (density control).
  CsrMatrix Multiply(const CsrMatrix& other, float prune_tolerance = 0.0f,
                     size_t row_cap = 0) const;

  /// Elementwise sum of two matrices with identical shapes.
  CsrMatrix Add(const CsrMatrix& other) const;

  /// Returns a copy with every stored value multiplied by `scalar`.
  CsrMatrix Scale(float scalar) const;

  /// Scales row i by row_factors(i, 0) and column j by col_factors(j, 0).
  CsrMatrix ScaleRowsCols(const Tensor& row_factors,
                          const Tensor& col_factors) const;

  /// Row-normalizes so each nonempty row sums to one.
  CsrMatrix RowStochastic() const;

  /// Dense materialization (small matrices / tests only).
  Tensor ToDense() const;

  /// Value at (r, c), zero when not stored. O(log nnz(row)).
  float At(size_t r, size_t c) const;

  /// Extracts the induced submatrix on `rows x cols` index sets.
  /// Index vectors map new index -> old index; must be strictly
  /// increasing is NOT required, but must not repeat.
  CsrMatrix SubMatrix(const std::vector<uint32_t>& row_ids,
                      const std::vector<uint32_t>& col_ids) const;

  /// True when the matrix equals its transpose (up to tolerance).
  bool IsSymmetric(float tolerance = 1e-6f) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;    // size rows_ + 1
  std::vector<uint32_t> col_idx_;  // size nnz
  std::vector<float> values_;      // size nnz
};

}  // namespace lasagne

#endif  // LASAGNE_SPARSE_CSR_MATRIX_H_
