#include "sparse/csr_matrix.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel_config.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/kernels.h"

namespace lasagne {

namespace {

// Per-kernel call counters (function-local statics are thread-safe;
// the steady-state path is one relaxed load + one relaxed fetch_add).
inline void CountSpmm() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::Global().GetCounter("sparse.spmm.calls");
    calls.Increment();
  }
}

inline void CountSpmmTransposed() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::Global().GetCounter("sparse.spmm_t.calls");
    calls.Increment();
  }
}

inline void CountSpGemm() {
  if (obs::MetricsEnabled()) {
    static obs::Counter& calls =
        obs::MetricsRegistry::Global().GetCounter("sparse.spgemm.calls");
    calls.Increment();
  }
}

}  // namespace

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    LASAGNE_CHECK_LT(t.row, rows);
    LASAGNE_CHECK_LT(t.col, cols);
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  for (size_t r = 0; r < rows; ++r) {
    while (i < triplets.size() && triplets[i].row == r) {
      // Coalesce duplicates within the row.
      uint32_t c = triplets[i].col;
      float v = triplets[i].value;
      ++i;
      while (i < triplets.size() && triplets[i].row == r &&
             triplets[i].col == c) {
        v += triplets[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[r + 1] = m.col_idx_.size();
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Tensor& dense, float tolerance) {
  std::vector<Triplet> triplets;
  for (size_t r = 0; r < dense.rows(); ++r) {
    for (size_t c = 0; c < dense.cols(); ++c) {
      float v = dense(r, c);
      if (std::fabs(v) > tolerance) {
        triplets.push_back({static_cast<uint32_t>(r),
                            static_cast<uint32_t>(c), v});
      }
    }
  }
  return FromTriplets(dense.rows(), dense.cols(), std::move(triplets));
}

CsrMatrix CsrMatrix::Identity(size_t n) {
  std::vector<Triplet> triplets;
  triplets.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    triplets.push_back({static_cast<uint32_t>(i), static_cast<uint32_t>(i),
                        1.0f});
  }
  return FromTriplets(n, n, std::move(triplets));
}

Tensor CsrMatrix::Multiply(const Tensor& dense) const {
  LASAGNE_TRACE_SCOPE("spmm");
  CountSpmm();
  LASAGNE_CHECK_EQ(cols_, dense.rows());
  const size_t d = dense.cols();
  Tensor out = Tensor::Uninitialized(rows_, d);
  // Row-partitioned SpMM, register-blocked kColTile output columns per
  // pass: every output element keeps its serial ascending-k
  // accumulation order, so results are bitwise-identical to the serial
  // loop at every thread count (docs/KERNELS.md).
  const size_t work_per_row =
      (nnz() / std::max<size_t>(rows_, 1) + 1) * std::max<size_t>(d, 1);
  const size_t grain = std::max<size_t>(1, kGrain / work_per_row);
  ParallelFor(0, rows_, grain, [&](size_t row_begin, size_t row_end) {
    kernels::SpmmRows(row_ptr_.data(), col_idx_.data(), values_.data(),
                      dense.data(), d, out.data(), row_begin, row_end);
  });
  return out;
}

Tensor CsrMatrix::TransposedMultiply(const Tensor& dense) const {
  LASAGNE_TRACE_SCOPE("spmm_t");
  CountSpmmTransposed();
  LASAGNE_CHECK_EQ(rows_, dense.rows());
  Tensor out(cols_, dense.cols());
  const size_t d = dense.cols();
  // The scatter pattern (out[col_idx] += ...) races under a row
  // partition, so partition the dense columns instead: each chunk owns
  // the output column slice [col_begin, col_end) of every output row,
  // writes are disjoint, and each output element accumulates in the
  // serial ascending-r order — bitwise-identical at every thread count
  // with no per-thread buffers or merge step.
  const size_t col_grain =
      std::max<size_t>(1, kGrain / std::max<size_t>(nnz(), 1));
  ParallelFor(0, d, col_grain, [&](size_t col_begin, size_t col_end) {
    kernels::SpmmTransposedCols(row_ptr_.data(), col_idx_.data(),
                                values_.data(), rows_, dense.data(), d,
                                out.data(), col_begin, col_end);
  });
  return out;
}

Tensor CsrMatrix::MultiplyVector(const Tensor& vec) const {
  LASAGNE_CHECK_EQ(vec.cols(), 1u);
  return Multiply(vec);
}

CsrMatrix CsrMatrix::Transpose() const {
  std::vector<Triplet> triplets;
  triplets.reserve(nnz());
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      triplets.push_back({col_idx_[k], static_cast<uint32_t>(r), values_[k]});
    }
  }
  return FromTriplets(cols_, rows_, std::move(triplets));
}

CsrMatrix CsrMatrix::Multiply(const CsrMatrix& other, float prune_tolerance,
                              size_t row_cap) const {
  LASAGNE_TRACE_SCOPE("spgemm");
  CountSpGemm();
  LASAGNE_CHECK_EQ(cols_, other.rows_);
  std::vector<Triplet> triplets;
  // Gustavson's algorithm with a dense accumulator per row, merged in
  // kSpGemmColBlock-wide column blocks (kernels::SpGemmRowBlocked) so
  // the accumulator slice a row is building stays cache-resident.
  // Per output element the products accumulate in the unblocked
  // merge's ascending-A-entry order, so values are bitwise-unchanged.
  // A column is "touched" when it is tracked explicitly — testing
  // accumulator[c] == 0.0f would re-add a column whose partial sums
  // cancel to exactly zero mid-row, inflating the count toward row_cap
  // (pruning real entries) and emitting duplicate triplets.
  std::vector<float> accumulator(other.cols_, 0.0f);
  std::vector<uint8_t> is_touched(other.cols_, 0);
  std::vector<uint32_t> touched(other.cols_);
  size_t max_row_len = 0;
  for (size_t r = 0; r < rows_; ++r) {
    max_row_len = std::max(max_row_len, row_ptr_[r + 1] - row_ptr_[r]);
  }
  std::vector<size_t> cursors(max_row_len);
  for (size_t r = 0; r < rows_; ++r) {
    const size_t a_begin = row_ptr_[r];
    const size_t a_len = row_ptr_[r + 1] - a_begin;
    size_t count = kernels::SpGemmRowBlocked(
        col_idx_.data() + a_begin, values_.data() + a_begin, a_len,
        other.row_ptr_.data(), other.col_idx_.data(), other.values_.data(),
        other.cols_, accumulator.data(), is_touched.data(), touched.data(),
        cursors.data());
    if (row_cap > 0 && count > row_cap) {
      // Keep the row_cap largest-magnitude entries of the row. Ties at
      // the cap boundary break toward the lower column id — a strict
      // total order (column ids are distinct), so the kept set does not
      // depend on the order the merge discovered the columns in.
      std::nth_element(touched.begin(), touched.begin() + row_cap,
                       touched.begin() + count,
                       [&](uint32_t a, uint32_t b) {
                         const float fa = std::fabs(accumulator[a]);
                         const float fb = std::fabs(accumulator[b]);
                         if (fa != fb) return fa > fb;
                         return a < b;
                       });
      for (size_t i = row_cap; i < count; ++i) {
        accumulator[touched[i]] = 0.0f;
        is_touched[touched[i]] = 0;
      }
      count = row_cap;
    }
    for (size_t i = 0; i < count; ++i) {
      const uint32_t c = touched[i];
      const float v = accumulator[c];
      accumulator[c] = 0.0f;
      is_touched[c] = 0;
      if (std::fabs(v) > prune_tolerance) {
        triplets.push_back({static_cast<uint32_t>(r), c, v});
      }
    }
  }
  return FromTriplets(rows_, other.cols_, std::move(triplets));
}

CsrMatrix CsrMatrix::Add(const CsrMatrix& other) const {
  LASAGNE_CHECK_EQ(rows_, other.rows_);
  LASAGNE_CHECK_EQ(cols_, other.cols_);
  std::vector<Triplet> triplets;
  triplets.reserve(nnz() + other.nnz());
  auto append = [&triplets](const CsrMatrix& m) {
    for (size_t r = 0; r < m.rows_; ++r) {
      for (size_t k = m.row_ptr_[r]; k < m.row_ptr_[r + 1]; ++k) {
        triplets.push_back(
            {static_cast<uint32_t>(r), m.col_idx_[k], m.values_[k]});
      }
    }
  };
  append(*this);
  append(other);
  return FromTriplets(rows_, cols_, std::move(triplets));
}

CsrMatrix CsrMatrix::Scale(float scalar) const {
  CsrMatrix out = *this;
  for (float& v : out.values_) v *= scalar;
  return out;
}

CsrMatrix CsrMatrix::ScaleRowsCols(const Tensor& row_factors,
                                   const Tensor& col_factors) const {
  LASAGNE_CHECK_EQ(row_factors.rows(), rows_);
  LASAGNE_CHECK_EQ(col_factors.rows(), cols_);
  CsrMatrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    const float rf = row_factors(r, 0);
    for (size_t k = out.row_ptr_[r]; k < out.row_ptr_[r + 1]; ++k) {
      out.values_[k] *= rf * col_factors(out.col_idx_[k], 0);
    }
  }
  return out;
}

CsrMatrix CsrMatrix::RowStochastic() const {
  CsrMatrix out = *this;
  for (size_t r = 0; r < rows_; ++r) {
    double total = 0.0;
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      total += values_[k];
    }
    if (total != 0.0) {
      const float inv = static_cast<float>(1.0 / total);
      for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        out.values_[k] *= inv;
      }
    }
  }
  return out;
}

Tensor CsrMatrix::ToDense() const {
  Tensor out(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) += values_[k];
    }
  }
  return out;
}

float CsrMatrix::At(size_t r, size_t c) const {
  LASAGNE_CHECK_LT(r, rows_);
  LASAGNE_CHECK_LT(c, cols_);
  const uint32_t target = static_cast<uint32_t>(c);
  auto begin = col_idx_.begin() + row_ptr_[r];
  auto end = col_idx_.begin() + row_ptr_[r + 1];
  auto it = std::lower_bound(begin, end, target);
  if (it != end && *it == target) {
    return values_[static_cast<size_t>(it - col_idx_.begin())];
  }
  return 0.0f;
}

CsrMatrix CsrMatrix::SubMatrix(const std::vector<uint32_t>& row_ids,
                               const std::vector<uint32_t>& col_ids) const {
  std::unordered_map<uint32_t, uint32_t> col_map;
  col_map.reserve(col_ids.size());
  for (uint32_t i = 0; i < col_ids.size(); ++i) {
    LASAGNE_CHECK_LT(col_ids[i], cols_);
    LASAGNE_CHECK(col_map.emplace(col_ids[i], i).second);
  }
  std::vector<Triplet> triplets;
  for (uint32_t new_r = 0; new_r < row_ids.size(); ++new_r) {
    const uint32_t old_r = row_ids[new_r];
    LASAGNE_CHECK_LT(old_r, rows_);
    for (size_t k = row_ptr_[old_r]; k < row_ptr_[old_r + 1]; ++k) {
      auto it = col_map.find(col_idx_[k]);
      if (it != col_map.end()) {
        triplets.push_back({new_r, it->second, values_[k]});
      }
    }
  }
  return FromTriplets(row_ids.size(), col_ids.size(), std::move(triplets));
}

bool CsrMatrix::IsSymmetric(float tolerance) const {
  if (rows_ != cols_) return false;
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (std::fabs(values_[k] - At(col_idx_[k], r)) > tolerance) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace lasagne
