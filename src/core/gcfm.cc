#include "core/gcfm.h"

#include "common/check.h"
#include "obs/trace.h"

namespace lasagne {

GcFmLayer::GcFmLayer(std::vector<size_t> layer_dims, size_t num_classes,
                     size_t fm_rank, Rng& rng, bool final_relu)
    : fm_rank_(fm_rank), final_relu_(final_relu) {
  LASAGNE_CHECK(!layer_dims.empty());
  LASAGNE_CHECK_GT(fm_rank, 0u);
  field_offsets_.push_back(0);
  for (size_t d : layer_dims) {
    field_offsets_.push_back(field_offsets_.back() + d);
  }
  const size_t m = field_offsets_.back();
  w_ = ag::MakeParameter(Tensor::GlorotUniform(m, num_classes, rng));
  // Near-zero factor init: the layer starts as the plain linear model
  // and the quadratic cross-layer term only grows where it pays off,
  // so +GC-FM can match its ablation baseline at worst (the quadratic
  // term otherwise overfits sparse-label regimes).
  v_ = ag::MakeParameter(
      Tensor::Normal(m, num_classes * fm_rank, 0.0f, 0.01f, rng));
}

ag::Variable GcFmLayer::Forward(
    const std::shared_ptr<const CsrMatrix>& a_hat,
    const std::vector<ag::Variable>& hidden) const {
  LASAGNE_TRACE_SCOPE("gcfm.forward");
  LASAGNE_CHECK_EQ(hidden.size() + 1, field_offsets_.size());
  for (size_t i = 0; i < hidden.size(); ++i) {
    LASAGNE_CHECK_EQ(hidden[i]->cols(),
                     field_offsets_[i + 1] - field_offsets_[i]);
  }
  ag::Variable x =
      hidden.size() == 1 ? hidden[0] : ag::ConcatCols(hidden);
  ag::Variable scores =
      ag::FmInteraction(x, w_, v_, field_offsets_, fm_rank_);
  ag::Variable out = ag::SpMM(a_hat, scores);
  return final_relu_ ? ag::Relu(out) : out;
}

}  // namespace lasagne
