#include "core/lasagne_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"

namespace lasagne {

std::string BaseConvName(BaseConv base) {
  switch (base) {
    case BaseConv::kGcn:
      return "gcn";
    case BaseConv::kSgc:
      return "sgc";
    case BaseConv::kGat:
      return "gat";
  }
  return "unknown";
}

namespace {

std::string ModelName(const LasagneConfig& config) {
  std::string name =
      "Lasagne(" + AggregatorKindName(config.aggregator) + ")";
  if (config.base != BaseConv::kGcn) {
    name += "+" + BaseConvName(config.base);
  }
  if (!config.use_gcfm) name += "-noGCFM";
  return name;
}

}  // namespace

LasagneModel::LasagneModel(const Dataset& data, const LasagneConfig& config)
    : Model(ModelName(config), data), config_(config) {
  LASAGNE_CHECK_GE(config.depth, 2u);
  const size_t num_hidden = config.depth - 1;
  hidden_dims_ = config.hidden_dims;
  if (hidden_dims_.empty()) {
    hidden_dims_.assign(num_hidden, config.hidden_dim);
  }
  LASAGNE_CHECK_EQ(hidden_dims_.size(), num_hidden);

  // Full-graph view.
  full_view_.a_hat =
      std::make_shared<CsrMatrix>(data.graph.NormalizedAdjacency());
  full_view_.features = ag::MakeConstant(data.features);
  full_view_.labels = &data.labels;
  full_view_.train_mask = &data.train_mask;
  if (config.base == BaseConv::kGat) {
    full_view_.edges =
        ag::EdgeStructure::FromGraph(data.graph, /*add_self_loops=*/true);
  }

  if (data.inductive) {
    LASAGNE_CHECK_MSG(
        config.aggregator == AggregatorKind::kMaxPooling ||
            config.aggregator == AggregatorKind::kMean ||
            config.aggregator == AggregatorKind::kLstm ||
            config.custom_aggregator != nullptr,
        "node-indexed aggregators (weighted/stochastic) are transductive "
        "only; use max pooling on inductive datasets (paper §5.2.1)");
    train_data_ = std::make_unique<Dataset>(data.TrainSubgraph());
    train_view_.a_hat = std::make_shared<CsrMatrix>(
        train_data_->graph.NormalizedAdjacency());
    train_view_.features = ag::MakeConstant(train_data_->features);
    train_view_.labels = &train_data_->labels;
    train_view_.train_mask = &train_data_->train_mask;
    if (config.base == BaseConv::kGat) {
      train_view_.edges = ag::EdgeStructure::FromGraph(
          train_data_->graph, /*add_self_loops=*/true);
    }
  } else {
    train_view_ = full_view_;
  }

  Rng rng(config.seed);

  // Base convolutions for the hidden layers.
  for (size_t l = 0; l < num_hidden; ++l) {
    const size_t in = l == 0 ? data.feature_dim() : hidden_dims_[l - 1];
    const size_t out = hidden_dims_[l];
    if (config.base == BaseConv::kGat) {
      gat_layers_.emplace_back(in, out, rng);
    } else {
      conv_layers_.emplace_back(in, out, rng);
    }
  }

  // Shared stochastic probability parameters (Eq. 6). Small noise breaks
  // the row-max ties of a constant init.
  if (config.aggregator == AggregatorKind::kStochastic) {
    stochastic_p_ = ag::MakeParameter(
        Tensor::Normal(data.num_nodes(), num_hidden, 0.0f, 0.1f, rng));
  }

  // One aggregator per hidden layer position (layer 0 has a single-entry
  // history; the aggregator is still created so node-wise gating applies
  // from the first layer on, matching Eq. 4's 1 < l < L range plus the
  // trivial l = 1 case).
  for (size_t l = 0; l < num_hidden; ++l) {
    std::vector<size_t> dims(hidden_dims_.begin(),
                             hidden_dims_.begin() + l + 1);
    if (config.custom_aggregator) {
      aggregators_.push_back(
          config.custom_aggregator(l + 1, std::move(dims), rng));
      LASAGNE_CHECK(aggregators_.back() != nullptr);
    } else {
      aggregators_.push_back(MakeAggregator(config.aggregator,
                                            data.num_nodes(), l + 1,
                                            std::move(dims), stochastic_p_,
                                            rng));
    }
  }

  if (config.use_gcfm) {
    gcfm_ = std::make_unique<GcFmLayer>(hidden_dims_, data.num_classes,
                                        config.fm_rank, rng,
                                        config.gcfm_final_relu);
  } else {
    plain_output_ = std::make_unique<nn::GraphConvolution>(
        hidden_dims_.back(), data.num_classes, rng);
  }
}

ag::Variable LasagneModel::ForwardOn(const GraphView& view,
                                     const nn::ForwardContext& ctx) {
  ClearHidden();
  LASAGNE_CHECK(ctx.rng != nullptr);
  std::vector<ag::Variable> history;
  ag::Variable input = view.features;
  const size_t num_hidden = hidden_dims_.size();
  for (size_t l = 0; l < num_hidden; ++l) {
    // Base convolution on the previous (aggregated) representation.
    ag::Variable raw;
    switch (config_.base) {
      case BaseConv::kGcn:
        raw = conv_layers_[l].Forward(view.a_hat, input, ctx,
                                      config_.dropout, /*relu=*/true);
        break;
      case BaseConv::kSgc:
        raw = conv_layers_[l].Forward(view.a_hat, input, ctx,
                                      config_.dropout, /*relu=*/false);
        break;
      case BaseConv::kGat:
        raw = ag::Relu(gat_layers_[l].Forward(view.edges, input, ctx,
                                              config_.dropout));
        break;
    }
    // Node-aware layer aggregation over the full history (Eq. 4).
    history.push_back(raw);
    ag::Variable aggregated =
        aggregators_[l]->Aggregate(view.a_hat, history, ctx);
    history.back() = aggregated;
    RecordHidden(aggregated);
    input = aggregated;
  }
  if (gcfm_ != nullptr) {
    return gcfm_->Forward(view.a_hat, history);
  }
  return plain_output_->Forward(view.a_hat, history.back(), ctx,
                                config_.dropout, /*relu=*/false);
}

ag::Variable LasagneModel::Forward(const nn::ForwardContext& ctx) {
  return ForwardOn(full_view_, ctx);
}

ag::Variable LasagneModel::TrainingLoss(const nn::ForwardContext& ctx) {
  ag::Variable logits = ForwardOn(train_view_, ctx);
  return ag::SoftmaxCrossEntropy(logits, *train_view_.labels,
                                 *train_view_.train_mask);
}

std::vector<ag::Variable> LasagneModel::Parameters() const {
  std::vector<ag::Variable> params;
  std::unordered_set<const ag::Node*> seen;
  auto add = [&](const ag::Variable& p) {
    if (seen.insert(p.get()).second) params.push_back(p);
  };
  for (const auto& conv : conv_layers_) {
    for (const auto& p : conv.Parameters()) add(p);
  }
  for (const auto& gat : gat_layers_) {
    for (const auto& p : gat.Parameters()) add(p);
  }
  for (const auto& agg : aggregators_) {
    for (const auto& p : agg->Parameters()) add(p);
  }
  if (gcfm_ != nullptr) {
    for (const auto& p : gcfm_->Parameters()) add(p);
  }
  if (plain_output_ != nullptr) {
    for (const auto& p : plain_output_->Parameters()) add(p);
  }
  return params;
}

Tensor LasagneModel::StochasticProbabilities() const {
  if (stochastic_p_ == nullptr) return Tensor();
  const Tensor& p = stochastic_p_->value();
  Tensor probs(p.rows(), p.cols());
  for (size_t r = 0; r < p.rows(); ++r) {
    float max_v = p(r, 0);
    for (size_t c = 1; c < p.cols(); ++c) {
      max_v = std::max(max_v, p(r, c));
    }
    for (size_t c = 0; c < p.cols(); ++c) {
      probs(r, c) = std::exp(p(r, c) - max_v);
    }
  }
  return probs;
}

Tensor LasagneModel::WeightedContributions() const {
  if (config_.aggregator != AggregatorKind::kWeighted ||
      aggregators_.empty()) {
    return Tensor();
  }
  const auto* weighted =
      dynamic_cast<const WeightedAggregator*>(aggregators_.back().get());
  if (weighted == nullptr) return Tensor();
  return weighted->contributions()->value();
}

LasagneConfig LasagneConfigFrom(const ModelConfig& config,
                                AggregatorKind aggregator, BaseConv base,
                                bool use_gcfm) {
  LasagneConfig out;
  out.aggregator = aggregator;
  out.base = base;
  out.depth = std::max<size_t>(config.depth, 2);
  out.hidden_dim = config.hidden_dim;
  out.dropout = config.dropout;
  out.use_gcfm = use_gcfm;
  out.seed = config.seed;
  return out;
}

}  // namespace lasagne
