#ifndef LASAGNE_CORE_LASAGNE_MODEL_H_
#define LASAGNE_CORE_LASAGNE_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/aggregators.h"
#include "core/gcfm.h"
#include "models/model.h"
#include "nn/layers.h"

namespace lasagne {

/// Which base graph convolution Lasagne wraps (paper §5.2.5: the
/// framework applies to any multi-layer neighborhood-aggregation model).
enum class BaseConv {
  kGcn,  // ReLU(A_hat H W)
  kSgc,  // A_hat H W (no nonlinearity, SGC-style)
  kGat,  // single-head graph attention
};

std::string BaseConvName(BaseConv base);

/// Factory for user-defined layer aggregators: receives the 1-based
/// layer position and the dims of the history entries that aggregator
/// will see. Lets downstream users plug custom aggregation mechanisms
/// (the paper: "other custom aggregation operations are also possible")
/// without touching the framework — see examples/custom_aggregator.cpp.
using AggregatorFactory = std::function<std::unique_ptr<LayerAggregator>(
    size_t layer_index, std::vector<size_t> layer_dims, Rng& rng)>;

/// Lasagne hyper-parameters (see also ModelConfig for the shared ones).
struct LasagneConfig {
  AggregatorKind aggregator = AggregatorKind::kStochastic;
  /// When set, overrides `aggregator` with user-supplied instances.
  AggregatorFactory custom_aggregator;
  BaseConv base = BaseConv::kGcn;
  size_t depth = 4;        // total layers incl. the GC-FM output layer
  size_t hidden_dim = 32;  // default width of every hidden layer
  /// Optional per-layer hidden widths (depth-1 entries). Empty = all
  /// hidden_dim. Layer aggregators support flexible dims (the paper
  /// removes ResGCN's same-dimension restriction); MaxPooling requires
  /// equal dims.
  std::vector<size_t> hidden_dims;
  float dropout = 0.5f;
  bool use_gcfm = true;  // ablation switch (paper Table 6)
  size_t fm_rank = 5;    // the paper sets k = 5
  /// Paper Eq. after (7) applies a final ReLU: H(L) = ReLU(A_hat O).
  /// A ReLU directly under the softmax cross-entropy kills the gradient
  /// of every clamped logit and measurably destabilizes training on our
  /// substrate (see DESIGN.md), so the default feeds A_hat O to the
  /// classifier directly; set true for the paper-literal form.
  bool gcfm_final_relu = false;
  uint64_t seed = 1;
};

/// Lasagne (the paper's model, Fig. 3): a stack of base graph
/// convolutions where every layer's output is produced by a node-aware
/// layer aggregator over ALL previous layers (dense connectivity, Eq. 4)
/// and the final layer is GC-FM (Eq. 7) capturing cross-layer feature
/// interactions.
///
/// On inductive datasets, training runs on the subgraph induced by train
/// nodes (the paper's protocol); only the Max-Pooling aggregator is
/// legal there because Weighted/Stochastic own node-indexed parameters
/// (paper §5.2.1 "Inductive").
class LasagneModel : public Model {
 public:
  LasagneModel(const Dataset& data, const LasagneConfig& config);

  ag::Variable Forward(const nn::ForwardContext& ctx) override;
  ag::Variable TrainingLoss(const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;

  const LasagneConfig& config() const { return config_; }

  /// The stochastic aggregator's probability matrix
  /// exp(P)/rowmax(exp(P)) (N x depth-1); empty tensor for other
  /// aggregators. Used by the depth analysis (§5.2.2) to correlate
  /// aggregation behaviour with PageRank.
  Tensor StochasticProbabilities() const;

  /// The weighted aggregator's per-node contribution matrix C of the
  /// last hidden layer; empty for other aggregators.
  Tensor WeightedContributions() const;

 private:
  struct GraphView {
    std::shared_ptr<const CsrMatrix> a_hat;
    std::shared_ptr<const ag::EdgeStructure> edges;  // GAT base only
    ag::Variable features;
    const std::vector<int32_t>* labels;
    const std::vector<float>* train_mask;
  };

  ag::Variable ForwardOn(const GraphView& view,
                         const nn::ForwardContext& ctx);

  LasagneConfig config_;
  std::vector<size_t> hidden_dims_;  // resolved, depth-1 entries

  GraphView full_view_;
  std::unique_ptr<Dataset> train_data_;  // inductive only
  GraphView train_view_;                 // aliases full_view_ if not

  // Base convolution weights per hidden layer (GCN/SGC) or GAT heads.
  std::vector<nn::GraphConvolution> conv_layers_;
  std::vector<nn::GatHead> gat_layers_;
  std::vector<std::unique_ptr<LayerAggregator>> aggregators_;
  ag::Variable stochastic_p_;  // shared across stochastic aggregators
  std::unique_ptr<GcFmLayer> gcfm_;
  std::unique_ptr<nn::GraphConvolution> plain_output_;  // no-GC-FM ablation
};

/// Convenience: translate the shared ModelConfig into a LasagneConfig.
LasagneConfig LasagneConfigFrom(const ModelConfig& config,
                                AggregatorKind aggregator,
                                BaseConv base = BaseConv::kGcn,
                                bool use_gcfm = true);

}  // namespace lasagne

#endif  // LASAGNE_CORE_LASAGNE_MODEL_H_
