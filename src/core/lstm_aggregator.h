#ifndef LASAGNE_CORE_LSTM_AGGREGATOR_H_
#define LASAGNE_CORE_LSTM_AGGREGATOR_H_

#include <memory>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "core/aggregators.h"
#include "nn/layers.h"

namespace lasagne {

/// A single LSTM cell over per-node "sequences" whose timesteps are the
/// layer history — the building block of the JK-Net LSTM aggregator and
/// of Lasagne's LSTM layer aggregation (the paper lists LSTM among the
/// possible custom aggregations).
///
/// All four gates are computed from one fused projection
/// `[i f g o] = x W_x + h W_h + b`; states are (N x hidden) tensors, so
/// every node's sequence is processed in parallel.
class LstmCell {
 public:
  LstmCell(size_t input_dim, size_t hidden_dim, Rng& rng);

  struct State {
    ag::Variable h;  // hidden state  (N x hidden)
    ag::Variable c;  // cell state    (N x hidden)
  };

  /// Zero state for a batch of n rows.
  State InitialState(size_t n) const;

  /// One step: consumes x_t (N x input_dim), returns the next state.
  State Step(const ag::Variable& x_t, const State& prev) const;

  std::vector<ag::Variable> Parameters() const;
  size_t hidden_dim() const { return hidden_dim_; }

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  ag::Variable w_x_;   // input_dim x 4*hidden
  ag::Variable w_h_;   // hidden x 4*hidden
  ag::Variable bias_;  // 1 x 4*hidden
};

/// LSTM layer aggregator: runs an LSTM over the layer history (each
/// hidden layer is a timestep) and gates the history by a per-node,
/// per-layer attention derived from the LSTM outputs — the JK-Net LSTM
/// aggregation scheme adapted to Lasagne's per-layer setting. Node-aware
/// through the input-dependent recurrence, yet with graph-size
/// independent parameters (so it also runs inductively).
class LstmAggregator : public LayerAggregator {
 public:
  LstmAggregator(std::vector<size_t> layer_dims, size_t lstm_hidden,
                 Rng& rng);

  ag::Variable Aggregate(const std::shared_ptr<const CsrMatrix>& a_hat,
                         const std::vector<ag::Variable>& history,
                         const nn::ForwardContext& ctx) override;
  std::vector<ag::Variable> Parameters() const override;
  std::string name() const override { return "lstm"; }
  bool node_indexed() const override { return false; }

 private:
  std::vector<size_t> layer_dims_;
  std::vector<ag::Variable> transforms_;  // W(il) to the current width
  std::unique_ptr<LstmCell> cell_;
  ag::Variable attn_;  // lstm_hidden x 1: LSTM state -> layer score
};

}  // namespace lasagne

#endif  // LASAGNE_CORE_LSTM_AGGREGATOR_H_
